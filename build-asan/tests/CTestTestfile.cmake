# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_common[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_match[1]_include.cmake")
include("/root/repo/build-asan/tests/test_hash_list[1]_include.cmake")
include("/root/repo/build-asan/tests/test_mem[1]_include.cmake")
include("/root/repo/build-asan/tests/test_alpu_array[1]_include.cmake")
include("/root/repo/build-asan/tests/test_alpu_unit[1]_include.cmake")
include("/root/repo/build-asan/tests/test_alpu_multi[1]_include.cmake")
include("/root/repo/build-asan/tests/test_alpu_rtl[1]_include.cmake")
include("/root/repo/build-asan/tests/test_alpu_pipelined[1]_include.cmake")
include("/root/repo/build-asan/tests/test_alpu_fuzz[1]_include.cmake")
include("/root/repo/build-asan/tests/test_mem_properties[1]_include.cmake")
include("/root/repo/build-asan/tests/test_fpga[1]_include.cmake")
include("/root/repo/build-asan/tests/test_net[1]_include.cmake")
include("/root/repo/build-asan/tests/test_nic[1]_include.cmake")
include("/root/repo/build-asan/tests/test_mpi[1]_include.cmake")
include("/root/repo/build-asan/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build-asan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-asan/tests/test_portals[1]_include.cmake")
include("/root/repo/build-asan/tests/test_host[1]_include.cmake")
include("/root/repo/build-asan/tests/test_soak[1]_include.cmake")
include("/root/repo/build-asan/tests/test_tools[1]_include.cmake")
subdirs("workload")
