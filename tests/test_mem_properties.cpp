// Property tests for the cache model against an executable reference:
// a straightforward list-based true-LRU implementation.  The Cache class
// is the hot path of every experiment (one access per walked queue
// entry), so its replacement behaviour is cross-checked exhaustively
// across geometries.
#include <gtest/gtest.h>

#include <list>
#include <tuple>
#include <unordered_map>

#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "mem/memory_system.hpp"

namespace alpu::mem {
namespace {

/// Reference: per-set LRU lists, textbook formulation.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config)
      : config_(config), sets_(config.num_sets()) {}

  bool access(Addr addr) {
    const std::size_t set =
        (addr / config_.line_bytes) % config_.num_sets();
    const Addr tag = addr / config_.line_bytes / config_.num_sets();
    auto& lru = sets_[set];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == tag) {
        lru.erase(it);
        lru.push_front(tag);  // most recently used
        return true;
      }
    }
    lru.push_front(tag);
    if (lru.size() > config_.ways) lru.pop_back();  // evict LRU
    return false;
  }

 private:
  CacheConfig config_;
  std::vector<std::list<Addr>> sets_;
};

class CacheGeometry
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::uint64_t>> {
};

TEST_P(CacheGeometry, HitMissStreamMatchesReferenceLru) {
  const auto [size_kb, ways, line, seed] = GetParam();
  const CacheConfig config{.size_bytes = size_kb * 1024,
                           .line_bytes = line,
                           .ways = ways};
  Cache cache(config);
  ReferenceCache reference(config);
  common::Xoshiro256 rng(seed);

  // Mixed access pattern: streaming runs (queue walks), hot-set reuse
  // (firmware structures), and random scatter.
  Addr stream = 0;
  for (int i = 0; i < 20'000; ++i) {
    Addr addr;
    const double roll = rng.uniform01();
    if (roll < 0.4) {
      addr = stream;
      stream += line;
      if (stream > 4 * config.size_bytes) stream = 0;
    } else if (roll < 0.7) {
      addr = rng.below(16) * line;  // hot lines
    } else {
      addr = rng.below(1 << 22);
    }
    const bool got = cache.access(addr, rng.chance(0.3)).hit;
    const bool want = reference.access(addr);
    ASSERT_EQ(got, want) << "access " << i << " addr " << addr;
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            cache.stats().accesses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(
        std::make_tuple(1, 1, 64, 11),    // direct-mapped
        std::make_tuple(1, 4, 64, 22),
        std::make_tuple(4, 8, 64, 33),
        std::make_tuple(32, 64, 64, 44),  // the NIC L1 shape
        std::make_tuple(64, 2, 64, 55),   // the host L1 shape
        std::make_tuple(8, 128, 64, 66),  // fully associative
        std::make_tuple(2, 2, 128, 77)));  // wide lines

TEST(CacheProperties, DirtyBitSurvivesLruReordering) {
  // Write a line, keep it warm with reads while filling the set, then
  // force its eviction and expect exactly one writeback.
  const CacheConfig config{.size_bytes = 1024, .line_bytes = 64, .ways = 4};
  Cache cache(config);
  const std::size_t stride = 64 * config.num_sets();
  cache.access(0, true);  // dirty
  for (Addr w = 1; w < 4; ++w) {
    cache.access(w * stride, false);
    cache.access(0, false);  // keep it MRU (reads must not clean it)
  }
  for (Addr w = 4; w < 8; ++w) cache.access(w * stride, false);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheProperties, StatsConservation) {
  const CacheConfig config{.size_bytes = 2048, .line_bytes = 64, .ways = 2};
  Cache cache(config);
  common::Xoshiro256 rng(3);
  std::size_t resident = 0;
  for (int i = 0; i < 5'000; ++i) {
    const CacheAccess a = cache.access(rng.below(1 << 16), false);
    if (!a.hit) ++resident;
  }
  // fills == misses; evictions == fills - lines still resident.
  EXPECT_EQ(cache.stats().misses, resident);
  EXPECT_LE(cache.stats().evictions, cache.stats().misses);
  EXPECT_GE(cache.stats().evictions,
            cache.stats().misses - cache.config().num_lines());
}

// ---- memory-system composition properties -----------------------------------

TEST(MemorySystemProperties, CostsAreMonotoneInHierarchyDepth) {
  // For any address stream, L1-hit cost <= L1+L2 cost <= full-miss cost.
  MemorySystemConfig cfg;
  cfg.l1 = {.size_bytes = 1024, .line_bytes = 64, .ways = 4};
  cfg.l1_hit_ps = 4'000;
  cfg.l2 = CacheConfig{.size_bytes = 8192, .line_bytes = 64, .ways = 8};
  cfg.l2_hit_ps = 10'000;
  cfg.backend_ps = 50'000;
  MemorySystem m(cfg);
  common::Xoshiro256 rng(9);
  for (int i = 0; i < 2'000; ++i) {
    const common::TimePs t = m.load(rng.below(1 << 18), 0);
    EXPECT_GE(t, cfg.l1_hit_ps);
    EXPECT_LE(t, cfg.l1_hit_ps + cfg.l2_hit_ps + cfg.backend_ps);
  }
}

TEST(MemorySystemProperties, RepeatedTouchRangeBecomesAllHits) {
  MemorySystemConfig cfg;
  cfg.l1 = {.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 64};
  cfg.l1_hit_ps = 4'000;
  cfg.backend_ps = 50'000;
  MemorySystem m(cfg);
  (void)m.touch_range(0, 8 * 1024, 0, false);
  // The 8 KB region fits: a second pass costs exactly hits.
  EXPECT_EQ(m.touch_range(0, 8 * 1024, 0, false),
            (8u * 1024u / 64u) * 4'000u);
}

TEST(DramProperties, SequentialBeatsRandom) {
  // Open-row locality: sweeping a row costs less than hopping rows on
  // one bank.
  DramConfig cfg;
  cfg.banks = 1;  // force every access onto one bank
  Dram seq(cfg), rnd(cfg);
  common::TimePs t_seq = 0, t_rnd = 0;
  common::TimePs now = 0;
  for (int i = 0; i < 64; ++i) {
    t_seq += seq.access(static_cast<std::uint64_t>(i) * 64, now);
    t_rnd += rnd.access(static_cast<std::uint64_t>(i) * cfg.row_bytes * 2,
                        now);
    now += 1'000'000;  // spaced: no bank-busy stalls, pure row effects
  }
  EXPECT_LT(t_seq, t_rnd);
  EXPECT_EQ(seq.stats().row_hits, 63u);
  EXPECT_EQ(rnd.stats().row_hits, 0u);
}

}  // namespace
}  // namespace alpu::mem
