// Protocol fuzzing for the cycle-level ALPU, plus differential fuzzing
// of the SoA match engine against the retained reference implementation.
//
// Protocol suite: random command/probe streams — including protocol
// violations the firmware is told never to commit — must never deadlock
// the unit or break its externally guaranteed invariants:
//   (1) every probe eventually gets exactly one response, in probe order;
//   (2) MATCH FAILURE is never observed between START ACK and STOP INSERT;
//   (3) occupancy == inserts - successes - flushed (within a session's
//       drops), and never exceeds capacity;
//   (4) the unit goes idle (stops consuming events) when starved.
//
// Differential suite: AlpuArray (word-parallel SoA engine) and
// ReferenceAlpuArray (original cell-at-a-time implementation) are driven
// with identical random insert / match / match_and_delete /
// invalidate_matching / reset sequences — wildcard masks included — and
// must agree on every result and on full cell-level state after every
// step, through full-array and empty-array edges.
#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "alpu/alpu.hpp"
#include "alpu/array.hpp"
#include "alpu/reference.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace alpu::hw {
namespace {

constexpr common::TimePs kCycle = 2'000;

class AlpuFuzz : public ::testing::TestWithParam<
                     std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(AlpuFuzz, RandomStreamsPreserveInvariants) {
  const auto [cells, block, seed] = GetParam();
  common::Xoshiro256 rng(seed);

  sim::Engine engine;
  AlpuConfig cfg;
  cfg.total_cells = cells;
  cfg.block_size = block;
  cfg.clock = common::ClockPeriod{kCycle};
  cfg.header_fifo_depth = 16;
  cfg.command_fifo_depth = 16;
  cfg.result_fifo_depth = 16;
  Alpu unit(engine, "fuzz", cfg);

  std::uint64_t next_seq = 1;
  std::deque<std::uint64_t> outstanding;  // probes awaiting responses
  std::uint64_t observed_acks = 0;

  // (Invariant 2 — no failure between ACK and STOP — is checked
  // deterministically in test_alpu_unit.cpp; observing it from outside a
  // racing fuzz driver is not well-defined, since a response popped now
  // may have been emitted before the session we currently see.)
  const auto drain_results = [&] {
    while (auto r = unit.pop_result()) {
      switch (r->kind) {
        case ResponseKind::kStartAck:
          ++observed_acks;
          break;
        case ResponseKind::kMatchSuccess:
        case ResponseKind::kMatchFailure:
          ASSERT_FALSE(outstanding.empty());
          ASSERT_EQ(r->probe_seq, outstanding.front())
              << "responses out of probe order";
          outstanding.pop_front();
          break;
        case ResponseKind::kParityFault:
          // No fault model installed in this suite: a parity fault here
          // would mean the unit invented corruption out of thin air.
          FAIL() << "parity fault without a fault model";
          break;
      }
    }
  };

  for (int step = 0; step < 3'000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.35) {
      // A probe (may or may not match).
      Probe p;
      p.bits = match::pack(match::Envelope{
          0, static_cast<std::uint32_t>(rng.below(4)),
          static_cast<std::uint32_t>(rng.below(4))});
      p.seq = next_seq;
      if (unit.push_probe(p)) {
        outstanding.push_back(next_seq++);
      }
    } else if (roll < 0.75) {
      // A command, sometimes illegal for the current state.
      Command cmd;
      const double kind = rng.uniform01();
      if (kind < 0.3) {
        cmd.kind = CommandKind::kStartInsert;
      } else if (kind < 0.75) {
        cmd.kind = CommandKind::kInsert;
        const auto pat = match::make_recv_pattern(
            0,
            rng.chance(0.3) ? std::nullopt
                            : std::optional<std::uint32_t>{
                                  static_cast<std::uint32_t>(rng.below(4))},
            static_cast<std::uint32_t>(rng.below(4)));
        cmd.bits = pat.bits;
        cmd.mask = pat.mask;
        cmd.cookie = static_cast<Cookie>(step);
      } else if (kind < 0.9) {
        cmd.kind = CommandKind::kStopInsert;
      } else if (kind < 0.97) {
        cmd.kind = CommandKind::kReset;
      } else {
        cmd.kind = CommandKind::kResetMatching;
        cmd.bits = 0;
        cmd.mask = ~match::kSourceMask;  // flush everything with src 0
      }
      (void)unit.push_command(cmd);
    }
    // Let time pass and consume results.
    engine.run_until(engine.now() +
                     (1 + rng.below(4)) * kCycle);
    drain_results();
    ASSERT_LE(unit.array().occupancy(), cells);  // invariant (3), bound
  }

  // Close any open session and drain everything.
  for (int i = 0; i < 4; ++i) {
    (void)unit.push_command({CommandKind::kStopInsert, 0, 0, 0});
    engine.run_until(engine.now() + 64 * kCycle);
    drain_results();
  }
  engine.run_until(engine.now() + 2'000 * kCycle);
  drain_results();
  EXPECT_TRUE(outstanding.empty())
      << outstanding.size() << " probes never answered";
  EXPECT_GT(observed_acks, 0u);

  // Invariant (4): a starved unit stops consuming engine events.
  const std::uint64_t events = engine.events_executed();
  engine.run_until(engine.now() + 10'000 * kCycle);
  EXPECT_LE(engine.events_executed() - events, 4u);

  // Bookkeeping closes: every insert either sits in the array, was
  // consumed by a success, was flushed, was dropped over capacity, or
  // vanished in a full RESET (whose per-entry count the unit does not
  // track, hence the inequality that tightens to equality without one).
  const AlpuStats& s = unit.stats();
  const std::uint64_t accounted = unit.array().occupancy() +
                                  s.match_successes + s.flushed_entries;
  EXPECT_LE(accounted, s.inserts);
  if (s.resets == 0) {
    EXPECT_EQ(s.inserts, accounted)
        << "insert conservation broken without any RESET";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlpuFuzz,
    ::testing::Values(std::make_tuple(16, 8, 1), std::make_tuple(32, 8, 2),
                      std::make_tuple(32, 16, 3),
                      std::make_tuple(64, 16, 4),
                      std::make_tuple(128, 32, 5),
                      std::make_tuple(16, 16, 6)));

// ---------------------------------------------------------------------------
// Differential fuzz: SoA engine vs retained reference implementation
// ---------------------------------------------------------------------------

class AlpuDifferentialFuzz
    : public ::testing::TestWithParam<
          std::tuple<AlpuFlavor, std::size_t, std::size_t, std::uint64_t>> {};

namespace diff {

void expect_same_match(const ArrayMatch& a, const ArrayMatch& b,
                       const char* what) {
  ASSERT_EQ(a.hit, b.hit) << what;
  if (a.hit) {
    ASSERT_EQ(a.location, b.location) << what;
    ASSERT_EQ(a.cookie, b.cookie) << what;
  }
}

void expect_same_state(const AlpuArray& dut, const ReferenceAlpuArray& ref) {
  ASSERT_EQ(dut.occupancy(), ref.occupancy());
  ASSERT_EQ(dut.full(), ref.full());
  ASSERT_EQ(dut.empty(), ref.empty());
  ASSERT_EQ(dut.free_slots(), ref.free_slots());
  for (std::size_t i = 0; i < dut.capacity(); ++i) {
    const Cell d = dut.cell(i);
    const Cell& r = ref.cell(i);
    ASSERT_EQ(d.valid, r.valid) << "cell " << i;
    if (!d.valid) continue;
    ASSERT_EQ(d.bits, r.bits) << "cell " << i;
    ASSERT_EQ(d.mask, r.mask) << "cell " << i;
    ASSERT_EQ(d.cookie, r.cookie) << "cell " << i;
  }
}

}  // namespace diff

TEST_P(AlpuDifferentialFuzz, SoAEngineAgreesWithReference) {
  const auto [flavor, cells, block, seed] = GetParam();
  common::Xoshiro256 rng(seed);

  AlpuArray dut(flavor, cells, block);
  ReferenceAlpuArray ref(flavor, cells, block);

  // A small envelope universe so matches, misses, and duplicate
  // patterns all occur with useful frequency.
  const auto random_word = [&rng = rng] {
    return match::pack(match::Envelope{
        static_cast<std::uint32_t>(rng.below(2)),
        static_cast<std::uint32_t>(rng.below(4)),
        static_cast<std::uint32_t>(rng.below(4))});
  };
  const auto random_mask = [&rng = rng]() -> MatchWord {
    switch (rng.below(5)) {
      case 0: return 0;                                     // exact
      case 1: return match::kSourceMask;                    // ANY_SOURCE
      case 2: return match::kTagMask;                       // ANY_TAG
      case 3: return match::kSourceMask | match::kTagMask;  // both
      default: return match::kFullMask;                     // match-all
    }
  };

  Cookie next_cookie = 1;
  for (int step = 0; step < 4'000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.45) {
      // Insert (drives toward the full-array edge; a full array must
      // refuse identically on both sides).
      const MatchWord bits = random_word();
      const MatchWord mask = random_mask();
      const Cookie ck = next_cookie++;
      ASSERT_EQ(dut.insert(bits, mask, ck), ref.insert(bits, mask, ck));
    } else if (roll < 0.60) {
      // Pure probe: linear answer, tree answer, and reference agree.
      const Probe p{random_word(), random_mask(), 0};
      const ArrayMatch d = dut.match(p);
      diff::expect_same_match(d, ref.match(p), "match vs reference");
      diff::expect_same_match(d, dut.match_tree(p), "match vs match_tree");
      diff::expect_same_match(d, ref.match_tree(p),
                              "match vs reference match_tree");
    } else if (roll < 0.85) {
      // The architectural match pipeline: probe + delete + compaction.
      const Probe p{random_word(), random_mask(), 0};
      diff::expect_same_match(dut.match_and_delete(p),
                              ref.match_and_delete(p), "match_and_delete");
    } else if (roll < 0.97) {
      // RESET PROCESS sweep (multi-delete compaction), occasionally with
      // a match-all selector that empties the array in one sweep.
      const Probe sel{random_word(), random_mask(), 0};
      ASSERT_EQ(dut.invalidate_matching(sel), ref.invalidate_matching(sel));
    } else {
      dut.reset();
      ref.reset();
    }
    diff::expect_same_state(dut, ref);
  }

  // Deterministic edge sweep: fill to capacity, then drain to empty.
  // Cells are inserted with a match-anything mask so the wildcard drain
  // probe hits under both flavours (posted matching consults the CELL's
  // stored mask, not the probe's).
  dut.reset();
  ref.reset();
  while (!dut.full()) {
    const MatchWord bits = random_word();
    const Cookie ck = next_cookie++;
    ASSERT_TRUE(dut.insert(bits, match::kFullMask, ck));
    ASSERT_TRUE(ref.insert(bits, match::kFullMask, ck));
  }
  ASSERT_FALSE(dut.insert(0, 0, next_cookie));
  ASSERT_FALSE(ref.insert(0, 0, next_cookie));
  diff::expect_same_state(dut, ref);

  const Probe all{0, match::kFullMask, 0};
  for (std::size_t i = 0; i < cells; ++i) {
    diff::expect_same_match(dut.match_and_delete(all),
                            ref.match_and_delete(all), "drain");
    diff::expect_same_state(dut, ref);
  }
  ASSERT_TRUE(dut.empty());
  diff::expect_same_match(dut.match(all), ref.match(all), "empty match");
  diff::expect_same_match(dut.match_tree(all), ref.match_tree(all),
                          "empty match_tree");
  ASSERT_FALSE(dut.match(all).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlpuDifferentialFuzz,
    ::testing::Values(
        std::make_tuple(AlpuFlavor::kPostedReceive, 16, 8, 11),
        std::make_tuple(AlpuFlavor::kPostedReceive, 64, 16, 12),
        std::make_tuple(AlpuFlavor::kPostedReceive, 128, 16, 13),
        std::make_tuple(AlpuFlavor::kPostedReceive, 256, 16, 14),
        std::make_tuple(AlpuFlavor::kUnexpected, 64, 16, 15),
        std::make_tuple(AlpuFlavor::kUnexpected, 128, 32, 16),
        std::make_tuple(AlpuFlavor::kUnexpected, 256, 16, 17)));

// ---------------------------------------------------------------------------
// SEU schedules: corrupt -> detect -> quarantine -> rebuild -> lockstep
// ---------------------------------------------------------------------------

class SeuDifferentialFuzz
    : public ::testing::TestWithParam<std::tuple<AlpuFlavor, std::uint64_t>> {
};

// The reference array plays the NIC's software shadow list: after each
// detected corruption the DUT is RESET and re-shadowed from it, exactly
// the firmware's scrub-and-rebuild recovery, and lockstep must resume
// as if the flip never happened.
TEST_P(SeuDifferentialFuzz, CorruptDetectRebuildStaysInLockstep) {
  const auto [flavor, seed] = GetParam();
  constexpr std::size_t kCells = 64;
  constexpr std::size_t kBlock = 16;
  common::Xoshiro256 rng(seed);

  AlpuArray dut(flavor, kCells, kBlock);
  ReferenceAlpuArray ref(flavor, kCells, kBlock);
  SeuConfig seu;
  seu.force_parity = true;  // deterministic flips below, no injector
  dut.install_fault_model(seu, seed);
  ASSERT_TRUE(dut.fault_model_installed());

  const auto random_word = [&rng = rng] {
    return match::pack(match::Envelope{
        static_cast<std::uint32_t>(rng.below(2)),
        static_cast<std::uint32_t>(rng.below(4)),
        static_cast<std::uint32_t>(rng.below(4))});
  };
  const auto random_mask = [&rng = rng]() -> MatchWord {
    switch (rng.below(4)) {
      case 0: return 0;
      case 1: return match::kSourceMask;
      case 2: return match::kTagMask;
      default: return match::kFullMask;
    }
  };

  Cookie next_cookie = 1;
  std::uint64_t episodes = 0;
  for (int step = 0; step < 3'000; ++step) {
    if (rng.chance(0.01)) {
      // One upset: any plane, any cell (padded tail included — the
      // verify covers the whole SRAM, not just live entries), any bit.
      const auto plane = static_cast<unsigned>(rng.below(4));
      const std::size_t cell = rng.below(kCells);
      const auto bit = static_cast<unsigned>(
          plane == 2 ? rng.below(32) : plane == 3 ? 0 : rng.below(64));
      dut.corrupt_for_test(plane, cell, bit);

      // Detected at the next verify; the latch is sticky and every
      // match path answers miss instead of trusting corrupt planes.
      EXPECT_FALSE(dut.parity_ok());
      ASSERT_TRUE(dut.quarantined());
      const Probe p{random_word(), random_mask(), 0};
      EXPECT_FALSE(dut.match(p).hit);
      EXPECT_FALSE(dut.match_tree(p).hit);
      EXPECT_FALSE(dut.match_and_delete(p).hit);
      EXPECT_EQ(dut.invalidate_matching(p), 0u);

      // Firmware recovery: RESET (reheals parity, lifts quarantine),
      // then re-shadow from the software list.
      dut.reset();
      ASSERT_FALSE(dut.quarantined());
      EXPECT_TRUE(dut.parity_ok());
      for (std::size_t i = 0; i < ref.occupancy(); ++i) {
        const Cell& c = ref.cell(i);
        ASSERT_TRUE(dut.insert(c.bits, c.mask, c.cookie));
      }
      diff::expect_same_state(dut, ref);
      ++episodes;
      continue;
    }
    const double roll = rng.uniform01();
    if (roll < 0.45) {
      const MatchWord bits = random_word();
      const MatchWord mask = random_mask();
      const Cookie ck = next_cookie++;
      ASSERT_EQ(dut.insert(bits, mask, ck), ref.insert(bits, mask, ck));
    } else if (roll < 0.60) {
      const Probe p{random_word(), random_mask(), 0};
      const ArrayMatch d = dut.match(p);
      diff::expect_same_match(d, ref.match(p), "match vs reference");
      diff::expect_same_match(d, dut.match_tree(p), "match vs match_tree");
    } else if (roll < 0.90) {
      const Probe p{random_word(), random_mask(), 0};
      diff::expect_same_match(dut.match_and_delete(p),
                              ref.match_and_delete(p), "match_and_delete");
    } else {
      const Probe sel{random_word(), random_mask(), 0};
      ASSERT_EQ(dut.invalidate_matching(sel), ref.invalidate_matching(sel));
    }
    diff::expect_same_state(dut, ref);
  }

  EXPECT_GT(episodes, 5u);  // the schedule actually exercised recovery
  const SeuStats s = dut.seu_stats();
  EXPECT_EQ(s.parity_faults, episodes);  // one detection per flip
  EXPECT_EQ(s.seu_injected, 0u);         // flips came from the test hook
}

INSTANTIATE_TEST_SUITE_P(
    Flavors, SeuDifferentialFuzz,
    ::testing::Values(std::make_tuple(AlpuFlavor::kPostedReceive, 21),
                      std::make_tuple(AlpuFlavor::kPostedReceive, 22),
                      std::make_tuple(AlpuFlavor::kUnexpected, 23),
                      std::make_tuple(AlpuFlavor::kUnexpected, 24)));

TEST(SeuInjector, FixedDrawScheduleIsSeedDeterministic) {
  const auto run = [](std::uint64_t stream) {
    AlpuArray a(AlpuFlavor::kPostedReceive, 64, 16);
    SeuConfig cfg;
    cfg.rate = 0.5;
    a.install_fault_model(cfg, stream);
    a.seu_advance(200 * cfg.tick_ps);
    return a.seu_stats().seu_injected;
  };
  const std::uint64_t first = run(7);
  EXPECT_EQ(first, run(7));  // same stream, same flips
  // rate 0.5 over 200 ticks: statistically certain to fire many times.
  EXPECT_GT(first, 50u);
  EXPECT_LT(first, 150u);
}

TEST(SeuInjector, AdvanceIsIncrementallyConsistent) {
  // Catching up in many small steps or one big one must consume the
  // same draw schedule — that is what makes injection independent of
  // how often the unit happens to be poked (and of the shard count).
  AlpuArray big(AlpuFlavor::kPostedReceive, 64, 16);
  AlpuArray small(AlpuFlavor::kPostedReceive, 64, 16);
  SeuConfig cfg;
  cfg.rate = 0.25;
  big.install_fault_model(cfg, 99);
  small.install_fault_model(cfg, 99);
  big.seu_advance(400 * cfg.tick_ps);
  for (common::TimePs t = 1; t <= 400; ++t) {
    small.seu_advance(t * cfg.tick_ps);
  }
  EXPECT_EQ(big.seu_stats().seu_injected, small.seu_stats().seu_injected);
}

TEST(SeuScrub, DormantCorruptionIsDetectedWithoutAnyProbe) {
  // An entry corrupted and then never probed must still be found: the
  // background scrub bounds detection latency for dormant state.
  sim::Engine engine;
  AlpuConfig cfg;
  cfg.total_cells = 16;
  cfg.block_size = 8;
  cfg.clock = common::ClockPeriod{kCycle};
  cfg.seu.scrub_interval_ps = 50'000'000;  // 50 us, no injector
  Alpu unit(engine, "scrub", cfg);

  ASSERT_TRUE(unit.push_command({CommandKind::kStartInsert, 0, 0, 0}));
  const auto pat = match::make_recv_pattern(0, 3, 1);
  ASSERT_TRUE(
      unit.push_command({CommandKind::kInsert, pat.bits, pat.mask, 7}));
  ASSERT_TRUE(unit.push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 64 * kCycle);
  while (unit.pop_result().has_value()) {
  }
  ASSERT_EQ(unit.occupancy(), 1u);

  unit.corrupt_for_test(/*plane=*/0, /*cell=*/0, /*bit=*/14);
  ASSERT_FALSE(unit.fault_pending());  // not yet seen by anything
  engine.run();                        // scrub sweeps, then parks: drains
  EXPECT_TRUE(unit.fault_pending());
  const SeuStats s = unit.seu_stats();
  EXPECT_GE(s.scrub_sweeps, 1u);
  EXPECT_EQ(s.parity_faults, 1u);
}

}  // namespace
}  // namespace alpu::hw
