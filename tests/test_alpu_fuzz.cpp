// Protocol fuzzing for the cycle-level ALPU.
//
// Random command/probe streams — including protocol violations the
// firmware is told never to commit — must never deadlock the unit or
// break its externally guaranteed invariants:
//   (1) every probe eventually gets exactly one response, in probe order;
//   (2) MATCH FAILURE is never observed between START ACK and STOP INSERT;
//   (3) occupancy == inserts - successes - flushed (within a session's
//       drops), and never exceeds capacity;
//   (4) the unit goes idle (stops consuming events) when starved.
#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "alpu/alpu.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace alpu::hw {
namespace {

constexpr common::TimePs kCycle = 2'000;

class AlpuFuzz : public ::testing::TestWithParam<
                     std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(AlpuFuzz, RandomStreamsPreserveInvariants) {
  const auto [cells, block, seed] = GetParam();
  common::Xoshiro256 rng(seed);

  sim::Engine engine;
  AlpuConfig cfg;
  cfg.total_cells = cells;
  cfg.block_size = block;
  cfg.clock = common::ClockPeriod{kCycle};
  cfg.header_fifo_depth = 16;
  cfg.command_fifo_depth = 16;
  cfg.result_fifo_depth = 16;
  Alpu unit(engine, "fuzz", cfg);

  std::uint64_t next_seq = 1;
  std::deque<std::uint64_t> outstanding;  // probes awaiting responses
  std::uint64_t observed_acks = 0;

  // (Invariant 2 — no failure between ACK and STOP — is checked
  // deterministically in test_alpu_unit.cpp; observing it from outside a
  // racing fuzz driver is not well-defined, since a response popped now
  // may have been emitted before the session we currently see.)
  const auto drain_results = [&] {
    while (auto r = unit.pop_result()) {
      switch (r->kind) {
        case ResponseKind::kStartAck:
          ++observed_acks;
          break;
        case ResponseKind::kMatchSuccess:
        case ResponseKind::kMatchFailure:
          ASSERT_FALSE(outstanding.empty());
          ASSERT_EQ(r->probe_seq, outstanding.front())
              << "responses out of probe order";
          outstanding.pop_front();
          break;
      }
    }
  };

  for (int step = 0; step < 3'000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.35) {
      // A probe (may or may not match).
      Probe p;
      p.bits = match::pack(match::Envelope{
          0, static_cast<std::uint32_t>(rng.below(4)),
          static_cast<std::uint32_t>(rng.below(4))});
      p.seq = next_seq;
      if (unit.push_probe(p)) {
        outstanding.push_back(next_seq++);
      }
    } else if (roll < 0.75) {
      // A command, sometimes illegal for the current state.
      Command cmd;
      const double kind = rng.uniform01();
      if (kind < 0.3) {
        cmd.kind = CommandKind::kStartInsert;
      } else if (kind < 0.75) {
        cmd.kind = CommandKind::kInsert;
        const auto pat = match::make_recv_pattern(
            0,
            rng.chance(0.3) ? std::nullopt
                            : std::optional<std::uint32_t>{
                                  static_cast<std::uint32_t>(rng.below(4))},
            static_cast<std::uint32_t>(rng.below(4)));
        cmd.bits = pat.bits;
        cmd.mask = pat.mask;
        cmd.cookie = static_cast<Cookie>(step);
      } else if (kind < 0.9) {
        cmd.kind = CommandKind::kStopInsert;
      } else if (kind < 0.97) {
        cmd.kind = CommandKind::kReset;
      } else {
        cmd.kind = CommandKind::kResetMatching;
        cmd.bits = 0;
        cmd.mask = ~match::kSourceMask;  // flush everything with src 0
      }
      (void)unit.push_command(cmd);
    }
    // Let time pass and consume results.
    engine.run_until(engine.now() +
                     (1 + rng.below(4)) * kCycle);
    drain_results();
    ASSERT_LE(unit.array().occupancy(), cells);  // invariant (3), bound
  }

  // Close any open session and drain everything.
  for (int i = 0; i < 4; ++i) {
    (void)unit.push_command({CommandKind::kStopInsert, 0, 0, 0});
    engine.run_until(engine.now() + 64 * kCycle);
    drain_results();
  }
  engine.run_until(engine.now() + 2'000 * kCycle);
  drain_results();
  EXPECT_TRUE(outstanding.empty())
      << outstanding.size() << " probes never answered";
  EXPECT_GT(observed_acks, 0u);

  // Invariant (4): a starved unit stops consuming engine events.
  const std::uint64_t events = engine.events_executed();
  engine.run_until(engine.now() + 10'000 * kCycle);
  EXPECT_LE(engine.events_executed() - events, 4u);

  // Bookkeeping closes: every insert either sits in the array, was
  // consumed by a success, was flushed, was dropped over capacity, or
  // vanished in a full RESET (whose per-entry count the unit does not
  // track, hence the inequality that tightens to equality without one).
  const AlpuStats& s = unit.stats();
  const std::uint64_t accounted = unit.array().occupancy() +
                                  s.match_successes + s.flushed_entries;
  EXPECT_LE(accounted, s.inserts);
  if (s.resets == 0) {
    EXPECT_EQ(s.inserts, accounted)
        << "insert conservation broken without any RESET";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlpuFuzz,
    ::testing::Values(std::make_tuple(16, 8, 1), std::make_tuple(32, 8, 2),
                      std::make_tuple(32, 16, 3),
                      std::make_tuple(64, 16, 4),
                      std::make_tuple(128, 32, 5),
                      std::make_tuple(16, 16, 6)));

}  // namespace
}  // namespace alpu::hw
