// Unit tests for alpu::common — FIFO, RNG, stats, time, tables, logging,
// and the cache-resident control-path containers (dense.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dense.hpp"
#include "common/fifo.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace alpu::common {
namespace {

// ---- time ------------------------------------------------------------------

TEST(Time, LiteralsConvert) {
  EXPECT_EQ(1_ns, 1'000u);
  EXPECT_EQ(1_us, 1'000'000u);
  EXPECT_EQ(1_ms, 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_ns(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_us(2'500'000), 2.5);
}

TEST(Time, ClockPeriodFromFrequency) {
  EXPECT_EQ(ClockPeriod::from_mhz(500).period(), 2'000u);
  EXPECT_EQ(ClockPeriod::from_ghz(2).period(), 500u);
  EXPECT_EQ(ClockPeriod::from_mhz(100).period(), 10'000u);
}

TEST(Time, ClockCycles) {
  const ClockPeriod clk = ClockPeriod::from_mhz(500);
  EXPECT_EQ(clk.cycles(7), 14'000u);
  EXPECT_EQ(clk.cycles_in(14'000), 7u);
  EXPECT_EQ(clk.cycles_in(14'001), 7u);
  EXPECT_DOUBLE_EQ(clk.mhz(), 500.0);
}

TEST(Time, NextEdgeRoundsUp) {
  const ClockPeriod clk{2'000};
  EXPECT_EQ(clk.next_edge(0), 0u);        // already on an edge
  EXPECT_EQ(clk.next_edge(2'000), 2'000u);
  EXPECT_EQ(clk.next_edge(1), 2'000u);
  EXPECT_EQ(clk.next_edge(1'999), 2'000u);
  EXPECT_EQ(clk.next_edge(2'001), 4'000u);
}

// ---- BoundedFifo -----------------------------------------------------------

TEST(BoundedFifo, StartsEmpty) {
  BoundedFifo<int> f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.full());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.capacity(), 4u);
  EXPECT_EQ(f.free_slots(), 4u);
}

TEST(BoundedFifo, PushPopFifoOrder) {
  BoundedFifo<int> f(3);
  ASSERT_TRUE(f.try_push(1));
  ASSERT_TRUE(f.try_push(2));
  ASSERT_TRUE(f.try_push(3));
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_EQ(f.pop(), 3);
  EXPECT_TRUE(f.empty());
}

TEST(BoundedFifo, RejectsWhenFull) {
  BoundedFifo<int> f(2);
  ASSERT_TRUE(f.try_push(1));
  ASSERT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.try_push(3));
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.front(), 1);  // nothing was dropped or overwritten
}

TEST(BoundedFifo, WrapsAroundManyTimes) {
  BoundedFifo<int> f(3);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(f.try_push(round));
    ASSERT_TRUE(f.try_push(round + 1000));
    EXPECT_EQ(f.pop(), round);
    EXPECT_EQ(f.pop(), round + 1000);
  }
  EXPECT_TRUE(f.empty());
}

TEST(BoundedFifo, TryPopEmptyReturnsNullopt) {
  BoundedFifo<int> f(1);
  EXPECT_EQ(f.try_pop(), std::nullopt);
  f.push(7);
  EXPECT_EQ(f.try_pop(), std::optional<int>(7));
}

TEST(BoundedFifo, ClearResets) {
  BoundedFifo<int> f(2);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
  ASSERT_TRUE(f.try_push(9));
  EXPECT_EQ(f.front(), 9);
}

TEST(BoundedFifo, MoveOnlyPayload) {
  BoundedFifo<std::unique_ptr<int>> f(2);
  ASSERT_TRUE(f.try_push(std::make_unique<int>(42)));
  auto p = f.pop();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);
}

// ---- RNG -------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(17);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

// ---- RunningStats ----------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsNan) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

// ---- SampleSet -------------------------------------------------------------

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
}

TEST(SampleSet, AddAfterSortResorts) {
  SampleSet s;
  s.add(10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

// ---- Histogram -------------------------------------------------------------

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.9);    // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow (half-open)
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
}

// ---- TextTable -------------------------------------------------------------

TEST(TextTable, AlignsAndRenders) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(FmtDouble, TrailingDigits) {
  EXPECT_EQ(fmt_double(1.234, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 1), "1.0");
  EXPECT_EQ(fmt_double(-2.5, 0), "-2");  // round-half-even via printf
}

// ---- logging ---------------------------------------------------------------

TEST(Log, FormatBracesSubstitutesInOrder) {
  EXPECT_EQ(format_braces("a={} b={}", 1, "x"), "a=1 b=x");
  EXPECT_EQ(format_braces("no placeholders"), "no placeholders");
  EXPECT_EQ(format_braces("extra {} {}", 1), "extra 1 {}");
  EXPECT_EQ(format_braces("{}{}{}", 1, 2, 3), "123");
}

TEST(Log, LevelGateDefaultsOff) {
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
}

// ---- DenseNodeTable --------------------------------------------------------

TEST(DenseNodeTable, IndexedAccessAndGrowth) {
  DenseNodeTable<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(0), nullptr);
  t[3] = 42;
  EXPECT_EQ(t.size(), 4u);  // grows to cover the id
  EXPECT_EQ(t[3], 42);
  ASSERT_NE(t.find(3), nullptr);
  EXPECT_EQ(*t.find(3), 42);
  ASSERT_NE(t.find(1), nullptr);  // covered, default-constructed
  EXPECT_EQ(*t.find(1), 0);
  EXPECT_EQ(t.find(4), nullptr);  // never covered
}

TEST(DenseNodeTable, IterationIsIndexOrder) {
  DenseNodeTable<int> t;
  t.reserve(5);
  // Write in scrambled order; iteration must still be index order.
  for (std::uint32_t id : {4u, 0u, 2u, 1u, 3u}) t[id] = static_cast<int>(id);
  std::vector<int> seen(t.begin(), t.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DenseNodeTable, ReserveMakesSteadyStateAllocationFree) {
  DenseNodeTable<std::uint64_t> t;
  std::uint64_t allocs = 0, bytes = 0;
  t.set_alloc_sink(AllocSink{&allocs, &bytes});
  t.reserve(64);
  EXPECT_GE(allocs, 1u);  // setup growth is counted...
  const std::uint64_t setup_allocs = allocs;
  for (std::uint32_t id = 0; id < 64; ++id) t[id] = id;  // ...but the
  EXPECT_EQ(allocs, setup_allocs);  // reserved range never grows again
  EXPECT_GT(bytes, 0u);
}

// ---- FlatMap ---------------------------------------------------------------

TEST(FlatMap, InsertFindEraseBasics) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(7));
  m[7] = 70;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(7));
  ASSERT_NE(m.find(9), nullptr);
  EXPECT_EQ(*m.find(9), 90);
  EXPECT_EQ(m.at(7), 70);
  EXPECT_EQ(m.find(8), nullptr);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));  // already gone
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_TRUE(m.check_invariants());
}

TEST(FlatMap, IterationFollowsInsertionOrderAcrossEraseAndRehash) {
  FlatMap<std::uint64_t, int> m;
  std::vector<std::uint64_t> order;
  // Enough keys to force several rehashes from the 8-bucket floor.
  for (std::uint64_t k = 1000; k < 1100; ++k) {
    m[k] = static_cast<int>(k);
    order.push_back(k);
  }
  // Erase every third key; survivors keep their relative order.
  std::vector<std::uint64_t> survivors;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(m.erase(order[i]));
    } else {
      survivors.push_back(order[i]);
    }
  }
  // New insertions (recycling freed slots) append at the tail.
  for (std::uint64_t k = 5000; k < 5010; ++k) {
    m[k] = static_cast<int>(k);
    survivors.push_back(k);
  }
  std::vector<std::uint64_t> walked;
  for (const auto& [key, value] : m) {
    walked.push_back(key);
    EXPECT_EQ(value, static_cast<int>(key));
  }
  EXPECT_EQ(walked, survivors);
  EXPECT_TRUE(m.check_invariants());
}

TEST(FlatMap, RecycledSlotsStartClean) {
  FlatMap<std::uint64_t, std::vector<int>> m;
  m[1] = {1, 2, 3};
  EXPECT_TRUE(m.erase(1));
  // The next insertion reuses the freed slot; its value must be V{},
  // not the previous occupant's protocol state.
  std::vector<int>& fresh = m[2];
  EXPECT_TRUE(fresh.empty());
  EXPECT_TRUE(m.check_invariants());
}

TEST(FlatMap, SteadyStateChurnIsAllocationFree) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::uint64_t allocs = 0, bytes = 0;
  m.set_alloc_sink(AllocSink{&allocs, &bytes});
  m.reserve(128);
  // Warm the free list to its high-water mark once.
  for (std::uint64_t k = 0; k < 128; ++k) m[k] = k;
  for (std::uint64_t k = 0; k < 128; ++k) m.erase(k);
  const std::uint64_t warm_allocs = allocs;
  // Steady state: insert/erase churn at the same population must never
  // touch the allocator again (slots recycle, index never rehashes).
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t k = 0; k < 100; ++k) m[0x1000u * round + k] = k;
    for (std::uint64_t k = 0; k < 100; ++k) m.erase(0x1000u * round + k);
  }
  EXPECT_EQ(allocs, warm_allocs);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.check_invariants());
}

TEST(FlatMap, ClearKeepsCapacityAndResetsContents) {
  FlatMap<std::uint64_t, int> m;
  std::uint64_t allocs = 0;
  m.set_alloc_sink(AllocSink{&allocs, nullptr});
  m.reserve(32);
  for (std::uint64_t k = 0; k < 32; ++k) m[k] = 1;
  const std::uint64_t warm_allocs = allocs;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(3), nullptr);
  for (std::uint64_t k = 0; k < 32; ++k) m[k] = 2;  // refill: no growth
  EXPECT_EQ(allocs, warm_allocs);
  EXPECT_TRUE(m.check_invariants());
}

// Differential fuzz: FlatMap vs std::map contents and vs an explicit
// insertion-order list (std::unordered_map cross-checks find()).  Every
// operation the control path performs — find-or-insert, overwrite,
// erase, lookup — must agree with the reference on every step, and the
// structural invariants must hold throughout.
TEST(FlatMap, DifferentialFuzzAgainstStdMaps) {
  Xoshiro256 rng(0xF1A77EEDu);
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::map<std::uint64_t, std::uint64_t> ordered;
  std::unordered_map<std::uint64_t, std::uint64_t> hashed;
  std::vector<std::uint64_t> insertion_order;

  const auto reference_erase = [&](std::uint64_t key) {
    ordered.erase(key);
    hashed.erase(key);
    for (std::size_t i = 0; i < insertion_order.size(); ++i) {
      if (insertion_order[i] == key) {
        insertion_order.erase(insertion_order.begin() +
                              static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  };

  for (int step = 0; step < 20'000; ++step) {
    // Small key space keeps collision/recycle pressure high.
    const std::uint64_t key = rng.below(512);
    switch (rng.below(4)) {
      case 0:
      case 1: {  // find-or-insert + overwrite
        const bool existed = ordered.count(key) != 0;
        const std::uint64_t value = rng();
        flat[key] = value;
        ordered[key] = value;
        hashed[key] = value;
        if (!existed) insertion_order.push_back(key);
        break;
      }
      case 2: {  // erase
        const bool expect_hit = ordered.count(key) != 0;
        EXPECT_EQ(flat.erase(key), expect_hit);
        if (expect_hit) reference_erase(key);
        break;
      }
      default: {  // lookup
        const auto it = hashed.find(key);
        const std::uint64_t* got = flat.find(key);
        if (it == hashed.end()) {
          EXPECT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr);
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ordered.size());
    if (step % 1'000 == 999) {
      ASSERT_TRUE(flat.check_invariants()) << "at step " << step;
      // Full sweep: iteration order == insertion order, values match.
      std::size_t i = 0;
      for (const auto& [k, v] : flat) {
        ASSERT_LT(i, insertion_order.size());
        ASSERT_EQ(k, insertion_order[i]) << "at step " << step;
        ASSERT_EQ(v, ordered.at(k));
        ++i;
      }
      ASSERT_EQ(i, insertion_order.size());
    }
  }
  EXPECT_TRUE(flat.check_invariants());
}

// Two maps fed the same operation sequence must walk identically —
// the determinism contract the NIC control path relies on (CSV output
// iterates rendezvous/cookie tables).
TEST(FlatMap, IdenticalHistoriesIterateIdentically) {
  const auto drive = [](FlatMap<std::uint64_t, int>& m) {
    Xoshiro256 rng(42);
    for (int i = 0; i < 2'000; ++i) {
      const std::uint64_t key = rng.below(64);
      if (rng.below(3) == 0) {
        m.erase(key);
      } else {
        m[key] = static_cast<int>(i);
      }
    }
  };
  FlatMap<std::uint64_t, int> a, b;
  drive(a);
  drive(b);
  ASSERT_EQ(a.size(), b.size());
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    EXPECT_EQ((*ita).first, (*itb).first);
    EXPECT_EQ((*ita).second, (*itb).second);
  }
}

}  // namespace
}  // namespace alpu::common
