// Unit tests for alpu::common — FIFO, RNG, stats, time, tables, logging.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/fifo.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace alpu::common {
namespace {

// ---- time ------------------------------------------------------------------

TEST(Time, LiteralsConvert) {
  EXPECT_EQ(1_ns, 1'000u);
  EXPECT_EQ(1_us, 1'000'000u);
  EXPECT_EQ(1_ms, 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_ns(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_us(2'500'000), 2.5);
}

TEST(Time, ClockPeriodFromFrequency) {
  EXPECT_EQ(ClockPeriod::from_mhz(500).period(), 2'000u);
  EXPECT_EQ(ClockPeriod::from_ghz(2).period(), 500u);
  EXPECT_EQ(ClockPeriod::from_mhz(100).period(), 10'000u);
}

TEST(Time, ClockCycles) {
  const ClockPeriod clk = ClockPeriod::from_mhz(500);
  EXPECT_EQ(clk.cycles(7), 14'000u);
  EXPECT_EQ(clk.cycles_in(14'000), 7u);
  EXPECT_EQ(clk.cycles_in(14'001), 7u);
  EXPECT_DOUBLE_EQ(clk.mhz(), 500.0);
}

TEST(Time, NextEdgeRoundsUp) {
  const ClockPeriod clk{2'000};
  EXPECT_EQ(clk.next_edge(0), 0u);        // already on an edge
  EXPECT_EQ(clk.next_edge(2'000), 2'000u);
  EXPECT_EQ(clk.next_edge(1), 2'000u);
  EXPECT_EQ(clk.next_edge(1'999), 2'000u);
  EXPECT_EQ(clk.next_edge(2'001), 4'000u);
}

// ---- BoundedFifo -----------------------------------------------------------

TEST(BoundedFifo, StartsEmpty) {
  BoundedFifo<int> f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.full());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.capacity(), 4u);
  EXPECT_EQ(f.free_slots(), 4u);
}

TEST(BoundedFifo, PushPopFifoOrder) {
  BoundedFifo<int> f(3);
  ASSERT_TRUE(f.try_push(1));
  ASSERT_TRUE(f.try_push(2));
  ASSERT_TRUE(f.try_push(3));
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_EQ(f.pop(), 3);
  EXPECT_TRUE(f.empty());
}

TEST(BoundedFifo, RejectsWhenFull) {
  BoundedFifo<int> f(2);
  ASSERT_TRUE(f.try_push(1));
  ASSERT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.try_push(3));
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.front(), 1);  // nothing was dropped or overwritten
}

TEST(BoundedFifo, WrapsAroundManyTimes) {
  BoundedFifo<int> f(3);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(f.try_push(round));
    ASSERT_TRUE(f.try_push(round + 1000));
    EXPECT_EQ(f.pop(), round);
    EXPECT_EQ(f.pop(), round + 1000);
  }
  EXPECT_TRUE(f.empty());
}

TEST(BoundedFifo, TryPopEmptyReturnsNullopt) {
  BoundedFifo<int> f(1);
  EXPECT_EQ(f.try_pop(), std::nullopt);
  f.push(7);
  EXPECT_EQ(f.try_pop(), std::optional<int>(7));
}

TEST(BoundedFifo, ClearResets) {
  BoundedFifo<int> f(2);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
  ASSERT_TRUE(f.try_push(9));
  EXPECT_EQ(f.front(), 9);
}

TEST(BoundedFifo, MoveOnlyPayload) {
  BoundedFifo<std::unique_ptr<int>> f(2);
  ASSERT_TRUE(f.try_push(std::make_unique<int>(42)));
  auto p = f.pop();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);
}

// ---- RNG -------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(17);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

// ---- RunningStats ----------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsNan) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

// ---- SampleSet -------------------------------------------------------------

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
}

TEST(SampleSet, AddAfterSortResorts) {
  SampleSet s;
  s.add(10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

// ---- Histogram -------------------------------------------------------------

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.9);    // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow (half-open)
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
}

// ---- TextTable -------------------------------------------------------------

TEST(TextTable, AlignsAndRenders) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(FmtDouble, TrailingDigits) {
  EXPECT_EQ(fmt_double(1.234, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 1), "1.0");
  EXPECT_EQ(fmt_double(-2.5, 0), "-2");  // round-half-even via printf
}

// ---- logging ---------------------------------------------------------------

TEST(Log, FormatBracesSubstitutesInOrder) {
  EXPECT_EQ(format_braces("a={} b={}", 1, "x"), "a=1 b=x");
  EXPECT_EQ(format_braces("no placeholders"), "no placeholders");
  EXPECT_EQ(format_braces("extra {} {}", 1), "extra 1 {}");
  EXPECT_EQ(format_braces("{}{}{}", 1, 2, 3), "123");
}

TEST(Log, LevelGateDefaultsOff) {
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
}

}  // namespace
}  // namespace alpu::common
