// Tests for the bounded model checker (src/check/): the spec's own
// semantics, known-good exhaustive runs over every implementation, and
// the checker's teeth — a seeded compaction bug must be caught with a
// minimal counterexample.
#include <gtest/gtest.h>

#include <vector>

#include "alpu/alpu.hpp"
#include "alpu/array.hpp"
#include "check/checker.hpp"
#include "check/spec.hpp"
#include "match/match.hpp"
#include "sim/engine.hpp"

namespace alpu::check {
namespace {

using hw::AlpuFlavor;

// ---- ListSpec self-consistency --------------------------------------------

TEST(ListSpec, OldestMatchWinsAndDeletes) {
  ListSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  const MatchWord h = match::pack({1, 2, 3});
  EXPECT_TRUE(spec.insert(h, 0, 11));
  EXPECT_TRUE(spec.insert(h, 0, 22));

  const SpecMatch first = spec.match_and_delete(h, 0);
  ASSERT_TRUE(first.hit);
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(first.cookie, 11u);  // FIFO among equal entries

  const SpecMatch second = spec.match_and_delete(h, 0);
  ASSERT_TRUE(second.hit);
  EXPECT_EQ(second.cookie, 22u);
  EXPECT_FALSE(spec.match(h, 0).hit);
}

TEST(ListSpec, PostedFlavourUsesStoredMask) {
  ListSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  const match::Pattern wild = match::make_recv_pattern(1, std::nullopt, 5);
  EXPECT_TRUE(spec.insert(wild.bits, wild.mask, 7));
  // Any source matches; a different tag does not.
  EXPECT_TRUE(spec.match(match::pack({1, 9, 5}), 0).hit);
  EXPECT_FALSE(spec.match(match::pack({1, 9, 6}), 0).hit);
}

TEST(ListSpec, UnexpectedFlavourUsesProbeMask) {
  ListSpec spec(AlpuFlavor::kUnexpected, 4, match::kFullMask);
  EXPECT_TRUE(spec.insert(match::pack({1, 2, 3}), 0, 7));
  const match::Pattern wild = match::make_recv_pattern(1, std::nullopt, 3);
  EXPECT_TRUE(spec.match(wild.bits, wild.mask).hit);
  EXPECT_FALSE(spec.match(match::pack({1, 9, 3}), 0).hit);  // exact probe
}

TEST(ListSpec, SweepRemovesSelectorMatchesOnly) {
  ListSpec spec(AlpuFlavor::kUnexpected, 4, match::kFullMask);
  EXPECT_TRUE(spec.insert(match::pack({1, 1, 0}), 0, 1));
  EXPECT_TRUE(spec.insert(match::pack({1, 2, 0}), 0, 2));
  EXPECT_TRUE(spec.insert(match::pack({1, 1, 9}), 0, 3));
  const match::Pattern sel = match::make_recv_pattern(1, 1, std::nullopt);
  EXPECT_EQ(spec.sweep(sel.bits, sel.mask), 2u);
  ASSERT_EQ(spec.size(), 1u);
  EXPECT_EQ(spec.entries()[0].cookie, 2u);
}

TEST(ListSpec, InsertRespectsCapacity) {
  ListSpec spec(AlpuFlavor::kPostedReceive, 2, match::kFullMask);
  EXPECT_TRUE(spec.insert(1, 0, 1));
  EXPECT_TRUE(spec.insert(2, 0, 2));
  EXPECT_FALSE(spec.insert(3, 0, 3));
  EXPECT_EQ(spec.size(), 2u);
}

// ---- ProtocolSpec: the Figure-3 held-failure rule -------------------------

TEST(ProtocolSpec, HeldFailureResolvesAtStopInsert) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;

  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kStartAck);
  EXPECT_EQ(out[0].free_slots, 4u);

  // A probe that misses inside insert mode is held, not answered.
  out.clear();
  spec.apply(Op{OpKind::kProbe, match::pack({1, 0, 0}), 0, 0, 1}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(spec.has_held_probe());

  // STOP INSERT releases it as a failure.
  out.clear();
  spec.apply(Op{OpKind::kEnd, 0, 0, 0, 0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kMatchFailure);
  EXPECT_EQ(out[0].probe_seq, 1u);
  EXPECT_FALSE(spec.has_held_probe());
}

TEST(ProtocolSpec, HeldFailureRetriesAfterInsert) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;
  const MatchWord h = match::pack({1, 0, 0});

  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  out.clear();
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 1}, out);
  EXPECT_TRUE(out.empty());

  // The matching insert triggers the retry; the held probe succeeds
  // (and deletes the entry) without waiting for STOP INSERT.
  spec.apply(Op{OpKind::kInsert, h, 0, 5, 0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kMatchSuccess);
  EXPECT_EQ(out[0].cookie, 5u);
  EXPECT_EQ(out[0].probe_seq, 1u);
  EXPECT_FALSE(spec.has_held_probe());
  EXPECT_EQ(spec.list().size(), 0u);
}

TEST(ProtocolSpec, QueuedProbesDrainBehindHeldInOrder) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;
  const MatchWord h = match::pack({1, 0, 0});

  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  out.clear();
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 1}, out);  // misses -> held
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 2}, out);  // queued behind it
  EXPECT_TRUE(out.empty());

  // Two matching entries: the retry answers probe 1, then the queue
  // drains probe 2 — responses in probe order.
  spec.apply(Op{OpKind::kInsert, h, 0, 5, 0}, out);
  spec.apply(Op{OpKind::kInsert, h, 0, 6, 0}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].probe_seq, 1u);
  EXPECT_EQ(out[0].cookie, 5u);
  EXPECT_EQ(out[1].probe_seq, 2u);
  EXPECT_EQ(out[1].cookie, 6u);
}

// ---- probe rejection composes with held failures and retries --------------

TEST(ProtocolSpec, ProbeRejectedIsAPureNoOp) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;
  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  out.clear();
  spec.apply(Op{OpKind::kProbe, match::pack({1, 0, 0}), 0, 0, 1}, out);
  ASSERT_TRUE(out.empty());  // held

  // The refusal leaves no trace: no response, no state change, and the
  // held probe stays held (settle must make no progress).
  spec.apply(Op{OpKind::kProbeRejected, 0, 0, 0, 0}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(spec.has_held_probe());
  EXPECT_TRUE(spec.in_insert_mode());
  EXPECT_EQ(spec.list().size(), 0u);
}

TEST(ProtocolSpec, ProbeRejectionComposesWithHeldFailureRetry) {
  // Drive a REAL transaction-level unit with a depth-1 header FIFO into
  // a deterministic rejection, then prove the rejected-then-retried
  // sequence is response-equivalent to the spec with kProbeRejected
  // spliced in:
  //
  //   probe 1 misses and is held -> header consumption pauses
  //   probe 2 accepted, parked in the (now full) FIFO
  //   probe 3 REJECTED by the full FIFO        <- Op kProbeRejected
  //   insert A retries the held probe 1 -> success; probe 2 becomes held
  //   probe 3 re-offered -> accepted this time <- the firmware's retry
  //   insert B retries probe 2 -> success; probe 3 becomes held
  //   STOP INSERT resolves probe 3 as the failure it is
  sim::Engine engine;
  hw::AlpuConfig cfg;
  cfg.flavor = AlpuFlavor::kPostedReceive;
  cfg.total_cells = 4;
  cfg.block_size = 2;
  cfg.header_fifo_depth = 1;
  hw::Alpu unit(engine, "dut", cfg);
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  const MatchWord h = match::pack({1, 0, 0});

  // Run device and spec in lock-step; both must agree after every op.
  auto step = [&](const Op& op, bool push_to_device = true) {
    if (push_to_device) {
      bool ok = true;
      switch (op.kind) {
        case OpKind::kBegin:
          ok = unit.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
          break;
        case OpKind::kEnd:
          ok = unit.push_command({hw::CommandKind::kStopInsert, 0, 0, 0});
          break;
        case OpKind::kInsert:
          ok = unit.push_command(
              {hw::CommandKind::kInsert, op.bits, op.mask, op.cookie});
          break;
        case OpKind::kProbe:
          ok = unit.push_probe({op.bits, op.mask, op.seq});
          break;
        default:
          break;
      }
      EXPECT_TRUE(ok) << to_string(op);
    }
    engine.run();
    std::vector<SpecResponse> got;
    while (std::optional<hw::Response> r = unit.pop_result()) {
      got.push_back(
          SpecResponse{r->kind, r->cookie, r->free_slots, r->probe_seq});
    }
    std::vector<SpecResponse> want;
    spec.apply(op, want);
    EXPECT_EQ(got, want) << "diverged at " << to_string(op);
    EXPECT_EQ(unit.occupancy(), spec.list().size());
  };

  step(Op{OpKind::kBegin, 0, 0, 0, 0});
  step(Op{OpKind::kProbe, h, 0, 0, 1});  // misses -> held
  step(Op{OpKind::kProbe, h, 0, 0, 2});  // parked in the depth-1 FIFO

  // The third probe is refused by the full FIFO: the device never sees
  // it, and the spec records the refusal as an explicit no-op.
  EXPECT_FALSE(unit.push_probe({h, 0, 3}));
  step(Op{OpKind::kProbeRejected, 0, 0, 0, 0}, /*push_to_device=*/false);

  step(Op{OpKind::kInsert, h, 0, 11, 0});  // retry answers probe 1
  step(Op{OpKind::kProbe, h, 0, 0, 3});    // the firmware re-offers probe 3
  step(Op{OpKind::kInsert, h, 0, 22, 0});  // retry answers probe 2
  step(Op{OpKind::kEnd, 0, 0, 0, 0});      // probe 3 resolves as failure
  EXPECT_EQ(unit.occupancy(), 0u);
}

// ---- known-good exhaustive runs -------------------------------------------

class ExhaustiveCheck
    : public ::testing::TestWithParam<std::tuple<ImplKind, AlpuFlavor>> {};

// Depth 5 on a 4-cell array keeps the whole matrix (4 impls x 2
// flavours) under a second; CI's model-check job runs depth 6 via
// `alpusim check`.
TEST_P(ExhaustiveCheck, MatchesSpec) {
  const auto [impl, flavor] = GetParam();
  CheckOptions opt;
  opt.depth = 5;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result = check_impl(impl, flavor, opt);
  EXPECT_TRUE(result.ok) << format_counterexample(result);
  EXPECT_GT(result.sequences, 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, ExhaustiveCheck,
    ::testing::Combine(::testing::Values(ImplKind::kArray,
                                         ImplKind::kReference,
                                         ImplKind::kTransaction,
                                         ImplKind::kPipelined),
                       ::testing::Values(AlpuFlavor::kPostedReceive,
                                         AlpuFlavor::kUnexpected)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

// ---- the checker has teeth ------------------------------------------------

class InjectedBug : public ::testing::Test {
 protected:
  void TearDown() override {
    hw::testing::inject_compaction_off_by_one = false;
  }
};

TEST_F(InjectedBug, CompactionOffByOneIsCaughtWithCounterexample) {
  hw::testing::inject_compaction_off_by_one = true;
  CheckOptions opt;
  opt.depth = 5;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result =
      check_impl(ImplKind::kArray, AlpuFlavor::kPostedReceive, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_FALSE(result.divergence.empty());

  // The minimal trace: two inserts and the probe that deletes the
  // older one (deleting with no younger survivors cannot misplace
  // anything, so nothing shorter can expose a compaction bug).
  ASSERT_EQ(result.counterexample.size(), 3u);
  EXPECT_EQ(result.counterexample[0].kind, OpKind::kInsert);
  EXPECT_EQ(result.counterexample[1].kind, OpKind::kInsert);
  EXPECT_EQ(result.counterexample[2].kind, OpKind::kProbe);
}

TEST_F(InjectedBug, TransactionUnitInheritsTheBug) {
  // The transaction-level Alpu wraps AlpuArray, so the protocol tier
  // must catch the same datapath bug through the FIFO interface.
  hw::testing::inject_compaction_off_by_one = true;
  CheckOptions opt;
  opt.depth = 5;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result =
      check_impl(ImplKind::kTransaction, AlpuFlavor::kPostedReceive, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST_F(InjectedBug, ReferenceOracleIsUnaffected) {
  // The injection hook lives in the SoA engine only; the reference
  // implementation must keep passing — that asymmetry is exactly what
  // differential checking buys.
  hw::testing::inject_compaction_off_by_one = true;
  CheckOptions opt;
  opt.depth = 4;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result =
      check_impl(ImplKind::kReference, AlpuFlavor::kPostedReceive, opt);
  EXPECT_TRUE(result.ok) << format_counterexample(result);
}

}  // namespace
}  // namespace alpu::check
