// Tests for the bounded model checker (src/check/): the spec's own
// semantics, known-good exhaustive runs over every implementation, and
// the checker's teeth — a seeded compaction bug must be caught with a
// minimal counterexample.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "alpu/alpu.hpp"
#include "alpu/array.hpp"
#include "check/checker.hpp"
#include "check/flow.hpp"
#include "check/spec.hpp"
#include "match/match.hpp"
#include "net/network.hpp"
#include "nic/reliability.hpp"
#include "sim/engine.hpp"

namespace alpu::check {
namespace {

using hw::AlpuFlavor;

// ---- ListSpec self-consistency --------------------------------------------

TEST(ListSpec, OldestMatchWinsAndDeletes) {
  ListSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  const MatchWord h = match::pack({1, 2, 3});
  EXPECT_TRUE(spec.insert(h, 0, 11));
  EXPECT_TRUE(spec.insert(h, 0, 22));

  const SpecMatch first = spec.match_and_delete(h, 0);
  ASSERT_TRUE(first.hit);
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(first.cookie, 11u);  // FIFO among equal entries

  const SpecMatch second = spec.match_and_delete(h, 0);
  ASSERT_TRUE(second.hit);
  EXPECT_EQ(second.cookie, 22u);
  EXPECT_FALSE(spec.match(h, 0).hit);
}

TEST(ListSpec, PostedFlavourUsesStoredMask) {
  ListSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  const match::Pattern wild = match::make_recv_pattern(1, std::nullopt, 5);
  EXPECT_TRUE(spec.insert(wild.bits, wild.mask, 7));
  // Any source matches; a different tag does not.
  EXPECT_TRUE(spec.match(match::pack({1, 9, 5}), 0).hit);
  EXPECT_FALSE(spec.match(match::pack({1, 9, 6}), 0).hit);
}

TEST(ListSpec, UnexpectedFlavourUsesProbeMask) {
  ListSpec spec(AlpuFlavor::kUnexpected, 4, match::kFullMask);
  EXPECT_TRUE(spec.insert(match::pack({1, 2, 3}), 0, 7));
  const match::Pattern wild = match::make_recv_pattern(1, std::nullopt, 3);
  EXPECT_TRUE(spec.match(wild.bits, wild.mask).hit);
  EXPECT_FALSE(spec.match(match::pack({1, 9, 3}), 0).hit);  // exact probe
}

TEST(ListSpec, SweepRemovesSelectorMatchesOnly) {
  ListSpec spec(AlpuFlavor::kUnexpected, 4, match::kFullMask);
  EXPECT_TRUE(spec.insert(match::pack({1, 1, 0}), 0, 1));
  EXPECT_TRUE(spec.insert(match::pack({1, 2, 0}), 0, 2));
  EXPECT_TRUE(spec.insert(match::pack({1, 1, 9}), 0, 3));
  const match::Pattern sel = match::make_recv_pattern(1, 1, std::nullopt);
  EXPECT_EQ(spec.sweep(sel.bits, sel.mask), 2u);
  ASSERT_EQ(spec.size(), 1u);
  EXPECT_EQ(spec.entries()[0].cookie, 2u);
}

TEST(ListSpec, InsertRespectsCapacity) {
  ListSpec spec(AlpuFlavor::kPostedReceive, 2, match::kFullMask);
  EXPECT_TRUE(spec.insert(1, 0, 1));
  EXPECT_TRUE(spec.insert(2, 0, 2));
  EXPECT_FALSE(spec.insert(3, 0, 3));
  EXPECT_EQ(spec.size(), 2u);
}

// ---- ProtocolSpec: the Figure-3 held-failure rule -------------------------

TEST(ProtocolSpec, HeldFailureResolvesAtStopInsert) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;

  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kStartAck);
  EXPECT_EQ(out[0].free_slots, 4u);

  // A probe that misses inside insert mode is held, not answered.
  out.clear();
  spec.apply(Op{OpKind::kProbe, match::pack({1, 0, 0}), 0, 0, 1}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(spec.has_held_probe());

  // STOP INSERT releases it as a failure.
  out.clear();
  spec.apply(Op{OpKind::kEnd, 0, 0, 0, 0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kMatchFailure);
  EXPECT_EQ(out[0].probe_seq, 1u);
  EXPECT_FALSE(spec.has_held_probe());
}

TEST(ProtocolSpec, HeldFailureRetriesAfterInsert) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;
  const MatchWord h = match::pack({1, 0, 0});

  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  out.clear();
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 1}, out);
  EXPECT_TRUE(out.empty());

  // The matching insert triggers the retry; the held probe succeeds
  // (and deletes the entry) without waiting for STOP INSERT.
  spec.apply(Op{OpKind::kInsert, h, 0, 5, 0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kMatchSuccess);
  EXPECT_EQ(out[0].cookie, 5u);
  EXPECT_EQ(out[0].probe_seq, 1u);
  EXPECT_FALSE(spec.has_held_probe());
  EXPECT_EQ(spec.list().size(), 0u);
}

TEST(ProtocolSpec, QueuedProbesDrainBehindHeldInOrder) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;
  const MatchWord h = match::pack({1, 0, 0});

  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  out.clear();
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 1}, out);  // misses -> held
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 2}, out);  // queued behind it
  EXPECT_TRUE(out.empty());

  // Two matching entries: the retry answers probe 1, then the queue
  // drains probe 2 — responses in probe order.
  spec.apply(Op{OpKind::kInsert, h, 0, 5, 0}, out);
  spec.apply(Op{OpKind::kInsert, h, 0, 6, 0}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].probe_seq, 1u);
  EXPECT_EQ(out[0].cookie, 5u);
  EXPECT_EQ(out[1].probe_seq, 2u);
  EXPECT_EQ(out[1].cookie, 6u);
}

// ---- probe rejection composes with held failures and retries --------------

TEST(ProtocolSpec, ProbeRejectedIsAPureNoOp) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;
  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  out.clear();
  spec.apply(Op{OpKind::kProbe, match::pack({1, 0, 0}), 0, 0, 1}, out);
  ASSERT_TRUE(out.empty());  // held

  // The refusal leaves no trace: no response, no state change, and the
  // held probe stays held (settle must make no progress).
  spec.apply(Op{OpKind::kProbeRejected, 0, 0, 0, 0}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(spec.has_held_probe());
  EXPECT_TRUE(spec.in_insert_mode());
  EXPECT_EQ(spec.list().size(), 0u);
}

TEST(ProtocolSpec, ProbeRejectionComposesWithHeldFailureRetry) {
  // Drive a REAL transaction-level unit with a depth-1 header FIFO into
  // a deterministic rejection, then prove the rejected-then-retried
  // sequence is response-equivalent to the spec with kProbeRejected
  // spliced in:
  //
  //   probe 1 misses and is held -> header consumption pauses
  //   probe 2 accepted, parked in the (now full) FIFO
  //   probe 3 REJECTED by the full FIFO        <- Op kProbeRejected
  //   insert A retries the held probe 1 -> success; probe 2 becomes held
  //   probe 3 re-offered -> accepted this time <- the firmware's retry
  //   insert B retries probe 2 -> success; probe 3 becomes held
  //   STOP INSERT resolves probe 3 as the failure it is
  sim::Engine engine;
  hw::AlpuConfig cfg;
  cfg.flavor = AlpuFlavor::kPostedReceive;
  cfg.total_cells = 4;
  cfg.block_size = 2;
  cfg.header_fifo_depth = 1;
  hw::Alpu unit(engine, "dut", cfg);
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  const MatchWord h = match::pack({1, 0, 0});

  // Run device and spec in lock-step; both must agree after every op.
  auto step = [&](const Op& op, bool push_to_device = true) {
    if (push_to_device) {
      bool ok = true;
      switch (op.kind) {
        case OpKind::kBegin:
          ok = unit.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
          break;
        case OpKind::kEnd:
          ok = unit.push_command({hw::CommandKind::kStopInsert, 0, 0, 0});
          break;
        case OpKind::kInsert:
          ok = unit.push_command(
              {hw::CommandKind::kInsert, op.bits, op.mask, op.cookie});
          break;
        case OpKind::kProbe:
          ok = unit.push_probe({op.bits, op.mask, op.seq});
          break;
        default:
          break;
      }
      EXPECT_TRUE(ok) << to_string(op);
    }
    engine.run();
    std::vector<SpecResponse> got;
    while (std::optional<hw::Response> r = unit.pop_result()) {
      got.push_back(
          SpecResponse{r->kind, r->cookie, r->free_slots, r->probe_seq});
    }
    std::vector<SpecResponse> want;
    spec.apply(op, want);
    EXPECT_EQ(got, want) << "diverged at " << to_string(op);
    EXPECT_EQ(unit.occupancy(), spec.list().size());
  };

  step(Op{OpKind::kBegin, 0, 0, 0, 0});
  step(Op{OpKind::kProbe, h, 0, 0, 1});  // misses -> held
  step(Op{OpKind::kProbe, h, 0, 0, 2});  // parked in the depth-1 FIFO

  // The third probe is refused by the full FIFO: the device never sees
  // it, and the spec records the refusal as an explicit no-op.
  EXPECT_FALSE(unit.push_probe({h, 0, 3}));
  step(Op{OpKind::kProbeRejected, 0, 0, 0, 0}, /*push_to_device=*/false);

  step(Op{OpKind::kInsert, h, 0, 11, 0});  // retry answers probe 1
  step(Op{OpKind::kProbe, h, 0, 0, 3});    // the firmware re-offers probe 3
  step(Op{OpKind::kInsert, h, 0, 22, 0});  // retry answers probe 2
  step(Op{OpKind::kEnd, 0, 0, 0, 0});      // probe 3 resolves as failure
  EXPECT_EQ(unit.occupancy(), 0u);
}

// ---- known-good exhaustive runs -------------------------------------------

class ExhaustiveCheck
    : public ::testing::TestWithParam<std::tuple<ImplKind, AlpuFlavor>> {};

// Depth 5 on a 4-cell array keeps the whole matrix (4 impls x 2
// flavours) under a second; CI's model-check job runs depth 6 via
// `alpusim check`.
TEST_P(ExhaustiveCheck, MatchesSpec) {
  const auto [impl, flavor] = GetParam();
  CheckOptions opt;
  opt.depth = 5;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result = check_impl(impl, flavor, opt);
  EXPECT_TRUE(result.ok) << format_counterexample(result);
  EXPECT_GT(result.sequences, 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, ExhaustiveCheck,
    ::testing::Combine(::testing::Values(ImplKind::kArray,
                                         ImplKind::kReference,
                                         ImplKind::kTransaction,
                                         ImplKind::kPipelined),
                       ::testing::Values(AlpuFlavor::kPostedReceive,
                                         AlpuFlavor::kUnexpected)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

// ---- the checker has teeth ------------------------------------------------

class InjectedBug : public ::testing::Test {
 protected:
  void TearDown() override {
    hw::testing::inject_compaction_off_by_one = false;
  }
};

TEST_F(InjectedBug, CompactionOffByOneIsCaughtWithCounterexample) {
  hw::testing::inject_compaction_off_by_one = true;
  CheckOptions opt;
  opt.depth = 5;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result =
      check_impl(ImplKind::kArray, AlpuFlavor::kPostedReceive, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_FALSE(result.divergence.empty());

  // The minimal trace: two inserts and the probe that deletes the
  // older one (deleting with no younger survivors cannot misplace
  // anything, so nothing shorter can expose a compaction bug).
  ASSERT_EQ(result.counterexample.size(), 3u);
  EXPECT_EQ(result.counterexample[0].kind, OpKind::kInsert);
  EXPECT_EQ(result.counterexample[1].kind, OpKind::kInsert);
  EXPECT_EQ(result.counterexample[2].kind, OpKind::kProbe);
}

TEST_F(InjectedBug, TransactionUnitInheritsTheBug) {
  // The transaction-level Alpu wraps AlpuArray, so the protocol tier
  // must catch the same datapath bug through the FIFO interface.
  hw::testing::inject_compaction_off_by_one = true;
  CheckOptions opt;
  opt.depth = 5;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result =
      check_impl(ImplKind::kTransaction, AlpuFlavor::kPostedReceive, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST_F(InjectedBug, ReferenceOracleIsUnaffected) {
  // The injection hook lives in the SoA engine only; the reference
  // implementation must keep passing — that asymmetry is exactly what
  // differential checking buys.
  hw::testing::inject_compaction_off_by_one = true;
  CheckOptions opt;
  opt.depth = 4;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result =
      check_impl(ImplKind::kReference, AlpuFlavor::kPostedReceive, opt);
  EXPECT_TRUE(result.ok) << format_counterexample(result);
}

// ---- transient faults: kCorrupt in the alphabet ---------------------------

TEST(ProtocolSpec, CorruptQuarantinesUntilRecoveringReset) {
  ProtocolSpec spec(AlpuFlavor::kPostedReceive, 4, match::kFullMask);
  std::vector<SpecResponse> out;
  const MatchWord h = match::pack({1, 0, 0});

  // Stage one live entry so the quarantine demonstrably hides it.
  spec.apply(Op{OpKind::kBegin, 0, 0, 0, 0}, out);
  spec.apply(Op{OpKind::kInsert, h, 0, 5, 0}, out);
  spec.apply(Op{OpKind::kEnd, 0, 0, 0, 0}, out);
  out.clear();

  spec.apply(Op{OpKind::kCorrupt, /*plane=*/0, /*cell=*/0, /*bit=*/14, 0},
             out);
  EXPECT_TRUE(spec.quarantined());
  EXPECT_TRUE(out.empty());  // a flip has no observable of its own

  // Every probe answers PARITY FAULT in probe order; the entry that
  // would have matched (cookie 5) must not be trusted.
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 1}, out);
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 2}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kParityFault);
  EXPECT_EQ(out[0].probe_seq, 1u);
  EXPECT_EQ(out[1].kind, hw::ResponseKind::kParityFault);
  EXPECT_EQ(out[1].probe_seq, 2u);
  out.clear();

  // RESET is the recovery command: quarantine lifted, storage cleared,
  // normal responses resume.
  spec.apply(Op{OpKind::kReset, 0, 0, 0, 0}, out);
  EXPECT_FALSE(spec.quarantined());
  EXPECT_EQ(spec.list().size(), 0u);
  spec.apply(Op{OpKind::kProbe, h, 0, 0, 3}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, hw::ResponseKind::kMatchFailure);
}

class FaultCheck
    : public ::testing::TestWithParam<std::tuple<ImplKind, AlpuFlavor>> {};

// With faults enabled the enumerator interleaves deterministic bit
// flips with the protocol ops; the implementations must detect each
// one (PARITY FAULT per probe) and recover fully at RESET, at every
// point of every legal sequence.
TEST_P(FaultCheck, CorruptionIsDetectedAndRecoveredEverywhere) {
  const auto [impl, flavor] = GetParam();
  CheckOptions opt;
  opt.depth = 5;
  opt.cells = 4;
  opt.block = 2;
  opt.faults = true;
  const CheckResult result = check_impl(impl, flavor, opt);
  EXPECT_TRUE(result.ok) << format_counterexample(result);

  // The corrupt ops widened the alphabet: strictly more sequences than
  // the fault-free run of the same depth.
  CheckOptions plain = opt;
  plain.faults = false;
  EXPECT_GT(result.sequences, check_impl(impl, flavor, plain).sequences);
}

INSTANTIATE_TEST_SUITE_P(
    FaultModelImpls, FaultCheck,
    ::testing::Combine(::testing::Values(ImplKind::kArray,
                                         ImplKind::kTransaction),
                       ::testing::Values(AlpuFlavor::kPostedReceive,
                                         AlpuFlavor::kUnexpected)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(FaultCheckOptions, IgnoredByImplsWithoutAFaultModel) {
  // The reference oracle and the pipelined RTL carry no fault model:
  // faults=true must not change their alphabet (or their verdict).
  for (const ImplKind impl : {ImplKind::kReference, ImplKind::kPipelined}) {
    CheckOptions opt;
    opt.depth = 4;
    opt.cells = 4;
    opt.block = 2;
    opt.faults = true;
    const CheckResult with = check_impl(impl, AlpuFlavor::kPostedReceive, opt);
    opt.faults = false;
    const CheckResult without =
        check_impl(impl, AlpuFlavor::kPostedReceive, opt);
    EXPECT_TRUE(with.ok) << format_counterexample(with);
    EXPECT_EQ(with.sequences, without.sequences);
  }
}

class SilentFlip : public ::testing::Test {
 protected:
  void TearDown() override {
    hw::testing::inject_silent_flip.store(false, std::memory_order_relaxed);
  }
};

TEST_F(SilentFlip, CheckerCatchesCorruptionBehindTheParityLayer) {
  // The flip bypasses the parity-maintaining accessors, so the fault
  // model itself cannot see it — but the checker's post-step state
  // compare must, proving detection is backed by an independent oracle
  // rather than by the machinery under test.
  hw::testing::inject_silent_flip.store(true, std::memory_order_relaxed);
  CheckOptions opt;
  opt.depth = 4;
  opt.cells = 4;
  opt.block = 2;
  const CheckResult result =
      check_impl(ImplKind::kArray, AlpuFlavor::kPostedReceive, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_FALSE(result.counterexample.empty());
  EXPECT_FALSE(result.divergence.empty());
}

// ---- FlowSpec: the eager flow-control protocol ----------------------------

TEST(FlowSpec, AdmitsUntilBudgetThenNacksAndWakesOnCredit) {
  FlowConfig cfg;
  cfg.pool_bytes = 4096;
  cfg.slots = 2;
  FlowSpec spec(cfg);

  EXPECT_TRUE(spec.apply({FlowOpKind::kSendEager, 1024}).admitted);
  EXPECT_TRUE(spec.apply({FlowOpKind::kSendEager, 1024}).admitted);
  // Both slots pinned: the third offer bounces regardless of bytes.
  const FlowEffect refused = spec.apply({FlowOpKind::kSendEager, 512});
  EXPECT_TRUE(refused.nacked);
  EXPECT_TRUE(spec.held());
  EXPECT_EQ(spec.streak(), 1u);

  // Matching the oldest staged message frees its slot; the credit push
  // wakes the held offer, which now fits and is admitted.
  const FlowEffect match = spec.apply({FlowOpKind::kMatch, 0});
  EXPECT_TRUE(match.credit_push);
  EXPECT_TRUE(match.admitted);
  EXPECT_FALSE(spec.held());
  EXPECT_EQ(spec.streak(), 0u);
  EXPECT_EQ(spec.invariant_violation(), "");
}

TEST(FlowSpec, PoolBudgetRefusesOversizedAndPeakTracksHighWater) {
  FlowConfig cfg;
  cfg.pool_bytes = 4096;
  cfg.slots = 0;  // unlimited slots: bytes are the binding constraint
  FlowSpec spec(cfg);
  EXPECT_TRUE(spec.apply({FlowOpKind::kSendEager, 4096}).admitted);
  EXPECT_TRUE(spec.apply({FlowOpKind::kSendEager, 1}).nacked);
  EXPECT_EQ(spec.peak_pool(), 4096u);
  // Match alone frees no bytes (they stay pinned until the drain DMA) —
  // and with unlimited slots the held 1-byte offer still cannot fit.
  EXPECT_FALSE(spec.apply({FlowOpKind::kMatch, 0}).admitted);
  EXPECT_TRUE(spec.apply({FlowOpKind::kDrain, 0}).admitted);
  EXPECT_EQ(spec.pool_used(), 1u);
  EXPECT_EQ(spec.invariant_violation(), "");
}

TEST(FlowSpec, RepeatedRefusalsDemoteThenFailTheLink) {
  FlowConfig cfg;
  cfg.slots = 1;
  cfg.demote_after = 2;
  cfg.max_streak = 4;
  FlowSpec spec(cfg);
  EXPECT_TRUE(spec.apply({FlowOpKind::kSendEager, 64}).admitted);
  EXPECT_TRUE(spec.apply({FlowOpKind::kSendEager, 64}).nacked);
  const FlowEffect second = spec.apply({FlowOpKind::kRetry, 0});
  EXPECT_TRUE(second.nacked);
  EXPECT_TRUE(second.demoted_now);  // streak hit demote_after
  EXPECT_TRUE(spec.demoted());
  // Backoff retries without a credit exhaust the bounded streak.
  EXPECT_FALSE(spec.apply({FlowOpKind::kRetry, 0}).link_failed);
  EXPECT_FALSE(spec.apply({FlowOpKind::kRetry, 0}).link_failed);
  EXPECT_TRUE(spec.apply({FlowOpKind::kRetry, 0}).link_failed);
  EXPECT_TRUE(spec.failed());
  EXPECT_EQ(spec.invariant_violation(), "");
}

TEST(FlowCheck, BoundedExhaustiveEnumerationHoldsEveryInvariant) {
  FlowCheckOptions options;  // depth 7, 1 KB / 4 KB eager sizes
  const FlowCheckResult result = check_flow(options);
  EXPECT_TRUE(result.ok) << result.counterexample;
  EXPECT_GT(result.sequences, 1000u);
  EXPECT_GT(result.ops, result.sequences);
}

TEST(FlowCheck, UnlimitedBudgetNeverRefuses) {
  FlowCheckOptions options;
  options.config.pool_bytes = 0;
  options.config.slots = 0;
  const FlowCheckResult result = check_flow(options);
  // The "refusal despite unlimited budget" invariant arms on this
  // config: any NACK on an unlimited receiver would be caught here.
  EXPECT_TRUE(result.ok) << result.counterexample;
}

// ---- FlowSpec vs the real ReliabilityLayer pair (differential) ------------

/// Slot-only admission mirroring the spec's `slots` budget (pool
/// unlimited): the binding resource is envelope slots, so a freed slot
/// always fits the held offer — the one regime where the spec's
/// conditional credit wake and the implementation's unconditional one
/// provably coincide (see the kMatch-while-held note below).
struct LockstepAdmission final : nic::EagerAdmission {
  std::uint32_t slots;
  std::uint32_t used = 0;
  explicit LockstepAdmission(std::uint32_t s) : slots(s) {}
  bool try_admit(const net::Packet&) override {
    if (used >= slots) return false;
    ++used;
    return true;
  }
  std::uint64_t credit_bytes() const override { return ~std::uint64_t{0}; }
  std::uint32_t credit_slots() const override { return slots - used; }
};

/// One sender→receiver reliability pair driven transition-by-transition
/// against FlowSpec.  Simulated time advances in 2 us windows — long
/// enough for a send/NACK/credit round trip, far below the 20 us RNR
/// backoff, so the only retries are credit wakes, exactly the
/// transitions the spec models without a kRetry op.
struct FlowLockstep {
  static constexpr std::uint32_t kBytes = 1024;

  check::FlowConfig cfg;
  check::FlowSpec spec;
  sim::Engine engine;
  net::Network net;
  std::vector<std::uint64_t> delivered;
  nic::ReliabilityLayer tx;
  nic::ReliabilityLayer rx;
  LockstepAdmission admission;
  std::uint64_t next_token = 1;
  std::uint64_t expected_delivered = 0;
  std::uint64_t expected_nacks = 0;

  static check::FlowConfig make_cfg(std::uint32_t slots) {
    check::FlowConfig c;
    c.pool_bytes = 0;  // slots are the binding constraint
    c.slots = slots;
    c.demote_after = 99;  // demotion needs backoff retries; out of scope
    return c;
  }
  static nic::ReliabilityConfig make_rel() {
    nic::ReliabilityConfig rel;
    rel.enabled = true;
    rel.base_timeout_ps = 2'000'000'000;  // never fires in these windows
    rel.rnr_demote_after = 99;
    return rel;
  }

  explicit FlowLockstep(std::uint32_t slots)
      : cfg(make_cfg(slots)),
        spec(cfg),
        net(engine, net::NetworkConfig{.wire_latency = 200'000,
                                       .ps_per_byte = 500,
                                       .header_bytes = 32}),
        tx(engine, "n0.rel", make_rel(), net, 0, [](const net::Packet&) {}),
        rx(engine, "n1.rel", make_rel(), net, 1,
           [this](const net::Packet& p) { delivered.push_back(p.token); }),
        admission(slots) {
    net.attach(0, [this](const net::Packet& p) { tx.on_network_delivery(p); });
    net.attach(1, [this](const net::Packet& p) { rx.on_network_delivery(p); });
    rx.set_admission(&admission);
  }

  void window() { engine.run_window(engine.now() + 2'000'000); }

  void step(const FlowOp& op) {
    const FlowEffect effect = spec.apply(op);
    switch (op.kind) {
      case FlowOpKind::kSendEager: {
        net::Packet p;
        p.src = 0;
        p.dst = 1;
        p.kind = net::PacketKind::kEager;
        p.payload_bytes = kBytes;
        p.token = next_token++;
        engine.schedule_at(engine.now(), [this, p] { tx.send(p); });
        break;
      }
      case FlowOpKind::kMatch:
        engine.schedule_at(engine.now(), [this] {
          --admission.used;
          rx.notify_credit_released();
        });
        break;
      case FlowOpKind::kDrain:
        // Pool bytes are unlimited here; the drain's credit release
        // still happens (a stale push at most — the credit queue is
        // empty unless an offer is held).
        engine.schedule_at(engine.now(),
                           [this] { rx.notify_credit_released(); });
        break;
      default:
        FAIL() << "op not modelled in lockstep";
    }
    if (effect.admitted) ++expected_delivered;
    if (effect.nacked) ++expected_nacks;
    window();
    compare();
  }

  void compare() {
    ASSERT_EQ(spec.invariant_violation(), "");
    EXPECT_EQ(admission.used, spec.slots_used());
    EXPECT_EQ(delivered.size(), expected_delivered);
    EXPECT_EQ(rx.stats().rnr_nacks_tx, expected_nacks);
    EXPECT_EQ(tx.rnr_paused_windows(), spec.held() ? 1u : 0u);
    EXPECT_FALSE(tx.any_link_failed());
    EXPECT_EQ(spec.failed(), false);
    // Exactly-once, in order: tokens up the stack are 1..N.
    for (std::size_t i = 0; i < delivered.size(); ++i) {
      ASSERT_EQ(delivered[i], i + 1);
    }
  }
};

TEST(FlowLockstepTest, RandomWalksMatchTheRealReliabilityPair) {
  for (const std::uint32_t slots : {1u, 2u, 3u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE("slots=" + std::to_string(slots) +
                   " seed=" + std::to_string(seed));
      FlowLockstep sim(slots);
      std::uint64_t state = seed * 0x9E3779B97F4A7C15ull;
      auto rng = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      std::deque<std::uint32_t> draining_mirror;
      std::uint32_t staged_mirror = 0;
      for (int i = 0; i < 120 && !::testing::Test::HasFatalFailure(); ++i) {
        FlowOp op;
        if (sim.spec.held()) {
          // While an offer is held, only kMatch keeps the spec's
          // conditional wake and the implementation's unconditional
          // wake equivalent (a drain-credit would re-offer into a
          // still-full receiver: a NACK the spec does not model).
          op = {FlowOpKind::kMatch, 0};
        } else {
          std::vector<FlowOp> legal;
          // Bias toward sends so refusals actually happen.
          if (sim.spec.legal({FlowOpKind::kSendEager, FlowLockstep::kBytes})) {
            legal.push_back({FlowOpKind::kSendEager, FlowLockstep::kBytes});
            legal.push_back({FlowOpKind::kSendEager, FlowLockstep::kBytes});
          }
          if (staged_mirror > 0) legal.push_back({FlowOpKind::kMatch, 0});
          if (!draining_mirror.empty()) legal.push_back({FlowOpKind::kDrain, 0});
          op = legal[rng() % legal.size()];
        }
        if (op.kind == FlowOpKind::kMatch) {
          --staged_mirror;
          draining_mirror.push_back(FlowLockstep::kBytes);
        } else if (op.kind == FlowOpKind::kDrain) {
          draining_mirror.pop_front();
        }
        sim.step(op);
        // A match while held wakes the held offer straight into the
        // freed slot, so staged stays in sync with spec.slots_used().
        staged_mirror = sim.spec.slots_used();
      }
      EXPECT_GT(sim.expected_nacks, 0u);
      EXPECT_GT(sim.expected_delivered, 0u);
    }
  }
}

}  // namespace
}  // namespace alpu::check
