// Determinism audit layer tests (built only under -DALPU_AUDIT=ON).
//
// Covers the three audited properties end to end — Lamport clock
// advancement, safe-horizon enforcement at window boundaries (including
// zero-delay self-sends, which are legal), stale-capture detection on
// recycled coroutine frames — plus the divergence-triage helpers on a
// synthetic two-run mismatch and the seeded lookahead-violation fault
// the CI must-fail step drives.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "common/check.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/process.hpp"
#include "workload/chaos.hpp"

namespace {

using namespace alpu;
using common::TimePs;

struct CheckFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throwing_handler(const char*, int, const char* expr,
                                   const char* msg,
                                   common::CheckSeverity) {
  throw CheckFailure(msg != nullptr && msg[0] != '\0' ? msg : expr);
}

/// Installs the throwing check handler for one test body.
class ThrowingChecks {
 public:
  ThrowingChecks()
      : previous_(common::set_check_failure_handler(throwing_handler)) {}
  ~ThrowingChecks() { common::set_check_failure_handler(previous_); }

 private:
  common::CheckFailureHandler previous_;
};

// ----------------------------------------------------------------------
// Lamport clocks

TEST(Audit, LamportClockCountsEveryExecutedEventPerShard) {
  sim::ShardGroup group(2);
  int fired = 0;
  for (TimePs t : {100u, 200u, 300u}) {
    group.shard(0).schedule_at(t, [&fired] { ++fired; });
  }
  group.shard(1).schedule_at(150, [&fired] { ++fired; });
  group.run_all(/*lookahead=*/50);
  EXPECT_EQ(fired, 4);
  // One on_execute per executed event: the shard Lamport clocks must
  // agree exactly with the engines' own execution counters.
  EXPECT_EQ(group.auditor().shard(0).lamport(),
            group.shard(0).events_executed());
  EXPECT_EQ(group.auditor().shard(1).lamport(),
            group.shard(1).events_executed());
  EXPECT_EQ(group.auditor().shard(0).lamport(), 3u);
  EXPECT_EQ(group.auditor().shard(1).lamport(), 1u);
}

TEST(Audit, HistoryRingResolvesProvenanceOfRecentEvents) {
  sim::ShardGroup group(2);
  // A chain: each event schedules the next, so every stamp's
  // origin_lamport points at a resolvable history record.
  std::function<void(TimePs)> step = [&](TimePs t) {
    if (t >= 500) return;
    group.shard(0).schedule_at(t + 100, [&step, t] { step(t + 100); });
  };
  group.shard(0).schedule_at(100, [&step] { step(100); });
  group.run_all(/*lookahead=*/50);
  const check::ShardAudit& shard0 = group.auditor().shard(0);
  const check::ExecRecord* last = shard0.find(shard0.lamport());
  ASSERT_NE(last, nullptr);
  // Walk the chain back: each hop's origin must resolve until we reach
  // the setup-scheduled root (origin_lamport == 0).
  int hops = 0;
  const check::ExecRecord* cur = last;
  while (cur->stamp.origin_lamport != 0) {
    cur = shard0.find(cur->stamp.origin_lamport);
    ASSERT_NE(cur, nullptr);
    ++hops;
  }
  EXPECT_GE(hops, 3);
  const std::string chain = group.auditor().provenance_chain(last->stamp);
  EXPECT_NE(chain.find("scheduled during setup"), std::string::npos);
}

// ----------------------------------------------------------------------
// Safe horizon / window containment

TEST(Audit, ZeroDelaySelfSendInsideWindowIsLegal) {
  sim::ShardGroup group(2);
  bool inner_fired = false;
  // An event that schedules another at the SAME timestamp (zero delay)
  // stays inside the window; the auditor must accept it (equal
  // timestamps are tie-broken by the engine's sequence numbers).
  group.shard(0).schedule_at(100, [&] {
    group.shard(0).schedule_in(0, [&] { inner_fired = true; });
  });
  group.shard(1).schedule_at(100, [] {});
  group.run_all(/*lookahead=*/1000);
  EXPECT_TRUE(inner_fired);
}

TEST(Audit, EventOutsideWindowIsReported) {
  check::Auditor auditor;
  auditor.bind(1);
  auditor.set_record_mode(true);
  auditor.begin_run(/*lookahead=*/100);
  auditor.begin_window(1000, 1100);
  check::EventStamp stamp;  // local event scheduled during setup
  // Monotone time order (the monotonicity check is itself audited):
  // before the window start, two legal in-window events, then exactly
  // at the (exclusive) end.
  auditor.shard(0).on_execute(/*when=*/900, stamp);  // before start
  auditor.shard(0).on_execute(/*when=*/1000, stamp);
  auditor.shard(0).on_execute(/*when=*/1099, stamp);
  auditor.shard(0).on_execute(/*when=*/1100, stamp);  // at end
  ASSERT_EQ(auditor.violations().size(), 2u);
  EXPECT_NE(auditor.violations()[0].find("outside its lookahead window"),
            std::string::npos);
  EXPECT_NE(auditor.violations()[1].find("outside its lookahead window"),
            std::string::npos);
}

TEST(Audit, CrossShardPostInsideForbiddenWindowIsReported) {
  check::Auditor auditor;
  auditor.bind(2);
  auditor.set_record_mode(true);
  auditor.begin_run(/*lookahead=*/100);
  auditor.begin_window(0, 100);  // gen 1: the contract now applies
  check::CrossStamp key;
  key.when = 120;
  key.sent_at = 50;  // 120 < 50 + 100: inside the lookahead bound
  key.src_node = 3;
  key.src_seq = 7;
  check::EventStamp provenance;
  provenance.origin_shard = 1;
  auditor.check_post(key, provenance);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_NE(auditor.violations()[0].find("forbidden window"),
            std::string::npos);
  EXPECT_NE(auditor.violations()[0].find("provenance"), std::string::npos);
}

TEST(Audit, SetupTimePostsAreExemptFromTheLookaheadBound) {
  check::Auditor auditor;
  auditor.bind(2);
  auditor.set_record_mode(true);
  auditor.begin_run(/*lookahead=*/10'000);
  // Merged at the first barrier (gen 0): posted before any event ran,
  // so the conservative contract cannot be violated.
  check::CrossStamp key;
  key.when = 10;
  key.sent_at = 5;
  auditor.check_post(key, check::EventStamp{});
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(Audit, CrossDeliveriesOutOfCanonicalOrderAreReported) {
  check::Auditor auditor;
  auditor.bind(1);
  auditor.set_record_mode(true);
  auditor.begin_run(/*lookahead=*/50);
  auto cross = [](TimePs when, TimePs sent_at, std::uint32_t node) {
    check::EventStamp s;
    s.cross = true;
    s.window_gen = 1;
    s.key.when = when;
    s.key.sent_at = sent_at;
    s.key.src_node = node;
    return s;
  };
  // Same delivery time, second one canonically SMALLER (earlier
  // sent_at): consuming it after the first breaks merge order.
  auditor.shard(0).on_execute(500, cross(500, 440, 2));
  auditor.shard(0).on_execute(500, cross(500, 430, 1));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_NE(auditor.violations()[0].find("out of canonical order"),
            std::string::npos);
}

// ----------------------------------------------------------------------
// Stale-capture detection

sim::Process sleeper(sim::Engine& engine, TimePs d) {
  co_await sim::delay(engine, d);
}

TEST(Audit, DelayOnDestroyedProcessIsCaughtAsStaleCapture) {
  ThrowingChecks guard;
  sim::Engine engine;
  auto pool = std::make_unique<sim::ProcessPool>(engine);
  pool->spawn(sleeper(engine, 1000));
  // Run the kick-off: the process suspends inside the delay, leaving a
  // resume callback holding its frame in the queue at t=1000.
  engine.run_until(0);
  // Destroying the pool destroys the suspended coroutine — the queued
  // resume is now a use-after-free that usually "happens to work".
  pool.reset();
  EXPECT_THROW(engine.run(), CheckFailure);
}

TEST(Audit, RecycledFrameIsCaughtByGenerationTagNotAddress) {
  ThrowingChecks guard;
  sim::Engine engine;
  auto pool = std::make_unique<sim::ProcessPool>(engine);
  pool->spawn(sleeper(engine, 1000));
  engine.run_until(0);
  pool.reset();
  // A new same-shape coroutine typically reuses the freed frame from
  // the pool's free list: the stale resume must still be caught by the
  // generation tag even though the address is live again.
  sim::ProcessPool pool2(engine);
  pool2.spawn(sleeper(engine, 5000));
  EXPECT_THROW(engine.run(), CheckFailure);
}

TEST(Audit, LiveFramesResumeNormally) {
  sim::Engine engine;
  sim::ProcessPool pool(engine);
  pool.spawn(sleeper(engine, 1000));
  pool.spawn(sleeper(engine, 2000));
  engine.run();
  EXPECT_TRUE(pool.all_done());
}

// ----------------------------------------------------------------------
// Divergence triage

TEST(AuditTriage, IdenticalTracesDoNotDiverge) {
  check::AuditTrace a = {{1, 0, 100, 5, 0x1234}, {2, 100, 200, 7, 0x5678}};
  EXPECT_EQ(check::first_divergent_window(a, a), -1);
}

TEST(AuditTriage, HashMismatchLocatesTheWindow) {
  check::AuditTrace a = {{1, 0, 100, 5, 0x1234}, {2, 100, 200, 7, 0x5678}};
  check::AuditTrace b = a;
  b[1].hash ^= 1;
  EXPECT_EQ(check::first_divergent_window(a, b), 1);
  // Event-count mismatch diverges too, even with colliding hashes.
  check::AuditTrace c = a;
  c[0].events = 6;
  EXPECT_EQ(check::first_divergent_window(a, c), 0);
}

TEST(AuditTriage, LengthMismatchDivergesAtTheShorterEnd) {
  check::AuditTrace a = {{1, 0, 100, 5, 0x1234}, {2, 100, 200, 7, 0x5678}};
  check::AuditTrace b = {{1, 0, 100, 5, 0x1234}};
  EXPECT_EQ(check::first_divergent_window(a, b), 1);
}

TEST(AuditTriage, FirstDivergentEventComparesPartitionStableKeys) {
  auto ev = [](TimePs when, TimePs origin_when) {
    check::CapturedEvent e;
    e.when = when;
    e.stamp.origin_when = origin_when;
    return e;
  };
  const std::vector<check::CapturedEvent> a = {ev(10, 0), ev(20, 10),
                                               ev(30, 20)};
  std::vector<check::CapturedEvent> b = a;
  EXPECT_EQ(check::first_divergent_event(a, b), -1);
  b[1].stamp.origin_when = 5;  // same when, different cause
  EXPECT_EQ(check::first_divergent_event(a, b), 1);
  b = a;
  b.pop_back();
  EXPECT_EQ(check::first_divergent_event(a, b), 2);
}

TEST(AuditTriage, TwoShardCountsProduceIdenticalTracesOnCleanRuns) {
  auto run_traced = [](int shards) {
    check::Auditor auditor;
    auditor.enable_trace();
    workload::ChaosParams p;
    p.ranks = 4;
    p.per_pair = 2;
    p.shards = shards;
    p.auditor = &auditor;
    const workload::ChaosResult r = workload::run_chaos(p);
    EXPECT_TRUE(r.ok());
    return auditor.trace();
  };
  const check::AuditTrace t1 = run_traced(1);
  const check::AuditTrace t2 = run_traced(2);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(check::first_divergent_window(t1, t2), -1);
}

TEST(AuditTriage, CaptureCollectsExactlyTheRequestedWindow) {
  check::Auditor auditor;
  auditor.enable_trace();
  auditor.capture_window(2);
  workload::ChaosParams p;
  p.ranks = 4;
  p.per_pair = 2;
  p.shards = 2;
  p.auditor = &auditor;
  ASSERT_TRUE(workload::run_chaos(p).ok());
  const check::AuditTrace& trace = auditor.trace();
  ASSERT_GE(trace.size(), 2u);
  const std::vector<check::CapturedEvent> captured = auditor.captured();
  EXPECT_EQ(captured.size(), trace[1].events);
  for (const check::CapturedEvent& e : captured) {
    EXPECT_GE(e.when, trace[1].start);
    EXPECT_LT(e.when, trace[1].end);
  }
}

// ----------------------------------------------------------------------
// Seeded fault: the must-fail CI step's bug, caught in-process

TEST(AuditDeathTest, InjectedLookaheadViolationAbortsWithProvenance) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The violation surfaces inside the barrier-completion step (a
  // noexcept context), so it cannot be intercepted with a throwing
  // handler — assert on the default print-and-abort path instead.
  EXPECT_DEATH(
      {
        hw::testing::inject_lookahead_violation.store(true);
        workload::ChaosParams p;
        p.ranks = 4;
        p.per_pair = 2;
        p.shards = 2;
        workload::run_chaos(p);
      },
      // gtest's simple-regex dialect has no multi-line wildcard; the
      // two markers are asserted in separate death-test runs.
      "cross-shard event posted inside the forbidden window");
}

TEST(AuditDeathTest, InjectedViolationReportPrintsTheProvenanceChain) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        hw::testing::inject_lookahead_violation.store(true);
        workload::ChaosParams p;
        p.ranks = 4;
        p.per_pair = 2;
        p.shards = 2;
        workload::run_chaos(p);
      },
      "provenance:");
}

}  // namespace
