// Unit and determinism tests for the conservative parallel DES
// (sim/parallel.hpp): window mechanics of Engine::run_window, the
// ShardGroup barrier protocol, canonical cross-shard ordering, and the
// end-to-end guarantee the whole feature rests on — workload results
// byte-identical at every shard count, including under fault injection.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "workload/chaos.hpp"
#include "workload/scenarios.hpp"
#include "workload/sweep.hpp"

namespace alpu::sim {
namespace {

using common::TimePs;

// ---- Engine window primitives ---------------------------------------------

TEST(RunWindow, FiresStrictlyBeforeBoundary) {
  Engine e;
  std::vector<TimePs> fired;
  e.schedule_at(10, [&] { fired.push_back(10); });
  e.schedule_at(99, [&] { fired.push_back(99); });
  e.schedule_at(100, [&] { fired.push_back(100); });  // boundary: next window
  e.run_window(100);
  EXPECT_EQ(fired, (std::vector<TimePs>{10, 99}));
  EXPECT_EQ(e.next_event_time(), 100u);
  e.run_window(200);
  EXPECT_EQ(fired, (std::vector<TimePs>{10, 99, 100}));
}

TEST(RunWindow, ZeroDelaySelfScheduleFiresInSameWindow) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(50, [&] {
    order.push_back(1);
    // Zero-delay follow-up: same timestamp, scheduled mid-window.  It
    // must fire inside this window, after its scheduler (FIFO at equal
    // time), not leak into the next one.
    e.schedule_at(e.now(), [&] { order.push_back(2); });
  });
  e.run_window(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.next_event_time(), common::kTimeNever);
}

TEST(NextEventTime, SkipsCancelledTombstones) {
  Engine e;
  const EventId dead = e.schedule_at(10, [] {});
  e.schedule_at(20, [] {});
  e.cancel(dead);
  EXPECT_EQ(e.next_event_time(), 20u);
}

// ---- ShardGroup ------------------------------------------------------------

TEST(ShardGroup, SingleShardMatchesPlainEngineRun) {
  // The 1-shard group must be the legacy path exactly: same event
  // order, same final time, no windows.
  std::vector<int> plain_order;
  Engine reference;
  reference.schedule_at(30, [&] { plain_order.push_back(3); });
  reference.schedule_at(10, [&] { plain_order.push_back(1); });
  reference.schedule_at(10, [&] { plain_order.push_back(2); });
  const TimePs ref_end = reference.run();

  std::vector<int> group_order;
  ShardGroup group(1);
  EXPECT_FALSE(group.parallel());
  group.shard(0).schedule_at(30, [&] { group_order.push_back(3); });
  group.shard(0).schedule_at(10, [&] { group_order.push_back(1); });
  group.shard(0).schedule_at(10, [&] { group_order.push_back(2); });
  const TimePs end = group.run_all(/*lookahead=*/0);  // unused when serial

  EXPECT_EQ(group_order, plain_order);
  EXPECT_EQ(end, ref_end);
  EXPECT_EQ(group.windows_run(), 0u);
  EXPECT_EQ(group.events_executed(), reference.events_executed());
}

TEST(ShardGroup, CrossShardEventsFireInCanonicalKeyOrder) {
  ShardGroup group(2);
  std::vector<std::string> order;
  auto post = [&](TimePs when, TimePs sent_at, std::uint32_t src_node,
                  std::uint64_t src_seq, const char* label) {
    CrossKey key;
    key.when = when;
    key.sent_at = sent_at;
    key.src_node = src_node;
    key.src_seq = src_seq;
    group.post(/*src_shard=*/src_node % 2, /*dst_shard=*/0, key,
               [&order, label] { order.push_back(label); });
  };
  // All at the same delivery time; the canonical (when, sent_at,
  // src_node, src_seq) key must decide the firing order regardless of
  // posting order.
  post(1000, 5, 2, 0, "d");
  post(1000, 3, 9, 0, "c");
  post(1000, 3, 1, 7, "b");
  post(1000, 3, 1, 2, "a");
  group.run_all(/*lookahead=*/10'000);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_GE(group.windows_run(), 1u);
  EXPECT_EQ(group.max_now(), 1000u);
}

TEST(ShardGroup, CrossShardEventCancellableAfterHandoff) {
  ShardGroup group(2);
  bool cross_fired = false;
  EventId cross_id = 0;
  CrossKey key;
  key.when = 500'000;
  key.sent_at = 0;
  key.src_node = 0;
  key.src_seq = 0;
  // Shard 0 hands an event to shard 1; the merge step writes the
  // destination-engine id into cross_id at the window barrier.
  group.post(0, 1, key, [&] { cross_fired = true; }, &cross_id);
  // An earlier shard-1 event (after the first barrier has planned the
  // handoff) cancels it before it can fire.
  group.shard(1).schedule_at(200'000, [&] {
    ASSERT_NE(cross_id, 0u);
    group.shard(1).cancel(cross_id);
  });
  group.run_all(/*lookahead=*/100'000);
  EXPECT_FALSE(cross_fired);
}

TEST(ShardGroup, WindowBoundaryHandoffStillDelivered) {
  // A cross-shard event landing exactly on a window boundary (when ==
  // T_min + lookahead) must be deferred by the strict `<` and fire in
  // the next window at exactly its timestamp.
  ShardGroup group(2);
  const TimePs lookahead = 1000;
  TimePs fired_at = 0;
  group.shard(0).schedule_at(0, [&] {
    CrossKey key;
    key.when = lookahead;  // exactly the first window's end
    key.sent_at = 0;
    key.src_node = 0;
    key.src_seq = 0;
    group.post(0, 1, key, [&] { fired_at = group.shard(1).now(); });
  });
  group.run_all(lookahead);
  EXPECT_EQ(fired_at, lookahead);
  EXPECT_GE(group.windows_run(), 2u);
}

}  // namespace
}  // namespace alpu::sim

// ---- Workload determinism across shard counts ------------------------------

namespace alpu::workload {
namespace {

using common::TimePs;

LatencyResult preposted_at(int shards) {
  PrepostedParams p;
  p.mode = NicMode::kAlpu128;
  p.queue_length = 60;
  p.fraction_traversed = 0.5;
  p.message_bytes = 256;
  p.shards = shards;
  return run_preposted(p);
}

LatencyResult unexpected_at(int shards) {
  UnexpectedParams p;
  p.mode = NicMode::kBaseline;
  p.queue_length = 40;
  p.message_bytes = 512;
  p.shards = shards;
  return run_unexpected(p);
}

void expect_same(const LatencyResult& a, const LatencyResult& b) {
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.total_sim_time, b.total_sim_time);
  EXPECT_EQ(a.sw_entries_walked, b.sw_entries_walked);
  EXPECT_EQ(a.alpu_hits, b.alpu_hits);
  EXPECT_EQ(a.alpu_misses, b.alpu_misses);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.match_counters.probes, b.match_counters.probes);
  EXPECT_EQ(a.match_counters.cells_scanned, b.match_counters.cells_scanned);
}

TEST(ShardDeterminism, PrepostedIdenticalAtAnyShardCount) {
  // nprocs == 2, so shard counts above 2 clamp; 1 vs 2 is the real
  // serial-vs-parallel comparison, 8 exercises the clamp.
  const LatencyResult s1 = preposted_at(1);
  expect_same(s1, preposted_at(2));
  expect_same(s1, preposted_at(8));
}

TEST(ShardDeterminism, UnexpectedIdenticalAtAnyShardCount) {
  const LatencyResult s1 = unexpected_at(1);
  expect_same(s1, unexpected_at(2));
  expect_same(s1, unexpected_at(8));
}

ChaosResult chaos_at(int shards, double drop) {
  ChaosParams p;
  p.mode = NicMode::kAlpu256;
  p.ranks = 8;
  p.per_pair = 3;
  p.seed = 7;
  p.faults.drop_rate = drop;
  p.faults.dup_rate = drop / 2;
  p.faults.reorder_rate = drop / 2;
  p.faults.corrupt_rate = drop / 2;
  p.shards = shards;
  return run_chaos(p);
}

void expect_same(const ChaosResult& a, const ChaosResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.conserved, b.conserved);
  EXPECT_EQ(a.ordered, b.ordered);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.net.packets, b.net.packets);
  EXPECT_EQ(a.net.payload_bytes, b.net.payload_bytes);
  EXPECT_EQ(a.net.faults_dropped, b.net.faults_dropped);
  EXPECT_EQ(a.net.faults_duplicated, b.net.faults_duplicated);
  EXPECT_EQ(a.net.faults_reordered, b.net.faults_reordered);
  EXPECT_EQ(a.net.faults_corrupted, b.net.faults_corrupted);
  EXPECT_EQ(a.reliability.retransmits, b.reliability.retransmits);
  EXPECT_EQ(a.reliability.timeouts, b.reliability.timeouts);
  EXPECT_EQ(a.reliability.crc_drops, b.reliability.crc_drops);
  EXPECT_EQ(a.reliability.dup_drops, b.reliability.dup_drops);
  EXPECT_EQ(a.reliability.delivered, b.reliability.delivered);
}

TEST(ShardDeterminism, FaultFreeChaosIdenticalAt1_2_8Shards) {
  const ChaosResult s1 = chaos_at(1, 0.0);
  EXPECT_TRUE(s1.ok());
  expect_same(s1, chaos_at(2, 0.0));
  expect_same(s1, chaos_at(8, 0.0));
}

TEST(ShardDeterminism, FaultyChaosIdenticalAt1_2_8Shards) {
  // The hard case: 5% drops (plus dup/reorder/corrupt riders) with the
  // per-link fault streams and full retransmission machinery active.
  const ChaosResult s1 = chaos_at(1, 0.05);
  EXPECT_TRUE(s1.ok());
  EXPECT_GT(s1.net.faults_dropped, 0u);
  expect_same(s1, chaos_at(2, 0.05));
  expect_same(s1, chaos_at(8, 0.05));
}

ChaosResult incast_at(int shards) {
  ChaosParams p;
  p.mode = NicMode::kAlpu256;
  p.ranks = 8;
  p.per_pair = 8;
  p.seed = 11;
  p.overload = true;
  p.eager_pool_bytes = 8192;
  p.unexpected_slots = 4;
  p.faults.drop_rate = 0.02;
  p.faults.dup_rate = 0.01;
  p.faults.reorder_rate = 0.01;
  p.shards = shards;
  return run_chaos(p);
}

void expect_same_flow(const ChaosResult& a, const ChaosResult& b) {
  expect_same(a, b);
  EXPECT_EQ(a.reliability.rnr_nacks_tx, b.reliability.rnr_nacks_tx);
  EXPECT_EQ(a.reliability.rnr_retries, b.reliability.rnr_retries);
  EXPECT_EQ(a.reliability.credit_acks_tx, b.reliability.credit_acks_tx);
  EXPECT_EQ(a.peak_pool_bytes, b.peak_pool_bytes);
  EXPECT_EQ(a.peak_unexpected_slots, b.peak_unexpected_slots);
  EXPECT_EQ(a.peak_unexpected_depth, b.peak_unexpected_depth);
  EXPECT_EQ(a.demotions, b.demotions);
  EXPECT_EQ(a.demoted_sends, b.demoted_sends);
  EXPECT_EQ(a.stalls, b.stalls);
}

TEST(ShardDeterminism, OverloadedIncastIdenticalAt1_2_8Shards) {
  // The flow-control stress: 7 ranks incast into a throttled rank 0
  // whose eager budget is far below the offered load, over a lossy
  // network.  The RNR-NACK / backoff / credit / demotion machinery must
  // deliver exactly once within budget — and every counter must be
  // byte-identical at any shard count.
  const ChaosResult s1 = incast_at(1);
  EXPECT_TRUE(s1.ok());
  EXPECT_GT(s1.reliability.rnr_nacks_tx, 0u);
  EXPECT_LE(s1.peak_pool_bytes, 8192u);
  EXPECT_LE(s1.peak_unexpected_slots, 4u);
  EXPECT_EQ(s1.stalls, 0u);
  expect_same_flow(s1, incast_at(2));
  expect_same_flow(s1, incast_at(8));
}

TEST(ShardDeterminism, SweepSurfaceIdenticalSerialVsSharded) {
  SweepOptions serial;
  serial.jobs = 1;
  serial.shards = 1;
  SweepOptions sharded;
  sharded.jobs = 1;
  sharded.shards = 2;
  const std::vector<SurfacePoint> points = {
      {NicMode::kBaseline, 20, 1.0, 0},
      {NicMode::kAlpu128, 20, 1.0, 0},
      {NicMode::kAlpu256, 50, 0.5, 128},
  };
  EXPECT_EQ(surface_csv(run_preposted_surface(points, serial)),
            surface_csv(run_preposted_surface(points, sharded)));
}

}  // namespace
}  // namespace alpu::workload
