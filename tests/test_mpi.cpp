// Integration tests: MPI semantics end-to-end on the simulated machine.
//
// These exercise the full stack (host -> NIC firmware -> network -> NIC
// -> host) and pin down the semantics MPI requires: matching, ordering,
// wildcards, eager vs rendezvous, and — crucially — that the
// ALPU-accelerated NIC is observably EQUIVALENT to the baseline NIC in
// everything except timing.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"

namespace alpu::mpi {
namespace {

using workload::make_system_config;
using workload::NicMode;

/// Run rank programs to completion on a fresh machine.
template <typename... Spawner>
void run_machine(const SystemConfig& cfg, Spawner&&... spawner) {
  sim::Engine engine;
  Machine machine(engine, cfg);
  sim::ProcessPool pool(engine);
  (pool.spawn(spawner(machine)), ...);
  engine.run();
  ASSERT_TRUE(pool.all_done()) << "rank program deadlocked";
}

// ---- basic point-to-point ---------------------------------------------------

TEST(Mpi, BlockingSendRecvDeliversBytes) {
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, /*tag=*/7, /*bytes=*/256);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    Request r;
    co_await m.rank(0).recv(1, 7, 1024, kWorldContext, &r);
    EXPECT_EQ(r.bytes(), 256u);
    EXPECT_EQ(r.matched().source, 1u);
    EXPECT_EQ(r.matched().tag, 7u);
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

TEST(Mpi, UnexpectedMessageMatchedByLaterRecv) {
  // The send fires immediately; the receiver dawdles, so the message
  // lands in the unexpected queue and the recv must find it there.
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 3, 64);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    co_await sim::delay(m.engine(), 50'000'000);  // 50 us
    EXPECT_GT(m.nic(0).unexpected_queue_length(), 0u);
    Request r;
    co_await m.rank(0).recv(1, 3, 64, kWorldContext, &r);
    EXPECT_EQ(r.bytes(), 64u);
    EXPECT_EQ(m.nic(0).unexpected_queue_length(), 0u);
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

TEST(Mpi, SameSourceSameTagMessagesArriveInOrder) {
  // MPI's ordering rule: messages between one (sender, context) pair
  // match posted receives in send order.  Distinguish them by size.
  constexpr int kCount = 8;
  auto sender = [](Machine& m) -> sim::Process {
    for (int i = 0; i < kCount; ++i) {
      co_await m.rank(1).send(0, 5, static_cast<std::uint32_t>(16 * (i + 1)));
    }
  };
  auto receiver = [](Machine& m) -> sim::Process {
    for (int i = 0; i < kCount; ++i) {
      Request r;
      co_await m.rank(0).recv(1, 5, 4096, kWorldContext, &r);
      EXPECT_EQ(r.bytes(), static_cast<std::uint32_t>(16 * (i + 1)))
          << "message " << i << " out of order";
    }
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

TEST(Mpi, WildcardSourceMatchesAnySender) {
  auto sender1 = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 9, 32);
  };
  auto sender2 = [](Machine& m) -> sim::Process {
    co_await m.rank(2).send(0, 9, 48);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    std::vector<std::uint32_t> sources;
    for (int i = 0; i < 2; ++i) {
      Request r;
      co_await m.rank(0).recv(kAnySource, 9, 64, kWorldContext, &r);
      sources.push_back(r.matched().source);
    }
    // Both senders matched, each exactly once.
    EXPECT_NE(sources[0], sources[1]);
    EXPECT_TRUE(sources[0] == 1 || sources[0] == 2);
    EXPECT_TRUE(sources[1] == 1 || sources[1] == 2);
  };
  run_machine(make_system_config(NicMode::kBaseline, 3), receiver, sender1,
              sender2);
}

TEST(Mpi, WildcardTagMatchesInArrivalOrder) {
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 100, 10);
    co_await m.rank(1).send(0, 200, 20);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    co_await sim::delay(m.engine(), 30'000'000);  // both queue unexpected
    Request r1, r2;
    co_await m.rank(0).recv(1, kAnyTag, 64, kWorldContext, &r1);
    co_await m.rank(0).recv(1, kAnyTag, 64, kWorldContext, &r2);
    EXPECT_EQ(r1.matched().tag, 100u);  // arrival order preserved
    EXPECT_EQ(r2.matched().tag, 200u);
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

TEST(Mpi, ContextsAreIsolated) {
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 7, 40, /*context=*/2);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    // A same-tag receive in a DIFFERENT context must not match.
    Request wrong = m.rank(0).irecv(1, 7, 64, /*context=*/3);
    Request right;
    co_await m.rank(0).recv(1, 7, 64, /*context=*/2, &right);
    EXPECT_EQ(right.bytes(), 40u);
    EXPECT_FALSE(wrong.done());
    // Drain the stuck receive so the simulation can end cleanly.
    co_await m.rank(1).send(0, 7, 8, 3);
    co_await m.rank(0).wait(wrong);
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

TEST(Mpi, RecvTruncatesToPostedSize) {
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 1, 1000);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    Request r;
    co_await m.rank(0).recv(1, 1, /*max_bytes=*/100, kWorldContext, &r);
    EXPECT_EQ(r.bytes(), 100u);
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

// ---- rendezvous --------------------------------------------------------------

TEST(Mpi, LargeMessageUsesRendezvousAndDelivers) {
  SystemConfig cfg = make_system_config(NicMode::kBaseline);
  ASSERT_LT(cfg.nic.eager_threshold, 64u * 1024u);
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 4, 64 * 1024);
  };
  auto receiver = [&](Machine& m) -> sim::Process {
    Request r;
    co_await m.rank(0).recv(1, 4, 64 * 1024, kWorldContext, &r);
    EXPECT_EQ(r.bytes(), 64u * 1024u);
    EXPECT_GT(m.nic(0).stats().rendezvous_rx, 0u);
  };
  run_machine(cfg, receiver, sender);
}

TEST(Mpi, RendezvousToUnexpectedRtsStillDelivers) {
  // RTS arrives before the receive is posted: it must be buffered as an
  // unexpected entry and the CTS sent when the receive appears.
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 4, 128 * 1024);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    co_await sim::delay(m.engine(), 50'000'000);
    Request r;
    co_await m.rank(0).recv(1, 4, 128 * 1024, kWorldContext, &r);
    EXPECT_EQ(r.bytes(), 128u * 1024u);
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

// ---- nonblocking / collectives ----------------------------------------------

TEST(Mpi, WaitallCompletesOutOfOrderRequests) {
  auto sender = [](Machine& m) -> sim::Process {
    // Send in reverse tag order; receives posted in forward order.
    for (int tag = 4; tag >= 1; --tag) {
      co_await m.rank(1).send(0, tag, static_cast<std::uint32_t>(tag * 8));
    }
  };
  auto receiver = [](Machine& m) -> sim::Process {
    std::vector<Request> reqs;
    for (int tag = 1; tag <= 4; ++tag) {
      reqs.push_back(m.rank(0).irecv(1, tag, 64));
    }
    std::vector<Request> copy = reqs;
    co_await m.rank(0).waitall(std::move(copy));
    for (int tag = 1; tag <= 4; ++tag) {
      EXPECT_TRUE(reqs[static_cast<std::size_t>(tag - 1)].done());
      EXPECT_EQ(reqs[static_cast<std::size_t>(tag - 1)].bytes(),
                static_cast<std::uint32_t>(tag * 8));
    }
  };
  run_machine(make_system_config(NicMode::kBaseline), receiver, sender);
}

TEST(Mpi, BarrierSynchronisesFourRanks) {
  // Each rank records its pre- and post-barrier times; no rank may leave
  // the barrier before the last rank entered it.
  static common::TimePs enter[4], leave[4];
  auto program = [](Machine& m, int r) -> sim::Process {
    // Stagger arrivals.
    co_await sim::delay(m.engine(),
                        static_cast<common::TimePs>(r) * 5'000'000);
    enter[r] = m.engine().now();
    co_await m.rank(r).barrier();
    leave[r] = m.engine().now();
  };
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline, 4));
  sim::ProcessPool pool(engine);
  for (int r = 0; r < 4; ++r) pool.spawn(program(machine, r));
  engine.run();
  ASSERT_TRUE(pool.all_done());
  common::TimePs last_enter = 0;
  for (int r = 0; r < 4; ++r) last_enter = std::max(last_enter, enter[r]);
  for (int r = 0; r < 4; ++r) EXPECT_GE(leave[r], last_enter);
}

// ---- communicators (context isolation extension) -----------------------------

TEST(Comm, RanksTranslateAndTrafficFlows) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline, 4));
  // Comm over world ranks {2, 0}: comm rank 0 == world 2.
  auto group = machine.create_comm({2, 0});
  sim::ProcessPool pool(engine);
  auto at_world2 = [&](Machine& m) -> sim::Process {
    Comm comm = m.comm(group, 2);
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 2);
    co_await comm.send(/*dest=*/1, /*tag=*/5, 64);  // to world rank 0
  };
  auto at_world0 = [&](Machine& m) -> sim::Process {
    Comm comm = m.comm(group, 0);
    EXPECT_EQ(comm.rank(), 1);
    Request r;
    co_await comm.recv(/*source=*/0, 5, 64, &r);
    EXPECT_EQ(r.bytes(), 64u);
    EXPECT_EQ(r.matched().source, 2u);   // world rank on the wire
    EXPECT_EQ(comm.comm_source(r), 0);   // translated back
  };
  pool.spawn(at_world2(machine));
  pool.spawn(at_world0(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Comm, ContextsIsolateIdenticalTagsAcrossComms) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline, 4));
  auto ab = machine.create_comm({0, 1});
  auto cd = machine.create_comm({2, 3});
  ASSERT_NE(ab->p2p_context, cd->p2p_context);
  sim::ProcessPool pool(engine);
  // Same tags in both comms; also identical traffic in the WORLD
  // context between the same nodes — three planes that must not mix.
  auto sender = [&](Machine& m, std::shared_ptr<const CommGroup> g,
                    int world, std::uint32_t bytes) -> sim::Process {
    Comm comm = m.comm(g, world);
    co_await comm.send(1, /*tag=*/7, bytes);
  };
  auto receiver = [&](Machine& m, std::shared_ptr<const CommGroup> g,
                      int world, std::uint32_t expect) -> sim::Process {
    Comm comm = m.comm(g, world);
    Request r;
    co_await comm.recv(0, 7, 4096, &r);
    EXPECT_EQ(r.bytes(), expect);
  };
  pool.spawn(sender(machine, ab, 0, 100));
  pool.spawn(receiver(machine, ab, 1, 100));
  pool.spawn(sender(machine, cd, 2, 200));
  pool.spawn(receiver(machine, cd, 3, 200));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Comm, WildcardReceiveStaysInsideTheComm) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline, 3));
  auto pair = machine.create_comm({0, 1});
  sim::ProcessPool pool(engine);
  auto outsider = [&](Machine& m) -> sim::Process {
    // World-context message with the same tag: must NOT match the comm's
    // ANY_SOURCE receive.
    co_await m.rank(2).send(0, 9, 32);
  };
  auto insider = [&](Machine& m) -> sim::Process {
    co_await sim::delay(m.engine(), 20'000'000);  // outsider lands first
    Comm comm = m.comm(pair, 1);
    co_await comm.send(0, 9, 64);
  };
  auto receiver = [&](Machine& m) -> sim::Process {
    Comm comm = m.comm(pair, 0);
    Request r;
    co_await comm.recv(mpi::kAnySource, 9, 4096, &r);
    EXPECT_EQ(r.bytes(), 64u);  // the comm member's message, not rank 2's
    EXPECT_EQ(comm.comm_source(r), 1);
    // Drain the world-context message to finish cleanly.
    co_await m.rank(0).recv(2, 9, 32);
  };
  pool.spawn(receiver(machine));
  pool.spawn(outsider(machine));
  pool.spawn(insider(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Comm, SubgroupBarrierDoesNotWaitForOutsiders) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline, 4));
  auto trio = machine.create_comm({0, 1, 3});
  sim::ProcessPool pool(engine);
  static common::TimePs leave[4];
  auto member = [&](Machine& m, int world) -> sim::Process {
    Comm comm = m.comm(trio, world);
    co_await comm.barrier();
    leave[world] = m.engine().now();
  };
  // World rank 2 never participates and never communicates.
  pool.spawn(member(machine, 0));
  pool.spawn(member(machine, 1));
  pool.spawn(member(machine, 3));
  engine.run();
  ASSERT_TRUE(pool.all_done());
  EXPECT_GT(leave[0], 0u);
  EXPECT_GT(leave[1], 0u);
  EXPECT_GT(leave[3], 0u);
}

// ---- baseline vs ALPU observable equivalence ---------------------------------

struct MatchRecord {
  std::uint32_t source;
  std::uint32_t tag;
  std::uint32_t bytes;
  friend bool operator==(const MatchRecord&, const MatchRecord&) = default;
};

/// Phase-separated exchange: all sends are queued unexpected before any
/// receive posts (giving a timing-independent matching problem), then
/// receives with a wildcard mix consume them.  Returns the matched
/// envelope sequence in receive-post order.
std::vector<MatchRecord> run_unexpected_exchange(NicMode mode,
                                                 std::uint64_t seed) {
  constexpr int kMessages = 60;
  std::vector<MatchRecord> records;
  common::Xoshiro256 rng(seed);
  // Pre-generate the send tags and the receive patterns.
  std::vector<int> send_tags;
  for (int i = 0; i < kMessages; ++i) {
    send_tags.push_back(static_cast<int>(rng.below(6)));
  }
  struct RecvSpec {
    int source;
    int tag;
  };
  std::vector<RecvSpec> recvs;
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(RecvSpec{rng.chance(0.4) ? kAnySource : 1,
                             rng.chance(0.5) ? kAnyTag
                                             : static_cast<int>(rng.below(6))});
  }

  auto sender = [&](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);  // wait for go
    for (int i = 0; i < kMessages; ++i) {
      co_await m.rank(1).send(0, send_tags[static_cast<std::size_t>(i)],
                              static_cast<std::uint32_t>(8 + i));
    }
    co_await m.rank(1).send(0, 98, 0);  // all-queued marker
  };
  auto receiver = [&](Machine& m) -> sim::Process {
    Request marker = m.rank(0).irecv(1, 98, 0);
    co_await m.rank(0).send(1, 99, 0);
    co_await m.rank(0).wait(marker);  // in-order link: all 60 are queued
    // Now consume with the wildcard mix.  Some receives may not match
    // the remaining pool; to keep it deadlock-free we use only patterns
    // that are guaranteed to match something: fall back to ANY/ANY when
    // the pool lacks the exact tag.
    std::multiset<int> pool(send_tags.begin(), send_tags.end());
    for (int i = 0; i < kMessages; ++i) {
      RecvSpec spec = recvs[static_cast<std::size_t>(i)];
      if (spec.tag != kAnyTag && pool.find(spec.tag) == pool.end()) {
        spec.tag = kAnyTag;
      }
      Request r;
      co_await m.rank(0).recv(spec.source, spec.tag, 4096, kWorldContext,
                              &r);
      records.push_back(
          MatchRecord{r.matched().source, r.matched().tag, r.bytes()});
      pool.erase(pool.find(static_cast<int>(r.matched().tag)));
    }
  };

  sim::Engine engine;
  Machine machine(engine, make_system_config(mode));
  sim::ProcessPool pool(engine);
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  EXPECT_TRUE(pool.all_done());
  EXPECT_EQ(machine.nic(0).unexpected_queue_length(), 0u);
  return records;
}

class ModeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModeEquivalence, UnexpectedPathMatchesBaseline) {
  const auto base = run_unexpected_exchange(NicMode::kBaseline, GetParam());
  const auto a128 = run_unexpected_exchange(NicMode::kAlpu128, GetParam());
  const auto a256 = run_unexpected_exchange(NicMode::kAlpu256, GetParam());
  EXPECT_EQ(base, a128);
  EXPECT_EQ(base, a256);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

/// Posted-path variant: receives are all posted first (exact patterns,
/// then trailing catch-all wildcards so every message finds a home and
/// the exchange cannot starve), then the messages arrive and must match
/// in MPI posted order.
std::vector<MatchRecord> run_posted_exchange(NicMode mode,
                                             std::uint64_t seed) {
  constexpr int kExact = 40;
  constexpr int kWild = 20;
  constexpr int kMessages = kExact + kWild;
  common::Xoshiro256 rng(seed);
  std::vector<int> exact_tags;
  for (int i = 0; i < kExact; ++i) {
    exact_tags.push_back(static_cast<int>(rng.below(6)));
  }
  // Sends: every exact tag once, plus extras for the wildcards, shuffled.
  std::vector<int> send_tags = exact_tags;
  for (int i = 0; i < kWild; ++i) {
    send_tags.push_back(static_cast<int>(rng.below(6)));
  }
  for (std::size_t i = send_tags.size(); i > 1; --i) {
    std::swap(send_tags[i - 1], send_tags[rng.below(i)]);
  }

  std::vector<Request> reqs;
  std::vector<MatchRecord> records;
  auto receiver = [&](Machine& m) -> sim::Process {
    for (int i = 0; i < kExact; ++i) {
      reqs.push_back(
          m.rank(0).irecv(1, exact_tags[static_cast<std::size_t>(i)], 4096));
    }
    for (int i = 0; i < kWild; ++i) {
      reqs.push_back(m.rank(0).irecv(kAnySource, kAnyTag, 4096));
    }
    co_await m.rank(0).send(1, 99, 0);  // all posted
    std::vector<Request> copy = reqs;
    co_await m.rank(0).waitall(std::move(copy));
    for (const Request& r : reqs) {
      records.push_back(
          MatchRecord{r.matched().source, r.matched().tag, r.bytes()});
    }
  };
  auto sender = [&](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    for (int i = 0; i < kMessages; ++i) {
      co_await m.rank(1).send(0, send_tags[static_cast<std::size_t>(i)],
                              static_cast<std::uint32_t>(8 + i));
    }
  };

  sim::Engine engine;
  Machine machine(engine, make_system_config(mode));
  sim::ProcessPool pool(engine);
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  EXPECT_TRUE(pool.all_done());
  return records;
}

class PostedModeEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PostedModeEquivalence, PostedPathMatchesBaseline) {
  const auto base = run_posted_exchange(NicMode::kBaseline, GetParam());
  const auto a128 = run_posted_exchange(NicMode::kAlpu128, GetParam());
  const auto a256 = run_posted_exchange(NicMode::kAlpu256, GetParam());
  EXPECT_EQ(base, a128);
  EXPECT_EQ(base, a256);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostedModeEquivalence,
                         ::testing::Values(7, 17, 27, 37, 47));

}  // namespace
}  // namespace alpu::mpi
