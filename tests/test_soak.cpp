// Soak test: randomized multi-rank traffic over the full simulated
// machine, all NIC modes, with eager and rendezvous sizes, wildcards,
// and lazy receivers.  The point is robustness — no deadlock, no lost
// or duplicated message, queues fully drained — under schedules far
// messier than the calibrated benchmarks.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "mpi/mpi.hpp"
#include "sim/parallel.hpp"
#include "workload/chaos.hpp"
#include "workload/scenarios.hpp"
#include "workload/sweep.hpp"

namespace alpu::mpi {
namespace {

using workload::make_system_config;
using workload::NicMode;

struct Plan {
  /// messages[d][s] = payload sizes rank s sends to rank d, in order.
  std::vector<std::vector<std::vector<std::uint32_t>>> messages;
  int nranks = 0;
};

/// Build a random traffic plan both sides agree on.
Plan make_plan(int nranks, int per_pair, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  Plan plan;
  plan.nranks = nranks;
  plan.messages.resize(static_cast<std::size_t>(nranks));
  for (int d = 0; d < nranks; ++d) {
    plan.messages[static_cast<std::size_t>(d)].resize(
        static_cast<std::size_t>(nranks));
    for (int s = 0; s < nranks; ++s) {
      if (s == d) continue;
      for (int m = 0; m < per_pair; ++m) {
        // Mostly small eager messages, occasionally rendezvous-sized.
        const std::uint32_t bytes =
            rng.chance(0.12)
                ? static_cast<std::uint32_t>(20'000 + rng.below(40'000))
                : static_cast<std::uint32_t>(rng.below(2'000));
        plan.messages[static_cast<std::size_t>(d)]
                     [static_cast<std::size_t>(s)]
                         .push_back(bytes);
      }
    }
  }
  return plan;
}

sim::Process rank_program(Machine& machine, const Plan& plan, int rank,
                          std::uint64_t seed,
                          std::vector<std::uint64_t>& received_bytes) {
  common::Xoshiro256 rng(seed + static_cast<std::uint64_t>(rank) * 977);
  Rank& self = machine.rank(rank);

  // Wildcard policy per ordinal, consistent across peers: if ordinal i
  // is received with ANY_SOURCE from one peer it must be ANY_SOURCE for
  // all of them, otherwise an ANY receive can steal the one message an
  // explicit-source receive of the same tag needs (starvation).
  std::size_t max_ordinals = 0;
  for (int peer = 0; peer < plan.nranks; ++peer) {
    if (peer == rank) continue;
    max_ordinals = std::max(
        max_ordinals,
        plan.messages[static_cast<std::size_t>(rank)]
                     [static_cast<std::size_t>(peer)].size());
  }
  std::vector<bool> any_source(max_ordinals);
  for (std::size_t i = 0; i < max_ordinals; ++i) {
    any_source[i] = rng.chance(0.5);
  }

  // Sends: interleave destinations, with random think time so arrivals
  // race receive postings in every possible order.
  std::vector<Request> sends;
  std::vector<Request> recvs;
  std::vector<std::size_t> send_cursor(
      static_cast<std::size_t>(plan.nranks), 0);
  std::vector<std::size_t> recv_count(
      static_cast<std::size_t>(plan.nranks), 0);

  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (int peer = 0; peer < plan.nranks; ++peer) {
      if (peer == rank) continue;
      const auto p = static_cast<std::size_t>(peer);
      const auto r = static_cast<std::size_t>(rank);
      // One send toward peer, tag = message ordinal.
      if (send_cursor[p] < plan.messages[p][r].size()) {
        const auto i = send_cursor[p]++;
        sends.push_back(self.isend(
            peer, static_cast<int>(i), plan.messages[p][r][i]));
        work_left = true;
      }
      // One receive from peer — half the time by explicit source, half
      // wildcarded by source with the tag pinning the ordinal.
      if (recv_count[p] < plan.messages[r][p].size()) {
        const auto i = recv_count[p]++;
        const int tag = static_cast<int>(i);
        recvs.push_back(self.irecv(any_source[i] ? kAnySource : peer, tag,
                                   64 * 1024));
        work_left = true;
      }
      if (rng.chance(0.2)) {
        co_await sim::delay(machine.engine(), rng.below(3'000) * 1'000);
      }
    }
  }

  co_await self.waitall(std::move(sends));
  std::uint64_t total = 0;
  for (Request& r : recvs) {
    co_await self.wait(r);
    total += r.bytes();
  }
  received_bytes[static_cast<std::size_t>(rank)] = total;
  co_await self.barrier();
}

class Soak : public ::testing::TestWithParam<
                 std::tuple<NicMode, std::uint64_t>> {};

TEST_P(Soak, RandomTrafficDrainsCompletely) {
  const auto [mode, seed] = GetParam();
  constexpr int kRanks = 4;
  constexpr int kPerPair = 12;
  const Plan plan = make_plan(kRanks, kPerPair, seed);

  sim::Engine engine;
  Machine machine(engine, make_system_config(mode, kRanks));
  sim::ProcessPool pool(engine);
  std::vector<std::uint64_t> received(kRanks, 0);
  for (int r = 0; r < kRanks; ++r) {
    pool.spawn(rank_program(machine, plan, r, seed, received));
  }
  engine.run();
  ASSERT_TRUE(pool.all_done()) << "soak deadlocked";

  // Conservation: every rank received exactly the bytes addressed to it
  // (receives were posted large enough that nothing truncates).
  for (int d = 0; d < kRanks; ++d) {
    std::uint64_t expected = 0;
    for (int s = 0; s < kRanks; ++s) {
      for (std::uint32_t b :
           plan.messages[static_cast<std::size_t>(d)]
                        [static_cast<std::size_t>(s)]) {
        expected += b;
      }
    }
    EXPECT_EQ(received[static_cast<std::size_t>(d)], expected)
        << "rank " << d;
  }

  // Drained: no queue holds anything once every request completed.
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(machine.nic(r).posted_queue_length(), 0u) << "rank " << r;
    EXPECT_EQ(machine.nic(r).unexpected_queue_length(), 0u) << "rank " << r;
    if (machine.nic(r).posted_alpu() != nullptr) {
      EXPECT_EQ(machine.nic(r).posted_alpu()->array().occupancy(), 0u);
      EXPECT_EQ(machine.nic(r).posted_alpu()->stats().inserts_dropped, 0u);
    }
    if (machine.nic(r).unexpected_alpu() != nullptr) {
      EXPECT_EQ(machine.nic(r).unexpected_alpu()->array().occupancy(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, Soak,
    ::testing::Combine(::testing::Values(NicMode::kBaseline,
                                         NicMode::kAlpu128,
                                         NicMode::kAlpu256),
                       ::testing::Values(1001, 2002, 3003, 4004)),
    [](const ::testing::TestParamInfo<Soak::ParamType>& info) {
      // No structured bindings here: a comma inside the lambda's capture
      // brackets would split the macro's arguments.
      const NicMode mode = std::get<0>(info.param);
      const std::uint64_t seed = std::get<1>(info.param);
      const char* m = mode == NicMode::kBaseline
                          ? "baseline"
                          : (mode == NicMode::kAlpu128 ? "alpu128"
                                                       : "alpu256");
      return std::string(m) + "_" + std::to_string(seed);
    });

// ---------------------------------------------------------------------------
// Faulty soak: the same class of randomized traffic, but over a lossy
// network with the reliability sublayer recovering it.  Runs the fault
// grid through sweep_map with 4 worker threads so TSan sees the parallel
// sweep path under load (each point owns a fresh Engine + Machine).
// ---------------------------------------------------------------------------

class FaultySoak : public ::testing::TestWithParam<NicMode> {};

TEST_P(FaultySoak, LossyNetworkStillConservesAndOrders) {
  struct Point {
    double drop;
    std::uint64_t seed;
  };
  std::vector<Point> grid;
  for (const double drop : {1e-3, 1e-2}) {
    for (const std::uint64_t seed : {1001u, 2002u}) {
      grid.push_back(Point{drop, seed});
    }
  }
  const NicMode mode = GetParam();
  const auto results = workload::sweep_map(
      grid,
      [mode](const Point& pt) {
        workload::ChaosParams p;
        p.mode = mode;
        p.ranks = 4;
        p.per_pair = 8;
        p.seed = pt.seed;
        p.faults.drop_rate = pt.drop;
        p.faults.dup_rate = pt.drop / 2;
        p.faults.reorder_rate = pt.drop / 2;
        p.faults.corrupt_rate = pt.drop / 2;
        p.faults.seed = 0x5eed + pt.seed;
        return workload::run_chaos(p);
      },
      workload::SweepOptions{.jobs = 4, .shards = 1, .seu = {}});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const workload::ChaosResult& r = results[i];
    EXPECT_TRUE(r.ok()) << "drop=" << grid[i].drop << " seed=" << grid[i].seed
                        << ": completed=" << r.completed
                        << " conserved=" << r.conserved
                        << " ordered=" << r.ordered
                        << " drained=" << r.drained
                        << " link_failures=" << r.reliability.link_failures;
    EXPECT_EQ(r.messages, 96u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FaultySoak,
    ::testing::Values(NicMode::kBaseline, NicMode::kAlpu128,
                      NicMode::kAlpu256),
    [](const ::testing::TestParamInfo<FaultySoak::ParamType>& info) {
      return std::string(workload::nic_mode_name(info.param));
    });

// The faulty soak again, but with each chaos machine itself sharded
// across engine threads (conservative parallel DES).  Every counter
// must equal the single-shard run's — this is the suite the TSan CI job
// drives to prove the window protocol is also data-race-free.
class ShardedFaultySoak : public ::testing::TestWithParam<int> {};

TEST_P(ShardedFaultySoak, MatchesSingleShardUnderFaults) {
  const int shards = GetParam();
  auto run_at = [](int nshards) {
    workload::ChaosParams p;
    p.mode = NicMode::kAlpu256;
    p.ranks = 8;
    p.per_pair = 6;
    p.seed = 11;
    p.faults.drop_rate = 0.02;
    p.faults.dup_rate = 0.01;
    p.faults.reorder_rate = 0.01;
    p.faults.corrupt_rate = 0.01;
    p.shards = nshards;
    return workload::run_chaos(p);
  };
  const workload::ChaosResult base = run_at(1);
  const workload::ChaosResult sharded = run_at(shards);
  EXPECT_TRUE(base.ok());
  EXPECT_TRUE(sharded.ok());
  EXPECT_EQ(base.sim_time, sharded.sim_time);
  EXPECT_EQ(base.messages, sharded.messages);
  EXPECT_EQ(base.net.packets, sharded.net.packets);
  EXPECT_EQ(base.net.faults_dropped, sharded.net.faults_dropped);
  EXPECT_EQ(base.net.faults_duplicated, sharded.net.faults_duplicated);
  EXPECT_EQ(base.net.faults_reordered, sharded.net.faults_reordered);
  EXPECT_EQ(base.net.faults_corrupted, sharded.net.faults_corrupted);
  EXPECT_EQ(base.reliability.retransmits, sharded.reliability.retransmits);
  EXPECT_EQ(base.reliability.delivered, sharded.reliability.delivered);
  EXPECT_EQ(base.reliability.dup_drops, sharded.reliability.dup_drops);
  EXPECT_EQ(base.reliability.crc_drops, sharded.reliability.crc_drops);
  // Pooled reliability buffers: the retransmission storm above must not
  // have grown buffers beyond the handful of warm-up reservations (a
  // couple of ring growths + one rx reservation per active peer pair).
  EXPECT_GT(base.reliability.retransmits, 0u);
  EXPECT_LE(base.reliability.buffer_allocs,
            static_cast<std::uint64_t>(8 * 7 * 3));
  EXPECT_EQ(base.reliability.buffer_allocs,
            sharded.reliability.buffer_allocs);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedFaultySoak,
                         ::testing::Values(2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Steady-state allocation gate for the NIC control path.  The dense
// tables and pooled FlatMaps (common/dense.hpp) report every backing
// growth through NicStats.control_allocs; after one full traffic wave
// has pushed each structure to its high-water mark, an identical second
// wave — same plan, faults still firing — must not grow anything.  This
// is the machine-level counterpart of FlatMap.SteadyStateChurnIsAllocationFree
// in test_common.cpp, and it runs at 1 and 2 shards so the sharded
// control path is pinned too.
// ---------------------------------------------------------------------------

/// Runs the plan's traffic twice from one coroutine, snapshotting this
/// rank's own NIC allocation counter after each wave drains.  Each rank
/// reads only the NIC on its own shard, so the reads are race-free.
sim::Process two_wave_rank(Machine& machine, const Plan& plan, int rank,
                           std::vector<std::uint64_t>& after_wave1,
                           std::vector<std::uint64_t>& after_wave2) {
  Rank& self = machine.rank(rank);
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<Request> sends;
    std::vector<Request> recvs;
    for (int peer = 0; peer < plan.nranks; ++peer) {
      if (peer == rank) continue;
      const auto p = static_cast<std::size_t>(peer);
      const auto r = static_cast<std::size_t>(rank);
      for (std::size_t i = 0; i < plan.messages[p][r].size(); ++i) {
        sends.push_back(self.isend(peer, static_cast<int>(i),
                                   plan.messages[p][r][i]));
      }
      for (std::size_t i = 0; i < plan.messages[r][p].size(); ++i) {
        recvs.push_back(self.irecv(peer, static_cast<int>(i), 64 * 1024));
      }
    }
    co_await self.waitall(std::move(sends));
    for (Request& rq : recvs) co_await self.wait(rq);
    co_await self.barrier();
    auto& snapshot = wave == 0 ? after_wave1 : after_wave2;
    snapshot[static_cast<std::size_t>(rank)] =
        machine.nic(rank).stats().control_allocs;
  }
}

class SteadyStateAllocs : public ::testing::TestWithParam<int> {};

TEST_P(SteadyStateAllocs, ControlPathStopsAllocatingAfterWarmup) {
  const int nshards = GetParam();
  constexpr int kRanks = 4;
  constexpr int kPerPair = 6;
  const Plan plan = make_plan(kRanks, kPerPair, 0xA110C5);

  SystemConfig cfg = workload::make_system_config(NicMode::kAlpu256, kRanks);
  cfg.faults.drop_rate = 0.01;
  cfg.faults.dup_rate = 0.005;
  cfg.faults.reorder_rate = 0.005;
  cfg.faults.corrupt_rate = 0.005;
  cfg.nic.reliability.enabled = true;

  sim::ShardGroup shards(static_cast<unsigned>(nshards));
  Machine machine(shards, cfg);
  sim::ProcessPool pool(machine.engine());
  std::vector<std::uint64_t> after_wave1(kRanks, 0);
  std::vector<std::uint64_t> after_wave2(kRanks, 0);
  for (int r = 0; r < kRanks; ++r) {
    pool.spawn_on(machine.engine(r),
                  two_wave_rank(machine, plan, r, after_wave1, after_wave2));
  }
  shards.run_all(machine.network().min_lookahead());
  ASSERT_TRUE(pool.all_done()) << "two-wave soak deadlocked";

  for (int r = 0; r < kRanks; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    // Warm-up growth happened at all (the sink is actually wired)...
    EXPECT_GT(after_wave1[ri], 0u) << "rank " << r;
    // ...and the second wave grew nothing: every table had reached its
    // high-water mark, every erase/insert recycled a pooled slot.
    EXPECT_EQ(after_wave2[ri], after_wave1[ri])
        << "rank " << r << ": control path allocated "
        << (after_wave2[ri] - after_wave1[ri])
        << " more time(s) during the steady-state wave";
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, SteadyStateAllocs,
                         ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace alpu::mpi
