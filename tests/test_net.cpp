// Unit tests for the network model: latency, serialisation, ordering.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace alpu::net {
namespace {

using common::TimePs;

struct Capture {
  std::vector<Packet> packets;
  std::vector<TimePs> times;
};

NetworkConfig cfg() {
  return NetworkConfig{
      .wire_latency = 200'000, .ps_per_byte = 500, .header_bytes = 32};
}

TEST(Network, DeliversAfterSerialisationPlusWire) {
  sim::Engine engine;
  Network net(engine, cfg());
  Capture rx;
  net.attach(0, [&](const Packet& p) {
    rx.packets.push_back(p);
    rx.times.push_back(engine.now());
  });
  net.attach(1, [](const Packet&) {});

  Packet p;
  p.src = 1;
  p.dst = 0;
  p.payload_bytes = 0;
  engine.schedule_at(0, [&] { net.send(p); });
  engine.run();
  ASSERT_EQ(rx.packets.size(), 1u);
  // 32 header bytes * 500 ps + 200 ns wire.
  EXPECT_EQ(rx.times[0], 32u * 500u + 200'000u);
}

TEST(Network, PayloadAddsSerialisationTime) {
  sim::Engine engine;
  Network net(engine, cfg());
  TimePs delivered = 0;
  net.attach(0, [&](const Packet&) { delivered = engine.now(); });
  net.attach(1, [](const Packet&) {});
  Packet p;
  p.src = 1;
  p.dst = 0;
  p.payload_bytes = 1024;
  engine.schedule_at(0, [&] { net.send(p); });
  engine.run();
  EXPECT_EQ(delivered, (32u + 1024u) * 500u + 200'000u);
}

TEST(Network, SameLinkPacketsStayInOrderAndSerialise) {
  sim::Engine engine;
  Network net(engine, cfg());
  Capture rx;
  net.attach(0, [&](const Packet& p) {
    rx.packets.push_back(p);
    rx.times.push_back(engine.now());
  });
  net.attach(1, [](const Packet&) {});
  engine.schedule_at(0, [&] {
    for (std::uint64_t i = 0; i < 3; ++i) {
      Packet p;
      p.src = 1;
      p.dst = 0;
      p.token = i;
      net.send(p);
    }
  });
  engine.run();
  ASSERT_EQ(rx.packets.size(), 3u);
  EXPECT_EQ(rx.packets[0].token, 0u);
  EXPECT_EQ(rx.packets[1].token, 1u);
  EXPECT_EQ(rx.packets[2].token, 2u);
  // Each successive packet leaves one header-serialisation later.
  EXPECT_EQ(rx.times[1] - rx.times[0], 32u * 500u);
  EXPECT_EQ(rx.times[2] - rx.times[1], 32u * 500u);
}

TEST(Network, DistinctLinksDoNotSerialiseAgainstEachOther) {
  sim::Engine engine;
  Network net(engine, cfg());
  std::vector<TimePs> times;
  net.attach(0, [&](const Packet&) { times.push_back(engine.now()); });
  net.attach(1, [](const Packet&) {});
  net.attach(2, [](const Packet&) {});
  engine.schedule_at(0, [&] {
    Packet a;
    a.src = 1;
    a.dst = 0;
    net.send(a);
    Packet b;
    b.src = 2;
    b.dst = 0;
    net.send(b);
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], times[1]);  // independent links, same arrival
}

TEST(Network, InjectionTimeStamped) {
  sim::Engine engine;
  Network net(engine, cfg());
  Packet seen;
  net.attach(0, [&](const Packet& p) { seen = p; });
  net.attach(1, [](const Packet&) {});
  engine.schedule_at(12'345, [&] {
    Packet p;
    p.src = 1;
    p.dst = 0;
    net.send(p);
  });
  engine.run();
  EXPECT_EQ(seen.injected_at, 12'345u);
}

TEST(Network, StatsAccumulate) {
  sim::Engine engine;
  Network net(engine, cfg());
  net.attach(0, [](const Packet&) {});
  net.attach(1, [](const Packet&) {});
  engine.schedule_at(0, [&] {
    Packet p;
    p.src = 1;
    p.dst = 0;
    p.payload_bytes = 100;
    net.send(p);
    net.send(p);
  });
  engine.run();
  EXPECT_EQ(net.stats().packets, 2u);
  EXPECT_EQ(net.stats().payload_bytes, 200u);
}

TEST(Network, RandomTrafficStaysInOrderPerLink) {
  // The MPI ordering guarantee rests on this property; fuzz it with
  // random sizes and injection times across a 4-node mesh.
  sim::Engine engine;
  Network net(engine, cfg());
  struct Seen {
    std::map<NodeId, std::uint64_t> last_token;  // per source
  };
  std::vector<Seen> seen(4);
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&seen, n](const Packet& p) {
      auto& last = seen[n].last_token;
      const auto it = last.find(p.src);
      if (it != last.end()) {
        ASSERT_GT(p.token, it->second)
            << "reordered on link " << p.src << "->" << n;
      }
      last[p.src] = p.token;
    });
  }
  common::Xoshiro256 rng(77);
  // Tokens are assigned AT INJECTION TIME (inside the scheduled event),
  // so they record the true per-link send order the network must keep.
  static std::map<std::pair<NodeId, NodeId>, std::uint64_t> next_token;
  next_token.clear();
  for (int i = 0; i < 2'000; ++i) {
    const auto src = static_cast<NodeId>(rng.below(4));
    const auto dst = static_cast<NodeId>(rng.below(4));
    if (src == dst) continue;
    const auto bytes = static_cast<std::uint32_t>(rng.below(8192));
    engine.schedule_at(rng.below(1'000'000'000), [&net, src, dst, bytes] {
      Packet p;
      p.src = src;
      p.dst = dst;
      p.payload_bytes = bytes;
      p.token = ++next_token[{src, dst}];
      net.send(p);
    });
  }
  engine.run();
  std::uint64_t delivered = 0;
  for (const auto& s : seen) {
    for (const auto& [src, tok] : s.last_token) delivered += tok;
  }
  std::uint64_t sent = 0;
  for (const auto& [link, tok] : next_token) sent += tok;
  EXPECT_EQ(delivered, sent);  // nothing lost, nothing duplicated
}

TEST(Network, MinLookaheadIsWirePlusHeaderSerialisation) {
  sim::Engine engine;
  Network net(engine, cfg());
  // Base config: 200 ns wire + 32 * 500 ps header serialisation floor.
  EXPECT_EQ(net.min_lookahead(), 200'000u + 32u * 500u);
}

TEST(Network, PerLinkLatencyOverridesFeedMinLookahead) {
  sim::Engine engine;
  Network net(engine, cfg());
  // A slower link must not tighten the window...
  net.set_wire_latency(0, 1, 900'000);
  EXPECT_EQ(net.wire_latency(0, 1), 900'000u);
  EXPECT_EQ(net.wire_latency(1, 0), 200'000u);  // others keep the default
  EXPECT_EQ(net.min_lookahead(), 200'000u + 16'000u);
  // ...but a faster one tightens it to its own latency.
  net.set_wire_latency(2, 3, 50'000);
  EXPECT_EQ(net.min_lookahead(), 50'000u + 16'000u);
}

TEST(Network, OverriddenLinkDeliversAtItsOwnLatency) {
  sim::Engine engine;
  Network net(engine, cfg());
  net.set_wire_latency(1, 0, 900'000);
  Capture rx;
  net.attach(0, [&](const Packet& p) {
    rx.packets.push_back(p);
    rx.times.push_back(engine.now());
  });
  net.attach(1, [](const Packet&) {});
  Packet p;
  p.src = 1;
  p.dst = 0;
  engine.schedule_at(0, [&] { net.send(p); });
  engine.run();
  ASSERT_EQ(rx.times.size(), 1u);
  EXPECT_EQ(rx.times[0], 32u * 500u + 900'000u);
}

}  // namespace
}  // namespace alpu::net
