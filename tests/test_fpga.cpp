// Tests for the FPGA area/timing model against Tables IV and V.
#include <gtest/gtest.h>

#include <cmath>

#include "fpga/area_model.hpp"

namespace alpu::fpga {
namespace {

double pct(double model, double paper) {
  return std::abs(model - paper) / paper * 100.0;
}

struct TableCase {
  hw::AlpuFlavor flavor;
  PublishedRow row;
};

class PublishedRows : public ::testing::TestWithParam<TableCase> {};

TEST_P(PublishedRows, EstimatesWithinTwoPercent) {
  const TableCase& tc = GetParam();
  PrototypeParams p;
  p.flavor = tc.flavor;
  p.total_cells = tc.row.total_cells;
  p.block_size = tc.row.block_size;
  const SynthesisEstimate est = estimate(p);

  EXPECT_LT(pct(static_cast<double>(est.luts),
                static_cast<double>(tc.row.luts)), 2.0);
  EXPECT_LT(pct(static_cast<double>(est.flip_flops),
                static_cast<double>(tc.row.flip_flops)), 2.0);
  EXPECT_LT(pct(static_cast<double>(est.slices),
                static_cast<double>(tc.row.slices)), 2.0);
  EXPECT_LT(pct(est.clock_mhz, tc.row.clock_mhz), 2.0);
  EXPECT_EQ(est.pipeline_latency, tc.row.pipeline_latency);
}

std::vector<TableCase> all_rows() {
  std::vector<TableCase> cases;
  for (const auto& r : published_table4()) {
    cases.push_back({hw::AlpuFlavor::kPostedReceive, r});
  }
  for (const auto& r : published_table5()) {
    cases.push_back({hw::AlpuFlavor::kUnexpected, r});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Tables4And5, PublishedRows, ::testing::ValuesIn(all_rows()),
    [](const ::testing::TestParamInfo<TableCase>& info) {
      const TableCase& tc = info.param;
      return std::string(tc.flavor == hw::AlpuFlavor::kPostedReceive
                             ? "posted"
                             : "unexpected") +
             "_" + std::to_string(tc.row.total_cells) + "c" +
             std::to_string(tc.row.block_size) + "b";
    });

// ---- structural sanity -----------------------------------------------------

TEST(AreaModel, PostedCellStoresMaskUnexpectedDoesNot) {
  PrototypeParams posted{.flavor = hw::AlpuFlavor::kPostedReceive};
  PrototypeParams unexpected{.flavor = hw::AlpuFlavor::kUnexpected};
  // 42 match + 42 mask + 16 tag + 1 valid vs 42 + 16 + 1.
  EXPECT_EQ(cell_flip_flops(posted), 101u);
  EXPECT_EQ(cell_flip_flops(unexpected), 59u);
}

TEST(AreaModel, FlipFlopsScaleWithCells) {
  PrototypeParams p;
  p.total_cells = 256;
  const auto big = estimate(p);
  p.total_cells = 128;
  const auto small = estimate(p);
  // Doubling the cells roughly doubles storage.
  EXPECT_GT(static_cast<double>(big.flip_flops),
            1.9 * static_cast<double>(small.flip_flops));
  EXPECT_LT(static_cast<double>(big.flip_flops),
            2.2 * static_cast<double>(small.flip_flops));
}

TEST(AreaModel, LargerBlocksTradeFfForLuts) {
  // The paper's consistent trend: bigger blocks -> fewer FFs (fewer
  // per-block request registers), slightly more LUTs, fewer slices.
  PrototypeParams p;
  p.total_cells = 256;
  p.block_size = 8;
  const auto b8 = estimate(p);
  p.block_size = 32;
  const auto b32 = estimate(p);
  EXPECT_LT(b32.flip_flops, b8.flip_flops);
  EXPECT_GT(b32.luts, b8.luts);
  EXPECT_LT(b32.slices, b8.slices);
}

TEST(AreaModel, Block32MissesTheNineNsConstraint) {
  PrototypeParams p;
  p.block_size = 16;
  EXPECT_GT(estimate(p).clock_mhz, 111.0);
  p.block_size = 32;
  EXPECT_LT(estimate(p).clock_mhz, 105.0);
}

TEST(AreaModel, LatencyRuleMatchesBlockCount) {
  PrototypeParams p;
  // >= 16 blocks -> 2-cycle cross-block stage -> 7 total.
  p.total_cells = 256;
  p.block_size = 8;  // 32 blocks
  EXPECT_EQ(estimate(p).pipeline_latency, 7u);
  p.block_size = 32;  // 8 blocks
  EXPECT_EQ(estimate(p).pipeline_latency, 6u);
  p.total_cells = 128;
  p.block_size = 8;  // 16 blocks
  EXPECT_EQ(estimate(p).pipeline_latency, 7u);
  p.block_size = 16;  // 8 blocks
  EXPECT_EQ(estimate(p).pipeline_latency, 6u);
}

TEST(AreaModel, AsicProjectionIsFiveTimesFpga) {
  PrototypeParams p;
  const auto est = estimate(p);
  EXPECT_DOUBLE_EQ(est.asic_clock_mhz, est.clock_mhz * 5.0);
  EXPECT_GT(est.asic_clock_mhz, 500.0);  // the Section VI-A claim
}

TEST(AreaModel, PublishedTablesHaveSixRowsEach) {
  EXPECT_EQ(published_table4().size(), 6u);
  EXPECT_EQ(published_table5().size(), 6u);
}

}  // namespace
}  // namespace alpu::fpga
