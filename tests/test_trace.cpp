// Tests for the synthetic trace generator and the reference queue model.
#include <gtest/gtest.h>

#include "alpu/array.hpp"
#include "workload/trace.hpp"

namespace alpu::workload {
namespace {

TEST(TraceGenerator, DeterministicForSeed) {
  TraceConfig cfg;
  cfg.operations = 100;
  cfg.seed = 7;
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_post, b[i].is_post);
    EXPECT_EQ(a[i].word, b[i].word);
    EXPECT_EQ(a[i].pattern, b[i].pattern);
  }
}

TEST(TraceGenerator, RespectsOperationCount) {
  TraceConfig cfg;
  cfg.operations = 321;
  EXPECT_EQ(generate_trace(cfg).size(), 321u);
}

TEST(TraceGenerator, MixRoughlyMatchesProbabilities) {
  TraceConfig cfg;
  cfg.operations = 20'000;
  cfg.p_post = 0.4;
  cfg.p_wildcard_source = 0.3;
  cfg.p_wildcard_tag = 0.02;
  const auto trace = generate_trace(cfg);
  std::size_t posts = 0, wild_src = 0, wild_tag = 0;
  for (const auto& op : trace) {
    if (!op.is_post) continue;
    ++posts;
    if ((op.pattern.mask & match::kSourceMask) != 0) ++wild_src;
    if ((op.pattern.mask & match::kTagMask) != 0) ++wild_tag;
  }
  EXPECT_NEAR(static_cast<double>(posts) / 20'000.0, 0.4, 0.02);
  EXPECT_NEAR(static_cast<double>(wild_src) / static_cast<double>(posts),
              0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(wild_tag) / static_cast<double>(posts),
              0.02, 0.01);
}

TEST(TraceGenerator, FieldsWithinConfiguredRanges) {
  TraceConfig cfg;
  cfg.operations = 1'000;
  cfg.contexts = 3;
  cfg.sources = 5;
  cfg.tags = 7;
  for (const auto& op : generate_trace(cfg)) {
    const match::Envelope e =
        match::unpack(op.is_post ? op.pattern.bits : op.word);
    EXPECT_LT(e.context, 3u);
    if (!op.is_post) {
      EXPECT_LT(e.source, 5u);
      EXPECT_LT(e.tag, 7u);
    }
  }
}

// ---- ReferenceQueues invariants --------------------------------------------

TEST(ReferenceQueues, PostMatchingUnexpectedConsumesIt) {
  ReferenceQueues q;
  TraceOp arrival;
  arrival.is_post = false;
  arrival.word = match::pack(match::Envelope{0, 1, 7});
  EXPECT_FALSE(q.apply(arrival).matched);  // goes unexpected
  EXPECT_EQ(q.unexpected().size(), 1u);

  TraceOp post;
  post.is_post = true;
  post.pattern = match::make_recv_pattern(0, 1, 7);
  const auto ev = q.apply(post);
  EXPECT_TRUE(ev.matched);
  EXPECT_TRUE(q.unexpected().empty());
  EXPECT_TRUE(q.posted().empty());
}

TEST(ReferenceQueues, ArrivalMatchingPostedConsumesIt) {
  ReferenceQueues q;
  TraceOp post;
  post.is_post = true;
  post.pattern = match::make_recv_pattern(0, std::nullopt, 7);
  EXPECT_FALSE(q.apply(post).matched);
  EXPECT_EQ(q.posted().size(), 1u);

  TraceOp arrival;
  arrival.is_post = false;
  arrival.word = match::pack(match::Envelope{0, 3, 7});
  EXPECT_TRUE(q.apply(arrival).matched);
  EXPECT_TRUE(q.posted().empty());
  EXPECT_TRUE(q.unexpected().empty());
}

TEST(ReferenceQueues, EntryNeverInBothQueues) {
  TraceConfig cfg;
  cfg.operations = 5'000;
  cfg.seed = 3;
  ReferenceQueues q;
  std::size_t appended = 0, matched = 0;
  for (const auto& op : generate_trace(cfg)) {
    if (q.apply(op).matched) {
      ++matched;
    } else {
      ++appended;
    }
    // Conservation: appended entries are either still queued or matched.
    ASSERT_EQ(q.posted().size() + q.unexpected().size(),
              appended - matched);
  }
  EXPECT_GT(matched, 0u);
}

// ---- cross-structure property: ALPU array == reference posted queue --------

class ArrayVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrayVsReference, PostedQueueSemanticsIdentical) {
  // Replay a trace against (a) the reference posted/unexpected lists and
  // (b) an AlpuArray pair large enough to never overflow.  The matched
  // cookies must be identical at every step — the functional core of the
  // hardware implements exactly the MPI queue discipline.
  TraceConfig cfg;
  cfg.operations = 1'500;
  cfg.seed = GetParam();
  const auto trace = generate_trace(cfg);

  ReferenceQueues reference;
  hw::AlpuArray posted(hw::AlpuFlavor::kPostedReceive, 2048, 16);
  hw::AlpuArray unexpected(hw::AlpuFlavor::kUnexpected, 2048, 16);
  match::Cookie next_cookie = 1;

  for (const auto& op : trace) {
    const auto expected = reference.apply(op);
    if (op.is_post) {
      const hw::Probe probe{op.pattern.bits, op.pattern.mask, 0};
      const auto got = unexpected.match_and_delete(probe);
      ASSERT_EQ(got.hit, expected.matched);
      if (expected.matched) {
        ASSERT_EQ(got.cookie, expected.cookie);
      } else {
        ASSERT_TRUE(
            posted.insert(op.pattern.bits, op.pattern.mask, next_cookie++));
      }
    } else {
      const hw::Probe probe{op.word, 0, 0};
      const auto got = posted.match_and_delete(probe);
      ASSERT_EQ(got.hit, expected.matched);
      if (expected.matched) {
        ASSERT_EQ(got.cookie, expected.cookie);
      } else {
        ASSERT_TRUE(unexpected.insert(op.word, 0, next_cookie++));
      }
    }
    ASSERT_EQ(posted.occupancy(), reference.posted().size());
    ASSERT_EQ(unexpected.occupancy(), reference.unexpected().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayVsReference,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace alpu::workload
