// Tests for the multi-process ALPU extension (footnote 1): PID-qualified
// matching, per-process teardown, and the RESET MATCHING sweep.
#include <gtest/gtest.h>

#include <unordered_map>

#include "alpu/multi.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace alpu::hw {
namespace {

using match::Envelope;
using match::make_recv_pattern;
using match::pack;

constexpr common::TimePs kCycle = 2'000;

// ---- PID packing -------------------------------------------------------------

TEST(Pid, StampAndExtract) {
  const MatchWord w = pack(Envelope{3, 100, 200});
  EXPECT_EQ(pid_of(with_pid(w, 0)), 0u);
  EXPECT_EQ(pid_of(with_pid(w, 63)), 63u);
  EXPECT_EQ(pid_of(with_pid(with_pid(w, 5), 9)), 9u);  // restamp replaces
  // The MPI fields survive stamping.
  EXPECT_EQ(match::unpack(with_pid(w, 17)), (Envelope{3, 100, 200}));
}

TEST(Pid, MaskLayoutDoesNotOverlapMpiFields) {
  EXPECT_EQ(kPidMask & match::kFullMask, 0u);
  EXPECT_EQ(kPidSignificantMask, match::kFullMask | kPidMask);
}

// ---- functional isolation in the array ---------------------------------------

TEST(MultiArray, PidQualifiedComparatorsIsolateProcesses) {
  AlpuArray array(AlpuFlavor::kPostedReceive, 32, 8, kPidSignificantMask);
  const auto p = make_recv_pattern(0, 1, 7);
  ASSERT_TRUE(array.insert(with_pid(p.bits, 1), p.mask, 11));
  ASSERT_TRUE(array.insert(with_pid(p.bits, 2), p.mask, 22));

  const MatchWord header = pack(Envelope{0, 1, 7});
  const auto m1 = array.match(Probe{with_pid(header, 1), 0, 0});
  ASSERT_TRUE(m1.hit);
  EXPECT_EQ(m1.cookie, 11u);
  const auto m2 = array.match(Probe{with_pid(header, 2), 0, 0});
  ASSERT_TRUE(m2.hit);
  EXPECT_EQ(m2.cookie, 22u);
  EXPECT_FALSE(array.match(Probe{with_pid(header, 3), 0, 0}).hit);
}

TEST(MultiArray, WildcardsStillWorkWithinAProcess) {
  AlpuArray array(AlpuFlavor::kPostedReceive, 32, 8, kPidSignificantMask);
  const auto any_src = make_recv_pattern(0, std::nullopt, 7);
  ASSERT_TRUE(array.insert(with_pid(any_src.bits, 4),
                           any_src.mask & ~kPidMask, 44));
  EXPECT_TRUE(
      array.match(Probe{with_pid(pack(Envelope{0, 9, 7}), 4), 0, 0}).hit);
  EXPECT_FALSE(
      array.match(Probe{with_pid(pack(Envelope{0, 9, 7}), 5), 0, 0}).hit);
}

TEST(MultiArray, InvalidateMatchingRemovesSelectedAndCompacts) {
  AlpuArray array(AlpuFlavor::kPostedReceive, 32, 8, kPidSignificantMask);
  const auto p = make_recv_pattern(0, 1, 7);
  for (std::uint32_t pid : {1u, 2u, 1u, 3u, 1u}) {
    ASSERT_TRUE(array.insert(with_pid(p.bits, pid), p.mask, pid * 100));
  }
  // Flush pid 1: selector matches only the PID field.
  const std::size_t removed =
      array.invalidate_matching(Probe{with_pid(0, 1), ~kPidMask, 0});
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(array.occupancy(), 2u);
  // Survivors keep their relative order (2 before 3).
  EXPECT_EQ(array.cell(0).cookie, 200u);
  EXPECT_EQ(array.cell(1).cookie, 300u);
}

TEST(MultiArray, InvalidateMatchingNothingIsNoop) {
  AlpuArray array(AlpuFlavor::kPostedReceive, 16, 8, kPidSignificantMask);
  const auto p = make_recv_pattern(0, 1, 7);
  ASSERT_TRUE(array.insert(with_pid(p.bits, 1), p.mask, 1));
  EXPECT_EQ(array.invalidate_matching(Probe{with_pid(0, 9), ~kPidMask, 0}),
            0u);
  EXPECT_EQ(array.occupancy(), 1u);
}

// ---- cycle-level unit with the facade -----------------------------------------

class MultiUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AlpuConfig cfg;
    cfg.total_cells = 32;
    cfg.block_size = 8;
    cfg.clock = common::ClockPeriod{kCycle};
    multi = std::make_unique<MultiProcessAlpu>(engine, "dut", cfg);
  }

  Response next_result() {
    while (!multi->unit().result_available()) {
      engine.run_until(engine.now() + kCycle);
    }
    return *multi->pop_result();
  }

  void load(std::uint32_t pid, std::uint32_t tag, Cookie cookie) {
    ASSERT_TRUE(multi->push_command({CommandKind::kStartInsert, 0, 0, 0}));
    ASSERT_EQ(next_result().kind, ResponseKind::kStartAck);
    const auto p = make_recv_pattern(0, 1, tag);
    ASSERT_TRUE(multi->push_insert(pid, p.bits, p.mask, cookie));
    ASSERT_TRUE(multi->push_command({CommandKind::kStopInsert, 0, 0, 0}));
    engine.run_until(engine.now() + 12 * kCycle);
  }

  sim::Engine engine;
  std::unique_ptr<MultiProcessAlpu> multi;
};

TEST_F(MultiUnitTest, ProbesOnlySeeOwnProcess) {
  load(1, 7, 100);
  load(2, 7, 200);
  ASSERT_TRUE(multi->push_probe(3, Probe{pack(Envelope{0, 1, 7}), 0, 1}));
  EXPECT_EQ(next_result().kind, ResponseKind::kMatchFailure);
  ASSERT_TRUE(multi->push_probe(2, Probe{pack(Envelope{0, 1, 7}), 0, 2}));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchSuccess);
  EXPECT_EQ(r.cookie, 200u);
  // Process 1's entry is untouched.
  EXPECT_EQ(multi->unit().array().occupancy(), 1u);
}

TEST_F(MultiUnitTest, FlushProcessRemovesOnlyThatProcess) {
  load(1, 7, 100);
  load(2, 7, 200);
  load(1, 8, 101);
  EXPECT_EQ(multi->unit().array().occupancy(), 3u);
  ASSERT_TRUE(multi->flush_process(1));
  engine.run_until(engine.now() + 32 * kCycle);
  EXPECT_EQ(multi->unit().array().occupancy(), 1u);
  EXPECT_EQ(multi->unit().stats().flushes, 1u);
  EXPECT_EQ(multi->unit().stats().flushed_entries, 2u);
  // Process 2 still matches after the sweep.
  ASSERT_TRUE(multi->push_probe(2, Probe{pack(Envelope{0, 1, 7}), 0, 5}));
  EXPECT_EQ(next_result().cookie, 200u);
}

TEST_F(MultiUnitTest, FlushSweepOccupiesOneCyclePerBlock) {
  load(1, 7, 100);
  ASSERT_TRUE(multi->flush_process(1));
  // Decode (1 cycle) + sweep (capacity/block = 4 cycles); a probe queued
  // behind the flush is answered only after the sweep retires.
  ASSERT_TRUE(multi->push_probe(1, Probe{pack(Envelope{0, 1, 7}), 0, 9}));
  const common::TimePs t0 = engine.now();
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchFailure);  // entry was flushed
  EXPECT_GE(r.issued_at - t0, (1 + 4 + 7) * kCycle);
}

TEST_F(MultiUnitTest, InsertedForBookkeeping) {
  load(1, 7, 100);
  load(1, 8, 101);
  load(2, 9, 200);
  EXPECT_EQ(multi->inserted_for(1), 2u);
  EXPECT_EQ(multi->inserted_for(2), 1u);
  EXPECT_EQ(multi->inserted_for(7), 0u);
  ASSERT_TRUE(multi->flush_process(1));
  EXPECT_EQ(multi->inserted_for(1), 0u);
}

// ---- randomized isolation property --------------------------------------------

TEST(MultiArray, RandomTrafficNeverCrossesProcessBoundaries) {
  common::Xoshiro256 rng(7);
  AlpuArray array(AlpuFlavor::kPostedReceive, 128, 16, kPidSignificantMask);
  // Reference: independent per-process entry lists.
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<match::Pattern, Cookie>>>
      model;

  Cookie next = 1;
  for (int step = 0; step < 3'000; ++step) {
    const auto pid = static_cast<std::uint32_t>(rng.below(4));
    if (rng.chance(0.5) && !array.full()) {
      const auto p = make_recv_pattern(
          0,
          rng.chance(0.3) ? std::nullopt
                          : std::optional<std::uint32_t>{
                                static_cast<std::uint32_t>(rng.below(4))},
          static_cast<std::uint32_t>(rng.below(4)));
      const Cookie c = next++;
      ASSERT_TRUE(array.insert(with_pid(p.bits, pid), p.mask & ~kPidMask, c));
      model[pid].emplace_back(p, c);
    } else {
      const MatchWord header =
          pack(Envelope{0, static_cast<std::uint32_t>(rng.below(4)),
                        static_cast<std::uint32_t>(rng.below(4))});
      const auto got =
          array.match_and_delete(Probe{with_pid(header, pid), 0, 0});
      auto& list = model[pid];
      bool found = false;
      for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->first.matches(header)) {
          ASSERT_TRUE(got.hit);
          ASSERT_EQ(got.cookie, it->second);
          list.erase(it);
          found = true;
          break;
        }
      }
      if (!found) {
        ASSERT_FALSE(got.hit);
      }
    }
  }
}

}  // namespace
}  // namespace alpu::hw
