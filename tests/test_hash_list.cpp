// Tests for the hash-table matching structures (the Section II
// alternative), including trace-equivalence against the linear lists.
#include <gtest/gtest.h>

#include "match/hash_list.hpp"
#include "workload/trace.hpp"

namespace alpu::match {
namespace {

using workload::generate_trace;
using workload::ReferenceQueues;
using workload::TraceConfig;

// ---- PostedHashList --------------------------------------------------------

TEST(PostedHashList, ExactInsertAndConsume) {
  PostedHashList list;
  const Pattern p = exact_pattern(Envelope{0, 1, 7});
  list.insert(p, 11);
  EXPECT_EQ(list.size(), 1u);
  const auto r = list.consume_match(pack(Envelope{0, 1, 7}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 11u);
  EXPECT_EQ(r.hash_probes, 1u);
  EXPECT_TRUE(list.empty());
}

TEST(PostedHashList, MissLeavesListIntact) {
  PostedHashList list;
  list.insert(exact_pattern(Envelope{0, 1, 7}), 1);
  const auto r = list.consume_match(pack(Envelope{0, 1, 8}));
  EXPECT_FALSE(r.found);
  EXPECT_EQ(list.size(), 1u);
}

TEST(PostedHashList, OrderingArbitrationOlderWildcardWins) {
  PostedHashList list;
  // Wildcard posted first, exact second: MPI says wildcard wins.
  list.insert(make_recv_pattern(0, std::nullopt, 7), 1);
  list.insert(exact_pattern(Envelope{0, 3, 7}), 2);
  const auto r = list.consume_match(pack(Envelope{0, 3, 7}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 1u);
  // The exact entry must remain.
  const auto r2 = list.consume_match(pack(Envelope{0, 3, 7}));
  ASSERT_TRUE(r2.found);
  EXPECT_EQ(r2.cookie, 2u);
}

TEST(PostedHashList, OrderingArbitrationOlderExactWins) {
  PostedHashList list;
  list.insert(exact_pattern(Envelope{0, 3, 7}), 1);
  list.insert(make_recv_pattern(0, std::nullopt, 7), 2);
  const auto r = list.consume_match(pack(Envelope{0, 3, 7}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 1u);
}

TEST(PostedHashList, SameKeyBucketIsFifo) {
  PostedHashList list;
  list.insert(exact_pattern(Envelope{0, 1, 7}), 1);
  list.insert(exact_pattern(Envelope{0, 1, 7}), 2);
  EXPECT_EQ(list.consume_match(pack(Envelope{0, 1, 7})).cookie, 1u);
  EXPECT_EQ(list.consume_match(pack(Envelope{0, 1, 7})).cookie, 2u);
}

TEST(PostedHashList, WildcardScanCostIsVisible) {
  PostedHashList list;
  for (Cookie c = 0; c < 10; ++c) {
    list.insert(make_recv_pattern(0, std::nullopt, c), c);
  }
  EXPECT_EQ(list.wildcard_count(), 10u);
  const auto r = list.consume_match(pack(Envelope{0, 5, 9}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.entries_scanned, 10u);  // walked the whole wildcard list
}

// ---- UnexpectedHashList ----------------------------------------------------

TEST(UnexpectedHashList, ExactProbeIsConstantTime) {
  UnexpectedHashList list;
  for (Cookie c = 0; c < 100; ++c) {
    list.insert(pack(Envelope{0, c % 8, c % 16}), c);
  }
  const auto r = list.consume_match(exact_pattern(Envelope{0, 3, 3}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.hash_probes, 1u);
  EXPECT_EQ(r.entries_scanned, 0u);
}

TEST(UnexpectedHashList, WildcardProbeFallsBackToScan) {
  UnexpectedHashList list;
  list.insert(pack(Envelope{0, 1, 5}), 1);
  list.insert(pack(Envelope{0, 2, 6}), 2);
  list.insert(pack(Envelope{0, 3, 6}), 3);
  const auto r = list.consume_match(make_recv_pattern(0, std::nullopt, 6));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 2u);  // oldest arrival with tag 6
  EXPECT_GT(r.entries_scanned, 0u);
}

TEST(UnexpectedHashList, ArrivalOrderWithinKey) {
  UnexpectedHashList list;
  list.insert(pack(Envelope{0, 1, 5}), 10);
  list.insert(pack(Envelope{0, 1, 5}), 11);
  EXPECT_EQ(list.consume_match(exact_pattern(Envelope{0, 1, 5})).cookie, 10u);
  EXPECT_EQ(list.consume_match(exact_pattern(Envelope{0, 1, 5})).cookie, 11u);
  EXPECT_TRUE(list.empty());
}

TEST(UnexpectedHashList, TombstonesDoNotResurface) {
  UnexpectedHashList list;
  list.insert(pack(Envelope{0, 1, 5}), 1);
  (void)list.consume_match(exact_pattern(Envelope{0, 1, 5}));
  // Wildcard scan must not find the consumed entry.
  const auto r = list.consume_match(make_recv_pattern(0, std::nullopt, 5));
  EXPECT_FALSE(r.found);
}

TEST(UnexpectedHashList, SurvivesHeavyChurnWithCompaction) {
  UnexpectedHashList list;
  // Force many front-tombstones to exercise the rebuild path.
  for (Cookie c = 0; c < 500; ++c) list.insert(pack(Envelope{0, 1, 1}), c);
  for (Cookie c = 0; c < 400; ++c) {
    const auto r = list.consume_match(exact_pattern(Envelope{0, 1, 1}));
    ASSERT_TRUE(r.found);
    ASSERT_EQ(r.cookie, c);
  }
  EXPECT_EQ(list.size(), 100u);
  // Remaining entries still reachable by wildcard scan in order.
  const auto r = list.consume_match(make_recv_pattern(0, std::nullopt, 1));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 400u);
}

// ---- trace equivalence: hash structures == linear-list specification -------

class HashEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashEquivalence, MatchesReferenceOnRandomTraces) {
  TraceConfig cfg;
  cfg.operations = 2'000;
  cfg.seed = GetParam();
  cfg.p_wildcard_source = 0.35;
  cfg.p_wildcard_tag = 0.05;
  const auto trace = generate_trace(cfg);

  ReferenceQueues reference;
  PostedHashList posted_hash;
  UnexpectedHashList unexpected_hash;
  Cookie next_cookie = 1;

  for (const auto& op : trace) {
    const auto expected = reference.apply(op);
    // Cookie discipline mirrors ReferenceQueues: a cookie is assigned
    // only when an entry is appended (no match), from a shared counter.
    if (op.is_post) {
      const auto got = unexpected_hash.consume_match(op.pattern);
      ASSERT_EQ(got.found, expected.matched);
      if (expected.matched) {
        ASSERT_EQ(got.cookie, expected.cookie);
      } else {
        posted_hash.insert(op.pattern, next_cookie++);
      }
    } else {
      const auto got = posted_hash.consume_match(op.word);
      ASSERT_EQ(got.found, expected.matched);
      if (expected.matched) {
        ASSERT_EQ(got.cookie, expected.cookie);
      } else {
        unexpected_hash.insert(op.word, next_cookie++);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace alpu::match
