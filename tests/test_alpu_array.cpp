// Unit + property tests for the ALPU functional match array (Figure 2).
#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "alpu/array.hpp"
#include "common/rng.hpp"

namespace alpu::hw {
namespace {

using match::Envelope;
using match::make_recv_pattern;
using match::pack;

Probe probe_of(std::uint32_t ctx, std::uint32_t src, std::uint32_t tag) {
  return Probe{pack(Envelope{ctx, src, tag}), 0, 0};
}

// ---- basic behaviour -------------------------------------------------------

TEST(AlpuArray, StartsEmpty) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 32, 8);
  EXPECT_EQ(a.capacity(), 32u);
  EXPECT_EQ(a.occupancy(), 0u);
  EXPECT_EQ(a.free_slots(), 32u);
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.match(probe_of(0, 0, 0)).hit);
}

TEST(AlpuArray, InsertThenMatch) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 32, 8);
  const auto p = make_recv_pattern(0, 1, 7);
  ASSERT_TRUE(a.insert(p.bits, p.mask, 42));
  const auto m = a.match(probe_of(0, 1, 7));
  ASSERT_TRUE(m.hit);
  EXPECT_EQ(m.cookie, 42u);
  EXPECT_EQ(m.location, 0u);
  EXPECT_EQ(a.occupancy(), 1u);  // pure match does not delete
}

TEST(AlpuArray, OldestMatchingCellWins) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 32, 8);
  // Wildcard-source entry inserted first; exact entry second.  MPI
  // ordering demands the first (wildcard) entry wins — the property the
  // paper stresses distinguishes this from longest-prefix-match routing.
  const auto wild = make_recv_pattern(0, std::nullopt, 7);
  const auto exact = make_recv_pattern(0, 3, 7);
  ASSERT_TRUE(a.insert(wild.bits, wild.mask, 1));
  ASSERT_TRUE(a.insert(exact.bits, exact.mask, 2));
  const auto m = a.match(probe_of(0, 3, 7));
  ASSERT_TRUE(m.hit);
  EXPECT_EQ(m.cookie, 1u);
}

TEST(AlpuArray, MatchAndDeleteCompacts) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 32, 8);
  for (Cookie c = 1; c <= 4; ++c) {
    const auto p = make_recv_pattern(0, 1, c);
    ASSERT_TRUE(a.insert(p.bits, p.mask, c));
  }
  const auto m = a.match_and_delete(probe_of(0, 1, 2));
  ASSERT_TRUE(m.hit);
  EXPECT_EQ(m.cookie, 2u);
  EXPECT_EQ(m.location, 1u);
  EXPECT_EQ(a.occupancy(), 3u);
  // Younger entries shifted up one slot; no holes (Section III-B).
  EXPECT_EQ(a.cell(0).cookie, 1u);
  EXPECT_EQ(a.cell(1).cookie, 3u);
  EXPECT_EQ(a.cell(2).cookie, 4u);
  EXPECT_FALSE(a.cell(3).valid);
}

TEST(AlpuArray, DeleteOnMatchConsumesExactlyOne) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 32, 8);
  const auto p = make_recv_pattern(0, 1, 7);
  ASSERT_TRUE(a.insert(p.bits, p.mask, 1));
  ASSERT_TRUE(a.insert(p.bits, p.mask, 2));
  EXPECT_EQ(a.match_and_delete(probe_of(0, 1, 7)).cookie, 1u);
  EXPECT_EQ(a.match_and_delete(probe_of(0, 1, 7)).cookie, 2u);
  EXPECT_FALSE(a.match_and_delete(probe_of(0, 1, 7)).hit);
  EXPECT_TRUE(a.empty());
}

TEST(AlpuArray, InsertFailsWhenFull) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 16, 8);
  const auto p = make_recv_pattern(0, 1, 1);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(a.insert(p.bits, p.mask, static_cast<Cookie>(i)));
  }
  EXPECT_TRUE(a.full());
  EXPECT_FALSE(a.insert(p.bits, p.mask, 99));
  EXPECT_EQ(a.occupancy(), 16u);
}

TEST(AlpuArray, ResetClearsAllValidFlags) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 16, 8);
  const auto p = make_recv_pattern(0, 1, 1);
  ASSERT_TRUE(a.insert(p.bits, p.mask, 5));
  a.reset();
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.match(probe_of(0, 1, 1)).hit);
  ASSERT_TRUE(a.insert(p.bits, p.mask, 6));  // usable again
  EXPECT_EQ(a.match(probe_of(0, 1, 1)).cookie, 6u);
}

TEST(AlpuArray, InvalidCellsNeverMatch) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 8, 8);
  const auto p = make_recv_pattern(0, 0, 0);
  ASSERT_TRUE(a.insert(p.bits, p.mask, 1));
  const auto m = a.match_and_delete(probe_of(0, 0, 0));
  ASSERT_TRUE(m.hit);
  // The vacated cell still holds the stale bits but valid==false.
  EXPECT_FALSE(a.match(probe_of(0, 0, 0)).hit);
}

// ---- flavour differences ---------------------------------------------------

TEST(AlpuArray, PostedFlavorUsesStoredMask) {
  AlpuArray a(AlpuFlavor::kPostedReceive, 8, 8);
  const auto wild = make_recv_pattern(0, std::nullopt, 7);
  ASSERT_TRUE(a.insert(wild.bits, wild.mask, 1));
  // Probe mask must be ignored in this flavour.
  Probe p = probe_of(0, 9, 7);
  p.mask = ~0ull;  // nonsense input mask
  EXPECT_TRUE(a.match(p).hit);
  EXPECT_FALSE(a.match(probe_of(0, 9, 8)).hit);
}

TEST(AlpuArray, UnexpectedFlavorUsesProbeMask) {
  AlpuArray a(AlpuFlavor::kUnexpected, 8, 8);
  // Cells store explicit arrived envelopes.
  ASSERT_TRUE(a.insert(pack(Envelope{0, 4, 7}), 0, 1));
  ASSERT_TRUE(a.insert(pack(Envelope{0, 5, 7}), 0, 2));
  // A wildcard-source receive probes with mask over the source field.
  const auto probe_pattern = make_recv_pattern(0, std::nullopt, 7);
  const Probe p{probe_pattern.bits, probe_pattern.mask, 0};
  const auto m = a.match(p);
  ASSERT_TRUE(m.hit);
  EXPECT_EQ(m.cookie, 1u);  // oldest arrival
}

TEST(AlpuArray, UnexpectedFlavorIgnoresStoredMaskField) {
  AlpuArray a(AlpuFlavor::kUnexpected, 8, 8);
  // Even if garbage is written to the stored-mask field, only the probe
  // mask participates (Figure 2b has no mask storage).
  ASSERT_TRUE(a.insert(pack(Envelope{0, 4, 7}), ~0ull, 1));
  EXPECT_FALSE(a.match(probe_of(0, 4, 8)).hit);
  EXPECT_TRUE(a.match(probe_of(0, 4, 7)).hit);
}

// ---- hardware-fidelity property: tree reduction == linear spec -------------

class TreeEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(TreeEquivalence, MatchTreeAgreesWithLinearSpec) {
  const auto [cells, block, seed] = GetParam();
  common::Xoshiro256 rng(seed);
  AlpuArray a(AlpuFlavor::kPostedReceive, cells, block);

  // Random churn: inserts, deletes-by-match, resets; after every step,
  // a batch of random probes must agree between the block-structured
  // priority-mux reduction and the linear first-match specification.
  for (int step = 0; step < 300; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55 && !a.full()) {
      const auto src = rng.chance(0.3)
                           ? std::nullopt
                           : std::optional<std::uint32_t>{
                                 static_cast<std::uint32_t>(rng.below(4))};
      const auto tag = rng.chance(0.1)
                           ? std::nullopt
                           : std::optional<std::uint32_t>{
                                 static_cast<std::uint32_t>(rng.below(4))};
      const auto p = make_recv_pattern(
          static_cast<std::uint32_t>(rng.below(2)), src, tag);
      ASSERT_TRUE(a.insert(p.bits, p.mask,
                           static_cast<Cookie>(step + 1)));
    } else if (roll < 0.95) {
      a.match_and_delete(probe_of(static_cast<std::uint32_t>(rng.below(2)),
                                  static_cast<std::uint32_t>(rng.below(4)),
                                  static_cast<std::uint32_t>(rng.below(4))));
    } else {
      a.reset();
    }

    for (int q = 0; q < 8; ++q) {
      const Probe p = probe_of(static_cast<std::uint32_t>(rng.below(2)),
                               static_cast<std::uint32_t>(rng.below(4)),
                               static_cast<std::uint32_t>(rng.below(4)));
      const ArrayMatch linear = a.match(p);
      const ArrayMatch tree = a.match_tree(p);
      ASSERT_EQ(tree.hit, linear.hit);
      if (linear.hit) {
        ASSERT_EQ(tree.location, linear.location);
        ASSERT_EQ(tree.cookie, linear.cookie);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockShapes, TreeEquivalence,
    ::testing::Values(std::make_tuple(32, 8, 1), std::make_tuple(32, 16, 2),
                      std::make_tuple(64, 8, 3), std::make_tuple(64, 32, 4),
                      std::make_tuple(128, 16, 5),
                      std::make_tuple(128, 32, 6),
                      std::make_tuple(256, 8, 7),
                      std::make_tuple(256, 32, 8)));

// ---- reference-model property: array == software list under churn ----------

TEST(AlpuArray, BehavesLikeAListUnderChurn) {
  common::Xoshiro256 rng(99);
  AlpuArray a(AlpuFlavor::kPostedReceive, 64, 16);
  std::deque<std::pair<match::Pattern, Cookie>> model;

  for (int step = 0; step < 2'000; ++step) {
    if (rng.chance(0.5) && !a.full()) {
      const auto p = make_recv_pattern(
          0,
          rng.chance(0.25) ? std::nullopt
                           : std::optional<std::uint32_t>{
                                 static_cast<std::uint32_t>(rng.below(6))},
          static_cast<std::uint32_t>(rng.below(6)));
      const auto c = static_cast<Cookie>(step + 1);
      ASSERT_TRUE(a.insert(p.bits, p.mask, c));
      model.emplace_back(p, c);
    } else {
      const Probe p = probe_of(0, static_cast<std::uint32_t>(rng.below(6)),
                               static_cast<std::uint32_t>(rng.below(6)));
      const ArrayMatch got = a.match_and_delete(p);
      // Model: first matching entry in order.
      bool found = false;
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->first.matches(p.bits)) {
          ASSERT_TRUE(got.hit);
          ASSERT_EQ(got.cookie, it->second);
          model.erase(it);
          found = true;
          break;
        }
      }
      if (!found) {
        ASSERT_FALSE(got.hit);
      }
    }
    ASSERT_EQ(a.occupancy(), model.size());
  }
}

}  // namespace
}  // namespace alpu::hw
