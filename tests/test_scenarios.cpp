// Tests for the benchmark scenario runners: the Figure 5/6 harnesses
// must show the paper's qualitative behaviour on every build.
#include <gtest/gtest.h>

#include "workload/scenarios.hpp"

namespace alpu::workload {
namespace {

using common::TimePs;

double preposted_ns(NicMode mode, std::size_t len, double frac,
                    int iterations = 1) {
  PrepostedParams p;
  p.mode = mode;
  p.queue_length = len;
  p.fraction_traversed = frac;
  p.iterations = iterations;
  return common::to_ns(run_preposted(p).latency);
}

double unexpected_ns(NicMode mode, std::size_t len) {
  UnexpectedParams p;
  p.mode = mode;
  p.queue_length = len;
  return common::to_ns(run_unexpected(p).latency);
}

TEST(Scenarios, ConfigWiresAlpusPerMode) {
  EXPECT_FALSE(make_system_config(NicMode::kBaseline).nic.posted_alpu);
  const auto a128 = make_system_config(NicMode::kAlpu128);
  ASSERT_TRUE(a128.nic.posted_alpu.has_value());
  EXPECT_EQ(a128.nic.posted_alpu->total_cells, 128u);
  ASSERT_TRUE(a128.nic.unexpected_alpu.has_value());
  const auto a256 = make_system_config(NicMode::kAlpu256);
  EXPECT_EQ(a256.nic.posted_alpu->total_cells, 256u);
}

TEST(Scenarios, PingPongLatencyIsSane) {
  const TimePs t = run_pingpong(NicMode::kBaseline, 0, 4);
  // Half-RTT for a 0-byte message: hundreds of ns to a few us.
  EXPECT_GT(t, 300'000u);   // > 300 ns
  EXPECT_LT(t, 5'000'000u);  // < 5 us
}

TEST(Scenarios, PingPongAlpuOverheadSmall) {
  const TimePs base = run_pingpong(NicMode::kBaseline, 0, 4);
  const TimePs alpu = run_pingpong(NicMode::kAlpu128, 0, 4);
  EXPECT_GT(alpu, base);              // some overhead...
  EXPECT_LT(alpu - base, 300'000u);   // ...but well under 300 ns
}

TEST(Scenarios, BaselineLatencyGrowsWithQueueLength) {
  const double l0 = preposted_ns(NicMode::kBaseline, 0, 1.0);
  const double l50 = preposted_ns(NicMode::kBaseline, 50, 1.0);
  const double l200 = preposted_ns(NicMode::kBaseline, 200, 1.0);
  EXPECT_LT(l0, l50);
  EXPECT_LT(l50, l200);
  // Short-queue slope near the paper's ~15 ns/entry.
  EXPECT_NEAR((l200 - l50) / 150.0, 15.0, 6.0);
}

TEST(Scenarios, BaselineLatencyGrowsWithFractionTraversed) {
  const double f25 = preposted_ns(NicMode::kBaseline, 200, 0.25);
  const double f100 = preposted_ns(NicMode::kBaseline, 200, 1.0);
  EXPECT_LT(f25, f100);
}

TEST(Scenarios, AlpuFlatWithinCapacity) {
  const double l0 = preposted_ns(NicMode::kAlpu256, 0, 1.0);
  const double l100 = preposted_ns(NicMode::kAlpu256, 100, 1.0);
  const double l200 = preposted_ns(NicMode::kAlpu256, 200, 1.0);
  EXPECT_NEAR(l100, l0, 20.0);
  EXPECT_NEAR(l200, l0, 20.0);
}

TEST(Scenarios, AlpuGrowsOnlyBeyondCapacity) {
  const double within = preposted_ns(NicMode::kAlpu128, 100, 1.0);
  const double beyond = preposted_ns(NicMode::kAlpu128, 200, 1.0);
  EXPECT_GT(beyond, within + 500.0);  // overflow walk is visible
  // And the 256-entry unit handles the same queue flat.
  const double big = preposted_ns(NicMode::kAlpu256, 200, 1.0);
  EXPECT_LT(big, within + 20.0);
}

TEST(Scenarios, BreakEvenNearFiveEntries) {
  // The paper: ALPU overhead amortises at ~5 entries.
  const double base5 = preposted_ns(NicMode::kBaseline, 5, 1.0);
  const double alpu5 = preposted_ns(NicMode::kAlpu128, 5, 1.0);
  EXPECT_LE(alpu5, base5 + 20.0);
  const double base20 = preposted_ns(NicMode::kBaseline, 20, 1.0);
  const double alpu20 = preposted_ns(NicMode::kAlpu128, 20, 1.0);
  EXPECT_LT(alpu20, base20);
}

TEST(Scenarios, CacheKneeRaisesPerEntryCost) {
  // Past the 32 KB L1 (~250 entries at 128 B of footprint), the walk
  // misses: the AVERAGE per-entry cost at depth approaches the paper's
  // ~64 ns out-of-cache figure, far above the ~15 ns in-cache cost.
  const double l0 = preposted_ns(NicMode::kBaseline, 0, 1.0);
  const double l500 = preposted_ns(NicMode::kBaseline, 500, 1.0);
  const double avg = (l500 - l0) / 500.0;
  EXPECT_GT(avg, 45.0);
  EXPECT_LT(avg, 80.0);
  // And the marginal cost beyond the knee clearly exceeds the in-cache
  // slope (the "rises more dramatically" of Section VI-C).
  const double l300 = preposted_ns(NicMode::kBaseline, 300, 1.0);
  EXPECT_GT((l500 - l300) / 200.0, 40.0);
}

TEST(Scenarios, IteratedModeWarmsTheCache) {
  // Steady-state (iterated) traversal of a 400-entry queue re-touches
  // lines the previous iteration loaded: average must be well below the
  // cold single-shot figure.
  const double cold = preposted_ns(NicMode::kBaseline, 400, 1.0);
  const double warm = preposted_ns(NicMode::kBaseline, 400, 1.0, 6);
  EXPECT_LT(warm, cold);
}

TEST(Scenarios, UnexpectedSearchHiddenAtShortQueues) {
  // The deliberate overlap: the posting-time search hides under the
  // message transfer for short queues.
  const double u0 = unexpected_ns(NicMode::kBaseline, 0);
  const double u20 = unexpected_ns(NicMode::kBaseline, 20);
  EXPECT_NEAR(u20, u0, 30.0);
}

TEST(Scenarios, UnexpectedBaselineEventuallyGrows) {
  const double u0 = unexpected_ns(NicMode::kBaseline, 0);
  const double u300 = unexpected_ns(NicMode::kBaseline, 300);
  EXPECT_GT(u300, u0 + 2'000.0);
}

TEST(Scenarios, UnexpectedAlpuWinsPastCrossover) {
  const double base = unexpected_ns(NicMode::kBaseline, 200);
  const double alpu = unexpected_ns(NicMode::kAlpu256, 200);
  EXPECT_LT(alpu, base);
}

TEST(Scenarios, UnexpectedAlpuSmallPenaltyAtShortQueues) {
  const double base = unexpected_ns(NicMode::kBaseline, 1);
  const double alpu = unexpected_ns(NicMode::kAlpu128, 1);
  EXPECT_GT(alpu, base);            // a loss...
  EXPECT_LT(alpu - base, 400.0);    // ...of small constant size
}

TEST(Scenarios, PipelinedModelReproducesTransactionLatencies) {
  // System-level cross-check: the stage-level unit behind the same
  // firmware must reproduce the Figure-5 curve.  Latency may differ by
  // at most a few cycles of model detail per ALPU interaction.
  for (std::size_t len : {0ul, 50ul, 150ul}) {
    PrepostedParams txn;
    txn.mode = NicMode::kAlpu128;
    txn.queue_length = len;
    const double t_txn = common::to_ns(run_preposted(txn).latency);

    PrepostedParams pipe = txn;
    auto cfg = make_system_config(NicMode::kAlpu128);
    cfg.nic.alpu_model = nic::AlpuModelKind::kPipelined;
    pipe.system = cfg;
    const LatencyResult r = run_preposted(pipe);
    EXPECT_NEAR(common::to_ns(r.latency), t_txn, 40.0) << "L=" << len;
    if (len < 128) {
      EXPECT_GT(r.alpu_hits, 0u);  // past capacity the hit is software's
    }
  }
}

TEST(Scenarios, PipelinedModelUnexpectedPathAgrees) {
  UnexpectedParams txn;
  txn.mode = NicMode::kAlpu256;
  txn.queue_length = 150;
  const double t_txn = common::to_ns(run_unexpected(txn).latency);

  UnexpectedParams pipe = txn;
  auto cfg = make_system_config(NicMode::kAlpu256);
  cfg.nic.alpu_model = nic::AlpuModelKind::kPipelined;
  pipe.system = cfg;
  EXPECT_NEAR(common::to_ns(run_unexpected(pipe).latency), t_txn, 60.0);
}

TEST(Scenarios, MessageGapGrowsWithQueueInBaselineOnly) {
  auto gap = [](NicMode mode, std::size_t len) {
    MessageRateParams p;
    p.mode = mode;
    p.queue_length = len;
    p.burst = 32;
    return common::to_ns(run_message_rate(p));
  };
  const double base0 = gap(NicMode::kBaseline, 0);
  const double base100 = gap(NicMode::kBaseline, 100);
  EXPECT_GT(base100, base0 + 1'000.0);  // ~14 ns x 100 entries per message
  const double alpu0 = gap(NicMode::kAlpu256, 0);
  const double alpu100 = gap(NicMode::kAlpu256, 100);
  EXPECT_NEAR(alpu100, alpu0, 30.0);  // flat within capacity
}

TEST(Scenarios, Elan4ClassNicIsTenTimesSlowerPerEntry) {
  // Section VI-B's comparison: ~150 ns/entry vs ~15 ns/entry.
  auto slope = [](std::optional<mpi::SystemConfig> system) {
    PrepostedParams p;
    p.mode = NicMode::kBaseline;
    p.system = std::move(system);
    p.queue_length = 0;
    const double l0 = common::to_ns(run_preposted(p).latency);
    p.queue_length = 100;
    const double l100 = common::to_ns(run_preposted(p).latency);
    return (l100 - l0) / 100.0;
  };
  const double elan = slope(make_elan4_like_config());
  const double red_storm = slope(std::nullopt);
  EXPECT_NEAR(elan, 150.0, 15.0);
  EXPECT_NEAR(red_storm, 14.0, 2.0);
  EXPECT_NEAR(elan / red_storm, 10.0, 2.0);
}

TEST(Scenarios, ResultCountersAreConsistent) {
  PrepostedParams p;
  p.mode = NicMode::kAlpu128;
  p.queue_length = 50;
  const LatencyResult r = run_preposted(p);
  EXPECT_GT(r.alpu_hits, 0u);
  EXPECT_GT(r.l1_hit_rate, 0.0);
  EXPECT_LE(r.l1_hit_rate, 1.0);
  EXPECT_GT(r.total_sim_time, r.latency);
}

}  // namespace
}  // namespace alpu::workload
