// Tests for the RTL-level datapath model: hole dynamics, compaction,
// delete-shift, and equivalence with the idealized functional array.
#include <gtest/gtest.h>

#include <optional>

#include "alpu/array.hpp"
#include "alpu/rtl.hpp"
#include "common/rng.hpp"

namespace alpu::hw {
namespace {

using match::Envelope;
using match::make_recv_pattern;
using match::pack;

Cell cell_of(std::uint32_t tag, Cookie cookie) {
  const auto p = make_recv_pattern(0, 1, tag);
  return Cell{p.bits, p.mask, cookie, true};
}

Probe probe_of(std::uint32_t tag) {
  return Probe{pack(Envelope{0, 1, tag}), 0, 0};
}

/// Run idle cycles until the array stops changing (compaction quiesces).
void quiesce(RtlAlpu& rtl) {
  for (std::size_t i = 0; i < 2 * rtl.capacity(); ++i) {
    (void)rtl.step(std::nullopt, std::nullopt);
  }
}

// ---- insert + drift ----------------------------------------------------------

TEST(RtlAlpu, InsertedDataDriftsToTheOldEnd) {
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 16, 8);
  ASSERT_TRUE(rtl.step(cell_of(1, 10), std::nullopt));
  quiesce(rtl);
  EXPECT_EQ(rtl.occupancy(), 1u);
  // The single entry ends at the right-most cell.
  EXPECT_TRUE(rtl.cell(15).valid);
  EXPECT_EQ(rtl.cell(15).cookie, 10u);
  EXPECT_EQ(rtl.holes(), 0u);
}

TEST(RtlAlpu, SustainedInsertRateIsBoundedByBlockBoundaryBubbles) {
  // The datapath accepts an insert whenever compaction has vacated cell
  // 0.  A stream of inserts proceeds at one per cycle within a block,
  // but crossing a block boundary costs a bubble (the registered
  // snapshot sees the next block's first cell still occupied) — the
  // structural reason the unit's sustainable insert rate is below one
  // per cycle, consistent with Section V-D's every-other-cycle figure.
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 16, 8);
  Cookie next = 1;
  std::size_t cycles = 0;
  while (next <= 16) {
    if (rtl.can_insert()) {
      ASSERT_TRUE(rtl.step(cell_of(static_cast<std::uint32_t>(next), next),
                           std::nullopt));
      ++next;
    } else {
      ASSERT_TRUE(rtl.step(std::nullopt, std::nullopt));  // bubble
    }
    ++cycles;
    ASSERT_LT(cycles, 200u);
  }
  EXPECT_EQ(rtl.occupancy(), 16u);
  EXPECT_GT(cycles, 16u);       // some bubbles occurred...
  EXPECT_LE(cycles, 2u * 16u);  // ...but within the 2-cycles/insert budget
  // Full array: cell 0 occupied and immovable — inserts now fail.
  EXPECT_FALSE(rtl.step(cell_of(99, 99), std::nullopt));
  EXPECT_EQ(rtl.occupancy(), 16u);
  quiesce(rtl);
  // Age order intact: cookie 1 the oldest at the top.
  EXPECT_EQ(rtl.cell(15).cookie, 1u);
  EXPECT_EQ(rtl.cell(0).cookie, 16u);
}

TEST(RtlAlpu, SpacedInsertsLeaveHolesThatCompactAway) {
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 32, 8);
  // Insert with generous spacing: each entry drifts right several slots
  // before the next enters, leaving transient holes between them.
  bool saw_holes = false;
  for (Cookie c = 1; c <= 4; ++c) {
    ASSERT_TRUE(rtl.step(cell_of(static_cast<std::uint32_t>(c), c),
                         std::nullopt));
    for (int idle = 0; idle < 5; ++idle) {
      (void)rtl.step(std::nullopt, std::nullopt);
      saw_holes = saw_holes || rtl.holes() > 0;
    }
  }
  EXPECT_TRUE(saw_holes) << "spaced inserts should create transient holes";
  quiesce(rtl);
  EXPECT_EQ(rtl.holes(), 0u) << "compaction must eliminate all holes";
  // Order preserved: oldest (cookie 1) right-most.
  EXPECT_EQ(rtl.cell(31).cookie, 1u);
  EXPECT_EQ(rtl.cell(30).cookie, 2u);
  EXPECT_EQ(rtl.cell(29).cookie, 3u);
  EXPECT_EQ(rtl.cell(28).cookie, 4u);
}

TEST(RtlAlpu, CompactionCrossesBlockBoundaries) {
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 16, 8);
  ASSERT_TRUE(rtl.step(cell_of(1, 1), std::nullopt));
  quiesce(rtl);
  // The entry must have crossed from block 0 into block 1.
  EXPECT_TRUE(rtl.cell(15).valid);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(rtl.cell(i).valid);
}

// ---- matching ------------------------------------------------------------------

TEST(RtlAlpu, OldestMatchWinsAcrossHoles) {
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 32, 8);
  ASSERT_TRUE(rtl.step(cell_of(7, 1), std::nullopt));
  for (int i = 0; i < 6; ++i) (void)rtl.step(std::nullopt, std::nullopt);
  ASSERT_TRUE(rtl.step(cell_of(7, 2), std::nullopt));
  // Probe while a hole separates the two duplicates: the older (further
  // right) one must win.
  const auto m = rtl.match(probe_of(7));
  ASSERT_TRUE(m.hit);
  EXPECT_EQ(m.cookie, 1u);
}

TEST(RtlAlpu, MatchIgnoresInvalidCells) {
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 16, 8);
  ASSERT_TRUE(rtl.step(cell_of(7, 1), std::nullopt));
  quiesce(rtl);
  const auto m = rtl.match(probe_of(7));
  ASSERT_TRUE(m.hit);
  (void)rtl.step(std::nullopt, m.location);
  EXPECT_FALSE(rtl.match(probe_of(7)).hit);  // stale bits never match
}

// ---- deletion (Section III-B: "holes do not occur on deletion") ---------------

TEST(RtlAlpu, DeleteShiftsYoungerCellsUpLeavingNoHole) {
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 16, 8);
  for (Cookie c = 1; c <= 4; ++c) {
    ASSERT_TRUE(rtl.step(cell_of(static_cast<std::uint32_t>(c), c),
                         std::nullopt));
    (void)rtl.step(std::nullopt, std::nullopt);
  }
  quiesce(rtl);
  ASSERT_EQ(rtl.holes(), 0u);
  // Delete the second-oldest (cookie 2).
  const auto m = rtl.match(probe_of(2));
  ASSERT_TRUE(m.hit);
  ASSERT_TRUE(rtl.step(std::nullopt, m.location));
  EXPECT_EQ(rtl.occupancy(), 3u);
  EXPECT_EQ(rtl.holes(), 0u) << "deletion must not create holes";
  // Survivors keep age order: 1 oldest, then 3, then 4.
  EXPECT_EQ(rtl.cell(15).cookie, 1u);
  EXPECT_EQ(rtl.cell(14).cookie, 3u);
  EXPECT_EQ(rtl.cell(13).cookie, 4u);
}

TEST(RtlAlpu, DeleteNeverIncreasesHoleCount) {
  common::Xoshiro256 rng(5);
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, 32, 8);
  Cookie next = 1;
  for (int step = 0; step < 500; ++step) {
    if (rng.chance(0.4) && rtl.can_insert() && rtl.occupancy() < 30) {
      ASSERT_TRUE(rtl.step(cell_of(static_cast<std::uint32_t>(rng.below(6)),
                                   next++),
                           std::nullopt));
    } else if (rng.chance(0.3)) {
      const auto m = rtl.match(
          probe_of(static_cast<std::uint32_t>(rng.below(6))));
      if (m.hit) {
        const std::size_t before = rtl.holes();
        ASSERT_TRUE(rtl.step(std::nullopt, m.location));
        EXPECT_LE(rtl.holes(), before);
      } else {
        (void)rtl.step(std::nullopt, std::nullopt);
      }
    } else {
      (void)rtl.step(std::nullopt, std::nullopt);
    }
  }
}

// ---- equivalence with the idealized functional array ---------------------------

class RtlEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(RtlEquivalence, AgreesWithFunctionalArrayAtQuiescence) {
  const auto [cells, block, seed] = GetParam();
  common::Xoshiro256 rng(seed);
  RtlAlpu rtl(AlpuFlavor::kPostedReceive, cells, block);
  AlpuArray ideal(AlpuFlavor::kPostedReceive, cells, block);

  for (int round = 0; round < 120; ++round) {
    if (rng.chance(0.6) && !ideal.full()) {
      // Insert into both, spacing RTL inserts with idle cycles.
      const auto tag = static_cast<std::uint32_t>(rng.below(5));
      const Cookie c = static_cast<Cookie>(round + 1);
      const auto p = make_recv_pattern(0, 1, tag);
      ASSERT_TRUE(ideal.insert(p.bits, p.mask, c));
      while (!rtl.can_insert()) {
        ASSERT_TRUE(rtl.step(std::nullopt, std::nullopt));
      }
      ASSERT_TRUE(rtl.step(Cell{p.bits, p.mask, c, true}, std::nullopt));
      if (rng.chance(0.5)) {
        const auto idles = rng.below(4);
        for (std::uint64_t i = 0; i < idles; ++i) {
          ASSERT_TRUE(rtl.step(std::nullopt, std::nullopt));
        }
      }
    } else {
      // Probe both (RTL probes are valid in any state: priority is by
      // position, and age order is preserved under movement).
      const Probe p = probe_of(static_cast<std::uint32_t>(rng.below(5)));
      const ArrayMatch a = ideal.match_and_delete(p);
      const ArrayMatch b = rtl.match(p);
      ASSERT_EQ(a.hit, b.hit) << "round " << round;
      if (a.hit) {
        ASSERT_EQ(a.cookie, b.cookie) << "round " << round;
        ASSERT_TRUE(rtl.step(std::nullopt, b.location));
      } else {
        ASSERT_TRUE(rtl.step(std::nullopt, std::nullopt));
      }
    }
    ASSERT_EQ(rtl.occupancy(), ideal.occupancy());
  }
  quiesce(rtl);
  EXPECT_EQ(rtl.holes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RtlEquivalence,
    ::testing::Values(std::make_tuple(16, 8, 1), std::make_tuple(32, 8, 2),
                      std::make_tuple(32, 16, 3),
                      std::make_tuple(64, 16, 4),
                      std::make_tuple(64, 32, 5),
                      std::make_tuple(128, 16, 6)));

}  // namespace
}  // namespace alpu::hw
