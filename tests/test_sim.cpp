// Unit tests for the DES kernel: engine, clock, coroutine processes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/watchdog.hpp"

namespace alpu::sim {
namespace {

using common::TimePs;

// ---- Engine ----------------------------------------------------------------

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 30u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  TimePs seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_in(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_at(10, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine e;
  e.cancel(999);
  bool ran = false;
  e.schedule_at(1, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, CancelAfterFireIsNoop) {
  // Regression: cancelling an id that already fired used to insert it
  // into a lazy-cancel set that was never drained, so idle() stayed
  // false forever and the set grew without bound.  With the slot pool
  // the stale id no longer matches any live slot and the cancel is a
  // pure no-op.
  Engine e;
  int ran = 0;
  const EventId id = e.schedule_at(10, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(e.idle());
  e.cancel(id);  // stale: event already executed
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.pending_events(), 0u);
  // The engine keeps working normally afterwards.
  e.schedule_at(20, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, StaleIdAfterSlotReuseIsNoop) {
  // A stale id whose slot has been recycled by a newer event must not
  // cancel that newer event (the sequence half of the packed id
  // protects against ABA).
  Engine e;
  bool first = false;
  const EventId id = e.schedule_at(1, [&] { first = true; });
  e.run();
  EXPECT_TRUE(first);
  bool second = false;
  e.schedule_at(2, [&] { second = true; });  // reuses the freed slot
  e.cancel(id);                              // stale id, recycled slot
  e.run();
  EXPECT_TRUE(second);
}

TEST(Engine, DoubleCancelIsNoop) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_at(10, [&] { ran = true; });
  bool other = false;
  e.schedule_at(11, [&] { other = true; });
  e.cancel(id);
  e.cancel(id);  // second cancel must not free the slot twice
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(other);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, PendingEventsCountsLiveOnly) {
  Engine e;
  const EventId a = e.schedule_at(10, [] {});
  e.schedule_at(20, [] {});
  e.schedule_at(30, [] {});
  EXPECT_EQ(e.pending_events(), 3u);
  e.cancel(a);
  EXPECT_EQ(e.pending_events(), 2u);  // cancelled leaves no residue
  e.run();
  EXPECT_EQ(e.pending_events(), 0u);
  EXPECT_EQ(e.events_executed(), 2u);  // cancelled events never execute
}

TEST(Engine, CancelledEventsDoNotExecute) {
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(e.schedule_at(static_cast<TimePs>(i), [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 2) e.cancel(ids[i]);
  e.run();
  EXPECT_EQ(e.events_executed(), 50u);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, FifoOrderSurvivesCancelChurn) {
  // Cancelling interleaved same-time events must not disturb the FIFO
  // order of the survivors (determinism contract).
  Engine e;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(e.schedule_at(5, [&order, i] { order.push_back(i); }));
  }
  for (size_t i = 0; i < ids.size(); i += 3) e.cancel(ids[i]);
  e.run();
  std::vector<int> expect;
  for (int i = 0; i < 20; ++i) {
    if (i % 3 != 0) expect.push_back(i);
  }
  EXPECT_EQ(order, expect);
}

TEST(Engine, LargeCaptureCallbacksWork) {
  // Captures beyond the inline buffer take the heap fallback; both
  // paths must run and destroy correctly.
  Engine e;
  struct Big {
    std::uint64_t vals[16] = {};
  };
  Big big;
  big.vals[15] = 42;
  std::uint64_t seen = 0;
  e.schedule_at(1, [big, &seen] { seen = big.vals[15]; });
  e.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<TimePs> fired;
  e.schedule_at(10, [&] { fired.push_back(10); });
  e.schedule_at(20, [&] { fired.push_back(20); });
  e.schedule_at(30, [&] { fired.push_back(30); });
  e.run_until(20);
  EXPECT_EQ(fired, (std::vector<TimePs>{10, 20}));  // deadline inclusive
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, StopReturnsEarly) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(2, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
  e.run();  // resumes where it left off
  EXPECT_EQ(count, 2);
}

TEST(Engine, EventsExecutedCounts) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_in(1, chain);
  };
  e.schedule_at(0, chain);
  EXPECT_EQ(e.run(), 99u);
  EXPECT_EQ(depth, 100);
}

// ---- Component lifecycle ---------------------------------------------------

class Probe : public Component {
 public:
  Probe(Engine& e, int* inits, int* finishes)
      : Component(e, "probe"), inits_(inits), finishes_(finishes) {}
  void init() override { ++*inits_; }
  void finish() override { ++*finishes_; }

 private:
  int* inits_;
  int* finishes_;
};

TEST(Component, InitAndFinishCalledOnce) {
  Engine e;
  int inits = 0, finishes = 0;
  Probe p(e, &inits, &finishes);
  e.schedule_at(1, [] {});
  e.run();
  EXPECT_EQ(inits, 1);
  EXPECT_EQ(finishes, 1);
}

// ---- Clock -----------------------------------------------------------------

TEST(Clock, TicksOnEdgesUntilIdle) {
  Engine e;
  std::vector<TimePs> ticks;
  int remaining = 3;
  Clock clk(e, common::ClockPeriod{2'000}, [&] {
    ticks.push_back(e.now());
    return --remaining > 0;
  });
  e.schedule_at(500, [&] { clk.wake(); });
  e.run();
  // Woken at 500 -> first edge at 2000, then 4000, 6000.
  EXPECT_EQ(ticks, (std::vector<TimePs>{2'000, 4'000, 6'000}));
  EXPECT_FALSE(clk.running());
  EXPECT_EQ(clk.cycles(), 3u);
}

TEST(Clock, WakeWhileRunningIsIdempotent) {
  Engine e;
  int ticks = 0;
  Clock clk(e, common::ClockPeriod{1'000}, [&] { return ++ticks < 2; });
  clk.wake();
  clk.wake();  // must not double-schedule
  e.run();
  EXPECT_EQ(ticks, 2);
}

TEST(Clock, ReWakeAfterSleep) {
  Engine e;
  int ticks = 0;
  Clock clk(e, common::ClockPeriod{1'000}, [&] {
    ++ticks;
    return false;  // sleep immediately
  });
  clk.wake();
  e.schedule_at(10'000, [&] { clk.wake(); });
  e.run();
  EXPECT_EQ(ticks, 2);
}

// ---- Processes -------------------------------------------------------------

Process simple_delays(Engine& e, std::vector<TimePs>& log) {
  log.push_back(e.now());
  co_await delay(e, 100);
  log.push_back(e.now());
  co_await delay(e, 50);
  log.push_back(e.now());
}

TEST(Process, DelaysAdvanceTime) {
  Engine e;
  ProcessPool pool(e);
  std::vector<TimePs> log;
  pool.spawn(simple_delays(e, log));
  e.run();
  EXPECT_TRUE(pool.all_done());
  EXPECT_EQ(log, (std::vector<TimePs>{0, 100, 150}));
}

Process child(Engine& e, int& state) {
  state = 1;
  co_await delay(e, 10);
  state = 2;
}

Process parent(Engine& e, int& state, int& after) {
  co_await child(e, state);
  after = state;  // child fully completed before we resume
  co_await delay(e, 1);
}

TEST(Process, NestedAwaitRunsChildToCompletion) {
  Engine e;
  ProcessPool pool(e);
  int state = 0, after = -1;
  pool.spawn(parent(e, state, after));
  e.run();
  EXPECT_TRUE(pool.all_done());
  EXPECT_EQ(state, 2);
  EXPECT_EQ(after, 2);
}

Process waiter(Engine& e, Trigger& t, int& wakes) {
  co_await t.wait(e);
  ++wakes;
  co_await t.wait(e);
  ++wakes;
}

TEST(Trigger, FireWakesAllCurrentWaitersOnly) {
  Engine e;
  ProcessPool pool(e);
  Trigger t;
  int wakes = 0;
  pool.spawn(waiter(e, t, wakes));
  e.schedule_at(10, [&] { t.fire(); });
  e.run();
  // Only the first wait was satisfied; the re-wait needs a second fire.
  EXPECT_EQ(wakes, 1);
  EXPECT_FALSE(pool.all_done());
  t.fire();
  e.run();
  EXPECT_EQ(wakes, 2);
  EXPECT_TRUE(pool.all_done());
}

TEST(Trigger, MultipleWaitersAllWake) {
  Engine e;
  ProcessPool pool(e);
  Trigger t;
  int wakes = 0;
  auto one_shot = [](Engine& eng, Trigger& trig, int& w) -> Process {
    co_await trig.wait(eng);
    ++w;
  };
  pool.spawn(one_shot(e, t, wakes));
  pool.spawn(one_shot(e, t, wakes));
  pool.spawn(one_shot(e, t, wakes));
  e.schedule_at(5, [&] { t.fire(); });
  e.run();
  EXPECT_EQ(wakes, 3);
  EXPECT_TRUE(pool.all_done());
}

TEST(ProcessPool, TracksPerProcessCompletion) {
  Engine e;
  ProcessPool pool(e);
  auto quick = [](Engine& eng) -> Process { co_await delay(eng, 1); };
  auto slow = [](Engine& eng) -> Process { co_await delay(eng, 100); };
  const std::size_t a = pool.spawn(quick(e));
  const std::size_t b = pool.spawn(slow(e));
  e.run_until(10);
  EXPECT_TRUE(pool.done(a));
  EXPECT_FALSE(pool.done(b));
  e.run();
  EXPECT_TRUE(pool.done(b));
  EXPECT_TRUE(pool.all_done());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ProcessPool, DestroyingSuspendedProcessesIsSafe) {
  Engine e;
  {
    ProcessPool pool(e);
    auto forever = [](Engine& eng) -> Process {
      Trigger never;
      co_await never.wait(eng);
    };
    pool.spawn(forever(e));
    e.run();
    EXPECT_FALSE(pool.all_done());
  }  // pool destroys the still-suspended coroutine here
  SUCCEED();
}

TEST(Process, ZeroDelayYieldsThroughQueue) {
  Engine e;
  ProcessPool pool(e);
  std::vector<int> order;
  auto proc = [](Engine& eng, std::vector<int>& log) -> Process {
    log.push_back(1);
    co_await delay(eng, 0);
    log.push_back(3);
  };
  pool.spawn(proc(e, order));
  e.schedule_at(0, [&] { order.push_back(2); });
  e.run();
  // The spawn kick-off was enqueued first, so the process starts first;
  // its zero-delay then yields behind the already-queued event before
  // the continuation runs — a zero delay is not a no-op.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---- parameterized clock properties -----------------------------------------

class ClockPeriods : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockPeriods, EdgesAlignToMultiplesOfThePeriod) {
  const common::TimePs period = GetParam();
  Engine e;
  std::vector<TimePs> ticks;
  Clock clk(e, common::ClockPeriod{period}, [&] {
    ticks.push_back(e.now());
    return ticks.size() < 5;
  });
  // Wake at an off-edge instant.
  e.schedule_at(period / 2 + 1, [&] { clk.wake(); });
  e.run();
  ASSERT_EQ(ticks.size(), 5u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i] % period, 0u) << "tick " << i << " off-edge";
    if (i > 0) {
      EXPECT_EQ(ticks[i] - ticks[i - 1], period);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, ClockPeriods,
                         ::testing::Values(500,      // 2 GHz host
                                           2'000,    // 500 MHz NIC/ASIC
                                           8'929,    // ~112 MHz FPGA
                                           10'000)); // 100 MHz

// ---- determinism -------------------------------------------------------------

TEST(Engine, IdenticalProgramsProduceIdenticalSchedules) {
  // The reproducibility guarantee every experiment relies on: two
  // engines fed the same (randomized) event program execute the same
  // number of events and end at the same time.
  auto run_once = [](std::uint64_t seed) {
    common::Xoshiro256 rng(seed);
    Engine e;
    std::uint64_t checksum = 0;
    std::function<void(int)> cascade = [&](int depth) {
      checksum = checksum * 31 + e.now();
      if (depth < 3) {
        const auto fan = 1 + rng.below(3);
        for (std::uint64_t i = 0; i < fan; ++i) {
          e.schedule_in(rng.below(1'000), [&cascade, depth] {
            cascade(depth + 1);
          });
        }
      }
    };
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(rng.below(10'000), [&cascade] { cascade(0); });
    }
    e.run();
    return std::make_pair(e.events_executed(), checksum);
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

// ---- Stall watchdog --------------------------------------------------------

TEST(StallWatchdogTest, CleanDrainReportsNothing) {
  Engine e;
  StallWatchdog dog;
  bool work_pending = true;
  std::size_t snapshots = 0;
  dog.add_check({"nic0", [&] { return work_pending; },
                 [&] { ++snapshots; return std::string("nic0: idle"); }});
  dog.set_sink([](const std::string&) {});
  e.set_watchdog(&dog);
  e.schedule_at(100, [&] { work_pending = false; });  // work drains in-run
  e.run();
  EXPECT_EQ(dog.stalls_detected(), 0u);
  EXPECT_EQ(snapshots, 0u);  // no stall, no dump
}

TEST(StallWatchdogTest, QuiescenceWithUndrainedWorkDumpsEverySnapshot) {
  Engine e;
  StallWatchdog dog;
  std::vector<std::string> dumped;
  dog.add_check({"nic0", [] { return true; },  // wedged forever
                 [] { return std::string("nic0: rnr_paused=1"); }});
  dog.add_check({"nic1", [] { return false; },  // this one is clean
                 [] { return std::string("nic1: idle"); }});
  dog.set_sink([&](const std::string& line) { dumped.push_back(line); });
  e.set_watchdog(&dog);
  e.schedule_at(100, [] {});
  e.run();
  EXPECT_EQ(dog.stalls_detected(), 1u);
  // The dump names the stalled check and includes every registered
  // snapshot — the clean NIC's state is context for triage.
  bool saw_stalled = false;
  bool saw_clean = false;
  for (const std::string& line : dumped) {
    if (line.find("rnr_paused=1") != std::string::npos) saw_stalled = true;
    if (line.find("nic1") != std::string::npos) saw_clean = true;
  }
  EXPECT_TRUE(saw_stalled);
  EXPECT_TRUE(saw_clean);
}

TEST(StallWatchdogTest, ObservationOnlyNeverPerturbsTheRun) {
  // Identical schedules with and without a (stalling) watchdog must
  // execute identical event counts at identical times: the watchdog
  // fires no events and mutates nothing.
  auto run_once = [](bool with_dog) {
    Engine e;
    StallWatchdog dog;
    dog.add_check({"x", [] { return true; }, [] { return std::string("x"); }});
    dog.set_sink([](const std::string&) {});
    if (with_dog) e.set_watchdog(&dog);
    common::TimePs end = 0;
    e.schedule_at(10, [] {});
    e.schedule_at(250, [] {});
    end = e.run();
    return std::make_pair(end, e.events_executed());
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

}  // namespace
}  // namespace alpu::sim
