// Cycle-level tests of the ALPU component: Figure 3 state machine,
// Table I/II protocol, Section V-D pipeline timing, insert-mode safety.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "alpu/alpu.hpp"
#include "sim/engine.hpp"

namespace alpu::hw {
namespace {

using common::TimePs;
using match::Envelope;
using match::make_recv_pattern;
using match::pack;

constexpr TimePs kCycle = 2'000;  // 500 MHz

class AlpuUnitTest : public ::testing::Test {
 protected:
  void make(std::size_t cells = 16, std::size_t block = 8,
            std::size_t result_depth = 64) {
    AlpuConfig cfg;
    cfg.flavor = AlpuFlavor::kPostedReceive;
    cfg.total_cells = cells;
    cfg.block_size = block;
    cfg.clock = common::ClockPeriod{kCycle};
    cfg.match_latency_cycles = 7;
    cfg.insert_interval_cycles = 2;
    cfg.header_fifo_depth = 8;
    cfg.command_fifo_depth = 32;
    cfg.result_fifo_depth = result_depth;
    unit = std::make_unique<Alpu>(engine, "dut", cfg);
  }

  /// Run the simulation forward until a result is available (or fail).
  Response next_result(TimePs budget = 1'000'000) {
    const TimePs deadline = engine.now() + budget;
    while (!unit->result_available() && engine.now() < deadline) {
      engine.run_until(engine.now() + kCycle);
    }
    EXPECT_TRUE(unit->result_available()) << "no result within budget";
    return *unit->pop_result();
  }

  /// Drive a full insert session for `entries` (returns granted count).
  std::uint32_t insert_all(
      const std::vector<std::pair<match::Pattern, Cookie>>& entries) {
    EXPECT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
    const Response ack = next_result();
    EXPECT_EQ(ack.kind, ResponseKind::kStartAck);
    for (const auto& [p, c] : entries) {
      EXPECT_TRUE(unit->push_command({CommandKind::kInsert, p.bits, p.mask, c}));
    }
    EXPECT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
    engine.run_until(engine.now() + kCycle * (4 + 2 * entries.size() + 8));
    return ack.free_slots;
  }

  Probe probe_of(std::uint32_t ctx, std::uint32_t src, std::uint32_t tag,
                 std::uint64_t seq = 0) {
    return Probe{pack(Envelope{ctx, src, tag}), 0, seq};
  }

  sim::Engine engine;
  std::unique_ptr<Alpu> unit;
};

// ---- protocol basics -------------------------------------------------------

TEST_F(AlpuUnitTest, StartInsertYieldsAckWithFreeCount) {
  make(16, 8);
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kStartAck);
  EXPECT_EQ(r.free_slots, 16u);
  EXPECT_TRUE(unit->in_insert_mode());
}

TEST_F(AlpuUnitTest, AckReportsRemainingSpace) {
  make(16, 8);
  const auto p = make_recv_pattern(0, 1, 1);
  insert_all({{p, 1}, {p, 2}, {p, 3}});
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kStartAck);
  EXPECT_EQ(r.free_slots, 13u);
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 10 * kCycle);
}

TEST_F(AlpuUnitTest, MatchSuccessReturnsTagAndDeletes) {
  make();
  insert_all({{make_recv_pattern(0, 1, 7), 77}});
  EXPECT_EQ(unit->array().occupancy(), 1u);
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 7, 5)));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchSuccess);
  EXPECT_EQ(r.cookie, 77u);
  EXPECT_EQ(r.probe_seq, 5u);
  EXPECT_EQ(unit->array().occupancy(), 0u);  // MPI consume-on-match
}

TEST_F(AlpuUnitTest, MatchFailureOnEmptyArray) {
  make();
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 7, 3)));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchFailure);
  EXPECT_EQ(r.probe_seq, 3u);
}

TEST_F(AlpuUnitTest, ResetClearsEntries) {
  make();
  insert_all({{make_recv_pattern(0, 1, 7), 1}});
  ASSERT_TRUE(unit->push_command({CommandKind::kReset, 0, 0, 0}));
  engine.run_until(engine.now() + 8 * kCycle);
  EXPECT_EQ(unit->array().occupancy(), 0u);
  EXPECT_EQ(unit->stats().resets, 1u);
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 7)));
  EXPECT_EQ(next_result().kind, ResponseKind::kMatchFailure);
}

TEST_F(AlpuUnitTest, InsertWithoutStartInsertIsDiscarded) {
  make();
  const auto p = make_recv_pattern(0, 1, 7);
  // Section III-C: in Read Command state only RESET and START INSERT are
  // valid; a bare INSERT is discarded.
  ASSERT_TRUE(unit->push_command({CommandKind::kInsert, p.bits, p.mask, 9}));
  engine.run_until(engine.now() + 10 * kCycle);
  EXPECT_EQ(unit->array().occupancy(), 0u);
  EXPECT_EQ(unit->stats().commands_discarded, 1u);
  // The unit returns to matching.
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 7)));
  EXPECT_EQ(next_result().kind, ResponseKind::kMatchFailure);
}

TEST_F(AlpuUnitTest, StopInsertWithoutStartIsDiscarded) {
  make();
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 10 * kCycle);
  EXPECT_EQ(unit->stats().commands_discarded, 1u);
  EXPECT_FALSE(unit->in_insert_mode());
}

TEST_F(AlpuUnitTest, RedundantStartInsertReAcks) {
  make();
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  EXPECT_TRUE(unit->in_insert_mode());
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 10 * kCycle);
  EXPECT_FALSE(unit->in_insert_mode());
}

TEST_F(AlpuUnitTest, InsertingPastCapacityDropsAndCounts) {
  make(16, 8);
  std::vector<std::pair<match::Pattern, Cookie>> too_many;
  for (Cookie c = 0; c < 20; ++c) {
    too_many.emplace_back(make_recv_pattern(0, 1, c % 8), c);
  }
  insert_all(too_many);
  EXPECT_EQ(unit->array().occupancy(), 16u);
  EXPECT_EQ(unit->stats().inserts, 16u);
  EXPECT_EQ(unit->stats().inserts_dropped, 4u);
}

TEST_F(AlpuUnitTest, ResetMatchingSweepsSelectedEntriesOnly) {
  make(16, 8);
  insert_all({{make_recv_pattern(0, 1, 1), 1},
              {make_recv_pattern(0, 2, 1), 2},
              {make_recv_pattern(0, 1, 2), 3}});
  // Flush everything whose source field is 1 (mask off all other bits).
  hw::Command flush;
  flush.kind = CommandKind::kResetMatching;
  flush.bits = pack(Envelope{0, 1, 0});
  flush.mask = ~match::kSourceMask;
  ASSERT_TRUE(unit->push_command(flush));
  engine.run_until(engine.now() + 16 * kCycle);
  EXPECT_EQ(unit->array().occupancy(), 1u);
  EXPECT_EQ(unit->stats().flushes, 1u);
  EXPECT_EQ(unit->stats().flushed_entries, 2u);
  // The survivor still matches.
  ASSERT_TRUE(unit->push_probe(probe_of(0, 2, 1)));
  EXPECT_EQ(next_result().cookie, 2u);
}

TEST_F(AlpuUnitTest, ResetMatchingDiscardedInInsertMode) {
  make(16, 8);
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  ASSERT_TRUE(unit->push_command({CommandKind::kResetMatching, 0, ~0ull, 0}));
  engine.run_until(engine.now() + 16 * kCycle);
  EXPECT_EQ(unit->stats().commands_discarded, 1u);
  EXPECT_EQ(unit->stats().flushes, 0u);
  EXPECT_TRUE(unit->in_insert_mode());
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 8 * kCycle);
}

// ---- pipeline timing (Section V-D) -----------------------------------------

TEST_F(AlpuUnitTest, MatchTakesSevenCycles) {
  make();
  // Probe pushed at time 0; the unit accepts it on the first edge and
  // the result appears exactly match_latency_cycles later.
  ASSERT_TRUE(unit->push_probe(probe_of(0, 0, 0)));
  const Response r = next_result();
  EXPECT_EQ(r.issued_at, 7 * kCycle);
}

TEST_F(AlpuUnitTest, BackToBackMatchesHaveNoOverlap) {
  make();
  ASSERT_TRUE(unit->push_probe(probe_of(0, 0, 0, 1)));
  ASSERT_TRUE(unit->push_probe(probe_of(0, 0, 1, 2)));
  const Response r1 = next_result();
  const Response r2 = next_result();
  EXPECT_EQ(r1.probe_seq, 1u);
  EXPECT_EQ(r2.probe_seq, 2u);
  // No execution overlap: the second result is a full pipeline after
  // the first (plus the idle edge between ops in this model).
  EXPECT_GE(r2.issued_at - r1.issued_at, 7 * kCycle);
  EXPECT_LE(r2.issued_at - r1.issued_at, 8 * kCycle);
}

TEST_F(AlpuUnitTest, InsertsProceedEveryOtherCycle) {
  make(16, 8);
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  (void)next_result();  // ack
  const auto p = make_recv_pattern(0, 1, 1);
  const TimePs t0 = engine.now();
  for (Cookie c = 0; c < 8; ++c) {
    ASSERT_TRUE(unit->push_command({CommandKind::kInsert, p.bits, p.mask, c}));
  }
  // 8 inserts at one per 2 cycles.
  engine.run_until(t0 + (8 * 2 + 2) * kCycle);
  EXPECT_EQ(unit->array().occupancy(), 8u);
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 4 * kCycle);
}

// ---- insert-mode safety (the paper's race-avoidance protocol) --------------

TEST_F(AlpuUnitTest, NoFailureBetweenAckAndStop) {
  make();
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  // A probe that matches nothing arrives mid-insert-mode: its failure
  // must be HELD, not reported (Section IV-A: "MATCH FAILURE cannot
  // occur between a START ACKNOWLEDGE and a STOP INSERT").
  ASSERT_TRUE(unit->push_probe(probe_of(0, 9, 9, 42)));
  engine.run_until(engine.now() + 40 * kCycle);
  EXPECT_FALSE(unit->result_available());
  // STOP releases the held probe; only now may the failure surface.
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchFailure);
  EXPECT_EQ(r.probe_seq, 42u);
  EXPECT_EQ(unit->stats().held_retries, 1u);
}

TEST_F(AlpuUnitTest, HeldProbeMatchesEntryInsertedLater) {
  make();
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  // The probe fails against the current (empty) array and is held...
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 7, 1)));
  engine.run_until(engine.now() + 20 * kCycle);
  EXPECT_FALSE(unit->result_available());
  // ...then an insert provides the match; the retry must succeed, and
  // succeed DURING insert mode (successes are never held).
  const auto p = make_recv_pattern(0, 1, 7);
  ASSERT_TRUE(unit->push_command({CommandKind::kInsert, p.bits, p.mask, 5}));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchSuccess);
  EXPECT_EQ(r.cookie, 5u);
  EXPECT_TRUE(unit->in_insert_mode());
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 4 * kCycle);
}

TEST_F(AlpuUnitTest, SuccessesFlowDuringInsertMode) {
  make();
  insert_all({{make_recv_pattern(0, 1, 1), 1}});
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 1, 9)));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchSuccess);
  EXPECT_TRUE(unit->in_insert_mode());
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 4 * kCycle);
}

TEST_F(AlpuUnitTest, HeldProbeBlocksYoungerProbes) {
  make();
  insert_all({{make_recv_pattern(0, 2, 2), 22}});
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  // First probe fails and is held; a second, matchable probe queues
  // behind it.  Results must come back in probe order after STOP.
  ASSERT_TRUE(unit->push_probe(probe_of(0, 9, 9, 1)));
  ASSERT_TRUE(unit->push_probe(probe_of(0, 2, 2, 2)));
  engine.run_until(engine.now() + 40 * kCycle);
  EXPECT_FALSE(unit->result_available());
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  const Response r1 = next_result();
  const Response r2 = next_result();
  EXPECT_EQ(r1.probe_seq, 1u);
  EXPECT_EQ(r1.kind, ResponseKind::kMatchFailure);
  EXPECT_EQ(r2.probe_seq, 2u);
  EXPECT_EQ(r2.kind, ResponseKind::kMatchSuccess);
  EXPECT_EQ(r2.cookie, 22u);
}

// ---- flow control ----------------------------------------------------------

TEST_F(AlpuUnitTest, HeaderFifoAppliesBackPressure) {
  make(16, 8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(unit->push_probe(probe_of(0, 0, 0, i)));
  }
  EXPECT_FALSE(unit->push_probe(probe_of(0, 0, 0, 99)));  // depth 8
  // Draining results frees header slots as matches complete.
  (void)next_result();
  EXPECT_TRUE(unit->push_probe(probe_of(0, 0, 0, 8)));
}

TEST_F(AlpuUnitTest, FullResultFifoStallsMatching) {
  make(16, 8, /*result_depth=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(unit->push_probe(probe_of(0, 0, 0, i)));
  }
  engine.run_until(engine.now() + 100 * kCycle);
  // Only two results fit; the third match must not have started (its
  // result would have nowhere to go).
  EXPECT_EQ(unit->stats().probes_accepted, 2u);
  // Draining restarts the pipeline.
  (void)unit->pop_result();
  (void)unit->pop_result();
  engine.run_until(engine.now() + 100 * kCycle);
  EXPECT_EQ(unit->stats().probes_accepted, 4u);
}

TEST_F(AlpuUnitTest, ResultsAreInProbeOrder) {
  make();
  insert_all({{make_recv_pattern(0, 1, 1), 1},
              {make_recv_pattern(0, 1, 2), 2},
              {make_recv_pattern(0, 1, 3), 3}});
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 2, 10)));
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 9, 11)));  // miss
  ASSERT_TRUE(unit->push_probe(probe_of(0, 1, 1, 12)));
  const Response a = next_result();
  const Response b = next_result();
  const Response c = next_result();
  EXPECT_EQ(a.probe_seq, 10u);
  EXPECT_EQ(a.cookie, 2u);
  EXPECT_EQ(b.probe_seq, 11u);
  EXPECT_EQ(b.kind, ResponseKind::kMatchFailure);
  EXPECT_EQ(c.probe_seq, 12u);
  EXPECT_EQ(c.cookie, 1u);
}

TEST_F(AlpuUnitTest, SleepsWhenIdle) {
  make();
  ASSERT_TRUE(unit->push_probe(probe_of(0, 0, 0)));
  (void)next_result();
  const std::uint64_t events_before = engine.events_executed();
  engine.run_until(engine.now() + 1'000 * kCycle);
  // An idle ALPU must not burn simulation events every cycle.
  EXPECT_LE(engine.events_executed() - events_before, 3u);
}

}  // namespace
}  // namespace alpu::hw
