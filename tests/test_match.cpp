// Unit tests for MPI matching semantics: packing, patterns, lists.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "match/list.hpp"
#include "match/match.hpp"

namespace alpu::match {
namespace {

// ---- packing ---------------------------------------------------------------

TEST(Pack, RoundTripsAllFields) {
  const Envelope e{5, 123, 999};
  EXPECT_EQ(unpack(pack(e)), e);
}

TEST(Pack, ExtremesRoundTrip) {
  const Envelope lo{0, 0, 0};
  const Envelope hi{kMaxContext, kMaxSource, kMaxTag};
  EXPECT_EQ(unpack(pack(lo)), lo);
  EXPECT_EQ(unpack(pack(hi)), hi);
}

TEST(Pack, FieldsDoNotOverlap) {
  // Changing one field must not disturb the others.
  const MatchWord base = pack(Envelope{1, 1, 1});
  const MatchWord ctx = pack(Envelope{2, 1, 1});
  const MatchWord src = pack(Envelope{1, 2, 1});
  const MatchWord tag = pack(Envelope{1, 1, 2});
  EXPECT_EQ((base ^ ctx) & (base ^ src), 0u);
  EXPECT_EQ((base ^ ctx) & (base ^ tag), 0u);
  EXPECT_EQ((base ^ src) & (base ^ tag), 0u);
}

TEST(Pack, UsesExactly42Bits) {
  const MatchWord all = pack(Envelope{kMaxContext, kMaxSource, kMaxTag});
  EXPECT_EQ(all, kFullMask);
  EXPECT_LT(all, MatchWord{1} << 42);
  EXPECT_EQ(all >> 41, 1u);  // bit 41 used
}

// ---- patterns --------------------------------------------------------------

TEST(Pattern, ExactMatchesOnlyItself) {
  const Pattern p = exact_pattern(Envelope{1, 2, 3});
  EXPECT_TRUE(p.matches(pack(Envelope{1, 2, 3})));
  EXPECT_FALSE(p.matches(pack(Envelope{1, 2, 4})));
  EXPECT_FALSE(p.matches(pack(Envelope{1, 3, 3})));
  EXPECT_FALSE(p.matches(pack(Envelope{2, 2, 3})));
  EXPECT_TRUE(p.is_exact());
}

TEST(Pattern, WildcardSource) {
  const Pattern p = make_recv_pattern(1, std::nullopt, 3);
  EXPECT_TRUE(p.matches(pack(Envelope{1, 0, 3})));
  EXPECT_TRUE(p.matches(pack(Envelope{1, kMaxSource, 3})));
  EXPECT_FALSE(p.matches(pack(Envelope{1, 5, 4})));
  EXPECT_FALSE(p.matches(pack(Envelope{2, 5, 3})));
  EXPECT_FALSE(p.is_exact());
}

TEST(Pattern, WildcardTag) {
  const Pattern p = make_recv_pattern(1, 2, std::nullopt);
  EXPECT_TRUE(p.matches(pack(Envelope{1, 2, 0})));
  EXPECT_TRUE(p.matches(pack(Envelope{1, 2, kMaxTag})));
  EXPECT_FALSE(p.matches(pack(Envelope{1, 3, 7})));
}

TEST(Pattern, WildcardBoth) {
  const Pattern p = make_recv_pattern(4, std::nullopt, std::nullopt);
  EXPECT_TRUE(p.matches(pack(Envelope{4, 11, 22})));
  EXPECT_FALSE(p.matches(pack(Envelope{5, 11, 22})));  // context is never wild
}

TEST(Pattern, ToStringShowsWildcards) {
  EXPECT_EQ(to_string(make_recv_pattern(2, std::nullopt, 7)),
            "ctx=2 src=* tag=7");
  EXPECT_EQ(to_string(make_recv_pattern(2, 3, std::nullopt)),
            "ctx=2 src=3 tag=*");
  EXPECT_EQ(to_string(Envelope{1, 2, 3}), "ctx=1 src=2 tag=3");
}

// ---- PostedList ------------------------------------------------------------

PostedEntry posted(std::uint32_t ctx, std::optional<std::uint32_t> src,
                   std::optional<std::uint32_t> tag, Cookie c) {
  return PostedEntry{make_recv_pattern(ctx, src, tag), c, 0};
}

TEST(PostedList, FirstMatchWinsInListOrder) {
  PostedList list;
  list.append(posted(0, std::nullopt, 7, 1));  // wildcard source, tag 7
  list.append(posted(0, 3, 7, 2));             // exact — also matches
  const auto r = list.search(pack(Envelope{0, 3, 7}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 1u);  // the OLDER entry wins even though 2 is exact
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.visited, 1u);
}

TEST(PostedList, VisitedCountsIncludeTheHit) {
  PostedList list;
  for (Cookie c = 1; c <= 5; ++c) list.append(posted(0, 1, c, c));
  const auto r = list.search(pack(Envelope{0, 1, 4}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.index, 3u);
  EXPECT_EQ(r.visited, 4u);
}

TEST(PostedList, MissVisitsEverything) {
  PostedList list;
  for (Cookie c = 1; c <= 5; ++c) list.append(posted(0, 1, c, c));
  const auto r = list.search(pack(Envelope{0, 1, 99}));
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.visited, 5u);
}

TEST(PostedList, SearchFromSkipsPrefix) {
  PostedList list;
  list.append(posted(0, 1, 7, 1));
  list.append(posted(0, 1, 7, 2));  // duplicate pattern, later entry
  const auto r = list.search_from(1, pack(Envelope{0, 1, 7}));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 2u);
  EXPECT_EQ(r.visited, 1u);
}

TEST(PostedList, EraseShiftsOrder) {
  PostedList list;
  for (Cookie c = 1; c <= 3; ++c) list.append(posted(0, 1, c, c));
  list.erase(1);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.at(0).cookie, 1u);
  EXPECT_EQ(list.at(1).cookie, 3u);
}

TEST(PostedList, EmptySearchFails) {
  PostedList list;
  const auto r = list.search(pack(Envelope{0, 0, 0}));
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.visited, 0u);
}

// ---- UnexpectedList --------------------------------------------------------

TEST(UnexpectedList, ReverseLookupWithWildcardProbe) {
  UnexpectedList list;
  list.append(UnexpectedEntry{pack(Envelope{0, 2, 5}), 1, 0});
  list.append(UnexpectedEntry{pack(Envelope{0, 3, 5}), 2, 0});
  // MPI_ANY_SOURCE probe: oldest arrival with tag 5 wins.
  const auto r = list.search(make_recv_pattern(0, std::nullopt, 5));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cookie, 1u);
}

TEST(UnexpectedList, ArrivalOrderPreserved) {
  UnexpectedList list;
  list.append(UnexpectedEntry{pack(Envelope{0, 1, 5}), 1, 0});
  list.append(UnexpectedEntry{pack(Envelope{0, 1, 5}), 2, 0});
  const auto first = list.search(make_recv_pattern(0, 1, 5));
  ASSERT_TRUE(first.found);
  EXPECT_EQ(first.cookie, 1u);
  list.erase(first.index);
  const auto second = list.search(make_recv_pattern(0, 1, 5));
  ASSERT_TRUE(second.found);
  EXPECT_EQ(second.cookie, 2u);
}

TEST(UnexpectedList, ExplicitProbeSkipsNonMatching) {
  UnexpectedList list;
  list.append(UnexpectedEntry{pack(Envelope{0, 1, 1}), 1, 0});
  list.append(UnexpectedEntry{pack(Envelope{0, 1, 2}), 2, 0});
  list.append(UnexpectedEntry{pack(Envelope{0, 1, 3}), 3, 0});
  const auto r = list.search(make_recv_pattern(0, 1, 3));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.index, 2u);
  EXPECT_EQ(r.visited, 3u);
}

// ---- cross-validation: list pair behaves like a sequential MPI spec --------

TEST(Lists, RandomizedFirstMatchAgreesWithBruteForce) {
  common::Xoshiro256 rng(42);
  PostedList list;
  std::vector<PostedEntry> mirror;
  for (int i = 0; i < 200; ++i) {
    const auto src = rng.chance(0.3)
                         ? std::nullopt
                         : std::optional<std::uint32_t>{
                               static_cast<std::uint32_t>(rng.below(8))};
    const auto tag = rng.chance(0.1)
                         ? std::nullopt
                         : std::optional<std::uint32_t>{
                               static_cast<std::uint32_t>(rng.below(8))};
    const auto e = posted(static_cast<std::uint32_t>(rng.below(2)), src, tag,
                          static_cast<Cookie>(i + 1));
    list.append(e);
    mirror.push_back(e);
  }
  for (int probe = 0; probe < 500; ++probe) {
    const MatchWord w = pack(Envelope{
        static_cast<std::uint32_t>(rng.below(2)),
        static_cast<std::uint32_t>(rng.below(8)),
        static_cast<std::uint32_t>(rng.below(8))});
    const auto got = list.search(w);
    // Brute-force specification.
    bool found = false;
    Cookie cookie = 0;
    for (const auto& entry : mirror) {
      if (entry.pattern.matches(w)) {
        found = true;
        cookie = entry.cookie;
        break;
      }
    }
    EXPECT_EQ(got.found, found);
    if (found) {
      EXPECT_EQ(got.cookie, cookie);
    }
  }
}

}  // namespace
}  // namespace alpu::match
