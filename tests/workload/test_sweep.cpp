// Determinism and coverage tests for the parallel sweep runner: the
// whole point of sweep_map is that a figure regenerated at --jobs 8 is
// byte-identical to --jobs 1, so these tests compare full CSV strings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "workload/sweep.hpp"

namespace alpu::workload {
namespace {

TEST(SweepRunner, ResolveJobsFloorsAtOne) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-4), 1);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(SweepRunner, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  detail::parallel_for_index(kN, 8,
                             [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunner, MapPreservesInputOrder) {
  std::vector<int> points(257);
  std::iota(points.begin(), points.end(), 0);
  SweepOptions parallel;
  parallel.jobs = 8;
  const std::vector<int> doubled =
      sweep_map(points, [](int v) { return 2 * v; }, parallel);
  ASSERT_EQ(doubled.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(doubled[i], 2 * points[i]);
  }
}

TEST(SweepRunner, EmptyInputIsFine) {
  const std::vector<int> none;
  EXPECT_TRUE(sweep_map(none, [](int v) { return v; }).empty());
}

TEST(SweepRunner, BodyExceptionPropagates) {
  EXPECT_THROW(detail::parallel_for_index(
                   64, 4,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(SweepRunner, SurfaceCsvSerialVsParallelByteIdentical) {
  // The acceptance criterion for the whole runner: the reduced Figure 5
  // surface must render to the same bytes at any job count.
  const std::vector<SurfacePoint> points = fig5_surface_points(/*quick=*/true);
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  const std::string csv1 = surface_csv(run_preposted_surface(points, serial));
  const std::string csv8 =
      surface_csv(run_preposted_surface(points, parallel));
  EXPECT_EQ(csv1, csv8);
  EXPECT_FALSE(csv1.empty());
}

TEST(SweepRunner, RepeatedParallelRunsIdentical) {
  const std::vector<SurfacePoint> points = fig5_surface_points(/*quick=*/true);
  SweepOptions parallel;
  parallel.jobs = 8;
  const std::string a = surface_csv(run_preposted_surface(points, parallel));
  const std::string b = surface_csv(run_preposted_surface(points, parallel));
  EXPECT_EQ(a, b);
}

TEST(SweepRunner, SurfaceRowsMatchPointOrder) {
  const std::vector<SurfacePoint> points = fig5_surface_points(/*quick=*/true);
  SweepOptions parallel;
  parallel.jobs = 4;
  const std::vector<SurfaceRow> rows =
      run_preposted_surface(points, parallel);
  ASSERT_EQ(rows.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(rows[i].point.mode, points[i].mode);
    EXPECT_EQ(rows[i].point.queue_length, points[i].queue_length);
    EXPECT_EQ(rows[i].point.fraction_traversed, points[i].fraction_traversed);
  }
}

TEST(SweepRunner, GridShapesAreConsistent) {
  for (bool quick : {false, true}) {
    const auto lengths = fig5_queue_lengths(quick);
    const auto fractions = fig5_fractions(quick);
    const auto points = fig5_surface_points(quick);
    EXPECT_EQ(points.size(), 3 * lengths.size() * fractions.size());
  }
}

}  // namespace
}  // namespace alpu::workload
