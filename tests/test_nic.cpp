// NIC-level integration tests: firmware accounting, queue management,
// ALPU offload bookkeeping, DMA, policies.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"

namespace alpu::nic {
namespace {

using mpi::Machine;
using mpi::Request;
using mpi::SystemConfig;
using workload::make_system_config;
using workload::NicMode;

/// Post `n` receives on rank 0 (never matched) and run to quiescence.
void post_n_receives(Machine& machine, sim::Engine& engine, int n) {
  sim::ProcessPool pool(engine);
  auto program = [n](Machine& m) -> sim::Process {
    for (int i = 0; i < n; ++i) {
      (void)m.rank(0).irecv(1, 1000, 0);
    }
    co_await sim::delay(m.engine(), 1'000'000);  // let firmware drain
  };
  pool.spawn(program(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Nic, PostedQueueLengthTracksReceives) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  post_n_receives(machine, engine, 37);
  EXPECT_EQ(machine.nic(0).posted_queue_length(), 37u);
  EXPECT_EQ(machine.nic(0).stats().posted_appends, 37u);
}

TEST(Nic, AlpuMirrorsPostedQueuePrefix) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  post_n_receives(machine, engine, 50);
  ASSERT_NE(machine.nic(0).posted_alpu(), nullptr);
  // Everything fits: the ALPU holds the whole queue.
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 50u);
  EXPECT_EQ(machine.nic(0).stats().alpu_entries_inserted, 50u);
}

TEST(Nic, AlpuStopsAtCapacityAndQueueOverflowsInSoftware) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  post_n_receives(machine, engine, 200);
  EXPECT_EQ(machine.nic(0).posted_queue_length(), 200u);
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 128u);
  EXPECT_EQ(machine.nic(0).posted_alpu()->stats().inserts_dropped, 0u);
}

TEST(Nic, InsertThresholdDefersOffload) {
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.alpu_policy.insert_threshold = 10;
  sim::Engine engine;
  Machine machine(engine, cfg);
  post_n_receives(machine, engine, 5);
  // Below threshold: nothing moves into the ALPU.
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 0u);
  EXPECT_EQ(machine.nic(0).stats().alpu_insert_sessions, 0u);
}

TEST(Nic, InsertThresholdCrossedLoadsWholeQueue) {
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.alpu_policy.insert_threshold = 10;
  sim::Engine engine;
  Machine machine(engine, cfg);
  post_n_receives(machine, engine, 12);
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 12u);
}

TEST(Nic, FirmwareBusyTimeAccrues) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  post_n_receives(machine, engine, 10);
  EXPECT_GT(machine.nic(0).stats().firmware_busy, 0u);
}

TEST(Nic, EveryRequestGetsExactlyOneCompletion) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  auto sender = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      co_await m.rank(1).send(0, 1, 16);
    }
  };
  auto receiver = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      co_await m.rank(0).recv(1, 1, 16);
    }
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
  EXPECT_EQ(machine.host(0).completions_seen(), 10u);  // 10 recvs
  EXPECT_EQ(machine.host(1).completions_seen(), 10u);  // 10 sends
}

TEST(Nic, DmaMovesTheBytes) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 1, 4096);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    co_await m.rank(0).recv(1, 1, 4096);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
  // Tx side pulled 4096 from host memory; Rx side pushed 4096 up.
  EXPECT_EQ(machine.nic(1).stats().packets_tx, 1u);
  EXPECT_EQ(machine.nic(0).stats().eager_rx, 1u);
}

TEST(Nic, UnexpectedQueueDrainsOnMatch) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  sim::ProcessPool pool(engine);
  auto sender = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 30; ++i) {
      co_await m.rank(1).send(0, i, 8);
    }
  };
  auto receiver = [](Machine& m) -> sim::Process {
    co_await sim::delay(m.engine(), 100'000'000);  // all land unexpected
    EXPECT_EQ(m.nic(0).unexpected_queue_length(), 30u);
    // The unexpected ALPU mirrors them.
    EXPECT_EQ(m.nic(0).unexpected_alpu()->array().occupancy(), 30u);
    for (int i = 0; i < 30; ++i) {
      Request r;
      co_await m.rank(0).recv(1, i, 8, mpi::kWorldContext, &r);
      EXPECT_EQ(r.matched().tag, static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(m.nic(0).unexpected_queue_length(), 0u);
    EXPECT_EQ(m.nic(0).unexpected_alpu()->array().occupancy(), 0u);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Nic, AlpuRefillsAfterMatchesFreeSlots) {
  // Fill the 128-entry ALPU from a 150-entry queue, match 30 via the
  // ALPU, and verify the firmware tops the unit back up from the
  // software overflow portion.
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  sim::ProcessPool pool(engine);
  auto receiver = [](Machine& m) -> sim::Process {
    std::vector<Request> head;
    for (int i = 0; i < 30; ++i) {
      head.push_back(m.rank(0).irecv(1, i, 8));  // will be matched
    }
    for (int i = 0; i < 120; ++i) {
      (void)m.rank(0).irecv(1, 5000, 0);  // never matched
    }
    co_await m.rank(0).send(1, 99, 0);
    co_await m.rank(0).waitall(std::move(head));
    co_await sim::delay(m.engine(), 10'000'000);  // let refill happen
    EXPECT_EQ(m.nic(0).posted_queue_length(), 120u);
    EXPECT_EQ(m.nic(0).posted_alpu()->array().occupancy(), 120u);
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    for (int i = 0; i < 30; ++i) {
      co_await m.rank(1).send(0, i, 8);
    }
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Nic, MinBatchDefersSessionsUnderLoadButSyncsWhenIdle) {
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.alpu_policy.min_batch = 16;
  sim::Engine engine;
  Machine machine(engine, cfg);
  post_n_receives(machine, engine, 40);
  // Everything ends up in the unit (idle sync covers the tail)...
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 40u);
  // ...but in far fewer sessions than the eager default's one-per-post.
  EXPECT_LE(machine.nic(0).stats().alpu_insert_sessions, 8u);
}

TEST(Nic, EagerSyncRunsManySmallSessions) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  post_n_receives(machine, engine, 40);
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 40u);
  // min_batch=1 (the paper's behaviour): roughly one session per post.
  EXPECT_GE(machine.nic(0).stats().alpu_insert_sessions, 20u);
}

TEST(Nic, BaselineHasNoAlpu) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  EXPECT_EQ(machine.nic(0).posted_alpu(), nullptr);
  EXPECT_EQ(machine.nic(0).unexpected_alpu(), nullptr);
}

TEST(Nic, WalkStatsCountSoftwareTraversal) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  auto receiver = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      (void)m.rank(0).irecv(1, 1000 + i, 0);  // 20 non-matching entries
    }
    Request r = m.rank(0).irecv(1, 7, 8);
    co_await m.rank(0).send(1, 99, 0);
    co_await m.rank(0).wait(r);
    // The match walked all 20 decoys plus the hit.
    EXPECT_EQ(m.nic(0).stats().posted_entries_walked, 21u);
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    co_await m.rank(1).send(0, 7, 8);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

// ---------------------------------------------------------------------------
// Reliability: rendezvous leg-loss matrix
// ---------------------------------------------------------------------------

/// One 32 KB rendezvous transfer 1 -> 0 under a fault script; returns
/// the receiver-observed outcome.
struct RdvzOutcome {
  std::uint32_t bytes = 0;
  common::TimePs finished = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t link_failures = 0;
  bool completed = false;
};

RdvzOutcome run_rendezvous_under(const net::FaultConfig& faults) {
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.reliability.enabled = true;
  cfg.faults = faults;
  sim::Engine engine;
  Machine machine(engine, cfg);
  sim::ProcessPool pool(engine);
  RdvzOutcome out;
  auto receiver = [&out](Machine& m) -> sim::Process {
    Request r = m.rank(0).irecv(1, 7, 32 * 1024);
    co_await m.rank(0).send(1, 99, 0);  // handshake: receive is posted
    co_await m.rank(0).wait(r);
    out.bytes = r.bytes();
    out.finished = m.engine().now();
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    co_await m.rank(1).send(0, 7, 32 * 1024);  // > eager_threshold
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  out.completed = pool.all_done();
  for (int n = 0; n < 2; ++n) {
    out.retransmits += machine.nic(n).reliability().stats().retransmits;
    out.link_failures += machine.nic(n).reliability().stats().link_failures;
  }
  return out;
}

/// Losing any single leg of the RTS/CTS/DATA handshake must be invisible
/// at the MPI level: same bytes delivered, merely later.
TEST(NicReliability, RendezvousSurvivesLossOfAnyLeg) {
  const RdvzOutcome clean = run_rendezvous_under(net::FaultConfig{});
  ASSERT_TRUE(clean.completed);
  ASSERT_EQ(clean.bytes, 32u * 1024u);
  EXPECT_EQ(clean.retransmits, 0u);

  struct Leg {
    const char* name;
    net::NodeId src, dst;
    net::PacketKind kind;
  };
  const Leg legs[] = {
      {"RTS", 1, 0, net::PacketKind::kRtsRendezvous},
      {"CTS", 0, 1, net::PacketKind::kCtsRendezvous},
      {"DATA", 1, 0, net::PacketKind::kRendezvousData},
  };
  for (const Leg& leg : legs) {
    SCOPED_TRACE(leg.name);
    net::FaultConfig faults;
    faults.script.push_back(
        net::ScriptedFault{net::FaultKind::kDrop, leg.src, leg.dst,
                           leg.kind, 1});
    const RdvzOutcome lossy = run_rendezvous_under(faults);
    EXPECT_TRUE(lossy.completed);
    EXPECT_EQ(lossy.bytes, clean.bytes);
    EXPECT_GE(lossy.retransmits, 1u);
    EXPECT_EQ(lossy.link_failures, 0u);
    // Recovery costs at least one retransmit timeout.
    EXPECT_GT(lossy.finished, clean.finished);
  }
}

TEST(NicReliability, CleanRunWithLayerEnabledStillDeliversEverything) {
  // Reliability on, zero faults: pure sequencing/ACK overhead must not
  // perturb MPI outcomes.
  const RdvzOutcome out = run_rendezvous_under(net::FaultConfig{});
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.bytes, 32u * 1024u);
  EXPECT_EQ(out.retransmits, 0u);
  EXPECT_EQ(out.link_failures, 0u);
}

// ---------------------------------------------------------------------------
// Graceful ALPU degradation under header-FIFO back-pressure
// ---------------------------------------------------------------------------

TEST(NicDegradation, HeaderFifoRejectionFallsBackAndRecovers) {
  // A hostile unit: ~200x slower than ASIC speed with a 2-deep header
  // FIFO, so a burst of back-to-back arrivals (~20 ns apart on the
  // Table-III link) must overflow it.  The NIC is required to reject the
  // probe, reset the unit, run the software path, deliver every message
  // anyway — and re-shadow the queue once the storm passes.
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.posted_alpu->clock = common::ClockPeriod::from_mhz(2);
  cfg.nic.posted_alpu->header_fifo_depth = 2;
  sim::Engine engine;
  Machine machine(engine, cfg);
  sim::ProcessPool pool(engine);
  constexpr int kBurst = 12;
  auto receiver = [](Machine& m) -> sim::Process {
    std::vector<Request> rs;
    for (int i = 0; i < kBurst; ++i) {
      rs.push_back(m.rank(0).irecv(1, i, 8));
    }
    // Wait until the unit actually holds entries (probes enabled), then
    // release the burst.
    while (m.nic(0).posted_alpu()->array().occupancy() == 0) {
      co_await sim::delay(m.engine(), 1'000'000'000);
    }
    co_await m.rank(0).send(1, 99, 0);
    for (Request& r : rs) {
      co_await m.rank(0).wait(r);
      EXPECT_EQ(r.bytes(), 8u);
    }
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    std::vector<Request> sends;
    for (int i = 0; i < kBurst; ++i) {
      sends.push_back(m.rank(1).isend(0, i, 8));  // back-to-back wire burst
    }
    co_await m.rank(1).waitall(std::move(sends));
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());

  const NicStats& s = machine.nic(0).stats();
  EXPECT_GE(s.alpu_probe_rejections, 1u);  // the FIFO did overflow
  EXPECT_GE(s.alpu_fallback_resets, 1u);   // the unit was reset, not trusted
  EXPECT_GE(s.alpu_fallback_searches, 1u); // software answered instead
  // Every message was still matched and delivered (the waits above), and
  // the queue fully drained.
  EXPECT_EQ(machine.nic(0).posted_queue_length(), 0u);
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 0u);

  // Recovery: new postings re-shadow into the (reset) unit.
  sim::ProcessPool pool2(engine);
  auto repost = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 5; ++i) {
      (void)m.rank(0).irecv(1, 1000 + i, 0);
    }
    co_await sim::delay(m.engine(), 50'000'000'000);  // slow clock: be generous
  };
  pool2.spawn(repost(machine));
  engine.run();
  ASSERT_TRUE(pool2.all_done());
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 5u);
}

TEST(Nic, AlpuHitSkipsSoftwareWalk) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  sim::ProcessPool pool(engine);
  auto receiver = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      (void)m.rank(0).irecv(1, 1000 + i, 0);
    }
    Request r = m.rank(0).irecv(1, 7, 8);
    co_await m.rank(0).send(1, 99, 0);
    co_await m.rank(0).wait(r);
    EXPECT_EQ(m.nic(0).stats().alpu_posted_hits, 1u);  // the ping
    EXPECT_EQ(m.nic(0).stats().posted_entries_walked, 0u);
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    co_await m.rank(1).send(0, 7, 8);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

}  // namespace
}  // namespace alpu::nic
