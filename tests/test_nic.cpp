// NIC-level integration tests: firmware accounting, queue management,
// ALPU offload bookkeeping, DMA, policies.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"

namespace alpu::nic {
namespace {

using mpi::Machine;
using mpi::Request;
using mpi::SystemConfig;
using workload::make_system_config;
using workload::NicMode;

/// Post `n` receives on rank 0 (never matched) and run to quiescence.
void post_n_receives(Machine& machine, sim::Engine& engine, int n) {
  sim::ProcessPool pool(engine);
  auto program = [n](Machine& m) -> sim::Process {
    for (int i = 0; i < n; ++i) {
      (void)m.rank(0).irecv(1, 1000, 0);
    }
    co_await sim::delay(m.engine(), 1'000'000);  // let firmware drain
  };
  pool.spawn(program(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Nic, PostedQueueLengthTracksReceives) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  post_n_receives(machine, engine, 37);
  EXPECT_EQ(machine.nic(0).posted_queue_length(), 37u);
  EXPECT_EQ(machine.nic(0).stats().posted_appends, 37u);
}

TEST(Nic, AlpuMirrorsPostedQueuePrefix) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  post_n_receives(machine, engine, 50);
  ASSERT_NE(machine.nic(0).posted_alpu(), nullptr);
  // Everything fits: the ALPU holds the whole queue.
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 50u);
  EXPECT_EQ(machine.nic(0).stats().alpu_entries_inserted, 50u);
}

TEST(Nic, AlpuStopsAtCapacityAndQueueOverflowsInSoftware) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  post_n_receives(machine, engine, 200);
  EXPECT_EQ(machine.nic(0).posted_queue_length(), 200u);
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 128u);
  EXPECT_EQ(machine.nic(0).posted_alpu()->stats().inserts_dropped, 0u);
}

TEST(Nic, InsertThresholdDefersOffload) {
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.alpu_policy.insert_threshold = 10;
  sim::Engine engine;
  Machine machine(engine, cfg);
  post_n_receives(machine, engine, 5);
  // Below threshold: nothing moves into the ALPU.
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 0u);
  EXPECT_EQ(machine.nic(0).stats().alpu_insert_sessions, 0u);
}

TEST(Nic, InsertThresholdCrossedLoadsWholeQueue) {
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.alpu_policy.insert_threshold = 10;
  sim::Engine engine;
  Machine machine(engine, cfg);
  post_n_receives(machine, engine, 12);
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 12u);
}

TEST(Nic, FirmwareBusyTimeAccrues) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  post_n_receives(machine, engine, 10);
  EXPECT_GT(machine.nic(0).stats().firmware_busy, 0u);
}

TEST(Nic, EveryRequestGetsExactlyOneCompletion) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  auto sender = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      co_await m.rank(1).send(0, 1, 16);
    }
  };
  auto receiver = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      co_await m.rank(0).recv(1, 1, 16);
    }
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
  EXPECT_EQ(machine.host(0).completions_seen(), 10u);  // 10 recvs
  EXPECT_EQ(machine.host(1).completions_seen(), 10u);  // 10 sends
}

TEST(Nic, DmaMovesTheBytes) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).send(0, 1, 4096);
  };
  auto receiver = [](Machine& m) -> sim::Process {
    co_await m.rank(0).recv(1, 1, 4096);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
  // Tx side pulled 4096 from host memory; Rx side pushed 4096 up.
  EXPECT_EQ(machine.nic(1).stats().packets_tx, 1u);
  EXPECT_EQ(machine.nic(0).stats().eager_rx, 1u);
}

TEST(Nic, UnexpectedQueueDrainsOnMatch) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  sim::ProcessPool pool(engine);
  auto sender = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 30; ++i) {
      co_await m.rank(1).send(0, i, 8);
    }
  };
  auto receiver = [](Machine& m) -> sim::Process {
    co_await sim::delay(m.engine(), 100'000'000);  // all land unexpected
    EXPECT_EQ(m.nic(0).unexpected_queue_length(), 30u);
    // The unexpected ALPU mirrors them.
    EXPECT_EQ(m.nic(0).unexpected_alpu()->array().occupancy(), 30u);
    for (int i = 0; i < 30; ++i) {
      Request r;
      co_await m.rank(0).recv(1, i, 8, mpi::kWorldContext, &r);
      EXPECT_EQ(r.matched().tag, static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(m.nic(0).unexpected_queue_length(), 0u);
    EXPECT_EQ(m.nic(0).unexpected_alpu()->array().occupancy(), 0u);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Nic, AlpuRefillsAfterMatchesFreeSlots) {
  // Fill the 128-entry ALPU from a 150-entry queue, match 30 via the
  // ALPU, and verify the firmware tops the unit back up from the
  // software overflow portion.
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  sim::ProcessPool pool(engine);
  auto receiver = [](Machine& m) -> sim::Process {
    std::vector<Request> head;
    for (int i = 0; i < 30; ++i) {
      head.push_back(m.rank(0).irecv(1, i, 8));  // will be matched
    }
    for (int i = 0; i < 120; ++i) {
      (void)m.rank(0).irecv(1, 5000, 0);  // never matched
    }
    co_await m.rank(0).send(1, 99, 0);
    co_await m.rank(0).waitall(std::move(head));
    co_await sim::delay(m.engine(), 10'000'000);  // let refill happen
    EXPECT_EQ(m.nic(0).posted_queue_length(), 120u);
    EXPECT_EQ(m.nic(0).posted_alpu()->array().occupancy(), 120u);
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    for (int i = 0; i < 30; ++i) {
      co_await m.rank(1).send(0, i, 8);
    }
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Nic, MinBatchDefersSessionsUnderLoadButSyncsWhenIdle) {
  SystemConfig cfg = make_system_config(NicMode::kAlpu128);
  cfg.nic.alpu_policy.min_batch = 16;
  sim::Engine engine;
  Machine machine(engine, cfg);
  post_n_receives(machine, engine, 40);
  // Everything ends up in the unit (idle sync covers the tail)...
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 40u);
  // ...but in far fewer sessions than the eager default's one-per-post.
  EXPECT_LE(machine.nic(0).stats().alpu_insert_sessions, 8u);
}

TEST(Nic, EagerSyncRunsManySmallSessions) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  post_n_receives(machine, engine, 40);
  EXPECT_EQ(machine.nic(0).posted_alpu()->array().occupancy(), 40u);
  // min_batch=1 (the paper's behaviour): roughly one session per post.
  EXPECT_GE(machine.nic(0).stats().alpu_insert_sessions, 20u);
}

TEST(Nic, BaselineHasNoAlpu) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  EXPECT_EQ(machine.nic(0).posted_alpu(), nullptr);
  EXPECT_EQ(machine.nic(0).unexpected_alpu(), nullptr);
}

TEST(Nic, WalkStatsCountSoftwareTraversal) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  auto receiver = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      (void)m.rank(0).irecv(1, 1000 + i, 0);  // 20 non-matching entries
    }
    Request r = m.rank(0).irecv(1, 7, 8);
    co_await m.rank(0).send(1, 99, 0);
    co_await m.rank(0).wait(r);
    // The match walked all 20 decoys plus the hit.
    EXPECT_EQ(m.nic(0).stats().posted_entries_walked, 21u);
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    co_await m.rank(1).send(0, 7, 8);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

TEST(Nic, AlpuHitSkipsSoftwareWalk) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kAlpu128));
  sim::ProcessPool pool(engine);
  auto receiver = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      (void)m.rank(0).irecv(1, 1000 + i, 0);
    }
    Request r = m.rank(0).irecv(1, 7, 8);
    co_await m.rank(0).send(1, 99, 0);
    co_await m.rank(0).wait(r);
    EXPECT_EQ(m.nic(0).stats().alpu_posted_hits, 1u);  // the ping
    EXPECT_EQ(m.nic(0).stats().posted_entries_walked, 0u);
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 99, 0);
    co_await m.rank(1).send(0, 7, 8);
  };
  pool.spawn(receiver(machine));
  pool.spawn(sender(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
}

}  // namespace
}  // namespace alpu::nic
