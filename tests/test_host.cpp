// Unit tests for the host processor model.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"

namespace alpu::host {
namespace {

using mpi::Machine;
using workload::make_system_config;
using workload::NicMode;

TEST(Host, SubmitAssignsDistinctRequestIds) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  Host& host = machine.host(0);
  nic::HostRequest req;
  req.kind = nic::RequestKind::kPostRecv;
  req.pattern = match::make_recv_pattern(0, 1, 1);
  auto a = host.submit(req);
  auto b = host.submit(req);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a->done);
  EXPECT_FALSE(b->done);
  engine.run();
}

TEST(Host, DoorbellDelaysDescriptorArrival) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  Host& host = machine.host(0);
  nic::HostRequest req;
  req.kind = nic::RequestKind::kPostRecv;
  req.pattern = match::make_recv_pattern(0, 1, 1);
  (void)host.submit(req);
  // Immediately after submit, nothing has reached the NIC.
  EXPECT_EQ(machine.nic(0).posted_queue_length(), 0u);
  // After dispatch + doorbell + firmware processing, it has.
  engine.run_until(2'000'000);  // 2 us
  EXPECT_EQ(machine.nic(0).posted_queue_length(), 1u);
}

TEST(Host, WaitBlocksUntilCompletion) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  bool finished = false;
  auto program = [&](Machine& m) -> sim::Process {
    mpi::Request r = m.rank(0).irecv(1, 5, 64);
    co_await m.rank(0).wait(r);
    finished = true;
  };
  auto sender = [](Machine& m) -> sim::Process {
    co_await sim::delay(m.engine(), 10'000'000);
    co_await m.rank(1).send(0, 5, 64);
  };
  pool.spawn(program(machine));
  pool.spawn(sender(machine));
  engine.run_until(5'000'000);
  EXPECT_FALSE(finished);  // nothing sent yet
  engine.run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(pool.all_done());
}

TEST(Host, CompletionCountsMatchRequests) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  sim::ProcessPool pool(engine);
  auto program = [](Machine& m) -> sim::Process {
    std::vector<mpi::Request> reqs;
    for (int i = 0; i < 7; ++i) reqs.push_back(m.rank(0).isend(1, i, 32));
    co_await m.rank(0).waitall(std::move(reqs));
  };
  auto sink = [](Machine& m) -> sim::Process {
    for (int i = 0; i < 7; ++i) {
      co_await m.rank(1).recv(0, i, 32);
    }
  };
  pool.spawn(program(machine));
  pool.spawn(sink(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());
  EXPECT_EQ(machine.host(0).completions_seen(), 7u);
}

TEST(Host, BufferAllocationsDoNotOverlap) {
  sim::Engine engine;
  Machine machine(engine, make_system_config(NicMode::kBaseline));
  Host& host = machine.host(0);
  const mem::Addr a = host.alloc_buffer(1000);
  const mem::Addr b = host.alloc_buffer(1000);
  EXPECT_GE(b, a + 1000);
}

TEST(Host, SteadyStateSubmitCostIsDeterministic) {
  // The record rings are pre-warmed: the same program started twice in
  // fresh machines takes exactly the same simulated time (the basis for
  // every calibration claim).
  auto run_once = [] {
    sim::Engine engine;
    Machine machine(engine, make_system_config(NicMode::kBaseline));
    sim::ProcessPool pool(engine);
    auto rx = [](Machine& m) -> sim::Process {
      for (int i = 0; i < 5; ++i) co_await m.rank(0).recv(1, 1, 64);
    };
    auto tx = [](Machine& m) -> sim::Process {
      for (int i = 0; i < 5; ++i) co_await m.rank(1).send(0, 1, 64);
    };
    pool.spawn(rx(machine));
    pool.spawn(tx(machine));
    return engine.run();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Host, MemoryHierarchyMatchesTableIII) {
  const HostConfig config;
  EXPECT_EQ(config.memory.l1.size_bytes, 64u * 1024u);
  EXPECT_EQ(config.memory.l1.ways, 2u);
  ASSERT_TRUE(config.memory.l2.has_value());
  EXPECT_EQ(config.memory.l2->size_bytes, 512u * 1024u);
  EXPECT_TRUE(config.memory.use_dram);
  EXPECT_EQ(config.clock.period(), 500u);  // 2 GHz
}

}  // namespace
}  // namespace alpu::host
