// Tests for the Portals building-block substrate (Section VIII offload).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "portals/portals.hpp"

namespace alpu::portals {
namespace {

MatchEntrySpec use_once(PtlMatchBits bits, PtlMatchBits ignore = 0,
                        std::uint64_t length = 4096) {
  MatchEntrySpec spec;
  spec.match_bits = bits;
  spec.ignore_bits = ignore;
  spec.md.length = length;
  spec.md.threshold = 1;
  spec.unlink = UnlinkPolicy::kUnlink;
  return spec;
}

// ---- basic matching ----------------------------------------------------------

TEST(Portals, PutMatchesFirstEntryInListOrder) {
  PortalTable table(4);
  const EqHandle eq = table.eq_alloc(16);
  const MeHandle a = table.me_attach(0, use_once(0x1111), eq);
  const MeHandle b = table.me_attach(0, use_once(0x1111), eq);
  const auto r = table.put(0, {1, 1}, 0x1111, 64);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.me, a);
  EXPECT_EQ(r.mlength, 64u);
  // The second identical entry answers the next put.
  const auto r2 = table.put(0, {1, 1}, 0x1111, 64);
  ASSERT_TRUE(r2.accepted);
  EXPECT_EQ(r2.me, b);
}

TEST(Portals, IgnoreBitsWildcardExactPositions) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  // Ignore the low 16 bits — matches any "tag" in that range.
  (void)table.me_attach(0, use_once(0xABCD'0000, 0xFFFF), eq);
  EXPECT_TRUE(table.put(0, {0, 0}, 0xABCD'1234, 8).accepted);
  EXPECT_FALSE(table.put(0, {0, 0}, 0xABCE'0000, 8).accepted);
}

TEST(Portals, FullWidthBitsParticipate) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  // Bits above position 42 (beyond the MPI packing) must still match.
  const PtlMatchBits high = PtlMatchBits{0xF} << 60;
  (void)table.me_attach(0, use_once(high), eq);
  EXPECT_FALSE(table.put(0, {0, 0}, 0, 8).accepted);
  EXPECT_TRUE(table.put(0, {0, 0}, high, 8).accepted);
}

TEST(Portals, SourceFilterRestrictsInitiator) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  MatchEntrySpec spec = use_once(0x7);
  spec.source = ProcessId{3, 9};
  (void)table.me_attach(0, spec, eq);
  EXPECT_FALSE(table.put(0, {3, 8}, 0x7, 8).accepted);
  EXPECT_FALSE(table.put(0, {4, 9}, 0x7, 8).accepted);
  EXPECT_TRUE(table.put(0, {3, 9}, 0x7, 8).accepted);
}

TEST(Portals, SourceNidWildcard) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  MatchEntrySpec spec = use_once(0x7);
  spec.source = ProcessId{kAnyNid, 9};
  (void)table.me_attach(0, spec, eq);
  EXPECT_TRUE(table.put(0, {42, 9}, 0x7, 8).accepted);
}

TEST(Portals, NoMatchIsDroppedAndCounted) {
  PortalTable table(2);
  const EqHandle eq = table.eq_alloc(16);
  (void)table.me_attach(0, use_once(0x1), eq);
  const auto r = table.put(0, {0, 0}, 0x2, 8);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.entries_walked, 1u);
  EXPECT_EQ(table.stats().drops, 1u);
  EXPECT_EQ(table.list_length(0), 1u);  // entry retained
}

TEST(Portals, IndicesAreIndependent) {
  PortalTable table(2);
  const EqHandle eq = table.eq_alloc(16);
  (void)table.me_attach(0, use_once(0x1), eq);
  EXPECT_FALSE(table.put(1, {0, 0}, 0x1, 8).accepted);
  EXPECT_TRUE(table.put(0, {0, 0}, 0x1, 8).accepted);
}

// ---- memory descriptors --------------------------------------------------------

TEST(Portals, LocallyManagedOffsetAdvances) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  MatchEntrySpec spec = use_once(0x5, 0, /*length=*/1024);
  spec.md.threshold = kInfiniteThreshold;
  spec.unlink = UnlinkPolicy::kNoUnlink;
  (void)table.me_attach(0, spec, eq);
  const auto r1 = table.put(0, {0, 0}, 0x5, 100);
  const auto r2 = table.put(0, {0, 0}, 0x5, 100);
  ASSERT_TRUE(r1.accepted);
  ASSERT_TRUE(r2.accepted);
  EXPECT_EQ(r1.offset, 0u);
  EXPECT_EQ(r2.offset, 100u);
}

TEST(Portals, TruncationCapsAtRemainingSpace) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  MatchEntrySpec spec = use_once(0x5, 0, /*length=*/100);
  spec.md.threshold = kInfiniteThreshold;
  spec.unlink = UnlinkPolicy::kNoUnlink;
  (void)table.me_attach(0, spec, eq);
  EXPECT_EQ(table.put(0, {0, 0}, 0x5, 80).mlength, 80u);
  EXPECT_EQ(table.put(0, {0, 0}, 0x5, 80).mlength, 20u);  // truncated
  EXPECT_EQ(table.put(0, {0, 0}, 0x5, 80).mlength, 0u);   // full
}

TEST(Portals, NoTruncateOversizedIsDropped) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  MatchEntrySpec spec = use_once(0x5, 0, /*length=*/64);
  spec.md.truncate = false;
  (void)table.me_attach(0, spec, eq);
  const auto r = table.put(0, {0, 0}, 0x5, 128);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(table.stats().drops, 1u);
  EXPECT_EQ(table.list_length(0), 1u);  // entry survives
  // A fitting put still lands afterwards.
  EXPECT_TRUE(table.put(0, {0, 0}, 0x5, 32).accepted);
}

TEST(Portals, ThresholdCountsDownAndUnlinks) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  MatchEntrySpec spec = use_once(0x9, 0, 4096);
  spec.md.threshold = 3;
  (void)table.me_attach(0, spec, eq);
  EXPECT_TRUE(table.put(0, {0, 0}, 0x9, 8).accepted);
  EXPECT_TRUE(table.put(0, {0, 0}, 0x9, 8).accepted);
  EXPECT_EQ(table.list_length(0), 1u);
  EXPECT_TRUE(table.put(0, {0, 0}, 0x9, 8).accepted);  // third: unlinks
  EXPECT_EQ(table.list_length(0), 0u);
  EXPECT_EQ(table.stats().unlinks, 1u);
  EXPECT_FALSE(table.put(0, {0, 0}, 0x9, 8).accepted);
}

TEST(Portals, GetReadsWithoutAdvancingOffset) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  MatchEntrySpec spec = use_once(0x5, 0, 1024);
  spec.md.threshold = kInfiniteThreshold;
  spec.unlink = UnlinkPolicy::kNoUnlink;
  (void)table.me_attach(0, spec, eq);
  EXPECT_EQ(table.get(0, {0, 0}, 0x5, 64).offset, 0u);
  EXPECT_EQ(table.get(0, {0, 0}, 0x5, 64).offset, 0u);
  EXPECT_EQ(table.stats().gets, 2u);
}

// ---- event queues ---------------------------------------------------------------

TEST(Portals, EventsCarryOperationDetails) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  const MeHandle me = table.me_attach(0, use_once(0x5, 0, 32), eq);
  (void)table.put(0, {7, 8}, 0x5, 64);
  const auto put_end = table.eq(eq).poll();
  ASSERT_TRUE(put_end.has_value());
  EXPECT_EQ(put_end->kind, EventKind::kPutEnd);
  EXPECT_EQ(put_end->initiator, (ProcessId{7, 8}));
  EXPECT_EQ(put_end->rlength, 64u);
  EXPECT_EQ(put_end->mlength, 32u);  // truncated to MD length
  EXPECT_EQ(put_end->me, me);
  const auto unlink = table.eq(eq).poll();
  ASSERT_TRUE(unlink.has_value());
  EXPECT_EQ(unlink->kind, EventKind::kUnlink);
}

TEST(Portals, FullEventQueueDropsEventsNotMessages) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(2);
  MatchEntrySpec spec = use_once(0x5, 0, 1 << 20);
  spec.md.threshold = kInfiniteThreshold;
  spec.unlink = UnlinkPolicy::kNoUnlink;
  (void)table.me_attach(0, spec, eq);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(table.put(0, {0, 0}, 0x5, 8).accepted);  // data still lands
  }
  EXPECT_EQ(table.eq(eq).pending(), 2u);
  EXPECT_EQ(table.eq(eq).dropped(), 3u);
}

// ---- explicit unlink --------------------------------------------------------------

TEST(Portals, MeUnlinkRemovesEntry) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  const MeHandle me = table.me_attach(0, use_once(0x5), eq);
  EXPECT_TRUE(table.me_unlink(me));
  EXPECT_FALSE(table.me_unlink(me));  // second unlink: gone
  EXPECT_FALSE(table.put(0, {0, 0}, 0x5, 8).accepted);
}

// ---- ALPU acceleration ---------------------------------------------------------

TEST(PortalsAlpu, AcceleratedIndexAnswersWithoutWalking) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(64);
  ASSERT_TRUE(table.attach_alpu(0, 64, 16));
  for (std::uint64_t i = 0; i < 32; ++i) {
    (void)table.me_attach(0, use_once(0x1000 + i), eq);
  }
  const auto r = table.put(0, {0, 0}, 0x1000 + 31, 8);
  ASSERT_TRUE(r.accepted);
  EXPECT_TRUE(r.alpu_hit);
  EXPECT_EQ(r.entries_walked, 0u);
  EXPECT_EQ(table.list_length(0), 31u);
}

TEST(PortalsAlpu, OverflowBeyondCapacityWalksOnlyTheTail) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(64);
  ASSERT_TRUE(table.attach_alpu(0, 16, 8));
  for (std::uint64_t i = 0; i < 24; ++i) {
    (void)table.me_attach(0, use_once(0x2000 + i), eq);
  }
  // Entry 20 lives past the 16-cell capacity: software walks 5 entries
  // (16..20), not 21.
  const auto r = table.put(0, {0, 0}, 0x2000 + 20, 8);
  ASSERT_TRUE(r.accepted);
  EXPECT_FALSE(r.alpu_hit);
  EXPECT_EQ(r.entries_walked, 5u);
  // The freed slot is refilled from the overflow portion.
  const auto r2 = table.put(0, {0, 0}, 0x2000 + 15, 8);
  EXPECT_TRUE(r2.alpu_hit);
}

TEST(PortalsAlpu, PersistentEntryDegradesTheIndex) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(64);
  ASSERT_TRUE(table.attach_alpu(0, 16, 8));
  (void)table.me_attach(0, use_once(0x1), eq);
  EXPECT_TRUE(table.accelerated(0));
  MatchEntrySpec persistent = use_once(0x2);
  persistent.unlink = UnlinkPolicy::kNoUnlink;
  persistent.md.threshold = kInfiniteThreshold;
  (void)table.me_attach(0, persistent, eq);
  EXPECT_FALSE(table.accelerated(0));
  EXPECT_EQ(table.stats().degradations, 1u);
  // Matching still works, in software, in the right order.
  const auto r = table.put(0, {0, 0}, 0x1, 8);
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.alpu_hit);
  EXPECT_GT(r.entries_walked, 0u);
}

TEST(PortalsAlpu, SourceFilteredEntryDegradesTheIndex) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(64);
  ASSERT_TRUE(table.attach_alpu(0, 16, 8));
  MatchEntrySpec filtered = use_once(0x2);
  filtered.source = ProcessId{1, 1};
  (void)table.me_attach(0, filtered, eq);
  EXPECT_FALSE(table.accelerated(0));
}

TEST(PortalsAlpu, ExplicitUnlinkOfSyncedEntryDegrades) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(64);
  ASSERT_TRUE(table.attach_alpu(0, 16, 8));
  const MeHandle me = table.me_attach(0, use_once(0x1), eq);
  (void)table.me_attach(0, use_once(0x2), eq);
  EXPECT_TRUE(table.me_unlink(me));
  EXPECT_FALSE(table.accelerated(0));
  // The remaining entry still matches in software.
  EXPECT_TRUE(table.put(0, {0, 0}, 0x2, 8).accepted);
}

TEST(PortalsAlpu, AttachAlpuRejectedOncePopulated) {
  PortalTable table(1);
  const EqHandle eq = table.eq_alloc(16);
  (void)table.me_attach(0, use_once(0x1), eq);
  EXPECT_FALSE(table.attach_alpu(0, 16, 8));
}

// ---- equivalence property: accelerated == software -----------------------------

class PortalsEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PortalsEquivalence, AcceleratedMatchesSoftwareExactly) {
  common::Xoshiro256 rng(GetParam());
  PortalTable sw(1), hwacc(1);
  const EqHandle eq_sw = sw.eq_alloc(4096);
  const EqHandle eq_hw = hwacc.eq_alloc(4096);
  ASSERT_TRUE(hwacc.attach_alpu(0, 64, 16));

  for (int step = 0; step < 2'000; ++step) {
    const PtlMatchBits bits = 0x100 + rng.below(64);
    if (rng.chance(0.5) && sw.list_length(0) < 64) {
      // Use-once entries only (the accelerable shape).
      const PtlMatchBits ignore = rng.chance(0.25) ? 0xF : 0;
      (void)sw.me_attach(0, use_once(bits, ignore), eq_sw);
      (void)hwacc.me_attach(0, use_once(bits, ignore), eq_hw);
    } else {
      const auto a = sw.put(0, {0, 0}, bits, 16);
      const auto b = hwacc.put(0, {0, 0}, bits, 16);
      ASSERT_EQ(a.accepted, b.accepted);
      if (a.accepted) {
        ASSERT_EQ(a.mlength, b.mlength);
        ASSERT_EQ(a.offset, b.offset);
      }
      ASSERT_EQ(sw.list_length(0), hwacc.list_length(0));
    }
  }
  EXPECT_TRUE(hwacc.accelerated(0));
  EXPECT_GT(hwacc.stats().alpu_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortalsEquivalence,
                         ::testing::Values(3, 6, 9, 12, 15));

}  // namespace
}  // namespace alpu::portals
