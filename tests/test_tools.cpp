// Tests for the flags parser and the machine report renderer.
#include <gtest/gtest.h>

#include "common/flags.hpp"
#include "workload/report.hpp"
#include "workload/scenarios.hpp"

namespace alpu {
namespace {

common::Flags parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  auto f = common::Flags::parse(static_cast<int>(args.size()),
                                const_cast<char**>(args.data()));
  EXPECT_TRUE(f.has_value());
  return *f;
}

TEST(Flags, EqualsForm) {
  const auto f = parse({"--length=42", "--fraction=0.5"});
  EXPECT_EQ(f.get_int("length", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("fraction", 0), 0.5);
}

TEST(Flags, SpaceForm) {
  const auto f = parse({"--mode", "alpu128", "--length", "7"});
  EXPECT_EQ(f.get("mode", ""), "alpu128");
  EXPECT_EQ(f.get_int("length", 0), 7);
}

TEST(Flags, BooleanForm) {
  // Positionals come first (the tools' convention): space-form parsing
  // is greedy, so a word after a bare flag would bind as its value.
  const auto f = parse({"scenario", "--report", "--verbose"});
  EXPECT_TRUE(f.get_bool("report"));
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("missing"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "scenario");
}

TEST(Flags, GreedySpaceFormBindsFollowingWord) {
  const auto f = parse({"--report", "scenario"});
  EXPECT_EQ(f.get("report", ""), "scenario");
  EXPECT_TRUE(f.positional().empty());
}

TEST(Flags, PositionalBeforeAndAfterFlags) {
  const auto f = parse({"run", "--x=1", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, FallbacksApply) {
  const auto f = parse({});
  EXPECT_EQ(f.get("mode", "baseline"), "baseline");
  EXPECT_EQ(f.get_int("n", 5), 5);
  EXPECT_FALSE(f.has("anything"));
}

TEST(Flags, ExplicitFalse) {
  const auto f = parse({"--report=false", "--x=0"});
  EXPECT_FALSE(f.get_bool("report", true));
  EXPECT_FALSE(f.get_bool("x", true));
}

// ---- report ------------------------------------------------------------------

TEST(Report, RendersAllSectionsForAllNodes) {
  sim::Engine engine;
  mpi::Machine machine(
      engine, workload::make_system_config(workload::NicMode::kAlpu128, 3));
  sim::ProcessPool pool(engine);
  pool.spawn([](mpi::Machine& m) -> sim::Process {
    co_await m.rank(0).send(1, 1, 64);
  }(machine));
  pool.spawn([](mpi::Machine& m) -> sim::Process {
    co_await m.rank(1).recv(0, 1, 64);
  }(machine));
  engine.run();
  ASSERT_TRUE(pool.all_done());

  const std::string report = workload::machine_report(machine);
  EXPECT_NE(report.find("--- NIC ---"), std::string::npos);
  EXPECT_NE(report.find("--- ALPU ---"), std::string::npos);
  EXPECT_NE(report.find("--- NIC memory ---"), std::string::npos);
  EXPECT_NE(report.find("--- network ---"), std::string::npos);
  EXPECT_NE(report.find("node2.unexpected"), std::string::npos);
}

TEST(Report, BaselineShowsDashesForMissingAlpus) {
  sim::Engine engine;
  mpi::Machine machine(
      engine, workload::make_system_config(workload::NicMode::kBaseline));
  const std::string report = workload::machine_report(machine);
  EXPECT_NE(report.find("node0.posted"), std::string::npos);
  // Dash cells mark absent units.
  EXPECT_NE(report.find("-"), std::string::npos);
}

}  // namespace
}  // namespace alpu
