// Tests for the stage-level pipelined ALPU, including the differential
// property: identical stimulus into the transaction-level Alpu and the
// PipelinedAlpu must produce identical response streams (timing may
// differ by the RTL's block-boundary insert bubbles; behaviour may not).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "alpu/alpu.hpp"
#include "alpu/pipelined.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace alpu::hw {
namespace {

using match::Envelope;
using match::make_recv_pattern;
using match::pack;

constexpr common::TimePs kCycle = 2'000;

class PipelinedTest : public ::testing::Test {
 protected:
  void make(std::size_t cells = 32, std::size_t block = 8) {
    PipelinedAlpuConfig cfg;
    cfg.total_cells = cells;
    cfg.block_size = block;
    cfg.clock = common::ClockPeriod{kCycle};
    unit = std::make_unique<PipelinedAlpu>(engine, "dut", cfg);
  }

  Response next_result(common::TimePs budget = 10'000'000) {
    const common::TimePs deadline = engine.now() + budget;
    while (!unit->result_available() && engine.now() < deadline) {
      engine.run_until(engine.now() + kCycle);
    }
    EXPECT_TRUE(unit->result_available());
    return *unit->pop_result();
  }

  void load(std::initializer_list<std::pair<match::Pattern, Cookie>> entries) {
    ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
    EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
    for (const auto& [p, c] : entries) {
      ASSERT_TRUE(unit->push_command({CommandKind::kInsert, p.bits, p.mask, c}));
    }
    ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
    engine.run_until(engine.now() + (8 + 4 * entries.size()) * kCycle);
  }

  sim::Engine engine;
  std::unique_ptr<PipelinedAlpu> unit;
};

TEST_F(PipelinedTest, MatchStagesFollowBlockCount) {
  make(256, 16);  // 16 blocks -> 2-cycle cross-block stage -> 7 total
  EXPECT_EQ(unit->match_stages(), 7u);
  make(256, 32);  // 8 blocks -> 6 total
  EXPECT_EQ(unit->match_stages(), 6u);
}

TEST_F(PipelinedTest, MatchLatencyEqualsStageCount) {
  make(256, 16);
  const auto p = make_recv_pattern(0, 1, 7);
  load({{p, 42}});
  const common::TimePs t0 = engine.now();
  ASSERT_TRUE(unit->push_probe({pack(Envelope{0, 1, 7}), 0, 1}));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchSuccess);
  EXPECT_EQ(r.cookie, 42u);
  // Accepted on the next edge after t0, completes 7 stages later.
  EXPECT_LE(r.issued_at - t0, (7 + 2) * kCycle);
  EXPECT_GE(r.issued_at - t0, 7 * kCycle);
}

TEST_F(PipelinedTest, DeleteCommitsOnTheDatapath) {
  make();
  const auto p = make_recv_pattern(0, 1, 7);
  load({{p, 1}, {p, 2}});
  ASSERT_TRUE(unit->push_probe({pack(Envelope{0, 1, 7}), 0, 1}));
  EXPECT_EQ(next_result().cookie, 1u);  // oldest
  EXPECT_EQ(unit->datapath().occupancy(), 1u);
  ASSERT_TRUE(unit->push_probe({pack(Envelope{0, 1, 7}), 0, 2}));
  EXPECT_EQ(next_result().cookie, 2u);
  ASSERT_TRUE(unit->push_probe({pack(Envelope{0, 1, 7}), 0, 3}));
  EXPECT_EQ(next_result().kind, ResponseKind::kMatchFailure);
}

TEST_F(PipelinedTest, HeldFailureReleasedByStopInsert) {
  make();
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  ASSERT_TRUE(unit->push_probe({pack(Envelope{0, 9, 9}), 0, 7}));
  engine.run_until(engine.now() + 50 * kCycle);
  EXPECT_FALSE(unit->result_available());  // held
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  const Response r = next_result();
  EXPECT_EQ(r.kind, ResponseKind::kMatchFailure);
  EXPECT_EQ(r.probe_seq, 7u);
}

TEST_F(PipelinedTest, EveryOtherCycleInsertPaceNeverBubbles) {
  // The design-point validation: at the paper's one-insert-per-two-
  // cycles pace, the compaction network always vacates cell 0 in time —
  // filling the whole array to capacity produces ZERO stalls.  (The raw
  // datapath driven at one insert per cycle DOES bubble at block
  // boundaries; see RtlAlpu.SustainedInsertRateIsBoundedBy...)
  make(32, 8);
  ASSERT_TRUE(unit->push_command({CommandKind::kStartInsert, 0, 0, 0}));
  EXPECT_EQ(next_result().kind, ResponseKind::kStartAck);
  const auto p = make_recv_pattern(0, 1, 1);
  for (Cookie c = 0; c < 32; ++c) {
    ASSERT_TRUE(unit->push_command({CommandKind::kInsert, p.bits, p.mask, c}));
  }
  ASSERT_TRUE(unit->push_command({CommandKind::kStopInsert, 0, 0, 0}));
  engine.run_until(engine.now() + 500 * kCycle);
  EXPECT_EQ(unit->datapath().occupancy(), 32u);
  EXPECT_EQ(unit->stats().inserts, 32u);
  EXPECT_EQ(unit->stats().inserts_dropped, 0u);
  EXPECT_EQ(unit->stats().insert_bubbles, 0u);
}

TEST_F(PipelinedTest, SleepsWhenIdle) {
  make();
  load({{make_recv_pattern(0, 1, 1), 1}});
  engine.run_until(engine.now() + 1'000 * kCycle);
  const auto events = engine.events_executed();
  engine.run_until(engine.now() + 10'000 * kCycle);
  EXPECT_LE(engine.events_executed() - events, 4u);
}

// ---- differential property against the transaction-level model -------------

struct Collected {
  std::vector<Response> responses;
};

class Differential
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(Differential, ResponseStreamsIdentical) {
  const auto [cells, block, seed] = GetParam();

  // One engine, both units, identical pushes at identical times.
  sim::Engine engine;
  AlpuConfig a_cfg;
  a_cfg.total_cells = cells;
  a_cfg.block_size = block;
  a_cfg.clock = common::ClockPeriod{kCycle};
  a_cfg.match_latency_cycles =
      cells / block >= 16 ? 7 : 6;  // align with the pipelined depth
  a_cfg.header_fifo_depth = 4096;
  a_cfg.command_fifo_depth = 4096;
  a_cfg.result_fifo_depth = 4096;
  Alpu txn(engine, "txn", a_cfg);

  PipelinedAlpuConfig p_cfg;
  p_cfg.total_cells = cells;
  p_cfg.block_size = block;
  p_cfg.clock = common::ClockPeriod{kCycle};
  p_cfg.header_fifo_depth = 4096;
  p_cfg.command_fifo_depth = 4096;
  p_cfg.result_fifo_depth = 4096;
  PipelinedAlpu pipe(engine, "pipe", p_cfg);

  // Protocol-shaped random stimulus: sessions with batches of inserts,
  // probes throughout, occasional resets.
  //
  // The two models drain their FIFOs in the same ORDER, so every
  // same-queue race converges (a probe racing a batch of inserts ends
  // with the same verdict by the hold/retry rule).  What is genuinely
  // timing-dependent is the interleaving BETWEEN the header and command
  // queues around a session boundary — real firmware quiesces there
  // (it reads one result per probe before starting a session; see
  // Nic::update_alpu's gating) — so the driver leaves a drain gap
  // before session-control commands.
  constexpr common::TimePs kDrainGap = 3'000 * kCycle;
  common::Xoshiro256 rng(seed);
  common::TimePs at = 0;
  std::size_t outstanding_inserts = 0;
  int sessions = 3 + static_cast<int>(rng.below(4));
  for (int s = 0; s < sessions; ++s) {
    // Pre-session probes.
    const auto probes = rng.below(8);
    for (std::uint64_t i = 0; i < probes; ++i) {
      at += rng.below(20) * kCycle;
      const Probe probe{pack(Envelope{
                            0, static_cast<std::uint32_t>(rng.below(3)),
                            static_cast<std::uint32_t>(rng.below(3))}),
                        0, at};
      engine.schedule_at(at, [&txn, &pipe, probe] {
        ASSERT_TRUE(txn.push_probe(probe));
        ASSERT_TRUE(pipe.push_probe(probe));
      });
    }
    // The session (after a quiesce gap; see above).
    at += kDrainGap + rng.below(30) * kCycle;
    engine.schedule_at(at, [&txn, &pipe] {
      ASSERT_TRUE(txn.push_command({CommandKind::kStartInsert, 0, 0, 0}));
      ASSERT_TRUE(pipe.push_command({CommandKind::kStartInsert, 0, 0, 0}));
    });
    const auto batch = rng.below(cells / 2);
    for (std::uint64_t i = 0;
         i < batch && outstanding_inserts + 4 < cells; ++i) {
      at += (1 + rng.below(6)) * kCycle;
      const auto pat = make_recv_pattern(
          0,
          rng.chance(0.3) ? std::nullopt
                          : std::optional<std::uint32_t>{
                                static_cast<std::uint32_t>(rng.below(3))},
          static_cast<std::uint32_t>(rng.below(3)));
      const Command cmd{CommandKind::kInsert, pat.bits, pat.mask,
                        static_cast<Cookie>(at / kCycle)};
      engine.schedule_at(at, [&txn, &pipe, cmd] {
        ASSERT_TRUE(txn.push_command(cmd));
        ASSERT_TRUE(pipe.push_command(cmd));
      });
      ++outstanding_inserts;
    }
    // Mid-session probes (some will be held and retried).
    const auto mid = rng.below(4);
    for (std::uint64_t i = 0; i < mid; ++i) {
      at += rng.below(8) * kCycle;
      const Probe probe{pack(Envelope{
                            0, static_cast<std::uint32_t>(rng.below(3)),
                            static_cast<std::uint32_t>(rng.below(3))}),
                        0, at + 1};
      engine.schedule_at(at, [&txn, &pipe, probe] {
        ASSERT_TRUE(txn.push_probe(probe));
        ASSERT_TRUE(pipe.push_probe(probe));
      });
    }
    at += (1 + rng.below(10)) * kCycle;
    engine.schedule_at(at, [&txn, &pipe] {
      ASSERT_TRUE(txn.push_command({CommandKind::kStopInsert, 0, 0, 0}));
      ASSERT_TRUE(pipe.push_command({CommandKind::kStopInsert, 0, 0, 0}));
    });
    if (rng.chance(0.2)) {
      at += kDrainGap + rng.below(10) * kCycle;
      engine.schedule_at(at, [&txn, &pipe] {
        ASSERT_TRUE(txn.push_command({CommandKind::kReset, 0, 0, 0}));
        ASSERT_TRUE(pipe.push_command({CommandKind::kReset, 0, 0, 0}));
      });
      outstanding_inserts = 0;
    }
    at += kDrainGap;  // quiesce before the next phase's probes
  }

  // Generous drain time (the pipelined model adds bubbles).
  engine.run_until(at + 100'000 * kCycle);

  std::vector<Response> from_txn, from_pipe;
  while (auto r = txn.pop_result()) from_txn.push_back(*r);
  while (auto r = pipe.pop_result()) from_pipe.push_back(*r);

  ASSERT_EQ(from_txn.size(), from_pipe.size());
  for (std::size_t i = 0; i < from_txn.size(); ++i) {
    EXPECT_EQ(from_txn[i].kind, from_pipe[i].kind) << "response " << i;
    EXPECT_EQ(from_txn[i].cookie, from_pipe[i].cookie) << "response " << i;
    EXPECT_EQ(from_txn[i].free_slots, from_pipe[i].free_slots)
        << "response " << i;
    EXPECT_EQ(from_txn[i].probe_seq, from_pipe[i].probe_seq)
        << "response " << i;
  }
  // And the arrays agree.
  EXPECT_EQ(pipe.datapath().occupancy(), txn.array().occupancy());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Differential,
    ::testing::Values(std::make_tuple(32, 8, 1), std::make_tuple(32, 16, 2),
                      std::make_tuple(64, 8, 3),
                      std::make_tuple(64, 16, 4),
                      std::make_tuple(128, 8, 5),
                      std::make_tuple(128, 16, 6),
                      std::make_tuple(256, 16, 7),
                      std::make_tuple(256, 32, 8)));

}  // namespace
}  // namespace alpu::hw
