// Unit tests for deterministic network fault injection and the NIC
// reliability sublayer driven over a faulty raw network.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "net/faults.hpp"
#include "net/network.hpp"
#include "nic/reliability.hpp"
#include "workload/chaos.hpp"

namespace alpu::net {
namespace {

using common::TimePs;

constexpr TimePs kHeaderSerialise = 32u * 500u;
constexpr TimePs kWire = 200'000;

NetworkConfig net_cfg() {
  return NetworkConfig{
      .wire_latency = kWire, .ps_per_byte = 500, .header_bytes = 32};
}

/// One delivery as the receiver saw it.
struct Seen {
  std::uint64_t token = 0;
  TimePs at = 0;
  bool crc_ok = true;

  friend bool operator==(const Seen&, const Seen&) = default;
};

/// Send `count` back-to-back header-only packets 0->1 at t=0 and return
/// the delivery log under `faults`.
std::vector<Seen> run_stream(const FaultConfig& faults, int count,
                             FaultStats* stats_out = nullptr) {
  sim::Engine engine;
  Network net(engine, net_cfg());
  net.install_faults(faults);
  std::vector<Seen> seen;
  net.attach(0, [](const Packet&) {});
  net.attach(1, [&](const Packet& p) {
    seen.push_back(Seen{p.token, engine.now(), p.crc_ok});
  });
  engine.schedule_at(0, [&] {
    for (int i = 1; i <= count; ++i) {
      Packet p;
      p.src = 0;
      p.dst = 1;
      p.token = static_cast<std::uint64_t>(i);
      net.send(p);
    }
  });
  engine.run();
  if (stats_out != nullptr) *stats_out = net.faults()->stats();
  return seen;
}

TEST(FaultInjector, ScriptedDropRemovesExactlyTheNthPacket) {
  FaultConfig cfg;
  cfg.script.push_back(ScriptedFault{FaultKind::kDrop, 0, 1,
                                     std::nullopt, 3});
  FaultStats stats;
  const auto seen = run_stream(cfg, 5, &stats);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].token, 1u);
  EXPECT_EQ(seen[1].token, 2u);
  EXPECT_EQ(seen[2].token, 4u);  // the 3rd never arrives
  EXPECT_EQ(seen[3].token, 5u);
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_EQ(stats.scripted_fired, 1u);
}

TEST(FaultInjector, ScriptedKindFilterCountsOnlyMatchingPackets) {
  // "Drop the 2nd CTS on link 0->1": eager traffic interleaved with CTS
  // packets must not advance the occurrence count.
  FaultConfig cfg;
  cfg.script.push_back(ScriptedFault{FaultKind::kDrop, 0, 1,
                                     PacketKind::kCtsRendezvous, 2});
  sim::Engine engine;
  Network net(engine, net_cfg());
  net.install_faults(cfg);
  std::vector<Packet> seen;
  net.attach(0, [](const Packet&) {});
  net.attach(1, [&](const Packet& p) { seen.push_back(p); });
  engine.schedule_at(0, [&] {
    for (int i = 1; i <= 6; ++i) {
      Packet p;
      p.src = 0;
      p.dst = 1;
      p.kind = (i % 2 == 0) ? PacketKind::kCtsRendezvous
                            : PacketKind::kEager;
      p.token = static_cast<std::uint64_t>(i);
      net.send(p);
    }
  });
  engine.run();
  // Token 4 is the second CTS; everything else arrives.
  ASSERT_EQ(seen.size(), 5u);
  for (const Packet& p : seen) EXPECT_NE(p.token, 4u);
  EXPECT_EQ(net.faults()->stats().drops, 1u);
}

TEST(FaultInjector, ScriptedDuplicateTailgatesTheOriginal) {
  FaultConfig cfg;
  cfg.script.push_back(ScriptedFault{FaultKind::kDuplicate, 0, 1,
                                     std::nullopt, 1});
  const auto seen = run_stream(cfg, 1);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].token, 1u);
  EXPECT_EQ(seen[1].token, 1u);
  // The link-layer replay arrives one header serialisation behind.
  EXPECT_EQ(seen[1].at - seen[0].at, kHeaderSerialise);
}

TEST(FaultInjector, ScriptedCorruptionClearsCrcOnly) {
  FaultConfig cfg;
  cfg.script.push_back(ScriptedFault{FaultKind::kCorrupt, 0, 1,
                                     std::nullopt, 2});
  const auto seen = run_stream(cfg, 3);
  ASSERT_EQ(seen.size(), 3u);  // corruption is flagged, not dropped
  EXPECT_TRUE(seen[0].crc_ok);
  EXPECT_FALSE(seen[1].crc_ok);
  EXPECT_TRUE(seen[2].crc_ok);
}

TEST(FaultInjector, ScriptedReorderLetsLaterTrafficOvertake) {
  FaultConfig cfg;
  cfg.reorder_window_ps = 1'000'000;
  cfg.script.push_back(ScriptedFault{FaultKind::kReorder, 0, 1,
                                     std::nullopt, 1});
  const auto seen = run_stream(cfg, 2);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].token, 2u);  // the held packet was overtaken
  EXPECT_EQ(seen[1].token, 1u);
}

TEST(FaultInjector, SameSeedIsByteIdentical) {
  FaultConfig cfg;
  cfg.drop_rate = 0.2;
  cfg.dup_rate = 0.1;
  cfg.reorder_rate = 0.1;
  cfg.corrupt_rate = 0.1;
  cfg.seed = 42;
  FaultStats a_stats;
  FaultStats b_stats;
  const auto a = run_stream(cfg, 200, &a_stats);
  const auto b = run_stream(cfg, 200, &b_stats);
  EXPECT_EQ(a, b);  // tokens, times, and CRC flags all identical
  EXPECT_EQ(a_stats.drops, b_stats.drops);
  EXPECT_EQ(a_stats.duplicates, b_stats.duplicates);
  EXPECT_EQ(a_stats.reorders, b_stats.reorders);
  EXPECT_EQ(a_stats.corruptions, b_stats.corruptions);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultConfig cfg;
  cfg.drop_rate = 0.2;
  cfg.seed = 1;
  const auto a = run_stream(cfg, 200);
  cfg.seed = 2;
  const auto b = run_stream(cfg, 200);
  EXPECT_NE(a, b);
}

TEST(FaultInjector, ScriptedOverlayDoesNotShiftRandomDraws) {
  // The fixed five-draw schedule means adding a scripted fault cannot
  // displace any random decision: the corruption pattern over the
  // surviving packets must be identical with and without the script.
  FaultConfig cfg;
  cfg.corrupt_rate = 0.3;
  cfg.seed = 7;
  const auto plain = run_stream(cfg, 100);
  cfg.script.push_back(ScriptedFault{FaultKind::kDrop, 0, 1,
                                     std::nullopt, 10});
  const auto scripted = run_stream(cfg, 100);
  ASSERT_EQ(plain.size(), 100u);
  ASSERT_EQ(scripted.size(), 99u);
  for (const Seen& s : scripted) {
    ASSERT_NE(s.token, 10u);
    // Same token, same CRC verdict as the un-scripted run.
    EXPECT_EQ(s.crc_ok, plain[s.token - 1].crc_ok) << s.token;
  }
}

// ---------------------------------------------------------------------------
// Reliability sublayer over a faulty raw network (no NIC, no MPI).
// ---------------------------------------------------------------------------

nic::ReliabilityConfig rel_cfg() {
  nic::ReliabilityConfig cfg;
  cfg.enabled = true;
  cfg.base_timeout_ps = 2'000'000;  // short: unit tests retry fast
  cfg.max_timeout_ps = 50'000'000;
  cfg.max_retries = 8;
  return cfg;
}

/// Two reliability endpoints over one faulty network; returns what node
/// 1's stack received, in order, plus both endpoints' stats.
struct Endpoints {
  sim::Engine engine;
  Network net{engine, net_cfg()};
  std::vector<std::uint64_t> delivered;  // tokens up node 1's stack
  nic::ReliabilityLayer tx;
  nic::ReliabilityLayer rx;

  explicit Endpoints(const FaultConfig& faults,
                     const nic::ReliabilityConfig& rel = rel_cfg())
      : tx(engine, "n0.rel", rel, net, 0, [](const Packet&) {}),
        rx(engine, "n1.rel", rel, net, 1, [this](const Packet& p) {
          delivered.push_back(p.token);
        }) {
    net.install_faults(faults);
    net.attach(0, [this](const Packet& p) { tx.on_network_delivery(p); });
    net.attach(1, [this](const Packet& p) { rx.on_network_delivery(p); });
  }

  void send_burst(int count, common::TimePs at = 0) {
    engine.schedule_at(at, [this, count] {
      for (int i = 1; i <= count; ++i) {
        Packet p;
        p.src = 0;
        p.dst = 1;
        p.token = static_cast<std::uint64_t>(i);
        tx.send(p);
      }
    });
  }
};

std::vector<std::uint64_t> in_order(int count) {
  std::vector<std::uint64_t> v;
  for (int i = 1; i <= count; ++i) v.push_back(static_cast<std::uint64_t>(i));
  return v;
}

TEST(Reliability, RecoversAScriptedDropByRetransmission) {
  FaultConfig faults;
  faults.script.push_back(ScriptedFault{FaultKind::kDrop, 0, 1,
                                        std::nullopt, 2});
  Endpoints ep(faults);
  ep.send_burst(4);
  ep.engine.run();
  EXPECT_EQ(ep.delivered, in_order(4));
  EXPECT_GE(ep.tx.stats().retransmits, 1u);
  EXPECT_GE(ep.tx.stats().timeouts, 1u);
  EXPECT_EQ(ep.tx.stats().link_failures, 0u);
  // The go-back-N resend re-covers packets 3 and 4, which the receiver
  // already holds or has delivered: they are discarded as duplicates.
  EXPECT_GE(ep.rx.stats().dup_drops + ep.rx.stats().ooo_buffered, 1u);
}

TEST(Reliability, DiscardsDuplicatesExactlyOnceInOrder) {
  FaultConfig faults;
  faults.script.push_back(ScriptedFault{FaultKind::kDuplicate, 0, 1,
                                        std::nullopt, 3});
  Endpoints ep(faults);
  ep.send_burst(5);
  ep.engine.run();
  EXPECT_EQ(ep.delivered, in_order(5));
  EXPECT_EQ(ep.rx.stats().dup_drops, 1u);
}

TEST(Reliability, DropsCorruptedPacketsAndRecovers) {
  FaultConfig faults;
  faults.script.push_back(ScriptedFault{FaultKind::kCorrupt, 0, 1,
                                        std::nullopt, 1});
  Endpoints ep(faults);
  ep.send_burst(3);
  ep.engine.run();
  EXPECT_EQ(ep.delivered, in_order(3));
  EXPECT_EQ(ep.rx.stats().crc_drops, 1u);
  EXPECT_GE(ep.tx.stats().retransmits, 1u);
}

TEST(Reliability, ReleasesReorderedPacketsInSequence) {
  FaultConfig faults;
  faults.reorder_window_ps = 1'000'000;
  faults.script.push_back(ScriptedFault{FaultKind::kReorder, 0, 1,
                                        std::nullopt, 1});
  Endpoints ep(faults);
  ep.send_burst(3);
  ep.engine.run();
  EXPECT_EQ(ep.delivered, in_order(3));
  EXPECT_GE(ep.rx.stats().ooo_buffered, 1u);
}

TEST(Reliability, BoundedRetriesDeclareLinkFailureAndDrain) {
  FaultConfig faults;
  faults.drop_rate = 1.0;  // nothing ever gets through
  Endpoints ep(faults);
  ep.send_burst(2);
  ep.engine.run();  // must terminate: no infinite retransmission
  EXPECT_TRUE(ep.delivered.empty());
  EXPECT_EQ(ep.tx.stats().link_failures, 1u);
  EXPECT_TRUE(ep.tx.any_link_failed());
  EXPECT_EQ(ep.tx.stats().timeouts, rel_cfg().max_retries);
  EXPECT_EQ(ep.tx.window_size(1), 0u);  // window discarded, not leaked
}

TEST(Reliability, SurvivesACompoundFaultStorm) {
  FaultConfig faults;
  faults.drop_rate = 0.10;
  faults.dup_rate = 0.05;
  faults.reorder_rate = 0.05;
  faults.corrupt_rate = 0.05;
  faults.reorder_window_ps = 500'000;
  faults.seed = 99;
  Endpoints ep(faults);
  ep.send_burst(100);
  ep.engine.run();
  EXPECT_EQ(ep.delivered, in_order(100));
  EXPECT_EQ(ep.tx.stats().link_failures, 0u);
}

// ---------------------------------------------------------------------------
// RNR-NACK flow control: a slot-limited receiver over a faulty link.
// ---------------------------------------------------------------------------

/// Minimal receiver-side admission control: a fixed number of envelope
/// slots, each held until the test's drain pump releases it.
struct SlotAdmission final : nic::EagerAdmission {
  std::uint32_t slots;
  std::uint32_t used = 0;
  std::uint32_t peak = 0;
  std::uint64_t refusals = 0;

  explicit SlotAdmission(std::uint32_t s) : slots(s) {}

  bool try_admit(const Packet&) override {
    if (used >= slots) {
      ++refusals;
      return false;
    }
    ++used;
    peak = std::max(peak, used);
    return true;
  }
  std::uint64_t credit_bytes() const override { return ~std::uint64_t{0}; }
  std::uint32_t credit_slots() const override { return slots - used; }
};

/// Endpoints plus a slot-limited receiver.  `pump` models the host
/// draining one admitted message every `hold_ps` (releasing its slot
/// and pushing a credit) until `expect` messages came up the stack.
struct RnrEndpoints : Endpoints {
  SlotAdmission admission;
  common::TimePs hold_ps;

  RnrEndpoints(const FaultConfig& faults, std::uint32_t slots,
               common::TimePs hold = 500'000,
               const nic::ReliabilityConfig& rel = rel_cfg())
      : Endpoints(faults, rel), admission(slots), hold_ps(hold) {
    rx.set_admission(&admission);
  }

  void pump(std::size_t expect) {
    engine.schedule_at(engine.now() + hold_ps, [this, expect] {
      if (admission.used > 0) {
        --admission.used;
        rx.notify_credit_released();
      }
      if (delivered.size() < expect || admission.used > 0) pump(expect);
    });
  }
};

TEST(RnrFlowControl, RefusalNacksHoldAndCreditWakeDeliverEverything) {
  FaultConfig clean;
  RnrEndpoints ep(clean, /*slots=*/2);
  ep.send_burst(16);
  ep.pump(16);
  ep.engine.run();
  EXPECT_EQ(ep.delivered, in_order(16));
  // The burst far exceeds two slots, so refusals and NACKs are certain…
  EXPECT_GT(ep.admission.refusals, 0u);
  EXPECT_GT(ep.rx.stats().rnr_nacks_tx, 0u);
  EXPECT_EQ(ep.rx.stats().rnr_nacks_tx, ep.tx.stats().rnr_nacks_rx);
  EXPECT_GT(ep.tx.stats().rnr_retries, 0u);
  // …and the drain pump's credit pushes wake the paused window.
  EXPECT_GT(ep.rx.stats().credit_acks_tx, 0u);
  // The budget held: never more slots in use than the receiver owns.
  EXPECT_LE(ep.admission.peak, 2u);
  EXPECT_EQ(ep.tx.stats().link_failures, 0u);
}

TEST(RnrFlowControl, NackDoesNotAdvanceExpectedSequence) {
  // One slot, never drained until after the first refusal round: the
  // refused packet must be re-offered by go-back-N and delivered
  // exactly once, in order — a NACK that advanced the cumulative ack
  // would lose it silently.
  FaultConfig clean;
  RnrEndpoints ep(clean, /*slots=*/1);
  ep.send_burst(4);
  ep.pump(4);
  ep.engine.run();
  EXPECT_EQ(ep.delivered, in_order(4));
  EXPECT_GT(ep.rx.stats().rnr_nacks_tx, 0u);
  EXPECT_EQ(ep.tx.stats().link_failures, 0u);
}

TEST(RnrFlowControl, CompoundFaultMatrixStaysExactlyOnce) {
  // RNR refusals crossed with every drop/dup/reorder combination: the
  // flow-control NACKs ride the same lossy wire as the data, so lost
  // NACKs, duplicated retries and reordered credits all occur.  Every
  // combination must still deliver exactly once, in order, within the
  // budget, with no link declared dead.
  for (const double drop : {0.0, 0.08}) {
    for (const double dup : {0.0, 0.05}) {
      for (const double reorder : {0.0, 0.05}) {
        FaultConfig faults;
        faults.drop_rate = drop;
        faults.dup_rate = dup;
        faults.reorder_rate = reorder;
        faults.reorder_window_ps = 500'000;
        faults.seed = 17;
        SCOPED_TRACE("drop=" + std::to_string(drop) +
                     " dup=" + std::to_string(dup) +
                     " reorder=" + std::to_string(reorder));
        RnrEndpoints ep(faults, /*slots=*/2);
        ep.send_burst(40);
        ep.pump(40);
        ep.engine.run();
        EXPECT_EQ(ep.delivered, in_order(40));
        EXPECT_GT(ep.rx.stats().rnr_nacks_tx, 0u);
        EXPECT_LE(ep.admission.peak, 2u);
        EXPECT_EQ(ep.tx.stats().link_failures, 0u);
      }
    }
  }
}

TEST(RnrFlowControl, WedgedReceiverFailsTheLinkAndDrains) {
  // No slots and no drain: the refusal streak must exhaust the bounded
  // retry budget and declare the link failed — the simulation drains
  // instead of NACK-ping-ponging forever.
  FaultConfig clean;
  RnrEndpoints ep(clean, /*slots=*/0);
  ep.send_burst(2);
  ep.engine.run();  // must terminate
  EXPECT_TRUE(ep.delivered.empty());
  EXPECT_EQ(ep.tx.stats().link_failures, 1u);
  EXPECT_EQ(ep.tx.window_size(1), 0u);  // window discarded, not leaked
  EXPECT_GT(ep.rx.stats().rnr_nacks_tx, 0u);
}

// ---------------------------------------------------------------------------
// Pooled buffers (PacketRing retransmit window / reserved reorder hold).
// ---------------------------------------------------------------------------

TEST(PacketRing, FifoOrderAcrossWraparoundAndGrowth) {
  nic::PacketRing ring;
  auto pkt = [](std::uint64_t token) {
    Packet p;
    p.token = token;
    return p;
  };
  EXPECT_TRUE(ring.push_back(pkt(0)));  // first push allocates
  std::uint64_t next_in = 1, next_out = 0;
  // Push/pop churn far past the capacity so head_ wraps repeatedly,
  // then force growths mid-stream; FIFO order must hold throughout.
  for (int round = 0; round < 200; ++round) {
    while (ring.size() < 5) ring.push_back(pkt(next_in++));
    EXPECT_EQ(ring.front().token, next_out);
    EXPECT_EQ(ring.at(ring.size() - 1).token, next_in - 1);
    ring.pop_front();
    ++next_out;
  }
  std::uint64_t growths = 0;
  while (ring.size() < 100) {
    if (ring.push_back(pkt(next_in++))) ++growths;
  }
  EXPECT_GT(growths, 0u);
  EXPECT_GE(ring.capacity(), 100u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).token, next_out + i);
  }
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_GE(ring.capacity(), 100u);  // clear keeps the pool
}

TEST(Reliability, PooledBuffersStopAllocatingAtSteadyState) {
  FaultConfig faults;
  faults.drop_rate = 0.08;
  faults.dup_rate = 0.04;
  faults.reorder_rate = 0.04;
  faults.corrupt_rate = 0.04;
  faults.seed = 7;
  Endpoints ep(faults);
  // Warm-up: the first burst grows the tx window ring to the burst size
  // and reserves the rx reorder buffer.
  ep.send_burst(64);
  ep.engine.run();
  ASSERT_EQ(ep.delivered, in_order(64));
  const std::uint64_t warm_tx = ep.tx.stats().buffer_allocs;
  const std::uint64_t warm_rx = ep.rx.stats().buffer_allocs;
  EXPECT_GT(warm_tx, 0u);   // the warm-up did allocate (ring growth)
  EXPECT_LE(warm_tx, 5u);   // ...but only log2-many times, not per packet
  EXPECT_LE(warm_rx, 1u);   // one reorder-buffer reservation

  // Steady state: ten more identical bursts through the same (faulty)
  // link, complete with retransmission storms — not one further buffer
  // allocation is allowed.
  for (int burst = 1; burst <= 10; ++burst) {
    ep.send_burst(64, ep.engine.now() + 1'000'000);
    ep.engine.run();
  }
  EXPECT_EQ(ep.delivered.size(), 64u * 11u);
  EXPECT_GT(ep.tx.stats().retransmits, 0u);
  EXPECT_EQ(ep.tx.stats().buffer_allocs, warm_tx);
  EXPECT_EQ(ep.rx.stats().buffer_allocs, warm_rx);
  EXPECT_EQ(ep.tx.stats().link_failures, 0u);
}

// ---------------------------------------------------------------------------
// Compound faults: SEU bit flips inside the ALPU crossed with network
// drop/dup/reorder.  The machine must stay exactly-once, in-order, and
// fully drained while parity detection, quarantine, and the firmware's
// scrub-and-rebuild recovery absorb the flips underneath the MPI
// traffic — and the verdict must not depend on the shard count.
// ---------------------------------------------------------------------------

workload::ChaosResult run_seu_chaos(double drop, double dup, double reorder,
                                    int shards) {
  workload::ChaosParams p;
  p.mode = workload::NicMode::kAlpu256;
  p.ranks = 4;
  p.per_pair = 6;
  p.seed = 3;
  p.faults.drop_rate = drop;
  p.faults.dup_rate = dup;
  p.faults.reorder_rate = reorder;
  p.faults.seed = 0x5eed;
  p.seu.rate = 5e-3;
  p.seu.seed = 0xFA17;
  p.seu.scrub_interval_ps = 50'000'000;  // 50 us
  p.shards = shards;
  return workload::run_chaos(p);
}

TEST(SeuChaos, CompoundFaultMatrixSurvivesBitFlips) {
  std::uint64_t injected = 0, detected = 0, rebuilt = 0;
  for (const double drop : {0.0, 0.05}) {
    for (const double dup : {0.0, 0.03}) {
      for (const double reorder : {0.0, 0.03}) {
        SCOPED_TRACE("drop=" + std::to_string(drop) +
                     " dup=" + std::to_string(dup) +
                     " reorder=" + std::to_string(reorder));
        const workload::ChaosResult r =
            run_seu_chaos(drop, dup, reorder, /*shards=*/1);
        EXPECT_TRUE(r.ok())
            << "completed=" << r.completed << " conserved=" << r.conserved
            << " ordered=" << r.ordered << " drained=" << r.drained
            << " link_failures=" << r.reliability.link_failures;
        injected += r.seu_injected;
        detected += r.parity_faults;
        rebuilt += r.rebuilds;
      }
    }
  }
  // The matrix as a whole must actually have exercised the machinery.
  EXPECT_GT(injected, 0u);
  EXPECT_GT(detected, 0u);
  EXPECT_GT(rebuilt, 0u);
}

TEST(SeuChaos, VerdictAndCountersAreShardInvariant) {
  const workload::ChaosResult base = run_seu_chaos(0.05, 0.02, 0.02, 1);
  ASSERT_TRUE(base.ok());
  EXPECT_GT(base.seu_injected, 0u);
  for (const int shards : {2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const workload::ChaosResult r = run_seu_chaos(0.05, 0.02, 0.02, shards);
    EXPECT_EQ(r.ok(), base.ok());
    EXPECT_EQ(r.sim_time, base.sim_time);
    EXPECT_EQ(r.messages, base.messages);
    EXPECT_EQ(r.seu_injected, base.seu_injected);
    EXPECT_EQ(r.parity_faults, base.parity_faults);
    EXPECT_EQ(r.scrub_sweeps, base.scrub_sweeps);
    EXPECT_EQ(r.rebuilds, base.rebuilds);
    EXPECT_EQ(r.seu_detect_latency_ps, base.seu_detect_latency_ps);
    EXPECT_EQ(r.fallback_resets, base.fallback_resets);
    EXPECT_EQ(r.reliability.retransmits, base.reliability.retransmits);
  }
}

TEST(SeuChaos, ShorterScrubIntervalTightensDetectionLatency) {
  // The scrub sweep is what bounds detection latency for corruption in
  // entries no probe happens to touch: sweeping 10x more often must
  // not worsen the mean injection-to-detection latency.
  const auto run_with_scrub = [](common::TimePs interval) {
    workload::ChaosParams p;
    p.mode = workload::NicMode::kAlpu256;
    p.ranks = 4;
    p.per_pair = 6;
    p.seed = 3;
    p.faults.drop_rate = 0.02;
    p.faults.seed = 0x5eed;
    p.seu.rate = 5e-3;
    p.seu.seed = 0xFA17;
    p.seu.scrub_interval_ps = interval;
    return workload::run_chaos(p);
  };
  const workload::ChaosResult fast = run_with_scrub(10'000'000);   // 10 us
  const workload::ChaosResult slow = run_with_scrub(100'000'000);  // 100 us
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_GT(fast.parity_faults, 0u);
  ASSERT_GT(slow.parity_faults, 0u);
  const double fast_mean =
      static_cast<double>(fast.seu_detect_latency_ps) /
      static_cast<double>(fast.parity_faults);
  const double slow_mean =
      static_cast<double>(slow.seu_detect_latency_ps) /
      static_cast<double>(slow.parity_faults);
  EXPECT_LE(fast_mean, slow_mean);
  // (Sweep counts are not comparable across the two runs: detection
  // changes the run length, and the idle-parking heuristic changes how
  // many sweeps an idle stretch costs.)
  EXPECT_GT(fast.scrub_sweeps, 0u);
  EXPECT_GT(slow.scrub_sweeps, 0u);
}

}  // namespace
}  // namespace alpu::net
