// Unit tests for the memory models: cache, DRAM, memory system, heap.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/memory_system.hpp"

namespace alpu::mem {
namespace {

// ---- Cache -----------------------------------------------------------------

CacheConfig small_cache() {
  // 1 KB, 64 B lines, 4-way => 16 lines, 4 sets.
  return CacheConfig{.size_bytes = 1024, .line_bytes = 64, .ways = 4};
}

TEST(Cache, ConfigDerivedQuantities) {
  const CacheConfig c = small_cache();
  EXPECT_EQ(c.num_lines(), 16u);
  EXPECT_EQ(c.num_sets(), 4u);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000 + 63, false).hit);  // same line
  EXPECT_FALSE(c.access(0x1000 + 64, false).hit);  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictsOldestWithinSet) {
  Cache c(small_cache());
  // 4 ways in set 0: lines with addresses stride num_sets*line = 256.
  for (Addr i = 0; i < 4; ++i) c.access(i * 256, false);
  // Touch line 0 again so line 1 becomes LRU.
  EXPECT_TRUE(c.access(0, false).hit);
  // A fifth line in the same set evicts line 1 (the true LRU).
  EXPECT_FALSE(c.access(4 * 256, false).hit);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1 * 256));
  EXPECT_TRUE(c.contains(2 * 256));
  EXPECT_TRUE(c.contains(3 * 256));
  EXPECT_TRUE(c.contains(4 * 256));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache c(small_cache());
  c.access(0, true);  // dirty line in set 0
  for (Addr i = 1; i <= 3; ++i) c.access(i * 256, false);
  const CacheAccess a = c.access(4 * 256, false);  // evicts addr 0
  EXPECT_FALSE(a.hit);
  EXPECT_TRUE(a.evicted_dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache c(small_cache());
  for (Addr i = 0; i <= 4; ++i) c.access(i * 256, false);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(small_cache());
  c.access(0, false);
  c.access(0, true);  // hit, now dirty
  for (Addr i = 1; i <= 4; ++i) c.access(i * 256, false);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache c(small_cache());
  c.access(0, false);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.access(0, false).hit);
}

TEST(Cache, DistinctSetsDoNotConflict) {
  Cache c(small_cache());
  // 8 lines across 4 sets: 2 per set, well under 4 ways.
  for (Addr i = 0; i < 8; ++i) c.access(i * 64, false);
  for (Addr i = 0; i < 8; ++i) EXPECT_TRUE(c.contains(i * 64));
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, HighAssociativityBehavesFullyAssociative) {
  // The NIC L1 shape from Table III: 32 KB, 64-way.
  Cache c(CacheConfig{.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 64});
  EXPECT_EQ(c.config().num_sets(), 8u);
  // Fill exactly to capacity; nothing evicts.
  for (Addr i = 0; i < 512; ++i) c.access(i * 64, false);
  EXPECT_EQ(c.stats().evictions, 0u);
  // One more line evicts exactly one.
  c.access(512 * 64, false);
  EXPECT_EQ(c.stats().evictions, 1u);
}

// ---- DRAM ------------------------------------------------------------------

DramConfig dram_cfg() {
  return DramConfig{.banks = 2,
                    .row_bytes = 1024,
                    .column_ps = 20'000,
                    .activate_ps = 25'000,
                    .precharge_ps = 20'000,
                    .data_beat_ps = 5'000};
}

TEST(Dram, FirstAccessActivatesRow) {
  Dram d(dram_cfg());
  // No row open: activate + column + beat (no precharge needed).
  EXPECT_EQ(d.access(0, 0), 25'000u + 20'000u + 5'000u);
  EXPECT_EQ(d.stats().row_misses, 1u);
}

TEST(Dram, RowHitIsCheap) {
  Dram d(dram_cfg());
  (void)d.access(0, 0);
  const common::TimePs t = d.access(64, 1'000'000);
  EXPECT_EQ(t, 20'000u + 5'000u);  // column + beat
  EXPECT_EQ(d.stats().row_hits, 1u);
}

TEST(Dram, RowConflictPaysPrecharge) {
  Dram d(dram_cfg());
  (void)d.access(0, 0);
  // Same bank, different row: rows interleave across banks, so row 0 and
  // row 2 of the address space share bank 0.
  const common::TimePs t = d.access(2 * 1024, 1'000'000);
  EXPECT_EQ(t, 20'000u + 25'000u + 20'000u + 5'000u);
  EXPECT_EQ(d.stats().row_misses, 2u);
}

TEST(Dram, BusyBankQueuesAccess) {
  Dram d(dram_cfg());
  const common::TimePs t1 = d.access(0, 0);
  // Immediately access the same bank again: must wait for the first.
  const common::TimePs t2 = d.access(64, 0);
  EXPECT_EQ(t2, t1 + 20'000u + 5'000u);  // wait + row hit
  EXPECT_EQ(d.stats().stalled_accesses, 1u);
}

TEST(Dram, DifferentBanksProceedInParallel) {
  Dram d(dram_cfg());
  (void)d.access(0, 0);          // bank 0
  const common::TimePs t = d.access(1024, 0);  // row 1 -> bank 1
  EXPECT_EQ(t, 25'000u + 20'000u + 5'000u);    // no stall
  EXPECT_EQ(d.stats().stalled_accesses, 0u);
}

// ---- MemorySystem ----------------------------------------------------------

MemorySystemConfig nic_mem() {
  return MemorySystemConfig{
      .l1 = {.size_bytes = 1024, .line_bytes = 64, .ways = 4},
      .l1_hit_ps = 4'000,
      .l2 = std::nullopt,
      .l2_hit_ps = 0,
      .backend_ps = 50'000,
      .use_dram = false,
      .dram = {},
  };
}

TEST(MemorySystem, HitAndMissCosts) {
  MemorySystem m(nic_mem());
  EXPECT_EQ(m.load(0, 0), 4'000u + 50'000u);  // cold miss
  EXPECT_EQ(m.load(0, 0), 4'000u);            // hit
  EXPECT_EQ(m.stats().loads, 2u);
}

TEST(MemorySystem, TouchRangeCountsLines) {
  MemorySystem m(nic_mem());
  // 128 bytes spanning exactly 2 lines: two cold misses.
  EXPECT_EQ(m.touch_range(0, 128, 0, false), 2 * (4'000u + 50'000u));
  // Again: two hits.
  EXPECT_EQ(m.touch_range(0, 128, 0, false), 2 * 4'000u);
  // Unaligned 4-byte touch crossing a line boundary: 2 lines.
  EXPECT_EQ(m.touch_range(62, 4, 0, false), 2 * 4'000u);
}

TEST(MemorySystem, TouchRangeZeroBytesTouchesOneLine) {
  MemorySystem m(nic_mem());
  EXPECT_EQ(m.touch_range(0, 0, 0, false), 4'000u + 50'000u);
}

TEST(MemorySystem, L2AbsorbsL1Misses) {
  MemorySystemConfig cfg = nic_mem();
  cfg.l2 = CacheConfig{.size_bytes = 4096, .line_bytes = 64, .ways = 8};
  cfg.l2_hit_ps = 10'000;
  MemorySystem m(cfg);
  (void)m.load(0, 0);  // cold: L1 miss, L2 miss, backend
  m.l1_mutable().flush();
  // L1 miss but L2 hit: no backend charge.
  EXPECT_EQ(m.load(0, 0), 4'000u + 10'000u);
}

TEST(MemorySystem, DramBackendAddsRowTiming) {
  MemorySystemConfig cfg = nic_mem();
  cfg.use_dram = true;
  cfg.dram = dram_cfg();
  cfg.backend_ps = 10'000;
  MemorySystem m(cfg);
  const auto t = m.load(0, 0);
  EXPECT_EQ(t, 4'000u + 10'000u + (25'000u + 20'000u + 5'000u));
}

TEST(MemorySystem, FlushRestoresColdBehaviour) {
  MemorySystem m(nic_mem());
  (void)m.load(0, 0);
  m.flush();
  EXPECT_EQ(m.load(0, 0), 4'000u + 50'000u);
}

// ---- SimHeap ---------------------------------------------------------------

TEST(SimHeap, AllocatesAlignedNonOverlapping) {
  SimHeap heap(0x1000);
  const Addr a = heap.alloc(100, 64);
  const Addr b = heap.alloc(10, 64);
  const Addr c = heap.alloc(1, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 10);
  EXPECT_GE(heap.bytes_used(), 100u + 10u + 1u);
}

TEST(SimHeap, RespectsBase) {
  SimHeap heap(0x8000'0000);
  EXPECT_GE(heap.alloc(8), 0x8000'0000u);
}

}  // namespace
}  // namespace alpu::mem
