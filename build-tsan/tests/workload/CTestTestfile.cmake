# CMake generated Testfile for 
# Source directory: /root/repo/tests/workload
# Build directory: /root/repo/build-tsan/tests/workload
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/workload/test_sweep[1]_include.cmake")
