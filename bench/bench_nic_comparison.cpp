// NIC-class comparison: the Section VI-B Elan4 remark, quantified.
//
// "For a Quadrics Elan4 NIC, each entry traversed adds 150 ns of
// latency.  The 10x performance improvement is not surprising because
// the NIC being modeled has a significantly faster clock (2.5x), is
// dual issue, and has separate 32 KB instruction and data caches."
//
// This bench runs the Figure-5 preposted sweep on three NICs — an
// Elan4-class embedded processor, the paper's Red-Storm-class processor,
// and the same processor with a 256-entry ALPU — and extracts the
// per-entry traversal cost of each.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

double latency_ns(std::optional<mpi::SystemConfig> system, NicMode mode,
                  std::size_t len) {
  workload::PrepostedParams p;
  p.mode = mode;
  p.system = std::move(system);
  p.queue_length = len;
  p.fraction_traversed = 1.0;
  return common::to_ns(workload::run_preposted(p).latency);
}

}  // namespace

int main() {
  std::printf("=== embedded-NIC class comparison (Section VI-B) ===\n\n");

  const std::vector<std::size_t> lengths = {0, 10, 25, 50, 100, 150, 200};
  common::TextTable t;
  t.set_header({"queue_length", "elan4-class (ns)", "red-storm-class (ns)",
                "+alpu256 (ns)"});
  std::vector<double> elan, rs, alpu;
  for (std::size_t len : lengths) {
    elan.push_back(
        latency_ns(workload::make_elan4_like_config(), NicMode::kBaseline,
                   len));
    rs.push_back(latency_ns(std::nullopt, NicMode::kBaseline, len));
    alpu.push_back(latency_ns(std::nullopt, NicMode::kAlpu256, len));
    t.add_row({std::to_string(len), common::fmt_double(elan.back(), 0),
               common::fmt_double(rs.back(), 0),
               common::fmt_double(alpu.back(), 0)});
  }
  std::printf("%s\n", t.render().c_str());

  const double elan_slope = (elan.back() - elan.front()) / 200.0;
  const double rs_slope = (rs.back() - rs.front()) / 200.0;
  const double alpu_slope = (alpu.back() - alpu.front()) / 200.0;
  std::printf("per-entry traversal cost:\n");
  std::printf("  elan4-class     : %6.1f ns/entry (paper: ~150)\n", elan_slope);
  std::printf("  red-storm-class : %6.1f ns/entry (paper: ~15; '10x')\n",
              rs_slope);
  std::printf("  + alpu256       : %6.2f ns/entry (flat)\n", alpu_slope);
  std::printf("  elan4 / red-storm ratio: %.1fx (paper: 10x)\n",
              elan_slope / rs_slope);
  return 0;
}
