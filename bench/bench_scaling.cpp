// Job-size scaling (the Section II claim behind the whole design).
//
// "The length of the list can grow linearly with the number of
// processes in the parallel application [8][9]."  This bench builds the
// canonical case: every rank pre-posts one receive per peer (wild tags,
// explicit sources — the all-to-all exchange setup), then peers deliver
// in a staggered order so matches land mid-list.  Per-message latency at
// the busiest rank is reported against job size, for the baseline NIC
// and both ALPU sizes.
//
// Each (ranks, mode) cell is an independent fresh-machine run, computed
// on the parallel sweep pool (--jobs N; --quick for the CI grid).
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"
#include "workload/sweep.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

/// Drain window timestamps, written by the rank-0 coroutine.  A local
/// per-run struct (the earlier file-static pair raced under parallel
/// sweeps).
struct Window {
  common::TimePs t0 = 0;
  common::TimePs t1 = 0;
};

/// All-to-one exchange: rank 0 pre-posts `fan_in` receives per peer,
/// peers send in reverse-tag order (deep traversals), time to drain.
common::TimePs run_fan_in(NicMode mode, int nprocs, int per_peer) {
  sim::Engine engine;
  mpi::Machine machine(engine, workload::make_system_config(mode, nprocs));
  sim::ProcessPool pool(engine);
  Window window;

  pool.spawn([](mpi::Machine& m, int n, int k, Window& w) -> sim::Process {
    std::vector<mpi::Request> recvs;
    // Pre-post everything: queue depth = (n-1) * k.
    for (int tag = 0; tag < k; ++tag) {
      for (int src = 1; src < n; ++src) {
        recvs.push_back(m.rank(0).irecv(src, tag, 256));
      }
    }
    for (int src = 1; src < n; ++src) {
      co_await m.rank(0).send(src, 999, 0);  // release the peers
    }
    w.t0 = m.engine().now();
    co_await m.rank(0).waitall(std::move(recvs));
    w.t1 = m.engine().now();
  }(machine, nprocs, per_peer, window));

  for (int src = 1; src < nprocs; ++src) {
    pool.spawn([](mpi::Machine& m, int self, int k) -> sim::Process {
      co_await m.rank(self).recv(0, 999, 0);
      // Reverse tag order: each message traverses the still-posted
      // earlier-tag entries — the deep-search regime.
      for (int tag = k - 1; tag >= 0; --tag) {
        co_await m.rank(self).send(0, tag, 256);
      }
    }(machine, src, per_peer));
  }

  engine.run();
  if (!pool.all_done()) {
    std::fprintf(stderr, "fan-in deadlocked\n");
    std::abort();
  }
  return window.t1 - window.t0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const bool quick = flags.has_value() && flags->get_bool("quick");
  workload::SweepOptions sweep;
  sweep.jobs = flags.has_value()
                   ? static_cast<int>(flags->get_int("jobs", 0))
                   : 0;

  constexpr int kPerPeer = 16;
  std::printf("=== queue length scales with job size (Section II) ===\n");
  std::printf("(all-to-one: rank 0 pre-posts %d receives per peer; peers\n"
              " deliver reverse-ordered; drain time per message at rank 0)\n\n",
              kPerPeer);

  const std::vector<int> sizes =
      quick ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 8, 16, 24};
  const std::vector<NicMode> modes = {NicMode::kBaseline, NicMode::kAlpu128,
                                      NicMode::kAlpu256};

  struct Cell {
    NicMode mode;
    int nprocs;
  };
  std::vector<Cell> cells;
  cells.reserve(sizes.size() * modes.size());
  for (int n : sizes) {
    for (NicMode mode : modes) {
      cells.push_back({mode, n});
    }
  }
  const std::vector<double> ns_per_msg = workload::sweep_map(
      cells,
      [](const Cell& cell) {
        const double msgs =
            static_cast<double>((cell.nprocs - 1) * kPerPeer);
        return common::to_ns(run_fan_in(cell.mode, cell.nprocs, kPerPeer)) /
               msgs;
      },
      sweep);

  common::TextTable t;
  t.set_header({"ranks", "posted Q depth", "baseline ns/msg",
                "alpu128 ns/msg", "alpu256 ns/msg", "speedup (256)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double base = ns_per_msg[i * 3 + 0];
    const double a128 = ns_per_msg[i * 3 + 1];
    const double a256 = ns_per_msg[i * 3 + 2];
    t.add_row({std::to_string(sizes[i]),
               std::to_string((sizes[i] - 1) * kPerPeer),
               common::fmt_double(base, 1), common::fmt_double(a128, 1),
               common::fmt_double(a256, 1),
               common::fmt_double(base / a256, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: the baseline's per-message cost grows with job\n"
              "size because every arrival traverses a queue proportional\n"
              "to the number of peers; the ALPU holds it flat until the\n"
              "queue outgrows the array.\n");
  return 0;
}
