// Job-size scaling (the Section II claim behind the whole design).
//
// "The length of the list can grow linearly with the number of
// processes in the parallel application [8][9]."  This bench builds the
// canonical case: every rank pre-posts one receive per peer (wild tags,
// explicit sources — the all-to-all exchange setup), then peers deliver
// in a staggered order so matches land mid-list.  Per-message latency at
// the busiest rank is reported against job size, for the baseline NIC
// and both ALPU sizes.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

/// All-to-one exchange: rank 0 pre-posts `fan_in` receives per peer,
/// peers send in reverse-tag order (deep traversals), time to drain.
common::TimePs run_fan_in(NicMode mode, int nprocs, int per_peer) {
  sim::Engine engine;
  mpi::Machine machine(engine, workload::make_system_config(mode, nprocs));
  sim::ProcessPool pool(engine);
  static common::TimePs t0, t1;

  pool.spawn([](mpi::Machine& m, int n, int k) -> sim::Process {
    std::vector<mpi::Request> recvs;
    // Pre-post everything: queue depth = (n-1) * k.
    for (int tag = 0; tag < k; ++tag) {
      for (int src = 1; src < n; ++src) {
        recvs.push_back(m.rank(0).irecv(src, tag, 256));
      }
    }
    for (int src = 1; src < n; ++src) {
      co_await m.rank(0).send(src, 999, 0);  // release the peers
    }
    t0 = m.engine().now();
    co_await m.rank(0).waitall(std::move(recvs));
    t1 = m.engine().now();
  }(machine, nprocs, per_peer));

  for (int src = 1; src < nprocs; ++src) {
    pool.spawn([](mpi::Machine& m, int self, int k) -> sim::Process {
      co_await m.rank(self).recv(0, 999, 0);
      // Reverse tag order: each message traverses the still-posted
      // earlier-tag entries — the deep-search regime.
      for (int tag = k - 1; tag >= 0; --tag) {
        co_await m.rank(self).send(0, tag, 256);
      }
    }(machine, src, per_peer));
  }

  engine.run();
  if (!pool.all_done()) {
    std::fprintf(stderr, "fan-in deadlocked\n");
    std::abort();
  }
  return t1 - t0;
}

}  // namespace

int main() {
  constexpr int kPerPeer = 16;
  std::printf("=== queue length scales with job size (Section II) ===\n");
  std::printf("(all-to-one: rank 0 pre-posts %d receives per peer; peers\n"
              " deliver reverse-ordered; drain time per message at rank 0)\n\n",
              kPerPeer);

  common::TextTable t;
  t.set_header({"ranks", "posted Q depth", "baseline ns/msg",
                "alpu128 ns/msg", "alpu256 ns/msg", "speedup (256)"});
  for (int n : {2, 4, 8, 16, 24}) {
    const double msgs = static_cast<double>((n - 1) * kPerPeer);
    const double base =
        common::to_ns(run_fan_in(NicMode::kBaseline, n, kPerPeer)) / msgs;
    const double a128 =
        common::to_ns(run_fan_in(NicMode::kAlpu128, n, kPerPeer)) / msgs;
    const double a256 =
        common::to_ns(run_fan_in(NicMode::kAlpu256, n, kPerPeer)) / msgs;
    t.add_row({std::to_string(n), std::to_string((n - 1) * kPerPeer),
               common::fmt_double(base, 1), common::fmt_double(a128, 1),
               common::fmt_double(a256, 1),
               common::fmt_double(base / a256, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: the baseline's per-message cost grows with job\n"
              "size because every arrival traverses a queue proportional\n"
              "to the number of peers; the ALPU holds it flat until the\n"
              "queue outgrows the array.\n");
  return 0;
}
