// Eager/rendezvous protocol study.
//
// The simulated MPI (like the Red Storm implementation it models)
// switches from eager delivery to a rendezvous (RTS/CTS/DATA) handshake
// at a size threshold.  This bench maps latency across message sizes
// for several thresholds, exposing the crossover: below it, eager saves
// a round trip; above it, rendezvous avoids landing large payloads in
// bounce buffers.  It also shows the threshold interacting with the
// unexpected queue — unexpected EAGER messages hold payload hostage in
// NIC memory, while unexpected RTS entries are tiny.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

double pingpong_us(std::uint32_t threshold, std::uint32_t bytes) {
  auto cfg = workload::make_system_config(NicMode::kBaseline);
  cfg.nic.eager_threshold = threshold;
  // run_pingpong has no config override; emulate via preposted with L=0,
  // which is a clean one-way latency measurement.
  workload::PrepostedParams p;
  p.mode = NicMode::kBaseline;
  p.system = cfg;
  p.queue_length = 0;
  p.message_bytes = bytes;
  return common::to_us(workload::run_preposted(p).latency);
}

}  // namespace

int main() {
  std::printf("=== eager/rendezvous crossover ===\n");
  std::printf("(one-way latency, empty queues, baseline NIC)\n\n");

  const std::vector<std::uint32_t> sizes = {0,    256,   1024,  4096,
                                            8192, 16384, 32768, 65536};
  const std::vector<std::uint32_t> thresholds = {1024, 16384, 262144};

  common::TextTable t;
  std::vector<std::string> header{"bytes"};
  for (auto th : thresholds) {
    header.push_back("thr=" + std::to_string(th) + " (us)");
  }
  t.set_header(std::move(header));
  for (auto bytes : sizes) {
    std::vector<std::string> row{std::to_string(bytes)};
    for (auto th : thresholds) {
      row.push_back(common::fmt_double(pingpong_us(th, bytes), 2));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading: with a low threshold, mid-size messages pay the RTS/CTS\n"
      "round trip (one extra wire+NIC traversal each way); with an\n"
      "always-eager threshold they go straight through.  The crossover\n"
      "would move left on a machine where bounce-buffer copies were\n"
      "costlier than this model's DMA path.\n");
  return 0;
}
