// Tables IV and V reproduction: ALPU prototype sizes and speeds.
//
// Runs the structural area/timing estimator over the paper's twelve
// configurations ({256,128} cells x block {8,16,32}, both flavours,
// match width 42, tag width 16, mask bit per match bit) and prints the
// estimate next to the published Xilinx numbers with per-cell error.
// Also prints the Section VI-A ASIC projection (conservative 5x).
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "fpga/area_model.hpp"

namespace {

using namespace alpu;

double pct_err(double model, double paper) {
  return 100.0 * (model - paper) / paper;
}

void run_table(const char* title, hw::AlpuFlavor flavor,
               const std::vector<fpga::PublishedRow>& published) {
  std::printf("=== %s ===\n", title);
  common::TextTable t;
  t.set_header({"cells", "block", "LUTs", "(paper)", "err%", "FFs",
                "(paper)", "err%", "slices", "(paper)", "err%", "MHz",
                "(paper)", "lat", "(paper)", "ASIC MHz"});
  for (const fpga::PublishedRow& row : published) {
    fpga::PrototypeParams p;
    p.flavor = flavor;
    p.total_cells = row.total_cells;
    p.block_size = row.block_size;
    const fpga::SynthesisEstimate est = fpga::estimate(p);
    t.add_row({std::to_string(row.total_cells), std::to_string(row.block_size),
               std::to_string(est.luts), std::to_string(row.luts),
               common::fmt_double(pct_err(static_cast<double>(est.luts),
                                          static_cast<double>(row.luts)), 1),
               std::to_string(est.flip_flops), std::to_string(row.flip_flops),
               common::fmt_double(
                   pct_err(static_cast<double>(est.flip_flops),
                           static_cast<double>(row.flip_flops)), 1),
               std::to_string(est.slices), std::to_string(row.slices),
               common::fmt_double(pct_err(static_cast<double>(est.slices),
                                          static_cast<double>(row.slices)), 1),
               common::fmt_double(est.clock_mhz, 1),
               common::fmt_double(row.clock_mhz, 1),
               std::to_string(est.pipeline_latency),
               std::to_string(row.pipeline_latency),
               common::fmt_double(est.asic_clock_mhz, 0)});
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  run_table("Table IV: Posted Receives ALPU prototypes",
            hw::AlpuFlavor::kPostedReceive, fpga::published_table4());
  run_table("Table V: Unexpected Messages ALPU prototypes",
            hw::AlpuFlavor::kUnexpected, fpga::published_table5());

  std::printf("Section VI-A claim: as an ASIC (conservative 5x over the\n"
              "-5 Virtex-II Pro) every configuration reaches ~500 MHz, the\n"
              "Red Storm NIC core-logic speed.\n\n");

  // Beyond the paper: how a bigger unit would cost out (the Figure 5/6
  // curves say capacity is the one knob that matters once queues deepen).
  std::printf("=== projection: larger posted-receive units ===\n");
  common::TextTable proj;
  proj.set_header({"cells", "block", "LUTs", "FFs", "slices",
                   "% of V2P100 slices", "MHz", "lat"});
  for (std::size_t cells : {512ul, 1024ul}) {
    for (std::size_t block : {16ul, 32ul}) {
      fpga::PrototypeParams p;
      p.total_cells = cells;
      p.block_size = block;
      const auto est = fpga::estimate(p);
      // The XC2VP100 has 44,096 slices (the paper's 256-cell unit used
      // ~35% of them).
      proj.add_row({std::to_string(cells), std::to_string(block),
                    std::to_string(est.luts), std::to_string(est.flip_flops),
                    std::to_string(est.slices),
                    common::fmt_double(100.0 * static_cast<double>(est.slices) /
                                           44'096.0, 1),
                    common::fmt_double(est.clock_mhz, 1),
                    std::to_string(est.pipeline_latency)});
    }
  }
  std::printf("%s", proj.render().c_str());
  std::printf("(a 512-cell unit still fits an FPGA of the era; 1024 cells\n"
              " exceeds the V2P100 — ASIC territory, as the paper implies)\n");
  return 0;
}
