// bench_engine — wall-clock throughput of the DES kernel and the
// conservative-parallel ShardGroup.
//
// Three measurements:
//
//   * engine churn: a bare Engine burning through self-rescheduling
//     event chains — the events/s ceiling of the slot-pool kernel with
//     no simulation model attached;
//   * machine rate: kernel events/s of a full 16-node all-to-all chaos
//     machine (NICs, ALPUs, MPI coroutines) on a single engine — what
//     sweep throughput is actually made of;
//   * shard speedup: the same 16-node machine at --shards N (default 8)
//     vs. 1 shard, wall-clock ratio.  The simulated results are
//     byte-identical by construction (the determinism tests enforce
//     it); this measures only how much wall time the window parallelism
//     buys.  On a single-CPU host the ratio sits near (or below) 1 —
//     it is reported, never gated.
//
//   bench_engine [--iters N] [--shards N] [--ranks N] [--json <path>]
//
// `--json` emits the machine-parsable block scripts/bench_report.py
// --suite engine consumes and gates (events/s, slowdown-only).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "sim/engine.hpp"
#include "workload/chaos.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Raw kernel churn: `chains` interleaved self-rescheduling events until
/// `total` events have fired.  Returns events per wall-clock second.
double measure_engine_churn(std::uint64_t total) {
  using alpu::common::TimePs;
  alpu::sim::Engine engine;
  constexpr std::uint64_t kChains = 64;
  std::uint64_t remaining = total;
  struct Chain {
    alpu::sim::Engine* engine;
    std::uint64_t* remaining;
    TimePs step;
    void fire() {
      if (*remaining == 0) return;
      --*remaining;
      engine->schedule_in(step, [this] { fire(); });
    }
  };
  std::vector<Chain> chains(kChains);
  for (std::uint64_t c = 0; c < kChains; ++c) {
    chains[c] = Chain{&engine, &remaining, 1 + c % 7};
    engine.schedule_at(c, [&chains, c] { chains[c].fire(); });
  }
  const auto t0 = Clock::now();
  engine.run();
  const auto t1 = Clock::now();
  return static_cast<double>(engine.events_executed()) /
         (elapsed_ns(t0, t1) * 1e-9);
}

struct MachineRate {
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  double seconds = 0.0;
};

/// Kernel events/s of the balanced 16-node all-to-all machine (fault
/// free — pure forward-progress traffic) at a given shard count.
MachineRate measure_machine(int ranks, int per_pair, int shards,
                            int repeats) {
  MachineRate r;
  const auto t0 = Clock::now();
  for (int i = 0; i < repeats; ++i) {
    alpu::workload::ChaosParams p;
    p.mode = alpu::workload::NicMode::kAlpu256;
    p.ranks = ranks;
    p.per_pair = per_pair;
    p.seed = 3;
    p.shards = shards;
    const alpu::workload::ChaosResult res = alpu::workload::run_chaos(p);
    if (!res.ok()) {
      std::fprintf(stderr, "bench machine run failed its own checks\n");
      std::exit(1);
    }
    r.events += res.events_executed;
  }
  const auto t1 = Clock::now();
  r.seconds = elapsed_ns(t0, t1) * 1e-9;
  r.events_per_sec = static_cast<double>(r.events) / r.seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags_opt = alpu::common::Flags::parse(argc, argv);
  if (!flags_opt.has_value()) {
    std::fprintf(stderr,
                 "usage: bench_engine [--iters N] [--shards N] [--ranks N]"
                 " [--json <path>]\n");
    return 2;
  }
  const alpu::common::Flags& flags = *flags_opt;
  const auto iters =
      static_cast<std::uint64_t>(flags.get_int("iters", 2'000'000));
  const int shards = static_cast<int>(flags.get_int("shards", 8));
  const int ranks = static_cast<int>(flags.get_int("ranks", 16));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));

  const double churn = measure_engine_churn(iters);
  std::printf("engine churn:        %12.0f events/s (%llu events)\n", churn,
              static_cast<unsigned long long>(iters));

  const MachineRate serial = measure_machine(ranks, 4, 1, repeats);
  std::printf("machine (1 shard):   %12.0f events/s (%llu events, %.2fs)\n",
              serial.events_per_sec,
              static_cast<unsigned long long>(serial.events), serial.seconds);

  const MachineRate sharded = measure_machine(ranks, 4, shards, repeats);
  const double speedup = sharded.seconds > 0.0
                             ? serial.seconds / sharded.seconds
                             : 0.0;
  std::printf("machine (%d shards): %12.0f events/s (%.2fs)\n", shards,
              sharded.events_per_sec, sharded.seconds);
  std::printf("shard speedup:       %.2fx wall-clock (informational; needs"
              " >= %d cores to mean anything)\n",
              speedup, shards);

  if (flags.has("json")) {
    const std::string path = flags.get("json", "");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"engine\",\n");
    std::fprintf(f, "  \"iters\": %llu,\n",
                 static_cast<unsigned long long>(iters));
    std::fprintf(f, "  \"ranks\": %d,\n  \"shards\": %d,\n", ranks, shards);
    std::fprintf(f, "  \"engine_events_per_sec\": %.0f,\n", churn);
    std::fprintf(f, "  \"machine_events_per_sec\": %.0f,\n",
                 serial.events_per_sec);
    std::fprintf(f, "  \"sharded_events_per_sec\": %.0f,\n",
                 sharded.events_per_sec);
    std::fprintf(f, "  \"shard_speedup\": %.3f\n}\n", speedup);
    std::fclose(f);
  }
  return 0;
}
