// Application-shaped queue behaviour (the [8][9] motivation studies).
//
// The paper's case rests on measurements that real applications build
// queues of tens to hundreds of entries with heavy MPI_ANY_SOURCE use.
// This bench replays synthetic application profiles through the
// matching structures and reports the queue-depth and search-depth
// distributions those studies describe — the statistics that decide how
// much an ALPU of a given size helps — plus the modelled firmware time
// per operation for the software list vs. the ALPU.
//
// Traffic is PAIRED the way real communication is: most arrivals are
// messages some posted receive is waiting for, and most posts are for
// messages already in flight — a free random walk would grow the queues
// without bound, which is not what [8][9] measured.  A working-depth
// regulator supplies the pairing pressure.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workload/trace.hpp"

namespace {

using namespace alpu;

struct Profile {
  const char* name;
  std::size_t target_depth;  ///< regulated working queue depth
  double p_wildcard_source;
  std::uint32_t sources;
  std::uint32_t tags;
  std::uint64_t seed;
};

constexpr double kPerEntryNs = 14.0;
constexpr double kAlpuAnswerNs = 84.0;
constexpr std::size_t kOps = 50'000;

/// Paired-traffic generator over a ReferenceQueues instance.
class AppTraffic {
 public:
  AppTraffic(const Profile& profile, workload::ReferenceQueues& queues)
      : profile_(profile), queues_(queues), rng_(profile.seed) {}

  workload::TraceOp next() {
    const std::size_t pq = queues_.posted().size();
    const std::size_t uq = queues_.unexpected().size();
    // Backstop: never let early-arrival noise accumulate without bound.
    if (uq > profile_.target_depth) return post(true);
    // Iterative applications pre-post a batch of receives for the next
    // phase, then the matching messages stream in — that is what builds
    // the deep queues [8] measured.
    if (posting_phase_) {
      if (pq >= profile_.target_depth) {
        posting_phase_ = false;
      } else {
        // Mostly fresh receives; some consume early arrivals.
        return post(rng_.chance(0.2));
      }
    }
    if (pq <= profile_.target_depth / 8) {
      posting_phase_ = true;
      return post(rng_.chance(0.2));
    }
    // Drain phase: deliveries for the posted batch, plus some messages
    // nobody posted for yet (they queue unexpected).
    return arrival(rng_.chance(0.85));
  }

 private:
  workload::TraceOp post(bool paired) {
    workload::TraceOp op;
    op.is_post = true;
    if (paired && !queues_.unexpected().empty()) {
      // Post a receive for a message already queued unexpected.
      const auto& entry = queues_.unexpected().at(
          rng_.below(queues_.unexpected().size()));
      const match::Envelope env = match::unpack(entry.word);
      op.pattern = match::make_recv_pattern(
          env.context,
          rng_.chance(profile_.p_wildcard_source)
              ? std::nullopt
              : std::optional<std::uint32_t>{env.source},
          env.tag);
      return op;
    }
    op.pattern = match::make_recv_pattern(
        0,
        rng_.chance(profile_.p_wildcard_source)
            ? std::nullopt
            : std::optional<std::uint32_t>{
                  static_cast<std::uint32_t>(rng_.below(profile_.sources))},
        static_cast<std::uint32_t>(rng_.below(profile_.tags)));
    return op;
  }

  workload::TraceOp arrival(bool paired) {
    workload::TraceOp op;
    op.is_post = false;
    if (paired && !queues_.posted().empty()) {
      // Send the message some posted receive is waiting for.
      const auto& entry =
          queues_.posted().at(rng_.below(queues_.posted().size()));
      match::Envelope env = match::unpack(entry.pattern.bits);
      if ((entry.pattern.mask & match::kSourceMask) != 0) {
        env.source = static_cast<std::uint32_t>(rng_.below(profile_.sources));
      }
      if ((entry.pattern.mask & match::kTagMask) != 0) {
        env.tag = static_cast<std::uint32_t>(rng_.below(profile_.tags));
      }
      op.word = match::pack(env);
      return op;
    }
    op.word = match::pack(match::Envelope{
        0, static_cast<std::uint32_t>(rng_.below(profile_.sources)),
        static_cast<std::uint32_t>(rng_.below(profile_.tags))});
    return op;
  }

  const Profile& profile_;
  workload::ReferenceQueues& queues_;
  common::Xoshiro256 rng_;
  bool posting_phase_ = true;
};

}  // namespace

int main() {
  std::printf("=== application-shaped queue statistics ([8][9]) ===\n\n");

  const std::vector<Profile> profiles = {
      // Balanced nearest-neighbour code: short queues, few wildcards.
      {"nearest-neighbour", 16, 0.05, 8, 8, 101},
      // Master/worker: ANY_SOURCE everywhere, moderate backlog.
      {"master-worker", 96, 0.8, 64, 8, 202},
      // Wide irregular code: many peers, deep working queues.
      {"irregular-wide", 320, 0.3, 256, 64, 303},
  };

  common::TextTable t;
  t.set_header({"profile", "mean postedQ", "p95 postedQ", "max", "mean walk",
                "p95 walk", "sw ns/op", "alpu256 ns/op", "fits in 256?"});

  for (const Profile& profile : profiles) {
    workload::ReferenceQueues queues;
    AppTraffic traffic(profile, queues);
    common::SampleSet depth, walk;
    double sw_ns = 0;
    for (std::size_t i = 0; i < kOps; ++i) {
      const workload::TraceOp op = traffic.next();
      const std::size_t visited =
          op.is_post ? queues.unexpected().search(op.pattern).visited
                     : queues.posted().search(op.word).visited;
      walk.add(static_cast<double>(visited));
      sw_ns += kPerEntryNs * static_cast<double>(visited);
      (void)queues.apply(op);
      depth.add(static_cast<double>(queues.posted().size()));
    }
    const double n = static_cast<double>(kOps);
    const bool fits = depth.percentile(95) <= 256.0;
    t.add_row({profile.name, common::fmt_double(depth.mean(), 1),
               common::fmt_double(depth.percentile(95), 0),
               common::fmt_double(depth.max(), 0),
               common::fmt_double(walk.mean(), 1),
               common::fmt_double(walk.percentile(95), 0),
               common::fmt_double(sw_ns / n, 1),
               common::fmt_double(kAlpuAnswerNs, 1), fits ? "yes" : "no"});
  }
  std::printf("%s\n", t.render().c_str());

  // Depth histogram for the irregular profile (the shape [9] reports).
  {
    const Profile& profile = profiles.back();
    workload::ReferenceQueues queues;
    AppTraffic traffic(profile, queues);
    common::Histogram hist(0, 512, 16);
    for (std::size_t i = 0; i < kOps; ++i) {
      (void)queues.apply(traffic.next());
      hist.add(static_cast<double>(queues.posted().size()));
    }
    std::printf("posted-queue depth distribution (irregular-wide):\n%s\n",
                hist.render(48).c_str());
  }

  std::printf(
      "Reading: the balanced code sits near the ALPU break-even point;\n"
      "the wildcard-heavy and irregular profiles spend hundreds to\n"
      "thousands of ns per operation walking lists the ALPU answers in\n"
      "constant time, and their p95 depths motivate the paper's 128- and\n"
      "256-cell sizings.\n");
  return 0;
}
