// Figure 5 reproduction: latency vs. posted-receive queue length.
//
// Sweeps queue length x fraction-traversed for the baseline NIC and the
// 128/256-entry ALPU NICs (the paper's six panels: a/b baseline, c/d
// 128-entry, e/f 256-entry).  Prints the full surface in CSV form plus
// the 2D projections shown in the paper's right-hand panels, and the
// headline scalar checks (ns/entry in- and out-of-cache, zero-queue ALPU
// overhead, break-even queue length).
//
// Every data point is an independent fresh-machine simulation, so the
// surface is computed on a parallel sweep pool (--jobs N, default
// hardware_concurrency; output is byte-identical to --jobs 1).  --quick
// runs the reduced CI grid and skips the auxiliary sections.
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "workload/scenarios.hpp"
#include "workload/sweep.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const bool quick = flags.has_value() && flags->get_bool("quick");
  workload::SweepOptions sweep;
  sweep.jobs = flags.has_value()
                   ? static_cast<int>(flags->get_int("jobs", 0))
                   : 0;

  const std::vector<std::size_t> lengths = workload::fig5_queue_lengths(quick);
  const std::vector<NicMode> modes = {NicMode::kBaseline, NicMode::kAlpu128,
                                      NicMode::kAlpu256};

  std::printf("=== Figure 5: latency vs pre-posted queue length ===\n");
  std::printf("(one-way latency, 0-byte payload; queue length counts the\n"
              " non-matching entries ahead of/behind the match)\n\n");

  // Full surface as CSV (the paper's 3D panels a/c/e), computed on the
  // sweep pool.
  const std::vector<workload::SurfaceRow> rows =
      workload::run_preposted_surface(workload::fig5_surface_points(quick),
                                      sweep);
  std::printf("surface_csv_begin\n%ssurface_csv_end\n\n",
              workload::surface_csv(rows).c_str());

  auto at = [&](NicMode m, std::size_t len, double f) {
    for (const workload::SurfaceRow& r : rows) {
      if (r.point.mode == m && r.point.queue_length == len &&
          r.point.fraction_traversed == f) {
        return common::to_ns(r.result.latency);
      }
    }
    return -1.0;
  };

  // 2D projections (panels b/d/f): latency vs length per fraction.
  std::vector<double> proj_fractions = workload::fig5_fractions(quick);
  if (!quick) proj_fractions.erase(proj_fractions.begin());  // drop f=0
  for (NicMode mode : modes) {
    common::TextTable t;
    std::vector<std::string> header{"queue_length"};
    for (double f : proj_fractions) {
      header.push_back("f=" + common::fmt_double(f, 2) + " (ns)");
    }
    t.set_header(std::move(header));
    for (std::size_t len : lengths) {
      std::vector<std::string> cells{std::to_string(len)};
      for (double f : proj_fractions) {
        cells.push_back(common::fmt_double(at(mode, len, f), 1));
      }
      t.add_row(std::move(cells));
    }
    std::printf("--- projection: %s ---\n%s\n",
                workload::nic_mode_name(mode), t.render().c_str());
  }

  if (quick) return 0;  // CI grid: surface + projections only

  // Headline scalar checks against the paper's Section VI-B numbers.
  const double base0 = at(NicMode::kBaseline, 0, 1.0);
  const double base50 = at(NicMode::kBaseline, 50, 1.0);
  const double base100 = at(NicMode::kBaseline, 100, 1.0);
  const double base400 = at(NicMode::kBaseline, 400, 1.0);
  const double base500_80 = at(NicMode::kBaseline, 500, 0.75);
  const double alpu0 = at(NicMode::kAlpu128, 0, 1.0);

  const double in_cache_per_entry = (base100 - base50) / 50.0;
  const double deep_walk_per_entry = (base400 - base0) / 400.0;

  std::printf("=== headline checks (paper, Section VI-B) ===\n");
  std::printf("per-entry cost, short queue   : %6.1f ns   (paper ~15 ns)\n",
              in_cache_per_entry);
  std::printf("avg per-entry, 400-entry walk : %6.1f ns   (paper: 13 us/400 = 32.5 ns)\n",
              deep_walk_per_entry);
  std::printf("full 400-entry traversal      : %6.2f us  (paper ~13 us)\n",
              (base400 - base0) / 1000.0);
  std::printf("75%% of 500-entry traversal    : %6.2f us  (paper: 80%% ~24 us)\n",
              (base500_80 - base0) / 1000.0);
  std::printf("ALPU zero-queue overhead      : %6.1f ns   (paper ~80 ns)\n",
              alpu0 - base0);

  // Break-even: smallest queue length where alpu128 wins at f=1.
  std::size_t break_even = 0;
  for (std::size_t len : lengths) {
    if (at(NicMode::kAlpu128, len, 1.0) <= at(NicMode::kBaseline, len, 1.0)) {
      break_even = len;
      break;
    }
  }
  std::printf("ALPU break-even queue length  : %6zu      (paper ~5)\n",
              break_even);

  // Steady-state variant: repeated pings over a standing queue keep the
  // traversed lines warm, the regime the paper's averaged-iteration
  // numbers (13 us for a full 400-entry walk) reflect.
  std::printf("\n=== steady-state (iterated) full-traversal latency ===\n");
  const std::vector<std::size_t> warm_lengths = {100, 200, 300, 400, 500};
  struct WarmPoint {
    double cold_ns = 0.0;
    double steady_ns = 0.0;
  };
  const std::vector<WarmPoint> warm_points = workload::sweep_map(
      warm_lengths,
      [](std::size_t len) {
        workload::PrepostedParams p;
        p.mode = NicMode::kBaseline;
        p.queue_length = len;
        p.fraction_traversed = 1.0;
        WarmPoint out;
        out.cold_ns = common::to_ns(workload::run_preposted(p).latency);
        p.iterations = 8;
        out.steady_ns = common::to_ns(workload::run_preposted(p).latency);
        return out;
      },
      sweep);
  common::TextTable warm;
  warm.set_header({"queue_length", "cold 1-shot (us)", "steady state (us)",
                   "steady ns/entry"});
  for (std::size_t i = 0; i < warm_lengths.size(); ++i) {
    warm.add_row({std::to_string(warm_lengths[i]),
                  common::fmt_double(warm_points[i].cold_ns / 1000.0, 2),
                  common::fmt_double(warm_points[i].steady_ns / 1000.0, 2),
                  common::fmt_double(
                      (warm_points[i].steady_ns - base0) /
                          static_cast<double>(warm_lengths[i]), 1)});
  }
  std::printf("%s", warm.render().c_str());
  std::printf("(paper's 13 us / 400 entries = 32.5 ns/entry sits between\n"
              " this cold first-touch and warm steady-state regime)\n");

  // The benchmark's third degree of freedom: message size.  Traversal
  // cost is additive with transfer cost, so the queue-length penalty is
  // the same at every size — and proportionally least visible for large
  // messages, which is why the paper's panels use small ones.
  std::printf("\n=== message-size dimension (f=1.0) ===\n");
  const std::vector<std::uint32_t> sizes = {0, 1024, 8192};
  struct SizeRow {
    double base_0 = 0.0, base_200 = 0.0, alpu_0 = 0.0, alpu_200 = 0.0;
  };
  const std::vector<SizeRow> size_rows = workload::sweep_map(
      sizes,
      [](std::uint32_t bytes) {
        auto run = [&](NicMode m, std::size_t len) {
          workload::PrepostedParams p;
          p.mode = m;
          p.queue_length = len;
          p.message_bytes = bytes;
          return common::to_us(workload::run_preposted(p).latency);
        };
        return SizeRow{run(NicMode::kBaseline, 0), run(NicMode::kBaseline, 200),
                       run(NicMode::kAlpu256, 0), run(NicMode::kAlpu256, 200)};
      },
      sweep);
  common::TextTable sz;
  sz.set_header({"bytes", "L=0 base (us)", "L=200 base (us)",
                 "L=0 alpu256 (us)", "L=200 alpu256 (us)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sz.add_row({std::to_string(sizes[i]),
                common::fmt_double(size_rows[i].base_0, 2),
                common::fmt_double(size_rows[i].base_200, 2),
                common::fmt_double(size_rows[i].alpu_0, 2),
                common::fmt_double(size_rows[i].alpu_200, 2)});
  }
  std::printf("%s", sz.render().c_str());
  return 0;
}
