// Figure 5 reproduction: latency vs. posted-receive queue length.
//
// Sweeps queue length x fraction-traversed for the baseline NIC and the
// 128/256-entry ALPU NICs (the paper's six panels: a/b baseline, c/d
// 128-entry, e/f 256-entry).  Prints the full surface in CSV form plus
// the 2D projections shown in the paper's right-hand panels, and the
// headline scalar checks (ns/entry in- and out-of-cache, zero-queue ALPU
// overhead, break-even queue length).
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

const char* mode_name(NicMode m) {
  switch (m) {
    case NicMode::kBaseline: return "baseline";
    case NicMode::kAlpu128: return "alpu128";
    case NicMode::kAlpu256: return "alpu256";
  }
  return "?";
}

double measure(NicMode mode, std::size_t length, double fraction,
               std::uint32_t bytes) {
  workload::PrepostedParams p;
  p.mode = mode;
  p.queue_length = length;
  p.fraction_traversed = fraction;
  p.message_bytes = bytes;
  return common::to_ns(workload::run_preposted(p).latency);
}

}  // namespace

int main() {
  const std::vector<std::size_t> lengths = {0,  1,   2,   5,   10,  20,
                                            50, 100, 150, 200, 250, 300,
                                            350, 400, 450, 500};
  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<NicMode> modes = {NicMode::kBaseline, NicMode::kAlpu128,
                                      NicMode::kAlpu256};

  std::printf("=== Figure 5: latency vs pre-posted queue length ===\n");
  std::printf("(one-way latency, 0-byte payload; queue length counts the\n"
              " non-matching entries ahead of/behind the match)\n\n");

  // Full surface as CSV (the paper's 3D panels a/c/e).
  std::printf("surface_csv_begin\n");
  std::printf("mode,queue_length,fraction_traversed,latency_ns\n");
  // Cache results for the projections below.
  struct Row {
    NicMode mode;
    std::size_t length;
    double fraction;
    double ns;
  };
  std::vector<Row> rows;
  for (NicMode mode : modes) {
    for (std::size_t len : lengths) {
      for (double f : fractions) {
        const double ns = measure(mode, len, f, 0);
        rows.push_back({mode, len, f, ns});
        std::printf("%s,%zu,%.2f,%.1f\n", mode_name(mode), len, f, ns);
      }
    }
  }
  std::printf("surface_csv_end\n\n");

  // 2D projections (panels b/d/f): latency vs length at full traversal.
  for (NicMode mode : modes) {
    common::TextTable t;
    t.set_header({"queue_length", "f=0.25 (ns)", "f=0.50 (ns)",
                  "f=0.75 (ns)", "f=1.00 (ns)"});
    for (std::size_t len : lengths) {
      std::vector<std::string> cells{std::to_string(len)};
      for (double f : {0.25, 0.5, 0.75, 1.0}) {
        for (const Row& r : rows) {
          if (r.mode == mode && r.length == len && r.fraction == f) {
            cells.push_back(common::fmt_double(r.ns, 1));
          }
        }
      }
      t.add_row(std::move(cells));
    }
    std::printf("--- projection: %s ---\n%s\n", mode_name(mode),
                t.render().c_str());
  }

  // Headline scalar checks against the paper's Section VI-B numbers.
  auto at = [&](NicMode m, std::size_t len, double f) {
    for (const Row& r : rows) {
      if (r.mode == m && r.length == len && r.fraction == f) return r.ns;
    }
    return -1.0;
  };
  const double base0 = at(NicMode::kBaseline, 0, 1.0);
  const double base50 = at(NicMode::kBaseline, 50, 1.0);
  const double base100 = at(NicMode::kBaseline, 100, 1.0);
  const double base400 = at(NicMode::kBaseline, 400, 1.0);
  const double base500_80 = at(NicMode::kBaseline, 500, 0.75);
  const double alpu0 = at(NicMode::kAlpu128, 0, 1.0);

  const double in_cache_per_entry = (base100 - base50) / 50.0;
  const double deep_walk_per_entry = (base400 - base0) / 400.0;

  std::printf("=== headline checks (paper, Section VI-B) ===\n");
  std::printf("per-entry cost, short queue   : %6.1f ns   (paper ~15 ns)\n",
              in_cache_per_entry);
  std::printf("avg per-entry, 400-entry walk : %6.1f ns   (paper: 13 us/400 = 32.5 ns)\n",
              deep_walk_per_entry);
  std::printf("full 400-entry traversal      : %6.2f us  (paper ~13 us)\n",
              (base400 - base0) / 1000.0);
  std::printf("75%% of 500-entry traversal    : %6.2f us  (paper: 80%% ~24 us)\n",
              (base500_80 - base0) / 1000.0);
  std::printf("ALPU zero-queue overhead      : %6.1f ns   (paper ~80 ns)\n",
              alpu0 - base0);

  // Break-even: smallest queue length where alpu128 wins at f=1.
  std::size_t break_even = 0;
  for (std::size_t len : lengths) {
    if (at(NicMode::kAlpu128, len, 1.0) <= at(NicMode::kBaseline, len, 1.0)) {
      break_even = len;
      break;
    }
  }
  std::printf("ALPU break-even queue length  : %6zu      (paper ~5)\n",
              break_even);

  // Steady-state variant: repeated pings over a standing queue keep the
  // traversed lines warm, the regime the paper's averaged-iteration
  // numbers (13 us for a full 400-entry walk) reflect.
  std::printf("\n=== steady-state (iterated) full-traversal latency ===\n");
  common::TextTable warm;
  warm.set_header({"queue_length", "cold 1-shot (us)", "steady state (us)",
                   "steady ns/entry"});
  for (std::size_t len : {100ul, 200ul, 300ul, 400ul, 500ul}) {
    workload::PrepostedParams p;
    p.mode = NicMode::kBaseline;
    p.queue_length = len;
    p.fraction_traversed = 1.0;
    const double cold = common::to_ns(workload::run_preposted(p).latency);
    p.iterations = 8;
    const double steady = common::to_ns(workload::run_preposted(p).latency);
    warm.add_row({std::to_string(len),
                  common::fmt_double(cold / 1000.0, 2),
                  common::fmt_double(steady / 1000.0, 2),
                  common::fmt_double((steady - at(NicMode::kBaseline, 0, 1.0)) /
                                         static_cast<double>(len), 1)});
  }
  std::printf("%s", warm.render().c_str());
  std::printf("(paper's 13 us / 400 entries = 32.5 ns/entry sits between\n"
              " this cold first-touch and warm steady-state regime)\n");

  // The benchmark's third degree of freedom: message size.  Traversal
  // cost is additive with transfer cost, so the queue-length penalty is
  // the same at every size — and proportionally least visible for large
  // messages, which is why the paper's panels use small ones.
  std::printf("\n=== message-size dimension (f=1.0) ===\n");
  common::TextTable sz;
  sz.set_header({"bytes", "L=0 base (us)", "L=200 base (us)",
                 "L=0 alpu256 (us)", "L=200 alpu256 (us)"});
  for (std::uint32_t bytes : {0u, 1024u, 8192u}) {
    auto run = [&](NicMode m, std::size_t len) {
      workload::PrepostedParams p;
      p.mode = m;
      p.queue_length = len;
      p.message_bytes = bytes;
      return common::to_us(workload::run_preposted(p).latency);
    };
    sz.add_row({std::to_string(bytes),
                common::fmt_double(run(NicMode::kBaseline, 0), 2),
                common::fmt_double(run(NicMode::kBaseline, 200), 2),
                common::fmt_double(run(NicMode::kAlpu256, 0), 2),
                common::fmt_double(run(NicMode::kAlpu256, 200), 2)});
  }
  std::printf("%s", sz.render().c_str());
  return 0;
}
