// Ablation: the Section IV-B insert-threshold heuristic.
//
// "Because using the ALPU will incur a certain amount of overhead, the
// software must only use it when the queue is adequately long" — and
// Section VI-B suggests the library "could be optimized to not use the
// ALPU until the list is at least 5 entries long".  This bench sweeps
// that threshold and shows the latency each policy delivers across queue
// lengths: a threshold near the break-even point recovers the baseline's
// short-queue latency while keeping the ALPU's long-queue win.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace alpu;
  using workload::NicMode;

  const std::vector<std::size_t> thresholds = {0, 5, 16, 64};
  const std::vector<std::size_t> lengths = {0, 1, 2, 5, 10, 20, 50, 100};

  std::printf("=== insert-threshold heuristic sweep (Section IV-B) ===\n");
  std::printf("(128-entry ALPU; one-way preposted latency in ns; baseline\n"
              " NIC shown for reference)\n\n");

  common::TextTable t;
  std::vector<std::string> header{"queue_length", "baseline"};
  for (std::size_t th : thresholds) {
    header.push_back("thr=" + std::to_string(th));
  }
  t.set_header(std::move(header));

  for (std::size_t len : lengths) {
    std::vector<std::string> row{std::to_string(len)};
    {
      workload::PrepostedParams p;
      p.mode = NicMode::kBaseline;
      p.queue_length = len;
      row.push_back(common::fmt_double(
          common::to_ns(workload::run_preposted(p).latency), 0));
    }
    for (std::size_t th : thresholds) {
      workload::PrepostedParams p;
      p.mode = NicMode::kAlpu128;
      auto cfg = workload::make_system_config(NicMode::kAlpu128);
      cfg.nic.alpu_policy.insert_threshold = th;
      p.system = cfg;
      p.queue_length = len;
      row.push_back(common::fmt_double(
          common::to_ns(workload::run_preposted(p).latency), 0));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: thr=0 pays the ALPU interaction cost even on tiny\n"
              "queues; a threshold near the paper's break-even (~5) tracks\n"
              "the baseline until the ALPU starts paying for itself.\n");
  return 0;
}
