// Ablation: the Section IV-B insert-threshold heuristic.
//
// "Because using the ALPU will incur a certain amount of overhead, the
// software must only use it when the queue is adequately long" — and
// Section VI-B suggests the library "could be optimized to not use the
// ALPU until the list is at least 5 entries long".  This bench sweeps
// that threshold and shows the latency each policy delivers across queue
// lengths: a threshold near the break-even point recovers the baseline's
// short-queue latency while keeping the ALPU's long-queue win.
//
// Independent fresh-machine cells, computed on the parallel sweep pool
// (--jobs N; --quick for the CI grid).
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "workload/scenarios.hpp"
#include "workload/sweep.hpp"

int main(int argc, char** argv) {
  using namespace alpu;
  using workload::NicMode;

  const auto flags = common::Flags::parse(argc, argv);
  const bool quick = flags.has_value() && flags->get_bool("quick");
  workload::SweepOptions sweep;
  sweep.jobs = flags.has_value()
                   ? static_cast<int>(flags->get_int("jobs", 0))
                   : 0;

  const std::vector<std::size_t> thresholds = {0, 5, 16, 64};
  const std::vector<std::size_t> lengths =
      quick ? std::vector<std::size_t>{0, 1, 5, 20, 50}
            : std::vector<std::size_t>{0, 1, 2, 5, 10, 20, 50, 100};

  std::printf("=== insert-threshold heuristic sweep (Section IV-B) ===\n");
  std::printf("(128-entry ALPU; one-way preposted latency in ns; baseline\n"
              " NIC shown for reference)\n\n");

  // Cell layout per length: [baseline, thr0, thr5, thr16, thr64].
  struct Cell {
    std::size_t length;
    int config;  // -1 = baseline, otherwise index into thresholds
  };
  std::vector<Cell> cells;
  const std::size_t stride = thresholds.size() + 1;
  cells.reserve(lengths.size() * stride);
  for (std::size_t len : lengths) {
    cells.push_back({len, -1});
    for (std::size_t c = 0; c < thresholds.size(); ++c) {
      cells.push_back({len, static_cast<int>(c)});
    }
  }
  const std::vector<double> ns = workload::sweep_map(
      cells,
      [&thresholds](const Cell& cell) {
        workload::PrepostedParams p;
        p.queue_length = cell.length;
        if (cell.config < 0) {
          p.mode = NicMode::kBaseline;
        } else {
          p.mode = NicMode::kAlpu128;
          auto cfg = workload::make_system_config(NicMode::kAlpu128);
          cfg.nic.alpu_policy.insert_threshold =
              thresholds[static_cast<std::size_t>(cell.config)];
          p.system = cfg;
        }
        return common::to_ns(workload::run_preposted(p).latency);
      },
      sweep);

  common::TextTable t;
  std::vector<std::string> header{"queue_length", "baseline"};
  for (std::size_t th : thresholds) {
    header.push_back("thr=" + std::to_string(th));
  }
  t.set_header(std::move(header));

  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::vector<std::string> row{std::to_string(lengths[i])};
    for (std::size_t c = 0; c < stride; ++c) {
      row.push_back(common::fmt_double(ns[i * stride + c], 0));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: thr=0 pays the ALPU interaction cost even on tiny\n"
              "queues; a threshold near the paper's break-even (~5) tracks\n"
              "the baseline until the ALPU starts paying for itself.\n");
  return 0;
}
