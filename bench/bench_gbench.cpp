// Google-benchmark micro suite: wall-clock performance of the simulator's
// own building blocks (engineering hygiene — these bound how large an
// experiment the simulator can sweep).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "alpu/array.hpp"
#include "common/fifo.hpp"
#include "common/rng.hpp"
#include "match/hash_list.hpp"
#include "match/list.hpp"
#include "mem/cache.hpp"
#include "portals/portals.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace alpu;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(i, [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_EngineScheduleCancelChurn(benchmark::State& state) {
  // Schedule/cancel churn: half the scheduled events are cancelled
  // before they fire, the pattern timeout-guarded protocols produce.
  // Exercises the slot pool's O(1) cancel and tombstone pop path.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sink = 0;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(engine.schedule_at(i, [&sink] { ++sink; }));
    }
    for (std::size_t i = 0; i < n; i += 2) {
      engine.cancel(ids[i]);
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleCancelChurn)->Arg(1'000)->Arg(100'000);

void BM_EngineTimeoutGuardPattern(benchmark::State& state) {
  // The hot pattern from the NIC model: each "operation" schedules a
  // guard event far in the future, does its work, then cancels the
  // guard.  Every guard is cancelled; none ever fires.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const sim::EventId guard = engine.schedule_at(
          static_cast<common::TimePs>(i) + 1'000'000, [&sink] { sink += 100; });
      engine.schedule_at(i, [&sink] { ++sink; });
      engine.cancel(guard);
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_EngineTimeoutGuardPattern)->Arg(10'000);

void BM_FifoPushPop(benchmark::State& state) {
  common::BoundedFifo<std::uint64_t> fifo(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    (void)fifo.try_push(v++);
    benchmark::DoNotOptimize(fifo.pop());
  }
}
BENCHMARK(BM_FifoPushPop);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache(
      {.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 64});
  common::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1 << 20), false));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_PostedListSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  match::PostedList list;
  for (std::size_t i = 0; i < n; ++i) {
    list.append({match::make_recv_pattern(0, 1,
                                          static_cast<std::uint32_t>(i % 512)),
                 static_cast<match::Cookie>(i), 0});
  }
  const auto miss = match::pack(match::Envelope{1, 1, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.search(miss));  // worst case: full walk
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PostedListSearch)->Arg(16)->Arg(256)->Arg(4096);

void BM_HashConsume(benchmark::State& state) {
  match::UnexpectedHashList list;
  std::uint32_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    list.insert(match::pack(match::Envelope{0, 1, i % 512}), i);
    state.ResumeTiming();
    benchmark::DoNotOptimize(list.consume_match(
        match::exact_pattern(match::Envelope{0, 1, i % 512})));
    ++i;
  }
}
BENCHMARK(BM_HashConsume);

void BM_AlpuArrayMatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hw::AlpuArray array(hw::AlpuFlavor::kPostedReceive, n, 16);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = match::make_recv_pattern(
        0, 1, static_cast<std::uint32_t>(i % 512));
    (void)array.insert(p.bits, p.mask, static_cast<match::Cookie>(i));
  }
  const hw::Probe miss{match::pack(match::Envelope{1, 1, 1}), 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.match(miss));
  }
}
BENCHMARK(BM_AlpuArrayMatch)->Arg(128)->Arg(256);

void BM_AlpuArrayMatchTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hw::AlpuArray array(hw::AlpuFlavor::kPostedReceive, n, 16);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = match::make_recv_pattern(
        0, 1, static_cast<std::uint32_t>(i % 512));
    (void)array.insert(p.bits, p.mask, static_cast<match::Cookie>(i));
  }
  const hw::Probe miss{match::pack(match::Envelope{1, 1, 1}), 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.match_tree(miss));
  }
}
BENCHMARK(BM_AlpuArrayMatchTree)->Arg(128)->Arg(256);

void BM_PortalsAcceleratedPut(benchmark::State& state) {
  portals::PortalTable table(1);
  const auto eq = table.eq_alloc(1 << 16);
  (void)table.attach_alpu(0, 256, 16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    portals::MatchEntrySpec spec;
    spec.match_bits = 0x5000 + (i % 256);
    spec.md.length = 64;
    (void)table.me_attach(0, spec, eq);
    (void)table.eq(eq).poll();
    (void)table.eq(eq).poll();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        table.put(0, {0, 0}, 0x5000 + (i % 256), 32));
    ++i;
  }
}
BENCHMARK(BM_PortalsAcceleratedPut);

void BM_FullPingPongSimulation(benchmark::State& state) {
  // Wall-clock cost of one complete two-node end-to-end simulation —
  // the unit of work every Figure 5/6 data point costs.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::run_pingpong(workload::NicMode::kAlpu128, 0, 1));
  }
}
BENCHMARK(BM_FullPingPongSimulation);

void BM_PrepostedDataPoint(benchmark::State& state) {
  // Full-machine cost of one Figure 5 data point, with the DES-kernel
  // event rate surfaced as items/sec (LatencyResult.events_executed).
  const auto len = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    workload::PrepostedParams p;
    p.mode = workload::NicMode::kAlpu256;
    p.queue_length = len;
    const workload::LatencyResult r = workload::run_preposted(p);
    events += r.events_executed;
    benchmark::DoNotOptimize(r.latency);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items=sim events");
}
BENCHMARK(BM_PrepostedDataPoint)->Arg(0)->Arg(500);

}  // namespace

// Custom main: accept the repo-wide `--json <path>` spelling and
// translate it into google-benchmark's --benchmark_out flags, so every
// benchmark binary shares one JSON-output interface.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.push_back("--benchmark_out_format=json");
    } else if (a.rfind("--json=", 0) == 0) {
      args.push_back("--benchmark_out=" + a.substr(7));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(a);
    }
  }
  // benchmark::Initialize wants mutable char*s that outlive the run.
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
