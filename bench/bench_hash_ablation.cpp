// Ablation: hash-table matching (the alternative Section II rejects).
//
// Hash tables cut the search to O(1) for exact traffic but (a) inflate
// insert cost — visible in exactly the zero-length ping-pong latency by
// which networks are judged — and (b) degrade to a linear scan for
// wildcard probes while still paying the hashing overhead.  This bench
// quantifies both effects with the same firmware cost model the system
// simulation uses (cycles at 500 MHz + cache-line touches), comparing:
//   linear list   — the baseline NIC's structure,
//   hash          — PostedHashList / UnexpectedHashList,
//   ALPU          — the hardware unit's interaction costs.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "match/hash_list.hpp"
#include "match/list.hpp"
#include "workload/trace.hpp"

namespace {

using namespace alpu;

// Cost model (ns), consistent with NicConfig's firmware calibration.
constexpr double kPerEntryNs = 14.0;    // walk one in-cache entry
constexpr double kAppendNs = 60.0;      // build + link one list entry
constexpr double kHashComputeNs = 30.0; // hash the 42-bit key (~15 cycles)
constexpr double kBucketProbeNs = 14.0; // touch a bucket head line
constexpr double kBucketInsertNs = 110.0;  // hash + chain insert + touch
constexpr double kAlpuResultNs = 84.0;  // 3 bus reads + bookkeeping
constexpr double kAlpuInsertNs = 50.0;  // 2 bus writes + command prep
constexpr double kAlpuSessionNs = 90.0; // START/ACK/STOP amortised

struct Costs {
  double search_ns = 0;
  double insert_ns = 0;
  std::uint64_t operations = 0;
};

/// Replay a trace and accumulate modelled time per structure.
void run_trace(const workload::TraceConfig& cfg, Costs& linear, Costs& hash,
               Costs& alpu) {
  const auto trace = workload::generate_trace(cfg);

  // Linear reference (also the semantic oracle).
  workload::ReferenceQueues ref_for_linear;
  for (const auto& op : trace) {
    if (op.is_post) {
      const auto before = ref_for_linear.unexpected().size();
      const auto res = ref_for_linear.unexpected().search(op.pattern);
      (void)before;
      linear.search_ns += kPerEntryNs * static_cast<double>(res.visited);
      if (!res.found) linear.insert_ns += kAppendNs;
    } else {
      const auto res = ref_for_linear.posted().search(op.word);
      linear.search_ns += kPerEntryNs * static_cast<double>(res.visited);
      if (!res.found) linear.insert_ns += kAppendNs;
    }
    (void)ref_for_linear.apply(op);
    ++linear.operations;
  }

  // Hash structures.
  match::PostedHashList posted_hash;
  match::UnexpectedHashList unexpected_hash;
  match::Cookie ck = 1;
  for (const auto& op : trace) {
    if (op.is_post) {
      const auto r = unexpected_hash.consume_match(op.pattern);
      hash.search_ns += kHashComputeNs +
                        kBucketProbeNs * static_cast<double>(r.hash_probes) +
                        kPerEntryNs * static_cast<double>(r.entries_scanned);
      if (!r.found) {
        posted_hash.insert(op.pattern, ck++);
        hash.insert_ns += kBucketInsertNs;
      }
    } else {
      const auto r = posted_hash.consume_match(op.word);
      hash.search_ns += kHashComputeNs +
                        kBucketProbeNs * static_cast<double>(r.hash_probes) +
                        kPerEntryNs * static_cast<double>(r.entries_scanned);
      if (!r.found) {
        unexpected_hash.insert(op.word, ck++);
        hash.insert_ns += kBucketInsertNs;
      }
    }
    ++hash.operations;
  }

  // ALPU: constant-time verdicts; inserts batched over the bus.
  workload::ReferenceQueues ref_for_alpu;
  for (const auto& op : trace) {
    (void)ref_for_alpu.apply(op);
    alpu.search_ns += kAlpuResultNs;
    alpu.insert_ns += kAlpuInsertNs + kAlpuSessionNs / 16.0;  // batch of 16
    ++alpu.operations;
  }
}

}  // namespace

int main() {
  std::printf("=== hash-table ablation (Section II) ===\n");
  std::printf("(modelled NIC-firmware time per operation, averaged over\n"
              " 20k-op synthetic traces; wildcard mix per the paper's app\n"
              " survey: ANY_SOURCE common, ANY_TAG rare)\n\n");

  common::TextTable t;
  t.set_header({"wildcard src", "structure", "search ns/op", "insert ns/op",
                "total ns/op"});
  for (double wild : {0.0, 0.1, 0.3, 0.6}) {
    workload::TraceConfig cfg;
    cfg.operations = 20'000;
    cfg.p_wildcard_source = wild;
    cfg.p_wildcard_tag = 0.02;
    cfg.contexts = 2;
    cfg.sources = 8;
    cfg.tags = 16;
    cfg.seed = 42;
    Costs linear{}, hash{}, alpu{};
    run_trace(cfg, linear, hash, alpu);
    auto row = [&](const char* name, const Costs& c) {
      const double n = static_cast<double>(c.operations);
      t.add_row({common::fmt_double(wild, 2), name,
                 common::fmt_double(c.search_ns / n, 1),
                 common::fmt_double(c.insert_ns / n, 1),
                 common::fmt_double((c.search_ns + c.insert_ns) / n, 1)});
    };
    row("linear", linear);
    row("hash", hash);
    row("alpu", alpu);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: hashing beats the list on searches once queues are\n"
              "non-trivial, but pays ~2x on every insert (the zero-length\n"
              "ping-pong penalty the paper calls prohibitive), and its\n"
              "search advantage collapses as MPI_ANY_SOURCE use rises.\n"
              "The ALPU's cost is flat in both dimensions.\n");
  return 0;
}
