// Figure 6 reproduction: latency vs. unexpected-message queue length.
//
// The measured latency deliberately includes the time to post the
// receive (Section V-A), and the posting overlaps the transfer of the
// latency message — so the baseline's linear search is hidden until the
// queue is long enough (the paper's crossover is near 70 entries), and
// the ALPU's advantage appears beyond it.  Each line also shows the
// cache-exhaustion knee the paper points out.
//
// Independent fresh-machine points, computed on the parallel sweep pool
// (--jobs N, default hardware_concurrency; --quick for the CI grid).
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "workload/scenarios.hpp"
#include "workload/sweep.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

struct Point {
  NicMode mode;
  std::size_t length;
};

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const bool quick = flags.has_value() && flags->get_bool("quick");
  workload::SweepOptions sweep;
  sweep.jobs = flags.has_value()
                   ? static_cast<int>(flags->get_int("jobs", 0))
                   : 0;

  const std::vector<std::size_t> lengths =
      quick ? std::vector<std::size_t>{0, 1, 5, 10, 20, 35, 50, 70, 100,
                                       150, 200, 300}
            : std::vector<std::size_t>{0,   1,   5,   10,  20,  35,
                                       50,  70,  100, 128, 150, 200,
                                       256, 300, 400, 500, 600};
  const std::vector<NicMode> modes = {NicMode::kBaseline, NicMode::kAlpu128,
                                      NicMode::kAlpu256};

  std::printf("=== Figure 6: latency vs unexpected queue length ===\n");
  std::printf("(0-byte payload; latency includes receive-posting time,\n"
              " overlapped with the message transfer as in the paper)\n\n");

  // One flat sweep over every (length, mode) pair; indexed back below.
  std::vector<Point> points;
  points.reserve(lengths.size() * modes.size());
  for (std::size_t len : lengths) {
    for (NicMode mode : modes) {
      points.push_back({mode, len});
    }
  }
  const std::vector<double> ns = workload::sweep_map(
      points,
      [](const Point& pt) {
        workload::UnexpectedParams p;
        p.mode = pt.mode;
        p.queue_length = pt.length;
        p.message_bytes = 0;
        return common::to_ns(workload::run_unexpected(p).latency);
      },
      sweep);

  common::TextTable t;
  t.set_header({"queue_length", "baseline (ns)", "alpu128 (ns)",
                "alpu256 (ns)"});
  std::vector<double> base_ns, a128_ns, a256_ns;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    base_ns.push_back(ns[i * 3 + 0]);
    a128_ns.push_back(ns[i * 3 + 1]);
    a256_ns.push_back(ns[i * 3 + 2]);
    t.add_row({std::to_string(lengths[i]),
               common::fmt_double(base_ns.back(), 1),
               common::fmt_double(a128_ns.back(), 1),
               common::fmt_double(a256_ns.back(), 1)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("csv_begin\nqueue_length,baseline_ns,alpu128_ns,alpu256_ns\n");
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::printf("%zu,%.1f,%.1f,%.1f\n", lengths[i], base_ns[i], a128_ns[i],
                a256_ns[i]);
  }
  std::printf("csv_end\n\n");

  // Headline checks.
  std::printf("=== headline checks (paper, Section VI-C) ===\n");
  std::printf("short-queue ALPU penalty (len 1)  : %6.1f ns (paper: a few tens of ns)\n",
              a128_ns[1] - base_ns[1]);
  std::size_t crossover = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (a128_ns[i] + 1.0 < base_ns[i]) {
      crossover = lengths[i];
      break;
    }
  }
  std::printf("ALPU begins to win at queue length: %6zu    (paper ~70)\n",
              crossover);
  const double long_gain = base_ns.back() / a256_ns.back();
  std::printf("baseline/alpu256 ratio at len %zu : %6.2f x (paper: 'clear and significant')\n",
              lengths.back(), long_gain);
  return 0;
}
