// Figure 6 reproduction: latency vs. unexpected-message queue length.
//
// The measured latency deliberately includes the time to post the
// receive (Section V-A), and the posting overlaps the transfer of the
// latency message — so the baseline's linear search is hidden until the
// queue is long enough (the paper's crossover is near 70 entries), and
// the ALPU's advantage appears beyond it.  Each line also shows the
// cache-exhaustion knee the paper points out.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

double measure(NicMode mode, std::size_t length, std::uint32_t bytes) {
  workload::UnexpectedParams p;
  p.mode = mode;
  p.queue_length = length;
  p.message_bytes = bytes;
  return common::to_ns(workload::run_unexpected(p).latency);
}

}  // namespace

int main() {
  const std::vector<std::size_t> lengths = {0,   1,   5,   10,  20,  35,
                                            50,  70,  100, 128, 150, 200,
                                            256, 300, 400, 500, 600};

  std::printf("=== Figure 6: latency vs unexpected queue length ===\n");
  std::printf("(0-byte payload; latency includes receive-posting time,\n"
              " overlapped with the message transfer as in the paper)\n\n");

  common::TextTable t;
  t.set_header({"queue_length", "baseline (ns)", "alpu128 (ns)",
                "alpu256 (ns)"});
  std::vector<double> base_ns, a128_ns, a256_ns;
  for (std::size_t len : lengths) {
    base_ns.push_back(measure(NicMode::kBaseline, len, 0));
    a128_ns.push_back(measure(NicMode::kAlpu128, len, 0));
    a256_ns.push_back(measure(NicMode::kAlpu256, len, 0));
    t.add_row({std::to_string(len), common::fmt_double(base_ns.back(), 1),
               common::fmt_double(a128_ns.back(), 1),
               common::fmt_double(a256_ns.back(), 1)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("csv_begin\nqueue_length,baseline_ns,alpu128_ns,alpu256_ns\n");
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::printf("%zu,%.1f,%.1f,%.1f\n", lengths[i], base_ns[i], a128_ns[i],
                a256_ns[i]);
  }
  std::printf("csv_end\n\n");

  // Headline checks.
  std::printf("=== headline checks (paper, Section VI-C) ===\n");
  std::printf("short-queue ALPU penalty (len 1)  : %6.1f ns (paper: a few tens of ns)\n",
              a128_ns[1] - base_ns[1]);
  std::size_t crossover = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (a128_ns[i] + 1.0 < base_ns[i]) {
      crossover = lengths[i];
      break;
    }
  }
  std::printf("ALPU begins to win at queue length: %6zu    (paper ~70)\n",
              crossover);
  const double long_gain = base_ns.back() / a256_ns.back();
  std::printf("baseline/alpu256 ratio at len 600 : %6.2f x (paper: 'clear and significant')\n",
              long_gain);
  return 0;
}
