// Gap / message-rate study (the Section I motivation), plus the
// wall-clock gate on the simulator's per-message control path.
//
// Two jobs in one binary:
//
//   * the paper-facing table (default output): the introduction ranks
//     gap (the inverse message rate) as the second-largest application
//     impact after overhead, and identifies queue traversal on the NIC
//     as what inflates it.  A burst of back-to-back messages streams
//     into a receiver with a standing posted queue; the achieved
//     per-message gap and message rate are reported for the baseline
//     and ALPU NICs;
//
//   * the host-throughput suite (`--json`, consumed by
//     scripts/bench_report.py --suite message_rate): the same scenario
//     measured in WALL-CLOCK nanoseconds per simulated MPI message.
//     Every message exercises the NIC's control-path bookkeeping —
//     cookie->info tables, rendezvous token maps, per-destination
//     ordering tickets, reliability windows, link state — so this is
//     the regression gate on those structures staying cache-resident
//     and allocation-free (sim results are representation-independent;
//     only the wall clock sees the difference).
//
//   bench_message_rate [--iters N] [--burst N] [--json <path>]
//
// `--iters` is the per-grid-point message budget of the measured suite
// (runs = iters / burst fresh machines per point); the table section
// always runs its fixed grid.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using alpu::common::TimePs;
using alpu::workload::MessageRateParams;
using alpu::workload::NicMode;

/// One measured grid point of the wall-clock suite.
struct Point {
  const char* key;  ///< JSON key (stable: the baseline gates on it)
  NicMode mode;
  std::size_t queue_length;
  std::uint32_t message_bytes;
};

/// The gate's grid: short and long standing queues for both NIC kinds
/// (eager traffic), plus a rendezvous-sized point so the RTS/CTS/DATA
/// token tables are on the measured path too.
constexpr Point kPoints[] = {
    {"baseline_q0", NicMode::kBaseline, 0, 0},
    {"baseline_q200", NicMode::kBaseline, 200, 0},
    {"alpu256_q0", NicMode::kAlpu256, 0, 0},
    {"alpu256_q200", NicMode::kAlpu256, 200, 0},
    {"rendezvous_q0", NicMode::kAlpu256, 0, 32 * 1024},
};

struct Measured {
  double wall_ns_per_message = 0.0;
  double sim_gap_ns = 0.0;  ///< simulated gap (must not move: informational)
};

Measured measure_point(const Point& pt, int burst, int runs) {
  MessageRateParams p;
  p.mode = pt.mode;
  p.queue_length = pt.queue_length;
  p.burst = burst;
  p.message_bytes = pt.message_bytes;
  Measured m;
  TimePs gap = 0;
  const auto t0 = Clock::now();
  for (int r = 0; r < runs; ++r) {
    gap = alpu::workload::run_message_rate(p);
  }
  const auto t1 = Clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  m.wall_ns_per_message =
      wall_ns / (static_cast<double>(runs) * static_cast<double>(burst));
  m.sim_gap_ns = alpu::common::to_ns(gap);
  return m;
}

void print_table() {
  using alpu::common::fmt_double;
  constexpr int kBurst = 64;
  std::printf("=== message gap vs standing posted-queue length ===\n");
  std::printf("(burst of %d back-to-back 0-byte sends; gap measured at the\n"
              " receiver; Mmsg/s = 1000/gap_ns)\n\n", kBurst);

  alpu::common::TextTable t;
  t.set_header({"queue_length", "baseline gap (ns)", "alpu128 gap (ns)",
                "alpu256 gap (ns)", "baseline Mmsg/s", "alpu256 Mmsg/s"});
  for (std::size_t len : {0ul, 10ul, 50ul, 100ul, 200ul, 400ul}) {
    auto gap = [&](NicMode mode) {
      MessageRateParams p;
      p.mode = mode;
      p.queue_length = len;
      p.burst = kBurst;
      return alpu::common::to_ns(alpu::workload::run_message_rate(p));
    };
    const double base = gap(NicMode::kBaseline);
    const double a128 = gap(NicMode::kAlpu128);
    const double a256 = gap(NicMode::kAlpu256);
    t.add_row({std::to_string(len), fmt_double(base, 1), fmt_double(a128, 1),
               fmt_double(a256, 1), fmt_double(1000.0 / base, 2),
               fmt_double(1000.0 / a256, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: the baseline's gap grows with every entry each\n"
              "message must walk past (message rate collapses); the ALPU\n"
              "holds the gap flat until the queue outgrows its capacity.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags_opt = alpu::common::Flags::parse(argc, argv);
  if (!flags_opt.has_value()) {
    std::fprintf(stderr,
                 "usage: bench_message_rate [--iters N] [--burst N]"
                 " [--json <path>]\n");
    return 2;
  }
  const alpu::common::Flags& flags = *flags_opt;
  const int burst = static_cast<int>(flags.get_int("burst", 256));
  const auto iters = flags.get_int("iters", 16'384);
  const int runs =
      static_cast<int>(iters / burst > 0 ? iters / burst : 1);

  print_table();

  if (!flags.has("json")) return 0;

  std::printf("\n=== wall-clock control-path suite "
              "(%d runs x %d messages per point) ===\n", runs, burst);
  std::vector<Measured> results;
  for (const Point& pt : kPoints) {
    results.push_back(measure_point(pt, burst, runs));
    std::printf("  %-14s %8.0f ns/message wall  (sim gap %.1f ns)\n",
                pt.key, results.back().wall_ns_per_message,
                results.back().sim_gap_ns);
  }

  const std::string path = flags.get("json", "");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"message_rate\",\n");
  std::fprintf(f, "  \"burst\": %d,\n  \"runs\": %d,\n", burst, runs);
  std::fprintf(f, "  \"wall_ns_per_message\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", kPoints[i].key,
                 results[i].wall_ns_per_message,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"sim_gap_ns\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.3f%s\n", kPoints[i].key,
                 results[i].sim_gap_ns,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return 0;
}
