// Gap / message-rate study (the Section I motivation).
//
// The introduction ranks gap (the inverse message rate) as the
// second-largest application impact after overhead, and identifies
// queue traversal on the NIC as what inflates it.  This bench streams a
// burst of back-to-back messages into a receiver with a standing posted
// queue and reports the achieved per-message gap and message rate for
// the baseline and ALPU NICs.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace alpu;
  using workload::NicMode;

  constexpr int kBurst = 64;
  std::printf("=== message gap vs standing posted-queue length ===\n");
  std::printf("(burst of %d back-to-back 0-byte sends; gap measured at the\n"
              " receiver; Mmsg/s = 1000/gap_ns)\n\n", kBurst);

  common::TextTable t;
  t.set_header({"queue_length", "baseline gap (ns)", "alpu128 gap (ns)",
                "alpu256 gap (ns)", "baseline Mmsg/s", "alpu256 Mmsg/s"});
  for (std::size_t len : {0ul, 10ul, 50ul, 100ul, 200ul, 400ul}) {
    auto gap = [&](NicMode mode) {
      workload::MessageRateParams p;
      p.mode = mode;
      p.queue_length = len;
      p.burst = kBurst;
      return common::to_ns(workload::run_message_rate(p));
    };
    const double base = gap(NicMode::kBaseline);
    const double a128 = gap(NicMode::kAlpu128);
    const double a256 = gap(NicMode::kAlpu256);
    t.add_row({std::to_string(len), common::fmt_double(base, 1),
               common::fmt_double(a128, 1), common::fmt_double(a256, 1),
               common::fmt_double(1000.0 / base, 2),
               common::fmt_double(1000.0 / a256, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: the baseline's gap grows with every entry each\n"
              "message must walk past (message rate collapses); the ALPU\n"
              "holds the gap flat until the queue outgrows its capacity.\n");
  return 0;
}
