// ALPU micro-benchmarks on the cycle-level model (Section V-D numbers).
//
// Measures, in simulated time: match latency and throughput (the paper's
// "new match every 6 or 7 clock cycles, no overlap"), insert rate ("every
// other clock cycle"), and the block-size trade-off combining the cycle
// model with the FPGA timing model (block 32 saves a pipeline stage but
// clocks ~10% slower — which wins?).
#include <cstdio>
#include <memory>
#include <vector>

#include "alpu/alpu.hpp"
#include "common/table.hpp"
#include "fpga/area_model.hpp"
#include "sim/engine.hpp"

namespace {

using namespace alpu;
using common::TimePs;

struct MicroResult {
  double match_latency_ns;
  double match_throughput_ns;  ///< steady-state time per match
  double insert_ns;            ///< steady-state time per insert
};

MicroResult run_micro(std::size_t cells, std::size_t block,
                      common::ClockPeriod clock, unsigned latency) {
  hw::AlpuConfig cfg;
  cfg.total_cells = cells;
  cfg.block_size = block;
  cfg.clock = clock;
  cfg.match_latency_cycles = latency;
  cfg.header_fifo_depth = 4096;
  cfg.result_fifo_depth = 4096;
  cfg.command_fifo_depth = 4096;

  MicroResult out{};

  {  // match latency + throughput against a full array
    sim::Engine engine;
    hw::Alpu unit(engine, "dut", cfg);
    const bool started =
        unit.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
    assert(started);
    (void)started;
    engine.run_until(16 * clock.period());
    (void)unit.pop_result();  // ack
    const auto p = match::make_recv_pattern(0, 1, 1);
    for (std::size_t i = 0; i < cells; ++i) {
      const bool ok = unit.push_command(
          {hw::CommandKind::kInsert, p.bits, p.mask,
           static_cast<match::Cookie>(i)});
      assert(ok);
      (void)ok;
    }
    const bool stopped =
        unit.push_command({hw::CommandKind::kStopInsert, 0, 0, 0});
    assert(stopped);
    (void)stopped;
    engine.run_until(engine.now() + (cells * 2 + 32) * clock.period());

    // One probe for latency.
    const TimePs t0 = engine.now();
    const bool probed = unit.push_probe(hw::Probe{p.bits, 0, 0});
    assert(probed);
    (void)probed;
    while (!unit.result_available()) {
      engine.run_until(engine.now() + clock.period());
    }
    out.match_latency_ns = common::to_ns(unit.pop_result()->issued_at - t0);

    // A burst for throughput.
    constexpr int kBurst = 64;
    const TimePs t1 = engine.now();
    for (int i = 0; i < kBurst; ++i) {
      const bool ok = unit.push_probe(hw::Probe{p.bits, 0, 0});
      assert(ok);
      (void)ok;
    }
    int seen = 0;
    while (seen < kBurst) {
      engine.run_until(engine.now() + clock.period());
      while (unit.pop_result().has_value()) ++seen;
    }
    out.match_throughput_ns = common::to_ns(engine.now() - t1) / kBurst;
  }

  {  // insert rate
    sim::Engine engine;
    hw::Alpu unit(engine, "dut", cfg);
    const bool started =
        unit.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
    assert(started);
    (void)started;
    engine.run_until(16 * clock.period());
    (void)unit.pop_result();
    const auto p = match::make_recv_pattern(0, 1, 1);
    const TimePs t0 = engine.now();
    for (std::size_t i = 0; i < cells; ++i) {
      const bool ok = unit.push_command(
          {hw::CommandKind::kInsert, p.bits, p.mask,
           static_cast<match::Cookie>(i)});
      assert(ok);
      (void)ok;
    }
    while (unit.array().occupancy() < cells) {
      engine.run_until(engine.now() + clock.period());
    }
    out.insert_ns = common::to_ns(engine.now() - t0) / static_cast<double>(cells);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== ALPU cycle-model micro-benchmarks ===\n\n");

  // At the simulation's assumed ASIC speed (500 MHz, 7-cycle pipeline).
  {
    const auto r = run_micro(256, 16, common::ClockPeriod::from_mhz(500), 7);
    std::printf("ASIC point (256 cells, block 16, 500 MHz, 7-cycle):\n");
    std::printf("  match latency     : %5.1f ns  (paper: 7 cycles = 14 ns)\n",
                r.match_latency_ns);
    std::printf("  match throughput  : %5.1f ns/match (paper: no overlap => 14 ns)\n",
                r.match_throughput_ns);
    std::printf("  insert rate       : %5.1f ns/insert (paper: every other cycle = 4 ns)\n\n",
                r.insert_ns);
  }

  // Block-size trade-off using the FPGA timing model's clock for each
  // configuration (Table IV frequencies).
  std::printf("Block-size trade-off at FPGA speed (256 cells):\n");
  common::TextTable t;
  t.set_header({"block", "clock MHz", "pipeline", "match lat (ns)",
                "match thpt (ns)", "insert (ns)"});
  for (std::size_t block : {8u, 16u, 32u}) {
    fpga::PrototypeParams pp;
    pp.total_cells = 256;
    pp.block_size = block;
    const auto est = fpga::estimate(pp);
    const auto period = static_cast<std::uint64_t>(1e6 / est.clock_mhz);
    const auto r = run_micro(256, block, common::ClockPeriod{period},
                             est.pipeline_latency);
    t.add_row({std::to_string(block), common::fmt_double(est.clock_mhz, 1),
               std::to_string(est.pipeline_latency),
               common::fmt_double(r.match_latency_ns, 1),
               common::fmt_double(r.match_throughput_ns, 1),
               common::fmt_double(r.insert_ns, 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: block 32 trades one pipeline stage (6 vs 7 cycles)\n"
              "against ~10%% clock: the configurations end up within a few\n"
              "ns of each other, so area (Table IV) decides.\n");
  return 0;
}
