// ALPU micro-benchmarks on the cycle-level model (Section V-D numbers).
//
// Measures, in simulated time: match latency and throughput (the paper's
// "new match every 6 or 7 clock cycles, no overlap"), insert rate ("every
// other clock cycle"), and the block-size trade-off combining the cycle
// model with the FPGA timing model (block 32 saves a pipeline stage but
// clocks ~10% slower — which wins?).
//
// A second section measures the WALL-CLOCK cost of the match engine
// itself (ns of host time per probe, not simulated ns) — the number that
// bounds how fast sweeps run.  `--json <path>` dumps those results for
// scripts/bench_report.py and the CI perf-smoke gate; `--iters N` scales
// the measurement loops (CI uses a reduced budget).
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "alpu/alpu.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "fpga/area_model.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace alpu;
using common::TimePs;

struct MicroResult {
  double match_latency_ns;
  double match_throughput_ns;  ///< steady-state time per match
  double insert_ns;            ///< steady-state time per insert
};

MicroResult run_micro(std::size_t cells, std::size_t block,
                      common::ClockPeriod clock, unsigned latency) {
  hw::AlpuConfig cfg;
  cfg.total_cells = cells;
  cfg.block_size = block;
  cfg.clock = clock;
  cfg.match_latency_cycles = latency;
  cfg.header_fifo_depth = 4096;
  cfg.result_fifo_depth = 4096;
  cfg.command_fifo_depth = 4096;

  MicroResult out{};

  {  // match latency + throughput against a full array
    sim::Engine engine;
    hw::Alpu unit(engine, "dut", cfg);
    const bool started =
        unit.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
    assert(started);
    (void)started;
    engine.run_until(16 * clock.period());
    (void)unit.pop_result();  // ack
    const auto p = match::make_recv_pattern(0, 1, 1);
    for (std::size_t i = 0; i < cells; ++i) {
      const bool ok = unit.push_command(
          {hw::CommandKind::kInsert, p.bits, p.mask,
           static_cast<match::Cookie>(i)});
      assert(ok);
      (void)ok;
    }
    const bool stopped =
        unit.push_command({hw::CommandKind::kStopInsert, 0, 0, 0});
    assert(stopped);
    (void)stopped;
    engine.run_until(engine.now() + (cells * 2 + 32) * clock.period());

    // One probe for latency.
    const TimePs t0 = engine.now();
    const bool probed = unit.push_probe(hw::Probe{p.bits, 0, 0});
    assert(probed);
    (void)probed;
    while (!unit.result_available()) {
      engine.run_until(engine.now() + clock.period());
    }
    out.match_latency_ns = common::to_ns(unit.pop_result()->issued_at - t0);

    // A burst for throughput.
    constexpr int kBurst = 64;
    const TimePs t1 = engine.now();
    for (int i = 0; i < kBurst; ++i) {
      const bool ok = unit.push_probe(hw::Probe{p.bits, 0, 0});
      assert(ok);
      (void)ok;
    }
    int seen = 0;
    while (seen < kBurst) {
      engine.run_until(engine.now() + clock.period());
      while (unit.pop_result().has_value()) ++seen;
    }
    out.match_throughput_ns = common::to_ns(engine.now() - t1) / kBurst;
  }

  {  // insert rate
    sim::Engine engine;
    hw::Alpu unit(engine, "dut", cfg);
    const bool started =
        unit.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
    assert(started);
    (void)started;
    engine.run_until(16 * clock.period());
    (void)unit.pop_result();
    const auto p = match::make_recv_pattern(0, 1, 1);
    const TimePs t0 = engine.now();
    for (std::size_t i = 0; i < cells; ++i) {
      const bool ok = unit.push_command(
          {hw::CommandKind::kInsert, p.bits, p.mask,
           static_cast<match::Cookie>(i)});
      assert(ok);
      (void)ok;
    }
    while (unit.array().occupancy() < cells) {
      engine.run_until(engine.now() + clock.period());
    }
    out.insert_ns = common::to_ns(engine.now() - t0) / static_cast<double>(cells);
  }
  return out;
}

// ---- wall-clock match-engine section --------------------------------------

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// Build a full array of non-matching entries (the worst-case probe
/// scans every cell before the priority network reports a miss).
hw::AlpuArray make_full_array(std::size_t cells) {
  hw::AlpuArray array(hw::AlpuFlavor::kPostedReceive, cells, 16);
  for (std::size_t i = 0; i < cells; ++i) {
    const auto p = match::make_recv_pattern(
        0, 1, static_cast<std::uint32_t>(i % 512));
    const bool ok = array.insert(p.bits, p.mask,
                                 static_cast<match::Cookie>(i));
    assert(ok);
    (void)ok;
  }
  return array;
}

/// Host ns per match() probe against a full `cells`-entry array.
double measure_match_ns(std::size_t cells, std::uint64_t iters) {
  const hw::AlpuArray array = make_full_array(cells);
  const hw::Probe miss{match::pack(match::Envelope{1, 1, 1}), 0, 0};
  // Warm up (page in the planes, settle the branch predictors).
  std::uint64_t sink = 0;
  for (int i = 0; i < 1000; ++i) sink += array.match(miss).hit;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += array.match(miss).hit;
  }
  const auto t1 = Clock::now();
  if (sink != 0) std::abort();  // miss probe must never hit (and defeats DCE)
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// Host ns per match_tree() probe (the hardware-fidelity reduction).
double measure_match_tree_ns(std::size_t cells, std::uint64_t iters) {
  const hw::AlpuArray array = make_full_array(cells);
  const hw::Probe miss{match::pack(match::Envelope{1, 1, 1}), 0, 0};
  std::uint64_t sink = 0;
  for (int i = 0; i < 100; ++i) sink += array.match_tree(miss).hit;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += array.match_tree(miss).hit;
  }
  const auto t1 = Clock::now();
  if (sink != 0) std::abort();
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// Simulated events executed per wall-clock second for one full-machine
/// Figure-5 data point (ALPU-256, 200-entry queue).
double measure_events_per_sec(int runs) {
  std::uint64_t events = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < runs; ++i) {
    workload::PrepostedParams p;
    p.mode = workload::NicMode::kAlpu256;
    p.queue_length = 200;
    events += workload::run_preposted(p).events_executed;
  }
  const auto t1 = Clock::now();
  return static_cast<double>(events) / (elapsed_ns(t0, t1) * 1e-9);
}

struct WallClockResults {
  std::vector<std::pair<std::size_t, double>> match_ns;       // cells, ns
  std::vector<std::pair<std::size_t, double>> match_tree_ns;  // cells, ns
  double events_per_sec = 0.0;
  std::uint64_t iters = 0;
};

WallClockResults run_wall_clock(std::uint64_t iters) {
  WallClockResults r;
  r.iters = iters;
  for (std::size_t cells : {64u, 128u, 256u}) {
    r.match_ns.emplace_back(cells, measure_match_ns(cells, iters));
  }
  // match_tree touches every comparator by construction; give it a
  // tenth of the budget so the section stays quick.
  const std::uint64_t tree_iters = iters / 10 > 0 ? iters / 10 : 1;
  r.match_tree_ns.emplace_back(256, measure_match_tree_ns(256, tree_iters));
  r.events_per_sec = measure_events_per_sec(3);
  return r;
}

void write_json(const WallClockResults& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"alpu_match\",\n");
  std::fprintf(f, "  \"iters\": %llu,\n",
               static_cast<unsigned long long>(r.iters));
  std::fprintf(f, "  \"match_ns_per_probe\": {");
  for (std::size_t i = 0; i < r.match_ns.size(); ++i) {
    std::fprintf(f, "%s\"%zu\": %.3f", i ? ", " : "", r.match_ns[i].first,
                 r.match_ns[i].second);
  }
  std::fprintf(f, "},\n  \"match_tree_ns_per_probe\": {");
  for (std::size_t i = 0; i < r.match_tree_ns.size(); ++i) {
    std::fprintf(f, "%s\"%zu\": %.3f", i ? ", " : "",
                 r.match_tree_ns[i].first, r.match_tree_ns[i].second);
  }
  std::fprintf(f, "},\n  \"events_per_sec\": %.0f\n}\n", r.events_per_sec);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags_opt = common::Flags::parse(argc, argv);
  if (!flags_opt.has_value()) {
    std::fprintf(stderr,
                 "usage: bench_alpu_micro [--iters N] [--json <path>]\n");
    return 2;
  }
  const common::Flags& flags = *flags_opt;
  const auto iters =
      static_cast<std::uint64_t>(flags.get_int("iters", 2'000'000));

  std::printf("=== ALPU cycle-model micro-benchmarks ===\n\n");

  // At the simulation's assumed ASIC speed (500 MHz, 7-cycle pipeline).
  {
    const auto r = run_micro(256, 16, common::ClockPeriod::from_mhz(500), 7);
    std::printf("ASIC point (256 cells, block 16, 500 MHz, 7-cycle):\n");
    std::printf("  match latency     : %5.1f ns  (paper: 7 cycles = 14 ns)\n",
                r.match_latency_ns);
    std::printf("  match throughput  : %5.1f ns/match (paper: no overlap => 14 ns)\n",
                r.match_throughput_ns);
    std::printf("  insert rate       : %5.1f ns/insert (paper: every other cycle = 4 ns)\n\n",
                r.insert_ns);
  }

  // Block-size trade-off using the FPGA timing model's clock for each
  // configuration (Table IV frequencies).
  std::printf("Block-size trade-off at FPGA speed (256 cells):\n");
  common::TextTable t;
  t.set_header({"block", "clock MHz", "pipeline", "match lat (ns)",
                "match thpt (ns)", "insert (ns)"});
  for (std::size_t block : {8u, 16u, 32u}) {
    fpga::PrototypeParams pp;
    pp.total_cells = 256;
    pp.block_size = block;
    const auto est = fpga::estimate(pp);
    const auto period = static_cast<std::uint64_t>(1e6 / est.clock_mhz);
    const auto r = run_micro(256, block, common::ClockPeriod{period},
                             est.pipeline_latency);
    t.add_row({std::to_string(block), common::fmt_double(est.clock_mhz, 1),
               std::to_string(est.pipeline_latency),
               common::fmt_double(r.match_latency_ns, 1),
               common::fmt_double(r.match_throughput_ns, 1),
               common::fmt_double(r.insert_ns, 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: block 32 trades one pipeline stage (6 vs 7 cycles)\n"
              "against ~10%% clock: the configurations end up within a few\n"
              "ns of each other, so area (Table IV) decides.\n");

  // Wall-clock section: host-time cost of the match engine itself.
  std::printf("\n=== Match-engine wall-clock (host ns, miss probe over a "
              "full array) ===\n\n");
  const WallClockResults wc = run_wall_clock(iters);
  common::TextTable wt;
  wt.set_header({"cells", "match (ns/probe)", "match_tree (ns/probe)"});
  for (const auto& [cells, ns] : wc.match_ns) {
    std::string tree = "-";
    for (const auto& [tc, tns] : wc.match_tree_ns) {
      if (tc == cells) tree = common::fmt_double(tns, 2);
    }
    wt.add_row({std::to_string(cells), common::fmt_double(ns, 2), tree});
  }
  std::printf("%s\n", wt.render().c_str());
  std::printf("full-machine simulation rate: %.0f events/s\n",
              wc.events_per_sec);

  if (flags.has("json")) {
    write_json(wc, flags.get("json", ""));
  }
  return 0;
}
