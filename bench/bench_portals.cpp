// Portals offload study (Section VIII future work).
//
// Two questions the paper leaves open, answered with this codebase:
//   1. What does ALPU acceleration buy a Portals match list?  (walked
//     entries per delivered put, with the firmware cost model applied)
//   2. What does the full-width (64-bit match, Portals-capable) unit
//     cost in hardware relative to the 42-bit MPI unit?  (area model —
//     the Section III-A footnote calls the mask-per-bit configuration
//     the "worst case" for exactly this reason)
#include <cassert>
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "fpga/area_model.hpp"
#include "portals/portals.hpp"

namespace {

using namespace alpu;

constexpr double kPerEntryNs = 14.0;   // software walk, in-cache
constexpr double kAlpuResultNs = 84.0; // bus reads + bookkeeping

struct Sweep {
  double sw_ns_per_put;
  double alpu_ns_per_put;
  double walked_sw;
  double walked_alpu;
};

Sweep run(std::size_t standing, int puts) {
  // A standing list of `standing` use-once entries that the measured
  // puts never match, plus one matching entry appended per put — the
  // Portals analogue of the Figure-5 preposted benchmark.
  Sweep out{};
  for (int accelerated = 0; accelerated < 2; ++accelerated) {
    portals::PortalTable table(1);
    const auto eq = table.eq_alloc(8192);
    if (accelerated != 0) {
      const bool ok = table.attach_alpu(0, 512, 16);
      assert(ok);
      (void)ok;
    }
    portals::MatchEntrySpec decoy;
    decoy.match_bits = 0xDEAD'0000;
    decoy.md.length = 64;
    for (std::size_t i = 0; i < standing; ++i) {
      (void)table.me_attach(0, decoy, eq);
    }
    double walked = 0;
    double hits = 0;
    for (int i = 0; i < puts; ++i) {
      portals::MatchEntrySpec target;
      target.match_bits = 0x1000 + static_cast<unsigned>(i);
      target.md.length = 256;
      (void)table.me_attach(0, target, eq);
      const auto r =
          table.put(0, {0, 0}, 0x1000 + static_cast<unsigned>(i), 128);
      assert(r.accepted);
      walked += static_cast<double>(r.entries_walked);
      hits += r.alpu_hit ? 1.0 : 0.0;
    }
    const double ns =
        (walked * kPerEntryNs + hits * kAlpuResultNs +
         (accelerated != 0 ? static_cast<double>(puts) - hits : 0.0) *
             kAlpuResultNs) /
        puts;
    if (accelerated != 0) {
      out.alpu_ns_per_put = ns;
      out.walked_alpu = walked / puts;
    } else {
      out.sw_ns_per_put = ns;
      out.walked_sw = walked / puts;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Portals match-list offload (Section VIII) ===\n\n");
  std::printf("Use-once entries (the accelerable, MPI-receive-shaped case);\n"
              "standing list of non-matching entries ahead of each target.\n\n");
  common::TextTable t;
  t.set_header({"standing entries", "sw walked/put", "sw ns/put",
                "alpu walked/put", "alpu ns/put", "speedup"});
  for (std::size_t standing : {0ul, 16ul, 64ul, 128ul, 256ul, 480ul}) {
    const Sweep s = run(standing, 512);
    t.add_row({std::to_string(standing), common::fmt_double(s.walked_sw, 1),
               common::fmt_double(s.sw_ns_per_put, 1),
               common::fmt_double(s.walked_alpu, 1),
               common::fmt_double(s.alpu_ns_per_put, 1),
               common::fmt_double(s.sw_ns_per_put / s.alpu_ns_per_put, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("=== full-width (Portals) vs 42-bit (MPI) unit cost ===\n");
  common::TextTable a;
  a.set_header({"match width", "cells", "LUTs", "FFs", "slices", "MHz"});
  for (unsigned width : {42u, 64u}) {
    for (std::size_t cells : {128ul, 256ul}) {
      fpga::PrototypeParams p;
      p.total_cells = cells;
      p.block_size = 16;
      p.match_width = width;
      const auto est = fpga::estimate(p);
      a.add_row({std::to_string(width), std::to_string(cells),
                 std::to_string(est.luts), std::to_string(est.flip_flops),
                 std::to_string(est.slices),
                 common::fmt_double(est.clock_mhz, 1)});
    }
  }
  std::printf("%s\n", a.render().c_str());
  fpga::PrototypeParams narrow, wide;
  narrow.total_cells = wide.total_cells = 256;
  narrow.block_size = wide.block_size = 16;
  narrow.match_width = 42;
  wide.match_width = 64;
  const double growth =
      100.0 * (static_cast<double>(fpga::estimate(wide).flip_flops) /
                   static_cast<double>(fpga::estimate(narrow).flip_flops) -
               1.0);
  std::printf("The 64-bit unit costs ~%.0f%% more flip-flops than the MPI\n"
              "unit (stored mask bit per match bit), the growth the paper's\n"
              "'worst case' footnote anticipates.\n", growth);
  return 0;
}
