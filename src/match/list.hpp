// Reference software match lists (the baseline NIC's data structures).
//
// Every published MPI implementation the paper surveys (MPICH, LAM,
// MPI/Pro, MPICH2, LA-MPI) keeps the posted-receive queue and the
// unexpected-message queue as linear lists searched front-to-back.
// These containers are that reference implementation: they define the
// *correct* answer the ALPU model is property-tested against, and they
// expose traversal counts so the NIC CPU cost model can charge time and
// cache traffic per visited entry.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>

#include "match/match.hpp"

namespace alpu::match {

/// Outcome of a list search.
struct SearchResult {
  bool found = false;
  std::size_t index = 0;      ///< position of the hit (valid when found)
  Cookie cookie = 0;          ///< cookie of the hit (valid when found)
  std::size_t visited = 0;    ///< entries examined, including the hit

  friend bool operator==(const SearchResult&, const SearchResult&) = default;
};

/// An entry of the posted-receive queue: a pattern awaiting messages.
struct PostedEntry {
  Pattern pattern;
  Cookie cookie = 0;
  std::uint64_t addr = 0;  ///< simulated NIC-memory address of the full entry
};

/// An entry of the unexpected queue: an explicit arrived envelope.
struct UnexpectedEntry {
  MatchWord word = 0;
  Cookie cookie = 0;
  std::uint64_t addr = 0;  ///< simulated NIC-memory address of the full entry
};

/// The posted-receive queue as a linear list.
///
/// `search(word)` walks front-to-back and returns the first entry whose
/// pattern matches the incoming envelope — exactly MPI's required
/// "first posted receive wins" semantics.  The caller erases the hit.
class PostedList {
 public:
  void append(PostedEntry e) { entries_.push_back(e); }

  /// First-match search for the incoming explicit `word`.
  SearchResult search(MatchWord word) const;

  /// Search only indices [first, size()) — the NIC uses this to search
  /// the portion of the queue not yet loaded into the ALPU.
  SearchResult search_from(std::size_t first, MatchWord word) const;

  /// Remove the entry at `index` (after a successful match).
  void erase(std::size_t index);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const PostedEntry& at(std::size_t i) const { return entries_[i]; }
  void clear() { entries_.clear(); }

 private:
  std::deque<PostedEntry> entries_;
};

/// The unexpected-message queue as a linear list.
///
/// Probing is the *reverse* lookup the paper highlights: the stored
/// entries are explicit, the probe (a receive being posted) may carry
/// wildcards.  First match in arrival order wins, which preserves MPI's
/// ordering guarantee for same-(source, context) messages.
class UnexpectedList {
 public:
  void append(UnexpectedEntry e) { entries_.push_back(e); }

  /// First-match search with a possibly-wildcarded probe pattern.
  SearchResult search(const Pattern& probe) const;

  /// Search only indices [first, size()).
  SearchResult search_from(std::size_t first, const Pattern& probe) const;

  void erase(std::size_t index);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const UnexpectedEntry& at(std::size_t i) const { return entries_[i]; }
  void clear() { entries_.clear(); }

 private:
  std::deque<UnexpectedEntry> entries_;
};

// ---- inline implementations -------------------------------------------

inline SearchResult PostedList::search(MatchWord word) const {
  return search_from(0, word);
}

inline SearchResult PostedList::search_from(std::size_t first,
                                            MatchWord word) const {
  SearchResult r;
  for (std::size_t i = first; i < entries_.size(); ++i) {
    ++r.visited;
    if (entries_[i].pattern.matches(word)) {
      r.found = true;
      r.index = i;
      r.cookie = entries_[i].cookie;
      return r;
    }
  }
  return r;
}

inline void PostedList::erase(std::size_t index) {
  assert(index < entries_.size());
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

inline SearchResult UnexpectedList::search(const Pattern& probe) const {
  return search_from(0, probe);
}

inline SearchResult UnexpectedList::search_from(std::size_t first,
                                                const Pattern& probe) const {
  SearchResult r;
  for (std::size_t i = first; i < entries_.size(); ++i) {
    ++r.visited;
    if (probe.matches(entries_[i].word)) {
      r.found = true;
      r.index = i;
      r.cookie = entries_[i].cookie;
      return r;
    }
  }
  return r;
}

inline void UnexpectedList::erase(std::size_t index) {
  assert(index < entries_.size());
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

}  // namespace alpu::match
