// Reference software match lists (the baseline NIC's data structures).
//
// Every published MPI implementation the paper surveys (MPICH, LAM,
// MPI/Pro, MPICH2, LA-MPI) keeps the posted-receive queue and the
// unexpected-message queue as linear lists searched front-to-back.
// These containers are that reference implementation: they define the
// *correct* answer the ALPU model is property-tested against, and they
// expose traversal counts so the NIC CPU cost model can charge time and
// cache traffic per visited entry.
//
// Storage is a contiguous struct-of-arrays arena: the search keys
// (bits/mask for the posted list, the explicit word for the unexpected
// list) live in their own stride-1 planes, so a front-to-back walk is a
// dense, prefetch-friendly scan instead of chasing std::deque chunks.
// Cookies and simulated addresses sit in parallel side planes touched
// only on a hit.  Erase compacts the planes with memmove block moves,
// and a cookie→index side table keeps `index_of()` O(1) — matching the
// O(1) cost the hardware cookie (a direct NIC-RAM pointer) is charged.
//
// `visited` counts are semantically identical to the original deque
// walk (entries examined including the hit), so the NIC cost model —
// and therefore every figure — is unchanged to the byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/dense.hpp"
#include "common/stats.hpp"
#include "match/match.hpp"

namespace alpu::match {

/// Outcome of a list search.
struct SearchResult {
  bool found = false;
  std::size_t index = 0;      ///< position of the hit (valid when found)
  Cookie cookie = 0;          ///< cookie of the hit (valid when found)
  std::size_t visited = 0;    ///< entries examined, including the hit

  friend bool operator==(const SearchResult&, const SearchResult&) = default;
};

/// An entry of the posted-receive queue: a pattern awaiting messages.
struct PostedEntry {
  Pattern pattern;
  Cookie cookie = 0;
  std::uint64_t addr = 0;  ///< simulated NIC-memory address of the full entry
};

/// An entry of the unexpected queue: an explicit arrived envelope.
struct UnexpectedEntry {
  MatchWord word = 0;
  Cookie cookie = 0;
  std::uint64_t addr = 0;  ///< simulated NIC-memory address of the full entry
};

namespace detail {

/// Cookie→index side table shared by both lists.  Append, lookup and
/// the hashed part of erase are O(1); the erase additionally renumbers
/// the shifted suffix while the arena memmoves it (the erase is
/// already O(suffix), so this does not change its complexity class).
///
/// Cookies resolve to *stable handles* (slots of `index_of_handle_`)
/// through a pooled FlatMap, and only the handle→index plane moves when
/// entries shift.  The suffix renumbering — run once per suffix entry
/// on EVERY erase, so it dominates long-queue message cost — is then a
/// pair of sequential vector stores per entry instead of a hash probe:
/// the hash table itself is untouched by shifts.
class CookieIndex {
 public:
  /// Register `cookie` at `index`; appends are always at the tail.
  void append(Cookie cookie, std::size_t index) {
    ALPU_ASSERT(pos_.find(cookie) == nullptr,
                "duplicate cookie appended to a match list");
    ALPU_ASSERT(index == order_.size(),
                "match-list append must be at the tail");
    std::uint32_t handle;
    if (!free_.empty()) {
      handle = free_.back();
      free_.pop_back();
      index_of_handle_[handle] = static_cast<std::uint32_t>(index);
    } else {
      handle = static_cast<std::uint32_t>(index_of_handle_.size());
      index_of_handle_.push_back(static_cast<std::uint32_t>(index));
    }
    pos_[cookie] = handle;
    order_.push_back(handle);
  }
  /// Drop `cookie` (currently at `index`) and renumber the suffix the
  /// caller is about to memmove down by one.
  void erase(Cookie cookie, std::size_t index) {
    const std::uint32_t* handle = pos_.find(cookie);
    ALPU_ASSERT(handle != nullptr, "cookie not present in match list");
    ALPU_ASSERT(index_of_handle_[*handle] == index,
                "match-list erase index does not hold this cookie");
    free_.push_back(*handle);
    pos_.erase(cookie);
    const std::size_t n = order_.size();
    for (std::size_t i = index + 1; i < n; ++i) {
      const std::uint32_t moved = order_[i];
      order_[i - 1] = moved;
      index_of_handle_[moved] = static_cast<std::uint32_t>(i - 1);
    }
    order_.pop_back();
  }
  bool contains(Cookie cookie) const { return pos_.contains(cookie); }
  std::size_t size() const { return pos_.size(); }
  /// Structural invariant (ALPU_CHECKED builds): the side table is a
  /// bijection onto the arena — every cookie maps to the index that
  /// holds it, and the sizes agree.
  bool consistent_with(const std::vector<Cookie>& cookies) const {
    if (pos_.size() != cookies.size()) return false;
    if (order_.size() != cookies.size()) return false;
    for (std::size_t i = 0; i < cookies.size(); ++i) {
      const std::uint32_t* handle = pos_.find(cookies[i]);
      if (handle == nullptr || order_[i] != *handle) return false;
      if (index_of_handle_[*handle] != i) return false;
    }
    return true;
  }
  std::size_t index_of(Cookie cookie) const {
    const std::uint32_t* handle = pos_.find(cookie);
    ALPU_ASSERT(handle != nullptr, "cookie not present in match list");
    return index_of_handle_[*handle];
  }
  void clear() {
    pos_.clear();
    order_.clear();
    index_of_handle_.clear();
    free_.clear();
  }

 private:
  common::FlatMap<Cookie, std::uint32_t> pos_;  ///< cookie → stable handle
  std::vector<std::uint32_t> order_;  ///< arena index → handle (mirrors arena)
  std::vector<std::uint32_t> index_of_handle_;  ///< handle → arena index
  std::vector<std::uint32_t> free_;             ///< recycled handles
};

}  // namespace detail

/// The posted-receive queue as a linear list.
///
/// `search(word)` walks front-to-back and returns the first entry whose
/// pattern matches the incoming envelope — exactly MPI's required
/// "first posted receive wins" semantics.  The caller erases the hit.
class PostedList {
 public:
  void append(PostedEntry e) {
    index_.append(e.cookie, bits_.size());
    bits_.push_back(e.pattern.bits);
    mask_.push_back(e.pattern.mask);
    cookies_.push_back(e.cookie);
    addrs_.push_back(e.addr);
  }

  /// First-match search for the incoming explicit `word`.
  SearchResult search(MatchWord word) const { return search_from(0, word); }

  /// Search only indices [first, size()) — the NIC uses this to search
  /// the portion of the queue not yet loaded into the ALPU.
  SearchResult search_from(std::size_t first, MatchWord word) const;

  /// Remove the entry at `index` (after a successful match).
  void erase(std::size_t index);

  /// Current index of the entry holding `cookie` (must be present);
  /// O(1) via the side table.
  std::size_t index_of(Cookie cookie) const { return index_.index_of(cookie); }
  bool contains(Cookie cookie) const { return index_.contains(cookie); }

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }
  /// Materialized view of entry `i` (by value — storage is SoA planes).
  PostedEntry at(std::size_t i) const {
    ALPU_ASSERT(i < size(), "posted-list index out of range");
    return PostedEntry{Pattern{bits_[i], mask_[i]}, cookies_[i], addrs_[i]};
  }
  void clear() {
    bits_.clear();
    mask_.clear();
    cookies_.clear();
    addrs_.clear();
    index_.clear();
  }

  const common::MatchCounters& counters() const { return counters_; }

 private:
  std::vector<MatchWord> bits_;
  std::vector<MatchWord> mask_;
  std::vector<Cookie> cookies_;
  std::vector<std::uint64_t> addrs_;
  detail::CookieIndex index_;
  mutable common::MatchCounters counters_;
};

/// The unexpected-message queue as a linear list.
///
/// Probing is the *reverse* lookup the paper highlights: the stored
/// entries are explicit, the probe (a receive being posted) may carry
/// wildcards.  First match in arrival order wins, which preserves MPI's
/// ordering guarantee for same-(source, context) messages.
class UnexpectedList {
 public:
  void append(UnexpectedEntry e) {
    index_.append(e.cookie, words_.size());
    words_.push_back(e.word);
    cookies_.push_back(e.cookie);
    addrs_.push_back(e.addr);
  }

  /// First-match search with a possibly-wildcarded probe pattern.
  SearchResult search(const Pattern& probe) const {
    return search_from(0, probe);
  }

  /// Search only indices [first, size()).
  SearchResult search_from(std::size_t first, const Pattern& probe) const;

  void erase(std::size_t index);

  /// Current index of the entry holding `cookie` (must be present);
  /// O(1) via the side table.
  std::size_t index_of(Cookie cookie) const { return index_.index_of(cookie); }
  bool contains(Cookie cookie) const { return index_.contains(cookie); }

  std::size_t size() const { return words_.size(); }
  bool empty() const { return words_.empty(); }
  /// Materialized view of entry `i` (by value — storage is SoA planes).
  UnexpectedEntry at(std::size_t i) const {
    ALPU_ASSERT(i < size(), "unexpected-list index out of range");
    return UnexpectedEntry{words_[i], cookies_[i], addrs_[i]};
  }
  void clear() {
    words_.clear();
    cookies_.clear();
    addrs_.clear();
    index_.clear();
  }

  const common::MatchCounters& counters() const { return counters_; }

 private:
  std::vector<MatchWord> words_;
  std::vector<Cookie> cookies_;
  std::vector<std::uint64_t> addrs_;
  detail::CookieIndex index_;
  mutable common::MatchCounters counters_;
};

// ---- inline implementations -------------------------------------------

inline SearchResult PostedList::search_from(std::size_t first,
                                            MatchWord word) const {
  SearchResult r;
  ++counters_.probes;
  const std::size_t n = bits_.size();
  for (std::size_t i = first; i < n; ++i) {
    ++r.visited;
    if (((bits_[i] ^ word) & ~mask_[i] & kFullMask) == 0) {
      r.found = true;
      r.index = i;
      r.cookie = cookies_[i];
      break;
    }
  }
  counters_.cells_scanned += r.visited;
  return r;
}

inline void PostedList::erase(std::size_t index) {
  ALPU_ASSERT(index < size(), "posted-list erase index out of range");
  index_.erase(cookies_[index], index);
  const std::size_t moved = size() - index - 1;
  if (moved > 0) {
    std::memmove(&bits_[index], &bits_[index + 1],
                 moved * sizeof(MatchWord));
    std::memmove(&mask_[index], &mask_[index + 1],
                 moved * sizeof(MatchWord));
    std::memmove(&cookies_[index], &cookies_[index + 1],
                 moved * sizeof(Cookie));
    std::memmove(&addrs_[index], &addrs_[index + 1],
                 moved * sizeof(std::uint64_t));
    counters_.compaction_moves += moved;
  }
  bits_.pop_back();
  mask_.pop_back();
  cookies_.pop_back();
  addrs_.pop_back();
  ALPU_INVARIANT(index_.consistent_with(cookies_),
                 "posted-list erase broke the cookie map");
}

inline SearchResult UnexpectedList::search_from(std::size_t first,
                                                const Pattern& probe) const {
  SearchResult r;
  ++counters_.probes;
  const MatchWord care = ~probe.mask & kFullMask;
  const std::size_t n = words_.size();
  for (std::size_t i = first; i < n; ++i) {
    ++r.visited;
    if (((probe.bits ^ words_[i]) & care) == 0) {
      r.found = true;
      r.index = i;
      r.cookie = cookies_[i];
      break;
    }
  }
  counters_.cells_scanned += r.visited;
  return r;
}

inline void UnexpectedList::erase(std::size_t index) {
  ALPU_ASSERT(index < size(), "unexpected-list erase index out of range");
  index_.erase(cookies_[index], index);
  const std::size_t moved = size() - index - 1;
  if (moved > 0) {
    std::memmove(&words_[index], &words_[index + 1],
                 moved * sizeof(MatchWord));
    std::memmove(&cookies_[index], &cookies_[index + 1],
                 moved * sizeof(Cookie));
    std::memmove(&addrs_[index], &addrs_[index + 1],
                 moved * sizeof(std::uint64_t));
    counters_.compaction_moves += moved;
  }
  words_.pop_back();
  cookies_.pop_back();
  addrs_.pop_back();
  ALPU_INVARIANT(index_.consistent_with(cookies_),
                 "unexpected-list erase broke the cookie map");
}

}  // namespace alpu::match
