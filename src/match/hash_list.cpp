#include "match/hash_list.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace alpu::match {

std::uint64_t PostedHashList::insert(const Pattern& pattern, Cookie cookie) {
  const std::uint64_t seq = next_seq_++;
  if (pattern.is_exact()) {
    exact_[pattern.bits & kFullMask].push_back(ExactItem{seq, cookie});
  } else {
    wild_.push_back(WildItem{seq, pattern, cookie, true});
    ++wildcard_live_;
  }
  ++live_;
  return seq;
}

HashSearchResult PostedHashList::consume_match(MatchWord word) {
  HashSearchResult r;
  // Candidate 1: the exact bucket.  Entries within a bucket are in
  // insertion order, so the front is the oldest exact candidate.
  r.hash_probes = 1;
  auto it = exact_.find(word & kFullMask);
  std::uint64_t exact_seq = std::numeric_limits<std::uint64_t>::max();
  if (it != exact_.end() && !it->second.empty()) {
    exact_seq = it->second.front().seq;
  }
  // Candidate 2: the first matching wildcard entry (scan in order; stop
  // early once past the exact candidate's sequence number, since any
  // later wildcard hit would lose the ordering arbitration anyway).
  std::size_t wild_pos = wild_.size();
  std::uint64_t wild_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < wild_.size(); ++i) {
    const WildItem& w = wild_[i];
    if (w.seq > exact_seq) break;
    ++r.entries_scanned;
    if (w.valid && w.pattern.matches(word)) {
      wild_pos = i;
      wild_seq = w.seq;
      break;
    }
  }
  if (exact_seq == std::numeric_limits<std::uint64_t>::max() &&
      wild_seq == std::numeric_limits<std::uint64_t>::max()) {
    return r;  // no match
  }
  r.found = true;
  if (wild_seq < exact_seq) {
    r.seq = wild_seq;
    r.cookie = wild_[wild_pos].cookie;
    wild_[wild_pos].valid = false;
    --wildcard_live_;
    // Compact the tombstone prefix so scans stay short over time.
    while (!wild_.empty() && !wild_.front().valid) {
      wild_.erase(wild_.begin());
    }
  } else {
    r.seq = exact_seq;
    r.cookie = it->second.front().cookie;
    it->second.pop_front();
    if (it->second.empty()) exact_.erase(it);
  }
  --live_;
  return r;
}

std::uint64_t UnexpectedHashList::insert(MatchWord word, Cookie cookie) {
  const std::uint64_t seq = next_seq_++;
  journal_.push_back(Item{seq, word & kFullMask, cookie, true});
  index_[word & kFullMask].push_back(journal_.size() - 1);
  ++live_;
  return seq;
}

void UnexpectedHashList::erase_journal_index(std::size_t pos) {
  Item& item = journal_[pos];
  ALPU_ASSERT(item.valid, "erasing a journal tombstone");
  item.valid = false;
  auto it = index_.find(item.word);
  ALPU_ASSERT(it != index_.end(), "journal entry missing from hash index");
  auto& positions = it->second;
  positions.erase(std::find(positions.begin(), positions.end(), pos));
  if (positions.empty()) index_.erase(it);
  --live_;
  // Trim tombstones at the journal front (keeps wildcard scans bounded).
  std::size_t dead = 0;
  while (dead < journal_.size() && !journal_[dead].valid) ++dead;
  if (dead > 64) {  // amortize: rebuild positions only occasionally
    journal_.erase(journal_.begin(),
                   journal_.begin() + static_cast<std::ptrdiff_t>(dead));
    // determinism: ok — rebases every bucket by the same offset, so the
    // result is independent of hash iteration order.
    for (auto& [word, poss] : index_) {
      for (auto& p : poss) p -= dead;
    }
  }
}

HashSearchResult UnexpectedHashList::consume_match(const Pattern& probe) {
  HashSearchResult r;
  if (probe.is_exact()) {
    // O(1) path: direct bucket lookup; front of bucket is oldest arrival.
    r.hash_probes = 1;
    auto it = index_.find(probe.bits & kFullMask);
    if (it == index_.end() || it->second.empty()) return r;
    const std::size_t pos = it->second.front();
    r.found = true;
    r.seq = journal_[pos].seq;
    r.cookie = journal_[pos].cookie;
    erase_journal_index(pos);
    return r;
  }
  // Wildcard probe: no hash key exists; fall back to the arrival-ordered
  // scan — the weakness of hashing for MPI that Section II identifies.
  for (std::size_t i = 0; i < journal_.size(); ++i) {
    ++r.entries_scanned;
    const Item& item = journal_[i];
    if (item.valid && probe.matches(item.word)) {
      r.found = true;
      r.seq = item.seq;
      r.cookie = item.cookie;
      erase_journal_index(i);
      return r;
    }
  }
  return r;
}

}  // namespace alpu::match
