#include "match/match.hpp"

#include "common/check.hpp"
#include <sstream>

namespace alpu::match {

MatchWord pack(const Envelope& env) {
  ALPU_DEBUG_ASSERT(env.context <= kMaxContext, "context exceeds 13 bits");
  ALPU_DEBUG_ASSERT(env.source <= kMaxSource, "source rank exceeds 15 bits");
  ALPU_DEBUG_ASSERT(env.tag <= kMaxTag, "tag exceeds 14 bits");
  return (MatchWord{env.context} << kContextShift) |
         (MatchWord{env.source} << kSourceShift) |
         (MatchWord{env.tag} << kTagShift);
}

Envelope unpack(MatchWord word) {
  Envelope env;
  env.context = static_cast<std::uint32_t>((word >> kContextShift) & kMaxContext);
  env.source = static_cast<std::uint32_t>((word >> kSourceShift) & kMaxSource);
  env.tag = static_cast<std::uint32_t>((word >> kTagShift) & kMaxTag);
  return env;
}

Pattern make_recv_pattern(std::uint32_t context,
                          std::optional<std::uint32_t> source,
                          std::optional<std::uint32_t> tag) {
  ALPU_DEBUG_ASSERT(context <= kMaxContext, "context exceeds 13 bits");
  Pattern p;
  p.bits = MatchWord{context} << kContextShift;
  p.mask = 0;
  if (source.has_value()) {
    ALPU_DEBUG_ASSERT(*source <= kMaxSource, "source rank exceeds 15 bits");
    p.bits |= MatchWord{*source} << kSourceShift;
  } else {
    p.mask |= kSourceMask;
  }
  if (tag.has_value()) {
    ALPU_DEBUG_ASSERT(*tag <= kMaxTag, "tag exceeds 14 bits");
    p.bits |= MatchWord{*tag} << kTagShift;
  } else {
    p.mask |= kTagMask;
  }
  return p;
}

std::string to_string(const Envelope& e) {
  std::ostringstream out;
  out << "ctx=" << e.context << " src=" << e.source << " tag=" << e.tag;
  return out.str();
}

std::string to_string(const Pattern& p) {
  const Envelope e = unpack(p.bits);
  std::ostringstream out;
  out << "ctx=" << e.context;
  if ((p.mask & kSourceMask) == kSourceMask) {
    out << " src=*";
  } else {
    out << " src=" << e.source;
  }
  if ((p.mask & kTagMask) == kTagMask) {
    out << " tag=*";
  } else {
    out << " tag=" << e.tag;
  }
  return out.str();
}

}  // namespace alpu::match
