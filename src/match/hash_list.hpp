// Hash-table match structures — the alternative the paper rejects.
//
// Section II discusses hash tables (as used by Myrinet MX and EMP): they
// cut search time but (a) inflate insert time, which shows up directly in
// the zero-length ping-pong latency every network is judged by, and
// (b) interact badly with wildcards and MPI's ordering rule.  These
// classes implement the approach faithfully — exact entries hashed,
// wildcard entries in an ordered side list, global sequence numbers to
// arbitrate ordering — so the ablation benchmark can quantify both
// effects against the linear list and the ALPU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "match/match.hpp"

namespace alpu::match {

/// Search outcome for the hash structures, with the cost breakdown the
/// ablation bench charges for.
struct HashSearchResult {
  bool found = false;
  Cookie cookie = 0;
  std::uint64_t seq = 0;          ///< insertion sequence number of the hit
  std::size_t hash_probes = 0;    ///< bucket lookups performed
  std::size_t entries_scanned = 0;///< entries touched linearly (wildcards)
};

/// Posted-receive queue with hashed exact entries.
///
/// Exact receives (no wildcard) live in buckets keyed by the full match
/// word; wildcard receives live in an insertion-ordered side list.  A
/// search probes the bucket and scans the side list, and MPI ordering is
/// restored by taking the candidate with the smaller sequence number.
class PostedHashList {
 public:
  /// Insert a posted receive.  Returns its sequence number.
  std::uint64_t insert(const Pattern& pattern, Cookie cookie);

  /// First-match (in MPI posted order) lookup for an incoming envelope.
  /// The hit is removed, as MPI consumes posted receives on match.
  HashSearchResult consume_match(MatchWord word);

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  std::size_t wildcard_count() const { return wildcard_live_; }

 private:
  struct ExactItem {
    std::uint64_t seq;
    Cookie cookie;
  };
  struct WildItem {
    std::uint64_t seq;
    Pattern pattern;
    Cookie cookie;
    bool valid;
  };

  std::unordered_map<MatchWord, std::deque<ExactItem>> exact_;
  std::vector<WildItem> wild_;  // insertion order; lazy erase
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t wildcard_live_ = 0;
};

/// Unexpected-message queue with hashed entries.
///
/// Stored envelopes are always explicit, so every entry is hashed by its
/// full match word; an insertion-ordered journal supports the wildcard
/// probes (MPI_ANY_SOURCE / MPI_ANY_TAG receives), which must fall back
/// to a linear scan — the structural weakness Section II points out.
class UnexpectedHashList {
 public:
  /// Record an arrived unexpected message.  Returns its sequence number.
  std::uint64_t insert(MatchWord word, Cookie cookie);

  /// Find-and-remove the first (arrival-ordered) message matching the
  /// probe pattern of a receive being posted.
  HashSearchResult consume_match(const Pattern& probe);

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

 private:
  struct Item {
    std::uint64_t seq;
    MatchWord word;
    Cookie cookie;
    bool valid;
  };

  void erase_journal_index(std::size_t pos);

  std::vector<Item> journal_;  // arrival order; lazy erase
  std::unordered_map<MatchWord, std::deque<std::size_t>> index_;  // -> journal pos
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace alpu::match
