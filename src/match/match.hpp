// MPI message-matching semantics.
//
// MPI matches messages on the triple {context id, source rank, message
// tag}.  A posted receive matches the context exactly but may wildcard
// source and/or tag (MPI_ANY_SOURCE / MPI_ANY_TAG); ordering between a
// (sender, context) pair must be preserved, so the FIRST matching entry
// in list order is always the correct one.
//
// Following the paper's prototype, the triple is packed into a 42-bit
// match word (13-bit context + 15-bit source supporting 32 K nodes +
// 14-bit tag), with one mask bit per match bit so that the same hardware
// also supports Portals-style full-word match/ignore bits.  This module
// defines the packing, the mask algebra, and the reference software
// match lists the paper's baseline NIC uses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace alpu::match {

/// Raw match bits.  The prototype uses 42 of the 64 bits; the container
/// is 64 bits wide so Portals full-width matching also fits.
using MatchWord = std::uint64_t;

/// Software cookie stored with each hardware entry; the paper recommends
/// a 20-bit pointer into NIC SRAM identifying the full queue entry.
using Cookie = std::uint32_t;

/// Field widths of the packed MPI match word (total 42 bits, the width
/// the paper's FPGA prototype instantiates for a 32 K-node machine).
inline constexpr int kContextBits = 13;
inline constexpr int kSourceBits = 15;
inline constexpr int kTagBits = 14;
inline constexpr int kMatchBits = kContextBits + kSourceBits + kTagBits;
static_assert(kMatchBits == 42);

inline constexpr std::uint32_t kMaxContext = (1u << kContextBits) - 1;
inline constexpr std::uint32_t kMaxSource = (1u << kSourceBits) - 1;
inline constexpr std::uint32_t kMaxTag = (1u << kTagBits) - 1;

/// Bit layout (LSB-first): [tag | source | context].
inline constexpr int kTagShift = 0;
inline constexpr int kSourceShift = kTagBits;
inline constexpr int kContextShift = kTagBits + kSourceBits;

inline constexpr MatchWord kTagMask = MatchWord{kMaxTag} << kTagShift;
inline constexpr MatchWord kSourceMask = MatchWord{kMaxSource} << kSourceShift;
inline constexpr MatchWord kContextMask = MatchWord{kMaxContext}
                                          << kContextShift;
inline constexpr MatchWord kFullMask = kTagMask | kSourceMask | kContextMask;

/// The match envelope of a message on the wire: always fully explicit.
struct Envelope {
  std::uint32_t context = 0;  ///< communicator context id (13 bits)
  std::uint32_t source = 0;   ///< sender rank within the communicator
  std::uint32_t tag = 0;      ///< user message tag

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Pack an explicit envelope into a match word.
MatchWord pack(const Envelope& env);

/// Unpack a match word back into an envelope (inverse of pack()).
Envelope unpack(MatchWord word);

/// A match pattern: match bits plus mask bits.  Mask bit == 1 means
/// "don't care" at that position (the TCAM convention the ALPU uses).
struct Pattern {
  MatchWord bits = 0;
  MatchWord mask = 0;

  /// True if the explicit `word` satisfies this pattern.
  bool matches(MatchWord word) const {
    return ((bits ^ word) & ~mask & kFullMask) == 0;
  }

  /// True if no bit is wildcarded (useful for hash-based indexes).
  bool is_exact() const { return (mask & kFullMask) == 0; }

  friend bool operator==(const Pattern&, const Pattern&) = default;
};

/// Build the pattern for a posted receive.  `source`/`tag` empty means
/// the corresponding MPI wildcard; context can never be wildcarded.
Pattern make_recv_pattern(std::uint32_t context,
                          std::optional<std::uint32_t> source,
                          std::optional<std::uint32_t> tag);

/// Pattern that matches exactly one envelope (mask = 0).
inline Pattern exact_pattern(const Envelope& env) {
  return Pattern{pack(env), 0};
}

/// Debug rendering, e.g. "ctx=2 src=* tag=7".
std::string to_string(const Pattern& p);
std::string to_string(const Envelope& e);

}  // namespace alpu::match
