#include "host/host.hpp"

#include "common/check.hpp"

namespace alpu::host {

Host::Host(sim::Engine& engine, std::string name, nic::Nic& nic,
           const HostConfig& config)
    : sim::Component(engine, std::move(name)),
      config_(config),
      nic_(nic),
      memory_(config.memory),
      buffers_(0x8000'0000) {
  nic_.set_completion_handler(
      [this](const nic::Completion& c) { on_completion(c); });
  // The MPI library's request/completion rings are long-lived, warm
  // structures; pre-touch them so steady-state costs apply from the
  // first request (cold first-touch misses are an artifact of the
  // simulation starting at t=0, not of the modelled system).
  for (mem::Addr slot = 0; slot < 64; ++slot) {
    (void)memory_.store(0xF000'0000 + slot * 64, 0);
    (void)memory_.store(0xF800'0000 + slot * 64, 0);
  }
}

PendingHandle Host::submit(nic::HostRequest request) {
  request.req_id = next_req_id_++;
  auto handle = std::make_shared<Pending>();
  pending_[request.req_id] = handle;
  // Build the descriptor in host memory (one line of a small ring of
  // request records, the MPI library's reused request objects), charge
  // the dispatch cost, then the doorbell write crosses the host bus; the
  // NIC sees the descriptor at now + dispatch + doorbell.
  const mem::Addr record =
      0xF000'0000 + (request.req_id % 64) * 64;
  const TimePs dispatch = config_.clock.cycles(config_.request_cycles) +
                          memory_.store(record, engine().now());
  const TimePs doorbell = nic_.config().doorbell_ps;
  engine().schedule_in(dispatch + doorbell, [this, request] {
    nic_.host_submit(request);
  });
  return handle;
}

sim::Process Host::wait(PendingHandle handle) {
  ALPU_ASSERT(handle != nullptr, "waiting on a null pending handle");
  while (!handle->done) {
    co_await handle->on_done.wait(engine());
  }
  // Reap cost: read the completion record out of host memory (a line of
  // the completion ring the NIC writes into by DMA).
  const mem::Addr record =
      0xF800'0000 + (handle->completion.req_id % 64) * 64;
  co_await sim::delay(engine(),
                      config_.clock.cycles(config_.completion_cycles) +
                          memory_.load(record, engine().now()));
}

void Host::on_completion(const nic::Completion& completion) {
  ++completions_seen_;
  PendingHandle* found = pending_.find(completion.req_id);
  ALPU_ASSERT(found != nullptr, "completion for unknown request");
  PendingHandle handle = *found;
  pending_.erase(completion.req_id);
  handle->completion = completion;
  handle->done = true;
  handle->on_done.fire();
}

}  // namespace alpu::host
