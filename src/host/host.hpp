// Host (main) processor model.
//
// In the modelled system the application processor only dispatches
// message requests to the NIC and waits for completion (Section V-C).
// The Host charges a small dispatch cost at its own (2 GHz, Table III)
// clock, rings the NIC doorbell across the host bus, and exposes an
// awaitable completion interface that MPI request objects build on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/dense.hpp"
#include "common/time.hpp"
#include "mem/memory_system.hpp"
#include "nic/host_protocol.hpp"
#include "nic/nic.hpp"
#include "sim/process.hpp"

namespace alpu::host {

using common::TimePs;

struct HostConfig {
  /// Application-processor clock (Table III: 2 GHz).
  common::ClockPeriod clock = common::ClockPeriod::from_ghz(2);
  /// Library-side cycles to build and dispatch one request descriptor.
  std::uint32_t request_cycles = 160;  ///< 80 ns at 2 GHz
  /// Library-side cycles to reap one completion record.
  std::uint32_t completion_cycles = 100;  ///< 50 ns at 2 GHz

  /// Host memory hierarchy (Table III: 64 KB 2-way L1, 512 KB L2,
  /// 85-90 cycles to main memory — modelled as a constant controller
  /// portion plus the open-row DRAM timing).
  mem::MemorySystemConfig memory{
      .l1 = {.size_bytes = 64 * 1024, .line_bytes = 64, .ways = 2},
      .l1_hit_ps = 1'000,  // 2 cycles at 2 GHz
      .l2 = mem::CacheConfig{.size_bytes = 512 * 1024,
                             .line_bytes = 64,
                             .ways = 8},
      .l2_hit_ps = 6'000,  // 12 cycles
      .backend_ps = 12'000,  // controller/bus; DRAM timing adds the rest
      .use_dram = true,
      .dram = {},
  };
};

/// State of one outstanding request (shared with MPI request handles).
struct Pending {
  bool done = false;
  nic::Completion completion;
  sim::Trigger on_done;
};

using PendingHandle = std::shared_ptr<Pending>;

class Host : public sim::Component {
 public:
  Host(sim::Engine& engine, std::string name, nic::Nic& nic,
       const HostConfig& config);

  /// Dispatch a request to the NIC.  Returns the handle the caller
  /// awaits; the descriptor reaches NIC SRAM one doorbell latency after
  /// the dispatch cost has been charged.
  PendingHandle submit(nic::HostRequest request);

  /// Await completion of `handle`, charging the reap cost on wake.
  sim::Process wait(PendingHandle handle);

  /// Allocate a host buffer address (bump allocation in host DRAM).
  mem::Addr alloc_buffer(std::uint64_t bytes) {
    return buffers_.alloc(bytes, 64);
  }

  nic::Nic& nic() { return nic_; }
  const HostConfig& config() const { return config_; }
  mem::MemorySystem& memory() { return memory_; }

  /// Requests completed so far (for tests).
  std::uint64_t completions_seen() const { return completions_seen_; }

 private:
  void on_completion(const nic::Completion& completion);

  HostConfig config_;
  nic::Nic& nic_;
  mem::MemorySystem memory_;
  mem::SimHeap buffers_;
  /// Outstanding requests by req_id: pooled flat map, so the steady
  /// submit/complete churn recycles slots instead of allocating nodes.
  common::FlatMap<std::uint64_t, PendingHandle> pending_;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t completions_seen_ = 0;
};

}  // namespace alpu::host
