// Bounded model checker for the ALPU implementations.
//
// Exhaustively enumerates every protocol-legal operation sequence up to
// a configurable depth on a small array (the classic small-scope
// hypothesis: list-management bugs — compaction off-by-ones, held-probe
// ordering, mode-transition races — all manifest within a handful of
// cells and operations) and cross-checks each implementation against
// the executable specification in spec.hpp after every step:
//
//   datapath tier    hw::AlpuArray and hw::ReferenceAlpuArray against
//                    ListSpec — every insert result, probe answer (both
//                    the linear scan and the priority-mux tree), sweep
//                    count, and the full post-step cell state;
//
//   protocol tier    hw::Alpu and hw::PipelinedAlpu against
//                    ProtocolSpec — each op is pushed, the simulation
//                    runs to quiescence, and the drained response
//                    stream plus the logical cell order must equal the
//                    spec's.
//
// Iterative deepening (depth 1, 2, ... D) guarantees the first failing
// sequence is length-minimal; a greedy shrink pass then drops every op
// that is not needed to reproduce the divergence, so what gets printed
// is a minimal counterexample trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/spec.hpp"

namespace alpu::check {

/// Which implementation a check run targets.
enum class ImplKind : std::uint8_t {
  kArray,        ///< hw::AlpuArray (SoA production engine) vs ListSpec
  kReference,    ///< hw::ReferenceAlpuArray (oracle) vs ListSpec
  kTransaction,  ///< hw::Alpu (transaction-level) vs ProtocolSpec
  kPipelined,    ///< hw::PipelinedAlpu (stage-level RTL) vs ProtocolSpec
};

const char* to_string(ImplKind impl);
const char* to_string(AlpuFlavor flavor);

struct CheckOptions {
  std::size_t depth = 6;  ///< maximum operation-sequence length
  std::size_t cells = 4;  ///< array capacity (keep small; state space!)
  std::size_t block = 2;  ///< block size (must divide cells, power of 2)
  /// Include OpKind::kCorrupt in the alphabet: parity protection is
  /// installed, deterministic single-bit flips are interleaved with the
  /// protocol ops, and the spec demands detection (PARITY FAULT per
  /// probe) followed by full recovery at kReset.  Only meaningful for
  /// the implementations that carry the fault model (kArray datapath,
  /// kTransaction protocol); ignored elsewhere.
  bool faults = false;
};

struct CheckResult {
  ImplKind impl = ImplKind::kArray;
  AlpuFlavor flavor = AlpuFlavor::kPostedReceive;
  bool ok = false;
  std::uint64_t sequences = 0;    ///< operation sequences replayed
  std::uint64_t ops_applied = 0;  ///< total ops applied across replays
  /// On failure: the shrunk minimal trace (cookies/seqs as replayed)
  /// and a description of the first divergence it produces.
  std::vector<Op> counterexample;
  std::string divergence;
};

/// Exhaustively check one implementation/flavour pair.
CheckResult check_impl(ImplKind impl, AlpuFlavor flavor,
                       const CheckOptions& options);

/// Human-readable counterexample trace ("step 1: insert ...").
std::string format_counterexample(const CheckResult& result);

}  // namespace alpu::check
