// Determinism audit layer: a happens-before checker for the sharded DES.
//
// The conservative parallel engine (sim/parallel.hpp) is correct only if
// three protocol-level properties hold on every run:
//
//   1. Safe horizon — a shard executing window [T, W) never fires an
//      event outside the window, and no cross-shard delivery posted
//      during that window lands before W = T + lookahead.  A violation
//      here is a causality bug: the destination shard may already have
//      simulated past the delivery time, silently diverging from the
//      serial schedule.  TSan cannot see this class of bug — shard
//      engines only touch shared state at barriers, so the racy
//      interleaving is data-race-free yet still wrong.
//
//   2. Canonical merge order — cross-shard deliveries with equal
//      timestamps must be consumed in the canonical
//      (when, sent_at, src_node, src_seq) order from the merge step,
//      whatever partition produced them.
//
//   3. No stale captures — an EventCallback closure must not outlive
//      the pool generation of what it captured (coroutine frames from
//      the FramePool, slot-pool events).  Firing one is a use-after-free
//      that usually *happens* to work.
//
// The auditor stamps every scheduled event with provenance (origin
// shard, the Lamport clock of the event that scheduled it, cross-shard
// merge generation and canonical key) and re-derives all three
// properties independently at execution time.  On a violation it prints
// the event's provenance chain — the scheduling events walked backwards
// across shards — and aborts through the contract layer, so tests can
// intercept it with set_check_failure_handler.
//
// Everything here is compiled only under -DALPU_AUDIT=ON; the flag adds
// a stamp to every event slot and a check per executed event, so the
// production build keeps the hot path untouched (the message-rate perf
// gate runs against ALPU_AUDIT=OFF).
//
// The same stamps feed the divergence-triage tool (`alpusim audit`):
// with tracing enabled, each shard folds every executed event into a
// commutative per-window hash, so two runs of the same workload at
// different shard counts can be compared window by window and the first
// divergent window re-run with full event capture — turning a "CSV cmp
// failed" CI signal into a pinpointed event pair with both provenance
// chains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace alpu::check {

using common::TimePs;

/// Canonical merge key of a cross-shard delivery.  Mirrors
/// sim::CrossKey field for field; duplicated here because the audit
/// layer sits below the sim kernel in the link order (the Engine embeds
/// an EventStamp in every slot) and must not include parallel.hpp.
struct CrossStamp {
  TimePs when = 0;
  TimePs sent_at = 0;
  std::uint32_t src_node = 0;
  std::uint64_t src_seq = 0;
};

/// Strict total order on the canonical key (same order the ShardGroup
/// merge uses; re-derived independently so the audit does not trust the
/// code under test).
bool canonical_less(const CrossStamp& a, const CrossStamp& b);

/// Provenance stamp attached to every scheduled event in audit builds.
struct EventStamp {
  /// Shard whose execution scheduled the event.
  std::uint32_t origin_shard = 0;
  /// Lamport clock of the scheduling event on its shard (0 = scheduled
  /// outside any event, i.e. during setup before the run).
  std::uint64_t origin_lamport = 0;
  /// Simulated time at which the event was scheduled.
  TimePs origin_when = 0;
  /// True if the event arrived through the cross-shard outbox merge.
  bool cross = false;
  /// Merge generation (number of completed windows) for cross events.
  std::uint64_t window_gen = 0;
  /// Canonical merge key (valid when `cross`).
  CrossStamp key{};
};

/// One executed event, as remembered by a shard's history ring.
struct ExecRecord {
  std::uint64_t lamport = 0;
  TimePs when = 0;
  EventStamp stamp{};
};

/// Per-window trace record: a commutative digest of everything the
/// whole group executed inside one lookahead window.  The hash folds
/// (when, origin_when) per event with a wrapping sum, so it is
/// independent of both the partition and the intra-window execution
/// interleaving — two runs diverge in the first window whose multiset
/// of events differs.
struct WindowRecord {
  std::uint64_t window = 0;  ///< 1-based window generation
  TimePs start = 0;
  TimePs end = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
};
using AuditTrace = std::vector<WindowRecord>;

/// One event captured verbatim during a triage re-run of a divergent
/// window.
struct CapturedEvent {
  std::uint32_t shard = 0;
  std::uint64_t lamport = 0;
  TimePs when = 0;
  EventStamp stamp{};
};

class Auditor;

/// Per-shard audit state.  Touched only by the owning shard's worker
/// thread inside a window and by the barrier-completion thread between
/// windows — the same ordering discipline as the outboxes, so the audit
/// itself introduces no data races.
class ShardAudit {
 public:
  /// Stamp for an event being scheduled right now on this shard.
  EventStamp make_stamp(TimePs now) const {
    EventStamp s;
    s.origin_shard = index_;
    s.origin_lamport = lamport_;
    s.origin_when = now;
    return s;
  }

  /// Called by the engine for every executed event, immediately before
  /// its callback runs.  Advances the shard's Lamport clock and checks
  /// monotonicity, window containment, the happens-before edge to the
  /// scheduling event, the conservative lookahead contract, and the
  /// canonical merge order.
  void on_execute(TimePs when, const EventStamp& stamp);

  std::uint64_t lamport() const { return lamport_; }

  /// History lookup by Lamport number; nullptr once evicted from the
  /// ring (ring slot = lamport % capacity, so lookup is O(1)).
  const ExecRecord* find(std::uint64_t lamport) const;

 private:
  friend class Auditor;

  static constexpr std::size_t kHistory = 1 << 14;  ///< per-shard ring

  Auditor* group_ = nullptr;
  std::uint32_t index_ = 0;

  std::uint64_t lamport_ = 0;
  TimePs last_when_ = 0;

  /// Current window bounds (set by the barrier-completion thread).
  bool windowed_ = false;
  TimePs window_start_ = 0;
  TimePs window_end_ = common::kTimeNever;

  /// Last cross-shard event executed, for the merge-order check.
  bool have_cross_ = false;
  std::uint64_t last_cross_gen_ = 0;
  CrossStamp last_cross_{};

  /// Per-window trace accumulators (folded at each barrier).
  std::uint64_t window_events_ = 0;
  std::uint64_t window_hash_ = 0;

  std::vector<ExecRecord> history_;
  std::vector<CapturedEvent> captured_;
};

/// Group-level auditor: owns one ShardAudit per engine plus the window
/// bookkeeping, the violation sink, and the triage trace.
class Auditor {
 public:
  Auditor() = default;

  /// (Re)bind to a group of `shards` engines.  Called by
  /// ShardGroup::set_audit / the ShardGroup constructor.
  void bind(unsigned shards);

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  ShardAudit& shard(unsigned i) { return *shards_[i]; }
  const ShardAudit& shard(unsigned i) const { return *shards_[i]; }

  // --- run lifecycle (called by ShardGroup) -------------------------

  /// A run is starting with this conservative lookahead.
  void begin_run(TimePs lookahead);

  /// Barrier-completion step, before the outbox merge: fold the window
  /// that just finished into the trace and remember its end as the
  /// forbidden-window bound for check_post.
  void on_barrier();

  /// One cross-shard event is about to be merged.  `provenance` is the
  /// stamp captured when the sender posted it.
  void check_post(const CrossStamp& key, const EventStamp& provenance);

  /// The next window [start, end) is about to run.
  void begin_window(TimePs start, TimePs end);

  /// The group drained; no more windows (finish hooks may still run).
  void end_windows();

  /// Merge generation = completed windows (stamped onto cross events).
  std::uint64_t generation() const { return gen_; }
  TimePs lookahead() const { return lookahead_; }

  // --- triage -------------------------------------------------------

  /// Collect a per-window trace.  Implies windowed execution even for a
  /// single-shard group (ShardGroup::run_all checks trace_enabled()),
  /// so traces from different shard counts are window-aligned.
  void enable_trace() { trace_enabled_ = true; }
  bool trace_enabled() const { return trace_enabled_; }
  const AuditTrace& trace() const { return trace_; }

  /// Capture every event executed in window `gen` (1-based) verbatim.
  void capture_window(std::uint64_t gen) { capture_gen_ = gen; }
  std::uint64_t capture_generation() const { return capture_gen_; }

  /// All captured events, merged across shards and sorted by the
  /// partition-stable key (when, origin_when) — comparable between runs
  /// at different shard counts.
  std::vector<CapturedEvent> captured() const;

  // --- violations ---------------------------------------------------

  /// Record violations instead of aborting (triage mode).
  void set_record_mode(bool record) { record_ = record; }
  const std::vector<std::string>& violations() const { return violations_; }

  /// Render the provenance chain of a stamp: the scheduling events
  /// walked backwards across shards, up to `max_depth` hops or until
  /// the chain leaves the history rings.
  std::string provenance_chain(const EventStamp& stamp,
                               int max_depth = 8) const;

 private:
  friend class ShardAudit;

  /// Build the report (header + event line + provenance chain) and
  /// either record it or fail the ALPU_ASSERT contract with it.
  void report(const std::string& what, std::uint32_t shard, TimePs when,
              const EventStamp& stamp);

  std::vector<std::unique_ptr<ShardAudit>> shards_;
  TimePs lookahead_ = 0;
  std::uint64_t gen_ = 0;            ///< completed windows
  TimePs completed_window_end_ = 0;  ///< forbidden-window bound

  bool trace_enabled_ = false;
  AuditTrace trace_;
  TimePs open_window_start_ = 0;
  TimePs open_window_end_ = 0;
  bool window_open_ = false;

  std::uint64_t capture_gen_ = 0;  ///< 0 = capture nothing

  bool record_ = false;
  std::vector<std::string> violations_;
};

// --- stale-capture detection (frame generation tags) ----------------
//
// The coroutine FramePool recycles frames; a callback that captured a
// coroutine handle and fires after the frame was released (or after the
// frame was reused by a new coroutine) is a use-after-free.  In audit
// builds the pool registers every frame in a process-wide generation
// registry; resume-scheduling call sites (DelayAwaiter, Trigger) tag
// the handle with the frame's current generation and re-validate it
// before resuming.

/// Register a newly allocated frame; returns its generation.  Asserts
/// the address is not already live (pool corruption / double alloc).
std::uint64_t frame_register(void* frame);

/// Mark a frame released.  Asserts it was live.
void frame_retire(void* frame);

/// Current generation of a live frame (asserts liveness) — captured at
/// schedule time by resume call sites.
std::uint64_t frame_current_tag(const void* frame);

/// True iff the frame is still live with the captured generation.
bool frame_live(const void* frame, std::uint64_t tag);

// --- divergence triage (pure helpers, unit-testable) ----------------

/// Index of the first window where two traces disagree (window id,
/// bounds, event count or hash), or -1 when they match, including in
/// length.
std::ptrdiff_t first_divergent_window(const AuditTrace& a,
                                      const AuditTrace& b);

/// First position at which two canonically sorted capture lists
/// disagree on the partition-stable key (when, origin_when), or -1 when
/// they match.  A position past the shorter list's end means one run
/// executed extra events.
std::ptrdiff_t first_divergent_event(const std::vector<CapturedEvent>& a,
                                     const std::vector<CapturedEvent>& b);

/// Human-readable rendering of one captured event (single line).
std::string format_event(const CapturedEvent& e);

}  // namespace alpu::check
