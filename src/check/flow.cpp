#include "check/flow.hpp"

#include <cinttypes>
#include <cstdio>

#include <algorithm>

#include "common/check.hpp"

namespace alpu::check {

namespace {

const char* op_name(const FlowOp& op) {
  switch (op.kind) {
    case FlowOpKind::kSendEager: return "send_eager";
    case FlowOpKind::kSendRts: return "send_rts";
    case FlowOpKind::kMatch: return "match";
    case FlowOpKind::kDrain: return "drain";
    case FlowOpKind::kRetry: return "retry";
  }
  return "?";
}

void append_op(std::string& out, const FlowOp& op) {
  if (!out.empty()) out += " -> ";
  out += op_name(op);
  if (op.kind == FlowOpKind::kSendEager) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "(%" PRIu32 ")", op.bytes);
    out += buf;
  }
}

}  // namespace

bool FlowSpec::fits(std::uint32_t bytes) const {
  if (config_.slots > 0 && staged_.size() >= config_.slots) return false;
  if (config_.pool_bytes > 0 && pool_used_ + bytes > config_.pool_bytes) {
    return false;
  }
  return true;
}

FlowEffect FlowSpec::admit_or_refuse(std::uint32_t bytes) {
  FlowEffect effect;
  if (fits(bytes)) {
    staged_.push_back(Msg{next_id_++, bytes});
    pool_used_ += bytes;
    peak_pool_ = std::max(peak_pool_, pool_used_);
    // The admitted packet's ACK is forward progress: the sender's
    // refusal streak, held state, and any owed credit clear.
    held_ = false;
    held_bytes_ = 0;
    credit_owed_ = false;
    streak_ = 0;
    effect.admitted = true;
    return effect;
  }
  // RNR NACK: the offer stays held at the sender under backoff, the
  // receiver owes it a credit push, and the streak advances exactly as
  // ReliabilityLayer::on_rnr_nack does — fail past max_streak, demote
  // at demote_after.
  effect.nacked = true;
  held_ = true;
  held_bytes_ = bytes;
  credit_owed_ = true;
  ++streak_;
  if (streak_ > config_.max_streak) {
    failed_ = true;
    effect.link_failed = true;
    return effect;
  }
  if (!demoted_ && streak_ >= config_.demote_after) {
    demoted_ = true;
    effect.demoted_now = true;
  }
  return effect;
}

void FlowSpec::credit_released(FlowEffect& effect) {
  if (!credit_owed_ || failed_) return;
  // Fair-FIFO explicit push: one credit ACK per release, advertising
  // the post-release free resources; it resets the sender's streak.
  // The owed flag survives a push that cannot admit the held offer —
  // the implementation's unconditional wake bounces off the still-full
  // receiver and re-queues the peer, so the next release pushes again.
  // It clears only when the held offer is finally admitted
  // (admit_or_refuse's success branch).
  effect.credit_push = true;
  streak_ = 0;
  const std::uint64_t free_bytes =
      config_.pool_bytes == 0
          ? ~std::uint64_t{0}
          : config_.pool_bytes - pool_used_;
  const std::uint64_t free_slots =
      config_.slots == 0 ? ~std::uint64_t{0}
                         : config_.slots - staged_.size();
  if (demoted_ && free_slots >= 1 && free_bytes >= config_.promote_bytes) {
    demoted_ = false;
    effect.promoted_now = true;
  }
  // The sender's credit fast-path: when the advertised credits cover
  // the held packet it retransmits immediately (no backoff wait).
  if (held_ && fits(held_bytes_)) {
    const FlowEffect woken = admit_or_refuse(held_bytes_);
    ALPU_ASSERT(woken.admitted, "credit wake must admit");
    effect.admitted = true;
  }
}

bool FlowSpec::legal(const FlowOp& op) const {
  switch (op.kind) {
    case FlowOpKind::kSendEager:
    case FlowOpKind::kSendRts:
      // One-outstanding sender: a held (refused) offer blocks new ones,
      // and a failed link blocks everything sender-side.
      return !held_ && !failed_;
    case FlowOpKind::kMatch:
      return !staged_.empty();
    case FlowOpKind::kDrain:
      return !draining_.empty();
    case FlowOpKind::kRetry:
      return held_ && !failed_;
  }
  return false;
}

FlowEffect FlowSpec::apply(const FlowOp& op) {
  ALPU_ASSERT(legal(op), "illegal flow op");
  FlowEffect effect;
  switch (op.kind) {
    case FlowOpKind::kSendEager:
      if (demoted_) {
        // Demoted senders route small messages through rendezvous: the
        // offer on the wire is an RTS (envelope slot only, no payload
        // bytes pinned).
        effect = admit_or_refuse(0);
        effect.demoted_route = true;
        return effect;
      }
      return admit_or_refuse(op.bytes);
    case FlowOpKind::kSendRts:
      return admit_or_refuse(0);
    case FlowOpKind::kRetry:
      // Go-back-N retransmits the held packet unchanged (demotion only
      // reroutes *new* sends).
      return admit_or_refuse(held_bytes_);
    case FlowOpKind::kMatch: {
      const Msg msg = staged_.front();
      staged_.pop_front();
      draining_.push_back(msg);
      credit_released(effect);  // the envelope slot freed
      return effect;
    }
    case FlowOpKind::kDrain: {
      const Msg msg = draining_.front();
      draining_.pop_front();
      ALPU_ASSERT(pool_used_ >= msg.bytes, "pool underflow");
      pool_used_ -= msg.bytes;
      ALPU_ASSERT(msg.id == next_delivered_, "out-of-order delivery");
      ++next_delivered_;
      credit_released(effect);  // the payload bytes freed
      return effect;
    }
  }
  return effect;
}

std::string FlowSpec::invariant_violation() const {
  char buf[160];
  // Occupancy must respect the budget at every instant, peaks included.
  if (config_.pool_bytes > 0 && pool_used_ > config_.pool_bytes) {
    std::snprintf(buf, sizeof(buf),
                  "pool occupancy %" PRIu64 " over budget %" PRIu32,
                  pool_used_, config_.pool_bytes);
    return buf;
  }
  if (config_.pool_bytes > 0 && peak_pool_ > config_.pool_bytes) {
    return "peak pool occupancy over budget";
  }
  if (config_.slots > 0 && staged_.size() > config_.slots) {
    std::snprintf(buf, sizeof(buf),
                  "%zu slots used over budget %" PRIu32, staged_.size(),
                  config_.slots);
    return buf;
  }
  // The accounting must agree with the queues it tracks.
  std::uint64_t pinned = 0;
  for (const Msg& m : staged_) pinned += m.bytes;
  for (const Msg& m : draining_) pinned += m.bytes;
  if (pinned != pool_used_) return "pool accounting disagrees with queues";
  // Exactly-once, in-order: the undelivered ids must be exactly the
  // contiguous range [next_delivered_, next_id_) in queue order.
  std::uint64_t expect = next_delivered_;
  for (const Msg& m : draining_) {
    if (m.id != expect++) return "draining queue out of order";
  }
  for (const Msg& m : staged_) {
    if (m.id != expect++) return "staged queue out of order";
  }
  if (expect != next_id_) return "message lost or duplicated";
  // An unlimited budget must never refuse anything (the no-op guarantee
  // the byte-identity acceptance test rests on).
  if (config_.pool_bytes == 0 && config_.slots == 0 &&
      (held_ || streak_ != 0 || failed_)) {
    return "refusal despite unlimited budget";
  }
  // The streak past max_streak is a failed link, never a live one.
  if (!failed_ && streak_ > config_.max_streak) {
    return "live link past max refusal streak";
  }
  // A credit can only be owed to a sender that is actually waiting.
  if (credit_owed_ && !held_) return "credit owed with no held offer";
  return {};
}

FlowCheckResult check_flow(const FlowCheckOptions& options) {
  FlowCheckResult result;
  result.ok = true;

  // The enumeration alphabet.
  std::vector<FlowOp> alphabet;
  for (std::uint32_t bytes : options.sizes) {
    alphabet.push_back(FlowOp{FlowOpKind::kSendEager, bytes});
  }
  alphabet.push_back(FlowOp{FlowOpKind::kSendRts, 0});
  alphabet.push_back(FlowOp{FlowOpKind::kMatch, 0});
  alphabet.push_back(FlowOp{FlowOpKind::kDrain, 0});
  alphabet.push_back(FlowOp{FlowOpKind::kRetry, 0});

  // Explicit DFS over every legal sequence up to the depth bound,
  // checking the invariants after each transition.
  struct Frame {
    FlowSpec spec;
    std::size_t next_op = 0;
  };
  std::vector<Frame> stack;
  std::vector<FlowOp> trail;
  stack.push_back(Frame{FlowSpec(options.config), 0});

  while (!stack.empty() && result.ok) {
    Frame& frame = stack.back();
    if (stack.size() > options.depth || frame.next_op >= alphabet.size()) {
      bool any_legal = false;
      if (stack.size() <= options.depth) {
        for (const FlowOp& op : alphabet) {
          if (frame.spec.legal(op)) { any_legal = true; break; }
        }
      }
      if (!any_legal || stack.size() > options.depth) ++result.sequences;
      stack.pop_back();
      if (!trail.empty()) trail.pop_back();
      continue;
    }
    const FlowOp op = alphabet[frame.next_op++];
    if (!frame.spec.legal(op)) continue;
    Frame child{frame.spec, 0};
    child.spec.apply(op);
    ++result.ops;
    trail.push_back(op);
    const std::string violation = child.spec.invariant_violation();
    if (!violation.empty()) {
      result.ok = false;
      std::string seq;
      for (const FlowOp& o : trail) append_op(seq, o);
      result.counterexample = violation + " after: " + seq;
      return result;
    }
    stack.push_back(std::move(child));
  }
  return result;
}

}  // namespace alpu::check
