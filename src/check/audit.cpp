#include "check/audit.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <mutex>

#include "common/check.hpp"
#include "common/dense.hpp"

namespace alpu::check {

namespace {

/// splitmix64 finalizer (same construction as common/dense.hpp): a
/// platform-independent mix so traces compare across machines.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Partition-stable contribution of one executed event to the window
/// digest.  `when` identifies the event in time; `origin_when` (the
/// simulated time of the event that scheduled it) separates same-time
/// events with different causes.  Summed (wrapping) so the digest is a
/// multiset hash: independent of shard assignment and of the order the
/// window's events interleaved across threads.
constexpr std::uint64_t event_digest(TimePs when, TimePs origin_when) {
  return mix64(when ^ mix64(origin_when));
}

void append_line(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_line(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

std::string format_stamp(const EventStamp& s) {
  char buf[256];
  if (s.cross) {
    std::snprintf(buf, sizeof(buf),
                  "cross gen=%" PRIu64 " key=(when=%" PRIu64
                  " sent_at=%" PRIu64 " src_node=%u src_seq=%" PRIu64
                  ") from shard %u lamport %" PRIu64 " at t=%" PRIu64,
                  s.window_gen, s.key.when, s.key.sent_at, s.key.src_node,
                  s.key.src_seq, s.origin_shard, s.origin_lamport,
                  s.origin_when);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "local from shard %u lamport %" PRIu64 " at t=%" PRIu64,
                  s.origin_shard, s.origin_lamport, s.origin_when);
  }
  return buf;
}

}  // namespace

bool canonical_less(const CrossStamp& a, const CrossStamp& b) {
  if (a.when != b.when) return a.when < b.when;
  if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
  if (a.src_node != b.src_node) return a.src_node < b.src_node;
  return a.src_seq < b.src_seq;
}

// ----------------------------------------------------------------------
// ShardAudit

const ExecRecord* ShardAudit::find(std::uint64_t lamport) const {
  if (lamport == 0 || history_.empty()) return nullptr;
  const ExecRecord& r = history_[lamport % kHistory];
  return r.lamport == lamport ? &r : nullptr;
}

void ShardAudit::on_execute(TimePs when, const EventStamp& stamp) {
  // 1. Shard time is monotone (equal timestamps are legal: the engine
  //    breaks ties with its schedule sequence number).
  if (when < last_when_) {
    group_->report("shard time ran backwards", index_, when, stamp);
  }
  last_when_ = when;

  // 2. Window containment (safe horizon): inside a windowed run every
  //    event must land in [window_start, window_end).  An event before
  //    the start means a merge landed in simulated past; an event at or
  //    past the end means the engine overran its conservative horizon.
  if (windowed_ && (when < window_start_ || when >= window_end_)) {
    group_->report("event fired outside its lookahead window", index_, when,
                   stamp);
  }

  // 3. Happens-before: an event never fires before the event that
  //    scheduled it (re-derived from the stamp, independent of the
  //    engine's own schedule_at contract).
  if (when < stamp.origin_when) {
    group_->report("event fired before its scheduling event", index_, when,
                   stamp);
  }

  if (stamp.cross) {
    // 4. Conservative lookahead contract: a cross-shard delivery is
    //    never consumed earlier than one lookahead after the send.
    //    Generation 0 = merged at the first barrier from a setup-time
    //    post, which predates every executed event and is exempt.
    const TimePs lookahead = group_->lookahead_;
    if (stamp.window_gen > 0 && when < stamp.key.sent_at + lookahead) {
      group_->report(
          "cross-shard delivery consumed inside the lookahead bound", index_,
          when, stamp);
    }
    if (stamp.key.when != when) {
      group_->report("cross-shard delivery fired off its canonical key time",
                     index_, when, stamp);
    }
    // 5. Canonical merge order: among same-time cross deliveries the
    //    firing order must be (merge generation, canonical key) — the
    //    order merge_and_plan scheduled them in.  Earlier-time events
    //    trivially precede later ones (checked by monotonicity).
    if (have_cross_ && last_cross_.when == when) {
      const bool ordered =
          last_cross_gen_ < stamp.window_gen ||
          (last_cross_gen_ == stamp.window_gen &&
           canonical_less(last_cross_, stamp.key));
      if (!ordered) {
        group_->report("cross-shard deliveries consumed out of canonical order",
                       index_, when, stamp);
      }
    }
    have_cross_ = true;
    last_cross_gen_ = stamp.window_gen;
    last_cross_ = stamp.key;
  }

  // Advance the Lamport clock and remember the event.
  ++lamport_;
  history_[lamport_ % kHistory] = ExecRecord{lamport_, when, stamp};

  window_events_ += 1;
  window_hash_ += event_digest(when, stamp.origin_when);

  // begin_window pre-increments gen_, so during window k (1-based)
  // gen_ == k == capture_gen_ when this is the window under capture.
  if (windowed_ && group_->capture_gen_ != 0 &&
      group_->capture_gen_ == group_->gen_) {
    captured_.push_back(CapturedEvent{index_, lamport_, when, stamp});
  }
}

// ----------------------------------------------------------------------
// Auditor

void Auditor::bind(unsigned shards) {
  shards_.clear();
  for (unsigned i = 0; i < shards; ++i) {
    auto s = std::make_unique<ShardAudit>();
    s->group_ = this;
    s->index_ = i;
    s->history_.resize(ShardAudit::kHistory);
    shards_.push_back(std::move(s));
  }
}

void Auditor::begin_run(TimePs lookahead) {
  lookahead_ = lookahead;
  gen_ = 0;
  completed_window_end_ = 0;
  window_open_ = false;
  trace_.clear();
}

void Auditor::on_barrier() {
  if (!window_open_) return;  // first barrier: no window ran yet
  // Fold the window that just completed.  gen_ was advanced when the
  // window opened, so the record carries its 1-based id.
  completed_window_end_ = open_window_end_;
  if (trace_enabled_) {
    WindowRecord rec;
    rec.window = gen_;
    rec.start = open_window_start_;
    rec.end = open_window_end_;
    for (const auto& s : shards_) {
      rec.events += s->window_events_;
      rec.hash += s->window_hash_;
    }
    trace_.push_back(rec);
  }
  for (const auto& s : shards_) {
    s->window_events_ = 0;
    s->window_hash_ = 0;
  }
  window_open_ = false;
}

void Auditor::check_post(const CrossStamp& key, const EventStamp& provenance) {
  // The conservative contract, checked at the barrier where the event
  // surfaces (before it is scheduled, so a violation is reported even
  // when the destination engine would still accept the timestamp):
  // an event posted during window [T, W) must land at >= W, and never
  // earlier than one lookahead after its send time.  Events merged at
  // the FIRST barrier (gen 0) were posted during setup, before any
  // window ran — no event has executed yet, so no causality can be
  // violated and the lookahead bound does not constrain them.
  if (gen_ == 0) return;
  if (key.when < completed_window_end_ ||
      key.when < key.sent_at + lookahead_) {
    EventStamp full = provenance;
    full.cross = true;
    full.window_gen = gen_;
    full.key = key;
    report("cross-shard event posted inside the forbidden window",
           provenance.origin_shard, key.when, full);
  }
}

void Auditor::begin_window(TimePs start, TimePs end) {
  ++gen_;
  open_window_start_ = start;
  open_window_end_ = end;
  window_open_ = true;
  for (const auto& s : shards_) {
    s->windowed_ = true;
    s->window_start_ = start;
    s->window_end_ = end;
  }
}

void Auditor::end_windows() {
  on_barrier();
  for (const auto& s : shards_) {
    s->windowed_ = false;
    s->window_start_ = 0;
    s->window_end_ = common::kTimeNever;
  }
}

std::vector<CapturedEvent> Auditor::captured() const {
  std::vector<CapturedEvent> all;
  for (const auto& s : shards_) {
    all.insert(all.end(), s->captured_.begin(), s->captured_.end());
  }
  std::sort(all.begin(), all.end(),
            [](const CapturedEvent& a, const CapturedEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.stamp.origin_when != b.stamp.origin_when) {
                return a.stamp.origin_when < b.stamp.origin_when;
              }
              // Stable-ish tail for rendering only; the comparison key
              // between runs is (when, origin_when).
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.lamport < b.lamport;
            });
  return all;
}

std::string Auditor::provenance_chain(const EventStamp& stamp,
                                      int max_depth) const {
  std::string out;
  EventStamp cur = stamp;
  for (int depth = 0; depth < max_depth; ++depth) {
    if (cur.origin_lamport == 0) {
      append_line(out, "    [%d] scheduled during setup (before any event)",
                  depth);
      return out;
    }
    if (cur.origin_shard >= shards()) {
      append_line(out, "    [%d] (origin shard %u out of range)", depth,
                  cur.origin_shard);
      return out;
    }
    const ExecRecord* rec = shard(cur.origin_shard).find(cur.origin_lamport);
    if (rec == nullptr) {
      append_line(out,
                  "    [%d] shard %u lamport %" PRIu64
                  " (evicted from history ring)",
                  depth, cur.origin_shard, cur.origin_lamport);
      return out;
    }
    append_line(out, "    [%d] shard %u lamport %" PRIu64 " when=%" PRIu64
                     " (%s)",
                depth, cur.origin_shard, rec->lamport, rec->when,
                format_stamp(rec->stamp).c_str());
    cur = rec->stamp;
  }
  append_line(out, "    ... (chain truncated at depth %d)", max_depth);
  return out;
}

void Auditor::report(const std::string& what, std::uint32_t shard, TimePs when,
                     const EventStamp& stamp) {
  std::string msg;
  append_line(msg, "determinism audit violation: %s", what.c_str());
  append_line(msg,
              "  event: shard %u when=%" PRIu64 " window=[%" PRIu64
              ", %" PRIu64 ") gen=%" PRIu64 " lookahead=%" PRIu64,
              shard, when, open_window_start_, open_window_end_, gen_,
              lookahead_);
  append_line(msg, "  stamp: %s", format_stamp(stamp).c_str());
  msg += "  provenance:\n";
  msg += provenance_chain(stamp);
  if (record_) {
    violations_.push_back(msg);
    return;
  }
  // Route through the contract layer: prints, then aborts unless a test
  // handler intercepts.  The message lives on this stack frame and the
  // handler runs synchronously, so the pointer stays valid.
  common::check_failed(__FILE__, __LINE__, "determinism audit", msg.c_str(),
                       common::CheckSeverity::kContract);
}

// ----------------------------------------------------------------------
// Frame generation registry
//
// Process-wide (frames are allocated on the spawning thread but resumed
// and released on their shard's worker thread, and the pool's per-thread
// free lists let the memory migrate), so the registry takes a mutex on
// every operation.  Audit builds only — the cost is accepted there.

namespace {

struct FrameRegistry {
  std::mutex mu;
  /// addr -> (generation << 1) | live
  common::FlatMap<std::uint64_t, std::uint64_t> tags;
};

FrameRegistry& frame_registry() {
  static FrameRegistry* reg = new FrameRegistry;  // lint: ok(raw-new-delete) — intentionally leaked singleton: frames can retire during static destruction
  return *reg;
}

}  // namespace

std::uint64_t frame_register(void* frame) {
  FrameRegistry& reg = frame_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t& e = reg.tags[reinterpret_cast<std::uint64_t>(frame)];
  ALPU_ASSERT((e & 1) == 0,
              "frame pool handed out an address that is still live");
  e = (((e >> 1) + 1) << 1) | 1;
  return e >> 1;
}

void frame_retire(void* frame) {
  FrameRegistry& reg = frame_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t* e = reg.tags.find(reinterpret_cast<std::uint64_t>(frame));
  ALPU_ASSERT(e != nullptr && (*e & 1) != 0,
              "releasing an untracked or already-released coroutine frame");
  *e &= ~std::uint64_t{1};
}

std::uint64_t frame_current_tag(const void* frame) {
  FrameRegistry& reg = frame_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const std::uint64_t* e =
      reg.tags.find(reinterpret_cast<std::uint64_t>(frame));
  ALPU_ASSERT(e != nullptr && (*e & 1) != 0,
              "capturing a coroutine handle whose frame is not live");
  return *e >> 1;
}

bool frame_live(const void* frame, std::uint64_t tag) {
  FrameRegistry& reg = frame_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const std::uint64_t* e =
      reg.tags.find(reinterpret_cast<std::uint64_t>(frame));
  return e != nullptr && (*e & 1) != 0 && (*e >> 1) == tag;
}

// ----------------------------------------------------------------------
// Divergence triage helpers

std::ptrdiff_t first_divergent_window(const AuditTrace& a,
                                      const AuditTrace& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].window != b[i].window || a[i].start != b[i].start ||
        a[i].end != b[i].end || a[i].events != b[i].events ||
        a[i].hash != b[i].hash) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  if (a.size() != b.size()) return static_cast<std::ptrdiff_t>(n);
  return -1;
}

std::ptrdiff_t first_divergent_event(const std::vector<CapturedEvent>& a,
                                     const std::vector<CapturedEvent>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].when != b[i].when ||
        a[i].stamp.origin_when != b[i].stamp.origin_when) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  if (a.size() != b.size()) return static_cast<std::ptrdiff_t>(n);
  return -1;
}

std::string format_event(const CapturedEvent& e) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "when=%" PRIu64 " shard=%u lamport=%" PRIu64 " (%s)", e.when,
                e.shard, e.lamport, format_stamp(e.stamp).c_str());
  return buf;
}

}  // namespace alpu::check
