// Executable specification of the eager flow-control protocol.
//
// PR "bounded eager resources" layers a receiver-not-ready protocol on
// the go-back-N reliability sublayer: finite budgets (pool bytes +
// envelope slots), RNR NACKs with retry hints, credits returned as
// buffers drain, and eager→rendezvous demotion after repeated
// refusals.  This module states that protocol as code, the way
// spec.hpp states the ALPU list protocol:
//
//   * FlowSpec    one sender→receiver link in the abstract: a timeless
//                 state machine over {pool occupancy, staged/draining
//                 queues, one held (refused) offer, refusal streak,
//                 demotion}.  Every transition returns the observable
//                 effects (admitted / nacked / credit push / demoted
//                 routing / link failure) so an implementation can be
//                 run in lockstep against it.
//
//   * check_flow  a bounded-exhaustive checker: every legal operation
//                 sequence up to a depth, with the spec's internal
//                 invariants verified after every step — occupancy
//                 never exceeds the budget, refusal exactly iff the
//                 budget would be exceeded, credits pushed exactly iff
//                 a refused sender waits, delivery exactly-once and in
//                 order, demotion after exactly `demote_after`
//                 consecutive refusals, failure after `max_streak`.
//
// tests/test_check.cpp additionally drives the real ReliabilityLayer
// pair against FlowSpec transition-by-transition (the differential
// lockstep test), so the spec here is pinned to the implementation.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace alpu::check {

struct FlowConfig {
  std::uint32_t pool_bytes = 4096;  ///< 0 = unlimited
  std::uint32_t slots = 2;          ///< 0 = unlimited
  /// Consecutive refusals (no credit in between) that demote the sender.
  unsigned demote_after = 2;
  /// Refusal streak that fails the link (reliability max_retries).
  unsigned max_streak = 12;
  /// Credit threshold that re-promotes a demoted sender (the NIC uses
  /// its eager_threshold here).
  std::uint32_t promote_bytes = 2048;
};

enum class FlowOpKind : std::uint8_t {
  /// Sender offers its next message eagerly (`bytes` of payload to pin).
  kSendEager,
  /// Sender offers a rendezvous RTS (pins an envelope slot only).
  kSendRts,
  /// Receiver matches the oldest staged message to a posted receive:
  /// the envelope slot frees (a credit may be pushed); payload bytes
  /// stay pinned until kDrain.
  kMatch,
  /// The oldest matched delivery's DMA completes: payload bytes free
  /// (a credit may be pushed) and the message is delivered.
  kDrain,
  /// The refused sender's RNR backoff expires: re-offer the held
  /// message.
  kRetry,
};

struct FlowOp {
  FlowOpKind kind = FlowOpKind::kSendEager;
  std::uint32_t bytes = 0;  ///< payload size (kSendEager only)
};

/// Observable effects of one transition (what the wire would show).
struct FlowEffect {
  bool admitted = false;      ///< offer accepted, resources reserved
  bool nacked = false;        ///< offer refused with an RNR NACK
  bool credit_push = false;   ///< explicit credit ACK to the waiting sender
  bool demoted_route = false; ///< offer rerouted via rendezvous (demoted)
  bool demoted_now = false;   ///< this refusal crossed demote_after
  bool promoted_now = false;  ///< this credit re-promoted the sender
  bool link_failed = false;   ///< refusal streak exhausted max_streak
};

class FlowSpec {
 public:
  explicit FlowSpec(const FlowConfig& config) : config_(config) {}

  /// Apply one operation.  Illegal operations (see legal()) assert.
  FlowEffect apply(const FlowOp& op);

  /// Whether `op` is applicable in the current state (drives the
  /// bounded enumeration: kMatch needs a staged message, kDrain a
  /// matched one, kRetry a held offer; the sender is one-outstanding).
  bool legal(const FlowOp& op) const;

  // Observers (the lockstep test compares these against the NIC).
  std::uint64_t pool_used() const { return pool_used_; }
  std::uint32_t slots_used() const {
    return static_cast<std::uint32_t>(staged_.size());
  }
  std::uint64_t peak_pool() const { return peak_pool_; }
  bool held() const { return held_; }
  bool demoted() const { return demoted_; }
  unsigned streak() const { return streak_; }
  bool failed() const { return failed_; }
  std::uint64_t delivered() const { return next_delivered_; }

  /// Internal invariants; empty when consistent, else a description.
  std::string invariant_violation() const;

 private:
  struct Msg {
    std::uint64_t id = 0;
    std::uint32_t bytes = 0;  ///< pinned pool bytes (0 for RTS/demoted)
  };

  bool fits(std::uint32_t bytes) const;
  FlowEffect admit_or_refuse(std::uint32_t bytes);
  void credit_released(FlowEffect& effect);

  FlowConfig config_;
  std::uint64_t pool_used_ = 0;
  std::uint64_t peak_pool_ = 0;
  std::deque<Msg> staged_;    ///< admitted, unmatched (pins a slot)
  std::deque<Msg> draining_;  ///< matched, bytes pinned until drain
  bool held_ = false;         ///< a refused offer waits at the sender
  std::uint32_t held_bytes_ = 0;
  bool credit_owed_ = false;  ///< receiver owes the held sender a push
  unsigned streak_ = 0;
  bool demoted_ = false;
  bool failed_ = false;
  std::uint64_t next_id_ = 0;         ///< sender-side message ids
  std::uint64_t next_delivered_ = 0;  ///< exactly-once in-order horizon
};

struct FlowCheckOptions {
  FlowConfig config;
  /// Maximum operation-sequence length enumerated.
  std::size_t depth = 7;
  /// Eager payload sizes in the enumeration alphabet.
  std::vector<std::uint32_t> sizes = {1024, 4096};
};

struct FlowCheckResult {
  bool ok = false;
  std::uint64_t sequences = 0;  ///< maximal sequences explored
  std::uint64_t ops = 0;        ///< transitions applied (states visited)
  /// First failing operation sequence, empty when ok.
  std::string counterexample;
};

/// Bounded-exhaustive check of FlowSpec's invariants over every legal
/// operation sequence up to `depth`.
FlowCheckResult check_flow(const FlowCheckOptions& options);

}  // namespace alpu::check
