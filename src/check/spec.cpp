#include "check/spec.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "match/match.hpp"

namespace alpu::check {

std::string to_string(const Op& op) {
  char buf[128];
  const match::Pattern p{op.bits, op.mask};
  switch (op.kind) {
    case OpKind::kBegin:
      return "begin-insert";
    case OpKind::kEnd:
      return "end-insert";
    case OpKind::kInsert:
      std::snprintf(buf, sizeof buf, "insert %s cookie=%u",
                    match::to_string(p).c_str(), op.cookie);
      return buf;
    case OpKind::kProbe:
      std::snprintf(buf, sizeof buf, "probe %s seq=%llu",
                    match::to_string(p).c_str(),
                    static_cast<unsigned long long>(op.seq));
      return buf;
    case OpKind::kReset:
      return "reset";
    case OpKind::kSweep:
      std::snprintf(buf, sizeof buf, "sweep %s",
                    match::to_string(p).c_str());
      return buf;
    case OpKind::kProbeRejected:
      std::snprintf(buf, sizeof buf, "probe-rejected %s seq=%llu",
                    match::to_string(p).c_str(),
                    static_cast<unsigned long long>(op.seq));
      return buf;
    case OpKind::kCorrupt:
      std::snprintf(buf, sizeof buf, "corrupt plane=%llu cell=%llu bit=%u",
                    static_cast<unsigned long long>(op.bits),
                    static_cast<unsigned long long>(op.mask), op.cookie);
      return buf;
  }
  return "?";
}

std::string to_string(const SpecResponse& r) {
  char buf[96];
  switch (r.kind) {
    case hw::ResponseKind::kStartAck:
      std::snprintf(buf, sizeof buf, "START_ACK free=%u", r.free_slots);
      return buf;
    case hw::ResponseKind::kMatchSuccess:
      std::snprintf(buf, sizeof buf, "MATCH_SUCCESS cookie=%u seq=%llu",
                    r.cookie, static_cast<unsigned long long>(r.probe_seq));
      return buf;
    case hw::ResponseKind::kMatchFailure:
      std::snprintf(buf, sizeof buf, "MATCH_FAILURE seq=%llu",
                    static_cast<unsigned long long>(r.probe_seq));
      return buf;
    case hw::ResponseKind::kParityFault:
      std::snprintf(buf, sizeof buf, "PARITY_FAULT seq=%llu",
                    static_cast<unsigned long long>(r.probe_seq));
      return buf;
  }
  return "?";
}

// ---- ListSpec -------------------------------------------------------------

ListSpec::ListSpec(AlpuFlavor flavor, std::size_t capacity,
                   MatchWord significant_mask)
    : flavor_(flavor), capacity_(capacity),
      significant_mask_(significant_mask) {
  ALPU_ASSERT(capacity > 0, "spec list must have at least one slot");
  ALPU_ASSERT(significant_mask != 0, "spec needs at least one compared bit");
}

bool ListSpec::insert(MatchWord bits, MatchWord mask, Cookie cookie) {
  if (full()) return false;
  entries_.push_back(SpecEntry{bits, mask, cookie});
  return true;
}

bool ListSpec::entry_matches(const SpecEntry& e, MatchWord bits,
                             MatchWord mask) const {
  const MatchWord dont_care =
      flavor_ == AlpuFlavor::kPostedReceive ? e.mask : mask;
  return ((e.bits ^ bits) & ~dont_care & significant_mask_) == 0;
}

SpecMatch ListSpec::match(MatchWord bits, MatchWord mask) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entry_matches(entries_[i], bits, mask)) {
      return SpecMatch{true, i, entries_[i].cookie};
    }
  }
  return SpecMatch{};
}

SpecMatch ListSpec::match_and_delete(MatchWord bits, MatchWord mask) {
  const SpecMatch m = match(bits, mask);
  if (m.hit) {
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(m.index));
  }
  return m;
}

std::size_t ListSpec::sweep(MatchWord bits, MatchWord mask) {
  // Like the hardware sweep, selection is always selector-masked: the
  // stored per-cell masks describe what a cell ACCEPTS, not what
  // selects it.
  const MatchWord care = ~mask & significant_mask_;
  std::size_t removed = 0;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (((entries_[i].bits ^ bits) & care) == 0) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    }
  }
  return removed;
}

// ---- ProtocolSpec ---------------------------------------------------------

ProtocolSpec::ProtocolSpec(AlpuFlavor flavor, std::size_t capacity,
                           MatchWord significant_mask)
    : list_(flavor, capacity, significant_mask) {}

void ProtocolSpec::settle(std::vector<SpecResponse>& out) {
  if (quarantined_) {
    // The unit latched a parity fault: every probe is answered PARITY
    // FAULT (one response per header, in probe order) and nothing
    // touches the list until the recovering RESET.  kCorrupt is only
    // legal outside insert mode, so no probe can be held here.
    ALPU_ASSERT(!held_.has_value(), "probe held across a corruption");
    while (!queued_.empty()) {
      out.push_back(SpecResponse{hw::ResponseKind::kParityFault, 0, 0,
                                 queued_.front().seq});
      queued_.pop_front();
    }
    return;
  }
  for (;;) {
    if (held_.has_value()) {
      if (!insert_mode_) {
        // STOP INSERT (or never in insert mode): the held probe is
        // re-matched in Match state and its result — success or, now
        // legal again, failure — is emitted.
        const SpecMatch m = list_.match_and_delete(held_->bits, held_->mask);
        out.push_back(m.hit
                          ? SpecResponse{hw::ResponseKind::kMatchSuccess,
                                         m.cookie, 0, held_->seq}
                          : SpecResponse{hw::ResponseKind::kMatchFailure, 0, 0,
                                         held_->seq});
        held_.reset();
        retry_pending_ = false;
        continue;
      }
      if (retry_pending_) {
        // Every insert gives the held probe new entries to match
        // against; only a success may be reported inside insert mode.
        retry_pending_ = false;
        const SpecMatch m = list_.match_and_delete(held_->bits, held_->mask);
        if (m.hit) {
          out.push_back(SpecResponse{hw::ResponseKind::kMatchSuccess,
                                     m.cookie, 0, held_->seq});
          held_.reset();
        }
        continue;
      }
      // Held with no retry pending: matching pauses; queued probes wait
      // behind the held one (response order follows probe order).
      return;
    }
    if (!queued_.empty()) {
      const PendingProbe p = queued_.front();
      queued_.pop_front();
      const SpecMatch m = list_.match_and_delete(p.bits, p.mask);
      if (m.hit) {
        out.push_back(SpecResponse{hw::ResponseKind::kMatchSuccess, m.cookie,
                                   0, p.seq});
      } else if (insert_mode_) {
        held_ = p;  // failure is not reportable during insert mode
      } else {
        out.push_back(
            SpecResponse{hw::ResponseKind::kMatchFailure, 0, 0, p.seq});
      }
      continue;
    }
    return;
  }
}

void ProtocolSpec::apply(const Op& op, std::vector<SpecResponse>& out) {
  switch (op.kind) {
    case OpKind::kBegin:
      ALPU_ASSERT(!insert_mode_, "begin-insert while already in insert mode");
      out.push_back(SpecResponse{
          hw::ResponseKind::kStartAck, 0,
          static_cast<std::uint32_t>(list_.capacity() - list_.size()), 0});
      insert_mode_ = true;
      break;
    case OpKind::kEnd:
      ALPU_ASSERT(insert_mode_, "end-insert outside insert mode");
      insert_mode_ = false;
      retry_pending_ = false;
      break;
    case OpKind::kInsert:
      ALPU_ASSERT(insert_mode_, "insert command outside insert mode");
      // Past the granted count the hardware has nowhere to put the
      // entry: record-and-drop (protocol violation by the processor).
      (void)list_.insert(op.bits, op.mask, op.cookie);
      if (held_.has_value()) retry_pending_ = true;
      break;
    case OpKind::kProbe:
      queued_.push_back(PendingProbe{op.bits, op.mask, op.seq});
      break;
    case OpKind::kReset:
      ALPU_ASSERT(!insert_mode_, "reset inside insert mode is discarded");
      // RESET is also the recovery command: it clears the (corrupted)
      // storage, reheals parity, and lifts the quarantine.
      list_.reset();
      quarantined_ = false;
      break;
    case OpKind::kSweep:
      ALPU_ASSERT(!insert_mode_, "sweep inside insert mode is discarded");
      (void)list_.sweep(op.bits, op.mask);
      break;
    case OpKind::kProbeRejected:
      // A full header FIFO refused the probe before the unit saw it: no
      // response is owed and nothing changes.  The settle() below must
      // therefore make no progress either — the op is a pure stutter in
      // the response stream (the processor re-offers the header later as
      // an ordinary kProbe).
      break;
    case OpKind::kCorrupt:
      // A flipped bit owes no response of its own; detection happens at
      // the next probe's parity verify, which is exactly when the first
      // PARITY FAULT is emitted.  Quarantining now (rather than at
      // detection) is observationally identical because an undetected
      // flip has no observable either.
      ALPU_ASSERT(!insert_mode_, "corrupt op inside insert mode");
      ALPU_ASSERT(!quarantined_, "one corruption per episode");
      quarantined_ = true;
      break;
  }
  settle(out);
}

}  // namespace alpu::check
