#include "check/checker.hpp"

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <type_traits>
#include <utility>

#include "alpu/alpu.hpp"
#include "alpu/array.hpp"
#include "alpu/pipelined.hpp"
#include "alpu/reference.hpp"
#include "common/check.hpp"
#include "sim/engine.hpp"

namespace alpu::check {
namespace {

std::string strf(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

std::string join_responses(const std::vector<SpecResponse>& rs) {
  if (rs.empty()) return "(none)";
  std::string out;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (i != 0) out += ", ";
    out += to_string(rs[i]);
  }
  return out;
}

// ---- enumeration alphabet -------------------------------------------------
//
// Two distinguishable headers sharing a context, one source/tag
// wildcard pattern, and one partial sweep selector are enough to
// exercise every interesting relation: equal vs distinct entries,
// wildcard overlap, sweeps that remove a strict subset.  Keeping the
// alphabet minimal is what keeps exhaustive depth-6 enumeration cheap.
struct Shape {
  MatchWord bits = 0;
  MatchWord mask = 0;
};

struct Alphabet {
  std::vector<Shape> inserts;
  std::vector<Shape> probes;
  Shape sweep;  ///< RESET MATCHING selector (always selector-masked)
};

Alphabet make_alphabet(AlpuFlavor flavor) {
  const MatchWord h0 = match::pack({1, 0, 0});
  const MatchWord h1 = match::pack({1, 1, 1});
  const match::Pattern wild = match::make_recv_pattern(1, std::nullopt,
                                                       std::nullopt);
  const match::Pattern sweep_sel =
      match::make_recv_pattern(1, 1, std::nullopt);

  Alphabet a;
  if (flavor == AlpuFlavor::kPostedReceive) {
    // Entries carry the masks; probes are explicit incoming headers.
    a.inserts = {{h0, 0}, {h1, 0}, {wild.bits, wild.mask}};
    a.probes = {{h0, 0}, {h1, 0}};
  } else {
    // Entries are explicit headers; probes carry the masks (the
    // reverse lookup of Figure 2b).
    a.inserts = {{h0, 0}, {h1, 0}};
    a.probes = {{h0, 0}, {h1, 0}, {wild.bits, wild.mask}};
  }
  a.sweep = {sweep_sel.bits, sweep_sel.mask};
  return a;
}

bool is_protocol(ImplKind impl) {
  return impl == ImplKind::kTransaction || impl == ImplKind::kPipelined;
}

/// Implementations carrying the transient-fault model (parity planes +
/// corrupt_for_test).  The reference oracle and the stage-level RTL
/// model deliberately have none.
bool supports_faults(ImplKind impl) {
  return impl == ImplKind::kArray || impl == ImplKind::kTransaction;
}

/// Protocol legality of a whole sequence: insert-mode bracketing, plus
/// the corruption-episode rules (kCorrupt outside insert mode, at most
/// once per episode; only kProbe/kReset until the recovering kReset).
/// Used by the shrinker; the enumerator enforces the same rules
/// incrementally — keep the two in lockstep or shrinking produces
/// sequences the spec asserts on.
bool sequence_legal(const std::vector<Op>& seq, bool protocol) {
  bool mode = false;
  bool corrupted = false;
  for (const Op& op : seq) {
    switch (op.kind) {
      case OpKind::kBegin:
        if (!protocol || mode || corrupted) return false;
        mode = true;
        break;
      case OpKind::kEnd:
        if (!protocol || !mode) return false;
        mode = false;
        break;
      case OpKind::kInsert:
        if ((protocol && !mode) || corrupted) return false;
        break;
      case OpKind::kReset:
        if (mode) return false;
        corrupted = false;
        break;
      case OpKind::kSweep:
        if (mode || corrupted) return false;
        break;
      case OpKind::kProbe:
        break;
      case OpKind::kProbeRejected:
        if (corrupted) return false;
        break;
      case OpKind::kCorrupt:
        if (mode || corrupted) return false;
        corrupted = true;
        break;
    }
  }
  return true;
}

/// The two corruption variants the fault alphabet interleaves: a data-
/// plane flip (bits plane, cell 0 — a padded cell is still covered, so
/// this is detectable even at occupancy 0) and a validity-bitmap flip
/// (turns a dead cell live or a live cell dead).  Field encoding is
/// documented on OpKind::kCorrupt.
constexpr Op kCorruptDataBit{OpKind::kCorrupt, /*bits=*/0, /*mask=*/0,
                             /*cookie=*/14, 0};
constexpr Op kCorruptValidBit{OpKind::kCorrupt, /*bits=*/3, /*mask=*/1,
                              /*cookie=*/0, 0};

// ---- datapath tier: AlpuArray / ReferenceAlpuArray vs ListSpec ------------

/// Replay `seq` against a fresh implementation and the spec, comparing
/// every observable after every step.  Cookies and probe sequence
/// numbers are assigned in place from the op's position, so a failing
/// trace prints with the identities it actually ran with.  Returns the
/// divergence description and sets `*fail_at` to the failing step.
template <typename Impl>
std::optional<std::string> replay_datapath(AlpuFlavor flavor,
                                           const CheckOptions& opt,
                                           std::vector<Op>& seq,
                                           std::size_t* fail_at) {
  ListSpec spec(flavor, opt.cells, match::kFullMask);
  Impl impl(flavor, opt.cells, opt.block);
  if constexpr (std::is_same_v<Impl, hw::AlpuArray>) {
    if (opt.faults) {
      hw::SeuConfig seu;
      seu.force_parity = true;  // detection only; the checker injects
      impl.install_fault_model(seu, /*stream=*/0);
    }
  }
  Cookie next_cookie = 1;
  std::uint64_t next_seq = 1;
  // True between a kCorrupt and the recovering kReset: the planes are
  // untrustworthy, so probes must all miss (quarantine) and the state
  // comparison is suspended until the rebuild.
  bool corrupted = false;

  for (std::size_t i = 0; i < seq.size(); ++i) {
    Op& op = seq[i];
    *fail_at = i;
    switch (op.kind) {
      case OpKind::kInsert: {
        op.cookie = next_cookie++;
        const bool got = impl.insert(op.bits, op.mask, op.cookie);
        const bool want = spec.insert(op.bits, op.mask, op.cookie);
        if (got != want) {
          return strf("insert accepted=%d, spec says %d", got, want);
        }
        break;
      }
      case OpKind::kProbe: {
        op.seq = next_seq++;
        const hw::Probe probe{op.bits, op.mask, op.seq};
        if (corrupted) {
          // The parity verify at the head of every search must refuse
          // to answer from corrupted planes: all three entry points
          // report a miss while quarantined, whatever is stored.
          const hw::ArrayMatch linear = impl.match(probe);
          const hw::ArrayMatch tree = impl.match_tree(probe);
          const hw::ArrayMatch del = impl.match_and_delete(probe);
          if (linear.hit || tree.hit || del.hit) {
            return strf(
                "quarantined array answered a probe: match hit=%d "
                "match_tree hit=%d match_and_delete hit=%d",
                linear.hit, tree.hit, del.hit);
          }
          break;
        }
        const SpecMatch want = spec.match(op.bits, op.mask);
        const hw::ArrayMatch linear = impl.match(probe);
        const hw::ArrayMatch tree = impl.match_tree(probe);
        if (linear.hit != want.hit ||
            (want.hit && (linear.location != want.index ||
                          linear.cookie != want.cookie))) {
          return strf(
              "match(): hit=%d loc=%zu cookie=%u, spec says hit=%d "
              "index=%zu cookie=%u",
              linear.hit, linear.location, linear.cookie, want.hit,
              want.index, want.cookie);
        }
        if (tree.hit != linear.hit || tree.location != linear.location ||
            tree.cookie != linear.cookie) {
          return strf(
              "match_tree() disagrees with match(): tree hit=%d loc=%zu "
              "cookie=%u vs linear hit=%d loc=%zu cookie=%u",
              tree.hit, tree.location, tree.cookie, linear.hit,
              linear.location, linear.cookie);
        }
        const hw::ArrayMatch del = impl.match_and_delete(probe);
        const SpecMatch sdel = spec.match_and_delete(op.bits, op.mask);
        if (del.hit != sdel.hit ||
            (sdel.hit &&
             (del.location != sdel.index || del.cookie != sdel.cookie))) {
          return strf(
              "match_and_delete(): hit=%d loc=%zu cookie=%u, spec says "
              "hit=%d index=%zu cookie=%u",
              del.hit, del.location, del.cookie, sdel.hit, sdel.index,
              sdel.cookie);
        }
        break;
      }
      case OpKind::kReset:
        impl.reset();
        spec.reset();
        corrupted = false;  // reset reheals parity and lifts quarantine
        break;
      case OpKind::kCorrupt:
        if constexpr (std::is_same_v<Impl, hw::AlpuArray>) {
          impl.corrupt_for_test(static_cast<unsigned>(op.bits),
                                static_cast<std::size_t>(op.mask),
                                op.cookie);
          corrupted = true;
        } else {
          ALPU_CHECK_FAIL("corrupt op on an implementation without a "
                          "fault model");
        }
        break;
      case OpKind::kSweep: {
        const hw::Probe selector{op.bits, op.mask, 0};
        const std::size_t got = impl.invalidate_matching(selector);
        const std::size_t want = spec.sweep(op.bits, op.mask);
        if (got != want) {
          return strf("sweep removed %zu entries, spec says %zu", got, want);
        }
        break;
      }
      case OpKind::kBegin:
      case OpKind::kEnd:
      case OpKind::kProbeRejected:
        ALPU_CHECK_FAIL("protocol-only op in a datapath sequence");
    }

    // Full post-step state comparison: occupancy and every live cell.
    // Suspended while quarantined: the planes (validity included, so
    // occupancy too) are corrupted by construction, and the recovery
    // contract only promises equivalence again after the rebuild.
    if (corrupted) continue;
    if (impl.occupancy() != spec.size()) {
      return strf("occupancy %zu, spec says %zu", impl.occupancy(),
                  spec.size());
    }
    for (std::size_t j = 0; j < spec.size(); ++j) {
      const hw::Cell cell = impl.cell(j);
      const SpecEntry& want = spec.entries()[j];
      if (!cell.valid || cell.bits != want.bits || cell.mask != want.mask ||
          cell.cookie != want.cookie) {
        return strf(
            "cell %zu holds {bits=%llx mask=%llx cookie=%u valid=%d}, "
            "spec says {bits=%llx mask=%llx cookie=%u}",
            j, static_cast<unsigned long long>(cell.bits),
            static_cast<unsigned long long>(cell.mask), cell.cookie,
            cell.valid, static_cast<unsigned long long>(want.bits),
            static_cast<unsigned long long>(want.mask), want.cookie);
      }
    }
  }
  return std::nullopt;
}

// ---- protocol tier: Alpu / PipelinedAlpu vs ProtocolSpec ------------------

/// Functional fields of a device response, zeroed where the kind does
/// not define them, so vectors compare with ==.
SpecResponse normalize(const hw::Response& r) {
  SpecResponse s;
  s.kind = r.kind;
  switch (r.kind) {
    case hw::ResponseKind::kStartAck:
      s.free_slots = r.free_slots;
      break;
    case hw::ResponseKind::kMatchSuccess:
      s.cookie = r.cookie;
      s.probe_seq = r.probe_seq;
      break;
    case hw::ResponseKind::kMatchFailure:
      s.probe_seq = r.probe_seq;
      break;
    case hw::ResponseKind::kParityFault:
      s.probe_seq = r.probe_seq;
      break;
  }
  return s;
}

/// Logical cell order (oldest first) of the transaction-level unit:
/// AlpuArray keeps the list compacted with index 0 oldest.
std::vector<SpecEntry> logical_cells(const hw::Alpu& dev) {
  std::vector<SpecEntry> out;
  const hw::AlpuArray& array = dev.array();
  out.reserve(array.occupancy());
  for (std::size_t i = 0; i < array.occupancy(); ++i) {
    const hw::Cell c = array.cell(i);
    out.push_back(SpecEntry{c.bits, c.mask, c.cookie});
  }
  return out;
}

/// Logical cell order of the stage-level unit: the RTL array stores the
/// youngest at cell 0 and may hold holes mid-insert; cells only drift
/// toward the old end without overtaking, so walking from the high end
/// down yields oldest-first regardless of compaction progress.
std::vector<SpecEntry> logical_cells(const hw::PipelinedAlpu& dev) {
  std::vector<SpecEntry> out;
  const hw::RtlAlpu& rtl = dev.datapath();
  out.reserve(rtl.occupancy());
  for (std::size_t i = rtl.capacity(); i-- > 0;) {
    const hw::Cell& c = rtl.cell(i);
    if (c.valid) out.push_back(SpecEntry{c.bits, c.mask, c.cookie});
  }
  return out;
}

hw::AlpuConfig make_device_config(AlpuFlavor flavor, const CheckOptions& opt,
                                  const hw::Alpu*) {
  hw::AlpuConfig cfg;
  cfg.flavor = flavor;
  cfg.total_cells = opt.cells;
  cfg.block_size = opt.block;
  // Fault checking needs the parity planes installed; the injector and
  // the scrub stay off — kCorrupt flips bits deterministically instead.
  cfg.seu.force_parity = opt.faults;
  return cfg;
}

hw::PipelinedAlpuConfig make_device_config(AlpuFlavor flavor,
                                           const CheckOptions& opt,
                                           const hw::PipelinedAlpu*) {
  hw::PipelinedAlpuConfig cfg;
  cfg.flavor = flavor;
  cfg.total_cells = opt.cells;
  cfg.block_size = opt.block;
  return cfg;
}

/// Replay `seq` against a fresh device at run-to-quiescence
/// granularity: push one op, drain the simulation, and require the
/// response stream, the occupancy, and the logical cell order to equal
/// the protocol spec's after every step.
template <typename Device>
std::optional<std::string> replay_protocol(AlpuFlavor flavor,
                                           const CheckOptions& opt,
                                           std::vector<Op>& seq,
                                           std::size_t* fail_at) {
  sim::Engine engine;
  Device dev(engine, "dut", make_device_config(flavor, opt,
                                               static_cast<Device*>(nullptr)));
  ProtocolSpec spec(flavor, opt.cells, match::kFullMask);
  Cookie next_cookie = 1;
  std::uint64_t next_seq = 1;
  // Suspends the occupancy / cell-order comparison between a kCorrupt
  // and the recovering kReset (the response-stream comparison keeps
  // running — that is where PARITY FAULT detection is proven).
  bool corrupted = false;

  for (std::size_t i = 0; i < seq.size(); ++i) {
    Op& op = seq[i];
    *fail_at = i;

    bool pushed = true;
    switch (op.kind) {
      case OpKind::kBegin:
        pushed = dev.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
        break;
      case OpKind::kEnd:
        pushed = dev.push_command({hw::CommandKind::kStopInsert, 0, 0, 0});
        break;
      case OpKind::kInsert:
        op.cookie = next_cookie++;
        pushed = dev.push_command(
            {hw::CommandKind::kInsert, op.bits, op.mask, op.cookie});
        break;
      case OpKind::kProbe:
        op.seq = next_seq++;
        pushed = dev.push_probe({op.bits, op.mask, op.seq});
        break;
      case OpKind::kReset:
        pushed = dev.push_command({hw::CommandKind::kReset, 0, 0, 0});
        corrupted = false;  // RESET reheals parity and lifts quarantine
        break;
      case OpKind::kSweep:
        pushed = dev.push_command(
            {hw::CommandKind::kResetMatching, op.bits, op.mask, 0});
        break;
      case OpKind::kCorrupt:
        if constexpr (std::is_same_v<Device, hw::Alpu>) {
          dev.corrupt_for_test(static_cast<unsigned>(op.bits),
                               static_cast<std::size_t>(op.mask), op.cookie);
          corrupted = true;
        } else {
          ALPU_CHECK_FAIL("corrupt op on a device without a fault model");
        }
        break;
      case OpKind::kProbeRejected:
        // The header FIFO refused the probe before the unit saw it:
        // nothing reaches the device.  The spec step must agree that no
        // response is owed and no state changed.
        break;
    }
    // FIFO depths dwarf the bounded sequence length; back-pressure here
    // would itself be a protocol bug worth failing on.
    ALPU_ASSERT(pushed, "device FIFO refused an op within bounded depth");

    engine.run();

    std::vector<SpecResponse> got;
    while (std::optional<hw::Response> r = dev.pop_result()) {
      got.push_back(normalize(*r));
    }
    std::vector<SpecResponse> want;
    spec.apply(op, want);
    if (got != want) {
      return strf("responses [%s], spec says [%s]",
                  join_responses(got).c_str(), join_responses(want).c_str());
    }

    if (corrupted) continue;  // planes untrustworthy until the rebuild
    if (dev.occupancy() != spec.list().size()) {
      return strf("occupancy %zu, spec says %zu", dev.occupancy(),
                  spec.list().size());
    }
    const std::vector<SpecEntry> cells = logical_cells(dev);
    if (cells != spec.list().entries()) {
      for (std::size_t j = 0; j < cells.size(); ++j) {
        const SpecEntry& want_e = spec.list().entries()[j];
        if (!(cells[j] == want_e)) {
          return strf(
              "logical cell %zu holds {bits=%llx mask=%llx cookie=%u}, "
              "spec says {bits=%llx mask=%llx cookie=%u}",
              j, static_cast<unsigned long long>(cells[j].bits),
              static_cast<unsigned long long>(cells[j].mask),
              cells[j].cookie, static_cast<unsigned long long>(want_e.bits),
              static_cast<unsigned long long>(want_e.mask), want_e.cookie);
        }
      }
      return "logical cell order diverged";
    }
  }
  return std::nullopt;
}

// ---- the bounded enumerator -----------------------------------------------

class Checker {
 public:
  Checker(ImplKind impl, AlpuFlavor flavor, const CheckOptions& opt)
      : impl_(impl), flavor_(flavor), opt_(opt),
        alphabet_(make_alphabet(flavor)), protocol_(is_protocol(impl)) {}

  CheckResult run() {
    CheckResult result;
    result.impl = impl_;
    result.flavor = flavor_;

    // Iterative deepening: every length-(d-1) sequence was already
    // checked at the previous depth, so the first failure found here is
    // length-minimal by construction.
    std::vector<Op> seq;
    seq.reserve(opt_.depth);
    for (std::size_t depth = 1; depth <= opt_.depth; ++depth) {
      if (!extend(seq, /*in_mode=*/false, /*corrupted=*/false, depth,
                  result)) {
        shrink(result);
        result.ok = false;
        return result;
      }
      ALPU_ASSERT(seq.empty(), "enumerator left a partial sequence behind");
    }
    result.ok = true;
    return result;
  }

 private:
  /// Ops legal from the current mode.  Datapath sequences have no
  /// modes; the protocol alphabet honours Figure 3 (insert only inside
  /// insert mode; reset/sweep only outside; PipelinedAlpu discards
  /// RESET MATCHING, so it gets no sweep at all).  A corruption episode
  /// narrows the alphabet to probes (each must answer PARITY FAULT /
  /// miss) and the recovering reset.
  void legal_ops(bool in_mode, bool corrupted, std::vector<Op>& out) const {
    out.clear();
    if (corrupted) {
      for (const Shape& s : alphabet_.probes) {
        out.push_back(Op{OpKind::kProbe, s.bits, s.mask, 0, 0});
      }
      out.push_back(Op{OpKind::kReset, 0, 0, 0, 0});
      return;
    }
    const bool corrupt_ok = opt_.faults && supports_faults(impl_);
    if (!protocol_) {
      for (const Shape& s : alphabet_.inserts) {
        out.push_back(Op{OpKind::kInsert, s.bits, s.mask, 0, 0});
      }
      for (const Shape& s : alphabet_.probes) {
        out.push_back(Op{OpKind::kProbe, s.bits, s.mask, 0, 0});
      }
      out.push_back(Op{OpKind::kReset, 0, 0, 0, 0});
      out.push_back(
          Op{OpKind::kSweep, alphabet_.sweep.bits, alphabet_.sweep.mask, 0, 0});
      if (corrupt_ok) {
        out.push_back(kCorruptDataBit);
        out.push_back(kCorruptValidBit);
      }
      return;
    }
    for (const Shape& s : alphabet_.probes) {
      out.push_back(Op{OpKind::kProbe, s.bits, s.mask, 0, 0});
    }
    if (in_mode) {
      out.push_back(Op{OpKind::kEnd, 0, 0, 0, 0});
      for (const Shape& s : alphabet_.inserts) {
        out.push_back(Op{OpKind::kInsert, s.bits, s.mask, 0, 0});
      }
    } else {
      out.push_back(Op{OpKind::kBegin, 0, 0, 0, 0});
      out.push_back(Op{OpKind::kReset, 0, 0, 0, 0});
      if (impl_ == ImplKind::kTransaction) {
        out.push_back(Op{OpKind::kSweep, alphabet_.sweep.bits,
                         alphabet_.sweep.mask, 0, 0});
      }
      if (corrupt_ok) {
        out.push_back(kCorruptDataBit);
        out.push_back(kCorruptValidBit);
      }
    }
  }

  /// DFS over sequences of length exactly `target`.  Returns false when
  /// a divergence was found (recorded into `result`).
  bool extend(std::vector<Op>& seq, bool in_mode, bool corrupted,
              std::size_t target, CheckResult& result) {
    if (seq.size() == target) {
      return replay(seq, result);
    }
    std::vector<Op> ops;
    legal_ops(in_mode, corrupted, ops);
    for (const Op& op : ops) {
      seq.push_back(op);
      const bool next_mode =
          op.kind == OpKind::kBegin   ? true
          : op.kind == OpKind::kEnd   ? false
                                      : in_mode;
      const bool next_corrupted =
          op.kind == OpKind::kCorrupt ? true
          : op.kind == OpKind::kReset ? false
                                      : corrupted;
      if (!extend(seq, next_mode, next_corrupted, target, result)) {
        return false;
      }
      seq.pop_back();
    }
    return true;
  }

  std::optional<std::string> replay_once(std::vector<Op>& seq,
                                         std::size_t* fail_at) const {
    switch (impl_) {
      case ImplKind::kArray:
        return replay_datapath<hw::AlpuArray>(flavor_, opt_, seq, fail_at);
      case ImplKind::kReference:
        return replay_datapath<hw::ReferenceAlpuArray>(flavor_, opt_, seq,
                                                       fail_at);
      case ImplKind::kTransaction:
        return replay_protocol<hw::Alpu>(flavor_, opt_, seq, fail_at);
      case ImplKind::kPipelined:
        return replay_protocol<hw::PipelinedAlpu>(flavor_, opt_, seq,
                                                  fail_at);
    }
    ALPU_CHECK_FAIL("unknown ImplKind");
    return std::nullopt;
  }

  bool replay(std::vector<Op>& seq, CheckResult& result) {
    ++result.sequences;
    std::size_t fail_at = 0;
    const std::optional<std::string> divergence = replay_once(seq, &fail_at);
    if (!divergence.has_value()) {
      result.ops_applied += seq.size();
      return true;
    }
    result.ops_applied += fail_at + 1;
    result.counterexample.assign(seq.begin(),
                                 seq.begin() +
                                     static_cast<std::ptrdiff_t>(fail_at + 1));
    result.divergence = *divergence;
    return false;
  }

  /// Greedy delta shrink: repeatedly drop any single op whose removal
  /// (a) keeps the sequence protocol-legal and (b) still reproduces a
  /// divergence.  Iterative deepening already gives length-minimality
  /// within the enumeration order; this removes incidental prefix ops
  /// (e.g. probes that matched nothing) that deepening cannot.
  void shrink(CheckResult& result) const {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
        std::vector<Op> candidate = result.counterexample;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
        if (candidate.empty() || !sequence_legal(candidate, protocol_)) {
          continue;
        }
        std::size_t fail_at = 0;
        const std::optional<std::string> divergence =
            replay_once(candidate, &fail_at);
        if (divergence.has_value()) {
          candidate.resize(fail_at + 1);
          result.counterexample = std::move(candidate);
          result.divergence = *divergence;
          changed = true;
          break;
        }
      }
    }
  }

  ImplKind impl_;
  AlpuFlavor flavor_;
  CheckOptions opt_;
  Alphabet alphabet_;
  bool protocol_;
};

}  // namespace

const char* to_string(ImplKind impl) {
  switch (impl) {
    case ImplKind::kArray:
      return "array";
    case ImplKind::kReference:
      return "reference";
    case ImplKind::kTransaction:
      return "alpu";
    case ImplKind::kPipelined:
      return "pipelined";
  }
  return "?";
}

const char* to_string(AlpuFlavor flavor) {
  return flavor == AlpuFlavor::kPostedReceive ? "posted" : "unexpected";
}

CheckResult check_impl(ImplKind impl, AlpuFlavor flavor,
                       const CheckOptions& options) {
  ALPU_ASSERT(options.depth > 0, "check depth must be at least 1");
  ALPU_ASSERT(options.cells > 0 && options.block > 0 &&
                  options.cells % options.block == 0,
              "cells must be a positive multiple of block");
  return Checker(impl, flavor, options).run();
}

std::string format_counterexample(const CheckResult& result) {
  std::string out;
  out += strf("counterexample (%s, %s flavour, %zu ops):\n",
              to_string(result.impl), to_string(result.flavor),
              result.counterexample.size());
  for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
    out += strf("  step %zu: %s\n", i + 1,
                to_string(result.counterexample[i]).c_str());
  }
  out += strf("  divergence at step %zu: %s\n", result.counterexample.size(),
              result.divergence.c_str());
  return out;
}

}  // namespace alpu::check
