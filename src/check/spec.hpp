// Executable specification of the ALPU list-management protocol.
//
// The ALPU's whole value proposition is that its hardware list
// management — ordered priority match, delete-on-match with upward
// compaction, insert mode with held failures — is observationally
// identical to a software traversal of the MPI posted/unexpected
// queues.  This module states that claim as code, at two levels:
//
//   * ListSpec      the datapath: a plain ordered list of
//                   {bits, mask, cookie} entries with MPI first-match
//                   semantics.  No timing, no FIFOs, no modes — just
//                   the list algebra every array implementation must
//                   realize.
//
//   * ProtocolSpec  the Figure-3 protocol wrapped around the list: the
//                   insert-mode state machine, START ACKNOWLEDGE free
//                   counts, and the held-failure rule (a failed match
//                   between START and STOP INSERT is never reported; it
//                   retries after each insert and resolves at STOP
//                   INSERT), at run-to-quiescence granularity.
//
// The bounded checker (checker.hpp) drives hw::AlpuArray,
// hw::ReferenceAlpuArray, hw::Alpu and hw::PipelinedAlpu through all
// short operation sequences and cross-checks every observable against
// these specs after every step.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "alpu/types.hpp"

namespace alpu::check {

using hw::AlpuFlavor;
using match::Cookie;
using match::MatchWord;

/// One step of a checked operation sequence.  `bits`/`mask` come from
/// the enumeration alphabet; `cookie` (inserts) and `seq` (probes) are
/// assigned from the op's position during replay, so every entry and
/// probe is uniquely identifiable in a counterexample.
enum class OpKind : std::uint8_t {
  kBegin,   ///< START INSERT (protocol level; expect START ACKNOWLEDGE)
  kEnd,     ///< STOP INSERT (protocol level; releases a held failure)
  kInsert,  ///< append {bits, mask, cookie} at the tail (youngest)
  kProbe,   ///< match-and-delete probe (delete-on-match, compaction)
  kReset,   ///< clear all entries
  kSweep,   ///< RESET MATCHING: delete every entry matching the selector
  /// A probe refused by a full header FIFO.  The refusal leaves no trace
  /// in the unit — no response is owed, no state changes — and the
  /// processor must re-offer the header later (the NIC firmware's
  /// bounded retry / graceful-degradation path).  Modelled as an
  /// explicit no-op so the checker can prove the refusal composes with
  /// held failures and retries: rejected-then-retried sequences must be
  /// response-equivalent to never-rejected ones.
  kProbeRejected,
  /// A single-event upset: flip one bit of one storage plane without
  /// updating parity (AlpuArray::corrupt_for_test).  Field encoding is
  /// positional: `bits` = plane (0 bits / 1 mask / 2 cookie / 3
  /// validity), `mask` = cell index, `cookie` = bit index.  Legal only
  /// outside insert mode and at most once per episode; until the
  /// recovering kReset, only kProbe (answered PARITY FAULT) and kReset
  /// itself are legal.  Enabled by CheckOptions::faults on the
  /// implementations that carry the fault model.
  kCorrupt,
};

struct Op {
  OpKind kind = OpKind::kReset;
  MatchWord bits = 0;
  MatchWord mask = 0;
  Cookie cookie = 0;       ///< inserts: assigned at replay
  std::uint64_t seq = 0;   ///< probes: assigned at replay
};

std::string to_string(const Op& op);

/// A stored entry, oldest first (index 0 = highest priority).
struct SpecEntry {
  MatchWord bits = 0;
  MatchWord mask = 0;
  Cookie cookie = 0;

  friend bool operator==(const SpecEntry&, const SpecEntry&) = default;
};

/// Result of a spec-level probe.
struct SpecMatch {
  bool hit = false;
  std::size_t index = 0;
  Cookie cookie = 0;

  friend bool operator==(const SpecMatch&, const SpecMatch&) = default;
};

/// The datapath specification: an ordered list with MPI matching
/// semantics.  Index 0 is the oldest entry; a probe selects the oldest
/// match ("first posted receive wins"); deletion keeps the survivors in
/// order (the hardware's upward compaction, made trivial by a vector).
class ListSpec {
 public:
  ListSpec(AlpuFlavor flavor, std::size_t capacity,
           MatchWord significant_mask);

  AlpuFlavor flavor() const { return flavor_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() == capacity_; }
  const std::vector<SpecEntry>& entries() const { return entries_; }

  /// Append at the tail (youngest).  False when full.
  bool insert(MatchWord bits, MatchWord mask, Cookie cookie);

  /// The entry-matches-probe rule.  Posted flavour: the STORED mask is
  /// the don't-care set (Figure 2a).  Unexpected flavour: the PROBE
  /// carries the don't-care set — the reverse lookup (Figure 2b).
  bool entry_matches(const SpecEntry& e, MatchWord bits,
                     MatchWord mask) const;

  /// Oldest matching entry, if any.  Pure.
  SpecMatch match(MatchWord bits, MatchWord mask) const;

  /// Probe and, on a hit, delete the matched entry.
  SpecMatch match_and_delete(MatchWord bits, MatchWord mask);

  /// Delete every entry matching the selector (always selector-masked,
  /// whatever the flavour — the RESET PROCESS datapath).  Returns the
  /// number removed.
  std::size_t sweep(MatchWord bits, MatchWord mask);

  void reset() { entries_.clear(); }

 private:
  AlpuFlavor flavor_;
  std::size_t capacity_;
  MatchWord significant_mask_;
  std::vector<SpecEntry> entries_;
};

/// Expected observable response at the protocol level (the functional
/// fields of hw::Response — timing excluded by design).
struct SpecResponse {
  hw::ResponseKind kind = hw::ResponseKind::kMatchFailure;
  Cookie cookie = 0;
  std::uint32_t free_slots = 0;
  std::uint64_t probe_seq = 0;

  friend bool operator==(const SpecResponse&, const SpecResponse&) = default;
};

std::string to_string(const SpecResponse& r);

/// The Figure-3 protocol around the list, at run-to-quiescence
/// granularity: each op is applied, then the machine settles (held
/// retries, queued probes) until nothing more can happen — exactly what
/// the checker observes after letting the simulation engine drain.
class ProtocolSpec {
 public:
  ProtocolSpec(AlpuFlavor flavor, std::size_t capacity,
               MatchWord significant_mask);

  /// Apply one op; append every response the device must emit (in
  /// order) to `out`.  The enumerator only issues protocol-legal ops
  /// (kInsert inside insert mode; kBegin/kReset/kSweep outside).
  void apply(const Op& op, std::vector<SpecResponse>& out);

  bool in_insert_mode() const { return insert_mode_; }
  const ListSpec& list() const { return list_; }
  /// True while a failed probe is held (its response still owed).
  bool has_held_probe() const { return held_.has_value(); }
  /// True between kCorrupt and the recovering kReset: the stored planes
  /// are untrustworthy, so every probe answers PARITY FAULT and the
  /// list contents are unobservable until rebuilt.
  bool quarantined() const { return quarantined_; }

 private:
  struct PendingProbe {
    MatchWord bits = 0;
    MatchWord mask = 0;
    std::uint64_t seq = 0;
  };

  /// Fixpoint: resolve the held probe and drain queued probes until no
  /// further progress is possible in the current mode.
  void settle(std::vector<SpecResponse>& out);

  ListSpec list_;
  bool insert_mode_ = false;
  bool retry_pending_ = false;
  bool quarantined_ = false;
  std::optional<PendingProbe> held_;
  std::deque<PendingProbe> queued_;
};

}  // namespace alpu::check
