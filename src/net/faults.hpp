// Deterministic network fault injection.
//
// The base network model is a perfectly lossless, in-order interconnect
// — the one property MPI ordering semantics lean on.  Real link layers
// are not: production NIC-resident queue engines (APEnet+'s torus links,
// the NIC-based collective protocols of Yu et al.) carry link-level
// retransmission precisely because packets drop, duplicate, reorder and
// corrupt.  This module injects those conditions into `Network::send`
// so the NIC reliability sublayer (src/nic/reliability.hpp) can be
// exercised — deterministically:
//
//   * every random decision comes from one seeded Xoshiro256 owned by
//     the injector (itself owned by one single-threaded Engine), and a
//     FIXED number of draws is consumed per packet, so whether one fault
//     fires never shifts the positions of later ones;
//   * scripted faults ("drop the 3rd CTS on link 0->1") are matched by
//     per-entry occurrence counting, independent of the random stream,
//     for surgically targeted protocol tests;
//   * corruption is flagged, not silent: the packet is delivered with
//     `crc_ok = false`, modelling a link CRC that the receiving NIC
//     checks — the reliability layer sees "bad packet", drops it, and
//     recovers it by retransmission.
//
// A Network without an installed injector is byte-for-byte the old
// lossless model: no RNG is constructed, no draw ever happens, and the
// delivery schedule is untouched (the fault-rate-0 figures stay
// identical to the pre-fault-model ones).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/network.hpp"

namespace alpu::net {

/// What a scripted fault does to its selected packet.
enum class FaultKind : std::uint8_t {
  kDrop,       ///< the packet never arrives
  kDuplicate,  ///< a second copy arrives after the original
  kReorder,    ///< delivery delayed so later link traffic overtakes it
  kCorrupt,    ///< delivered with crc_ok = false
};

/// One deterministic scheduled fault: applies `kind` to the `nth`
/// (1-based) packet on link src->dst that matches `packet_kind`
/// (nullopt = any kind counts).
struct ScriptedFault {
  FaultKind kind = FaultKind::kDrop;
  NodeId src = 0;
  NodeId dst = 0;
  std::optional<PacketKind> packet_kind;
  std::uint64_t nth = 1;
};

/// Fault model parameters.  All-zero rates and an empty script mean
/// "no injector": Machine only installs one when any() is true.
struct FaultConfig {
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  double corrupt_rate = 0.0;
  /// Maximum extra delivery delay a reordered packet suffers.  Must
  /// exceed one header serialisation time for reordering to actually be
  /// observable at the receiver; 2 us spans dozens of back-to-back
  /// headers at the Table-III link rate.
  common::TimePs reorder_window_ps = 2'000'000;
  std::uint64_t seed = 0x5eed;
  std::vector<ScriptedFault> script;

  bool any() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0 ||
           corrupt_rate > 0.0 || !script.empty();
  }
};

/// What the injector decided for one packet.  Effects compose: a packet
/// may be corrupted AND duplicated (both copies bad), or dropped while
/// a duplicate survives (loss of the first transmission).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  common::TimePs extra_delay = 0;  ///< nonzero == reordered
};

/// Per-injector counters (surfaced through NetworkStats so sweeps and
/// the chaos soak can report injected-fault totals).
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t scripted_fired = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  /// Decide the fate of one packet about to be scheduled for delivery.
  /// Consumes exactly five RNG draws per call (drop, dup, reorder,
  /// reorder-delay, corrupt) regardless of outcome, then overlays any
  /// scripted fault whose occurrence count comes due.
  FaultDecision decide(const Packet& packet);

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultConfig config_;
  common::Xoshiro256 rng_;
  /// Packets seen so far matching script entry i's (link, kind) filter.
  std::vector<std::uint64_t> script_seen_;
  FaultStats stats_;
};

}  // namespace alpu::net
