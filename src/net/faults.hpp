// Deterministic network fault injection.
//
// The base network model is a perfectly lossless, in-order interconnect
// — the one property MPI ordering semantics lean on.  Real link layers
// are not: production NIC-resident queue engines (APEnet+'s torus links,
// the NIC-based collective protocols of Yu et al.) carry link-level
// retransmission precisely because packets drop, duplicate, reorder and
// corrupt.  This module injects those conditions into `Network::send`
// so the NIC reliability sublayer (src/nic/reliability.hpp) can be
// exercised — deterministically:
//
//   * every random decision comes from a seeded Xoshiro256 owned by the
//     packet's directed link (seeded from {config seed, src, dst}), and
//     a FIXED number of draws is consumed per packet, so whether one
//     fault fires never shifts the positions of later ones — and a
//     link's fault pattern depends only on its own traffic, never on
//     how sends on other links interleave with it.  That per-link
//     confinement is also what lets sharded (parallel-DES) machines run
//     the injector concurrently: all state a decide() touches belongs
//     to the sending node's partition;
//   * scripted faults ("drop the 3rd CTS on link 0->1") are matched by
//     per-entry occurrence counting, independent of the random stream,
//     for surgically targeted protocol tests;
//   * corruption is flagged, not silent: the packet is delivered with
//     `crc_ok = false`, modelling a link CRC that the receiving NIC
//     checks — the reliability layer sees "bad packet", drops it, and
//     recovers it by retransmission.
//
// A Network without an installed injector is byte-for-byte the old
// lossless model: no RNG is constructed, no draw ever happens, and the
// delivery schedule is untouched (the fault-rate-0 figures stay
// identical to the pre-fault-model ones).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/dense.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/network.hpp"

namespace alpu::net {

/// What a scripted fault does to its selected packet.
enum class FaultKind : std::uint8_t {
  kDrop,       ///< the packet never arrives
  kDuplicate,  ///< a second copy arrives after the original
  kReorder,    ///< delivery delayed so later link traffic overtakes it
  kCorrupt,    ///< delivered with crc_ok = false
};

/// One deterministic scheduled fault: applies `kind` to the `nth`
/// (1-based) packet on link src->dst that matches `packet_kind`
/// (nullopt = any kind counts).
struct ScriptedFault {
  FaultKind kind = FaultKind::kDrop;
  NodeId src = 0;
  NodeId dst = 0;
  std::optional<PacketKind> packet_kind;
  std::uint64_t nth = 1;
};

/// Fault model parameters.  All-zero rates and an empty script mean
/// "no injector": Machine only installs one when any() is true.
struct FaultConfig {
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  double corrupt_rate = 0.0;
  /// Maximum extra delivery delay a reordered packet suffers.  Must
  /// exceed one header serialisation time for reordering to actually be
  /// observable at the receiver; 2 us spans dozens of back-to-back
  /// headers at the Table-III link rate.
  common::TimePs reorder_window_ps = 2'000'000;
  std::uint64_t seed = 0x5eed;
  std::vector<ScriptedFault> script;

  bool any() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0 ||
           corrupt_rate > 0.0 || !script.empty();
  }
};

/// What the injector decided for one packet.  Effects compose: a packet
/// may be corrupted AND duplicated (both copies bad), or dropped while
/// a duplicate survives (loss of the first transmission).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  common::TimePs extra_delay = 0;  ///< nonzero == reordered
};

/// Per-injector counters (surfaced through NetworkStats so sweeps and
/// the chaos soak can report injected-fault totals).
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t scripted_fired = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);
  ~FaultInjector();

  /// Decide the fate of one packet about to be scheduled for delivery.
  /// Consumes exactly five RNG draws per call (drop, dup, reorder,
  /// reorder-delay, corrupt) from the packet's own link stream,
  /// regardless of outcome, then overlays any scripted fault whose
  /// occurrence count comes due.  Touches only the sending node's
  /// partition (shard-safe).
  FaultDecision decide(const Packet& packet);

  /// Pre-size the per-sender partition for nodes [0, n): no lazy growth
  /// once shards decide concurrently.  Called by
  /// Network::enable_sharding; optional in single-engine use.
  void reserve_nodes(std::size_t n);

  const FaultConfig& config() const { return config_; }
  /// Aggregated over all links (machine-wide totals).
  FaultStats stats() const;

 private:
  /// One directed link's state: its private RNG stream plus counters.
  /// Default-constructed unseeded; decide() seeds the stream on the
  /// link's first packet (same first-use seeding as before, now a dense
  /// row instead of a tree node).
  struct LinkState {
    common::Xoshiro256 rng{0};
    FaultStats stats;
    bool seeded = false;
  };
  /// One sending node's partition: its outgoing links plus, for each
  /// script entry with this src, the matching-packet count so far.
  struct SrcState {
    common::DenseNodeTable<LinkState> links;
    std::vector<std::uint64_t> script_seen;
  };

  SrcState& src_state(NodeId src);
  LinkState& link_state(SrcState& src_state, NodeId src, NodeId dst);

  FaultConfig config_;
  /// Indexed by sending node; unique_ptr keeps entries address-stable
  /// across (setup-time) growth.
  std::vector<std::unique_ptr<SrcState>> per_src_;
};

}  // namespace alpu::net
