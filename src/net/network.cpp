#include "net/network.hpp"

#include <cassert>

#include "net/faults.hpp"

namespace alpu::net {

Network::Network(sim::Engine& engine, const NetworkConfig& config)
    : sim::Component(engine, "network"), config_(config) {}

Network::~Network() = default;

void Network::attach(NodeId node, DeliveryHandler handler) {
  if (handlers_.size() <= node) handlers_.resize(node + 1);
  assert(!handlers_[node] && "node already attached");
  handlers_[node] = std::move(handler);
}

void Network::install_faults(const FaultConfig& config) {
  assert(!faults_ && "fault injector already installed");
  faults_ = std::make_unique<FaultInjector>(config);
}

void Network::send(Packet packet) {
  assert(packet.dst < handlers_.size() && handlers_[packet.dst] &&
         "destination not attached");
  const TimePs now = engine().now();
  packet.injected_at = now;
  ++stats_.packets;
  stats_.payload_bytes += packet.payload_bytes;

  // Serialise header + payload onto the (src, dst) link; the link frees
  // up when the last byte leaves, and delivery happens one wire latency
  // after that.  Taking max(now, link_free) keeps per-link packets in
  // order — a later send can never be delivered before an earlier one.
  const std::uint64_t bytes = config_.header_bytes + packet.payload_bytes;
  const TimePs serialise = bytes * config_.ps_per_byte;
  TimePs& free_at = link_free_[{packet.src, packet.dst}];
  const TimePs start = std::max(now, free_at);
  free_at = start + serialise;
  stats_.busiest_link_busy = std::max(stats_.busiest_link_busy, free_at);
  const TimePs deliver_at = free_at + config_.wire_latency;

  if (faults_ == nullptr) {
    engine().schedule_at(deliver_at, [this, packet] {
      handlers_[packet.dst](packet);
    });
    return;
  }

  // Fault-injected path.  The packet consumed its link slot above
  // regardless of fate (the wire carried the bytes; only delivery is in
  // question), so the fault-free traffic schedule is unperturbed.
  const FaultDecision d = faults_->decide(packet);
  if (d.corrupt) {
    packet.crc_ok = false;
    ++stats_.faults_corrupted;
  }
  if (d.duplicate) {
    // The copy tail-gates the original by one header serialisation time
    // (a link-layer replay, not a second injection: it does not occupy
    // the sender's injection port again).
    ++stats_.faults_duplicated;
    const TimePs copy_at =
        deliver_at + config_.header_bytes * config_.ps_per_byte;
    engine().schedule_at(copy_at, [this, packet] {
      handlers_[packet.dst](packet);
    });
  }
  if (d.drop) {
    ++stats_.faults_dropped;
    return;  // the original never arrives (a duplicate may still)
  }
  TimePs at = deliver_at;
  if (d.extra_delay > 0) {
    // Reordering: this packet is held in the switch while later traffic
    // on the same link overtakes it.
    ++stats_.faults_reordered;
    at += d.extra_delay;
  }
  engine().schedule_at(at, [this, packet] {
    handlers_[packet.dst](packet);
  });
}

}  // namespace alpu::net
