#include "net/network.hpp"

#include <cassert>

namespace alpu::net {

Network::Network(sim::Engine& engine, const NetworkConfig& config)
    : sim::Component(engine, "network"), config_(config) {}

void Network::attach(NodeId node, DeliveryHandler handler) {
  if (handlers_.size() <= node) handlers_.resize(node + 1);
  assert(!handlers_[node] && "node already attached");
  handlers_[node] = std::move(handler);
}

void Network::send(Packet packet) {
  assert(packet.dst < handlers_.size() && handlers_[packet.dst] &&
         "destination not attached");
  const TimePs now = engine().now();
  packet.injected_at = now;
  ++stats_.packets;
  stats_.payload_bytes += packet.payload_bytes;

  // Serialise header + payload onto the (src, dst) link; the link frees
  // up when the last byte leaves, and delivery happens one wire latency
  // after that.  Taking max(now, link_free) keeps per-link packets in
  // order — a later send can never be delivered before an earlier one.
  const std::uint64_t bytes = config_.header_bytes + packet.payload_bytes;
  const TimePs serialise = bytes * config_.ps_per_byte;
  TimePs& free_at = link_free_[{packet.src, packet.dst}];
  const TimePs start = std::max(now, free_at);
  free_at = start + serialise;
  stats_.busiest_link_busy = std::max(stats_.busiest_link_busy, free_at);
  const TimePs deliver_at = free_at + config_.wire_latency;

  engine().schedule_at(deliver_at, [this, packet] {
    handlers_[packet.dst](packet);
  });
}

}  // namespace alpu::net
