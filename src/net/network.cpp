#include "net/network.hpp"

#include <algorithm>

#include "common/check.hpp"

#include "net/faults.hpp"

namespace alpu::hw::testing {
std::atomic<bool> inject_lookahead_violation{false};
}  // namespace alpu::hw::testing

namespace alpu::net {

Network::Network(sim::Engine& engine, const NetworkConfig& config)
    : sim::Component(engine, "network"), config_(config) {}

Network::~Network() = default;

Network::PerNode& Network::node_state(NodeId node) {
  if (nodes_.size() <= node) {
    ALPU_ASSERT(shards_ == nullptr,
                "all nodes must attach before enable_sharding");
    nodes_.resize(node + 1);
  }
  return nodes_[node];
}

void Network::attach(NodeId node, sim::Engine& node_engine,
                     DeliveryHandler handler) {
  PerNode& state = node_state(node);
  ALPU_ASSERT(!state.handler, "node already attached");
  state.engine = &node_engine;
  state.handler = std::move(handler);
}

void Network::install_faults(const FaultConfig& config) {
  ALPU_ASSERT(!faults_, "fault injector already installed");
  faults_ = std::make_unique<FaultInjector>(config);
}

void Network::enable_sharding(sim::ShardGroup& group,
                              std::vector<unsigned> shard_of) {
  ALPU_ASSERT(shards_ == nullptr, "sharding already enabled");
  ALPU_ASSERT(group.parallel(), "a 1-shard group runs the legacy direct path");
  ALPU_ASSERT(shard_of.size() >= nodes_.size(),
              "every attached node needs a shard assignment");
  shards_ = &group;
  shard_of_ = std::move(shard_of);
  // Pre-size the per-sender partition: no vector growth can happen once
  // worker threads send concurrently.
  if (nodes_.size() < shard_of_.size()) nodes_.resize(shard_of_.size());
  for (PerNode& n : nodes_) n.links.reserve(nodes_.size());
  if (faults_ != nullptr) faults_->reserve_nodes(nodes_.size());
}

void Network::set_wire_latency(NodeId src, NodeId dst, TimePs latency) {
  // lint: ok(unbounded-peer-growth) — setup-time topology API driven by
  // the local configuration, not by packet arrivals.
  wire_latency_override_[{src, dst}] = latency;
  // Write through to a link that already resolved its latency, so late
  // (post-first-send) overrides behave exactly as before the fold.
  if (src < nodes_.size()) {
    if (LinkState* link = nodes_[src].links.find(dst)) {
      link->wire_latency = latency;
    }
  }
}

TimePs Network::wire_latency(NodeId src, NodeId dst) const {
  const auto it = wire_latency_override_.find({src, dst});
  return it == wire_latency_override_.end() ? config_.wire_latency
                                            : it->second;
}

TimePs Network::min_lookahead() const {
  TimePs min_wire = config_.wire_latency;
  for (const auto& [link, latency] : wire_latency_override_) {
    min_wire = std::min(min_wire, latency);
  }
  return min_wire + config_.header_bytes * config_.ps_per_byte;
}

const NetworkStats& Network::stats() const {
  aggregated_stats_ = {};
  for (const PerNode& n : nodes_) {
    aggregated_stats_.packets += n.stats.packets;
    aggregated_stats_.payload_bytes += n.stats.payload_bytes;
    aggregated_stats_.busiest_link_busy = std::max(
        aggregated_stats_.busiest_link_busy, n.stats.busiest_link_busy);
    aggregated_stats_.faults_dropped += n.stats.faults_dropped;
    aggregated_stats_.faults_duplicated += n.stats.faults_duplicated;
    aggregated_stats_.faults_reordered += n.stats.faults_reordered;
    aggregated_stats_.faults_corrupted += n.stats.faults_corrupted;
  }
  return aggregated_stats_;
}

void Network::schedule_delivery(const Packet& packet, TimePs when,
                                TimePs sent_at) {
  // Capture {this, packet} (64 bytes: inline in EventCallback) rather
  // than a PerNode reference — nodes_ may still grow in single-engine
  // unit-test setups.
  if (shards_ == nullptr) {
    nodes_[packet.dst].engine->schedule_at(
        when, [this, packet] { nodes_[packet.dst].handler(packet); });
    return;
  }
  // Parallel mode: EVERY delivery — including one whose destination
  // happens to share the sender's shard — goes through the window
  // barrier.  That keeps the set of events an engine schedules (and so
  // its sequence numbers and same-timestamp tie order) independent of
  // the partition, which is what makes 2-shard and 8-shard runs
  // byte-identical.  Safe because `when` >= sent_at + min_lookahead()
  // >= the current window's end.
  PerNode& src = nodes_[packet.src];
  sim::CrossKey key;
  key.when = when;
  key.sent_at = sent_at;
  key.src_node = packet.src;
  key.src_seq = src.departure_seq++;
  // Seeded causality bug (audit must-fail CI step): deliver one true
  // cross-shard packet at its send time — zero wire latency — violating
  // the conservative lookahead contract the window protocol depends on.
  // The auditor catches it at the merge barrier before the destination
  // engine ever sees it.
  if (shard_of_[packet.src] != shard_of_[packet.dst] &&
      hw::testing::inject_lookahead_violation.load(
          std::memory_order_relaxed) &&
      hw::testing::inject_lookahead_violation.exchange(
          false, std::memory_order_relaxed)) {
    key.when = key.sent_at;
  }
  shards_->post(shard_of_[packet.src], shard_of_[packet.dst], key,
                [this, packet] { nodes_[packet.dst].handler(packet); });
}

void Network::send(Packet packet) {
  ALPU_ASSERT(packet.dst < nodes_.size() && nodes_[packet.dst].handler,
              "destination not attached");
  PerNode& src = node_state(packet.src);
  // Sends happen inside the sending node's events, so in sharded mode
  // this is the sender's shard clock; in the single-engine machine it is
  // the one global clock (src.engine is null for never-attached senders
  // in unit tests — fall back to the component engine, identical there).
  const TimePs now =
      src.engine != nullptr ? src.engine->now() : engine().now();
  packet.injected_at = now;
  ++src.stats.packets;
  src.stats.payload_bytes += packet.payload_bytes;

  // Serialise header + payload onto the (src, dst) link; the link frees
  // up when the last byte leaves, and delivery happens one wire latency
  // after that.  Taking max(now, link_free) keeps per-link packets in
  // order — a later send can never be delivered before an earlier one.
  const std::uint64_t bytes = config_.header_bytes + packet.payload_bytes;
  const TimePs serialise = bytes * config_.ps_per_byte;
  LinkState& link = src.links[packet.dst];
  if (link.wire_latency == kLatencyUnresolved) {
    // First packet on this link: resolve the override once.  Every
    // later send is a single indexed load instead of a tree probe.
    link.wire_latency = wire_latency(packet.src, packet.dst);
  }
  const TimePs start = std::max(now, link.free_at);
  link.free_at = start + serialise;
  src.stats.busiest_link_busy =
      std::max(src.stats.busiest_link_busy, link.free_at);
  const TimePs deliver_at = link.free_at + link.wire_latency;

  if (faults_ == nullptr) {
    schedule_delivery(packet, deliver_at, now);
    return;
  }

  // Fault-injected path.  The packet consumed its link slot above
  // regardless of fate (the wire carried the bytes; only delivery is in
  // question), so the fault-free traffic schedule is unperturbed.
  const FaultDecision d = faults_->decide(packet);
  if (d.corrupt) {
    packet.crc_ok = false;
    ++src.stats.faults_corrupted;
  }
  if (d.duplicate) {
    // The copy tail-gates the original by one header serialisation time
    // (a link-layer replay, not a second injection: it does not occupy
    // the sender's injection port again).
    ++src.stats.faults_duplicated;
    const TimePs copy_at =
        deliver_at + config_.header_bytes * config_.ps_per_byte;
    schedule_delivery(packet, copy_at, now);
  }
  if (d.drop) {
    ++src.stats.faults_dropped;
    return;  // the original never arrives (a duplicate may still)
  }
  TimePs at = deliver_at;
  if (d.extra_delay > 0) {
    // Reordering: this packet is held in the switch while later traffic
    // on the same link overtakes it.
    ++src.stats.faults_reordered;
    at += d.extra_delay;
  }
  schedule_delivery(packet, at, now);
}

}  // namespace alpu::net
