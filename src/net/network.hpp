// Point-to-point network model.
//
// The paper's simulator uses "a simple network" with a 200 ns wire
// latency (Table III).  This model delivers packets between nodes with
// (a) per-link serialisation at a configured bandwidth, and (b) a fixed
// wire latency — and guarantees in-order delivery per (source,
// destination) pair, the property MPI's ordering semantics build on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/dense.hpp"
#include "common/time.hpp"
#include "match/match.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace alpu::hw::testing {
/// Fault-seeding hook for the determinism auditor's must-fail CI step:
/// when set, the next cross-shard delivery is posted one lookahead too
/// early — exactly the causality bug the conservative window protocol
/// exists to prevent.  The auditor must catch it at the merge barrier
/// with a provenance-chain report.  Same pattern as
/// `inject_compaction_off_by_one` (alpu/array.hpp).  Self-clearing.
extern std::atomic<bool> inject_lookahead_violation;
}  // namespace alpu::hw::testing

namespace alpu::net {

using common::TimePs;

/// Node address within the simulated machine.
using NodeId = std::uint32_t;

/// Protocol discriminator for packets (interpreted by the NIC firmware).
enum class PacketKind : std::uint8_t {
  kEager,     ///< header + full payload
  kRtsRendezvous,  ///< rendezvous request-to-send (header only)
  kCtsRendezvous,  ///< clear-to-send reply carrying the sender's token
  kRendezvousData, ///< the bulk payload after a CTS
  kAck,       ///< reliability-sublayer cumulative acknowledgement
  /// Receiver-not-ready NACK: the receiver's eager-resource budget is
  /// exhausted, the packet at `ack_seq` was refused, and the sender
  /// should back off for ~`rnr_hint_us` before retrying (the InfiniBand
  /// RNR-NAK discipline).  Carries a credit advertisement like kAck.
  kRnrNack,
};

/// One packet on the wire.  The header models the fixed-size envelope a
/// real NIC would parse; `payload_bytes` drives serialisation time only
/// (contents are not simulated).
///
/// Field order packs the struct into 56 bytes so the network delivery
/// capture (`this` + one Packet, 64 bytes) stays within EventCallback's
/// inline buffer — no per-event heap allocation on the hot path.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  PacketKind kind = PacketKind::kEager;
  /// Sequenced by the reliability sublayer (false for raw/ACK traffic).
  bool reliable = false;
  /// Modeled link CRC: cleared by an injected corruption fault.  The
  /// receiving NIC checks it before parsing anything else.
  bool crc_ok = true;
  std::uint32_t payload_bytes = 0;
  match::MatchWord match_bits = 0;  ///< packed {context, source, tag}
  /// Per-(src,dst) sequence number (valid when `reliable`).  32 bits
  /// wrap only after 4G packets on one link — beyond any workload here.
  std::uint32_t seq = 0;
  /// Cumulative acknowledgement: next sequence number the receiver
  /// expects from this packet's sender (kAck/kRnrNack packets only).
  std::uint32_t ack_seq = 0;
  /// Credit advertisement (kAck/kRnrNack from a budget-limited
  /// receiver): free eager-pool bytes, saturated to 32 bits.  Zero on
  /// every packet when the receiver's budget is unlimited, so enabling
  /// the fields alone changes no bytes on the wire.
  std::uint32_t credit_bytes = 0;
  /// Free unexpected-queue slots, saturated to 16 bits.
  std::uint16_t credit_slots = 0;
  /// RNR retry hint in microseconds (kRnrNack only): the receiver's
  /// suggested base backoff before the refused window is re-offered.
  std::uint16_t rnr_hint_us = 0;
  std::uint64_t token = 0;   ///< protocol token (pairs RTS/CTS/DATA legs)
  TimePs injected_at = 0;    ///< stamped by the network at send time
};

struct NetworkConfig {
  TimePs wire_latency = 200'000;  ///< 200 ns (Table III)
  /// Serialisation cost per byte; 500 ps/B == 2 GB/s links.
  TimePs ps_per_byte = 500;
  /// Fixed per-packet header serialisation (the envelope itself).
  std::uint32_t header_bytes = 32;
};

struct NetworkStats {
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  TimePs busiest_link_busy = 0;
  // Injected-fault counters (all zero without an installed injector).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
  std::uint64_t faults_corrupted = 0;
};

struct FaultConfig;
class FaultInjector;

/// The machine-wide interconnect.
///
/// Sharded (parallel-DES) operation: Network is also the shard boundary.
/// After `enable_sharding`, all per-send mutable state (link horizons,
/// stats, the fault injector's per-link RNG streams) is partitioned by
/// the SENDING node, so concurrent sends from different shards never
/// touch the same state, and every delivery is posted to the ShardGroup
/// outbox (scheduled at the next window barrier in canonical order)
/// instead of directly onto an engine.  The wire latency plus the
/// header serialisation floor is the conservative lookahead that makes
/// the window protocol safe — see `min_lookahead()`.
class Network : public sim::Component {
 public:
  // lint: ok(std-function-hot-path) — set once per node at attach();
  // only invocation (no construction) happens per packet.
  using DeliveryHandler = std::function<void(const Packet&)>;

  Network(sim::Engine& engine, const NetworkConfig& config);
  ~Network() override;  // out-of-line: FaultInjector is incomplete here

  /// Register the receive handler for `node` (its NIC's Rx path),
  /// running on `node_engine` (the node's shard; the Network's own
  /// engine in the single-shard machine).
  void attach(NodeId node, sim::Engine& node_engine, DeliveryHandler handler);

  /// Single-engine convenience: attach with the Network's own engine.
  void attach(NodeId node, DeliveryHandler handler) {
    attach(node, engine(), std::move(handler));
  }

  /// Install a fault injector (src/net/faults.hpp) interposed on every
  /// send.  Without one the network is the original lossless in-order
  /// model with an unchanged delivery schedule.
  void install_faults(const FaultConfig& config);

  /// Route every delivery through `group`'s window barriers (parallel
  /// mode).  `shard_of[n]` maps node n to its shard index.  Call after
  /// all nodes have attached and before the first send.
  void enable_sharding(sim::ShardGroup& group, std::vector<unsigned> shard_of);

  /// Inject a packet at the current simulation time.  Delivery fires the
  /// destination handler after serialisation + wire latency, in order
  /// with all other packets on the same (src, dst) link — unless an
  /// installed fault injector drops, duplicates, delays or corrupts it.
  void send(Packet packet);

  /// Override the wire latency of one directed link (heterogeneous
  /// topologies).  Must be set before the first send; in sharded mode it
  /// feeds min_lookahead(), so a slower link never tightens the windows
  /// and a faster one is accounted for.
  void set_wire_latency(NodeId src, NodeId dst, TimePs latency);

  /// Effective wire latency of one directed link.
  TimePs wire_latency(NodeId src, NodeId dst) const;

  /// Conservative lookahead bound: no send issued at time t is ever
  /// delivered (anywhere) before t + min_lookahead().  Derivation: every
  /// packet serialises at least `header_bytes` before the wire, so
  /// delivery >= t + header_bytes * ps_per_byte + min over links of the
  /// wire latency.  Strictly positive for any physical configuration.
  TimePs min_lookahead() const;

  const NetworkConfig& config() const { return config_; }
  /// Machine-wide counters (aggregated over the per-sender partitions).
  const NetworkStats& stats() const;
  const FaultInjector* faults() const { return faults_.get(); }

 private:
  /// Latency sentinel: the link has not resolved its override yet.
  static constexpr TimePs kLatencyUnresolved = ~TimePs{0};

  /// Hot per-directed-link state, one cache line row per destination in
  /// the sender's dense table.  `wire_latency` folds the per-link
  /// override lookup (formerly a std::map probe on EVERY send) into
  /// state resolved once, on the link's first packet.
  struct LinkState {
    /// Serialisation horizon: when this injection port frees up.
    TimePs free_at = 0;
    TimePs wire_latency = kLatencyUnresolved;
  };

  /// All mutable per-send state, partitioned by sending node: inside a
  /// window only the sender's shard thread touches its entry.
  struct PerNode {
    sim::Engine* engine = nullptr;  ///< set by attach()
    DeliveryHandler handler;
    /// Per-destination link state, indexed by NodeId (dense: the machine
    /// fixes the node count).  Grows only on a link's first use, and
    /// only in the owning sender's thread.
    common::DenseNodeTable<LinkState> links;
    /// Monotone per-sender counter stamped on posted deliveries — the
    /// partition-stable tie-break of the canonical merge key.
    std::uint64_t departure_seq = 0;
    NetworkStats stats;
  };

  PerNode& node_state(NodeId node);
  /// Schedule one delivery at `when` (sent at `sent_at` by `src`):
  /// directly on the destination's engine in single-engine mode, via the
  /// ShardGroup outbox in sharded mode.
  void schedule_delivery(const Packet& packet, TimePs when, TimePs sent_at);

  NetworkConfig config_;
  std::vector<PerNode> nodes_;
  /// Per-directed-link wire-latency overrides (config_.wire_latency
  /// otherwise).  Written only during setup; the configuration source
  /// of truth for min_lookahead().  The hot path never probes it —
  /// send() reads the copy resolved into LinkState on first use.
  std::map<std::pair<NodeId, NodeId>, TimePs> wire_latency_override_;
  std::unique_ptr<FaultInjector> faults_;
  sim::ShardGroup* shards_ = nullptr;
  std::vector<unsigned> shard_of_;
  mutable NetworkStats aggregated_stats_;
};

}  // namespace alpu::net
