// Point-to-point network model.
//
// The paper's simulator uses "a simple network" with a 200 ns wire
// latency (Table III).  This model delivers packets between nodes with
// (a) per-link serialisation at a configured bandwidth, and (b) a fixed
// wire latency — and guarantees in-order delivery per (source,
// destination) pair, the property MPI's ordering semantics build on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "match/match.hpp"
#include "sim/engine.hpp"

namespace alpu::net {

using common::TimePs;

/// Node address within the simulated machine.
using NodeId = std::uint32_t;

/// Protocol discriminator for packets (interpreted by the NIC firmware).
enum class PacketKind : std::uint8_t {
  kEager,     ///< header + full payload
  kRtsRendezvous,  ///< rendezvous request-to-send (header only)
  kCtsRendezvous,  ///< clear-to-send reply carrying the sender's token
  kRendezvousData, ///< the bulk payload after a CTS
};

/// One packet on the wire.  The header models the fixed-size envelope a
/// real NIC would parse; `payload_bytes` drives serialisation time only
/// (contents are not simulated).
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  PacketKind kind = PacketKind::kEager;
  match::MatchWord match_bits = 0;  ///< packed {context, source, tag}
  std::uint32_t payload_bytes = 0;
  std::uint64_t token = 0;   ///< protocol token (pairs RTS/CTS/DATA legs)
  TimePs injected_at = 0;    ///< stamped by the network at send time
};

struct NetworkConfig {
  TimePs wire_latency = 200'000;  ///< 200 ns (Table III)
  /// Serialisation cost per byte; 500 ps/B == 2 GB/s links.
  TimePs ps_per_byte = 500;
  /// Fixed per-packet header serialisation (the envelope itself).
  std::uint32_t header_bytes = 32;
};

struct NetworkStats {
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  TimePs busiest_link_busy = 0;
};

/// The machine-wide interconnect.
class Network : public sim::Component {
 public:
  using DeliveryHandler = std::function<void(const Packet&)>;

  Network(sim::Engine& engine, const NetworkConfig& config);

  /// Register the receive handler for `node` (its NIC's Rx path).
  void attach(NodeId node, DeliveryHandler handler);

  /// Inject a packet at the current simulation time.  Delivery fires the
  /// destination handler after serialisation + wire latency, in order
  /// with all other packets on the same (src, dst) link.
  void send(Packet packet);

  const NetworkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  NetworkConfig config_;
  std::vector<DeliveryHandler> handlers_;
  /// Serialisation horizon per directed link: the time the link's
  /// injection port frees up.
  std::map<std::pair<NodeId, NodeId>, TimePs> link_free_;
  NetworkStats stats_;
};

}  // namespace alpu::net
