// Point-to-point network model.
//
// The paper's simulator uses "a simple network" with a 200 ns wire
// latency (Table III).  This model delivers packets between nodes with
// (a) per-link serialisation at a configured bandwidth, and (b) a fixed
// wire latency — and guarantees in-order delivery per (source,
// destination) pair, the property MPI's ordering semantics build on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "match/match.hpp"
#include "sim/engine.hpp"

namespace alpu::net {

using common::TimePs;

/// Node address within the simulated machine.
using NodeId = std::uint32_t;

/// Protocol discriminator for packets (interpreted by the NIC firmware).
enum class PacketKind : std::uint8_t {
  kEager,     ///< header + full payload
  kRtsRendezvous,  ///< rendezvous request-to-send (header only)
  kCtsRendezvous,  ///< clear-to-send reply carrying the sender's token
  kRendezvousData, ///< the bulk payload after a CTS
  kAck,       ///< reliability-sublayer cumulative acknowledgement
};

/// One packet on the wire.  The header models the fixed-size envelope a
/// real NIC would parse; `payload_bytes` drives serialisation time only
/// (contents are not simulated).
///
/// Field order packs the struct into 48 bytes so the network delivery
/// capture (`this` + one Packet) stays within EventCallback's 56-byte
/// inline buffer — no per-event heap allocation on the hot path.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  PacketKind kind = PacketKind::kEager;
  /// Sequenced by the reliability sublayer (false for raw/ACK traffic).
  bool reliable = false;
  /// Modeled link CRC: cleared by an injected corruption fault.  The
  /// receiving NIC checks it before parsing anything else.
  bool crc_ok = true;
  std::uint32_t payload_bytes = 0;
  match::MatchWord match_bits = 0;  ///< packed {context, source, tag}
  /// Per-(src,dst) sequence number (valid when `reliable`).  32 bits
  /// wrap only after 4G packets on one link — beyond any workload here.
  std::uint32_t seq = 0;
  /// Cumulative acknowledgement: next sequence number the receiver
  /// expects from this packet's sender (kAck packets only).
  std::uint32_t ack_seq = 0;
  std::uint64_t token = 0;   ///< protocol token (pairs RTS/CTS/DATA legs)
  TimePs injected_at = 0;    ///< stamped by the network at send time
};

struct NetworkConfig {
  TimePs wire_latency = 200'000;  ///< 200 ns (Table III)
  /// Serialisation cost per byte; 500 ps/B == 2 GB/s links.
  TimePs ps_per_byte = 500;
  /// Fixed per-packet header serialisation (the envelope itself).
  std::uint32_t header_bytes = 32;
};

struct NetworkStats {
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  TimePs busiest_link_busy = 0;
  // Injected-fault counters (all zero without an installed injector).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
  std::uint64_t faults_corrupted = 0;
};

struct FaultConfig;
class FaultInjector;

/// The machine-wide interconnect.
class Network : public sim::Component {
 public:
  using DeliveryHandler = std::function<void(const Packet&)>;

  Network(sim::Engine& engine, const NetworkConfig& config);
  ~Network() override;  // out-of-line: FaultInjector is incomplete here

  /// Register the receive handler for `node` (its NIC's Rx path).
  void attach(NodeId node, DeliveryHandler handler);

  /// Install a fault injector (src/net/faults.hpp) interposed on every
  /// send.  Without one the network is the original lossless in-order
  /// model with an unchanged delivery schedule.
  void install_faults(const FaultConfig& config);

  /// Inject a packet at the current simulation time.  Delivery fires the
  /// destination handler after serialisation + wire latency, in order
  /// with all other packets on the same (src, dst) link — unless an
  /// installed fault injector drops, duplicates, delays or corrupts it.
  void send(Packet packet);

  const NetworkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }
  const FaultInjector* faults() const { return faults_.get(); }

 private:
  NetworkConfig config_;
  std::vector<DeliveryHandler> handlers_;
  /// Serialisation horizon per directed link: the time the link's
  /// injection port frees up.
  std::map<std::pair<NodeId, NodeId>, TimePs> link_free_;
  std::unique_ptr<FaultInjector> faults_;
  NetworkStats stats_;
};

}  // namespace alpu::net
