#include "net/faults.hpp"

#include <memory>

namespace alpu::net {

namespace {

/// Distinct seed per directed link.  The odd multipliers spread nearby
/// (src, dst) pairs across the 64-bit space; Xoshiro's splitmix-based
/// construction decorrelates even adjacent seeds, so per-link streams
/// are independent for any practical purpose.
std::uint64_t link_seed(std::uint64_t seed, NodeId src, NodeId dst) {
  return seed ^
         (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(src) + 1)) ^
         (0xC2B2AE3D27D4EB4FULL * (static_cast<std::uint64_t>(dst) + 1));
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {}

FaultInjector::~FaultInjector() = default;

void FaultInjector::reserve_nodes(std::size_t n) {
  while (per_src_.size() < n) {
    auto state = std::make_unique<SrcState>();
    state->script_seen.resize(config_.script.size(), 0);
    per_src_.push_back(std::move(state));
  }
  // Pre-size every sender's link table too: in sharded mode no dense
  // row is ever added while workers decide concurrently.
  for (auto& src : per_src_) src->links.reserve(n);
}

FaultInjector::SrcState& FaultInjector::src_state(NodeId src) {
  if (per_src_.size() <= src) reserve_nodes(src + 1);
  return *per_src_[src];
}

FaultInjector::LinkState& FaultInjector::link_state(SrcState& src_state,
                                                    NodeId src, NodeId dst) {
  LinkState& link = src_state.links[dst];
  if (!link.seeded) {
    // First packet on this link: seed its private stream, exactly as
    // the old map's emplace-on-first-use did.
    link.rng = common::Xoshiro256(link_seed(config_.seed, src, dst));
    link.seeded = true;
  }
  return link;
}

FaultStats FaultInjector::stats() const {
  FaultStats total;
  for (const auto& src : per_src_) {
    if (src == nullptr) continue;
    for (const LinkState& link : src->links) {
      total.drops += link.stats.drops;
      total.duplicates += link.stats.duplicates;
      total.reorders += link.stats.reorders;
      total.corruptions += link.stats.corruptions;
      total.scripted_fired += link.stats.scripted_fired;
    }
  }
  return total;
}

FaultDecision FaultInjector::decide(const Packet& packet) {
  FaultDecision d;
  SrcState& src = src_state(packet.src);
  LinkState& link = link_state(src, packet.src, packet.dst);

  // Fixed draw schedule: five draws per packet, always, so one fault
  // firing (or a scripted entry matching) never displaces the random
  // positions of any later fault on the same link.
  const bool r_drop = link.rng.chance(config_.drop_rate);
  const bool r_dup = link.rng.chance(config_.dup_rate);
  const bool r_reorder = link.rng.chance(config_.reorder_rate);
  const common::TimePs r_delay =
      1 + static_cast<common::TimePs>(
              link.rng.below(static_cast<std::uint64_t>(
                  config_.reorder_window_ps > 0 ? config_.reorder_window_ps
                                                : 1)));
  const bool r_corrupt = link.rng.chance(config_.corrupt_rate);

  d.drop = r_drop;
  d.duplicate = r_dup;
  d.corrupt = r_corrupt;
  if (r_reorder) d.extra_delay = r_delay;

  // Scripted overlay: every matching entry counts this packet; an entry
  // whose occurrence comes due forces its effect on top of the random
  // ones.  An entry's src filter pins it to one sender's partition, so
  // the counters stay shard-confined too.
  for (std::size_t i = 0; i < config_.script.size(); ++i) {
    const ScriptedFault& s = config_.script[i];
    if (s.src != packet.src || s.dst != packet.dst) continue;
    if (s.packet_kind.has_value() && *s.packet_kind != packet.kind) continue;
    if (++src.script_seen[i] != s.nth) continue;
    ++link.stats.scripted_fired;
    switch (s.kind) {
      case FaultKind::kDrop:
        d.drop = true;
        break;
      case FaultKind::kDuplicate:
        d.duplicate = true;
        break;
      case FaultKind::kReorder:
        if (d.extra_delay == 0) d.extra_delay = config_.reorder_window_ps;
        break;
      case FaultKind::kCorrupt:
        d.corrupt = true;
        break;
    }
  }

  if (d.drop) ++link.stats.drops;
  if (d.duplicate) ++link.stats.duplicates;
  if (d.extra_delay > 0) ++link.stats.reorders;
  if (d.corrupt) ++link.stats.corruptions;
  return d;
}

}  // namespace alpu::net
