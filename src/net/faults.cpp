#include "net/faults.hpp"

namespace alpu::net {

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config),
      rng_(config.seed),
      script_seen_(config.script.size(), 0) {}

FaultDecision FaultInjector::decide(const Packet& packet) {
  FaultDecision d;

  // Fixed draw schedule: five draws per packet, always, so one fault
  // firing (or a scripted entry matching) never displaces the random
  // positions of any later fault.
  const bool r_drop = rng_.chance(config_.drop_rate);
  const bool r_dup = rng_.chance(config_.dup_rate);
  const bool r_reorder = rng_.chance(config_.reorder_rate);
  const common::TimePs r_delay =
      1 + static_cast<common::TimePs>(
              rng_.below(static_cast<std::uint64_t>(
                  config_.reorder_window_ps > 0 ? config_.reorder_window_ps
                                                : 1)));
  const bool r_corrupt = rng_.chance(config_.corrupt_rate);

  d.drop = r_drop;
  d.duplicate = r_dup;
  d.corrupt = r_corrupt;
  if (r_reorder) d.extra_delay = r_delay;

  // Scripted overlay: every matching entry counts this packet; an entry
  // whose occurrence comes due forces its effect on top of the random
  // ones.
  for (std::size_t i = 0; i < config_.script.size(); ++i) {
    const ScriptedFault& s = config_.script[i];
    if (s.src != packet.src || s.dst != packet.dst) continue;
    if (s.packet_kind.has_value() && *s.packet_kind != packet.kind) continue;
    if (++script_seen_[i] != s.nth) continue;
    ++stats_.scripted_fired;
    switch (s.kind) {
      case FaultKind::kDrop:
        d.drop = true;
        break;
      case FaultKind::kDuplicate:
        d.duplicate = true;
        break;
      case FaultKind::kReorder:
        if (d.extra_delay == 0) d.extra_delay = config_.reorder_window_ps;
        break;
      case FaultKind::kCorrupt:
        d.corrupt = true;
        break;
    }
  }

  if (d.drop) ++stats_.drops;
  if (d.duplicate) ++stats_.duplicates;
  if (d.extra_delay > 0) ++stats_.reorders;
  if (d.corrupt) ++stats_.corruptions;
  return d;
}

}  // namespace alpu::net
