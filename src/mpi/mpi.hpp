// MPI-1.2 subset over the simulated system (Section V-C, Figure 4).
//
// The paper's prototype MPI implements basic point-to-point plus
// MPI_Barrier over the NIC, in ~1600 lines of C++.  This module is that
// library for the simulator: rank programs are C++20 coroutines holding
// a `Rank&`, and each call maps onto host requests against the modelled
// NIC.  Semantics covered:
//
//   * matching on {context, source, tag} with MPI_ANY_SOURCE /
//     MPI_ANY_TAG wildcards (context never wildcards);
//   * ordering: same (source, context) messages match posted receives
//     in send order (inherited from in-order links + in-order queues);
//   * eager and rendezvous protocols chosen by message size;
//   * MPI_COMM_WORLD only; `Machine` plays MPI_Init/Finalize.
//
// Functions marked (†) in Figure 4 are built from the others, exactly
// as in the paper: Send = Isend+Wait, Recv = Irecv+Wait, Waitall = loop
// of Wait, Barrier = linear point-to-point fan-in/fan-out.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "host/host.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "nic/nic.hpp"
#include "sim/process.hpp"
#include "sim/watchdog.hpp"

namespace alpu::mpi {

/// MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Context id of MPI_COMM_WORLD point-to-point traffic.
inline constexpr std::uint32_t kWorldContext = 0;
/// Context id reserved for collective (barrier) traffic, so collectives
/// can never be intercepted by application wildcard receives.
inline constexpr std::uint32_t kCollectiveContext = 1;

/// A nonblocking-operation handle (MPI_Request).
class Request {
 public:
  Request() = default;
  explicit Request(host::PendingHandle handle) : handle_(std::move(handle)) {}

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_->done; }

  /// Bytes transferred (receives) — valid once done.
  std::uint32_t bytes() const { return handle_->completion.bytes; }
  /// The matched envelope (receives) — valid once done.
  match::Envelope matched() const {
    return match::unpack(handle_->completion.matched_bits);
  }

  host::PendingHandle handle() const { return handle_; }

 private:
  host::PendingHandle handle_;
};

struct SystemConfig {
  int nprocs = 2;
  nic::NicConfig nic;
  net::NetworkConfig network;
  host::HostConfig host;
  /// Network fault injection (drops/dups/reorders/corruption).  With any
  /// fault active, `nic.reliability.enabled` must be set — MPI semantics
  /// depend on the reliability sublayer restoring lossless in-order
  /// delivery.  All-zero (the default) installs no injector at all, so
  /// the packet schedule is untouched.
  net::FaultConfig faults;
};

class Machine;

/// Per-rank MPI interface (what a rank program calls).
class Rank {
 public:
  Rank(Machine& machine, int rank, host::Host& host);

  int rank() const { return rank_; }       ///< MPI_Comm_rank
  int size() const;                        ///< MPI_Comm_size

  /// MPI_Isend: start sending `bytes` to `dest` with `tag`.
  Request isend(int dest, int tag, std::uint32_t bytes,
                std::uint32_t context = kWorldContext);

  /// MPI_Irecv: post a receive.  `source`/`tag` accept the wildcards.
  Request irecv(int source, int tag, std::uint32_t max_bytes,
                std::uint32_t context = kWorldContext);

  /// MPI_Wait.  Optionally copies the finished request out (status).
  sim::Process wait(Request request);

  /// MPI_Waitall.
  sim::Process waitall(std::vector<Request> requests);

  /// MPI_Send (†).
  sim::Process send(int dest, int tag, std::uint32_t bytes,
                    std::uint32_t context = kWorldContext);

  /// MPI_Recv (†).  The completed request is written to `*out` if given
  /// (for status: bytes / matched envelope).
  sim::Process recv(int source, int tag, std::uint32_t max_bytes,
                    std::uint32_t context = kWorldContext,
                    Request* out = nullptr);

  /// MPI_Barrier (†): linear fan-in to rank 0, then fan-out.
  sim::Process barrier();

  host::Host& host() { return host_; }
  Machine& machine() { return machine_; }
  /// The simulation engine (for timestamps in rank programs).
  sim::Engine& engine();

 private:
  Machine& machine_;
  int rank_;
  host::Host& host_;
};

/// Identity of a communicator: its two private context ids (one for
/// point-to-point, one for collectives) and the ordered member list
/// (world ranks).  Shared by every member's Comm handle.
struct CommGroup {
  std::uint32_t p2p_context = kWorldContext;
  std::uint32_t collective_context = kCollectiveContext;
  std::vector<int> members;  ///< world rank of each communicator rank
};

/// A communicator handle for one member (an extension beyond the
/// paper's MPI_COMM_WORLD-only prototype, exercising the context field
/// the 42-bit match packing reserves 13 bits for).
///
/// Ranks and sources are COMMUNICATOR ranks; the handle translates to
/// and from world ranks at the matching boundary.
class Comm {
 public:
  Comm(Machine& machine, std::shared_ptr<const CommGroup> group,
       int my_world_rank);

  int rank() const { return my_comm_rank_; }
  int size() const { return static_cast<int>(group_->members.size()); }

  Request isend(int dest, int tag, std::uint32_t bytes);
  Request irecv(int source, int tag, std::uint32_t max_bytes);
  sim::Process send(int dest, int tag, std::uint32_t bytes);
  sim::Process recv(int source, int tag, std::uint32_t max_bytes,
                    Request* out = nullptr);
  sim::Process wait(Request request);
  sim::Process barrier();

  /// Translate a matched envelope's world source to a comm rank.
  int comm_source(const Request& request) const;

 private:
  Rank& world_rank_obj(int comm_rank) const;

  Machine& machine_;
  std::shared_ptr<const CommGroup> group_;
  int my_comm_rank_ = -1;
};

/// The simulated parallel machine: network + per-node NIC/host/rank.
/// Constructing it is MPI_Init; destruction is MPI_Finalize.
class Machine {
 public:
  Machine(sim::Engine& engine, const SystemConfig& config);

  /// Parallel-DES machine: node r's components live on shard
  /// `shard_of(r, nprocs, shards.size())` and the Network becomes the
  /// shard boundary.  With a 1-shard group this is exactly the
  /// single-engine machine (no barrier, no outbox, identical event
  /// order).  Run it with `shards.run_all(network().min_lookahead())`.
  Machine(sim::ShardGroup& shards, const SystemConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int size() const { return config_.nprocs; }
  Rank& rank(int r) { return *nodes_[static_cast<std::size_t>(r)].rank; }
  nic::Nic& nic(int r) { return *nodes_[static_cast<std::size_t>(r)].nic; }
  host::Host& host(int r) { return *nodes_[static_cast<std::size_t>(r)].host; }
  net::Network& network() { return *network_; }
  /// The legacy/shard-0 engine (single-engine machines have only this).
  sim::Engine& engine() { return engine_; }
  /// The engine rank r's components are scheduled on (its shard).
  sim::Engine& engine(int r) {
    return nodes_[static_cast<std::size_t>(r)].nic->engine();
  }
  const SystemConfig& config() const { return config_; }

  /// The machine's stall watchdog: one undrained-work check per NIC,
  /// polled automatically at quiescence by the engine (single-shard) or
  /// the ShardGroup coordinator (parallel).  A run that drains cleanly
  /// reports stalls_detected() == 0.
  const sim::StallWatchdog& watchdog() const { return watchdog_; }
  sim::StallWatchdog& watchdog() { return watchdog_; }

  /// Contiguous block partition of ranks onto shards (deterministic;
  /// the same map at any shard count covering the same ranks).
  static unsigned shard_of(int rank, int nprocs, unsigned shards) {
    return static_cast<unsigned>(
        (static_cast<std::uint64_t>(rank) * shards) /
        static_cast<std::uint64_t>(nprocs));
  }

  /// Create a communicator over `members` (world ranks, which become
  /// comm ranks 0..n-1 in order).  Allocates two fresh context ids.
  /// Deterministic and local (the simulator stands in for the collective
  /// agreement a real MPI_Comm_create performs).
  std::shared_ptr<const CommGroup> create_comm(std::vector<int> members);

  /// This member's handle for a created communicator.
  Comm comm(std::shared_ptr<const CommGroup> group, int my_world_rank) {
    return Comm(*this, std::move(group), my_world_rank);
  }

 private:
  struct Node {
    std::unique_ptr<nic::Nic> nic;
    std::unique_ptr<host::Host> host;
    std::unique_ptr<Rank> rank;
  };

  void build(sim::ShardGroup* shards);

  sim::Engine& engine_;
  SystemConfig config_;
  std::unique_ptr<net::Network> network_;
  std::vector<Node> nodes_;
  sim::StallWatchdog watchdog_;
  sim::ShardGroup* shards_ = nullptr;  ///< non-null for sharded machines
  std::uint32_t next_context_ = 2;  ///< 0/1 are world p2p/collective
};

}  // namespace alpu::mpi
