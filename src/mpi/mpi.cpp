#include "mpi/mpi.hpp"

#include "common/check.hpp"

namespace alpu::mpi {

namespace {

std::optional<std::uint32_t> to_field(int value, std::uint32_t max,
                                      int wildcard) {
  if (value == wildcard) return std::nullopt;
  ALPU_ASSERT(value >= 0 && static_cast<std::uint32_t>(value) <= max,
              "match field out of range for the 42-bit packing");
  return static_cast<std::uint32_t>(value);
}

/// Tag used internally by barrier traffic.
constexpr int kBarrierTag = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(sim::Engine& engine, const SystemConfig& config)
    : engine_(engine), config_(config) {
  build(nullptr);
}

Machine::Machine(sim::ShardGroup& shards, const SystemConfig& config)
    : engine_(shards.shard(0)), config_(config) {
  build(&shards);
}

void Machine::build(sim::ShardGroup* shards) {
  ALPU_ASSERT(config_.nprocs >= 1, "a machine needs at least one rank");
  // The Network (a passive router: all its work happens inside the
  // sending node's events) registers as a component of the shard-0 /
  // legacy engine.
  network_ = std::make_unique<net::Network>(engine_, config_.network);
  if (config_.faults.any()) {
    ALPU_ASSERT(config_.nic.reliability.enabled,
                "fault injection without the reliability sublayer loses packets");
    network_->install_faults(config_.faults);
  }
  if (config_.nic.eager_pool_bytes > 0 || config_.nic.unexpected_slots > 0) {
    ALPU_ASSERT(config_.nic.reliability.enabled,
                "a finite eager budget needs the reliability sublayer: "
                "RNR NACKs, backoff and credits live there");
  }
  const unsigned nshards = shards != nullptr ? shards->size() : 1;
  std::vector<unsigned> shard_map(static_cast<std::size_t>(config_.nprocs));
  nodes_.resize(static_cast<std::size_t>(config_.nprocs));
  for (int r = 0; r < config_.nprocs; ++r) {
    const unsigned s = shard_of(r, config_.nprocs, nshards);
    shard_map[static_cast<std::size_t>(r)] = s;
    sim::Engine& node_engine =
        shards != nullptr ? shards->shard(s) : engine_;
    Node& node = nodes_[static_cast<std::size_t>(r)];
    node.nic = std::make_unique<nic::Nic>(
        node_engine, "nic" + std::to_string(r),
        static_cast<net::NodeId>(r), config_.nic, *network_);
    // The node count is fixed here: pre-size every per-peer control
    // table so none grows on the message hot path.
    node.nic->reserve_nodes(static_cast<std::size_t>(config_.nprocs));
    node.host = std::make_unique<host::Host>(
        node_engine, "host" + std::to_string(r), *node.nic, config_.host);
    node.rank = std::make_unique<Rank>(*this, r, *node.host);
  }
  // A 1-shard group keeps the legacy direct-schedule path: byte-exact
  // single-threaded behaviour, no outbox, no barrier.
  if (shards != nullptr && shards->parallel()) {
    network_->enable_sharding(*shards, std::move(shard_map));
  }
  // Stall watchdog: one undrained-work check per NIC, polled once at
  // quiescence.  Sharded machines register on the group coordinator
  // (which covers the 1-shard delegation too); plain machines hook the
  // engine directly.  Pure observation — no events, no state changes —
  // so determinism is untouched.
  for (int r = 0; r < config_.nprocs; ++r) {
    nic::Nic* n = nodes_[static_cast<std::size_t>(r)].nic.get();
    watchdog_.add_check(sim::StallWatchdog::Check{
        n->name(), [n] { return n->undrained_work(); },
        [n] { return n->stall_snapshot(); }});
  }
  shards_ = shards;
  if (shards_ != nullptr) {
    shards_->set_watchdog(&watchdog_);
  } else {
    engine_.set_watchdog(&watchdog_);
  }
}

Machine::~Machine() {
  // The engine/group outlive the machine in some test setups: detach the
  // watchdog (it borrows this Machine's NICs) before they run again.
  if (shards_ != nullptr) shards_->set_watchdog(nullptr);
  engine_.set_watchdog(nullptr);
}

std::shared_ptr<const CommGroup> Machine::create_comm(
    std::vector<int> members) {
  ALPU_ASSERT(!members.empty(), "a communicator needs at least one member");
  for (int m : members) {
    ALPU_ASSERT(m >= 0 && m < size(), "member is not a valid world rank");
  }
  auto group = std::make_shared<CommGroup>();
  group->p2p_context = next_context_++;
  group->collective_context = next_context_++;
  ALPU_ASSERT(group->collective_context <= match::kMaxContext,
              "context id space exhausted (13 bits)");
  group->members = std::move(members);
  return group;
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

Comm::Comm(Machine& machine, std::shared_ptr<const CommGroup> group,
           int my_world_rank)
    : machine_(machine), group_(std::move(group)) {
  for (std::size_t i = 0; i < group_->members.size(); ++i) {
    if (group_->members[i] == my_world_rank) {
      my_comm_rank_ = static_cast<int>(i);
      break;
    }
  }
  ALPU_ASSERT(my_comm_rank_ >= 0, "this rank is not a member of the group");
}

Rank& Comm::world_rank_obj(int comm_rank) const {
  ALPU_ASSERT(comm_rank >= 0 && comm_rank < size(), "comm rank out of range");
  return machine_.rank(group_->members[static_cast<std::size_t>(comm_rank)]);
}

Request Comm::isend(int dest, int tag, std::uint32_t bytes) {
  Rank& self = machine_.rank(group_->members[
      static_cast<std::size_t>(my_comm_rank_)]);
  // The wire envelope's source field carries the WORLD rank (the NIC
  // stamps it); the private context keeps the traffic inside the comm.
  return self.isend(group_->members[static_cast<std::size_t>(dest)], tag,
                    bytes, group_->p2p_context);
}

Request Comm::irecv(int source, int tag, std::uint32_t max_bytes) {
  Rank& self = machine_.rank(group_->members[
      static_cast<std::size_t>(my_comm_rank_)]);
  const int world_source =
      source == kAnySource
          ? kAnySource
          : group_->members[static_cast<std::size_t>(source)];
  return self.irecv(world_source, tag, max_bytes, group_->p2p_context);
}

sim::Process Comm::send(int dest, int tag, std::uint32_t bytes) {
  co_await wait(isend(dest, tag, bytes));
}

sim::Process Comm::recv(int source, int tag, std::uint32_t max_bytes,
                        Request* out) {
  Request r = irecv(source, tag, max_bytes);
  co_await wait(r);
  if (out != nullptr) *out = r;
}

sim::Process Comm::wait(Request request) {
  co_await world_rank_obj(my_comm_rank_).wait(std::move(request));
}

sim::Process Comm::barrier() {
  const int n = size();
  if (n == 1) co_return;
  Rank& self = machine_.rank(group_->members[
      static_cast<std::size_t>(my_comm_rank_)]);
  const std::uint32_t ctx = group_->collective_context;
  if (my_comm_rank_ == 0) {
    for (int r = 1; r < n; ++r) {
      co_await self.recv(group_->members[static_cast<std::size_t>(r)],
                         kBarrierTag, 0, ctx);
    }
    for (int r = 1; r < n; ++r) {
      co_await self.send(group_->members[static_cast<std::size_t>(r)],
                         kBarrierTag, 0, ctx);
    }
  } else {
    const int root = group_->members[0];
    co_await self.send(root, kBarrierTag, 0, ctx);
    co_await self.recv(root, kBarrierTag, 0, ctx);
  }
}

int Comm::comm_source(const Request& request) const {
  const int world = static_cast<int>(request.matched().source);
  for (std::size_t i = 0; i < group_->members.size(); ++i) {
    if (group_->members[i] == world) return static_cast<int>(i);
  }
  ALPU_CHECK_FAIL("matched source is not a member of this communicator");
  return -1;
}

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

Rank::Rank(Machine& machine, int rank, host::Host& host)
    : machine_(machine), rank_(rank), host_(host) {}

int Rank::size() const { return machine_.size(); }

sim::Engine& Rank::engine() { return machine_.engine(rank_); }

Request Rank::isend(int dest, int tag, std::uint32_t bytes,
                    std::uint32_t context) {
  ALPU_ASSERT(dest >= 0 && dest < size(), "invalid destination rank");
  ALPU_ASSERT(tag >= 0, "send tags must be explicit");
  nic::HostRequest req;
  req.kind = nic::RequestKind::kSend;
  req.dst = static_cast<net::NodeId>(dest);
  req.envelope = match::Envelope{context, static_cast<std::uint32_t>(rank_),
                                 static_cast<std::uint32_t>(tag)};
  req.send_buffer = host_.alloc_buffer(bytes == 0 ? 1 : bytes);
  req.send_bytes = bytes;
  return Request{host_.submit(req)};
}

Request Rank::irecv(int source, int tag, std::uint32_t max_bytes,
                    std::uint32_t context) {
  nic::HostRequest req;
  req.kind = nic::RequestKind::kPostRecv;
  req.pattern = match::make_recv_pattern(
      context, to_field(source, match::kMaxSource, kAnySource),
      to_field(tag, match::kMaxTag, kAnyTag));
  req.recv_buffer = host_.alloc_buffer(max_bytes == 0 ? 1 : max_bytes);
  req.recv_max_bytes = max_bytes;
  return Request{host_.submit(req)};
}

sim::Process Rank::wait(Request request) {
  ALPU_ASSERT(request.valid(), "waiting on a null request");
  co_await host_.wait(request.handle());
}

sim::Process Rank::waitall(std::vector<Request> requests) {
  for (Request& r : requests) {
    co_await wait(r);
  }
}

sim::Process Rank::send(int dest, int tag, std::uint32_t bytes,
                        std::uint32_t context) {
  co_await wait(isend(dest, tag, bytes, context));
}

sim::Process Rank::recv(int source, int tag, std::uint32_t max_bytes,
                        std::uint32_t context, Request* out) {
  Request r = irecv(source, tag, max_bytes, context);
  co_await wait(r);
  if (out != nullptr) *out = r;
}

sim::Process Rank::barrier() {
  // Linear fan-in to rank 0, then fan-out — built purely from the
  // point-to-point primitives, as the paper's (†) functions are.
  const int n = size();
  if (n == 1) co_return;
  if (rank_ == 0) {
    for (int r = 1; r < n; ++r) {
      co_await recv(r, kBarrierTag, 0, kCollectiveContext);
    }
    for (int r = 1; r < n; ++r) {
      co_await send(r, kBarrierTag, 0, kCollectiveContext);
    }
  } else {
    co_await send(0, kBarrierTag, 0, kCollectiveContext);
    co_await recv(0, kBarrierTag, 0, kCollectiveContext);
  }
}

}  // namespace alpu::mpi
