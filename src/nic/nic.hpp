// The network interface model (Figure 1).
//
// One Nic owns:
//   * an embedded-processor firmware, modelled as a coroutine that
//     executes the four-action loop of Section V-C (poll network, poll
//     host requests, advance active requests, update the ALPUs) and
//     charges cycle + memory-system costs for everything it does;
//   * the five MPI queues of Section V-C in simulated NIC memory
//     (postedRecvQ / unexpectedQ as match lists with per-entry simulated
//     addresses; send and active queues as firmware work queues);
//   * Tx and Rx DMA engines and the network attachment;
//   * optionally, one ALPU per matching queue, wired exactly as in
//     Figure 1: incoming headers are replicated into the posted-receive
//     ALPU in hardware (no firmware cost), receives being posted are fed
//     to the unexpected-message ALPU by the firmware over the local bus,
//     and all commands/results cross the 20 ns local bus.
//
// With `posted_alpu`/`unexpected_alpu` unset the Nic reproduces the
// paper's baseline (software linear lists); set, it implements the
// Section IV software interface: START INSERT / ACK / batched INSERT /
// STOP INSERT with result draining, first-N-entries offload with
// overflow search, and cookie-based O(1) location of matched entries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alpu/alpu.hpp"
#include "common/dense.hpp"
#include "alpu/pipelined.hpp"
#include "match/list.hpp"
#include "mem/memory_system.hpp"
#include "net/network.hpp"
#include "nic/config.hpp"
#include "nic/dma.hpp"
#include "nic/host_protocol.hpp"
#include "nic/reliability.hpp"
#include "sim/process.hpp"

namespace alpu::nic {

struct NicStats {
  std::uint64_t packets_rx = 0;
  std::uint64_t packets_tx = 0;
  std::uint64_t eager_rx = 0;
  std::uint64_t rendezvous_rx = 0;

  std::uint64_t posted_searches = 0;
  std::uint64_t posted_entries_walked = 0;   ///< software-walked entries
  std::uint64_t unexpected_searches = 0;
  std::uint64_t unexpected_entries_walked = 0;

  std::uint64_t posted_appends = 0;
  std::uint64_t unexpected_appends = 0;

  std::uint64_t alpu_posted_hits = 0;
  std::uint64_t alpu_posted_misses = 0;
  std::uint64_t alpu_unexpected_hits = 0;
  std::uint64_t alpu_unexpected_misses = 0;
  std::uint64_t alpu_insert_sessions = 0;
  std::uint64_t alpu_entries_inserted = 0;

  // Graceful-degradation accounting (header-FIFO back-pressure).
  std::uint64_t alpu_probe_rejections = 0;  ///< probes refused by a full FIFO
  std::uint64_t alpu_probe_retries = 0;     ///< firmware re-offers after refusal
  std::uint64_t alpu_fallback_resets = 0;   ///< ALPU reset to enter fallback
  std::uint64_t alpu_fallback_searches = 0;  ///< software walks while degraded

  // Transient-fault subsystem (zero unless an SEU model is configured).
  // The first three are mirrored from the units' own counters by
  // stats(); `rebuilds` is firmware-side: parity-triggered reset +
  // re-shadow recoveries that completed.
  std::uint64_t seu_injected = 0;    ///< bit flips landed in the planes
  std::uint64_t parity_faults = 0;   ///< detection episodes (quarantines)
  std::uint64_t scrub_sweeps = 0;    ///< background verify sweeps
  std::uint64_t rebuilds = 0;        ///< completed scrub-and-rebuild recoveries
  /// Summed injection-to-detection latency over all detection episodes
  /// (divide by `parity_faults` for the mean).  Mirrored from the units.
  common::TimePs seu_detect_latency_ps = 0;

  // Eager-resource occupancy (tracked even with unlimited budgets, so
  // sweeps can report what an incast would have pinned).
  std::uint64_t unexpected_depth_peak = 0;  ///< max unexpectedQ length
  std::uint64_t eager_pool_peak_bytes = 0;  ///< max staged eager payload
  std::uint64_t unexpected_slots_peak = 0;  ///< max staged envelope slots
  // Receiver-not-ready flow control (nonzero only with finite budgets).
  std::uint64_t rnr_demotions = 0;     ///< peers demoted eager→rendezvous
  std::uint64_t rnr_promotions = 0;    ///< demoted peers re-promoted
  std::uint64_t demoted_sends = 0;     ///< small sends routed rendezvous

  std::uint64_t completions = 0;
  common::TimePs firmware_busy = 0;  ///< summed charged time

  // Control-path allocation accounting: backing-array growths of the
  // NIC's dense node tables, pooled flat maps, parked-leg queues and
  // the reliability layer's per-peer tables.  Each count is one heap
  // allocation; at steady state (tables warmed up, pools primed) both
  // counters must stop moving — the zero-allocation property the soak
  // tests assert, mirroring ReliabilityStats.buffer_allocs for the
  // retransmit ring.
  std::uint64_t control_allocs = 0;
  std::uint64_t control_bytes = 0;  ///< bytes of backing capacity grown
};

class Nic : public sim::Component, private EagerAdmission {
 public:
  Nic(sim::Engine& engine, std::string name, net::NodeId node,
      const NicConfig& config, net::Network& network);

  // ---- host-facing interface ----

  /// Submit a request descriptor.  The caller (host model) is expected
  /// to have already charged the doorbell latency; this call models the
  /// descriptor landing in NIC SRAM.
  void host_submit(const HostRequest& request);

  /// Register the completion sink.  Invoked `completion_ps` after the
  /// firmware writes the record (models host-visibility latency).
  // lint: ok(std-function-hot-path) — installed once at wiring time.
  void set_completion_handler(std::function<void(const Completion&)> h);

  /// Pre-size every per-peer control table for nodes [0, n) (the
  /// Machine passes its node count at build time): no node-keyed table
  /// grows on the message hot path afterwards.
  void reserve_nodes(std::size_t n);

  // ---- introspection ----

  net::NodeId node() const { return node_; }
  const NicConfig& config() const { return config_; }
  const NicStats& stats() const {
    sync_seu_stats();
    return stats_;
  }
  /// Probe-level work counters summed over the software match lists and
  /// any attached transaction-level ALPUs (probes issued, comparator
  /// cells scanned, entries moved by deletion compaction).
  common::MatchCounters match_counters() const;
  /// The link-reliability sublayer (pass-through when disabled).
  const ReliabilityLayer& reliability() const { return reliability_; }
  mem::MemorySystem& memory() { return memory_; }
  std::size_t posted_queue_length() const { return posted_.size(); }
  std::size_t unexpected_queue_length() const { return unexpected_.size(); }

  // ---- eager-resource budget (flow control) ----

  /// Staged eager payload bytes / envelope slots currently pinned.
  std::uint64_t eager_pool_used() const { return eager_pool_used_; }
  std::uint32_t eager_slots_used() const { return eager_slots_used_; }
  /// True while `peer`'s repeated RNR refusals have demoted our eager
  /// traffic toward it to rendezvous.
  bool peer_demoted(net::NodeId peer) const;

  /// Stall-watchdog hooks: quiescence with undrained protocol work is a
  /// stall; the snapshot is the per-NIC triage dump.
  bool undrained_work() const;
  std::string stall_snapshot() const;

  /// The attached units through the model-independent interface
  /// (nullptr when not attached).
  const hw::AlpuDevice* posted_alpu_device() const {
    return posted_ctx_ ? posted_ctx_->unit.get() : nullptr;
  }
  const hw::AlpuDevice* unexpected_alpu_device() const {
    return unexpected_ctx_ ? unexpected_ctx_->unit.get() : nullptr;
  }
  /// Transaction-level view (nullptr when absent OR when the NIC runs
  /// the pipelined model).
  const hw::Alpu* posted_alpu() const {
    return posted_ctx_ ? dynamic_cast<const hw::Alpu*>(posted_ctx_->unit.get())
                       : nullptr;
  }
  const hw::Alpu* unexpected_alpu() const {
    return unexpected_ctx_
               ? dynamic_cast<const hw::Alpu*>(unexpected_ctx_->unit.get())
               : nullptr;
  }

  void init() override;

 private:
  /// Firmware-side bookkeeping for one attached ALPU.
  struct AlpuCtx {
    std::unique_ptr<hw::AlpuDevice> unit;
    /// The queue prefix [0, synced) currently resident in the ALPU.
    std::size_t synced = 0;
    /// Next probe sequence number to assign.
    std::uint64_t next_probe_seq = 0;
    /// Match results drained from the result FIFO during insert
    /// sessions, awaiting their packets (Section IV-C).
    std::deque<hw::Response> drained;
    /// Set when a parity fault forced the reset; the next completed
    /// re-shadow session counts as a rebuild (NicStats::rebuilds).
    bool rebuild_pending = false;
    /// Drained responses that predate a parity-triggered reset.  They
    /// were verified at their own match time (detection precedes every
    /// result), so they stay deliverable — but their entries are no
    /// longer shadowed, which waives the `index < synced` check.
    std::size_t stale_ok = 0;
    /// True when read_match_result's last response came off the stale
    /// (pre-reset) portion of `drained`.
    bool last_from_stale = false;
    /// A parity-triggered RESET is in the command FIFO but the unit may
    /// not have decoded it yet (fault_pending() still true).  Stops the
    /// firmware's dormant-fault sweep from issuing one reset per loop
    /// iteration; cleared when the unit is observed fault-free.
    bool fault_reset_issued = false;
  };

  /// One entry of the firmware's Rx work queue.
  struct RxItem {
    net::Packet packet;
    /// Probe sequence assigned when the header was replicated into the
    /// posted-receive ALPU (matching packet kinds only).
    std::optional<std::uint64_t> probe_seq;
  };

  /// Simulated addresses of one queue entry.  The match fields live in a
  /// dense 64 B slot (the only line touched while walking the list); the
  /// rest of the request state fills a separate line touched on append
  /// and on match — together the paper's "several other pieces of data
  /// in the queue entry".
  struct EntryAddrs {
    mem::Addr match_line = 0;
    mem::Addr state_line = 0;
  };

  /// Software-side state of a posted receive, keyed by cookie.
  struct PostedInfo {
    mem::Addr buffer = 0;
    std::uint32_t max_bytes = 0;
    std::uint64_t req_id = 0;
    mem::Addr state_line = 0;
  };

  /// Software-side state of an unexpected message, keyed by cookie.
  struct UnexpectedInfo {
    net::PacketKind kind = net::PacketKind::kEager;
    std::uint32_t bytes = 0;
    std::uint64_t token = 0;  ///< rendezvous pairing token (RTS entries)
    net::NodeId src = 0;
    mem::Addr state_line = 0;
  };

  /// Rendezvous legs awaiting the bulk data.
  struct RdvzSendState {
    mem::Addr buffer = 0;
    std::uint32_t bytes = 0;
    std::uint64_t req_id = 0;
    net::NodeId dst = 0;
  };
  struct RdvzRecvState {
    mem::Addr buffer = 0;
    std::uint32_t max_bytes = 0;
    std::uint64_t req_id = 0;
    /// Envelope matched at RTS time; the DATA leg carries none, so the
    /// completion record reports these bits.
    match::MatchWord match_bits = 0;
  };

  // ---- firmware ----

  sim::Process firmware();
  sim::Process handle_packet(RxItem item);
  sim::Process handle_request(HostRequest request);
  sim::Process update_alpu(AlpuCtx& ctx, bool is_posted);

  /// Enter software fallback for one ALPU: push a RESET (retrying at bus
  /// cost while the command FIFO is full) and forget the synced prefix.
  /// Used when header-FIFO back-pressure rejected a probe, leaving a
  /// packet/post that the unit never saw — searching the software list
  /// while the unit still held entries would double-deliver.  Recovery
  /// is the normal Action-4 path: once the firmware drains, update_alpu
  /// re-shadows the queue from scratch.
  ///
  /// `parity` marks a parity-fault recovery (scrub-and-rebuild): unlike
  /// the back-pressure path it may run with stale drained responses
  /// outstanding (kept — they were verified before the fault latched)
  /// and arms `rebuild_pending` so the re-shadow counts as a rebuild.
  sim::Process degrade_alpu(AlpuCtx& ctx, bool is_posted,
                            bool parity = false);

  /// Mirror the units' fault counters into stats_ (stats_ is mutable
  /// so const readers always see current values).
  void sync_seu_stats() const;

  /// Read the next ALPU response for `expected_seq`, spinning on the
  /// result FIFO over the bus; consumes drained responses first.
  sim::Process read_match_result(AlpuCtx& ctx, std::uint64_t expected_seq,
                                 hw::Response* out);

  // ---- helpers (pure cost computations mutate the cache model) ----

  common::TimePs instr(std::uint32_t cycles) const {
    return config_.clock.cycles(cycles);
  }
  /// Cost of software-walking `visited` entries starting at `first`
  /// (touches each entry's match line through the cache model).
  common::TimePs walk_cost_posted(std::size_t first, std::size_t visited);
  common::TimePs walk_cost_unexpected(std::size_t first, std::size_t visited);
  /// Cost of touching a matched entry's state line plus unlink work.
  common::TimePs erase_cost(mem::Addr state_line);
  /// Cost of appending an entry (write match and state lines).
  common::TimePs append_cost(const EntryAddrs& addrs);

  EntryAddrs alloc_entry();
  void release_entry(const EntryAddrs& addrs);

  void on_network_delivery(const net::Packet& packet);
  void wake_firmware() { work_.fire(); }

  /// Queue an "advance active request" job for the firmware loop.
  // lint: ok(std-function-hot-path) — {this, token} captures fit the SBO.
  void enqueue_advance(std::function<void()> job);

  /// Emit a completion record toward the host.
  void complete(const Completion& completion);

  /// Remove posted entry at `index`, maintaining ALPU sync bookkeeping.
  void erase_posted(std::size_t index);
  void erase_unexpected(std::size_t index);

  /// Map a cookie back to its current list index (O(1) both charged and
  /// actual: the cookie is a direct pointer in hardware, and the lists
  /// keep a cookie→index side table).
  std::size_t posted_index_of(match::Cookie cookie) const {
    return posted_.index_of(cookie);
  }
  std::size_t unexpected_index_of(match::Cookie cookie) const {
    return unexpected_.index_of(cookie);
  }

  /// Inject a matchable send leg, honouring per-destination MPI order
  /// (see the tx_ticket_* members).  Releases parked successors.
  void inject_matchable(const net::Packet& packet, std::uint64_t ticket);

  /// `budget_reserved` is false for packets admitted through the
  /// posted-match bypass: no eager resources were reserved for them, so
  /// none must be released here.
  sim::Process deliver_to_posted(match::Cookie cookie,
                                 const net::Packet& packet,
                                 common::TimePs accrued,
                                 bool budget_reserved);
  sim::Process deliver_from_unexpected(match::Cookie cookie,
                                       const HostRequest& request,
                                       common::TimePs accrued);

  // ---- eager-resource accounting (EagerAdmission) ----

  /// True when this NIC enforces a finite budget (admission installed).
  bool budget_limited() const {
    return config_.eager_pool_bytes > 0 || config_.unexpected_slots > 0;
  }
  bool try_admit(const net::Packet& packet) override;
  std::uint64_t credit_bytes() const override;
  std::uint32_t credit_slots() const override;
  /// Reserve the resources `packet` pins (one envelope slot, plus the
  /// payload bytes for eager kinds).  `enforce` refuses over-budget
  /// reservations; without it the occupancy is tracked stats-only.
  bool reserve_eager(const net::Packet& packet, bool enforce);
  void release_eager_slot();
  void release_eager_bytes(std::uint32_t bytes);
  /// Key for the posted-match promise table: one in-flight admitted
  /// packet per (source, sequence).
  static std::uint64_t promise_key(const net::Packet& packet) {
    return (static_cast<std::uint64_t>(packet.src) << 32) | packet.seq;
  }
  /// Posted-list search that skips entries promised to other in-flight
  /// packets (identical to posted_.search_from when no budget is set:
  /// the promise tables stay empty).  `visited` accumulates across the
  /// skipped probes for the walk-cost model.
  match::SearchResult posted_search_from(std::size_t first,
                                         match::MatchWord word,
                                         match::Cookie own_promise) const;
  /// Flow hooks from the reliability sublayer (sender side).
  void on_peer_rnr(net::NodeId peer, unsigned streak);
  void on_peer_credit(net::NodeId peer, std::uint64_t bytes,
                      std::uint32_t slots);

  // ---- members ----

  net::NodeId node_;
  NicConfig config_;
  net::Network& network_;
  ReliabilityLayer reliability_;
  mem::MemorySystem memory_;
  mem::SimHeap match_heap_;  ///< dense 64 B match-line slots
  mem::SimHeap state_heap_;  ///< per-entry request-state lines
  std::vector<EntryAddrs> entry_freelist_;

  DmaEngine tx_dma_;
  DmaEngine rx_dma_;

  match::PostedList posted_;
  match::UnexpectedList unexpected_;
  /// Per-message protocol side tables: insertion-ordered pooled flat
  /// maps (common::FlatMap), so the PostedInfo/UnexpectedInfo and
  /// rendezvous states they hold are recycled through slot free lists —
  /// steady-state insert/erase churn never touches the allocator, and
  /// no behaviour can depend on hash-bucket order.
  common::FlatMap<match::Cookie, PostedInfo> posted_info_;
  common::FlatMap<match::Cookie, UnexpectedInfo> unexpected_info_;
  common::FlatMap<std::uint64_t, RdvzSendState> rdvz_send_;
  common::FlatMap<std::uint64_t, RdvzRecvState> rdvz_recv_;

  // Per-destination transmit-order gate for matchable legs (eager
  // packets and rendezvous RTS headers).  MPI non-overtaking is defined
  // at the matching level: two sends to the same peer must reach its
  // match engine in posting order.  An eager payload injects from its
  // DMA completion while an RTS injects straight from the firmware, so
  // without the gate an RTS issued behind an in-flight eager DMA would
  // overtake it on the wire.  Tickets are issued in request-processing
  // order; a leg whose turn has not yet come is parked until the
  // earlier injection releases it (same event, no extra model time).
  struct TxOrder {
    std::uint64_t next = 0;  ///< next ticket to issue
    std::uint64_t due = 0;   ///< next ticket allowed onto the wire
    /// Out-of-turn legs, sorted by ticket.  Capacity is retained across
    /// release, so a warmed queue parks without allocating.
    std::vector<std::pair<std::uint64_t, net::Packet>> parked;
  };
  common::DenseNodeTable<TxOrder> tx_order_;
  match::Cookie next_cookie_ = 1;
  std::uint64_t next_token_ = 1;

  /// Per-peer sender-side flow state: demoted peers route small sends
  /// through rendezvous until a credit grant re-promotes them.
  struct PeerFlow {
    bool demoted = false;
  };
  common::DenseNodeTable<PeerFlow> peer_flow_;
  /// Receiver-side eager occupancy (bytes staged / envelope slots).
  std::uint64_t eager_pool_used_ = 0;
  std::uint32_t eager_slots_used_ = 0;
  /// Posted-match admission bypass (budget-limited mode only).  The
  /// admission probe (try_admit) pledges each admitted eager/RTS packet
  /// the first posted entry it matches, in admission order, skipping
  /// entries already pledged to earlier in-flight packets.  A packet
  /// that finds no budget but does find an unpledged posted match is
  /// admitted WITHOUT a reservation (`reserved == false`): its payload
  /// lands in the application buffer, not the eager pool, so refusing
  /// it would be a priority inversion (RNR means "receiver not ready",
  /// and this receiver is ready).  Firmware matching skips entries
  /// pledged to other packets so the probe's verdict holds.
  struct MatchPromise {
    match::Cookie cookie = 0;
    bool reserved = false;  ///< eager budget was reserved at admission
  };
  common::FlatMap<match::Cookie, std::uint8_t> promised_posted_;
  common::FlatMap<std::uint64_t, MatchPromise> match_promises_;

  std::deque<RxItem> rx_fifo_;
  std::deque<HostRequest> host_fifo_;
  // lint: ok(std-function-hot-path) — see enqueue_advance.
  std::deque<std::function<void()>> advance_fifo_;

  std::optional<AlpuCtx> posted_ctx_;
  std::optional<AlpuCtx> unexpected_ctx_;
  /// Section IV-C: header replication into the posted-receive ALPU is
  /// disabled until the firmware actually loads the unit (and again
  /// whenever the unit empties).  While disabled, packets take the full
  /// software search — which is safe exactly because the ALPU is empty.
  bool posted_probe_enabled_ = false;
  /// Set when header-FIFO back-pressure forced the posted ALPU into
  /// software fallback; cleared when an insert session re-shadows it.
  /// Only used for stats attribution (alpu_fallback_searches).
  bool posted_degraded_ = false;

  // lint: ok(std-function-hot-path) — installed once at wiring time.
  std::function<void(const Completion&)> on_completion_;
  sim::Trigger work_;
  sim::ProcessPool pool_;
  mutable NicStats stats_;
};

}  // namespace alpu::nic
