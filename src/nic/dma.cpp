#include "nic/dma.hpp"

namespace alpu::nic {

DmaEngine::DmaEngine(sim::Engine& engine, std::string name,
                     const DmaConfig& config)
    : sim::Component(engine, std::move(name)), config_(config) {}

// lint: ok(std-function-hot-path) — per-transfer completion moved into
// the queued Job, not rebuilt per event; captures are two pointers.
void DmaEngine::request(std::uint64_t bytes, std::function<void()> done) {
  pending_.push_back(Job{bytes, std::move(done)});
  if (!busy_) start_next();
}

void DmaEngine::start_next() {
  if (pending_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Job job = std::move(pending_.front());
  pending_.pop_front();
  const TimePs duration = config_.setup_ps + job.bytes * config_.ps_per_byte;
  ++stats_.transfers;
  stats_.bytes += job.bytes;
  stats_.busy_time += duration;
  engine().schedule_in(duration, [this, done = std::move(job.done)] {
    done();
    start_next();
  });
}

}  // namespace alpu::nic
