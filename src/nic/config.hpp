// NIC configuration: Table III parameters plus firmware cost model.
//
// The embedded processor is modelled by charging cycle costs per
// abstract firmware operation, with all queue-entry traffic going
// through the simulated L1 (see DESIGN.md, substitution table).  The
// cycle constants below were calibrated so the baseline reproduces the
// paper's measured traversal costs: ~15 ns per posted-queue entry while
// the queue fits in the 32 KB cache and ~64 ns per entry once it spills.
#pragma once

#include <cstdint>
#include <optional>

#include "alpu/alpu.hpp"
#include "common/time.hpp"
#include "mem/memory_system.hpp"
#include "nic/dma.hpp"
#include "nic/reliability.hpp"

namespace alpu::nic {

using common::TimePs;

/// Per-operation firmware instruction budgets (cycles at the NIC clock).
struct FirmwareCosts {
  std::uint32_t loop_overhead_cycles = 10;   ///< per iteration with work
  std::uint32_t parse_packet_cycles = 20;
  std::uint32_t per_entry_cycles = 5;        ///< list-walk work per entry
  std::uint32_t append_entry_cycles = 25;    ///< build + link a queue entry
  std::uint32_t erase_entry_cycles = 15;     ///< unlink + free
  std::uint32_t post_recv_cycles = 30;       ///< decode a post-recv request
  std::uint32_t send_setup_cycles = 30;      ///< decode + stage a send
  std::uint32_t delivery_setup_cycles = 25;  ///< program a delivery DMA
  std::uint32_t completion_cycles = 15;      ///< build a completion record
  std::uint32_t rendezvous_cycles = 20;      ///< CTS/RTS protocol step
  std::uint32_t alpu_cmd_cycles = 5;         ///< prepare one ALPU command
  std::uint32_t alpu_poll_cycles = 12;       ///< bookkeeping per result read
  /// Bus transactions per result retrieval (status read + result word +
  /// tag word over the 32-bit local bus).
  std::uint32_t alpu_result_bus_reads = 3;
};

/// How the firmware uses an attached ALPU (Section IV-B heuristics).
struct AlpuUsePolicy {
  /// Start moving the queue into the ALPU once it is at least this long.
  /// The paper notes break-even near 5 entries; its experiments use the
  /// ALPU unconditionally (threshold 0), so that is the default.
  std::size_t insert_threshold = 0;
  /// Cap on inserts per START/STOP INSERT session (batching bound).
  std::size_t max_batch = 256;
  /// Section IV-B: "the software ... should attempt to conglomerate
  /// insertions".  While the firmware has other work, it defers an
  /// insert session until at least this many entries are pending,
  /// amortising the START/ACK/STOP handshake; once idle it syncs any
  /// remainder regardless.  1 == sync eagerly (the paper's behaviour).
  std::size_t min_batch = 1;
};

/// Which unit model backs the attached ALPUs.  The two models are
/// response-stream equivalent (differentially tested); the pipelined
/// model adds RTL-level compaction/bubble fidelity at some simulation
/// cost, and serves as a system-level cross-check.
enum class AlpuModelKind : std::uint8_t {
  kTransaction,
  kPipelined,
};

struct NicConfig {
  /// NIC processor clock (Table III: 500 MHz).
  common::ClockPeriod clock = common::ClockPeriod::from_mhz(500);

  /// Local bus transaction latency (Section V-B: 20 ns).
  TimePs bus_ps = 20'000;

  /// Host doorbell write (request reaching NIC SRAM) and completion
  /// visibility (NIC write reaching the polling host) latencies.
  TimePs doorbell_ps = 150'000;
  TimePs completion_ps = 150'000;

  /// NIC memory system (Table III: 32 KB 64-way L1, 64 B lines; 30-32
  /// cycle latency to local memory — 31 cycles = 62 ns at 500 MHz).
  mem::MemorySystemConfig memory{
      .l1 = {.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 64},
      .l1_hit_ps = 4'000,
      .l2 = std::nullopt,
      .l2_hit_ps = 0,
      // Effective line-fill cost beyond the L1 hit charge; together they
      // land the paper's ~64 ns out-of-cache per-entry asymptote.
      .backend_ps = 50'000,
      .use_dram = false,
      .dram = {},
  };

  // Queue entries occupy two cache lines of NIC memory: a slot in a
  // dense array of match lines (the only line touched while walking the
  // list) and a separate request-state line touched on append and on
  // match — 128 B of cache footprint per entry, which puts the paper's
  // cache-exhaustion knee near 32 KB / 128 B = 256 entries.

  /// Messages up to this size travel eagerly; larger ones rendezvous.
  std::uint32_t eager_threshold = 16 * 1024;

  /// Receiver-side eager-resource budget.  Zero means unlimited (the
  /// paper's idealised NIC, and byte-identical to the pre-budget
  /// simulator); nonzero bounds what an incast can pin on the receiver
  /// and turns exhaustion into an RNR-NACK protocol event handled by the
  /// reliability sublayer — so nonzero budgets require
  /// `reliability.enabled` (asserted at machine build).  Occupancy and
  /// peaks are tracked in NicStats even when unlimited.
  std::uint64_t eager_pool_bytes = 0;  ///< bytes of staged eager payload
  std::uint32_t unexpected_slots = 0;  ///< staged eager/RTS envelope slots

  /// Tx and Rx DMA engines share one parameterisation.
  DmaConfig dma;

  /// Link-reliability sublayer (go-back-N).  Disabled by default: the
  /// clean-path packet schedule is then byte-identical to a NIC without
  /// the sublayer.  Must be enabled whenever the network injects faults.
  ReliabilityConfig reliability;

  FirmwareCosts costs;

  /// ALPU attachments.  Disabled (nullopt) reproduces the baseline NIC.
  std::optional<hw::AlpuConfig> posted_alpu;
  std::optional<hw::AlpuConfig> unexpected_alpu;
  AlpuUsePolicy alpu_policy;
  AlpuModelKind alpu_model = AlpuModelKind::kTransaction;

  /// Transient-fault model applied to every attached ALPU.  The NIC
  /// derives an independent injector stream per unit (node id and
  /// flavour folded into `seu.seed`).  Default (`seu.any() == false`)
  /// installs nothing — the zero-rate path is byte-identical.
  /// Requires the transaction-level model (asserted at unit build).
  hw::SeuConfig seu;
};

}  // namespace alpu::nic
