#include "nic/nic.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace alpu::nic {

using common::LogLevel;
using common::TimePs;

namespace {

/// Packet kinds that traverse the posted-receive matching path.
bool is_matching_kind(net::PacketKind kind) {
  return kind == net::PacketKind::kEager ||
         kind == net::PacketKind::kRtsRendezvous;
}

hw::AlpuConfig with_flavor(hw::AlpuConfig cfg, hw::AlpuFlavor flavor) {
  cfg.flavor = flavor;
  // The NIC firmware only issues inserts against granted credit, so a
  // unit-level insert drop here is a firmware protocol bug, not a
  // modelled condition — make the unit trap it in checked builds.
  cfg.assert_on_insert_drop = true;
  return cfg;
}

/// Per-unit SEU injector stream: fold the node id and flavour into the
/// configured seed (the Xoshiro constructor splitmixes, so nearby
/// streams are unrelated), mirroring the per-link fault streams.
std::uint64_t seu_stream(std::uint64_t seed, net::NodeId node,
                         hw::AlpuFlavor flavor) {
  const std::uint64_t lane =
      2 * static_cast<std::uint64_t>(node) +
      (flavor == hw::AlpuFlavor::kUnexpected ? 1 : 0);
  return seed ^ (0x9e3779b97f4a7c15ULL * (lane + 1));
}

/// Build a unit of the configured model kind.
std::unique_ptr<hw::AlpuDevice> make_unit(sim::Engine& engine,
                                          std::string name,
                                          const hw::AlpuConfig& cfg,
                                          AlpuModelKind kind) {
  if (kind == AlpuModelKind::kPipelined) {
    ALPU_ASSERT(!cfg.seu.any(),
                "the SEU fault model is only implemented for the "
                "transaction-level ALPU (use --alpu-model transaction)");
    hw::PipelinedAlpuConfig p;
    p.flavor = cfg.flavor;
    p.total_cells = cfg.total_cells;
    p.block_size = cfg.block_size;
    p.clock = cfg.clock;
    p.significant_mask = cfg.significant_mask;
    p.header_fifo_depth = cfg.header_fifo_depth;
    p.command_fifo_depth = cfg.command_fifo_depth;
    p.result_fifo_depth = cfg.result_fifo_depth;
    p.assert_on_insert_drop = cfg.assert_on_insert_drop;
    return std::make_unique<hw::PipelinedAlpu>(engine, std::move(name), p);
  }
  return std::make_unique<hw::Alpu>(engine, std::move(name), cfg);
}

}  // namespace

Nic::Nic(sim::Engine& engine, std::string name, net::NodeId node,
         const NicConfig& config, net::Network& network)
    : sim::Component(engine, std::move(name)),
      node_(node),
      config_(config),
      network_(network),
      reliability_(engine, this->name() + ".rel", config.reliability, network,
                   node,
                   [this](const net::Packet& p) { on_network_delivery(p); }),
      memory_(config.memory),
      match_heap_(0x1000'0000 + (static_cast<mem::Addr>(node) << 32)),
      state_heap_(0x4000'0000 + (static_cast<mem::Addr>(node) << 32)),
      tx_dma_(engine, this->name() + ".txdma", config.dma),
      rx_dma_(engine, this->name() + ".rxdma", config.dma),
      pool_(engine) {
  if (config_.posted_alpu.has_value()) {
    posted_ctx_.emplace();
    hw::AlpuConfig ucfg =
        with_flavor(*config_.posted_alpu, hw::AlpuFlavor::kPostedReceive);
    ucfg.seu = config_.seu;
    ucfg.seu.seed =
        seu_stream(config_.seu.seed, node, hw::AlpuFlavor::kPostedReceive);
    posted_ctx_->unit = make_unit(engine, this->name() + ".alpu.posted", ucfg,
                                  config_.alpu_model);
    // A background scrub that latches a fault must wake the firmware so
    // dormant corruption is rebuilt without waiting for traffic.
    posted_ctx_->unit->set_fault_callback([this] { wake_firmware(); });
  }
  if (config_.unexpected_alpu.has_value()) {
    unexpected_ctx_.emplace();
    hw::AlpuConfig ucfg =
        with_flavor(*config_.unexpected_alpu, hw::AlpuFlavor::kUnexpected);
    ucfg.seu = config_.seu;
    ucfg.seu.seed =
        seu_stream(config_.seu.seed, node, hw::AlpuFlavor::kUnexpected);
    unexpected_ctx_->unit = make_unit(
        engine, this->name() + ".alpu.unexpected", ucfg, config_.alpu_model);
    unexpected_ctx_->unit->set_fault_callback([this] { wake_firmware(); });
  }
  // Raw deliveries pass through the reliability sublayer, which forwards
  // exactly the packets the lossless network used to deliver (in order,
  // once, CRC-clean) to on_network_delivery.
  network_.attach(node_, engine, [this](const net::Packet& p) {
    reliability_.on_network_delivery(p);
  });
  // Every control-path container reports backing growth into the same
  // pair of counters (done here, after stats_ is constructed).
  const common::AllocSink sink{&stats_.control_allocs,
                               &stats_.control_bytes};
  posted_info_.set_alloc_sink(sink);
  unexpected_info_.set_alloc_sink(sink);
  rdvz_send_.set_alloc_sink(sink);
  rdvz_recv_.set_alloc_sink(sink);
  tx_order_.set_alloc_sink(sink);
  peer_flow_.set_alloc_sink(sink);
  reliability_.set_alloc_sink(sink);
  // Finite eager budgets turn exhaustion into RNR-NACK protocol events
  // handled inside the reliability sublayer; with unlimited budgets no
  // admission hook is installed and the wire schedule is byte-identical
  // to the pre-flow-control simulator.
  if (budget_limited()) reliability_.set_admission(this);
  ReliabilityLayer::FlowHooks hooks;
  hooks.on_rnr = [this](net::NodeId peer, unsigned streak) {
    on_peer_rnr(peer, streak);
  };
  hooks.on_credit = [this](net::NodeId peer, std::uint64_t bytes,
                           std::uint32_t slots) {
    on_peer_credit(peer, bytes, slots);
  };
  reliability_.set_flow_hooks(std::move(hooks));
}

void Nic::reserve_nodes(std::size_t n) {
  tx_order_.reserve(n);
  peer_flow_.reserve(n);
  reliability_.reserve_nodes(n);
}

void Nic::init() {
  pool_.spawn(firmware());
}

// ---------------------------------------------------------------------------
// Host and network entry points
// ---------------------------------------------------------------------------

void Nic::host_submit(const HostRequest& request) {
  host_fifo_.push_back(request);
  wake_firmware();
}

// lint: ok(std-function-hot-path) — installed once per NIC at wiring time.
void Nic::set_completion_handler(std::function<void(const Completion&)> h) {
  on_completion_ = std::move(h);
}

void Nic::on_network_delivery(const net::Packet& packet) {
  // With the reliability sublayer disabled nothing filters corrupted
  // packets, so fault configs that corrupt require it enabled (the
  // Machine enforces this at construction).
  ALPU_ASSERT(packet.crc_ok, "corrupted packet above the reliability layer");
  ALPU_ASSERT(packet.kind != net::PacketKind::kAck &&
                  packet.kind != net::PacketKind::kRnrNack,
              "reliability control packet leaked above the sublayer");
  ++stats_.packets_rx;
  // Eager-resource accounting.  With a finite budget the reliability
  // sublayer's admission check (try_admit) already reserved for this
  // packet; otherwise track occupancy stats-only here, so sweeps report
  // what an incast pins even on an unlimited NIC.
  if (!(budget_limited() && reliability_.enabled()) &&
      (packet.kind == net::PacketKind::kEager ||
       packet.kind == net::PacketKind::kRtsRendezvous)) {
    reserve_eager(packet, /*enforce=*/false);
  }
  RxItem item{packet, std::nullopt};
  // Figure 1: headers of matching packets are replicated into the
  // posted-receive ALPU by hardware, before the firmware ever runs —
  // but only while the firmware has replication enabled (Section IV-C).
  // An un-probed packet may never coexist with a non-empty ALPU: the
  // firmware's full software search would erase entries the hardware
  // still holds.  The enable/disable points in update_alpu/erase_posted
  // maintain that invariant.
  if (posted_ctx_.has_value() && posted_probe_enabled_ &&
      is_matching_kind(packet.kind)) {
    hw::Probe probe{packet.match_bits, 0, posted_ctx_->next_probe_seq};
    if (posted_ctx_->unit->push_probe(probe)) {
      item.probe_seq = posted_ctx_->next_probe_seq++;
    } else {
      // Header FIFO full.  Real hardware back-pressures the Rx path; the
      // model instead degrades gracefully: stop replicating (this packet
      // and everything behind it go un-probed) and let the firmware
      // reset the unit before its next software search (handle_packet),
      // preserving the invariant above.  update_alpu re-shadows the
      // queue — and re-enables replication — once the firmware drains.
      ++stats_.alpu_probe_rejections;
      posted_probe_enabled_ = false;
    }
  }
  rx_fifo_.push_back(std::move(item));
  wake_firmware();
}

// lint: ok(std-function-hot-path) — jobs capture {this, token}: within the
// ~16-byte SBO of every mainstream std::function, so no per-job heap.
void Nic::enqueue_advance(std::function<void()> job) {
  advance_fifo_.push_back(std::move(job));
  wake_firmware();
}

void Nic::complete(const Completion& completion) {
  ++stats_.completions;
  ALPU_ASSERT(on_completion_, "no completion handler attached");
  engine().schedule_in(config_.completion_ps,
                       [this, completion] { on_completion_(completion); });
}

// ---------------------------------------------------------------------------
// Cost helpers (mutate the cache model as a side effect)
// ---------------------------------------------------------------------------

TimePs Nic::walk_cost_posted(std::size_t first, std::size_t visited) {
  TimePs t = 0;
  const TimePs now = engine().now();
  for (std::size_t i = first; i < first + visited; ++i) {
    t += instr(config_.costs.per_entry_cycles);
    t += memory_.load(posted_.at(i).addr, now + t);
  }
  stats_.posted_entries_walked += visited;
  return t;
}

TimePs Nic::walk_cost_unexpected(std::size_t first, std::size_t visited) {
  TimePs t = 0;
  const TimePs now = engine().now();
  for (std::size_t i = first; i < first + visited; ++i) {
    t += instr(config_.costs.per_entry_cycles);
    t += memory_.load(unexpected_.at(i).addr, now + t);
  }
  stats_.unexpected_entries_walked += visited;
  return t;
}

TimePs Nic::erase_cost(mem::Addr state_line) {
  // Unlink work plus a touch of the entry's request-state line.
  TimePs t = instr(config_.costs.erase_entry_cycles);
  t += memory_.load(state_line, engine().now() + t);
  return t;
}

TimePs Nic::append_cost(const EntryAddrs& addrs) {
  TimePs t = instr(config_.costs.append_entry_cycles);
  t += memory_.store(addrs.match_line, engine().now() + t);
  t += memory_.store(addrs.state_line, engine().now() + t);
  return t;
}

Nic::EntryAddrs Nic::alloc_entry() {
  if (!entry_freelist_.empty()) {
    const EntryAddrs a = entry_freelist_.back();
    entry_freelist_.pop_back();
    return a;
  }
  return EntryAddrs{match_heap_.alloc(64, 64), state_heap_.alloc(64, 64)};
}

void Nic::release_entry(const EntryAddrs& addrs) {
  entry_freelist_.push_back(addrs);
}

// ---------------------------------------------------------------------------
// Queue bookkeeping
// ---------------------------------------------------------------------------

void Nic::erase_posted(std::size_t index) {
  if (posted_ctx_.has_value() && index < posted_ctx_->synced) {
    // The ALPU matched (and deleted) this entry itself; keep the
    // software prefix aligned with the hardware array.
    --posted_ctx_->synced;
  }
  const match::Cookie cookie = posted_.at(index).cookie;
  release_entry(EntryAddrs{posted_.at(index).addr,
                           posted_info_.at(cookie).state_line});
  // posted_info_ is NOT erased here: the delivery path still needs the
  // buffer/request record and removes it itself.
  posted_.erase(index);
  if (posted_ctx_.has_value() && posted_ctx_->synced == 0) {
    // The unit emptied: stop replicating headers until it is reloaded.
    posted_probe_enabled_ = false;
  }
}

void Nic::erase_unexpected(std::size_t index) {
  if (unexpected_ctx_.has_value() && index < unexpected_ctx_->synced) {
    --unexpected_ctx_->synced;
  }
  const match::Cookie cookie = unexpected_.at(index).cookie;
  release_entry(EntryAddrs{unexpected_.at(index).addr,
                           unexpected_info_.at(cookie).state_line});
  unexpected_info_.erase(cookie);
  unexpected_.erase(index);
  // The entry's envelope slot frees here; eager payload bytes stay
  // pinned until the delivery DMA drains them to the host buffer.
  release_eager_slot();
}

common::MatchCounters Nic::match_counters() const {
  common::MatchCounters c;
  c += posted_.counters();
  c += unexpected_.counters();
  if (const hw::Alpu* a = posted_alpu()) {
    c += a->array().counters();
    c.inserts_dropped += a->stats().inserts_dropped;
  }
  if (const hw::Alpu* a = unexpected_alpu()) {
    c += a->array().counters();
    c.inserts_dropped += a->stats().inserts_dropped;
  }
  for (const auto* ctx : {posted_ctx_ ? &*posted_ctx_ : nullptr,
                          unexpected_ctx_ ? &*unexpected_ctx_ : nullptr}) {
    if (ctx == nullptr) continue;
    if (const auto* p =
            dynamic_cast<const hw::PipelinedAlpu*>(ctx->unit.get())) {
      c.inserts_dropped += p->stats().inserts_dropped;
    }
  }
  return c;
}

void Nic::sync_seu_stats() const {
  stats_.seu_injected = 0;
  stats_.parity_faults = 0;
  stats_.scrub_sweeps = 0;
  stats_.seu_detect_latency_ps = 0;
  for (const auto* ctx : {posted_ctx_ ? &*posted_ctx_ : nullptr,
                          unexpected_ctx_ ? &*unexpected_ctx_ : nullptr}) {
    if (ctx == nullptr) continue;
    const hw::SeuStats s = ctx->unit->seu_stats();
    stats_.seu_injected += s.seu_injected;
    stats_.parity_faults += s.parity_faults;
    stats_.scrub_sweeps += s.scrub_sweeps;
    stats_.seu_detect_latency_ps += s.detect_latency_sum_ps;
  }
}

// ---------------------------------------------------------------------------
// Firmware main loop (Section V-C: four actions per iteration)
// ---------------------------------------------------------------------------

sim::Process Nic::firmware() {
  auto& eng = engine();
  for (;;) {
    bool did_work = false;

    // Conglomeration policy (Section IV-B): under load, defer insert
    // sessions until min_batch entries are pending; when the firmware
    // has nothing else to do, sync whatever is left.
    const bool otherwise_idle =
        rx_fifo_.empty() && host_fifo_.empty() && advance_fifo_.empty();
    const std::size_t effective_min_batch =
        otherwise_idle ? 1 : config_.alpu_policy.min_batch;

    // Action 1: check the network for new incoming messages.
    if (!rx_fifo_.empty()) {
      RxItem item = std::move(rx_fifo_.front());
      rx_fifo_.pop_front();
      co_await handle_packet(std::move(item));
      did_work = true;
    }

    // Action 2: check for new requests from the main processor.
    if (!host_fifo_.empty()) {
      HostRequest request = host_fifo_.front();
      host_fifo_.pop_front();
      co_await handle_request(request);
      did_work = true;
    }

    // Action 3: advance active requests (DMA completions and protocol
    // continuations staged by hardware events).
    if (!advance_fifo_.empty()) {
      auto job = std::move(advance_fifo_.front());
      advance_fifo_.pop_front();
      const TimePs t = instr(config_.costs.delivery_setup_cycles);
      stats_.firmware_busy += t;
      co_await sim::delay(eng, t);
      job();
      did_work = true;
    }

    // Transient-fault recovery sweep: a background scrub can latch a
    // parity fault with no traffic to bounce a PARITY FAULT response off
    // (the probe path reaches degrade_alpu through handle_packet /
    // handle_request).  Reset such a unit here so dormant corruption is
    // recovered before the next use — but only once per episode
    // (fault_reset_issued), and for the posted unit only when no probed
    // packets are outstanding, so in-flight responses keep their
    // rx-order pairing.  Runs before Action 4 so the RESET is queued
    // ahead of any re-shadow session's START INSERT.
    if (posted_ctx_.has_value()) {
      if (!posted_ctx_->unit->fault_pending()) {
        posted_ctx_->fault_reset_issued = false;
      } else if (!posted_ctx_->fault_reset_issued && rx_fifo_.empty() &&
                 posted_ctx_->drained.empty()) {
        co_await degrade_alpu(*posted_ctx_, /*is_posted=*/true,
                              /*parity=*/true);
        did_work = true;
      }
    }
    if (unexpected_ctx_.has_value()) {
      if (!unexpected_ctx_->unit->fault_pending()) {
        unexpected_ctx_->fault_reset_issued = false;
      } else if (!unexpected_ctx_->fault_reset_issued &&
                 unexpected_ctx_->drained.empty()) {
        co_await degrade_alpu(*unexpected_ctx_, /*is_posted=*/false,
                              /*parity=*/true);
        did_work = true;
      }
    }

    // Action 4: update the ALPUs (batch-insert any unsynced suffix).
    // A full ALPU is left alone until matches free slots — otherwise the
    // firmware would spin issuing empty insert sessions forever.
    //
    // The posted-receive ALPU is additionally gated on "no probes
    // answered but not yet processed" (rx backlog or drained results):
    // a MATCH FAILURE produced before an insert session is stale with
    // respect to that session's entries, and acting on it would lose a
    // match MPI semantics requires.  Probes that arrive once the session
    // is underway are safe — the unit holds failed matches for retry
    // until STOP INSERT (Section III-C).
    if (posted_ctx_.has_value() && rx_fifo_.empty() &&
        posted_ctx_->drained.empty() &&
        posted_.size() >= posted_ctx_->synced + effective_min_batch &&
        posted_ctx_->synced < posted_ctx_->unit->capacity() &&
        posted_.size() >= config_.alpu_policy.insert_threshold) {
      co_await update_alpu(*posted_ctx_, /*is_posted=*/true);
      did_work = true;
    }
    if (unexpected_ctx_.has_value() &&
        unexpected_.size() >= unexpected_ctx_->synced + effective_min_batch &&
        unexpected_ctx_->synced < unexpected_ctx_->unit->capacity() &&
        unexpected_.size() >= config_.alpu_policy.insert_threshold) {
      co_await update_alpu(*unexpected_ctx_, /*is_posted=*/false);
      did_work = true;
    }

    if (did_work) {
      const TimePs t = instr(config_.costs.loop_overhead_cycles);
      stats_.firmware_busy += t;
      co_await sim::delay(eng, t);
    } else {
      co_await work_.wait(eng);
    }
  }
}

// ---------------------------------------------------------------------------
// ALPU result retrieval
// ---------------------------------------------------------------------------

sim::Process Nic::read_match_result(AlpuCtx& ctx, std::uint64_t expected_seq,
                                    hw::Response* out) {
  auto& eng = engine();
  // Results drained during an insert session are consumed first; they
  // are strictly older than anything still in the result FIFO.
  if (!ctx.drained.empty()) {
    *out = ctx.drained.front();
    ctx.drained.pop_front();
    // Responses that predate a parity-triggered reset were verified at
    // their own match time, so they stay deliverable — but the synced
    // prefix beneath them is gone (see degrade_alpu).
    if (ctx.stale_ok > 0) {
      --ctx.stale_ok;
      ctx.last_from_stale = true;
    } else {
      ctx.last_from_stale = false;
    }
    ALPU_ASSERT(out->probe_seq == expected_seq, "drained response out of order with packet stream");
    const TimePs t = instr(config_.costs.alpu_poll_cycles);
    stats_.firmware_busy += t;
    co_await sim::delay(eng, t);
    co_return;
  }
  for (;;) {
    // Result retrieval: a status read plus a data read across the local
    // bus (Section VI-B attributes the ~80 ns zero-queue penalty to this
    // forced processor/ALPU interaction), plus bookkeeping.
    const TimePs t =
        config_.costs.alpu_result_bus_reads * config_.bus_ps +
        instr(config_.costs.alpu_poll_cycles);
    stats_.firmware_busy += t;
    co_await sim::delay(eng, t);
    auto r = ctx.unit->pop_result();
    if (!r.has_value()) continue;  // spin: result not ready yet
    ALPU_ASSERT(r->kind != hw::ResponseKind::kStartAck, "unexpected START ACK outside an insert session");
    ALPU_ASSERT(r->probe_seq == expected_seq, "response/probe order violated");
    ctx.last_from_stale = false;
    *out = *r;
    co_return;
  }
}

// ---------------------------------------------------------------------------
// ALPU update (Section IV-C insert protocol)
// ---------------------------------------------------------------------------

sim::Process Nic::update_alpu(AlpuCtx& ctx, bool is_posted) {
  auto& eng = engine();
  const std::size_t list_size = is_posted ? posted_.size() : unexpected_.size();
  std::size_t pending = list_size - ctx.synced;
  if (pending == 0) co_return;
  // A quarantined unit ignores its planes until RESET: inserting into it
  // would be lost work.  The recovery sweep (or the probe path) resets
  // it first; this session retries on a later iteration.
  if (ctx.unit->fault_pending()) co_return;

  if (is_posted) {
    // Turn header replication on BEFORE anything can be inserted, so
    // every packet delivered from this instant carries a probe (the
    // rx-empty gate in the caller covers everything delivered earlier).
    posted_probe_enabled_ = true;
    posted_degraded_ = false;  // re-shadowing ends any fallback episode
  }

  ++stats_.alpu_insert_sessions;

  // START INSERT (one bus write).
  TimePs t = config_.bus_ps + instr(config_.costs.alpu_cmd_cycles);
  stats_.firmware_busy += t;
  co_await sim::delay(eng, t);
  if (!ctx.unit->push_command(hw::Command{hw::CommandKind::kStartInsert,
                                          0, 0, 0})) {
    co_return;  // command FIFO full; retry next loop iteration
  }

  // Drain the result FIFO until START ACKNOWLEDGE; anything else is a
  // match result for a packet still queued behind us (Section IV-C).
  std::uint32_t granted = 0;
  bool stale_failure = false;
  for (;;) {
    const TimePs poll =
        config_.bus_ps + instr(config_.costs.alpu_poll_cycles);
    stats_.firmware_busy += poll;
    co_await sim::delay(eng, poll);
    auto r = ctx.unit->pop_result();
    if (!r.has_value()) continue;
    if (r->kind == hw::ResponseKind::kStartAck) {
      granted = r->free_slots;
      break;
    }
    // A failure that slipped in between our emptiness check and the
    // unit entering insert mode would be stale once we insert: its
    // packet must re-search against the entries this session would add.
    // Abort the session; the packet is processed first, then we retry.
    // A PARITY FAULT aborts for the same reason with more force: the
    // unit quarantined itself, so the session's inserts would be lost —
    // the packet's consumer runs the scrub-and-rebuild path first.
    if (r->kind == hw::ResponseKind::kMatchFailure ||
        r->kind == hw::ResponseKind::kParityFault) {
      stale_failure = true;
    }
    ctx.drained.push_back(*r);
  }
  if (is_posted && stale_failure) {
    const TimePs t2 = config_.bus_ps + instr(config_.costs.alpu_cmd_cycles);
    stats_.firmware_busy += t2;
    co_await sim::delay(eng, t2);
    const bool ok_stop = ctx.unit->push_command(
        hw::Command{hw::CommandKind::kStopInsert, 0, 0, 0});
    ALPU_ASSERT(ok_stop, "command FIFO overflow on abort STOP INSERT");
    (void)ok_stop;
    co_return;
  }

  const std::size_t batch = std::min({pending,
                                      static_cast<std::size_t>(granted),
                                      config_.alpu_policy.max_batch});
  ALPU_LOGF(LogLevel::kTrace, engine().now(), name(),
               "alpu insert session ({}): pending={} granted={} batch={}",
               is_posted ? "posted" : "unexpected", pending, granted, batch);
  for (std::size_t i = 0; i < batch; ++i) {
    // An INSERT carries match bits (+ mask for the posted flavour) and
    // the tag: two bus writes.
    const TimePs w = 2 * config_.bus_ps + instr(config_.costs.alpu_cmd_cycles);
    stats_.firmware_busy += w;
    co_await sim::delay(eng, w);
    hw::Command cmd;
    cmd.kind = hw::CommandKind::kInsert;
    if (is_posted) {
      const match::PostedEntry& e = posted_.at(ctx.synced + i);
      cmd.bits = e.pattern.bits;
      cmd.mask = e.pattern.mask;
      cmd.cookie = e.cookie;
    } else {
      const match::UnexpectedEntry& e = unexpected_.at(ctx.synced + i);
      cmd.bits = e.word;
      cmd.mask = 0;
      cmd.cookie = e.cookie;
    }
    const bool ok = ctx.unit->push_command(cmd);
    ALPU_ASSERT(ok, "command FIFO overflow during granted insert batch");
    (void)ok;
    ++stats_.alpu_entries_inserted;
    // Periodically clear successful matches so the result FIFO cannot
    // fill while we hold the unit in insert mode.
    while (ctx.unit->result_available()) {
      const TimePs poll =
          config_.bus_ps + instr(config_.costs.alpu_poll_cycles);
      stats_.firmware_busy += poll;
      co_await sim::delay(eng, poll);
      auto r = ctx.unit->pop_result();
      if (r.has_value()) ctx.drained.push_back(*r);
    }
  }
  ctx.synced += batch;

  // STOP INSERT.
  t = config_.bus_ps + instr(config_.costs.alpu_cmd_cycles);
  stats_.firmware_busy += t;
  co_await sim::delay(eng, t);
  const bool ok = ctx.unit->push_command(
      hw::Command{hw::CommandKind::kStopInsert, 0, 0, 0});
  ALPU_ASSERT(ok, "command FIFO overflow on STOP INSERT");
  (void)ok;

  // A completed re-shadow session after a parity-triggered reset closes
  // the scrub-and-rebuild episode.
  if (ctx.rebuild_pending) {
    ctx.rebuild_pending = false;
    ++stats_.rebuilds;
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation (header-FIFO back-pressure)
// ---------------------------------------------------------------------------

sim::Process Nic::degrade_alpu(AlpuCtx& ctx, bool is_posted, bool parity) {
  auto& eng = engine();
  if (parity) {
    // Scrub-and-rebuild: responses drained before the fault latched were
    // parity-verified at their own match time (detection precedes every
    // result), so they stay deliverable.  Their entries are no longer
    // shadowed once `synced` resets below, so flag them to waive the
    // synced-prefix check when they are consumed.
    ctx.stale_ok = ctx.drained.size();
    ctx.fault_reset_issued = true;
  } else {
    // Every probed packet ahead of the trigger has already consumed its
    // response (rx order == probe order), so nothing drained is pending.
    ALPU_DEBUG_ASSERT(ctx.drained.empty(),
                      "degrading an ALPU with undrained responses");
  }
  ++stats_.alpu_fallback_resets;
  if (is_posted) {
    posted_probe_enabled_ = false;  // idempotent: rejection cleared it
    posted_degraded_ = true;
  }
  ALPU_LOGF(LogLevel::kDebug, eng.now(), name(),
               "alpu fallback ({}): resetting unit, synced={} forgotten",
               is_posted ? "posted" : "unexpected", ctx.synced);
  // RESET is honoured from Read Command and the command FIFO is serviced
  // in order, so any in-flight session commands land first.  Spin at bus
  // cost while the FIFO is full.
  for (;;) {
    const TimePs t = config_.bus_ps + instr(config_.costs.alpu_cmd_cycles);
    stats_.firmware_busy += t;
    co_await sim::delay(eng, t);
    if (ctx.unit->push_command(hw::Command{hw::CommandKind::kReset, 0, 0, 0}))
      break;
  }
  // The software lists remain authoritative; forget the shadow copy.
  ctx.synced = 0;
  if (parity) {
    // The episode completes with a re-shadow (Action 4); when there is
    // nothing to re-shadow, the RESET alone restores the unit.
    if ((is_posted ? posted_.size() : unexpected_.size()) == 0) {
      ++stats_.rebuilds;
    } else {
      ctx.rebuild_pending = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Incoming packets
// ---------------------------------------------------------------------------

sim::Process Nic::handle_packet(RxItem item) {
  auto& eng = engine();
  const net::Packet& p = item.packet;
  TimePs t = instr(config_.costs.parse_packet_cycles);

  switch (p.kind) {
    case net::PacketKind::kEager:
    case net::PacketKind::kRtsRendezvous: {
      if (p.kind == net::PacketKind::kEager) {
        ++stats_.eager_rx;
      } else {
        ++stats_.rendezvous_rx;
      }
      ++stats_.posted_searches;

      // Resolve the admission-time pledge, if any (posted-match bypass;
      // see try_admit).  Cookie 0 is never allocated, so it is a safe
      // "no pledge" sentinel for the promise-aware searches below.
      MatchPromise promise{};
      bool has_promise = false;
      if (const MatchPromise* pr = match_promises_.find(promise_key(p))) {
        promise = *pr;
        has_promise = true;
      }

      bool matched = false;
      match::Cookie cookie = 0;

      if (posted_ctx_.has_value() && item.probe_seq.has_value()) {
        stats_.firmware_busy += t;
        co_await sim::delay(eng, t);
        t = 0;
        hw::Response r;
        co_await read_match_result(*posted_ctx_, *item.probe_seq, &r);
        if (r.kind == hw::ResponseKind::kMatchSuccess) {
          ++stats_.alpu_posted_hits;
          matched = true;
          cookie = r.cookie;
          // The cookie points straight at the entry: one state-line
          // touch, no list walk.  Stale (pre-parity-reset) responses are
          // still valid matches but their entries are no longer shadowed.
          const std::size_t index = posted_index_of(cookie);
          ALPU_ASSERT(posted_ctx_->last_from_stale ||
                          index < posted_ctx_->synced,
                      "ALPU matched an entry outside its synced prefix");
          t += erase_cost(posted_info_.at(cookie).state_line);
          erase_posted(index);
        } else {
          if (r.kind == hw::ResponseKind::kParityFault) {
            // The unit quarantined itself on a parity mismatch: its
            // answer for this probe is unusable.  Reset it (scrub-and-
            // rebuild) unless a reset is already queued or has already
            // landed, then fall back to a full software walk — after the
            // reset `synced` is 0, so the search-from-synced below
            // covers the whole list.
            if (posted_ctx_->unit->fault_pending() &&
                !posted_ctx_->fault_reset_issued) {
              stats_.firmware_busy += t;
              co_await sim::delay(eng, t);
              t = 0;
              co_await degrade_alpu(*posted_ctx_, /*is_posted=*/true,
                                    /*parity=*/true);
            }
            ++stats_.alpu_fallback_searches;
          } else {
            ++stats_.alpu_posted_misses;
          }
          // Search the portion not yet loaded into the ALPU.
          const auto res = posted_search_from(posted_ctx_->synced,
                                              p.match_bits, promise.cookie);
          t += walk_cost_posted(posted_ctx_->synced, res.visited);
          if (res.found) {
            matched = true;
            cookie = res.cookie;
            t += erase_cost(posted_info_.at(cookie).state_line);
            erase_posted(res.index);
          }
        }
      } else {
        if (posted_ctx_.has_value() && posted_ctx_->synced > 0) {
          // An un-probed packet reached the head while the unit still
          // holds entries: header-FIFO back-pressure rejected its probe
          // (on_network_delivery).  The full software walk below would
          // erase entries the hardware still holds, so reset the unit
          // first and run degraded until Action 4 re-shadows the queue.
          stats_.firmware_busy += t;
          co_await sim::delay(eng, t);
          t = 0;
          co_await degrade_alpu(*posted_ctx_, /*is_posted=*/true);
        }
        if (posted_degraded_) ++stats_.alpu_fallback_searches;
        // Baseline (or degraded): walk the full posted queue.
        const auto res = posted_search_from(0, p.match_bits, promise.cookie);
        t += walk_cost_posted(0, res.visited);
        if (res.found) {
          matched = true;
          cookie = res.cookie;
          t += erase_cost(posted_info_.at(cookie).state_line);
          erase_posted(res.index);
        }
      }

      // Retire the pledge now that matching has resolved.  If the
      // firmware matched a different entry than the pledged one (the
      // pledged entry was consumed through a path the pledge tables do
      // not cover), releasing the stale pledge makes that entry
      // matchable again — the scheme self-heals.
      if (has_promise) {
        match_promises_.erase(promise_key(p));
        if (promise.cookie != 0) promised_posted_.erase(promise.cookie);
        if (!matched && !promise.reserved) {
          // Safety valve: a bypass-admitted packet whose pledged entry
          // vanished lands in the unexpected queue, which must hold a
          // reservation.  Forced (non-enforcing) reserve keeps the
          // occupancy accounting honest even if it transiently
          // overshoots the budget.
          reserve_eager(p, /*enforce=*/false);
        }
      }
      const bool budget_reserved = !has_promise || promise.reserved;

      ALPU_LOGF(LogLevel::kDebug, engine().now(), name(),
                   "rx {} from {}: {}", match::to_string(
                       match::unpack(p.match_bits)),
                   p.src, matched ? "matched" : "unexpected");
      if (matched) {
        co_await deliver_to_posted(cookie, p, t, budget_reserved);
      } else {
        // Append to the unexpected queue.
        const EntryAddrs addrs = alloc_entry();
        const match::Cookie ck = next_cookie_++;
        unexpected_.append(
            match::UnexpectedEntry{p.match_bits, ck, addrs.match_line});
        unexpected_info_[ck] = UnexpectedInfo{p.kind, p.payload_bytes,
                                              p.token, p.src,
                                              addrs.state_line};
        ++stats_.unexpected_appends;
        stats_.unexpected_depth_peak = std::max<std::uint64_t>(
            stats_.unexpected_depth_peak, unexpected_.size());
        t += append_cost(addrs);
        stats_.firmware_busy += t;
        co_await sim::delay(eng, t);
      }
      co_return;
    }

    case net::PacketKind::kCtsRendezvous: {
      // Sender side: our RTS was matched; stream the payload.
      const RdvzSendState* found = rdvz_send_.find(p.token);
      ALPU_ASSERT(found != nullptr, "CTS with unknown token");
      const RdvzSendState st = *found;
      rdvz_send_.erase(p.token);
      t += instr(config_.costs.rendezvous_cycles);
      stats_.firmware_busy += t;
      co_await sim::delay(eng, t);
      tx_dma_.request(st.bytes, [this, st, token = p.token] {
        // Cut-through injection at DMA completion (as for eager sends).
        net::Packet data;
        data.src = node_;
        data.dst = st.dst;
        data.kind = net::PacketKind::kRendezvousData;
        data.payload_bytes = st.bytes;
        data.token = token;
        reliability_.send(data);
        ++stats_.packets_tx;
        enqueue_advance([this, st] {
          complete(Completion{st.req_id, st.bytes, 0});
        });
      });
      co_return;
    }

    case net::PacketKind::kRendezvousData: {
      // Receiver side: the bulk payload for an earlier CTS.
      const RdvzRecvState* found = rdvz_recv_.find(p.token);
      ALPU_ASSERT(found != nullptr, "DATA with unknown token");
      const RdvzRecvState st = *found;
      rdvz_recv_.erase(p.token);
      t += instr(config_.costs.rendezvous_cycles);
      stats_.firmware_busy += t;
      co_await sim::delay(eng, t);
      const std::uint32_t bytes = std::min(p.payload_bytes, st.max_bytes);
      rx_dma_.request(bytes, [this, st, bytes, bits = st.match_bits] {
        enqueue_advance([this, st, bytes, bits] {
          complete(Completion{st.req_id, bytes, bits});
        });
      });
      co_return;
    }

    case net::PacketKind::kAck:
    case net::PacketKind::kRnrNack:
      ALPU_CHECK_FAIL("reliability control packet reached the firmware");
  }
}

sim::Process Nic::deliver_to_posted(match::Cookie cookie,
                                    const net::Packet& packet,
                                    TimePs accrued, bool budget_reserved) {
  auto& eng = engine();
  const PostedInfo* found = posted_info_.find(cookie);
  ALPU_ASSERT(found != nullptr, "posted cookie missing from the info map");
  const PostedInfo info = *found;
  posted_info_.erase(cookie);

  // Matched straight to a posted receive: the envelope slot frees now;
  // eager payload bytes stay pinned until the delivery DMA completes.
  // Bypass-admitted packets (posted-match bypass, try_admit) never
  // reserved, so there is nothing to release.
  if (budget_reserved) release_eager_slot();

  TimePs t = accrued + instr(config_.costs.delivery_setup_cycles);

  if (packet.kind == net::PacketKind::kEager) {
    const std::uint32_t bytes =
        std::min(packet.payload_bytes, info.max_bytes);
    stats_.firmware_busy += t;
    co_await sim::delay(eng, t);
    rx_dma_.request(bytes, [this, info, bytes, bits = packet.match_bits,
                            pinned = packet.payload_bytes, budget_reserved] {
      if (budget_reserved) release_eager_bytes(pinned);
      enqueue_advance([this, info, bytes, bits] {
        complete(Completion{info.req_id, bytes, bits});
      });
    });
    co_return;
  }

  // Rendezvous RTS matched a posted receive: reply CTS and wait for data.
  ALPU_ASSERT(packet.kind == net::PacketKind::kRtsRendezvous,
              "non-rendezvous packet on the rendezvous path");
  t += instr(config_.costs.rendezvous_cycles);
  rdvz_recv_[packet.token] = RdvzRecvState{info.buffer, info.max_bytes,
                                           info.req_id, packet.match_bits};
  stats_.firmware_busy += t;
  co_await sim::delay(eng, t);
  net::Packet cts;
  cts.src = node_;
  cts.dst = packet.src;
  cts.kind = net::PacketKind::kCtsRendezvous;
  cts.token = packet.token;
  reliability_.send(cts);
  ++stats_.packets_tx;
}

// ---------------------------------------------------------------------------
// Host requests
// ---------------------------------------------------------------------------

void Nic::inject_matchable(const net::Packet& packet, std::uint64_t ticket) {
  TxOrder& ord = tx_order_[packet.dst];
  if (ticket != ord.due) {
    // Sorted insert by ticket (the parked set is the handful of legs in
    // flight toward one peer, so the shift is short).  The vector keeps
    // its capacity across releases; count the rare growth.
    const std::size_t old_cap = ord.parked.capacity();
    const auto it = std::lower_bound(
        ord.parked.begin(), ord.parked.end(), ticket,
        [](const std::pair<std::uint64_t, net::Packet>& held,
           std::uint64_t t) { return held.first < t; });
    ord.parked.emplace(it, ticket, packet);
    if (ord.parked.capacity() != old_cap) {
      ++stats_.control_allocs;
      stats_.control_bytes +=
          ord.parked.capacity() * sizeof(ord.parked.front());
    }
    return;
  }
  reliability_.send(packet);
  ++stats_.packets_tx;
  // Release the consecutive run of parked successors (a sorted prefix).
  std::uint64_t due = ticket + 1;
  std::size_t released = 0;
  while (released < ord.parked.size() &&
         ord.parked[released].first == due) {
    reliability_.send(ord.parked[released].second);
    ++stats_.packets_tx;
    ++due;
    ++released;
  }
  if (released > 0) {
    // Front-erase keeps the reserved capacity: no allocation.
    ord.parked.erase(ord.parked.begin(),
                     ord.parked.begin() +
                         static_cast<std::ptrdiff_t>(released));
  }
  ord.due = due;
}

sim::Process Nic::handle_request(HostRequest request) {
  auto& eng = engine();

  if (request.kind == RequestKind::kSend) {
    TimePs t = instr(config_.costs.send_setup_cycles);
    // Matching order at the receiver must follow request order here, so
    // both eager and rendezvous legs draw their wire-order ticket while
    // the firmware still holds the request (inject_matchable).
    const std::uint64_t ticket = tx_order_[request.dst].next++;
    const bool demoted = peer_demoted(request.dst);
    if (demoted && request.send_bytes <= config_.eager_threshold) {
      // Repeat RNR refusals from this peer: route even small sends
      // through rendezvous, whose DATA leg lands in a posted host
      // buffer and is never admission-refused — guaranteed progress.
      ++stats_.demoted_sends;
    }
    if (request.send_bytes <= config_.eager_threshold && !demoted) {
      stats_.firmware_busy += t;
      co_await sim::delay(eng, t);
      // Pull the payload from host memory.  The Tx path is cut-through
      // hardware: the packet enters the wire straight from the DMA
      // completion (the firmware staged the descriptor above and is free
      // to do other work); only the host completion record needs the
      // processor again.  An eager send is complete once the data has
      // left the host buffer.
      tx_dma_.request(request.send_bytes, [this, request, ticket] {
        net::Packet pkt;
        pkt.src = node_;
        pkt.dst = request.dst;
        pkt.kind = net::PacketKind::kEager;
        pkt.match_bits = match::pack(request.envelope);
        pkt.payload_bytes = request.send_bytes;
        inject_matchable(pkt, ticket);
        enqueue_advance([this, request] {
          complete(Completion{request.req_id, request.send_bytes, 0});
        });
      });
      co_return;
    }
    // Rendezvous: send the RTS header now; data moves on CTS.
    const std::uint64_t token =
        (static_cast<std::uint64_t>(node_) << 40) | next_token_++;
    rdvz_send_[token] = RdvzSendState{request.send_buffer,
                                      request.send_bytes, request.req_id,
                                      request.dst};
    t += instr(config_.costs.rendezvous_cycles);
    stats_.firmware_busy += t;
    co_await sim::delay(eng, t);
    net::Packet rts;
    rts.src = node_;
    rts.dst = request.dst;
    rts.kind = net::PacketKind::kRtsRendezvous;
    rts.match_bits = match::pack(request.envelope);
    rts.payload_bytes = request.send_bytes;
    rts.token = token;
    inject_matchable(rts, ticket);
    co_return;
  }

  // ---- post receive ----
  ALPU_ASSERT(request.kind == RequestKind::kPostRecv,
              "non-post-recv request on the post-recv path");
  ++stats_.unexpected_searches;
  TimePs t = instr(config_.costs.post_recv_cycles);

  bool matched = false;
  match::Cookie cookie = 0;

  bool use_alpu = unexpected_ctx_.has_value() && unexpected_ctx_->synced > 0;
  if (use_alpu) {
    // Feed the receive to the unexpected-message ALPU as a probe (one
    // bus write carrying bits + mask), then collect the verdict.  An
    // empty unit is skipped entirely — the probing overhead would buy
    // nothing (the Section IV-B "only use it when adequately long"
    // heuristic applied on the probe side).
    const std::uint64_t seq = unexpected_ctx_->next_probe_seq++;
    t += config_.bus_ps + instr(config_.costs.alpu_cmd_cycles);
    stats_.firmware_busy += t;
    co_await sim::delay(eng, t);
    t = 0;
    const hw::Probe probe{request.pattern.bits, request.pattern.mask, seq};
    bool pushed = unexpected_ctx_->unit->push_probe(probe);
    // Firmware pacing keeps at most one unexpected probe outstanding, so
    // a sanely-sized header FIFO never refuses one; a refusal means a
    // hostile configuration (depth-1 FIFOs in robustness tests).  The
    // probe left no trace in the unit, so it is simply re-offered after
    // a bus-paced poll (ProtocolSpec op kProbeRejected), and after a
    // bounded number of refusals the firmware gives up on the unit.
    for (unsigned retry = 0; !pushed && retry < 8; ++retry) {
      ++stats_.alpu_probe_retries;
      const TimePs w = config_.bus_ps + instr(config_.costs.alpu_poll_cycles);
      stats_.firmware_busy += w;
      co_await sim::delay(eng, w);
      pushed = unexpected_ctx_->unit->push_probe(probe);
    }
    if (pushed) {
      hw::Response r;
      co_await read_match_result(*unexpected_ctx_, seq, &r);
      if (r.kind == hw::ResponseKind::kMatchSuccess) {
        ++stats_.alpu_unexpected_hits;
        matched = true;
        cookie = r.cookie;
        ALPU_ASSERT(unexpected_ctx_->last_from_stale ||
                        unexpected_index_of(cookie) < unexpected_ctx_->synced,
                    "ALPU hit on an entry never synced into the unit");
        t += erase_cost(unexpected_info_.at(cookie).state_line);
        // Delivery below erases via deliver_from_unexpected.
      } else {
        if (r.kind == hw::ResponseKind::kParityFault) {
          // Parity fault: reset the quarantined unit (scrub-and-rebuild)
          // and fall back to software for this receive.  `synced` is 0
          // after the reset, so search-from-synced is the full walk.
          if (unexpected_ctx_->unit->fault_pending() &&
              !unexpected_ctx_->fault_reset_issued) {
            stats_.firmware_busy += t;
            co_await sim::delay(eng, t);
            t = 0;
            co_await degrade_alpu(*unexpected_ctx_, /*is_posted=*/false,
                                  /*parity=*/true);
          }
          ++stats_.alpu_fallback_searches;
        } else {
          ++stats_.alpu_unexpected_misses;
        }
        const auto res = unexpected_.search_from(unexpected_ctx_->synced,
                                                 request.pattern);
        t += walk_cost_unexpected(unexpected_ctx_->synced, res.visited);
        if (res.found) {
          matched = true;
          cookie = res.cookie;
          t += erase_cost(unexpected_info_.at(cookie).state_line);
        }
      }
    } else {
      // Retries exhausted: fall back to pure software for this unit.
      ++stats_.alpu_probe_rejections;
      co_await degrade_alpu(*unexpected_ctx_, /*is_posted=*/false);
      ++stats_.alpu_fallback_searches;
      use_alpu = false;
    }
  }
  if (!use_alpu) {
    // Baseline, or the ALPU holds nothing: full software search.
    const auto res = unexpected_.search(request.pattern);
    t += walk_cost_unexpected(0, res.visited);
    if (res.found) {
      matched = true;
      cookie = res.cookie;
      t += erase_cost(unexpected_info_.at(cookie).state_line);
    }
  }

  ALPU_LOGF(LogLevel::kDebug, engine().now(), name(),
               "post recv {}: {}", match::to_string(request.pattern),
               matched ? "matched unexpected" : "queued");
  if (matched) {
    co_await deliver_from_unexpected(cookie, request, t);
    co_return;
  }

  // No unexpected match: append to the posted-receive queue.  The search
  // plus append is atomic with respect to arrivals because the firmware
  // is single-threaded (the paper's required atomicity).
  const EntryAddrs addrs = alloc_entry();
  const match::Cookie ck = next_cookie_++;
  posted_.append(match::PostedEntry{request.pattern, ck, addrs.match_line});
  posted_info_[ck] = PostedInfo{request.recv_buffer, request.recv_max_bytes,
                                request.req_id, addrs.state_line};
  // Posted-match bypass bookkeeping (try_admit): packets admitted before
  // this receive was posted but not yet matched sit in rx_fifo_, and the
  // firmware will match them before any later arrival.  Pledge the new
  // entry to the first of them that matches so a newer packet's
  // admission probe cannot claim it out of order.
  if (budget_limited() && reliability_.enabled()) {
    for (const RxItem& pending : rx_fifo_) {
      const net::Packet& q = pending.packet;
      if (q.kind != net::PacketKind::kEager &&
          q.kind != net::PacketKind::kRtsRendezvous) {
        continue;
      }
      if (!request.pattern.matches(q.match_bits)) continue;
      MatchPromise* mp = match_promises_.find(promise_key(q));
      ALPU_DEBUG_ASSERT(mp != nullptr,
                        "admitted packet missing its pledge record");
      if (mp == nullptr || mp->cookie != 0) continue;
      mp->cookie = ck;
      promised_posted_[ck] = 1;
      break;
    }
  }
  ++stats_.posted_appends;
  t += append_cost(addrs);
  stats_.firmware_busy += t;
  co_await sim::delay(eng, t);
}

sim::Process Nic::deliver_from_unexpected(match::Cookie cookie,
                                          const HostRequest& request,
                                          TimePs accrued) {
  auto& eng = engine();
  const std::size_t index = unexpected_index_of(cookie);
  const UnexpectedInfo* found = unexpected_info_.find(cookie);
  ALPU_ASSERT(found != nullptr,
              "unexpected cookie missing from the info map");
  const UnexpectedInfo info = *found;
  const match::MatchWord bits = unexpected_.at(index).word;
  erase_unexpected(index);

  TimePs t = accrued + instr(config_.costs.delivery_setup_cycles);

  if (info.kind == net::PacketKind::kEager) {
    // The payload was buffered in NIC memory on arrival; stream it to
    // the host buffer now.
    const std::uint32_t bytes = std::min(info.bytes, request.recv_max_bytes);
    stats_.firmware_busy += t;
    co_await sim::delay(eng, t);
    rx_dma_.request(bytes, [this, request, bytes, bits,
                            pinned = info.bytes] {
      release_eager_bytes(pinned);
      enqueue_advance([this, request, bytes, bits] {
        complete(Completion{request.req_id, bytes, bits});
      });
    });
    co_return;
  }

  // A buffered RTS: reply CTS now that a receive is posted.
  ALPU_ASSERT(info.kind == net::PacketKind::kRtsRendezvous,
              "non-rendezvous unexpected entry on the rendezvous path");
  t += instr(config_.costs.rendezvous_cycles);
  rdvz_recv_[info.token] = RdvzRecvState{request.recv_buffer,
                                         request.recv_max_bytes,
                                         request.req_id, bits};
  stats_.firmware_busy += t;
  co_await sim::delay(eng, t);
  net::Packet cts;
  cts.src = node_;
  cts.dst = info.src;
  cts.kind = net::PacketKind::kCtsRendezvous;
  cts.token = info.token;
  reliability_.send(cts);
  ++stats_.packets_tx;
}

// ---------------------------------------------------------------------------
// Eager-resource budget (receiver admission + sender flow state)
// ---------------------------------------------------------------------------

bool Nic::reserve_eager(const net::Packet& packet, bool enforce) {
  const std::uint64_t bytes = packet.kind == net::PacketKind::kEager
                                  ? packet.payload_bytes
                                  : 0;  // RTS pins an envelope slot only
  if (enforce) {
    if (config_.unexpected_slots > 0 &&
        eager_slots_used_ + 1 > config_.unexpected_slots) {
      return false;
    }
    if (config_.eager_pool_bytes > 0 &&
        eager_pool_used_ + bytes > config_.eager_pool_bytes) {
      return false;
    }
  }
  eager_pool_used_ += bytes;
  ++eager_slots_used_;
  stats_.eager_pool_peak_bytes =
      std::max(stats_.eager_pool_peak_bytes, eager_pool_used_);
  stats_.unexpected_slots_peak = std::max<std::uint64_t>(
      stats_.unexpected_slots_peak, eager_slots_used_);
  return true;
}

bool Nic::try_admit(const net::Packet& packet) {
  const bool reserved = reserve_eager(packet, /*enforce=*/true);
  // Posted-match bypass: pledge the first posted entry this packet
  // matches (skipping entries pledged to earlier in-flight packets).
  // This models the ALPU's line-rate posted-queue probe — the paper's
  // premise is exactly that this verdict is available at wire speed,
  // before any firmware runs.  Every admitted packet gets a pledge
  // record (cookie 0 when nothing matches yet) so the assignment stays
  // a faithful dry-run of firmware matching order: a later bypass
  // admission can never be promised an entry an earlier unprocessed
  // packet is about to consume, and a receive posted while packets sit
  // in rx_fifo_ is pledged to the first of them that matches it
  // (handle_request), never stolen by a newer arrival.
  match::Cookie pledged = 0;
  std::size_t from = 0;
  for (;;) {
    const match::SearchResult res = posted_.search_from(from,
                                                        packet.match_bits);
    if (!res.found) break;
    if (!promised_posted_.contains(res.cookie)) {
      pledged = res.cookie;
      break;
    }
    from = res.index + 1;
  }
  if (!reserved && pledged == 0) return false;
  if (pledged != 0) promised_posted_[pledged] = 1;
  match_promises_[promise_key(packet)] = MatchPromise{pledged, reserved};
  return true;
}

match::SearchResult Nic::posted_search_from(std::size_t first,
                                            match::MatchWord word,
                                            match::Cookie own_promise) const {
  std::size_t from = first;
  std::size_t visited = 0;
  for (;;) {
    match::SearchResult res = posted_.search_from(from, word);
    visited += res.visited;
    if (!res.found || res.cookie == own_promise ||
        !promised_posted_.contains(res.cookie)) {
      res.visited = visited;
      return res;
    }
    from = res.index + 1;
  }
}

std::uint64_t Nic::credit_bytes() const {
  if (config_.eager_pool_bytes == 0) return ~std::uint64_t{0};
  return config_.eager_pool_bytes - eager_pool_used_;
}

std::uint32_t Nic::credit_slots() const {
  if (config_.unexpected_slots == 0) return ~std::uint32_t{0};
  return config_.unexpected_slots - eager_slots_used_;
}

void Nic::release_eager_slot() {
  ALPU_DEBUG_ASSERT(eager_slots_used_ > 0, "eager slot double-release");
  --eager_slots_used_;
  if (budget_limited()) reliability_.notify_credit_released();
}

void Nic::release_eager_bytes(std::uint32_t bytes) {
  ALPU_DEBUG_ASSERT(eager_pool_used_ >= bytes, "eager pool double-release");
  eager_pool_used_ -= bytes;
  if (budget_limited()) reliability_.notify_credit_released();
}

bool Nic::peer_demoted(net::NodeId peer) const {
  const PeerFlow* flow = peer_flow_.find(peer);
  return flow != nullptr && flow->demoted;
}

void Nic::on_peer_rnr(net::NodeId peer, unsigned streak) {
  if (streak < config_.reliability.rnr_demote_after) return;
  PeerFlow& flow = peer_flow_[peer];
  if (flow.demoted) return;
  flow.demoted = true;
  ++stats_.rnr_demotions;
  ALPU_LOGF(LogLevel::kDebug, engine().now(), name(),
            "peer {} demoted to rendezvous after {} RNR refusals", peer,
            streak);
}

void Nic::on_peer_credit(net::NodeId peer, std::uint64_t bytes,
                         std::uint32_t slots) {
  PeerFlow* flow = peer_flow_.find(peer);
  if (flow == nullptr || !flow->demoted) return;
  // Re-promote once the peer advertises room for a full eager message:
  // anything less and the next small send would likely bounce again.
  if (slots >= 1 && bytes >= config_.eager_threshold) {
    flow->demoted = false;
    ++stats_.rnr_promotions;
  }
}

// ---------------------------------------------------------------------------
// Stall-watchdog introspection
// ---------------------------------------------------------------------------

bool Nic::undrained_work() const {
  // Quiescence (an empty event heap) with any of this pending means the
  // protocol wedged: no future event exists that could drain it.  Posted
  // and unexpected queue DEPTH is deliberately not in this list — idle
  // pre-posted receives or unconsumed unexpected messages at the end of
  // a run are legitimate workload outcomes, not stalls.
  std::size_t parked = 0;
  for (const TxOrder& ord : tx_order_) parked += ord.parked.size();
  return !rdvz_send_.empty() || !rdvz_recv_.empty() || parked > 0 ||
         !rx_fifo_.empty() || !host_fifo_.empty() ||
         !advance_fifo_.empty() || reliability_.undrained();
}

std::string Nic::stall_snapshot() const {
  std::size_t parked = 0;
  for (const TxOrder& ord : tx_order_) parked += ord.parked.size();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s: postedQ=%zu unexpectedQ=%zu pool=%llu/%llu slots=%u/%u "
      "rdvz{send=%zu recv=%zu} parked=%zu fifo{rx=%zu host=%zu adv=%zu} "
      "rel{window=%zu rnr_paused=%zu credit_owed=%zu failed_links=%llu}",
      name().c_str(), posted_.size(), unexpected_.size(),
      static_cast<unsigned long long>(eager_pool_used_),
      static_cast<unsigned long long>(config_.eager_pool_bytes),
      eager_slots_used_, config_.unexpected_slots, rdvz_send_.size(),
      rdvz_recv_.size(), parked, rx_fifo_.size(), host_fifo_.size(),
      advance_fifo_.size(), reliability_.total_window_packets(),
      reliability_.rnr_paused_windows(), reliability_.credit_owed_peers(),
      static_cast<unsigned long long>(
          reliability_.stats().link_failures));
  std::string out(buf);
  // Queue heads (src:tag), capped: enough to see who a wedged receiver
  // is holding state for without flooding the dump.
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t i = 0; i < unexpected_.size() && i < kMaxListed; ++i) {
    const match::Envelope env = match::unpack(unexpected_.at(i).word);
    std::snprintf(buf, sizeof(buf), "%s ux[%zu]=%u:%u",
                  i == 0 ? "\n    " : "", i, env.source, env.tag);
    out += buf;
  }
  for (std::size_t i = 0; i < posted_.size() && i < kMaxListed; ++i) {
    const match::Pattern& pat = posted_.at(i).pattern;
    const match::Envelope env = match::unpack(pat.bits);
    std::snprintf(buf, sizeof(buf), "%s post[%zu]=%u:%s",
                  i == 0 ? "\n    " : "", i, env.source,
                  pat.is_exact() ? std::to_string(env.tag).c_str() : "*");
    out += buf;
  }
  return out;
}

}  // namespace alpu::nic
