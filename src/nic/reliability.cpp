#include "nic/reliability.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace alpu::nic {

using common::LogLevel;
using common::TimePs;

// ---------------------------------------------------------------------------
// PacketRing
// ---------------------------------------------------------------------------

bool PacketRing::push_back(const net::Packet& p) {
  bool grew = false;
  if (size_ == slots_.size()) {
    grow(size_ + 1);
    grew = true;
  }
  slots_[(head_ + size_) & (slots_.size() - 1)] = p;
  ++size_;
  return grew;
}

void PacketRing::pop_front() {
  head_ = (head_ + 1) & (slots_.size() - 1);
  --size_;
}

void PacketRing::clear() {
  head_ = 0;
  size_ = 0;
}

void PacketRing::grow(std::size_t at_least) {
  std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
  while (cap < at_least) cap *= 2;
  std::vector<net::Packet> next(cap);
  for (std::size_t i = 0; i < size_; ++i) next[i] = at(i);
  slots_ = std::move(next);
  head_ = 0;
}

ReliabilityLayer::ReliabilityLayer(sim::Engine& engine, std::string name,
                                   const ReliabilityConfig& config,
                                   net::Network& network, net::NodeId node,
                                   DeliverUp deliver_up)
    : engine_(engine),
      name_(std::move(name)),
      config_(config),
      network_(network),
      node_(node),
      deliver_up_(std::move(deliver_up)) {
  ALPU_ASSERT(deliver_up_, "reliability layer needs an up-stack sink");
}

ReliabilityLayer::~ReliabilityLayer() {
  // Dead timers must not fire into a destroyed object (relevant only
  // when a Machine is torn down with events still pending).
  for (TxState& tx : tx_) cancel_timer(tx);
}

std::size_t ReliabilityLayer::window_size(net::NodeId peer) const {
  const TxState* tx = tx_.find(peer);
  return tx == nullptr ? 0 : tx->window.size();
}

std::size_t ReliabilityLayer::total_window_packets() const {
  std::size_t total = 0;
  for (const TxState& tx : tx_) total += tx.window.size();
  return total;
}

std::size_t ReliabilityLayer::rnr_paused_windows() const {
  std::size_t paused = 0;
  for (const TxState& tx : tx_) paused += tx.rnr_paused ? 1 : 0;
  return paused;
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

void ReliabilityLayer::send(net::Packet packet) {
  if (!config_.enabled) {
    network_.send(packet);
    return;
  }
  TxState& tx = tx_[packet.dst];
  if (tx.failed) {
    // The link was declared dead: discard instead of queueing forever.
    // The firmware's observable outcome is the link-failure status.
    ++stats_.sends_after_failure;
    return;
  }
  packet.reliable = true;
  packet.seq = tx.next_seq++;
  if (tx.window.push_back(packet)) ++stats_.buffer_allocs;
  ++stats_.data_tx;
  if (tx.rnr_paused) {
    // The peer refused our window: hold fresh traffic too (it would
    // only be parked in the receiver's reorder buffer).  The pending
    // RNR retry re-offers the whole window, this packet included.
    return;
  }
  network_.send(packet);
  if (!tx.timer_armed) arm_timer(packet.dst, tx);
}

void ReliabilityLayer::arm_timer(net::NodeId peer, TxState& tx) {
  ALPU_DEBUG_ASSERT(!tx.timer_armed, "double-armed retransmit timer");
  // Exponential backoff: double per consecutive no-progress timeout,
  // capped.  The shift bound keeps the arithmetic in range.
  const unsigned shift = std::min(tx.attempts, 20u);
  const TimePs timeout = std::min(config_.base_timeout_ps << shift,
                                  config_.max_timeout_ps);
  tx.timer = engine_.schedule_in(timeout, [this, peer] { on_timeout(peer); });
  tx.timer_armed = true;
}

void ReliabilityLayer::cancel_timer(TxState& tx) {
  if (tx.timer_armed) {
    engine_.cancel(tx.timer);
    tx.timer_armed = false;
  }
}

void ReliabilityLayer::fail_link(net::NodeId peer, TxState& tx,
                                 const char* why) {
  // Bounded retry exhausted: surface a link failure instead of
  // spinning forever (the engine drains; callers observe the status).
  tx.failed = true;
  tx.rnr_paused = false;
  ++stats_.link_failures;
  ALPU_LOGF(LogLevel::kInfo, engine_.now(), name_,
            "link to {} failed after {} {} ({} packets discarded)", peer,
            config_.max_retries, why, tx.window.size());
  tx.window.clear();
}

void ReliabilityLayer::retransmit_window(net::NodeId peer, TxState& tx) {
  // Go-back-N: retransmit every unacknowledged packet, in order.  The
  // pooled ring is iterated in place — retransmission storms touch no
  // allocator.
  for (std::size_t i = 0; i < tx.window.size(); ++i) {
    ++stats_.retransmits;
    network_.send(tx.window.at(i));
  }
  arm_timer(peer, tx);
}

void ReliabilityLayer::on_timeout(net::NodeId peer) {
  TxState& tx = tx_[peer];
  tx.timer_armed = false;
  if (tx.window.empty()) return;  // fully ACKed just before expiry
  ++tx.attempts;
  if (tx.attempts > config_.max_retries) {
    fail_link(peer, tx, "retries");
    return;
  }
  ++stats_.timeouts;
  retransmit_window(peer, tx);
}

void ReliabilityLayer::on_ack(const net::Packet& packet) {
  ++stats_.acks_rx;
  TxState& tx = tx_[packet.src];
  if (tx.failed) return;
  // Cumulative: ack_seq is the next sequence the receiver expects; all
  // window packets below it are done.  Sequence numbers on one link are
  // assigned monotonically and windows are far smaller than 2^31, so
  // plain comparison is safe against 32-bit wrap in any workload here.
  bool progressed = false;
  while (!tx.window.empty() && tx.window.front().seq < packet.ack_seq) {
    tx.window.pop_front();
    ++tx.base;
    progressed = true;
  }
  const bool credited = packet.credit_bytes > 0 || packet.credit_slots > 0;
  if (credited) {
    // A credit grant on a real ACK proves the receiver is draining:
    // reset the refusal streak so a slow-but-live receiver is never
    // declared failed, and let the Nic re-promote a demoted peer.
    tx.rnr_streak = 0;
    if (flow_.on_credit) {
      flow_.on_credit(packet.src, packet.credit_bytes, packet.credit_slots);
    }
  }
  if (progressed) {
    tx.attempts = 0;
    tx.rnr_streak = 0;
    cancel_timer(tx);
    if (tx.rnr_paused) {
      // The refused window moved after all (e.g. a partial admit):
      // resume immediately rather than waiting out the backoff.
      on_rnr_retry(packet.src);
    } else if (!tx.window.empty()) {
      arm_timer(packet.src, tx);
    }
    return;
  }
  if (tx.rnr_paused && credited && !tx.window.empty()) {
    // Explicit credit push while we hold a refused window: re-offer
    // immediately, even if the advertised budget looks too small for
    // our oldest packet — the rest of the release (slot at match time,
    // bytes at DMA completion) lands within microseconds, while waiting
    // out the doubled backoff costs milliseconds and lets the refusal
    // streak of every non-woken peer keep climbing.  A premature
    // re-offer is one cheap NACK round trip (the streak was just reset
    // by the credit, and the NACK re-enters us in the receiver's fair
    // credit queue).
    cancel_timer(tx);
    on_rnr_retry(packet.src);
  }
}

// ---------------------------------------------------------------------------
// Receiver-not-ready flow control
// ---------------------------------------------------------------------------

void ReliabilityLayer::on_rnr_nack(const net::Packet& packet) {
  ++stats_.rnr_nacks_rx;
  TxState& tx = tx_[packet.src];
  if (tx.failed) return;
  // The NACK is also a cumulative acknowledgement (deliveries admitted
  // before the refusal count as progress).
  bool progressed = false;
  while (!tx.window.empty() && tx.window.front().seq < packet.ack_seq) {
    tx.window.pop_front();
    ++tx.base;
    progressed = true;
  }
  if (progressed) {
    tx.attempts = 0;
    tx.rnr_streak = 0;
  }
  if (flow_.on_credit &&
      (packet.credit_bytes > 0 || packet.credit_slots > 0)) {
    // The NACK still advertises whatever budget is free (useful for
    // re-promotion decisions); it does NOT reset the refusal streak —
    // only a credit grant on a real ACK proves draining.
    flow_.on_credit(packet.src, packet.credit_bytes, packet.credit_slots);
  }
  if (tx.window.empty()) {
    // Everything we sent was admitted or acknowledged; nothing to hold.
    tx.rnr_paused = false;
    cancel_timer(tx);
    return;
  }
  ++tx.rnr_streak;
  if (tx.rnr_streak > config_.max_retries) {
    // Refused max_retries times without a single credit grant: the
    // receiver is wedged, not slow.  Same discipline as timeouts.
    cancel_timer(tx);
    fail_link(packet.src, tx, "RNR refusals");
    return;
  }
  if (flow_.on_rnr) flow_.on_rnr(packet.src, tx.rnr_streak);
  // Hold the window: the timer slot now carries the RNR retry, at the
  // receiver's hinted backoff doubled per consecutive refusal (capped).
  cancel_timer(tx);
  const std::uint64_t hint_us =
      packet.rnr_hint_us > 0 ? packet.rnr_hint_us : config_.rnr_hint_us;
  const unsigned shift = std::min(tx.rnr_streak - 1, 20u);
  const TimePs backoff = std::min<TimePs>(
      static_cast<TimePs>(hint_us * 1'000'000) << shift, config_.max_timeout_ps);
  const net::NodeId peer = packet.src;
  tx.timer = engine_.schedule_in(backoff, [this, peer] { on_rnr_retry(peer); });
  tx.timer_armed = true;
  tx.rnr_paused = true;
}

void ReliabilityLayer::on_rnr_retry(net::NodeId peer) {
  TxState& tx = tx_[peer];
  tx.timer_armed = false;
  tx.rnr_paused = false;
  if (tx.failed || tx.window.empty()) return;
  ++stats_.rnr_retries;
  retransmit_window(peer, tx);
}

void ReliabilityLayer::notify_credit_released() {
  if (credit_queue_.empty()) return;
  // Fair FIFO: one explicit credit-bearing ACK to the longest-waiting
  // refused peer per release.  Waking one peer per freed unit avoids
  // the thundering herd (N paused senders racing for one slot, N-1
  // collecting another refusal each).
  const net::NodeId peer = credit_queue_.front();
  credit_queue_.pop_front();
  RxState& rx = rx_[peer];
  rx.rnr_pending = false;
  ++stats_.credit_acks_tx;
  send_ack(peer, rx.expected);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

/// Only packet kinds that pin receiver-side eager resources are
/// admission-gated.  CTS and rendezvous DATA land in host buffers the
/// receiver already posted, and must never be refused — they are the
/// forward-progress escape hatch demotion relies on.
static bool needs_admission(const net::Packet& packet) {
  return packet.kind == net::PacketKind::kEager ||
         packet.kind == net::PacketKind::kRtsRendezvous;
}

void ReliabilityLayer::fill_credits(net::Packet& packet) const {
  if (admission_ == nullptr) return;  // unlimited: fields stay zero
  constexpr std::uint64_t kMaxBytes = 0xffff'ffffu;
  constexpr std::uint32_t kMaxSlots = 0xffffu;
  packet.credit_bytes =
      static_cast<std::uint32_t>(std::min(admission_->credit_bytes(), kMaxBytes));
  packet.credit_slots = static_cast<std::uint16_t>(
      std::min(admission_->credit_slots(), kMaxSlots));
}

void ReliabilityLayer::send_ack(net::NodeId peer, std::uint32_t ack_seq) {
  net::Packet ack;
  ack.src = node_;
  ack.dst = peer;
  ack.kind = net::PacketKind::kAck;
  ack.ack_seq = ack_seq;
  fill_credits(ack);
  ++stats_.acks_tx;
  network_.send(ack);
}

void ReliabilityLayer::send_rnr_nack(net::NodeId peer, RxState& rx) {
  net::Packet nack;
  nack.src = node_;
  nack.dst = peer;
  nack.kind = net::PacketKind::kRnrNack;
  nack.ack_seq = rx.expected;
  nack.rnr_hint_us = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(config_.rnr_hint_us, 0xffffu));
  fill_credits(nack);
  if (!rx.rnr_pending) {
    // Queue the peer for an explicit credit push when budget frees up.
    rx.rnr_pending = true;
    // lint: ok(unbounded-peer-growth) — rnr_pending is the membership
    // flag: at most one entry per peer, so the queue is bounded by the
    // node count.
    credit_queue_.push_back(peer);
  }
  ++stats_.rnr_nacks_tx;
  network_.send(nack);
}

void ReliabilityLayer::on_network_delivery(const net::Packet& packet) {
  if (!config_.enabled) {
    deliver_up_(packet);
    return;
  }
  if (!packet.crc_ok) {
    // Modeled link CRC failed: the payload cannot be trusted, including
    // its sequence number.  Drop; the sender's timeout recovers it.
    ++stats_.crc_drops;
    return;
  }
  if (packet.kind == net::PacketKind::kAck) {
    on_ack(packet);
    return;
  }
  if (packet.kind == net::PacketKind::kRnrNack) {
    on_rnr_nack(packet);
    return;
  }
  if (!packet.reliable) {
    deliver_up_(packet);  // raw traffic from an unsequenced sender
    return;
  }
  RxState& rx = rx_[packet.src];
  if (rx.held.capacity() < config_.reorder_window) {
    // One-time pool reservation per peer: after this, holding and
    // releasing out-of-order packets never touches the allocator.
    rx.held.reserve(config_.reorder_window);
    ++stats_.buffer_allocs;
  }
  if (packet.seq < rx.expected) {
    // Duplicate (retransmission of something already delivered).  The
    // re-ACK matters: if the original ACK was lost, only this stops the
    // sender from retransmitting until its retry bound declares the
    // link dead.
    ++stats_.dup_drops;
    send_ack(packet.src, rx.expected);
    return;
  }
  if (packet.seq > rx.expected) {
    // Out of order: hold within the bounded buffer, or drop beyond it
    // (go-back-N retransmission refills the gap either way).  The hold
    // is a sorted insert into the reserved vector — capacity never
    // grows, since size is bounded by the reserved reorder_window.
    const auto it = std::lower_bound(
        rx.held.begin(), rx.held.end(), packet.seq,
        [](const std::pair<std::uint32_t, net::Packet>& held,
           std::uint32_t seq) { return held.first < seq; });
    if (rx.held.size() < config_.reorder_window &&
        (it == rx.held.end() || it->first != packet.seq)) {
      rx.held.emplace(it, packet.seq, packet);
      ++stats_.ooo_buffered;
    } else {
      ++stats_.ooo_dropped;
    }
    return;
  }
  // In sequence: admission-check, deliver, then release any
  // directly-following held packets (a sorted prefix of `held`), then
  // ACK — or NACK — the new cumulative horizon once.
  if (admission_ != nullptr && needs_admission(packet) &&
      !admission_->try_admit(packet)) {
    // Refused: `expected` does NOT advance, so the sender's go-back-N
    // window naturally re-offers this packet on retry.
    send_rnr_nack(packet.src, rx);
    return;
  }
  deliver_up_(packet);
  ++stats_.delivered;
  ++rx.expected;
  std::size_t released = 0;
  bool refused_held = false;
  while (released < rx.held.size() &&
         rx.held[released].first == rx.expected) {
    const net::Packet& next = rx.held[released].second;
    if (admission_ != nullptr && needs_admission(next) &&
        !admission_->try_admit(next)) {
      // The refused packet must leave `held` too: its sequence equals
      // the (now stalled) expected horizon, and a held entry at that
      // seq would otherwise pin reorder-buffer space forever — the
      // retransmitted copy arrives through the in-sequence path above.
      refused_held = true;
      ++released;
      break;
    }
    deliver_up_(next);
    ++stats_.delivered;
    ++rx.expected;
    ++released;
  }
  // Front-erase keeps the reserved capacity: no allocation.
  if (released > 0) {
    rx.held.erase(rx.held.begin(),
                  rx.held.begin() + static_cast<std::ptrdiff_t>(released));
  }
  if (refused_held) {
    send_rnr_nack(packet.src, rx);
  } else {
    send_ack(packet.src, rx.expected);
  }
}

}  // namespace alpu::nic
