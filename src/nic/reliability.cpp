#include "nic/reliability.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace alpu::nic {

using common::LogLevel;
using common::TimePs;

// ---------------------------------------------------------------------------
// PacketRing
// ---------------------------------------------------------------------------

bool PacketRing::push_back(const net::Packet& p) {
  bool grew = false;
  if (size_ == slots_.size()) {
    grow(size_ + 1);
    grew = true;
  }
  slots_[(head_ + size_) & (slots_.size() - 1)] = p;
  ++size_;
  return grew;
}

void PacketRing::pop_front() {
  head_ = (head_ + 1) & (slots_.size() - 1);
  --size_;
}

void PacketRing::clear() {
  head_ = 0;
  size_ = 0;
}

void PacketRing::grow(std::size_t at_least) {
  std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
  while (cap < at_least) cap *= 2;
  std::vector<net::Packet> next(cap);
  for (std::size_t i = 0; i < size_; ++i) next[i] = at(i);
  slots_ = std::move(next);
  head_ = 0;
}

ReliabilityLayer::ReliabilityLayer(sim::Engine& engine, std::string name,
                                   const ReliabilityConfig& config,
                                   net::Network& network, net::NodeId node,
                                   DeliverUp deliver_up)
    : engine_(engine),
      name_(std::move(name)),
      config_(config),
      network_(network),
      node_(node),
      deliver_up_(std::move(deliver_up)) {
  ALPU_ASSERT(deliver_up_, "reliability layer needs an up-stack sink");
}

ReliabilityLayer::~ReliabilityLayer() {
  // Dead timers must not fire into a destroyed object (relevant only
  // when a Machine is torn down with events still pending).
  for (TxState& tx : tx_) cancel_timer(tx);
}

std::size_t ReliabilityLayer::window_size(net::NodeId peer) const {
  const TxState* tx = tx_.find(peer);
  return tx == nullptr ? 0 : tx->window.size();
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

void ReliabilityLayer::send(net::Packet packet) {
  if (!config_.enabled) {
    network_.send(packet);
    return;
  }
  TxState& tx = tx_[packet.dst];
  if (tx.failed) {
    // The link was declared dead: discard instead of queueing forever.
    // The firmware's observable outcome is the link-failure status.
    ++stats_.sends_after_failure;
    return;
  }
  packet.reliable = true;
  packet.seq = tx.next_seq++;
  if (tx.window.push_back(packet)) ++stats_.buffer_allocs;
  ++stats_.data_tx;
  network_.send(packet);
  if (!tx.timer_armed) arm_timer(packet.dst, tx);
}

void ReliabilityLayer::arm_timer(net::NodeId peer, TxState& tx) {
  ALPU_DEBUG_ASSERT(!tx.timer_armed, "double-armed retransmit timer");
  // Exponential backoff: double per consecutive no-progress timeout,
  // capped.  The shift bound keeps the arithmetic in range.
  const unsigned shift = std::min(tx.attempts, 20u);
  const TimePs timeout = std::min(config_.base_timeout_ps << shift,
                                  config_.max_timeout_ps);
  tx.timer = engine_.schedule_in(timeout, [this, peer] { on_timeout(peer); });
  tx.timer_armed = true;
}

void ReliabilityLayer::cancel_timer(TxState& tx) {
  if (tx.timer_armed) {
    engine_.cancel(tx.timer);
    tx.timer_armed = false;
  }
}

void ReliabilityLayer::on_timeout(net::NodeId peer) {
  TxState& tx = tx_[peer];
  tx.timer_armed = false;
  if (tx.window.empty()) return;  // fully ACKed just before expiry
  ++tx.attempts;
  if (tx.attempts > config_.max_retries) {
    // Bounded retry exhausted: surface a link failure instead of
    // spinning forever (the engine drains; callers observe the status).
    tx.failed = true;
    ++stats_.link_failures;
    ALPU_LOGF(LogLevel::kInfo, engine_.now(), name_,
                 "link to {} failed after {} retries ({} packets discarded)",
                 peer, config_.max_retries, tx.window.size());
    tx.window.clear();
    return;
  }
  // Go-back-N: retransmit every unacknowledged packet, in order.  The
  // pooled ring is iterated in place — retransmission storms touch no
  // allocator.
  ++stats_.timeouts;
  for (std::size_t i = 0; i < tx.window.size(); ++i) {
    ++stats_.retransmits;
    network_.send(tx.window.at(i));
  }
  arm_timer(peer, tx);
}

void ReliabilityLayer::on_ack(const net::Packet& packet) {
  ++stats_.acks_rx;
  TxState& tx = tx_[packet.src];
  if (tx.failed) return;
  // Cumulative: ack_seq is the next sequence the receiver expects; all
  // window packets below it are done.  Sequence numbers on one link are
  // assigned monotonically and windows are far smaller than 2^31, so
  // plain comparison is safe against 32-bit wrap in any workload here.
  bool progressed = false;
  while (!tx.window.empty() && tx.window.front().seq < packet.ack_seq) {
    tx.window.pop_front();
    ++tx.base;
    progressed = true;
  }
  if (progressed) {
    tx.attempts = 0;
    cancel_timer(tx);
    if (!tx.window.empty()) arm_timer(packet.src, tx);
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void ReliabilityLayer::send_ack(net::NodeId peer, std::uint32_t ack_seq) {
  net::Packet ack;
  ack.src = node_;
  ack.dst = peer;
  ack.kind = net::PacketKind::kAck;
  ack.ack_seq = ack_seq;
  ++stats_.acks_tx;
  network_.send(ack);
}

void ReliabilityLayer::on_network_delivery(const net::Packet& packet) {
  if (!config_.enabled) {
    deliver_up_(packet);
    return;
  }
  if (!packet.crc_ok) {
    // Modeled link CRC failed: the payload cannot be trusted, including
    // its sequence number.  Drop; the sender's timeout recovers it.
    ++stats_.crc_drops;
    return;
  }
  if (packet.kind == net::PacketKind::kAck) {
    on_ack(packet);
    return;
  }
  if (!packet.reliable) {
    deliver_up_(packet);  // raw traffic from an unsequenced sender
    return;
  }
  RxState& rx = rx_[packet.src];
  if (rx.held.capacity() < config_.reorder_window) {
    // One-time pool reservation per peer: after this, holding and
    // releasing out-of-order packets never touches the allocator.
    rx.held.reserve(config_.reorder_window);
    ++stats_.buffer_allocs;
  }
  if (packet.seq < rx.expected) {
    // Duplicate (retransmission of something already delivered).  The
    // re-ACK matters: if the original ACK was lost, only this stops the
    // sender from retransmitting until its retry bound declares the
    // link dead.
    ++stats_.dup_drops;
    send_ack(packet.src, rx.expected);
    return;
  }
  if (packet.seq > rx.expected) {
    // Out of order: hold within the bounded buffer, or drop beyond it
    // (go-back-N retransmission refills the gap either way).  The hold
    // is a sorted insert into the reserved vector — capacity never
    // grows, since size is bounded by the reserved reorder_window.
    const auto it = std::lower_bound(
        rx.held.begin(), rx.held.end(), packet.seq,
        [](const std::pair<std::uint32_t, net::Packet>& held,
           std::uint32_t seq) { return held.first < seq; });
    if (rx.held.size() < config_.reorder_window &&
        (it == rx.held.end() || it->first != packet.seq)) {
      rx.held.emplace(it, packet.seq, packet);
      ++stats_.ooo_buffered;
    } else {
      ++stats_.ooo_dropped;
    }
    return;
  }
  // In sequence: deliver, then release any directly-following held
  // packets (a sorted prefix of `held`), then ACK the new cumulative
  // horizon once.
  deliver_up_(packet);
  ++stats_.delivered;
  ++rx.expected;
  std::size_t released = 0;
  while (released < rx.held.size() &&
         rx.held[released].first == rx.expected) {
    deliver_up_(rx.held[released].second);
    ++stats_.delivered;
    ++rx.expected;
    ++released;
  }
  // Front-erase keeps the reserved capacity: no allocation.
  if (released > 0) {
    rx.held.erase(rx.held.begin(),
                  rx.held.begin() + static_cast<std::ptrdiff_t>(released));
  }
  send_ack(packet.src, rx.expected);
}

}  // namespace alpu::nic
