#include "nic/reliability.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace alpu::nic {

using common::LogLevel;
using common::TimePs;

ReliabilityLayer::ReliabilityLayer(sim::Engine& engine, std::string name,
                                   const ReliabilityConfig& config,
                                   net::Network& network, net::NodeId node,
                                   DeliverUp deliver_up)
    : engine_(engine),
      name_(std::move(name)),
      config_(config),
      network_(network),
      node_(node),
      deliver_up_(std::move(deliver_up)) {
  ALPU_ASSERT(deliver_up_, "reliability layer needs an up-stack sink");
}

ReliabilityLayer::~ReliabilityLayer() {
  // Dead timers must not fire into a destroyed object (relevant only
  // when a Machine is torn down with events still pending).
  for (auto& [peer, tx] : tx_) {
    (void)peer;
    cancel_timer(tx);
  }
}

std::size_t ReliabilityLayer::window_size(net::NodeId peer) const {
  const auto it = tx_.find(peer);
  return it == tx_.end() ? 0 : it->second.window.size();
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

void ReliabilityLayer::send(net::Packet packet) {
  if (!config_.enabled) {
    network_.send(packet);
    return;
  }
  TxState& tx = tx_[packet.dst];
  if (tx.failed) {
    // The link was declared dead: discard instead of queueing forever.
    // The firmware's observable outcome is the link-failure status.
    ++stats_.sends_after_failure;
    return;
  }
  packet.reliable = true;
  packet.seq = tx.next_seq++;
  tx.window.push_back(packet);
  ++stats_.data_tx;
  network_.send(packet);
  if (!tx.timer_armed) arm_timer(packet.dst, tx);
}

void ReliabilityLayer::arm_timer(net::NodeId peer, TxState& tx) {
  ALPU_DEBUG_ASSERT(!tx.timer_armed, "double-armed retransmit timer");
  // Exponential backoff: double per consecutive no-progress timeout,
  // capped.  The shift bound keeps the arithmetic in range.
  const unsigned shift = std::min(tx.attempts, 20u);
  const TimePs timeout = std::min(config_.base_timeout_ps << shift,
                                  config_.max_timeout_ps);
  tx.timer = engine_.schedule_in(timeout, [this, peer] { on_timeout(peer); });
  tx.timer_armed = true;
}

void ReliabilityLayer::cancel_timer(TxState& tx) {
  if (tx.timer_armed) {
    engine_.cancel(tx.timer);
    tx.timer_armed = false;
  }
}

void ReliabilityLayer::on_timeout(net::NodeId peer) {
  TxState& tx = tx_[peer];
  tx.timer_armed = false;
  if (tx.window.empty()) return;  // fully ACKed just before expiry
  ++tx.attempts;
  if (tx.attempts > config_.max_retries) {
    // Bounded retry exhausted: surface a link failure instead of
    // spinning forever (the engine drains; callers observe the status).
    tx.failed = true;
    ++stats_.link_failures;
    common::logf(LogLevel::kInfo, engine_.now(), name_,
                 "link to {} failed after {} retries ({} packets discarded)",
                 peer, config_.max_retries, tx.window.size());
    tx.window.clear();
    return;
  }
  // Go-back-N: retransmit every unacknowledged packet, in order.
  ++stats_.timeouts;
  for (const net::Packet& p : tx.window) {
    ++stats_.retransmits;
    network_.send(p);
  }
  arm_timer(peer, tx);
}

void ReliabilityLayer::on_ack(const net::Packet& packet) {
  ++stats_.acks_rx;
  TxState& tx = tx_[packet.src];
  if (tx.failed) return;
  // Cumulative: ack_seq is the next sequence the receiver expects; all
  // window packets below it are done.  Sequence numbers on one link are
  // assigned monotonically and windows are far smaller than 2^31, so
  // plain comparison is safe against 32-bit wrap in any workload here.
  bool progressed = false;
  while (!tx.window.empty() && tx.window.front().seq < packet.ack_seq) {
    tx.window.pop_front();
    ++tx.base;
    progressed = true;
  }
  if (progressed) {
    tx.attempts = 0;
    cancel_timer(tx);
    if (!tx.window.empty()) arm_timer(packet.src, tx);
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void ReliabilityLayer::send_ack(net::NodeId peer, std::uint32_t ack_seq) {
  net::Packet ack;
  ack.src = node_;
  ack.dst = peer;
  ack.kind = net::PacketKind::kAck;
  ack.ack_seq = ack_seq;
  ++stats_.acks_tx;
  network_.send(ack);
}

void ReliabilityLayer::on_network_delivery(const net::Packet& packet) {
  if (!config_.enabled) {
    deliver_up_(packet);
    return;
  }
  if (!packet.crc_ok) {
    // Modeled link CRC failed: the payload cannot be trusted, including
    // its sequence number.  Drop; the sender's timeout recovers it.
    ++stats_.crc_drops;
    return;
  }
  if (packet.kind == net::PacketKind::kAck) {
    on_ack(packet);
    return;
  }
  if (!packet.reliable) {
    deliver_up_(packet);  // raw traffic from an unsequenced sender
    return;
  }
  RxState& rx = rx_[packet.src];
  if (packet.seq < rx.expected) {
    // Duplicate (retransmission of something already delivered).  The
    // re-ACK matters: if the original ACK was lost, only this stops the
    // sender from retransmitting until its retry bound declares the
    // link dead.
    ++stats_.dup_drops;
    send_ack(packet.src, rx.expected);
    return;
  }
  if (packet.seq > rx.expected) {
    // Out of order: hold within the bounded buffer, or drop beyond it
    // (go-back-N retransmission refills the gap either way).
    if (rx.held.size() < config_.reorder_window &&
        rx.held.find(packet.seq) == rx.held.end()) {
      rx.held.emplace(packet.seq, packet);
      ++stats_.ooo_buffered;
    } else {
      ++stats_.ooo_dropped;
    }
    return;
  }
  // In sequence: deliver, then release any directly-following held
  // packets, then ACK the new cumulative horizon once.
  deliver_up_(packet);
  ++stats_.delivered;
  ++rx.expected;
  for (auto it = rx.held.find(rx.expected); it != rx.held.end();
       it = rx.held.find(rx.expected)) {
    deliver_up_(it->second);
    ++stats_.delivered;
    rx.held.erase(it);
    ++rx.expected;
  }
  send_ack(packet.src, rx.expected);
}

}  // namespace alpu::nic
