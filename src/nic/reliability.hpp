// NIC link-reliability sublayer (go-back-N over the modelled network).
//
// The MPI layers above assume what the lossless network model used to
// guarantee: every packet arrives, exactly once, in per-link order.
// With fault injection (src/net/faults.hpp) that guarantee moves here,
// the way real NIC-resident engines do it (APEnet+ embeds link-level
// retransmission in its torus NIC; Yu et al. layer reliability under
// their NIC collective protocol):
//
//   * sender side: per-(src,dst) sequence numbers, a retransmit window
//     of unacknowledged packets, and a timeout with exponential backoff
//     that go-back-N retransmits the whole window.  After `max_retries`
//     consecutive timeouts without progress, the link is declared
//     failed — the window is discarded and a link-failure status is
//     surfaced (counters + any_link_failed()) instead of retrying
//     forever, so the simulation always drains;
//   * receiver side: CRC check (corrupted packets are dropped and
//     recovered by retransmission), duplicate detection (re-ACKed, so a
//     lost ACK cannot retransmit forever), and bounded reorder buffering
//     (out-of-order packets within `reorder_window` are held and
//     released in sequence);
//   * cumulative ACKs: each in-order delivery (or detected duplicate)
//     sends one standalone kAck carrying the next expected sequence
//     number.  ACKs themselves are unsequenced and may be lost — the
//     sender's timeout covers them.
//
// Disabled (the default), the layer is a transparent pass-through: no
// sequence numbers are stamped, no ACKs are generated, no timers are
// armed, and the packet schedule is byte-identical to the pre-reliability
// simulator.  The rendezvous RTS/CTS/DATA handshake needs no changes to
// survive loss of any leg: each leg is an ordinary reliable packet here.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/time.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace alpu::nic {

struct ReliabilityConfig {
  /// Off by default: the clean-path figures must not change.
  bool enabled = false;
  /// First retransmit timeout.  Must exceed the worst-case in-flight
  /// time of one window: serialising a 64 KB rendezvous DATA at the
  /// Table-III 2 GB/s takes ~33 us, plus wire latency and the ACK's
  /// return trip — 60 us gives slack without dragging out recovery.
  common::TimePs base_timeout_ps = 60'000'000;
  /// Backoff cap (the shift doubles the timeout per consecutive retry).
  common::TimePs max_timeout_ps = 2'000'000'000;
  /// Consecutive timeouts without ACK progress before the link is
  /// declared failed and the window discarded.
  unsigned max_retries = 12;
  /// Receiver-side out-of-order buffer capacity per peer.
  std::size_t reorder_window = 64;
};

struct ReliabilityStats {
  std::uint64_t data_tx = 0;        ///< reliable packets first-transmitted
  std::uint64_t delivered = 0;      ///< in-order deliveries up the stack
  std::uint64_t acks_tx = 0;
  std::uint64_t acks_rx = 0;
  std::uint64_t retransmits = 0;    ///< packets re-sent by timeouts
  std::uint64_t timeouts = 0;       ///< timer expiries that retransmitted
  std::uint64_t crc_drops = 0;      ///< corrupted packets discarded
  std::uint64_t dup_drops = 0;      ///< duplicate packets discarded
  std::uint64_t ooo_buffered = 0;   ///< out-of-order packets held
  std::uint64_t ooo_dropped = 0;    ///< out-of-order past the buffer bound
  std::uint64_t link_failures = 0;  ///< peers given up on
  std::uint64_t sends_after_failure = 0;  ///< sends discarded on dead links

  /// Aggregate across NICs (machine-level reporting).
  ReliabilityStats& operator+=(const ReliabilityStats& o) {
    data_tx += o.data_tx;
    delivered += o.delivered;
    acks_tx += o.acks_tx;
    acks_rx += o.acks_rx;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    crc_drops += o.crc_drops;
    dup_drops += o.dup_drops;
    ooo_buffered += o.ooo_buffered;
    ooo_dropped += o.ooo_dropped;
    link_failures += o.link_failures;
    sends_after_failure += o.sends_after_failure;
    return *this;
  }
};

/// One NIC's reliability endpoint.  Owned by the Nic, interposed between
/// the firmware and the Network in both directions.
class ReliabilityLayer {
 public:
  /// `deliver_up` receives exactly the packets the old lossless network
  /// would have delivered: in per-link order, exactly once, CRC-clean.
  using DeliverUp = std::function<void(const net::Packet&)>;

  ReliabilityLayer(sim::Engine& engine, std::string name,
                   const ReliabilityConfig& config, net::Network& network,
                   net::NodeId node, DeliverUp deliver_up);
  ~ReliabilityLayer();

  ReliabilityLayer(const ReliabilityLayer&) = delete;
  ReliabilityLayer& operator=(const ReliabilityLayer&) = delete;

  bool enabled() const { return config_.enabled; }

  /// Transmit path: stamp, window, and send a packet (or pass it through
  /// untouched when disabled).  On a failed link the packet is counted
  /// and discarded — the link-failure status is the surfaced outcome.
  void send(net::Packet packet);

  /// Receive path: the Network's delivery handler.
  void on_network_delivery(const net::Packet& packet);

  const ReliabilityConfig& config() const { return config_; }
  const ReliabilityStats& stats() const { return stats_; }
  bool any_link_failed() const { return stats_.link_failures > 0; }
  /// Unacknowledged packets currently in flight toward `peer`.
  std::size_t window_size(net::NodeId peer) const;

 private:
  struct TxState {
    std::uint32_t next_seq = 0;
    std::uint32_t base = 0;  ///< oldest unacknowledged sequence number
    std::deque<net::Packet> window;
    sim::EventId timer = 0;
    bool timer_armed = false;
    unsigned attempts = 0;  ///< consecutive timeouts without progress
    bool failed = false;
  };
  struct RxState {
    std::uint32_t expected = 0;
    /// Out-of-order packets held for in-sequence release, keyed by
    /// sequence number (deterministic iteration by construction).
    std::map<std::uint32_t, net::Packet> held;
  };

  void arm_timer(net::NodeId peer, TxState& tx);
  void cancel_timer(TxState& tx);
  void on_timeout(net::NodeId peer);
  void on_ack(const net::Packet& packet);
  void send_ack(net::NodeId peer, std::uint32_t ack_seq);

  sim::Engine& engine_;
  std::string name_;
  ReliabilityConfig config_;
  net::Network& network_;
  net::NodeId node_;
  DeliverUp deliver_up_;
  std::map<net::NodeId, TxState> tx_;
  std::map<net::NodeId, RxState> rx_;
  ReliabilityStats stats_;
};

}  // namespace alpu::nic
