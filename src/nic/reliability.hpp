// NIC link-reliability sublayer (go-back-N over the modelled network).
//
// The MPI layers above assume what the lossless network model used to
// guarantee: every packet arrives, exactly once, in per-link order.
// With fault injection (src/net/faults.hpp) that guarantee moves here,
// the way real NIC-resident engines do it (APEnet+ embeds link-level
// retransmission in its torus NIC; Yu et al. layer reliability under
// their NIC collective protocol):
//
//   * sender side: per-(src,dst) sequence numbers, a retransmit window
//     of unacknowledged packets, and a timeout with exponential backoff
//     that go-back-N retransmits the whole window.  After `max_retries`
//     consecutive timeouts without progress, the link is declared
//     failed — the window is discarded and a link-failure status is
//     surfaced (counters + any_link_failed()) instead of retrying
//     forever, so the simulation always drains;
//   * receiver side: CRC check (corrupted packets are dropped and
//     recovered by retransmission), duplicate detection (re-ACKed, so a
//     lost ACK cannot retransmit forever), and bounded reorder buffering
//     (out-of-order packets within `reorder_window` are held and
//     released in sequence);
//   * cumulative ACKs: each in-order delivery (or detected duplicate)
//     sends one standalone kAck carrying the next expected sequence
//     number.  ACKs themselves are unsequenced and may be lost — the
//     sender's timeout covers them;
//   * receiver-not-ready flow control (optional, installed by the Nic
//     when its eager budget is finite): before an in-sequence eager/RTS
//     packet is delivered up, an EagerAdmission hook may refuse it.
//     The refusal sends a kRnrNack (cumulative ack + retry hint +
//     credit advertisement) instead of an ACK and does NOT advance the
//     expected sequence number, so go-back-N retransmission naturally
//     re-offers the refused packet.  The sender pauses the window and
//     retries after a deterministic exponential backoff seeded by the
//     hint; credits returned as buffers drain (piggybacked on ACKs,
//     plus one explicit credit-bearing ACK pushed to the longest-waiting
//     paused peer per release) cut the wait short.  Consecutive
//     refusals without a credit grant feed the same bounded-retry →
//     link-failure discipline as timeouts, so a wedged receiver cannot
//     stall the simulation silently.
//
// Disabled (the default), the layer is a transparent pass-through: no
// sequence numbers are stamped, no ACKs are generated, no timers are
// armed, and the packet schedule is byte-identical to the pre-reliability
// simulator.  The rendezvous RTS/CTS/DATA handshake needs no changes to
// survive loss of any leg: each leg is an ordinary reliable packet here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/dense.hpp"
#include "common/time.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace alpu::nic {

/// Fixed-capacity (grow-by-doubling) ring of packets — the go-back-N
/// retransmit window without per-packet heap traffic.  A deque here
/// allocates a node every few pushes under retransmission storms; the
/// ring allocates only when the window outgrows its current backing
/// array, so steady-state retries are allocation-free (the
/// `buffer_allocs`/`buffer_reserved` counters in ReliabilityStats prove
/// it).
class PacketRing {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  const net::Packet& front() const { return slots_[head_]; }
  /// i-th oldest element (0 == front) — the retransmit iteration order.
  const net::Packet& at(std::size_t i) const {
    return slots_[(head_ + i) & (slots_.size() - 1)];
  }

  /// Returns true when the push grew the backing array (an allocation —
  /// the caller counts it).
  bool push_back(const net::Packet& p);
  void pop_front();
  void clear();

 private:
  void grow(std::size_t at_least);

  std::vector<net::Packet> slots_;  ///< power-of-two capacity
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

struct ReliabilityConfig {
  /// Off by default: the clean-path figures must not change.
  bool enabled = false;
  /// First retransmit timeout.  Must exceed the worst-case in-flight
  /// time of one window: serialising a 64 KB rendezvous DATA at the
  /// Table-III 2 GB/s takes ~33 us, plus wire latency and the ACK's
  /// return trip — 60 us gives slack without dragging out recovery.
  common::TimePs base_timeout_ps = 60'000'000;
  /// Backoff cap (the shift doubles the timeout per consecutive retry).
  common::TimePs max_timeout_ps = 2'000'000'000;
  /// Consecutive timeouts without ACK progress before the link is
  /// declared failed and the window discarded.
  unsigned max_retries = 12;
  /// Receiver-side out-of-order buffer capacity per peer.
  std::size_t reorder_window = 64;
  /// Retry hint advertised in RNR NACKs (microseconds).  The refused
  /// sender's first backoff; doubles per consecutive refusal up to
  /// `max_timeout_ps`.
  std::uint32_t rnr_hint_us = 20;
  /// Consecutive RNR refusals (without a credit grant) after which the
  /// sender-side flow hook demotes the peer's eager traffic to
  /// rendezvous for guaranteed forward progress.
  unsigned rnr_demote_after = 2;
};

struct ReliabilityStats {
  std::uint64_t data_tx = 0;        ///< reliable packets first-transmitted
  std::uint64_t delivered = 0;      ///< in-order deliveries up the stack
  std::uint64_t acks_tx = 0;
  std::uint64_t acks_rx = 0;
  std::uint64_t retransmits = 0;    ///< packets re-sent by timeouts
  std::uint64_t timeouts = 0;       ///< timer expiries that retransmitted
  std::uint64_t crc_drops = 0;      ///< corrupted packets discarded
  std::uint64_t dup_drops = 0;      ///< duplicate packets discarded
  std::uint64_t ooo_buffered = 0;   ///< out-of-order packets held
  std::uint64_t ooo_dropped = 0;    ///< out-of-order past the buffer bound
  std::uint64_t link_failures = 0;  ///< peers given up on
  std::uint64_t sends_after_failure = 0;  ///< sends discarded on dead links
  // Receiver-not-ready flow control (all zero when no admission hook
  // is installed, i.e. unlimited budgets).
  std::uint64_t rnr_nacks_tx = 0;   ///< admission refusals NACKed
  std::uint64_t rnr_nacks_rx = 0;   ///< NACKs received (sender side)
  std::uint64_t rnr_retries = 0;    ///< paused windows re-offered
  std::uint64_t credit_acks_tx = 0; ///< explicit credit pushes on drain
  /// Backing-array growths of the pooled tx-window / rx-held buffers.
  /// Each is one heap allocation; at steady state (windows warmed up)
  /// this counter must stop moving — the zero-allocation property the
  /// soak tests assert.
  std::uint64_t buffer_allocs = 0;

  /// Aggregate across NICs (machine-level reporting).
  ReliabilityStats& operator+=(const ReliabilityStats& o) {
    data_tx += o.data_tx;
    delivered += o.delivered;
    acks_tx += o.acks_tx;
    acks_rx += o.acks_rx;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    crc_drops += o.crc_drops;
    dup_drops += o.dup_drops;
    ooo_buffered += o.ooo_buffered;
    ooo_dropped += o.ooo_dropped;
    link_failures += o.link_failures;
    sends_after_failure += o.sends_after_failure;
    rnr_nacks_tx += o.rnr_nacks_tx;
    rnr_nacks_rx += o.rnr_nacks_rx;
    rnr_retries += o.rnr_retries;
    credit_acks_tx += o.credit_acks_tx;
    buffer_allocs += o.buffer_allocs;
    return *this;
  }
};

/// Receiver-side admission control for eager resources, implemented by
/// the Nic when its budget is finite.  `try_admit` is consulted once per
/// in-sequence eager/RTS packet, immediately before delivery up the
/// stack: returning false refuses the packet (no resources reserved)
/// and triggers an RNR NACK; returning true reserves the resources the
/// packet needs.  The credit accessors report the currently free budget
/// for advertisement on outgoing ACKs/NACKs.
class EagerAdmission {
 public:
  virtual ~EagerAdmission() = default;
  virtual bool try_admit(const net::Packet& packet) = 0;
  virtual std::uint64_t credit_bytes() const = 0;
  virtual std::uint32_t credit_slots() const = 0;
};

/// One NIC's reliability endpoint.  Owned by the Nic, interposed between
/// the firmware and the Network in both directions.
class ReliabilityLayer {
 public:
  /// `deliver_up` receives exactly the packets the old lossless network
  /// would have delivered: in per-link order, exactly once, CRC-clean.
  // lint: ok(std-function-hot-path) — bound once per layer; invocation only
  // on the per-packet path.
  using DeliverUp = std::function<void(const net::Packet&)>;

  ReliabilityLayer(sim::Engine& engine, std::string name,
                   const ReliabilityConfig& config, net::Network& network,
                   net::NodeId node, DeliverUp deliver_up);
  ~ReliabilityLayer();

  ReliabilityLayer(const ReliabilityLayer&) = delete;
  ReliabilityLayer& operator=(const ReliabilityLayer&) = delete;

  bool enabled() const { return config_.enabled; }

  /// Transmit path: stamp, window, and send a packet (or pass it through
  /// untouched when disabled).  On a failed link the packet is counted
  /// and discarded — the link-failure status is the surfaced outcome.
  void send(net::Packet packet);

  /// Receive path: the Network's delivery handler.
  void on_network_delivery(const net::Packet& packet);

  const ReliabilityConfig& config() const { return config_; }
  const ReliabilityStats& stats() const { return stats_; }
  bool any_link_failed() const { return stats_.link_failures > 0; }
  /// Unacknowledged packets currently in flight toward `peer`.
  std::size_t window_size(net::NodeId peer) const;

  /// Install receiver-side admission control (nullptr = unlimited; the
  /// default).  With no hook the layer never refuses, never NACKs, and
  /// advertises no credits — byte-identical to the pre-flow-control
  /// wire schedule.
  void set_admission(EagerAdmission* admission) { admission_ = admission; }

  /// Sender-side flow notifications, bound once by the owning Nic.
  struct FlowHooks {
    /// `streak` consecutive RNR refusals from `peer` without a credit
    /// grant — the Nic demotes eager traffic past a threshold.
    // lint: ok(std-function-hot-path) — bound once at wiring; invoked
    // only on the (rare) refusal path.
    std::function<void(net::NodeId peer, unsigned streak)> on_rnr;
    /// Credit advertisement received from `peer` (on any ACK/NACK with
    /// nonzero credit) — the Nic re-promotes demoted peers.
    // lint: ok(std-function-hot-path) — bound once at wiring.
    std::function<void(net::NodeId peer, std::uint64_t credit_bytes,
                       std::uint32_t credit_slots)>
        on_credit;
  };
  void set_flow_hooks(FlowHooks hooks) { flow_ = std::move(hooks); }

  /// Called by the admission owner whenever previously-reserved budget
  /// is released.  Pushes one explicit credit-bearing ACK to the
  /// longest-waiting refused peer (deterministic FIFO), waking its
  /// paused window without waiting out the backoff.
  void notify_credit_released();

  // Stall-watchdog introspection: quiescence with any of these nonzero
  // is undrained protocol work.
  std::size_t total_window_packets() const;  ///< unACKed, summed over peers
  std::size_t rnr_paused_windows() const;    ///< senders holding a backoff
  std::size_t credit_owed_peers() const {    ///< refused peers awaiting credit
    return credit_queue_.size();
  }
  bool undrained() const {
    // credit_queue_ is deliberately NOT part of this predicate: a peer
    // stays queued after its held packet is re-admitted (e.g. through
    // the posted-match bypass), so a stale token at quiescence is
    // benign.  A real wedge always shows up on the sender side as an
    // unACKed window or a paused backoff.
    return total_window_packets() > 0 || rnr_paused_windows() > 0;
  }

  /// Point backing-array growth of the per-peer tables at the owner's
  /// counters (the Nic wires NicStats.control_allocs/control_bytes).
  void set_alloc_sink(common::AllocSink sink) {
    tx_.set_alloc_sink(sink);
    rx_.set_alloc_sink(sink);
  }
  /// Pre-size both per-peer tables for nodes [0, n): no growth on the
  /// hot path afterwards.
  void reserve_nodes(std::size_t n) {
    tx_.reserve(n);
    rx_.reserve(n);
  }

 private:
  struct TxState {
    std::uint32_t next_seq = 0;
    std::uint32_t base = 0;  ///< oldest unacknowledged sequence number
    PacketRing window;  ///< unACKed packets, pooled (no per-push allocs)
    sim::EventId timer = 0;
    bool timer_armed = false;
    unsigned attempts = 0;  ///< consecutive timeouts without progress
    bool failed = false;
    /// Consecutive RNR refusals without ack progress or a credit grant
    /// (feeds the same max_retries → link-failure bound as timeouts).
    unsigned rnr_streak = 0;
    /// Window held under RNR backoff: the timer slot carries the
    /// rnr-retry event instead of the retransmit timeout, and fresh
    /// sends are windowed but not transmitted until the retry.
    bool rnr_paused = false;
  };
  struct RxState {
    std::uint32_t expected = 0;
    /// This peer was refused and is queued for an explicit credit push.
    bool rnr_pending = false;
    /// Out-of-order packets held for in-sequence release, sorted by
    /// sequence number.  Capacity is reserved to `reorder_window` on
    /// first use, so steady-state holds/releases never allocate (a map
    /// node-allocates on every hold).
    std::vector<std::pair<std::uint32_t, net::Packet>> held;
  };

  void arm_timer(net::NodeId peer, TxState& tx);
  void cancel_timer(TxState& tx);
  void on_timeout(net::NodeId peer);
  void on_ack(const net::Packet& packet);
  void send_ack(net::NodeId peer, std::uint32_t ack_seq);
  /// Stamp the free-budget advertisement onto an outgoing ACK/NACK
  /// (no-op fields stay zero when no admission hook is installed).
  void fill_credits(net::Packet& packet) const;
  void send_rnr_nack(net::NodeId peer, RxState& rx);
  void on_rnr_nack(const net::Packet& packet);
  void on_rnr_retry(net::NodeId peer);
  /// Retransmit the whole window now (go-back-N re-offer) and re-arm
  /// the retransmit timeout.
  void retransmit_window(net::NodeId peer, TxState& tx);
  void fail_link(net::NodeId peer, TxState& tx, const char* why);

  sim::Engine& engine_;
  std::string name_;
  ReliabilityConfig config_;
  net::Network& network_;
  net::NodeId node_;
  DeliverUp deliver_up_;
  /// Per-peer protocol state, NodeId-indexed (dense: peers are the
  /// machine's nodes).  Formerly std::map — a tree probe per packet.
  common::DenseNodeTable<TxState> tx_;
  common::DenseNodeTable<RxState> rx_;
  EagerAdmission* admission_ = nullptr;
  FlowHooks flow_;
  /// Refused peers awaiting an explicit credit push, oldest first.
  /// Bounded by the node count (a peer is enqueued at most once —
  /// RxState.rnr_pending is the membership flag).
  std::deque<net::NodeId> credit_queue_;
  ReliabilityStats stats_;
};

}  // namespace alpu::nic
