// The host <-> NIC command interface.
//
// In the modelled system (Section V-C) "the main processor is only
// required to dispatch message requests to the NIC and wait for request
// completion".  These are the records that cross the host bus in each
// direction: requests via a doorbell write, completions via a NIC write
// into host memory that the host polls.
#pragma once

#include <cstdint>

#include "match/match.hpp"
#include "mem/cache.hpp"
#include "net/network.hpp"

namespace alpu::nic {

enum class RequestKind : std::uint8_t {
  kPostRecv,
  kSend,
};

/// A request descriptor written to the NIC.
struct HostRequest {
  RequestKind kind = RequestKind::kSend;
  std::uint64_t req_id = 0;  ///< host-chosen identifier echoed in completion

  // kPostRecv
  match::Pattern pattern;        ///< receive match criteria (may wildcard)
  mem::Addr recv_buffer = 0;     ///< host destination buffer
  std::uint32_t recv_max_bytes = 0;

  // kSend
  net::NodeId dst = 0;
  match::Envelope envelope;      ///< explicit {context, source, tag}
  mem::Addr send_buffer = 0;     ///< host source buffer
  std::uint32_t send_bytes = 0;
};

/// A completion record written back to host memory.
struct Completion {
  std::uint64_t req_id = 0;
  std::uint32_t bytes = 0;              ///< bytes delivered (receives)
  match::MatchWord matched_bits = 0;    ///< actual envelope (receives)
};

}  // namespace alpu::nic
