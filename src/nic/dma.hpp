// DMA engine model.
//
// The NIC has separate Tx and Rx DMA engines (Figure 1).  Each engine
// serves one transfer at a time: a fixed setup cost, then bytes at the
// engine's bandwidth.  Requests queue FIFO when the engine is busy.
// Completion invokes a callback (the firmware enqueues the follow-up
// work from it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/time.hpp"
#include "sim/engine.hpp"

namespace alpu::nic {

using common::TimePs;

struct DmaConfig {
  TimePs setup_ps = 60'000;  ///< descriptor fetch + engine start (60 ns)
  TimePs ps_per_byte = 500;  ///< 2 GB/s
};

struct DmaStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  TimePs busy_time = 0;
};

class DmaEngine : public sim::Component {
 public:
  DmaEngine(sim::Engine& engine, std::string name, const DmaConfig& config);

  /// Queue a transfer of `bytes`; `done` fires when the last byte lands.
  // lint: ok(std-function-hot-path) — see dma.cpp justification.
  void request(std::uint64_t bytes, std::function<void()> done);

  bool busy() const { return busy_; }
  std::size_t queued() const { return pending_.size(); }
  const DmaStats& stats() const { return stats_; }

 private:
  struct Job {
    std::uint64_t bytes;
    std::function<void()> done;  // lint: ok(std-function-hot-path) — moved, not copied
  };

  void start_next();

  DmaConfig config_;
  std::deque<Job> pending_;
  bool busy_ = false;
  DmaStats stats_;
};

}  // namespace alpu::nic
