// DRAM timing with open-row (page-mode) contention.
//
// The paper's simulator "modeled the memory hierarchy to include
// contention for open rows on the DRAM chips" (Section V-B).  This model
// tracks one open row per bank: an access to the open row pays the
// column latency only; a different row pays precharge + activate first.
// Banks are also serially busy, so back-to-back conflicting accesses
// queue behind each other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace alpu::mem {

using common::TimePs;

struct DramConfig {
  std::size_t banks = 8;
  std::size_t row_bytes = 8 * 1024;     ///< bytes covered by one open row
  TimePs column_ps = 20'000;            ///< CAS latency for a row hit
  TimePs activate_ps = 25'000;          ///< RAS for a row miss (added)
  TimePs precharge_ps = 20'000;         ///< precharge when closing a row
  TimePs data_beat_ps = 5'000;          ///< transfer time of one line
};

struct DramStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t stalled_accesses = 0;  ///< waited behind a busy bank
};

/// One DRAM channel with per-bank open-row state.
class Dram {
 public:
  explicit Dram(const DramConfig& config);

  /// Latency to service a line fill at absolute time `now`, including any
  /// wait for the target bank to go idle.  Advances bank state.
  TimePs access(std::uint64_t addr, TimePs now);

  const DramStats& stats() const { return stats_; }
  const DramConfig& config() const { return config_; }

 private:
  struct Bank {
    std::uint64_t open_row = 0;
    bool row_valid = false;
    TimePs busy_until = 0;
  };

  DramConfig config_;
  std::vector<Bank> banks_;
  bool pow2_geometry_ = false;  ///< row_bytes and banks both powers of two
  unsigned row_shift_ = 0;      ///< log2(row_bytes) when pow2_geometry_
  unsigned bank_shift_ = 0;     ///< log2(banks) when pow2_geometry_
  DramStats stats_;
};

}  // namespace alpu::mem
