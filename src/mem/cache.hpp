// Set-associative cache model.
//
// The paper's central baseline effect is micro-architectural: queue
// traversal costs ~15 ns/entry while the queue fits in the NIC CPU's
// 32 KB L1 and ~64 ns/entry once it spills (Section VI-B).  This cache
// model — set-associative, LRU, allocate-on-miss — is what produces that
// knee in the reproduction.  It models tags only (no data payloads): the
// simulator needs timing, not contents.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace alpu::mem {

using Addr = std::uint64_t;

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 64;  ///< Table III lists the NIC L1 as 32K 64-way

  std::size_t num_lines() const { return size_bytes / line_bytes; }
  std::size_t num_sets() const { return num_lines() / ways; }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

/// Result of a single cache access.
struct CacheAccess {
  bool hit = false;
  bool evicted_dirty = false;  ///< a dirty victim was written back
};

/// Tag-only set-associative cache with true-LRU replacement.
///
/// Storage is struct-of-arrays: the hit path — the innermost loop of
/// every modelled load and store, run once per queue entry walked — is
/// an early-exit scan of the set's contiguous 8-byte tag plane checked
/// against a per-set validity bitmask, instead of chasing padded line
/// structs at three times the memory stride.
/// Replacement semantics are bit-identical to the padded-struct layout
/// (same LRU clocking, same victim choice including tie-breaks), so no
/// modelled timing moves.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Look up `addr`; on miss, allocate the line (evicting LRU).
  /// Header-inline: this is the innermost call of every modelled load
  /// and store, and inlining it (and its callees) into the memory-system
  /// front end keeps the geometry constants in registers.
  CacheAccess access(Addr addr, bool is_write);

  /// Probe without side effects (used by tests and warm-up accounting).
  bool contains(Addr addr) const;

  /// Invalidate everything (e.g. context switch modelling).
  void flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  // Every practical geometry (Table III and the benchmark grids) has
  // power-of-two line size and set count, so the per-access index math
  // — run four times per modelled load on the hot path — reduces to
  // shifts and masks; the division fallback keeps arbitrary test
  // geometries (e.g. 66-way property-test shapes) exact.
  std::size_t set_index(Addr addr) const {
    if (pow2_geometry_) {
      return static_cast<std::size_t>(addr >> line_shift_) & (sets_ - 1);
    }
    return (addr / config_.line_bytes) % sets_;
  }
  Addr tag_of(Addr addr) const {
    if (pow2_geometry_) return addr >> (line_shift_ + set_shift_);
    return addr / config_.line_bytes / sets_;
  }
  /// Way holding `tag` valid in `set`, or -1.  Early-exit scan of the
  /// set's dense tag plane.
  int find_way(std::size_t set, Addr tag) const;
  /// Lowest invalid way of `set`, or -1 when the set is full.
  int first_invalid_way(std::size_t set) const;
  /// Valid bits of ways [word*64, word*64+64) of `set`.
  std::uint64_t word_mask(std::size_t word) const {
    const std::size_t first = word * 64;
    const std::size_t count = std::min<std::size_t>(64, config_.ways - first);
    return count == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << count) - 1;
  }

  CacheConfig config_;
  std::size_t sets_;
  std::size_t mask_words_ = 1;       ///< 64-bit words per per-set bitmask
  bool pow2_geometry_ = false;  ///< line_bytes and sets_ both powers of two
  unsigned line_shift_ = 0;     ///< log2(line_bytes) when pow2_geometry_
  unsigned set_shift_ = 0;      ///< log2(sets_) when pow2_geometry_
  std::vector<Addr> tags_;           ///< sets_ * ways, set-major
  std::vector<std::uint64_t> lru_;   ///< sets_ * ways, set-major
  std::vector<std::uint64_t> valid_;  ///< sets_ * mask_words_ way bitmasks
  std::vector<std::uint64_t> dirty_;  ///< sets_ * mask_words_ way bitmasks
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

// ---- inline implementations (hot path) --------------------------------

inline int Cache::find_way(std::size_t set, Addr tag) const {
  // Early-exit scan of the set's contiguous tag plane.  At most one
  // valid way holds a given tag, so the first valid match is the hit.
  // Invalid slots are filtered through the validity bitmask only after
  // their (stale) tag happens to compare equal — the common iteration
  // touches just the 8-byte tag stride.
  const Addr* tags = &tags_[set * config_.ways];
  const std::uint64_t* valid = &valid_[set * mask_words_];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (tags[w] == tag && ((valid[w >> 6] >> (w & 63)) & 1) != 0) {
      return static_cast<int>(w);
    }
  }
  return -1;
}

inline int Cache::first_invalid_way(std::size_t set) const {
  const std::uint64_t* valid = &valid_[set * mask_words_];
  for (std::size_t word = 0; word < mask_words_; ++word) {
    const std::uint64_t invalid = ~valid[word] & word_mask(word);
    if (invalid != 0) {
      return static_cast<int>(
          word * 64 + static_cast<std::size_t>(std::countr_zero(invalid)));
    }
  }
  return -1;
}

inline CacheAccess Cache::access(Addr addr, bool is_write) {
  ++stats_.accesses;
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const std::size_t base = set * config_.ways;
  const std::size_t mask_base = set * mask_words_;

  // Hit path.
  if (const int hit = find_way(set, tag); hit >= 0) {
    const auto w = static_cast<std::size_t>(hit);
    ++stats_.hits;
    lru_[base + w] = ++lru_clock_;
    if (is_write) dirty_[mask_base + w / 64] |= std::uint64_t{1} << (w % 64);
    return CacheAccess{.hit = true, .evicted_dirty = false};
  }

  // Miss: allocate, preferring the lowest invalid way, else the
  // true-LRU victim (first way among equal-minimum LRU stamps — the
  // same tie-break as scanning ways in order).
  ++stats_.misses;
  std::size_t victim;
  bool victim_valid = false;
  if (const int invalid = first_invalid_way(set); invalid >= 0) {
    victim = static_cast<std::size_t>(invalid);
  } else {
    victim = 0;
    const std::uint64_t* lru = &lru_[base];
    for (std::size_t w = 1; w < config_.ways; ++w) {
      if (lru[w] < lru[victim]) victim = w;
    }
    victim_valid = true;
  }
  CacheAccess out{.hit = false, .evicted_dirty = false};
  const std::size_t word = mask_base + victim / 64;
  const std::uint64_t bit = std::uint64_t{1} << (victim % 64);
  if (victim_valid) {
    ++stats_.evictions;
    if (dirty_[word] & bit) {
      ++stats_.writebacks;
      out.evicted_dirty = true;
    }
  }
  valid_[word] |= bit;
  tags_[base + victim] = tag;
  lru_[base + victim] = ++lru_clock_;
  if (is_write) {
    dirty_[word] |= bit;
  } else {
    dirty_[word] &= ~bit;
  }
  return out;
}

inline bool Cache::contains(Addr addr) const {
  return find_way(set_index(addr), tag_of(addr)) >= 0;
}

}  // namespace alpu::mem
