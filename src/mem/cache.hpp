// Set-associative cache model.
//
// The paper's central baseline effect is micro-architectural: queue
// traversal costs ~15 ns/entry while the queue fits in the NIC CPU's
// 32 KB L1 and ~64 ns/entry once it spills (Section VI-B).  This cache
// model — set-associative, LRU, allocate-on-miss — is what produces that
// knee in the reproduction.  It models tags only (no data payloads): the
// simulator needs timing, not contents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alpu::mem {

using Addr = std::uint64_t;

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 64;  ///< Table III lists the NIC L1 as 32K 64-way

  std::size_t num_lines() const { return size_bytes / line_bytes; }
  std::size_t num_sets() const { return num_lines() / ways; }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

/// Result of a single cache access.
struct CacheAccess {
  bool hit = false;
  bool evicted_dirty = false;  ///< a dirty victim was written back
};

/// Tag-only set-associative cache with true-LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Look up `addr`; on miss, allocate the line (evicting LRU).
  CacheAccess access(Addr addr, bool is_write);

  /// Probe without side effects (used by tests and warm-up accounting).
  bool contains(Addr addr) const;

  /// Invalidate everything (e.g. context switch modelling).
  void flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(Addr addr) const {
    return (addr / config_.line_bytes) % sets_;
  }
  Addr tag_of(Addr addr) const { return addr / config_.line_bytes / sets_; }

  CacheConfig config_;
  std::size_t sets_;
  std::vector<Line> lines_;  // sets_ * ways, set-major
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace alpu::mem
