#include "mem/memory_system.hpp"

namespace alpu::mem {

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config), l1_(config.l1) {
  if (config.l2.has_value()) l2_.emplace(*config.l2);
  if (config.use_dram) dram_.emplace(config.dram);
}

void MemorySystem::flush() {
  l1_.flush();
  if (l2_.has_value()) l2_->flush();
}

}  // namespace alpu::mem
