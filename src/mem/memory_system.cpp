#include "mem/memory_system.hpp"

namespace alpu::mem {

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config), l1_(config.l1) {
  if (config.l2.has_value()) l2_.emplace(*config.l2);
  if (config.use_dram) dram_.emplace(config.dram);
}

TimePs MemorySystem::access(Addr addr, TimePs now, bool is_write) {
  if (is_write) {
    ++stats_.stores;
  } else {
    ++stats_.loads;
  }

  TimePs cost = config_.l1_hit_ps;
  const CacheAccess a1 = l1_.access(addr, is_write);
  if (!a1.hit) {
    bool need_backend = true;
    if (l2_.has_value()) {
      cost += config_.l2_hit_ps;
      const CacheAccess a2 = l2_->access(addr, is_write);
      need_backend = !a2.hit;
    }
    if (need_backend) {
      cost += config_.backend_ps;
      if (dram_.has_value()) {
        cost += dram_->access(addr, now + cost);
      }
      // A dirty eviction also costs a writeback; model it as overlapped
      // with the fill except for one extra backend hop's occupancy, which
      // at this fidelity we fold into the fill (write buffers hide it).
    }
  }
  stats_.total_time += cost;
  return cost;
}

TimePs MemorySystem::touch_range(Addr addr, std::uint64_t bytes, TimePs now,
                                 bool is_write) {
  const std::uint64_t line = config_.l1.line_bytes;
  const Addr first = addr / line;
  const Addr last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
  TimePs total = 0;
  for (Addr l = first; l <= last; ++l) {
    total += access(l * line, now + total, is_write);
  }
  return total;
}

void MemorySystem::flush() {
  l1_.flush();
  if (l2_.has_value()) l2_->flush();
}

}  // namespace alpu::mem
