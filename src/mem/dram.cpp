#include "mem/dram.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace alpu::mem {

Dram::Dram(const DramConfig& config) : config_(config) {
  ALPU_ASSERT(config.banks > 0, "DRAM needs at least one bank");
  banks_.resize(config.banks);
  // Practical channel geometries are powers of two; fold the per-access
  // row/bank index math into shifts (divisions stay for odd test shapes).
  pow2_geometry_ = std::has_single_bit(config_.row_bytes) &&
                   std::has_single_bit(config_.banks);
  if (pow2_geometry_) {
    row_shift_ = static_cast<unsigned>(std::countr_zero(config_.row_bytes));
    bank_shift_ = static_cast<unsigned>(std::countr_zero(config_.banks));
  }
}

TimePs Dram::access(std::uint64_t addr, TimePs now) {
  ++stats_.accesses;
  const std::uint64_t row_global =
      pow2_geometry_ ? addr >> row_shift_ : addr / config_.row_bytes;
  // Interleave rows across banks so sequential rows hit distinct banks.
  const std::size_t bank_index =
      pow2_geometry_ ? static_cast<std::size_t>(row_global) & (banks_.size() - 1)
                     : static_cast<std::size_t>(row_global % banks_.size());
  Bank& bank = banks_[bank_index];
  const std::uint64_t row =
      pow2_geometry_ ? row_global >> bank_shift_ : row_global / banks_.size();

  TimePs start = now;
  if (bank.busy_until > start) {
    ++stats_.stalled_accesses;
    start = bank.busy_until;
  }

  TimePs service;
  if (bank.row_valid && bank.open_row == row) {
    ++stats_.row_hits;
    service = config_.column_ps + config_.data_beat_ps;
  } else {
    ++stats_.row_misses;
    service = (bank.row_valid ? config_.precharge_ps : 0) +
              config_.activate_ps + config_.column_ps + config_.data_beat_ps;
    bank.open_row = row;
    bank.row_valid = true;
  }
  bank.busy_until = start + service;
  return (start - now) + service;
}

}  // namespace alpu::mem
