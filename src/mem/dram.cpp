#include "mem/dram.hpp"

#include <algorithm>
#include <cassert>

namespace alpu::mem {

Dram::Dram(const DramConfig& config) : config_(config) {
  assert(config.banks > 0);
  banks_.resize(config.banks);
}

TimePs Dram::access(std::uint64_t addr, TimePs now) {
  ++stats_.accesses;
  const std::uint64_t row_global = addr / config_.row_bytes;
  // Interleave rows across banks so sequential rows hit distinct banks.
  Bank& bank = banks_[row_global % banks_.size()];
  const std::uint64_t row = row_global / banks_.size();

  TimePs start = now;
  if (bank.busy_until > start) {
    ++stats_.stalled_accesses;
    start = bank.busy_until;
  }

  TimePs service;
  if (bank.row_valid && bank.open_row == row) {
    ++stats_.row_hits;
    service = config_.column_ps + config_.data_beat_ps;
  } else {
    ++stats_.row_misses;
    service = (bank.row_valid ? config_.precharge_ps : 0) +
              config_.activate_ps + config_.column_ps + config_.data_beat_ps;
    bank.open_row = row;
    bank.row_valid = true;
  }
  bank.busy_until = start + service;
  return (start - now) + service;
}

}  // namespace alpu::mem
