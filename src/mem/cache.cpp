#include "mem/cache.hpp"

#include <cassert>

namespace alpu::mem {

Cache::Cache(const CacheConfig& config)
    : config_(config), sets_(config.num_sets()) {
  assert(config.size_bytes % config.line_bytes == 0);
  assert(config.num_lines() % config.ways == 0);
  assert(sets_ > 0);
  lines_.resize(sets_ * config_.ways);
}

CacheAccess Cache::access(Addr addr, bool is_write) {
  ++stats_.accesses;
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];

  // Hit path.
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      line.lru = ++lru_clock_;
      line.dirty = line.dirty || is_write;
      return CacheAccess{.hit = true, .evicted_dirty = false};
    }
  }

  // Miss: allocate, preferring an invalid way, else the true-LRU victim.
  ++stats_.misses;
  Line* victim = nullptr;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }
  CacheAccess out{.hit = false, .evicted_dirty = false};
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.writebacks;
      out.evicted_dirty = true;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++lru_clock_;
  victim->dirty = is_write;
  return out;
}

bool Cache::contains(Addr addr) const {
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (Line& line : lines_) line = Line{};
}

}  // namespace alpu::mem
