#include "mem/cache.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace alpu::mem {

Cache::Cache(const CacheConfig& config)
    : config_(config), sets_(config.num_sets()) {
  ALPU_ASSERT(config.size_bytes % config.line_bytes == 0,
              "cache size must be a whole number of lines");
  ALPU_ASSERT(config.num_lines() % config.ways == 0,
              "cache lines must fill its ways evenly");
  ALPU_ASSERT(sets_ > 0, "cache has zero sets");
  mask_words_ = (config_.ways + 63) / 64;
  pow2_geometry_ = std::has_single_bit(config_.line_bytes) &&
                   std::has_single_bit(sets_);
  if (pow2_geometry_) {
    line_shift_ = static_cast<unsigned>(std::countr_zero(config_.line_bytes));
    set_shift_ = static_cast<unsigned>(std::countr_zero(sets_));
  }
  tags_.resize(sets_ * config_.ways);
  lru_.resize(sets_ * config_.ways);
  valid_.resize(sets_ * mask_words_);
  dirty_.resize(sets_ * mask_words_);
}

void Cache::flush() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
}

}  // namespace alpu::mem
