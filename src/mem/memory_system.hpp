// Memory-system front end: caches plus a backing store.
//
// A MemorySystem answers the only question a CPU cost model asks:
// "what does this load/store cost, in time, right now?"  It threads an
// access through an L1 (and optionally an L2) tag model and charges the
// backing store — either a fixed-latency local memory (the NIC's case:
// 30–32 cycles to local SRAM/DRAM, Table III) or the open-row DRAM model
// (the host's case: 85–90 cycles).
#pragma once

#include <cstdint>
#include <optional>

#include "common/check.hpp"
#include "common/time.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace alpu::mem {

using common::TimePs;

struct MemorySystemConfig {
  CacheConfig l1;
  TimePs l1_hit_ps = 4'000;  ///< 2 cycles at 500 MHz

  std::optional<CacheConfig> l2;  ///< present on the host, absent on the NIC
  TimePs l2_hit_ps = 0;

  /// Fixed miss-to-backing latency (beyond the last cache level).  Used
  /// when `use_dram` is false; this is the NIC's 30–32-cycle local memory.
  TimePs backend_ps = 62'000;  ///< 31 cycles at 500 MHz

  /// When true, the backing store is the open-row DRAM model and
  /// `backend_ps` is added as the constant controller/bus overhead.
  bool use_dram = false;
  DramConfig dram;
};

struct MemorySystemStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  TimePs total_time = 0;
};

/// One clock domain's view of memory.  Not a component: callers charge
/// the returned latency into their own timelines.
class MemorySystem {
 public:
  explicit MemorySystem(const MemorySystemConfig& config);

  /// Cost of a load of one word within the line containing `addr`.
  TimePs load(Addr addr, TimePs now) { return access(addr, now, false); }

  /// Cost of a store (write-allocate, write-back).
  TimePs store(Addr addr, TimePs now) { return access(addr, now, true); }

  /// Touch every line of [addr, addr+bytes) and return the summed cost
  /// (models structure-sized reads like pulling a queue entry).
  TimePs touch_range(Addr addr, std::uint64_t bytes, TimePs now,
                     bool is_write);

  const Cache& l1() const { return l1_; }
  const CacheStats& l1_stats() const { return l1_.stats(); }
  const MemorySystemStats& stats() const { return stats_; }
  Cache& l1_mutable() { return l1_; }

  /// Drop all cached state (power-on or firmware restart).
  void flush();

 private:
  TimePs access(Addr addr, TimePs now, bool is_write);

  MemorySystemConfig config_;
  Cache l1_;
  std::optional<Cache> l2_;
  std::optional<Dram> dram_;
  MemorySystemStats stats_;
};

// ---- inline implementations (hot path) --------------------------------
//
// Every modelled load and store funnels through access(); keeping it in
// the header lets callers inline the whole L1-hit fast path.

inline TimePs MemorySystem::access(Addr addr, TimePs now, bool is_write) {
  if (is_write) {
    ++stats_.stores;
  } else {
    ++stats_.loads;
  }

  TimePs cost = config_.l1_hit_ps;
  const CacheAccess a1 = l1_.access(addr, is_write);
  if (!a1.hit) {
    bool need_backend = true;
    if (l2_.has_value()) {
      cost += config_.l2_hit_ps;
      const CacheAccess a2 = l2_->access(addr, is_write);
      need_backend = !a2.hit;
    }
    if (need_backend) {
      cost += config_.backend_ps;
      if (dram_.has_value()) {
        cost += dram_->access(addr, now + cost);
      }
      // A dirty eviction also costs a writeback; model it as overlapped
      // with the fill except for one extra backend hop's occupancy, which
      // at this fidelity we fold into the fill (write buffers hide it).
    }
  }
  stats_.total_time += cost;
  return cost;
}

inline TimePs MemorySystem::touch_range(Addr addr, std::uint64_t bytes,
                                        TimePs now, bool is_write) {
  const std::uint64_t line = config_.l1.line_bytes;
  const Addr first = addr / line;
  const Addr last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
  TimePs total = 0;
  for (Addr l = first; l <= last; ++l) {
    total += access(l * line, now + total, is_write);
  }
  return total;
}

/// Bump allocator handing out simulated addresses for NIC/host data
/// structures, so queue entries occupy realistic, distinct cache lines.
class SimHeap {
 public:
  explicit SimHeap(Addr base = 0x1000'0000) : base_(base), next_(base) {}

  /// Allocate `bytes` aligned to `align` (power of two).
  Addr alloc(std::uint64_t bytes, std::uint64_t align = 64) {
    ALPU_ASSERT((align & (align - 1)) == 0, "alignment must be a power of two");
    next_ = (next_ + align - 1) & ~(align - 1);
    const Addr out = next_;
    next_ += bytes;
    return out;
  }

  Addr bytes_used() const { return next_ - base_; }

 private:
  Addr base_;
  Addr next_;
};

}  // namespace alpu::mem
