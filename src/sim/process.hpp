// Coroutine-based simulated processes.
//
// MPI rank programs and host-side drivers read naturally as sequential
// code ("send, then wait, then compute") even though they execute inside
// a discrete-event simulation.  C++20 coroutines provide exactly that:
// a Process suspends at `co_await` points (delays, triggers, child
// processes) and the engine resumes it when the awaited event fires.
//
//   sim::Process ping(Ctx& ctx) {
//     co_await ctx.mpi.send(...);   // suspends until send completes
//     co_await sim::delay(ctx.engine, 10_ns);
//   }
//   engine.spawn(ping(ctx));
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

#if ALPU_AUDIT
#include "check/audit.hpp"
#include "common/check.hpp"
#endif

namespace alpu::sim {

namespace detail {

// Coroutine frames churn at protocol rate (every modelled request,
// packet and delivery spawns one), and the default frame allocation is
// a malloc/free round trip per spawn.  This pool recycles frames in
// 64-byte size classes through thread-local LIFO free lists — each
// ShardGroup worker owns its lists, so no locks and no cross-thread
// ordering enters the simulation.  Under sanitizers the pool is
// bypassed: retained free-list blocks on exited shard threads would
// otherwise read as leaks.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ALPU_POOL_COROUTINE_FRAMES 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ALPU_POOL_COROUTINE_FRAMES 0
#else
#define ALPU_POOL_COROUTINE_FRAMES 1
#endif
#else
#define ALPU_POOL_COROUTINE_FRAMES 1
#endif

class FramePool {
 public:
  static void* allocate(std::size_t n) {
#if ALPU_AUDIT
    void* out = allocate_impl(n);
    check::frame_register(out);  // stale-capture generation tag
    return out;
#else
    return allocate_impl(n);
#endif
  }

  static void release(void* p, std::size_t n) noexcept {
#if ALPU_AUDIT
    check::frame_retire(p);
#endif
    release_impl(p, n);
  }

 private:
  static void* allocate_impl(std::size_t n) {
#if ALPU_POOL_COROUTINE_FRAMES
    const std::size_t bucket = (n + 63) >> 6;
    if (bucket < kBuckets) {
      void*& head = lists_[bucket];
      if (head != nullptr) {
        void* out = head;
        head = *static_cast<void**>(out);
        return out;
      }
      return ::operator new(bucket << 6);
    }
#endif
    return ::operator new(n);
  }

  static void release_impl(void* p, std::size_t n) noexcept {
#if ALPU_POOL_COROUTINE_FRAMES
    const std::size_t bucket = (n + 63) >> 6;
    if (bucket < kBuckets) {
      *static_cast<void**>(p) = lists_[bucket];
      lists_[bucket] = p;
      return;
    }
#endif
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kBuckets = 17;  ///< frames up to 1 KiB pooled
  // lint: ok(mutable-static) — thread-confined by construction: each
  // shard thread recycles only frames it allocated (coroutines never
  // migrate shards), so the free lists are private per thread and
  // cannot order cross-shard behaviour.
  static thread_local inline void* lists_[kBuckets];
};

}  // namespace detail

/// A lazily-started coroutine representing simulated sequential activity.
///
/// A Process may be either spawned as a root activity on the engine
/// (Engine-independent: `spawn(engine, std::move(p))`) or awaited from
/// another Process (structured nesting, e.g. MPI_Send = Isend + Wait).
class [[nodiscard]] Process {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // resumed at final suspend
    bool* done_flag = nullptr;             // optional external completion flag

    // Route frame allocation through the recycling pool (the sized
    // delete is guaranteed: frames always destroy via handle.destroy()).
    static void* operator new(std::size_t n) {
      return detail::FramePool::allocate(n);
    }
    static void operator delete(void* p, std::size_t n) noexcept {
      detail::FramePool::release(p, n);
    }

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto& p = h.promise();
        if (p.done_flag != nullptr) *p.done_flag = true;
        return p.continuation ? p.continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  Process() = default;
  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Process() { destroy(); }

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a Process runs it to completion, then resumes the awaiter
  /// (symmetric transfer; no engine round-trip for the handoff).
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() const noexcept {}

 private:
  friend class ProcessPool;

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Owns root processes spawned onto an engine and tears them down safely.
///
/// The pool must outlive the engine run; destroying the pool destroys any
/// still-suspended coroutines (e.g. after Engine::stop()).
class ProcessPool {
 public:
  explicit ProcessPool(Engine& engine) : engine_(engine) {}

  /// Start `p` as a root activity at the current simulation time.
  /// Returns an index usable with `done(i)`.
  std::size_t spawn(Process p) { return spawn_on(engine_, std::move(p)); }

  /// Start `p` on a specific engine (a shard of a ShardGroup).  The pool
  /// still owns the coroutine; it only kicks off — and thereafter runs —
  /// on `engine`'s thread.
  std::size_t spawn_on(Engine& engine, Process p);

  /// True once the i-th spawned process has run to completion.
  bool done(std::size_t i) const { return flags_[i] != nullptr && *flags_[i]; }

  /// True when every spawned process has completed.
  bool all_done() const;

  std::size_t size() const { return owned_.size(); }

 private:
  Engine& engine_;
  std::vector<Process> owned_;
  std::vector<std::unique_ptr<bool>> flags_;
};

/// Awaitable that suspends the current process for `d` picoseconds.
/// A zero delay still yields through the event queue (models "end of
/// this delta cycle" and keeps ordering deterministic).
struct DelayAwaiter {
  Engine& engine;
  common::TimePs d;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
#if ALPU_AUDIT
    // Tag the frame's generation at capture time; if the frame is
    // destroyed (or recycled by a new coroutine) before the delay
    // fires, the resume would be a use-after-free — catch it instead.
    const std::uint64_t tag = check::frame_current_tag(h.address());
    engine.schedule_in(d, [h, tag] {
      ALPU_ASSERT(check::frame_live(h.address(), tag),
                  "delay resumed a coroutine whose frame was destroyed "
                  "or recycled (stale capture)");
      h.resume();
    });
#else
    engine.schedule_in(d, [h] { h.resume(); });
#endif
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& engine, common::TimePs d) {
  return DelayAwaiter{engine, d};
}

/// A broadcast condition variable for processes.
///
/// Processes `co_await trigger.wait(engine)`; `fire()` resumes every
/// waiter (through the event queue, preserving determinism).  There is no
/// implicit predicate: callers re-check their condition after waking, in
/// the usual condition-variable loop style.
class Trigger {
 public:
  struct Awaiter {
    Trigger& trigger;
    Engine& engine;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      trigger.waiters_.push_back(WaitEntry{&engine, h});
    }
    void await_resume() const noexcept {}
  };

  Awaiter wait(Engine& engine) { return Awaiter{*this, engine}; }

  /// Resume all current waiters at the present simulation time.
  /// Waiters added during fire() (re-waits) are not woken by this call.
  void fire();

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  struct WaitEntry {
    Engine* engine;
    std::coroutine_handle<> handle;
  };
  std::vector<WaitEntry> waiters_;
};

}  // namespace alpu::sim
