#include "sim/watchdog.hpp"

#include <cstdio>

namespace alpu::sim {

std::size_t StallWatchdog::on_quiescent(common::TimePs now) {
  std::size_t undrained = 0;
  for (const Check& check : checks_) {
    if (check.undrained && check.undrained()) ++undrained;
  }
  if (undrained == 0) return 0;
  ++stalls_detected_;
  char head[160];
  std::snprintf(head, sizeof(head),
                "STALL: simulation quiescent at %llu ps with undrained "
                "protocol work on %zu of %zu checks",
                static_cast<unsigned long long>(now), undrained,
                checks_.size());
  const auto emit = [this](const std::string& line) {
    if (sink_) {
      sink_(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  };
  emit(head);
  // Dump EVERY snapshot, not only the undrained ones: a wedged receiver
  // is diagnosed by what its peers hold against it.
  for (const Check& check : checks_) {
    if (check.snapshot) emit("  " + check.snapshot());
  }
  return undrained;
}

}  // namespace alpu::sim
