#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "sim/watchdog.hpp"

namespace alpu::sim {

namespace {

/// Strict total order on the canonical key.  src_seq is monotone per
/// src_node, so no two events from one node compare equal and the sort
/// is a total order over any merge set.
bool canonical_less(const CrossKey& a, const CrossKey& b) {
  if (a.when != b.when) return a.when < b.when;
  if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
  if (a.src_node != b.src_node) return a.src_node < b.src_node;
  return a.src_seq < b.src_seq;
}

#if ALPU_AUDIT
/// CrossKey -> audit CrossStamp (field-for-field; the audit layer keeps
/// its own mirror type to stay below the sim kernel in the link order).
check::CrossStamp to_stamp_key(const CrossKey& k) {
  check::CrossStamp s;
  s.when = k.when;
  s.sent_at = k.sent_at;
  s.src_node = k.src_node;
  s.src_seq = k.src_seq;
  return s;
}
#endif

}  // namespace

ShardGroup::ShardGroup(unsigned shards) {
  ALPU_ASSERT(shards >= 1, "a ShardGroup needs at least one shard");
  engines_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    engines_.push_back(std::make_unique<Engine>());
  }
  outbox_.resize(shards);
#if ALPU_AUDIT
  // Audit builds audit every group by default — the stock CI workloads
  // (fig5/fig6 sweeps, chaos soak) get checked without call-site changes.
  owned_auditor_ = std::make_unique<check::Auditor>();
  set_audit(owned_auditor_.get());
#endif
}

ShardGroup::~ShardGroup() = default;

#if ALPU_AUDIT
void ShardGroup::set_audit(check::Auditor* auditor) {
  ALPU_ASSERT(auditor != nullptr, "a ShardGroup cannot run unaudited "
              "in an audit build; pass the auditor to replace");
  auditor_ = auditor;
  auditor_->bind(size());
  for (unsigned i = 0; i < size(); ++i) {
    engines_[i]->set_audit(&auditor_->shard(i));
  }
}
#endif

void ShardGroup::post(unsigned src_shard, unsigned dst_shard,
                      const CrossKey& key, EventCallback fn,
                      EventId* id_out) {
  ALPU_ASSERT(parallel(), "post() is only meaningful with >1 shard");
  ALPU_DEBUG_ASSERT(src_shard < size() && dst_shard < size(),
                    "shard index out of range");
  CrossEvent e{key, dst_shard, std::move(fn), id_out};
#if ALPU_AUDIT
  // Capture the sender's provenance now, on the sender's thread — at
  // merge time the stamp identifies which event posted the delivery.
  e.provenance =
      auditor_->shard(src_shard).make_stamp(engines_[src_shard]->now());
#endif
  outbox_[src_shard].push_back(std::move(e));
}

void ShardGroup::merge_and_plan() {
#if ALPU_AUDIT
  // Fold the window that just completed (trace hash, forbidden-window
  // bound for check_post) before touching the outboxes.
  auditor_->on_barrier();
#endif
  // Gather and sort this window's cross-shard events canonically, then
  // schedule them onto their destination engines in that order — the
  // destination's monotone sequence numbers turn sort order into firing
  // order for same-timestamp events.
  std::size_t total = 0;
  for (const auto& box : outbox_) total += box.size();
  if (total > 0) {
    merge_scratch_.clear();
    merge_scratch_.reserve(total);
    for (auto& box : outbox_) {
      for (CrossEvent& e : box) merge_scratch_.push_back(std::move(e));
      box.clear();
    }
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const CrossEvent& a, const CrossEvent& b) {
                return canonical_less(a.key, b.key);
              });
    for (CrossEvent& e : merge_scratch_) {
#if ALPU_AUDIT
      // Check the conservative contract before scheduling: a violation
      // must be reported with the sender's provenance even when the
      // destination engine would reject (or worse, accept) the time.
      auditor_->check_post(to_stamp_key(e.key), e.provenance);
#endif
      const EventId id =
          engines_[e.dst_shard]->schedule_at(e.key.when, std::move(e.fn));
      if (e.id_out != nullptr) *e.id_out = id;
#if ALPU_AUDIT
      // Rewrite the event's stamp as a cross delivery: sender provenance
      // plus merge generation and canonical key, which on_execute uses
      // for the lookahead and merge-order checks.
      check::EventStamp stamp = e.provenance;
      stamp.cross = true;
      stamp.window_gen = auditor_->generation();
      stamp.key = to_stamp_key(e.key);
      engines_[e.dst_shard]->set_event_stamp(id, stamp);
#endif
    }
    merge_scratch_.clear();
  }

  // Size the next window: the earliest pending event anywhere plus the
  // conservative lookahead.  Nothing pending -> the whole group drained.
  TimePs t_min = common::kTimeNever;
  for (auto& e : engines_) t_min = std::min(t_min, e->next_event_time());
  if (t_min == common::kTimeNever) {
    done_ = true;
#if ALPU_AUDIT
    auditor_->end_windows();
#endif
    return;
  }
  ++windows_run_;
  window_end_ = t_min + lookahead_;
#if ALPU_AUDIT
  auditor_->begin_window(t_min, window_end_);
#endif
}

void ShardGroup::run_windows(TimePs lookahead) {
  lookahead_ = lookahead;
  done_ = false;
  windows_run_ = 0;

  // Init every shard's components up front (in shard order, on this
  // thread) so the first window sees all t=0 events.
  for (auto& e : engines_) e->ensure_initialized();

  std::barrier sync(static_cast<std::ptrdiff_t>(size()),
                    [this]() noexcept { merge_and_plan(); });
  auto worker = [this, &sync](unsigned shard_index) {
    for (;;) {
      // The completion step above runs between every arrival and every
      // release, so window_end_/done_ reads and outbox hand-offs are
      // ordered by the barrier (TSan-clean, no atomics needed).
      sync.arrive_and_wait();
      if (done_) return;
      engines_[shard_index]->run_window(window_end_);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(size() - 1);
  for (unsigned i = 1; i < size(); ++i) threads.emplace_back(worker, i);
  worker(0);  // the caller is shard 0's worker
  for (std::thread& t : threads) t.join();
}

TimePs ShardGroup::run_all(TimePs lookahead) {
  if (!parallel()) {
    // Single shard: Engine::run() reaches quiescence itself, so the
    // engine-level hook is the natural (and only) poll point.
    if (watchdog_ != nullptr) engines_[0]->set_watchdog(watchdog_);
#if ALPU_AUDIT
    // Triage mode needs window-aligned traces: run even a single shard
    // through the same lookahead windows a parallel group would use, so
    // its per-window hashes compare against a multi-shard run.  The
    // window plan depends only on (event times, lookahead), not on the
    // partition, so the boundaries match across shard counts.
    if (auditor_->trace_enabled() && lookahead > 0) {
      auditor_->begin_run(lookahead);
      run_windows(lookahead);
      return engines_[0]->run();  // finish hooks on the drained heap
    }
    auditor_->begin_run(lookahead);
#endif
    // Exactly the pre-parallel simulator: same engine, same run loop,
    // same event order, finish hooks fired by run() itself.
    return engines_[0]->run();
  }
  ALPU_ASSERT(lookahead > 0,
              "parallel windows need a positive conservative lookahead");
#if ALPU_AUDIT
  auditor_->begin_run(lookahead);
#endif
  run_windows(lookahead);
  // Drained: fire finish hooks per shard (run() on an empty heap).
  TimePs end = 0;
  for (auto& e : engines_) end = std::max(end, e->run());
  // Group quiescence: every shard drained and no cross-shard event is
  // in any outbox — poll the watchdog once over the whole machine.
  if (watchdog_ != nullptr) watchdog_->on_quiescent(end);
  return end;
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t sum = 0;
  for (const auto& e : engines_) sum += e->events_executed();
  return sum;
}

TimePs ShardGroup::max_now() const {
  TimePs t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

std::uint64_t ShardGroup::pending_events() const {
  std::uint64_t sum = 0;
  for (const auto& e : engines_) sum += e->pending_events();
  for (const auto& box : outbox_) sum += box.size();
  return sum;
}

}  // namespace alpu::sim
