#include "sim/process.hpp"

#include <memory>

#include "common/check.hpp"

namespace alpu::sim {

std::size_t ProcessPool::spawn_on(Engine& engine, Process p) {
  ALPU_ASSERT(p.valid(), "spawning an invalid (moved-from or done) process");
  auto flag = std::make_unique<bool>(false);
  p.handle_.promise().done_flag = flag.get();
  const auto handle = p.handle_;
  owned_.push_back(std::move(p));
  flags_.push_back(std::move(flag));
  // Kick off at the current time, through the queue so that spawning
  // inside an event callback does not reenter model code immediately.
#if ALPU_AUDIT
  const std::uint64_t tag = check::frame_current_tag(handle.address());
  engine.schedule_in(0, [handle, tag] {
    ALPU_ASSERT(check::frame_live(handle.address(), tag),
                "spawned process destroyed before its kick-off event "
                "(stale capture)");
    handle.resume();
  });
#else
  engine.schedule_in(0, [handle] { handle.resume(); });
#endif
  return owned_.size() - 1;
}

bool ProcessPool::all_done() const {
  for (const auto& f : flags_) {
    if (!*f) return false;
  }
  return true;
}

void Trigger::fire() {
  // Swap out first: a resumed waiter may immediately wait again, and that
  // new wait must not be woken by this same fire.
  std::vector<WaitEntry> current;
  current.swap(waiters_);
  for (const WaitEntry& w : current) {
#if ALPU_AUDIT
    const std::uint64_t tag = check::frame_current_tag(w.handle.address());
    w.engine->schedule_in(0, [h = w.handle, tag] {
      ALPU_ASSERT(check::frame_live(h.address(), tag),
                  "trigger resumed a waiter whose frame was destroyed "
                  "or recycled (stale capture)");
      h.resume();
    });
#else
    w.engine->schedule_in(0, [h = w.handle] { h.resume(); });
#endif
  }
}

}  // namespace alpu::sim
