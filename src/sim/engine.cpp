#include "sim/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sim/watchdog.hpp"

namespace alpu::sim {

Component::Component(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {
  engine_.components_.push_back(this);
}

Component::~Component() {
  auto& v = engine_.components_;
  v.erase(std::remove(v.begin(), v.end(), this), v.end());
}

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t index = free_head_;
    Slot& s = slot(index);
    free_head_ = s.next_free;
    s.next_free = kNoFreeSlot;
    return index;
  }
  ALPU_ASSERT(slot_count_ < kSlotMask, "too many concurrent events");
  if ((slot_count_ & kBlockMask) == 0) {
    blocks_.push_back(std::make_unique<Slot[]>(kSlotsPerBlock));
  }
  return slot_count_++;
}

void Engine::heap_push(const QueueItem& item) {
  heap_.push_back(item);
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 3;
    if (!earlier(item, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = item;
  ALPU_INVARIANT(heap_ordered(), "heap_push broke the event-heap order");
}

bool Engine::heap_ordered() const {
  // 8-ary min-heap property: no child fires before its parent.  The
  // strict total order on (when, id) makes this the full determinism
  // guarantee — pop order is forced, whatever the heap's shape.
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    if (earlier(heap_[i], heap_[(i - 1) >> 3])) return false;
  }
  return true;
}

void Engine::heap_pop() {
  const QueueItem last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = (hole << 3) + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t limit = std::min(first_child + 8, n);
    for (std::size_t c = first_child + 1; c < limit; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = last;
  ALPU_INVARIANT(heap_ordered(), "heap_pop broke the event-heap order");
}

EventId Engine::schedule_at(TimePs when, EventCallback fn) {
  ALPU_ASSERT(when >= now_, "cannot schedule into the past");
  ALPU_ASSERT(next_seq_ < kMaxSeq, "sequence space exhausted");
  const std::uint32_t index = acquire_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
#if ALPU_AUDIT
  s.stamp = audit_ != nullptr ? audit_->make_stamp(now_) : check::EventStamp{};
#endif
  const EventId id = (next_seq_++ << kSlotBits) | index;
  s.key = id;
  heap_push(QueueItem{when, id});
  ++live_events_;
  return id;
}

void Engine::cancel(EventId id) {
  const std::uint32_t index = static_cast<std::uint32_t>(id & kSlotMask);
  if (index >= slot_count_) return;  // never-issued id
  Slot& s = slot(index);
  if (s.key != id) return;           // fired, already cancelled, or unknown
  // O(1) cancel: drop the callback and recycle the slot.  The heap item
  // stays behind as a 16-byte tombstone and is skipped on pop by the key
  // compare (sequence numbers are never reused, so it can't false-match).
  s.fn.reset();
  release_slot(index);
  --live_events_;
}

#if ALPU_AUDIT
void Engine::set_event_stamp(EventId id, const check::EventStamp& stamp) {
  const std::uint32_t index = static_cast<std::uint32_t>(id & kSlotMask);
  ALPU_ASSERT(index < slot_count_ && slot(index).key == id,
              "stamping an event that is not pending");
  slot(index).stamp = stamp;
}
#endif

void Engine::init_components() {
  if (components_initialized_) return;
  components_initialized_ = true;
  for (Component* c : components_) c->init();
}

void Engine::finish_components() {
  for (Component* c : components_) c->finish();
}

TimePs Engine::run() { return run_until(common::kTimeNever); }

TimePs Engine::next_event_time() {
  while (!heap_.empty()) {
    const QueueItem top = heap_.front();
    const std::uint32_t index = static_cast<std::uint32_t>(top.id & kSlotMask);
    if (slot(index).key == top.id) return top.when;
    heap_pop();  // tombstone of a cancelled event
  }
  return common::kTimeNever;
}

TimePs Engine::run_window(TimePs end) {
  init_components();
  while (!heap_.empty()) {
    const QueueItem top = heap_.front();
    const std::uint32_t index = static_cast<std::uint32_t>(top.id & kSlotMask);
    Slot& s = slot(index);
    if (s.key != top.id) {
      heap_pop();
      continue;
    }
    // Strict bound: an event at exactly `end` belongs to the next window
    // (the coordinator sized this window so no cross-shard influence can
    // land before `end`, not at it).
    if (top.when >= end) break;
    heap_pop();
#if ALPU_AUDIT
    const check::EventStamp stamp = s.stamp;  // copy out before slot reuse
#endif
    EventCallback fn = std::move(s.fn);
    release_slot(index);
    --live_events_;
    now_ = top.when;
    ++events_executed_;
#if ALPU_AUDIT
    if (audit_ != nullptr) audit_->on_execute(top.when, stamp);
#endif
    fn();
  }
  return now_;
}

TimePs Engine::run_until(TimePs deadline) {
  init_components();
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    const QueueItem top = heap_.front();  // trivially-copyable, cheap
    const std::uint32_t index = static_cast<std::uint32_t>(top.id & kSlotMask);
    Slot& s = slot(index);
    if (s.key != top.id) {
      heap_pop();  // tombstone of a cancelled event
      continue;
    }
    if (top.when > deadline) break;
    heap_pop();
#if ALPU_AUDIT
    const check::EventStamp stamp = s.stamp;  // copy out before slot reuse
#endif
    // Move the callback out and release the slot before invoking: the
    // callback may schedule new events (growing or reusing the pool) or
    // cancel its own id, both of which must see a consistent pool.
    EventCallback fn = std::move(s.fn);
    release_slot(index);
    --live_events_;
    now_ = top.when;
    ++events_executed_;
#if ALPU_AUDIT
    if (audit_ != nullptr) audit_->on_execute(top.when, stamp);
#endif
    fn();
  }
  if (heap_.empty() && deadline == common::kTimeNever) {
    // Quiescent with no deadline: the run is over.  Let an installed
    // watchdog inspect for undrained protocol work before the finish
    // hooks flush stats (the components are still fully intact here).
    if (watchdog_ != nullptr) watchdog_->on_quiescent(now_);
    finish_components();
  }
  return now_;
}

}  // namespace alpu::sim
