#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>

namespace alpu::sim {

Component::Component(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {
  engine_.components_.push_back(this);
}

Component::~Component() {
  auto& v = engine_.components_;
  v.erase(std::remove(v.begin(), v.end(), this), v.end());
}

EventId Engine::schedule_at(TimePs when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Entry{when, id, std::move(fn)});
  return id;
}

void Engine::cancel(EventId id) {
  // Lazy cancellation: the entry stays in the heap and is skipped on pop.
  cancelled_.insert(id);
}

void Engine::init_components() {
  if (components_initialized_) return;
  components_initialized_ = true;
  for (Component* c : components_) c->init();
}

void Engine::finish_components() {
  for (Component* c : components_) c->finish();
}

TimePs Engine::run() { return run_until(common::kTimeNever); }

TimePs Engine::run_until(TimePs deadline) {
  init_components();
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const Entry& top = queue_.top();
    if (cancelled_.erase(top.id) != 0) {
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    // Move the callback out before popping so it may schedule new events.
    Entry entry{top.when, top.id, std::move(const_cast<Entry&>(top).fn)};
    queue_.pop();
    now_ = entry.when;
    ++events_executed_;
    entry.fn();
  }
  if (queue_.empty() && deadline == common::kTimeNever) {
    finish_components();
  }
  return now_;
}

}  // namespace alpu::sim
