// Simulated-time stall watchdog.
//
// A discrete-event simulation never hangs — it drains.  The failure
// mode of a wedged protocol is therefore silent: the event heap
// empties while rendezvous handshakes, retransmit windows, RNR-held
// NACK windows or unreturned flow-control credits are still pending,
// and the run "completes" with work undone.  The watchdog turns that
// into a diagnosed event: Engine::run() (and ShardGroup::run_all())
// invoke on_quiescent() when the heap drains with no deadline, and the
// watchdog polls its registered checks — one per NIC, typically — for
// undrained protocol work.  Any hit dumps every registered snapshot
// (queue depths, pool occupancy, reliability windows, credit balances)
// to the sink for triage.
//
// The watchdog never mutates simulation state and fires no events, so
// registering one cannot perturb determinism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace alpu::sim {

class StallWatchdog {
 public:
  /// One quiescence check (typically one NIC's view).  `undrained`
  /// answers "does protocol-level work remain that no pending event can
  /// complete?"; `snapshot` renders the diagnostic line for the dump.
  struct Check {
    std::string name;
    // lint: ok(std-function-hot-path) — cold path: polled once per run,
    // at quiescence, never per event.
    std::function<bool()> undrained;
    // lint: ok(std-function-hot-path) — cold path, see above.
    std::function<std::string()> snapshot;
  };

  void add_check(Check check) { checks_.push_back(std::move(check)); }
  void clear() { checks_.clear(); }
  std::size_t check_count() const { return checks_.size(); }

  /// Called at quiescence (`now` = final simulated time).  Returns the
  /// number of checks reporting undrained work; nonzero dumps every
  /// snapshot to the sink and counts one stall.
  std::size_t on_quiescent(common::TimePs now);

  /// Stalls detected over the watchdog's lifetime (a run that drains
  /// cleanly contributes zero).
  std::uint64_t stalls_detected() const { return stalls_detected_; }

  /// Redirect the diagnostic dump (tests); default writes to stderr.
  // lint: ok(std-function-hot-path) — configuration, not per-event.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }

 private:
  std::vector<Check> checks_;
  // lint: ok(std-function-hot-path) — invoked only on a detected stall.
  std::function<void(const std::string&)> sink_;
  std::uint64_t stalls_detected_ = 0;
};

}  // namespace alpu::sim
