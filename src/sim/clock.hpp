// Clocked-component support.
//
// Cycle-level models (the ALPU, the NIC firmware loop) advance one cycle
// at a time on a fixed clock.  A naive implementation would tick every
// cycle for the whole simulation; instead a Clock sleeps whenever its
// handler reports it has no work, and owners wake() it when new input
// arrives — event-driven cycle accuracy.
#pragma once

#include <functional>

#include "sim/engine.hpp"

namespace alpu::sim {

class Clock {
 public:
  /// The per-cycle handler.  Returns true to keep ticking on the next
  /// edge, false to go idle until wake() is called.
  // lint: ok(std-function-hot-path) — one per Clock, bound at construction;
  // ticks invoke it without rebuilding.
  using Handler = std::function<bool()>;

  Clock(Engine& engine, common::ClockPeriod period, Handler handler)
      : engine_(engine), period_(period), handler_(std::move(handler)) {}

  /// Start (or restart) ticking at the next clock edge >= now.
  /// Idempotent while already running.
  void wake();

  /// True if a tick is currently scheduled.
  bool running() const { return running_; }

  common::ClockPeriod period() const { return period_; }

  /// Cycles executed so far (for utilization stats).
  std::uint64_t cycles() const { return cycles_; }

 private:
  void tick();

  Engine& engine_;
  common::ClockPeriod period_;
  Handler handler_;
  bool running_ = false;
  std::uint64_t cycles_ = 0;
};

}  // namespace alpu::sim
