#include "sim/clock.hpp"

namespace alpu::sim {

void Clock::wake() {
  if (running_) return;
  running_ = true;
  const common::TimePs edge = period_.next_edge(engine_.now());
  engine_.schedule_at(edge, [this] { tick(); });
}

void Clock::tick() {
  ++cycles_;
  const bool more = handler_();
  if (more) {
    engine_.schedule_in(period_.period(), [this] { tick(); });
  } else {
    running_ = false;
  }
}

}  // namespace alpu::sim
