// Conservative time-window parallel DES (YAWNS / bounded-lag style).
//
// A ShardGroup owns N independent single-threaded Engines ("shards").
// The model partitions its components across the shards (the Machine
// assigns each simulated node to one shard) and the group advances all
// shards in lock-step windows:
//
//   1. barrier: merge every shard's outbox of cross-shard events into
//      the destination engines, in one canonical order;
//   2. compute T = min over shards of next_event_time(), and the window
//      end W = T + lookahead;
//   3. release the workers: each shard runs its own events with
//      timestamp < W on its own thread, posting any event destined for
//      another shard (or required to be in canonical order — see below)
//      to its outbox instead of scheduling it directly;
//   4. repeat until every heap and outbox is empty, then run each
//      shard's finish hooks.
//
// Safety (why no shard can miss an influence): `lookahead` must satisfy
// the conservative contract — a model action executed at time t may only
// post events with timestamp >= t + lookahead onto another shard.  The
// network provides exactly that bound (min over links of wire latency
// plus the header serialisation floor, Network::min_lookahead), so every
// event posted during window [T, W) lands at >= T + lookahead = W and is
// merged at the next barrier before any shard reaches W.
//
// Determinism (why the output is byte-identical at any shard count):
// merged events are sorted by the canonical key
//
//     (when, sent_at, src_node, src_seq)
//
// — nothing in it depends on the partition or on thread timing.  `when`
// orders deliveries in time; `sent_at`/`src_node`/`src_seq` (the send
// time, the sending node, and a per-sending-node monotone counter) break
// same-instant ties identically no matter which shard the sender landed
// on.  The destination engine then assigns its own monotone sequence
// numbers in sorted order, so same-`when` merged events fire in key
// order.  Note the key deliberately differs from a per-shard sequence:
// a (src_shard, per-shard seq) key would order ties differently at
// different shard counts.
//
// A ShardGroup of size 1 never starts a thread, never uses the outbox,
// and run_all() is exactly Engine::run() — the single-threaded path is
// byte-for-byte the pre-parallel simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "sim/engine.hpp"

#if ALPU_AUDIT
#include "check/audit.hpp"
#endif

namespace alpu::sim {

/// Canonical merge key of one cross-shard event (see file comment).
struct CrossKey {
  TimePs when = 0;      ///< delivery timestamp on the destination shard
  TimePs sent_at = 0;   ///< timestamp of the action that produced it
  std::uint32_t src_node = 0;  ///< model-level source (partition-stable)
  std::uint64_t src_seq = 0;   ///< per-src_node monotone counter
};

class ShardGroup {
 public:
  /// Create `shards` >= 1 independent engines.
  explicit ShardGroup(unsigned shards);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  unsigned size() const { return static_cast<unsigned>(engines_.size()); }
  Engine& shard(unsigned i) { return *engines_[i]; }
  bool parallel() const { return engines_.size() > 1; }

  /// Post an event into `dst_shard`'s engine at the next window barrier.
  /// Must be called from `src_shard`'s worker thread during a window (or
  /// before run_all); requires size() > 1.  If `id_out` is non-null the
  /// EventId assigned at the barrier handoff is stored there (readable
  /// by destination-shard events in later windows — the barrier orders
  /// the write before them).
  void post(unsigned src_shard, unsigned dst_shard, const CrossKey& key,
            EventCallback fn, EventId* id_out = nullptr);

  /// Run every shard to completion and fire finish hooks.  `lookahead`
  /// is the conservative bound described in the file comment; it must be
  /// > 0 when size() > 1.  Returns the final simulated time (the max
  /// over shards).  size() == 1 delegates to Engine::run() unchanged.
  TimePs run_all(TimePs lookahead);

  /// Sum of events executed across shards (equals the single-engine
  /// count for the same model: the partition adds no events).
  std::uint64_t events_executed() const;

  /// Max of shard clocks (the global end time after run_all).
  TimePs max_now() const;

  /// Live events pending across all shards plus unposted outbox entries.
  std::uint64_t pending_events() const;

  /// Windows the last run_all() executed (1 window == one barrier round;
  /// reported by bench_engine as coordination-overhead context).
  std::uint64_t windows_run() const { return windows_run_; }

  /// Install a stall watchdog polled once per run_all() at group
  /// quiescence: delegated to shard 0's engine in single-shard mode
  /// (where run_all IS Engine::run), invoked by the coordinator after
  /// the final drain in parallel mode — exactly one poll either way.
  /// nullptr detaches.  Not owned.
  void set_watchdog(StallWatchdog* watchdog) { watchdog_ = watchdog; }

#if ALPU_AUDIT
  /// Replace the group's own auditor with an externally owned one (the
  /// triage CLI keeps the auditor across the run to read its trace).
  /// Rebinds the auditor to this group's shard count and rewires every
  /// engine's audit hook.
  void set_audit(check::Auditor* auditor);
  check::Auditor& auditor() { return *auditor_; }
#endif

 private:
  struct CrossEvent {
    CrossKey key;
    unsigned dst_shard = 0;
    EventCallback fn;
    EventId* id_out = nullptr;
#if ALPU_AUDIT
    /// Stamp captured when the sender posted the event (provenance of
    /// the scheduling action, before the merge rewrites it as cross).
    check::EventStamp provenance{};
#endif
  };

  /// Barrier-completion step: merge + schedule all outboxes, then size
  /// the next window.  Runs on exactly one thread while all workers are
  /// parked in the barrier.
  void merge_and_plan();
  void run_windows(TimePs lookahead);

  std::vector<std::unique_ptr<Engine>> engines_;
  /// outbox_[s]: events posted by shard s during the current window.
  /// Touched only by shard s's thread inside a window and only by the
  /// barrier-completion thread between windows (barrier-ordered).
  std::vector<std::vector<CrossEvent>> outbox_;
  std::vector<CrossEvent> merge_scratch_;
  TimePs lookahead_ = 0;
  TimePs window_end_ = 0;
  bool done_ = false;
  std::uint64_t windows_run_ = 0;
  StallWatchdog* watchdog_ = nullptr;
#if ALPU_AUDIT
  /// In audit builds every group carries an auditor by default, so the
  /// existing CI workloads (fig5/fig6 sweeps, chaos) are audited with no
  /// call-site changes; set_audit() swaps in an external one for triage.
  std::unique_ptr<check::Auditor> owned_auditor_;
  check::Auditor* auditor_ = nullptr;
#endif
};

}  // namespace alpu::sim
