// Discrete-event simulation kernel.
//
// This is the Enkidu substitute described in DESIGN.md: a single-threaded
// component-based DES.  Time advances only through the event queue; all
// model state changes happen inside event callbacks, so no locking is ever
// needed.  Determinism: events at equal timestamps fire in the order they
// were scheduled (a monotone sequence number breaks ties), which makes
// every experiment bit-reproducible from its seed.
//
// Hot-path design (see docs/SIMULATOR.md, "Event pool"):
//
//  * Callbacks are stored in an EventCallback — a small-buffer-optimized
//    move-only callable.  Every capture the simulator's components
//    actually schedule (coroutine handles, `this` pointers, Packet,
//    Completion and HostRequest copies) fits in the inline buffer, so
//    the steady state allocates nothing per event; anything larger falls
//    back to the heap and stays correct.
//
//  * Pending events live in a slot pool indexed by the low bits of the
//    EventId; the high bits carry the slot's generation.  Cancellation
//    validates the generation and releases the slot in O(1) — no hash
//    lookup per cancel, no hash probe per pop (the heap item is a 24-byte
//    POD whose staleness is a single generation compare), and cancelling
//    an already-fired id is a true no-op (nothing is remembered forever).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

#if ALPU_AUDIT
#include "check/audit.hpp"
#endif

namespace alpu::sim {

using common::TimePs;

/// Handle for cancelling a scheduled event.  Encodes {generation, slot}.
using EventId = std::uint64_t;

/// Move-only type-erased `void()` callable with inline storage for the
/// capture sizes the simulator schedules on its hot path.
class EventCallback {
 public:
  /// Sized for the largest hot-path capture: the ~96-byte HostRequest
  /// copy (scheduled once per MPI call by Host::submit and again by the
  /// NIC's doorbell leg) plus `this`.  Coroutine resumes — the dominant
  /// event — use 8 bytes; the wider buffer trades a little slot-pool
  /// memory for keeping every steady-state schedule allocation-free.
  static constexpr std::size_t kInlineBytes = 112;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit by design (lambda -> callback)
    emplace(std::forward<F>(f));
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    ALPU_DEBUG_ASSERT(ops_ != nullptr, "invoking an empty EventCallback");
    ops_->invoke(&storage_);
  }

  /// Destroy the held callable (releases captured resources eagerly —
  /// used on cancel so a dead timeout does not pin its captures).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr bool fits_inline_v =
      sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static F* get(void* s) { return std::launder(reinterpret_cast<F*>(s)); }
    static void invoke(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) {
      F* from = get(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* s) { get(s)->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F* get(void* s) { return *std::launder(reinterpret_cast<F**>(s)); }
    static void invoke(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) (F*)(get(src));  // the pointer moves; the object stays put
    }
    // lint: ok(raw-new-delete) — this IS the EventCallback heap spill
    // path for oversized captures; everything under kInlineBytes stays
    // in the SBO and never reaches it.
    static void destroy(void* s) { delete get(s); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F0>
  void emplace(F0&& f) {
    using F = std::decay_t<F0>;
    if constexpr (fits_inline_v<F>) {
      ::new (static_cast<void*>(&storage_)) F(std::forward<F0>(f));
      ops_ = &InlineOps<F>::ops;
    } else {
      // lint: ok(raw-new-delete) — the spill path; see HeapOps.
      ::new (static_cast<void*>(&storage_)) (F*)(new F(std::forward<F0>(f)));
      ops_ = &HeapOps<F>::ops;
    }
  }

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class Engine;
class StallWatchdog;

/// Base class for simulation components (NIC, ALPU, network, ...).
///
/// Components register themselves with the engine for the init/finish
/// lifecycle hooks; all interesting behaviour happens via events and
/// clocks they schedule on the engine.
class Component {
 public:
  Component(Engine& engine, std::string name);
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  Engine& engine() const { return engine_; }

  /// Called by Engine::run() once before the first event fires.
  virtual void init() {}
  /// Called after the simulation finishes (stats flushing).
  virtual void finish() {}

 private:
  Engine& engine_;
  std::string name_;
};

/// The event-driven simulation engine.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.  Only meaningful inside callbacks or after run.
  TimePs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now).
  EventId schedule_at(TimePs when, EventCallback fn);

  /// Schedule `fn` to run `delay` after now.
  EventId schedule_in(TimePs delay, EventCallback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event in O(1).  Cancelling an already-fired,
  /// already-cancelled, or unknown id is a harmless no-op (models e.g. a
  /// timeout that lost its race) and leaves no residue behind.
  void cancel(EventId id);

  /// Run until the event queue drains or `stop()` is called.
  /// Returns the final simulated time.
  TimePs run();

  /// Run until simulated time would exceed `deadline`; events at exactly
  /// `deadline` still fire.
  TimePs run_until(TimePs deadline);

  /// Conservative-window run: fire every event strictly before `end`,
  /// then return with events at >= `end` left pending.  Unlike run(),
  /// finish hooks never fire (the window loop calls run() once the whole
  /// group drains).  Used by the parallel ShardGroup coordinator.
  TimePs run_window(TimePs end);

  /// Timestamp of the earliest live event, or kTimeNever when none is
  /// pending.  Skims cancelled-event tombstones off the heap top as a
  /// side effect (cheap, and work run_window would do anyway).
  TimePs next_event_time();

  /// Fire the components' init() hooks now if they have not run yet.
  /// run()/run_window() call this implicitly; the ShardGroup coordinator
  /// calls it explicitly so every shard's initial events exist before
  /// the first window is sized.
  void ensure_initialized() { init_components(); }

  /// Request that run() return after the current event completes.
  void stop() { stop_requested_ = true; }

  /// Install a stall watchdog (sim/watchdog.hpp), polled once when
  /// run() reaches quiescence (empty heap, no deadline) just before the
  /// finish hooks.  nullptr (the default) detaches it.  Not owned.
  void set_watchdog(StallWatchdog* watchdog) { watchdog_ = watchdog; }

  /// Number of events executed so far (for kernel benchmarks).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Scheduled events that are still live (not fired, not cancelled).
  std::uint64_t pending_events() const { return live_events_; }

#if ALPU_AUDIT
  /// Install the determinism auditor's per-shard state.  Every scheduled
  /// event is then stamped with provenance and every executed event
  /// checked against the happens-before contracts (check/audit.hpp).
  void set_audit(check::ShardAudit* audit) { audit_ = audit; }
  check::ShardAudit* audit() const { return audit_; }

  /// Overwrite the provenance stamp of a still-pending event: the
  /// ShardGroup merge step annotates cross-shard deliveries with their
  /// canonical key and merge generation after scheduling them.
  void set_event_stamp(EventId id, const check::EventStamp& stamp);
#endif

  /// True if no live events are pending.  Cancelled events never count
  /// (regression: the lazy-cancel scheme compared queue size against a
  /// tombstone set, which drifted once an already-fired id was cancelled).
  bool idle() const { return live_events_ == 0; }

 private:
  friend class Component;

  // EventId layout: low kSlotBits = pool slot index, high 40 bits = the
  // monotone schedule sequence number.  The sequence number does double
  // duty: it is the FIFO tie-break among same-time events, and — because
  // it is never reused — it makes every id unique for the engine's
  // lifetime, so a stale id (fired or cancelled) can never be confused
  // with the slot's current occupant.
  static constexpr unsigned kSlotBits = 24;  // 16.7M concurrent events
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq =
      (std::uint64_t{1} << (64 - kSlotBits)) - 1;
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFF'FFFF;

  // Slots live in fixed-size blocks with stable addresses: growing the
  // pool never relocates live callbacks (a measured hotspot with a flat
  // vector once pending-event counts reach the tens of thousands).
  // 512 slots/block keeps the first-touch cost of a fresh Engine small
  // (a two-node machine run uses well under one block) while bounding
  // the block-pointer vector for million-event floods.
  static constexpr unsigned kBlockBits = 9;
  static constexpr std::size_t kSlotsPerBlock = std::size_t{1} << kBlockBits;
  static constexpr std::size_t kBlockMask = kSlotsPerBlock - 1;

  struct Slot {
    EventCallback fn;
    EventId key = 0;  // id of the pending occupant; 0 = free (seq >= 1)
    std::uint32_t next_free = kNoFreeSlot;
#if ALPU_AUDIT
    check::EventStamp stamp;  // provenance of the pending occupant
#endif
  };

  /// 16-byte trivially-copyable heap element: sift operations are plain
  /// copies, and staleness needs no hash lookup (one compare against the
  /// slot's current key).
  struct QueueItem {
    TimePs when;
    EventId id;
  };
  /// Strict total order: ids embed the unique monotone sequence number in
  /// their high bits, so comparing ids compares schedule order, no two
  /// items are equal, and the pop order — and therefore determinism — is
  /// independent of the heap's shape.
  static bool earlier(const QueueItem& a, const QueueItem& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.id < b.id;  // FIFO among same-time events
  }

  Slot& slot(std::uint32_t index) {
    return blocks_[index >> kBlockBits][index & kBlockMask];
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) {
    Slot& s = slot(index);
    s.key = 0;
    s.next_free = free_head_;
    free_head_ = index;
  }

  // 8-ary min-heap with hole percolation: a third the depth of a binary
  // heap, with each child group spanning two consecutive cache lines —
  // the pop path is memory bound at large pending-event counts, and the
  // shallower, denser layout measurably beats both binary and 4-ary here.
  void heap_push(const QueueItem& item);
  void heap_pop();
  /// Structural invariant (ALPU_CHECKED builds): the heap property holds
  /// over the whole queue.
  bool heap_ordered() const;

  void init_components();
  void finish_components();

  TimePs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<QueueItem> heap_;
  std::vector<std::unique_ptr<Slot[]>> blocks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::uint64_t live_events_ = 0;
  std::vector<Component*> components_;
  bool components_initialized_ = false;
  bool stop_requested_ = false;
  StallWatchdog* watchdog_ = nullptr;
  std::uint64_t events_executed_ = 0;
#if ALPU_AUDIT
  check::ShardAudit* audit_ = nullptr;
#endif
};

}  // namespace alpu::sim
