// Discrete-event simulation kernel.
//
// This is the Enkidu substitute described in DESIGN.md: a single-threaded
// component-based DES.  Time advances only through the event queue; all
// model state changes happen inside event callbacks, so no locking is ever
// needed.  Determinism: events at equal timestamps fire in the order they
// were scheduled (a monotone sequence number breaks ties), which makes
// every experiment bit-reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace alpu::sim {

using common::TimePs;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Engine;

/// Base class for simulation components (NIC, ALPU, network, ...).
///
/// Components register themselves with the engine for the init/finish
/// lifecycle hooks; all interesting behaviour happens via events and
/// clocks they schedule on the engine.
class Component {
 public:
  Component(Engine& engine, std::string name);
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  Engine& engine() const { return engine_; }

  /// Called by Engine::run() once before the first event fires.
  virtual void init() {}
  /// Called after the simulation finishes (stats flushing).
  virtual void finish() {}

 private:
  Engine& engine_;
  std::string name_;
};

/// The event-driven simulation engine.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.  Only meaningful inside callbacks or after run.
  TimePs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now).
  EventId schedule_at(TimePs when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now.
  EventId schedule_in(TimePs delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event.  Cancelling an already-fired or unknown id is
  /// a harmless no-op (models e.g. a timeout that lost its race).
  void cancel(EventId id);

  /// Run until the event queue drains or `stop()` is called.
  /// Returns the final simulated time.
  TimePs run();

  /// Run until simulated time would exceed `deadline`; events at exactly
  /// `deadline` still fire.
  TimePs run_until(TimePs deadline);

  /// Request that run() return after the current event completes.
  void stop() { stop_requested_ = true; }

  /// Number of events executed so far (for kernel benchmarks).
  std::uint64_t events_executed() const { return events_executed_; }

  /// True if no events are pending.
  bool idle() const { return queue_.size() == cancelled_.size(); }

 private:
  friend class Component;

  struct Entry {
    TimePs when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  void init_components();
  void finish_components();

  TimePs now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::vector<Component*> components_;
  bool components_initialized_ = false;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace alpu::sim
