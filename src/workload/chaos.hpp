// Chaos soak: the Figure-5/6-class machine under network fault
// injection, asserting MPI-level correctness end to end.
//
// One run builds a fresh machine with a FaultInjector on the network and
// the NIC reliability sublayer enabled, drives an all-to-all randomized
// traffic plan (eager and rendezvous sizes, tag = per-pair ordinal), and
// verifies the guarantees the reliability layer must restore over the
// faulty links:
//
//   * no lost message       — every rank completes every receive and the
//                             byte totals conserve exactly;
//   * no misordered message — each receive is posted with ANY_TAG, so
//                             the matched tag exposes the arrival order
//                             per (source, destination) pair: it must
//                             equal the posting ordinal;
//   * no duplicated message — a duplicate would match (and complete) a
//                             receive out of turn, failing either check;
//   * full drain            — posted/unexpected queues and ALPUs empty.
//
// Everything is deterministic: the injector draws from its own seeded
// stream, each run owns a fresh engine, and `alpusim chaos` sweeps fault
// rates through sweep_map, so results are byte-identical at any --jobs.
#pragma once

#include <cstdint>

#include "alpu/seu.hpp"
#include "common/time.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "nic/reliability.hpp"
#include "workload/scenarios.hpp"

namespace alpu::check {
class Auditor;
}  // namespace alpu::check

namespace alpu::workload {

struct ChaosParams {
  NicMode mode = NicMode::kAlpu256;
  int ranks = 4;
  /// Messages per ordered (src, dst) pair.
  int per_pair = 8;
  /// Seeds the traffic plan and rank think-time (the fault stream is
  /// seeded separately via `faults.seed`).
  std::uint64_t seed = 1;
  net::FaultConfig faults;
  nic::ReliabilityConfig reliability;
  /// ALPU transient-fault model (SEU injection + parity + scrub), for
  /// compound network-fault × hardware-fault soaks.  Default installs
  /// nothing.  Per-unit injector streams are derived inside the NIC, so
  /// the verdict stays byte-identical at any shard count.
  hw::SeuConfig seu;
  /// Incast overload: every rank > 0 sends its whole plan to rank 0
  /// (small eager sizes), and rank 0 throttles its receive posting, so
  /// offered load far exceeds the receiver's drain rate.  Meant to run
  /// with a finite eager budget ≪ the offered load: the run then
  /// exercises the full RNR-NACK / backoff / credit / demotion path and
  /// still must deliver exactly once and drain.
  bool overload = false;
  /// Per-NIC eager budget for the run (0 = unlimited).  Nonzero budgets
  /// force-enable the reliability sublayer (the NACK path lives there).
  std::uint64_t eager_pool_bytes = 0;
  std::uint32_t unexpected_slots = 0;
  /// Engine shards for the conservative-parallel run (clamped to
  /// `ranks`; 1 = the byte-exact single-threaded path).  The verdict and
  /// every counter are byte-identical at any shard count — including
  /// under fault injection.
  int shards = 1;
  /// Optional external determinism auditor (ALPU_AUDIT builds only;
  /// ignored otherwise).  The triage CLI installs one with tracing
  /// enabled and reads its per-window trace after the run.  The pointer
  /// keeps ChaosParams layout-identical in both build flavors.
  check::Auditor* auditor = nullptr;
};

struct ChaosResult {
  bool completed = false;  ///< every rank program ran to completion
  bool conserved = false;  ///< per-message byte counts all exact
  bool ordered = false;    ///< per-pair tags arrived in posting order
  bool drained = false;    ///< queues and ALPUs empty at the end
  std::uint64_t messages = 0;  ///< MPI messages planned (and required)
  common::TimePs sim_time = 0;
  /// Kernel events executed across all shards (events/s yardstick).
  std::uint64_t events_executed = 0;

  net::NetworkStats net;               ///< includes fault counters
  nic::ReliabilityStats reliability;   ///< summed over all NICs
  std::uint64_t probe_rejections = 0;  ///< summed NIC degradation stats
  std::uint64_t fallback_resets = 0;
  std::uint64_t fallback_searches = 0;

  // Transient-fault outcome (sums over NICs; zero when no SEU model).
  std::uint64_t seu_injected = 0;
  std::uint64_t parity_faults = 0;
  std::uint64_t scrub_sweeps = 0;
  std::uint64_t rebuilds = 0;
  /// Injection-to-detection latency summed over detection episodes
  /// (divide by parity_faults for the mean; the scrub interval bounds
  /// the tail for dormant entries).
  common::TimePs seu_detect_latency_ps = 0;

  // Flow-control outcome (budgets echoed from the params; peaks are the
  // max over NICs, sums over NICs otherwise).
  std::uint64_t pool_budget = 0;
  std::uint64_t slot_budget = 0;
  std::uint64_t peak_pool_bytes = 0;
  std::uint64_t peak_unexpected_slots = 0;
  std::uint64_t peak_unexpected_depth = 0;
  std::uint64_t demotions = 0;       ///< peers demoted eager→rendezvous
  std::uint64_t demoted_sends = 0;
  std::uint64_t stalls = 0;          ///< watchdog: quiescent yet undrained

  /// The pass/fail verdict `alpusim chaos` and CI assert on.  With a
  /// finite budget it additionally requires the peak occupancy to have
  /// respected the budget and the stall watchdog to have stayed silent.
  bool ok() const {
    return completed && conserved && ordered && drained &&
           reliability.link_failures == 0 && stalls == 0 &&
           (pool_budget == 0 || peak_pool_bytes <= pool_budget) &&
           (slot_budget == 0 || peak_unexpected_slots <= slot_budget);
  }
};

/// System config for a chaos run: the mode's Table-III machine plus the
/// fault injector and the reliability sublayer (force-enabled whenever
/// the fault config is non-trivial).
mpi::SystemConfig make_chaos_system_config(const ChaosParams& params);

/// Run one chaos soak.  Never throws on protocol failure — the result's
/// flags carry the verdict so sweeps can tabulate them.
ChaosResult run_chaos(const ChaosParams& params);

}  // namespace alpu::workload
