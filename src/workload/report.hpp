// Machine-state reporting: render every component's counters as tables.
//
// Experiments usually want one latency number, but debugging a model
// (or explaining a result) wants the whole picture: what each NIC
// walked, hit, inserted, cached, and moved.  `print_machine_report`
// renders that for all nodes.
#pragma once

#include <string>

#include "mpi/mpi.hpp"

namespace alpu::workload {

/// Render a full per-node report (NIC, ALPUs, caches, network).
std::string machine_report(mpi::Machine& machine);

/// Convenience: render to stdout.
void print_machine_report(mpi::Machine& machine);

}  // namespace alpu::workload
