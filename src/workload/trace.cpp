#include "workload/trace.hpp"

#include "common/check.hpp"

namespace alpu::workload {

std::vector<TraceOp> generate_trace(const TraceConfig& config) {
  ALPU_ASSERT(config.contexts >= 1 && config.sources >= 1 && config.tags >= 1,
              "trace generator needs non-empty field spaces");
  common::Xoshiro256 rng(config.seed);
  std::vector<TraceOp> trace;
  trace.reserve(config.operations);
  for (std::size_t i = 0; i < config.operations; ++i) {
    TraceOp op;
    const std::uint32_t context =
        static_cast<std::uint32_t>(rng.below(config.contexts));
    const std::uint32_t source =
        static_cast<std::uint32_t>(rng.below(config.sources));
    const std::uint32_t tag =
        static_cast<std::uint32_t>(rng.below(config.tags));
    op.is_post = rng.chance(config.p_post);
    if (op.is_post) {
      op.pattern = match::make_recv_pattern(
          context,
          rng.chance(config.p_wildcard_source)
              ? std::nullopt
              : std::optional<std::uint32_t>{source},
          rng.chance(config.p_wildcard_tag)
              ? std::nullopt
              : std::optional<std::uint32_t>{tag});
    } else {
      op.word = match::pack(match::Envelope{context, source, tag});
    }
    trace.push_back(op);
  }
  return trace;
}

TraceEvent ReferenceQueues::apply(const TraceOp& op) {
  TraceEvent event;
  if (op.is_post) {
    // A receive being posted first searches the unexpected queue
    // (atomically with the post, Section II).
    const auto res = unexpected_.search(op.pattern);
    if (res.found) {
      event.matched = true;
      event.cookie = res.cookie;
      unexpected_.erase(res.index);
    } else {
      posted_.append(match::PostedEntry{op.pattern, next_cookie_++, 0});
    }
  } else {
    // An arriving message traverses the posted-receive queue.
    const auto res = posted_.search(op.word);
    if (res.found) {
      event.matched = true;
      event.cookie = res.cookie;
      posted_.erase(res.index);
    } else {
      unexpected_.append(match::UnexpectedEntry{op.word, next_cookie_++, 0});
    }
  }
  return event;
}

}  // namespace alpu::workload
