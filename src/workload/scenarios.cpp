#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "sim/parallel.hpp"

namespace alpu::workload {

namespace {

/// Clamp a requested shard count to something the machine can use: at
/// least 1, at most one shard per node (an empty shard would only add
/// barrier traffic).
unsigned effective_shards(int requested, int nprocs) {
  const int clamped = std::clamp(requested, 1, std::max(nprocs, 1));
  return static_cast<unsigned>(clamped);
}

// Benchmark message tags.
constexpr int kReadyTag = 1;
constexpr int kPingTag = 2;
constexpr int kNoMatchTag = 3;
constexpr int kCtrlTag = 4;
constexpr int kGoTag = 5;
constexpr int kUnexpTag = 6;
constexpr int kPongTag = 7;

struct Timestamps {
  TimePs send_issued = 0;   ///< sender: just before issuing the ping
  TimePs recv_done = 0;     ///< receiver: ping receive completed
  TimePs post_started = 0;  ///< receiver: before posting (unexpected bench)
  std::vector<TimePs> send_times;  ///< per-iteration send issue times
  std::vector<TimePs> done_times;  ///< per-iteration completion times
};

// ---- pre-posted queue benchmark (Figure 5) --------------------------------

sim::Process preposted_receiver(mpi::Rank& rank,
                                const PrepostedParams& params,
                                Timestamps& times) {
  if (params.iterations == 1) {
    const auto front = static_cast<std::size_t>(
        std::llround(params.fraction_traversed *
                     static_cast<double>(params.queue_length)));
    ALPU_ASSERT(front <= params.queue_length,
                "fraction_traversed places the match past the queue");

    // Build the queue: `front` non-matching entries the message must
    // walk, the matching entry, then the rest of the queue behind it.
    for (std::size_t i = 0; i < front; ++i) {
      (void)rank.irecv(1, kNoMatchTag, 0);
    }
    mpi::Request ping = rank.irecv(1, kPingTag, params.message_bytes);
    for (std::size_t i = front; i < params.queue_length; ++i) {
      (void)rank.irecv(1, kNoMatchTag, 0);
    }

    // The ready send is queued behind every post above, so the sender
    // cannot fire until the NIC has built (and offloaded) the queue.
    co_await rank.send(1, kReadyTag, 0);
    co_await rank.wait(ping);
    times.done_times.push_back(rank.engine().now());
    co_return;
  }

  // Iterated (steady-state cache) variant: the matching receive is
  // re-posted at the queue tail each round, so the message always walks
  // the full queue.
  ALPU_ASSERT(params.fraction_traversed == 1.0,
              "iterated mode always traverses the whole queue");
  for (std::size_t i = 0; i < params.queue_length; ++i) {
    (void)rank.irecv(1, kNoMatchTag, 0);
  }
  co_await rank.send(1, kReadyTag, 0);
  for (int k = 0; k < params.iterations; ++k) {
    co_await rank.recv(1, kPingTag, params.message_bytes);
    times.done_times.push_back(rank.engine().now());
    co_await rank.send(1, kPongTag, 0);
  }
}

sim::Process preposted_sender(mpi::Rank& rank, const PrepostedParams& params,
                              Timestamps& times) {
  co_await rank.recv(0, kReadyTag, 0);
  for (int k = 0; k < params.iterations; ++k) {
    times.send_times.push_back(rank.engine().now());
    co_await rank.send(0, kPingTag, params.message_bytes);
    if (params.iterations > 1) {
      co_await rank.recv(0, kPongTag, 0);
    }
  }
}

// ---- unexpected queue benchmark (Figure 6) --------------------------------

sim::Process unexpected_receiver(mpi::Rank& rank,
                                 const UnexpectedParams& params,
                                 Timestamps& times) {
  mpi::Request ctrl = rank.irecv(1, kCtrlTag, 0);
  co_await rank.send(1, kReadyTag, 0);
  // The control message is sent after the whole flood on an in-order
  // link: when it matches, all `queue_length` unexpected messages are in
  // the receiver's unexpected queue.
  co_await rank.wait(ctrl);

  times.post_started = rank.engine().now();
  // Release the sender and immediately post the measured receive, so the
  // posting (and its unexpected-queue search) overlaps the transfer —
  // the deliberate benchmark design of Section V-A.
  mpi::Request go = rank.isend(1, kGoTag, 0);
  mpi::Request ping = rank.irecv(1, kPingTag, params.message_bytes);
  co_await rank.wait(ping);
  times.recv_done = rank.engine().now();
  co_await rank.wait(go);
}

sim::Process unexpected_sender(mpi::Rank& rank,
                               const UnexpectedParams& params,
                               Timestamps& times) {
  co_await rank.recv(0, kReadyTag, 0);
  std::vector<mpi::Request> flood;
  flood.reserve(params.queue_length);
  for (std::size_t i = 0; i < params.queue_length; ++i) {
    flood.push_back(rank.isend(0, kUnexpTag, params.message_bytes));
  }
  mpi::Request go = rank.irecv(0, kGoTag, 0);
  co_await rank.send(0, kCtrlTag, 0);
  co_await rank.wait(go);
  times.send_issued = rank.engine().now();
  co_await rank.send(0, kPingTag, params.message_bytes);
  co_await rank.waitall(std::move(flood));
}

// ---- ping-pong -------------------------------------------------------------

sim::Process pingpong_rank0(mpi::Rank& rank, std::uint32_t bytes,
                            int iterations, Timestamps& times) {
  // One warm-up round trip, then timed iterations.
  co_await rank.send(1, kPingTag, bytes);
  co_await rank.recv(1, kPongTag, bytes);
  times.send_issued = rank.engine().now();
  for (int i = 0; i < iterations; ++i) {
    co_await rank.send(1, kPingTag, bytes);
    co_await rank.recv(1, kPongTag, bytes);
  }
  times.recv_done = rank.engine().now();
}

sim::Process pingpong_rank1(mpi::Rank& rank, std::uint32_t bytes,
                            int iterations) {
  for (int i = 0; i < iterations + 1; ++i) {
    co_await rank.recv(0, kPingTag, bytes);
    co_await rank.send(0, kPongTag, bytes);
  }
}

LatencyResult collect(mpi::Machine& m, TimePs latency) {
  LatencyResult out;
  out.latency = latency;
  const nic::NicStats& s = m.nic(0).stats();
  out.sw_entries_walked =
      s.posted_entries_walked + s.unexpected_entries_walked;
  out.alpu_hits = s.alpu_posted_hits + s.alpu_unexpected_hits;
  out.alpu_misses = s.alpu_posted_misses + s.alpu_unexpected_misses;
  out.l1_hit_rate = m.nic(0).memory().l1_stats().hit_rate();
  out.match_counters = m.nic(0).match_counters();
  const net::NetworkStats& ns = m.network().stats();
  out.net_faults_injected = ns.faults_dropped + ns.faults_duplicated +
                            ns.faults_reordered + ns.faults_corrupted;
  for (int r = 0; r < m.size(); ++r) {
    out.retransmits += m.nic(r).reliability().stats().retransmits;
    out.link_failures += m.nic(r).reliability().stats().link_failures;
    out.alpu_probe_rejections += m.nic(r).stats().alpu_probe_rejections;
    out.alpu_fallback_resets += m.nic(r).stats().alpu_fallback_resets;
    out.seu_injected += m.nic(r).stats().seu_injected;
    out.parity_faults += m.nic(r).stats().parity_faults;
    out.scrub_sweeps += m.nic(r).stats().scrub_sweeps;
    out.rebuilds += m.nic(r).stats().rebuilds;
    out.peak_unexpected_depth = std::max(out.peak_unexpected_depth,
                                         m.nic(r).stats().unexpected_depth_peak);
    out.peak_eager_pool_bytes = std::max(
        out.peak_eager_pool_bytes, m.nic(r).stats().eager_pool_peak_bytes);
    out.peak_unexpected_slots = std::max(
        out.peak_unexpected_slots, m.nic(r).stats().unexpected_slots_peak);
  }
  return out;
}

}  // namespace

hw::AlpuConfig make_alpu_config(std::size_t cells) {
  hw::AlpuConfig cfg;
  cfg.total_cells = cells;
  cfg.block_size = 16;
  // Simulation assumes an ASIC-speed unit (Section VI-A: ~500 MHz) with
  // the 7-cycle no-overlap pipeline of Section V-D.
  cfg.clock = common::ClockPeriod::from_mhz(500);
  cfg.match_latency_cycles = 7;
  cfg.insert_interval_cycles = 2;
  // Deep FIFOs: the modelled network applies no back-pressure, so the
  // header FIFO must absorb a full benchmark burst.
  cfg.header_fifo_depth = 8192;
  cfg.result_fifo_depth = 8192;
  cfg.command_fifo_depth = 1024;
  return cfg;
}

mpi::SystemConfig make_system_config(NicMode mode, int nprocs) {
  mpi::SystemConfig cfg;
  cfg.nprocs = nprocs;
  switch (mode) {
    case NicMode::kBaseline:
      break;
    case NicMode::kAlpu128:
      cfg.nic.posted_alpu = make_alpu_config(128);
      cfg.nic.unexpected_alpu = make_alpu_config(128);
      break;
    case NicMode::kAlpu256:
      cfg.nic.posted_alpu = make_alpu_config(256);
      cfg.nic.unexpected_alpu = make_alpu_config(256);
      break;
  }
  return cfg;
}

LatencyResult run_preposted(const PrepostedParams& params) {
  const mpi::SystemConfig cfg =
      params.system.has_value() ? *params.system
                                : make_system_config(params.mode);
  sim::ShardGroup shards(effective_shards(params.shards, cfg.nprocs));
  mpi::Machine machine(shards, cfg);
  Timestamps times;
  sim::ProcessPool pool(machine.engine());
  pool.spawn_on(machine.engine(0),
                preposted_receiver(machine.rank(0), params, times));
  pool.spawn_on(machine.engine(1),
                preposted_sender(machine.rank(1), params, times));
  const TimePs end = shards.run_all(machine.network().min_lookahead());
  ALPU_ASSERT(pool.all_done(), "benchmark deadlocked");
  ALPU_ASSERT(times.send_times.size() == times.done_times.size() &&
                  !times.send_times.empty(),
              "receiver/sender timestamp streams out of step");
  TimePs total = 0;
  for (std::size_t k = 0; k < times.send_times.size(); ++k) {
    ALPU_ASSERT(times.done_times[k] >= times.send_times[k],
                "completion precedes its send");
    total += times.done_times[k] - times.send_times[k];
  }
  LatencyResult out = collect(machine, total / times.send_times.size());
  out.total_sim_time = end;
  out.events_executed = shards.events_executed();
  return out;
}

LatencyResult run_unexpected(const UnexpectedParams& params) {
  const mpi::SystemConfig cfg =
      params.system.has_value() ? *params.system
                                : make_system_config(params.mode);
  sim::ShardGroup shards(effective_shards(params.shards, cfg.nprocs));
  mpi::Machine machine(shards, cfg);
  Timestamps times;
  sim::ProcessPool pool(machine.engine());
  pool.spawn_on(machine.engine(0),
                unexpected_receiver(machine.rank(0), params, times));
  pool.spawn_on(machine.engine(1),
                unexpected_sender(machine.rank(1), params, times));
  const TimePs end = shards.run_all(machine.network().min_lookahead());
  ALPU_ASSERT(pool.all_done(), "benchmark deadlocked");
  ALPU_ASSERT(times.recv_done >= times.post_started,
              "receive completed before it was posted");
  // Figure 6 latency includes the receive-posting time.
  LatencyResult out = collect(machine, times.recv_done - times.post_started);
  out.total_sim_time = end;
  out.events_executed = shards.events_executed();
  return out;
}

namespace {

sim::Process message_rate_receiver(mpi::Rank& rank,
                                   const MessageRateParams& params,
                                   Timestamps& times) {
  for (std::size_t i = 0; i < params.queue_length; ++i) {
    (void)rank.irecv(1, kNoMatchTag, 0);
  }
  std::vector<mpi::Request> burst;
  burst.reserve(static_cast<std::size_t>(params.burst));
  for (int i = 0; i < params.burst; ++i) {
    burst.push_back(rank.irecv(1, kPingTag, params.message_bytes));
  }
  co_await rank.send(1, kReadyTag, 0);
  co_await rank.waitall(std::move(burst));
  times.recv_done = rank.engine().now();
}

sim::Process message_rate_sender(mpi::Rank& rank,
                                 const MessageRateParams& params,
                                 Timestamps& times) {
  co_await rank.recv(0, kReadyTag, 0);
  times.send_issued = rank.engine().now();
  std::vector<mpi::Request> burst;
  burst.reserve(static_cast<std::size_t>(params.burst));
  for (int i = 0; i < params.burst; ++i) {
    burst.push_back(rank.isend(0, kPingTag, params.message_bytes));
  }
  co_await rank.waitall(std::move(burst));
}

}  // namespace

TimePs run_message_rate(const MessageRateParams& params) {
  ALPU_ASSERT(params.burst > 0, "message-rate burst must be positive");
  const mpi::SystemConfig cfg =
      params.system.has_value() ? *params.system
                                : make_system_config(params.mode);
  sim::ShardGroup shards(effective_shards(params.shards, cfg.nprocs));
  mpi::Machine machine(shards, cfg);
  Timestamps times;
  sim::ProcessPool pool(machine.engine());
  pool.spawn_on(machine.engine(0),
                message_rate_receiver(machine.rank(0), params, times));
  pool.spawn_on(machine.engine(1),
                message_rate_sender(machine.rank(1), params, times));
  shards.run_all(machine.network().min_lookahead());
  ALPU_ASSERT(pool.all_done(), "message-rate benchmark deadlocked");
  return (times.recv_done - times.send_issued) /
         static_cast<std::uint64_t>(params.burst);
}

mpi::SystemConfig make_elan4_like_config() {
  mpi::SystemConfig cfg;
  // Section VI-B's comparison point: the Elan4-class NIC processor is
  // ~2.5x slower-clocked and single-issue, so list traversal costs
  // ~150 ns per entry instead of ~15 ns.
  cfg.nic.clock = common::ClockPeriod::from_mhz(200);
  cfg.nic.costs.per_entry_cycles = 28;  // single-issue walk body
  cfg.nic.memory.l1_hit_ps = 10'000;    // 2 cycles at 200 MHz
  cfg.nic.memory.backend_ps = 150'000;  // 30 cycles at 200 MHz
  return cfg;
}

TimePs run_pingpong(NicMode mode, std::uint32_t message_bytes,
                    int iterations) {
  ALPU_ASSERT(iterations > 0, "ping-pong needs at least one iteration");
  sim::Engine engine;
  mpi::Machine machine(engine, make_system_config(mode));
  Timestamps times;
  sim::ProcessPool pool(engine);
  pool.spawn(pingpong_rank0(machine.rank(0), message_bytes, iterations,
                            times));
  pool.spawn(pingpong_rank1(machine.rank(1), message_bytes, iterations));
  engine.run();
  ALPU_ASSERT(pool.all_done(), "ping-pong deadlocked");
  // Half round trip, averaged.
  return (times.recv_done - times.send_issued) /
         (2 * static_cast<std::uint64_t>(iterations));
}

}  // namespace alpu::workload
