// Synthetic MPI queue traces.
//
// The motivating studies ([8], [9]) characterised real applications'
// queue behaviour: queues of tens to hundreds of entries, heavy use of
// MPI_ANY_SOURCE, rare MPI_ANY_TAG.  This generator produces operation
// streams with those statistics, used by (a) the property tests that
// cross-check the ALPU model against the reference software lists on
// thousands of random schedules, and (b) extended benchmarks of
// application-shaped behaviour beyond the paper's micro-benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "match/list.hpp"
#include "match/match.hpp"

namespace alpu::workload {

/// One step of a queue trace.
struct TraceOp {
  /// True: a receive is posted (pattern).  False: a message arrives
  /// (explicit word).
  bool is_post = false;
  match::Pattern pattern;  ///< valid when is_post
  match::MatchWord word = 0;  ///< valid when !is_post
};

struct TraceConfig {
  std::size_t operations = 1'000;
  double p_post = 0.5;             ///< probability an op posts a receive
  double p_wildcard_source = 0.3;  ///< prevalent per Section II
  double p_wildcard_tag = 0.02;    ///< rare per Section II
  std::uint32_t contexts = 2;
  std::uint32_t sources = 16;
  std::uint32_t tags = 32;
  std::uint64_t seed = 1;
};

/// Generate a random trace with the configured mix.
std::vector<TraceOp> generate_trace(const TraceConfig& config);

/// What happened when an op was applied to a queue pair.
struct TraceEvent {
  bool matched = false;
  match::Cookie cookie = 0;  ///< cookie of the consumed entry on a match
};

/// The executable MPI-matching specification: a posted list and an
/// unexpected list with the Section II protocol (arrivals search posted,
/// else join unexpected; posts search unexpected, else join posted).
/// Property tests replay traces through this model and through the
/// ALPU-based structures and require identical event streams.
class ReferenceQueues {
 public:
  /// Apply one op; newly created entries get cookies from an internal
  /// counter so independent executors assign identical cookies.
  TraceEvent apply(const TraceOp& op);

  const match::PostedList& posted() const { return posted_; }
  const match::UnexpectedList& unexpected() const { return unexpected_; }

 private:
  match::PostedList posted_;
  match::UnexpectedList unexpected_;
  match::Cookie next_cookie_ = 1;
};

}  // namespace alpu::workload
