#include "workload/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

namespace alpu::workload {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  // determinism: ok — sizes only the pool of host worker threads; each
  // data point is an independent simulation whose result lands in its
  // input-index slot, so the job count never touches simulated output.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace detail {

void parallel_for_index(std::size_t n, int jobs,
                        const std::function<void(std::size_t)>& body) {
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolve_jobs(jobs)), n);
  if (workers <= 1) {
    // Serial path: no thread machinery, trivially deterministic, and what
    // --jobs 1 means.  (Parallel output matches it byte for byte because
    // results land in per-index slots either way.)
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the caller is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

const char* nic_mode_name(NicMode mode) {
  switch (mode) {
    case NicMode::kBaseline: return "baseline";
    case NicMode::kAlpu128: return "alpu128";
    case NicMode::kAlpu256: return "alpu256";
  }
  return "?";
}

std::vector<std::size_t> fig5_queue_lengths(bool quick) {
  if (quick) return {0, 5, 20, 50, 100, 200};
  return {0,  1,   2,   5,   10,  20,  50,  100,
          150, 200, 250, 300, 350, 400, 450, 500};
}

std::vector<double> fig5_fractions(bool quick) {
  if (quick) return {0.0, 0.5, 1.0};
  return {0.0, 0.25, 0.5, 0.75, 1.0};
}

std::vector<SurfacePoint> fig5_surface_points(bool quick) {
  const std::vector<std::size_t> lengths = fig5_queue_lengths(quick);
  const std::vector<double> fractions = fig5_fractions(quick);
  const NicMode modes[] = {NicMode::kBaseline, NicMode::kAlpu128,
                           NicMode::kAlpu256};
  std::vector<SurfacePoint> points;
  points.reserve(3 * lengths.size() * fractions.size());
  for (NicMode mode : modes) {
    for (std::size_t len : lengths) {
      for (double f : fractions) {
        points.push_back({mode, len, f, 0});
      }
    }
  }
  return points;
}

std::vector<SurfaceRow> run_preposted_surface(
    const std::vector<SurfacePoint>& points, const SweepOptions& options) {
  std::vector<LatencyResult> results = sweep_map(
      points,
      [&options](const SurfacePoint& pt) {
        PrepostedParams p;
        p.mode = pt.mode;
        p.queue_length = pt.queue_length;
        p.fraction_traversed = pt.fraction_traversed;
        p.message_bytes = pt.message_bytes;
        p.shards = options.shards;
        if (options.seu.any()) {
          mpi::SystemConfig sys = make_system_config(pt.mode);
          sys.nic.seu = options.seu;
          p.system = sys;
        }
        return run_preposted(p);
      },
      options);
  std::vector<SurfaceRow> rows;
  rows.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    rows.push_back({points[i], results[i]});
  }
  return rows;
}

std::string surface_csv(const std::vector<SurfaceRow>& rows) {
  std::string out = "mode,queue_length,fraction_traversed,latency_ns\n";
  char line[128];
  for (const SurfaceRow& row : rows) {
    std::snprintf(line, sizeof(line), "%s,%zu,%.2f,%.1f\n",
                  nic_mode_name(row.point.mode), row.point.queue_length,
                  row.point.fraction_traversed,
                  common::to_ns(row.result.latency));
    out += line;
  }
  return out;
}

}  // namespace alpu::workload
