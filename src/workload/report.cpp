#include "workload/report.hpp"

#include <cstdio>
#include <sstream>

#include "common/table.hpp"

namespace alpu::workload {

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

void alpu_row(common::TextTable& t, const char* label,
              const hw::Alpu* unit) {
  if (unit == nullptr) {
    t.add_row({label, "-", "-", "-", "-", "-", "-"});
    return;
  }
  const hw::AlpuStats& s = unit->stats();
  t.add_row({label, u64(unit->array().occupancy()),
             u64(s.probes_accepted), u64(s.match_successes),
             u64(s.match_failures), u64(s.inserts), u64(s.held_retries)});
}

}  // namespace

std::string machine_report(mpi::Machine& machine) {
  std::ostringstream out;

  {
    common::TextTable t;
    t.set_header({"node", "rx pkts", "tx pkts", "posted Q", "unexpected Q",
                  "posted walks", "unexpected walks", "completions",
                  "fw busy (us)"});
    for (int r = 0; r < machine.size(); ++r) {
      const nic::NicStats& s = machine.nic(r).stats();
      t.add_row({std::to_string(r), u64(s.packets_rx), u64(s.packets_tx),
                 u64(machine.nic(r).posted_queue_length()),
                 u64(machine.nic(r).unexpected_queue_length()),
                 u64(s.posted_entries_walked),
                 u64(s.unexpected_entries_walked), u64(s.completions),
                 common::fmt_double(common::to_us(s.firmware_busy), 1)});
    }
    out << "--- NIC ---\n" << t.render();
  }

  {
    common::TextTable t;
    t.set_header({"unit", "occupancy", "probes", "successes", "failures",
                  "inserts", "held retries"});
    for (int r = 0; r < machine.size(); ++r) {
      const std::string posted = "node" + std::to_string(r) + ".posted";
      const std::string unexp = "node" + std::to_string(r) + ".unexpected";
      alpu_row(t, posted.c_str(), machine.nic(r).posted_alpu());
      alpu_row(t, unexp.c_str(), machine.nic(r).unexpected_alpu());
    }
    out << "--- ALPU ---\n" << t.render();
  }

  {
    common::TextTable t;
    t.set_header({"node", "L1 accesses", "L1 hit rate", "loads", "stores"});
    for (int r = 0; r < machine.size(); ++r) {
      const auto& l1 = machine.nic(r).memory().l1_stats();
      const auto& m = machine.nic(r).memory().stats();
      t.add_row({std::to_string(r), u64(l1.accesses),
                 common::fmt_double(l1.hit_rate(), 3), u64(m.loads),
                 u64(m.stores)});
    }
    out << "--- NIC memory ---\n" << t.render();
  }

  {
    const net::NetworkStats& s = machine.network().stats();
    common::TextTable t;
    t.set_header({"packets", "payload bytes"});
    t.add_row({u64(s.packets), u64(s.payload_bytes)});
    out << "--- network ---\n" << t.render();
  }

  return out.str();
}

void print_machine_report(mpi::Machine& machine) {
  std::fputs(machine_report(machine).c_str(), stdout);
}

}  // namespace alpu::workload
