// The paper's two micro-benchmarks as reusable scenario runners.
//
// Section V-A describes them:
//
//  * Pre-posted queue benchmark (drives Figure 5) — three degrees of
//    freedom: pre-posted receive-queue length, the portion of that queue
//    the incoming message traverses, and the message size.  The receiver
//    pre-posts the queue before timing; latency is a one-way ping with
//    the posting cost excluded.
//
//  * Unexpected queue benchmark (drives Figure 6) — the unexpected
//    queue length and the message size vary, and — deviating from
//    tradition deliberately — the time to post the receive is included
//    in the measured latency, overlapped with the message transfer the
//    way real applications overlap it.
//
// Each call builds a fresh two-node machine, runs one measurement, and
// returns the latency plus the counters needed to explain it.  Fresh
// machines per data point keep every measurement independent and
// deterministic (the simulator has no noise to average away).
#pragma once

#include <cstdint>
#include <optional>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "mpi/mpi.hpp"

namespace alpu::workload {

using common::TimePs;

/// Which NIC variant to instantiate (the three Figure-5 configurations).
enum class NicMode {
  kBaseline,  ///< software linear lists only
  kAlpu128,   ///< 128-entry posted + unexpected ALPUs
  kAlpu256,   ///< 256-entry posted + unexpected ALPUs
};

/// Build a full system config for a mode (Table III defaults).
mpi::SystemConfig make_system_config(NicMode mode, int nprocs = 2);

/// ALPU config used by make_system_config (ASIC-speed, Section VI-A).
hw::AlpuConfig make_alpu_config(std::size_t cells);

struct PrepostedParams {
  NicMode mode = NicMode::kBaseline;
  /// Number of non-matching receives pre-posted ahead of / behind the
  /// matching one.  Queue length at match time is `queue_length + 1`.
  std::size_t queue_length = 0;
  /// Fraction of `queue_length` the message walks before matching.
  double fraction_traversed = 1.0;
  std::uint32_t message_bytes = 0;
  /// Measured ping iterations, averaged.  With iterations > 1 the
  /// matching receive is re-posted at the queue tail each round (cache
  /// reaches steady state), so fraction_traversed must be 1.0.
  int iterations = 1;
  /// Override the system config (threshold studies etc.).
  std::optional<mpi::SystemConfig> system;
  /// Engine shards for the conservative-parallel run (clamped to the
  /// node count; 1 = the byte-exact single-threaded path).  Results are
  /// byte-identical at any shard count.
  int shards = 1;
};

struct UnexpectedParams {
  NicMode mode = NicMode::kBaseline;
  /// Unexpected messages queued ahead of the measured receive.
  std::size_t queue_length = 0;
  std::uint32_t message_bytes = 0;
  std::optional<mpi::SystemConfig> system;
  /// Engine shards (see PrepostedParams::shards).
  int shards = 1;
};

/// Outcome of one measurement.
struct LatencyResult {
  /// One-way latency: sender's send-issue to receiver's completed wait.
  TimePs latency = 0;
  /// Entries the receiver firmware walked in software during the
  /// measured match (0 when the ALPU answered).
  std::uint64_t sw_entries_walked = 0;
  std::uint64_t alpu_hits = 0;
  std::uint64_t alpu_misses = 0;
  double l1_hit_rate = 0.0;
  TimePs total_sim_time = 0;
  /// Kernel events the whole run executed (events/sec yardstick).
  std::uint64_t events_executed = 0;
  /// Probe-level engine work at the receiver (software lists + ALPUs):
  /// probes issued, comparator cells scanned, compaction entry moves.
  common::MatchCounters match_counters;

  // Robustness-path accounting, zero on a clean run: faults the network
  // injected, packets the reliability sublayer re-sent, degradation
  // events at the NICs, and links given up on.  Summed machine-wide.
  std::uint64_t net_faults_injected = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t alpu_probe_rejections = 0;
  std::uint64_t alpu_fallback_resets = 0;
  std::uint64_t link_failures = 0;

  // ALPU transient-fault accounting, zero unless an SEU model is
  // configured (summed machine-wide; `alpusim sweep --verbose` prints
  // them alongside the robustness counters).
  std::uint64_t seu_injected = 0;
  std::uint64_t parity_faults = 0;
  std::uint64_t scrub_sweeps = 0;
  std::uint64_t rebuilds = 0;

  // Eager-resource occupancy peaks, max over NICs (tracked stats-only
  // on unlimited-budget runs; `alpusim sweep --verbose` prints them).
  std::uint64_t peak_unexpected_depth = 0;
  std::uint64_t peak_eager_pool_bytes = 0;
  std::uint64_t peak_unexpected_slots = 0;
};

/// Run one pre-posted-queue measurement (Figure 5 data point).
LatencyResult run_preposted(const PrepostedParams& params);

/// Run one unexpected-queue measurement (Figure 6 data point).
LatencyResult run_unexpected(const UnexpectedParams& params);

/// A plain zero-queue ping-pong, averaged over `iterations` round trips
/// (the classical latency test of Section II's hash-table discussion).
TimePs run_pingpong(NicMode mode, std::uint32_t message_bytes,
                    int iterations);

struct MessageRateParams {
  NicMode mode = NicMode::kBaseline;
  /// Non-matching posted entries every message must walk past.
  std::size_t queue_length = 0;
  /// Messages in the measured burst.
  int burst = 64;
  std::uint32_t message_bytes = 0;
  std::optional<mpi::SystemConfig> system;
  /// Engine shards (see PrepostedParams::shards).
  int shards = 1;
};

/// Measure the per-message gap (inverse message rate, the LogP parameter
/// the introduction names as the second-largest application impact): a
/// burst of back-to-back sends into a receiver whose posted queue holds
/// `queue_length` non-matching entries ahead of the matches.  Returns
/// the steady-state time per message at the receiver.
TimePs run_message_rate(const MessageRateParams& params);

/// A NIC parameterised like a Quadrics Elan4-class embedded processor —
/// the comparison of Section VI-B (~150 ns per traversed entry vs. this
/// model's ~15 ns: slower clock, single-issue, small cache).
mpi::SystemConfig make_elan4_like_config();

}  // namespace alpu::workload
