#include "workload/chaos.hpp"

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "mpi/mpi.hpp"
#include "sim/parallel.hpp"

namespace alpu::workload {

namespace {

/// messages[d][s] = payload sizes rank s sends to rank d, in order.
struct Plan {
  std::vector<std::vector<std::vector<std::uint32_t>>> messages;
  int nranks = 0;
};

Plan make_plan(int nranks, int per_pair, std::uint64_t seed,
               bool overload) {
  common::Xoshiro256 rng(seed);
  Plan plan;
  plan.nranks = nranks;
  plan.messages.resize(static_cast<std::size_t>(nranks));
  for (int d = 0; d < nranks; ++d) {
    plan.messages[static_cast<std::size_t>(d)].resize(
        static_cast<std::size_t>(nranks));
    for (int s = 0; s < nranks; ++s) {
      if (s == d) continue;
      // Incast: every sender floods rank 0 and nobody else, with
      // all-eager sizes — receiver resources are the only bottleneck.
      if (overload && d != 0) continue;
      for (int m = 0; m < per_pair; ++m) {
        if (overload) {
          plan.messages[static_cast<std::size_t>(d)]
                       [static_cast<std::size_t>(s)]
              .push_back(static_cast<std::uint32_t>(64 + rng.below(1'984)));
          continue;
        }
        // Mostly eager, occasionally rendezvous-sized — the loss of any
        // RTS/CTS/DATA leg must be survivable too.
        const std::uint32_t bytes =
            rng.chance(0.15)
                ? static_cast<std::uint32_t>(20'000 + rng.below(40'000))
                : static_cast<std::uint32_t>(1 + rng.below(2'000));
        plan.messages[static_cast<std::size_t>(d)]
                     [static_cast<std::size_t>(s)]
                         .push_back(bytes);
      }
    }
  }
  return plan;
}

struct RankOutcome {
  std::uint64_t received_bytes = 0;
  std::uint64_t order_violations = 0;  ///< matched tag != posting ordinal
  std::uint64_t size_mismatches = 0;   ///< bytes != planned payload
};

/// One pending receive: from which peer, which ordinal, how many bytes
/// the plan says it carries.
struct PendingRecv {
  mpi::Request request;
  int peer = 0;
  std::size_t ordinal = 0;
  std::uint32_t planned_bytes = 0;
};

sim::Process chaos_rank(mpi::Machine& machine, const Plan& plan, int rank,
                        std::uint64_t seed, bool overload,
                        std::vector<RankOutcome>& out) {
  common::Xoshiro256 rng(seed ^ (0xC0FFEEULL + 977 * static_cast<std::uint64_t>(rank)));
  mpi::Rank& self = machine.rank(rank);

  std::vector<mpi::Request> sends;
  std::vector<PendingRecv> recvs;
  std::vector<std::size_t> send_cursor(
      static_cast<std::size_t>(plan.nranks), 0);
  std::vector<std::size_t> recv_cursor(
      static_cast<std::size_t>(plan.nranks), 0);

  // Interleave sends and receives across peers with random think time,
  // racing arrivals against postings.  Sends tag each message with its
  // per-pair ordinal; receives use an explicit source and ANY_TAG, so
  // the tag that actually matched exposes per-pair delivery order.
  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (int peer = 0; peer < plan.nranks; ++peer) {
      if (peer == rank) continue;
      const auto p = static_cast<std::size_t>(peer);
      const auto r = static_cast<std::size_t>(rank);
      if (send_cursor[p] < plan.messages[p][r].size()) {
        const auto i = send_cursor[p]++;
        sends.push_back(self.isend(peer, static_cast<int>(i),
                                   plan.messages[p][r][i]));
        work_left = true;
      }
      if (recv_cursor[p] < plan.messages[r][p].size()) {
        const auto i = recv_cursor[p]++;
        recvs.push_back(PendingRecv{
            self.irecv(peer, mpi::kAnyTag, 64 * 1024), peer, i,
            plan.messages[r][p][i]});
        work_left = true;
      }
      if (rng.chance(0.2)) {
        // Think time schedules on this rank's own shard engine.
        co_await sim::delay(self.engine(), rng.below(3'000) * 1'000);
      }
    }
    if (overload && rank == 0 && work_left) {
      // The overloaded receiver drains slowly: one receive per peer per
      // round, then a fixed stall.  The senders' eager floods pile up
      // against the NIC's budget in the meantime — that pressure is the
      // point of the scenario.
      co_await sim::delay(self.engine(), 50'000'000);  // 50 us
    }
  }

  co_await self.waitall(std::move(sends));
  RankOutcome& result = out[static_cast<std::size_t>(rank)];
  for (PendingRecv& pr : recvs) {
    co_await self.wait(pr.request);
    result.received_bytes += pr.request.bytes();
    const match::Envelope env = pr.request.matched();
    // Receives from one peer are posted in ordinal order and the posted
    // list matches oldest-first, so arrival k from a peer completes the
    // k-th posted receive: the matched tag must equal the ordinal, or
    // the reliability layer let a message through out of order (or a
    // duplicate consumed a receive out of turn).
    if (env.tag != pr.ordinal) ++result.order_violations;
    if (pr.request.bytes() != pr.planned_bytes) ++result.size_mismatches;
  }
  co_await self.barrier();
}

}  // namespace

mpi::SystemConfig make_chaos_system_config(const ChaosParams& params) {
  mpi::SystemConfig cfg = make_system_config(params.mode, params.ranks);
  cfg.faults = params.faults;
  cfg.nic.reliability = params.reliability;
  if (cfg.faults.any()) cfg.nic.reliability.enabled = true;
  cfg.nic.eager_pool_bytes = params.eager_pool_bytes;
  cfg.nic.unexpected_slots = params.unexpected_slots;
  cfg.nic.seu = params.seu;
  // Finite budgets make exhaustion an RNR-NACK protocol event, which
  // lives in the reliability sublayer.
  if (cfg.nic.eager_pool_bytes > 0 || cfg.nic.unexpected_slots > 0) {
    cfg.nic.reliability.enabled = true;
  }
  return cfg;
}

ChaosResult run_chaos(const ChaosParams& params) {
  const Plan plan =
      make_plan(params.ranks, params.per_pair, params.seed, params.overload);

  const unsigned nshards = static_cast<unsigned>(
      std::clamp(params.shards, 1, std::max(params.ranks, 1)));
  sim::ShardGroup shards(nshards);
#if ALPU_AUDIT
  if (params.auditor != nullptr) shards.set_audit(params.auditor);
#endif
  mpi::Machine machine(shards, make_chaos_system_config(params));
  sim::ProcessPool pool(machine.engine());
  std::vector<RankOutcome> outcomes(
      static_cast<std::size_t>(params.ranks));
  for (int r = 0; r < params.ranks; ++r) {
    pool.spawn_on(machine.engine(r),
                  chaos_rank(machine, plan, r, params.seed, params.overload,
                             outcomes));
  }
  const common::TimePs end =
      shards.run_all(machine.network().min_lookahead());

  ChaosResult res;
  res.completed = pool.all_done();
  res.sim_time = end;
  res.events_executed = shards.events_executed();
  res.net = machine.network().stats();

  res.conserved = true;
  res.ordered = true;
  for (int d = 0; d < params.ranks; ++d) {
    std::uint64_t expected = 0;
    for (int s = 0; s < params.ranks; ++s) {
      for (std::uint32_t b : plan.messages[static_cast<std::size_t>(d)]
                                          [static_cast<std::size_t>(s)]) {
        expected += b;
        ++res.messages;
      }
    }
    const RankOutcome& o = outcomes[static_cast<std::size_t>(d)];
    if (o.received_bytes != expected || o.size_mismatches != 0) {
      res.conserved = false;
    }
    if (o.order_violations != 0) res.ordered = false;
  }
  // An incomplete run never receives everything; keep the flags honest.
  if (!res.completed) res.conserved = false;

  res.drained = true;
  for (int r = 0; r < params.ranks; ++r) {
    const nic::Nic& n = machine.nic(r);
    if (n.posted_queue_length() != 0 || n.unexpected_queue_length() != 0) {
      res.drained = false;
    }
    res.reliability += n.reliability().stats();
    res.probe_rejections += n.stats().alpu_probe_rejections;
    res.fallback_resets += n.stats().alpu_fallback_resets;
    res.fallback_searches += n.stats().alpu_fallback_searches;
    res.seu_injected += n.stats().seu_injected;
    res.parity_faults += n.stats().parity_faults;
    res.scrub_sweeps += n.stats().scrub_sweeps;
    res.rebuilds += n.stats().rebuilds;
    res.seu_detect_latency_ps += n.stats().seu_detect_latency_ps;
    res.peak_pool_bytes =
        std::max(res.peak_pool_bytes, n.stats().eager_pool_peak_bytes);
    res.peak_unexpected_slots =
        std::max(res.peak_unexpected_slots, n.stats().unexpected_slots_peak);
    res.peak_unexpected_depth =
        std::max(res.peak_unexpected_depth, n.stats().unexpected_depth_peak);
    res.demotions += n.stats().rnr_demotions;
    res.demoted_sends += n.stats().demoted_sends;
  }
  res.pool_budget = params.eager_pool_bytes;
  res.slot_budget = params.unexpected_slots;
  res.stalls = machine.watchdog().stalls_detected();
  return res;
}

}  // namespace alpu::workload
