// Parallel sweep runner.
//
// Every figure in the paper is a surface of independent single-machine
// simulations: `scenarios.hpp` builds a fresh Engine + Machine per data
// point, so points share no mutable state and can run on separate OS
// threads.  This header provides the thread-pool map that exploits that
// independence, plus the Figure-5 surface helpers shared by
// bench_preposted, `alpusim sweep`, and the determinism tests.
//
// Determinism contract: results are collected into a slot per input
// index, so the output order equals the input order no matter how the
// scheduler interleaves workers — a parallel sweep produces byte-identical
// CSV to a serial one.  Each worker's simulation is itself single-threaded
// and seeded only by its parameters (no wall clock anywhere), so repeated
// parallel runs are identical too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "alpu/seu.hpp"
#include "workload/scenarios.hpp"

namespace alpu::workload {

struct SweepOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 0;
  /// Engine shards inside each data-point simulation (forwarded to the
  /// scenario params; clamped per machine).  1 = single-threaded engine.
  /// Results are byte-identical at every shard count.
  int shards = 1;
  /// ALPU transient-fault model applied to every data point (sweep
  /// robustness studies).  Default installs nothing, so the standard
  /// figure surfaces take the exact pre-fault-model code path.
  hw::SeuConfig seu;
};

/// Resolve a --jobs value: <= 0 becomes hardware_concurrency (min 1).
int resolve_jobs(int jobs);

namespace detail {
/// Run body(i) for every i in [0, n) across resolve_jobs(jobs) worker
/// threads (the caller participates).  Indexes are handed out dynamically
/// (points vary in cost); blocks until every call returned.  The first
/// exception thrown by a body is rethrown in the caller after all
/// workers drain.
void parallel_for_index(std::size_t n, int jobs,
                        const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Map each point through `fn` in parallel, preserving input order in the
/// result.  `fn` must build its own Engine/Machine per call (the scenario
/// runners do) and must not touch shared mutable state.
template <typename T, typename F>
auto sweep_map(const std::vector<T>& points, F&& fn,
               const SweepOptions& options = {})
    -> std::vector<decltype(fn(points[std::size_t{0}]))> {
  using R = decltype(fn(points[std::size_t{0}]));
  std::vector<R> results(points.size());
  detail::parallel_for_index(
      points.size(), options.jobs,
      [&](std::size_t i) { results[i] = fn(points[i]); });
  return results;
}

/// Printable name of a NIC mode ("baseline", "alpu128", "alpu256").
const char* nic_mode_name(NicMode mode);

// ---- Figure-5 surface (the bench_preposted / `alpusim sweep` unit) --------

/// One point of the pre-posted-queue surface.
struct SurfacePoint {
  NicMode mode = NicMode::kBaseline;
  std::size_t queue_length = 0;
  double fraction_traversed = 1.0;
  std::uint32_t message_bytes = 0;
};

struct SurfaceRow {
  SurfacePoint point;
  LatencyResult result;
};

/// The paper's queue-length axis; `quick` is the reduced CI/test grid.
std::vector<std::size_t> fig5_queue_lengths(bool quick);
std::vector<double> fig5_fractions(bool quick);

/// The full mode x length x fraction grid (modes ordered baseline,
/// alpu128, alpu256 — the paper's panel order).
std::vector<SurfacePoint> fig5_surface_points(bool quick);

/// Run every point on a sweep pool; rows come back in input order.
std::vector<SurfaceRow> run_preposted_surface(
    const std::vector<SurfacePoint>& points, const SweepOptions& options);

/// CSV rendering (header + one row per point) — identical bytes for
/// serial and parallel runs of the same points.
std::string surface_csv(const std::vector<SurfaceRow>& rows);

}  // namespace alpu::workload
