// Portals 3.0-style protocol building blocks (references [17][22][23]),
// with optional ALPU offload — the paper's stated future work ("offload
// significant portions of the Portals interface", Section VIII) and the
// reason the prototype supports a full-width mask bit per match bit
// (Section III-A footnote: "supports protocols beyond MPI, such as
// Portals").
//
// Implemented subset:
//   * a portal table of match lists; match entries carry 64-bit match
//     bits + ignore bits (full-width masks) and initiator (nid, pid)
//     matching with wildcards;
//   * memory descriptors with locally-managed offsets, optional
//     truncation, and operation thresholds with auto-unlink;
//   * event queues (fixed-depth rings, overflow counted, never blocking
//     — Portals semantics);
//   * PtlPut/PtlGet delivery against the table, first-match in list
//     order, with traversal-cost accounting;
//   * optional ALPU acceleration per portal index.  The hardware
//     deletes matched cells (MPI consume-on-match semantics), so the
//     offload applies cleanly to USE-ONCE entries; attaching a
//     persistent entry to an accelerated index degrades that index to
//     software traversal — an honest limitation of the published design
//     that DESIGN.md discusses.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "alpu/array.hpp"
#include "common/fifo.hpp"

namespace alpu::portals {

/// Full-width Portals match bits (all 64 bits significant).
using PtlMatchBits = std::uint64_t;

/// Initiator identity.
struct ProcessId {
  std::uint32_t nid = 0;
  std::uint32_t pid = 0;
  friend bool operator==(const ProcessId&, const ProcessId&) = default;
};

inline constexpr std::uint32_t kAnyNid = ~0u;
inline constexpr std::uint32_t kAnyPid = ~0u;
inline constexpr ProcessId kAnyProcess{kAnyNid, kAnyPid};

/// Unlimited operation threshold.
inline constexpr std::uint32_t kInfiniteThreshold =
    std::numeric_limits<std::uint32_t>::max();

/// What to do with a match entry once its threshold is consumed.
enum class UnlinkPolicy : std::uint8_t {
  kUnlink,    ///< use-once (threshold 1) or counted unlink
  kNoUnlink,  ///< persistent
};

/// Memory descriptor: where accepted data lands.
struct MemoryDescriptor {
  std::uint64_t start = 0;   ///< simulated address
  std::uint64_t length = 0;  ///< bytes available
  bool truncate = true;      ///< accept oversized messages truncated
  /// Operations this MD accepts before the entry auto-unlinks
  /// (kInfiniteThreshold == never).
  std::uint32_t threshold = 1;
};

/// A match entry as attached to a portal index.
struct MatchEntrySpec {
  PtlMatchBits match_bits = 0;
  PtlMatchBits ignore_bits = 0;  ///< 1-bits are "don't care"
  ProcessId source = kAnyProcess;  ///< initiator filter (wildcardable)
  MemoryDescriptor md;
  UnlinkPolicy unlink = UnlinkPolicy::kUnlink;
};

/// Handle types (dense indices; never reused within one table).
using MeHandle = std::uint64_t;
using EqHandle = std::uint32_t;
inline constexpr MeHandle kInvalidMe = ~MeHandle{0};

/// Event kinds (subset).
enum class EventKind : std::uint8_t {
  kPutEnd,   ///< a put landed in a memory descriptor
  kGetEnd,   ///< a get read out of a memory descriptor
  kUnlink,   ///< an entry reached its threshold and was unlinked
  kDropped,  ///< header matched nothing (or did not fit, no-truncate)
};

struct Event {
  EventKind kind = EventKind::kDropped;
  ProcessId initiator;
  PtlMatchBits match_bits = 0;
  std::uint32_t rlength = 0;  ///< requested length
  std::uint32_t mlength = 0;  ///< manipulated (actually moved) length
  std::uint64_t offset = 0;   ///< local offset within the MD
  MeHandle me = kInvalidMe;
};

/// Fixed-depth event ring.  Portals never blocks the network on a full
/// queue: overflowing events are dropped and counted.
class EventQueue {
 public:
  explicit EventQueue(std::size_t capacity) : ring_(capacity) {}

  bool post(const Event& e) {
    if (ring_.full()) {
      ++dropped_;
      return false;
    }
    ring_.push(e);
    return true;
  }

  std::optional<Event> poll() { return ring_.try_pop(); }
  std::size_t pending() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }

 private:
  common::BoundedFifo<Event> ring_;
  std::uint64_t dropped_ = 0;
};

/// Outcome of delivering one operation.
struct DeliverResult {
  bool accepted = false;
  MeHandle me = kInvalidMe;
  std::uint32_t mlength = 0;
  std::uint64_t offset = 0;
  /// Entries examined by software traversal (0 on an ALPU hit).
  std::size_t entries_walked = 0;
  /// True when the accelerated path answered.
  bool alpu_hit = false;
};

struct PortalsStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t drops = 0;
  std::uint64_t unlinks = 0;
  std::uint64_t entries_walked = 0;
  std::uint64_t alpu_hits = 0;
  /// Accelerated indices that fell back to software because an entry
  /// was incompatible with hardware delete-on-match (persistent,
  /// multi-use, source-filtered, or non-truncating), or was unlinked
  /// explicitly out of the hardware's synced prefix.
  std::uint64_t degradations = 0;
};

/// One process's portal table.
class PortalTable {
 public:
  /// `indices`: number of portal indices (match lists).
  explicit PortalTable(std::size_t indices);

  /// Create an event queue; all MDs reference queues by handle.
  EqHandle eq_alloc(std::size_t capacity);
  EventQueue& eq(EqHandle handle);

  /// Attach an ALPU (functional model, full-width comparators) to a
  /// portal index.  Call before attaching entries.  Returns false if
  /// entries are already attached.
  bool attach_alpu(std::size_t pti, std::size_t cells,
                   std::size_t block_size);

  /// Append a match entry to the list at `pti` (PtlMEAttach with
  /// PTL_INS_AFTER).  `eq` receives this entry's events.
  MeHandle me_attach(std::size_t pti, const MatchEntrySpec& spec,
                     EqHandle eq);

  /// Explicitly unlink an entry (PtlMEUnlink).  False if unknown/gone.
  bool me_unlink(MeHandle handle);

  /// Deliver a put header: traverse the list at `pti`, land the bytes.
  DeliverResult put(std::size_t pti, ProcessId initiator,
                    PtlMatchBits match_bits, std::uint32_t bytes);

  /// Deliver a get header: same matching; reads instead of writes.
  DeliverResult get(std::size_t pti, ProcessId initiator,
                    PtlMatchBits match_bits, std::uint32_t bytes);

  std::size_t list_length(std::size_t pti) const;
  bool accelerated(std::size_t pti) const;
  const PortalsStats& stats() const { return stats_; }

 private:
  struct Entry {
    MeHandle handle = kInvalidMe;
    MatchEntrySpec spec;
    EqHandle eq = 0;
    std::uint64_t local_offset = 0;  ///< locally-managed offset
    std::uint32_t remaining = 0;     ///< threshold countdown
  };

  struct List {
    std::deque<Entry> entries;
    std::unique_ptr<hw::AlpuArray> alpu;  ///< full-width functional mirror
    /// Entries [0, synced) are mirrored in the ALPU.
    std::size_t synced = 0;
    /// Set once a persistent entry joins: hardware delete-on-match can't
    /// serve it, so the whole list degrades to software traversal.
    bool degraded = false;
  };

  DeliverResult deliver(std::size_t pti, ProcessId initiator,
                        PtlMatchBits match_bits, std::uint32_t bytes,
                        bool is_put);
  bool entry_accepts(const Entry& e, ProcessId initiator,
                     PtlMatchBits match_bits) const;
  void sync_alpu(List& list);
  void unlink_at(List& list, std::size_t index);

  std::vector<List> lists_;
  std::vector<std::unique_ptr<EventQueue>> eqs_;
  MeHandle next_handle_ = 1;
  PortalsStats stats_;
};

}  // namespace alpu::portals
