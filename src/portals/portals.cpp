#include "portals/portals.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace alpu::portals {

namespace {

/// An entry the delete-on-match hardware can serve directly: consumed by
/// exactly one operation, any initiator, always accepts (truncating).
/// This is precisely the shape of an MPI posted receive.
bool alpu_eligible(const MatchEntrySpec& spec) {
  return spec.unlink == UnlinkPolicy::kUnlink && spec.md.threshold == 1 &&
         spec.source == kAnyProcess && spec.md.truncate;
}

}  // namespace

PortalTable::PortalTable(std::size_t indices) : lists_(indices) {
  ALPU_ASSERT(indices > 0, "a portal table needs at least one index");
}

EqHandle PortalTable::eq_alloc(std::size_t capacity) {
  eqs_.push_back(std::make_unique<EventQueue>(capacity));
  return static_cast<EqHandle>(eqs_.size() - 1);
}

EventQueue& PortalTable::eq(EqHandle handle) {
  ALPU_ASSERT(handle < eqs_.size(), "invalid event queue handle");
  return *eqs_[handle];
}

bool PortalTable::attach_alpu(std::size_t pti, std::size_t cells,
                              std::size_t block_size) {
  ALPU_ASSERT(pti < lists_.size(), "portal index out of range");
  List& list = lists_[pti];
  if (!list.entries.empty() || list.alpu != nullptr) return false;
  // Full-width comparators: every bit of the 64-bit Portals match word
  // is significant (the Section III-A "full width mask" configuration).
  list.alpu = std::make_unique<hw::AlpuArray>(
      hw::AlpuFlavor::kPostedReceive, cells, block_size, ~hw::MatchWord{0});
  return true;
}

MeHandle PortalTable::me_attach(std::size_t pti, const MatchEntrySpec& spec,
                                EqHandle eq) {
  ALPU_ASSERT(pti < lists_.size(), "portal index out of range");
  ALPU_ASSERT(eq < eqs_.size(), "invalid event queue handle");
  List& list = lists_[pti];
  Entry entry;
  entry.handle = next_handle_++;
  entry.spec = spec;
  entry.eq = eq;
  entry.remaining = spec.md.threshold;
  list.entries.push_back(entry);
  if (list.alpu != nullptr && !list.degraded) sync_alpu(list);
  return entry.handle;
}

void PortalTable::sync_alpu(List& list) {
  while (list.synced < list.entries.size() && !list.alpu->full()) {
    const Entry& e = list.entries[list.synced];
    if (!alpu_eligible(e.spec)) {
      // Hardware delete-on-match cannot serve this entry; the whole
      // index degrades to software traversal (see header discussion).
      list.degraded = true;
      list.alpu->reset();
      list.synced = 0;
      ++stats_.degradations;
      return;
    }
    const bool ok = list.alpu->insert(
        e.spec.match_bits, e.spec.ignore_bits,
        static_cast<match::Cookie>(e.handle & 0xffff'ffff));
    ALPU_ASSERT(ok, "non-full ALPU refused an insert");
    (void)ok;
    ++list.synced;
  }
}

bool PortalTable::me_unlink(MeHandle handle) {
  for (List& list : lists_) {
    for (std::size_t i = 0; i < list.entries.size(); ++i) {
      if (list.entries[i].handle != handle) continue;
      if (list.alpu != nullptr && !list.degraded && i < list.synced) {
        // The hardware holds this entry and can only delete on match:
        // software unlink of a synced entry forces degradation.
        list.degraded = true;
        list.alpu->reset();
        list.synced = 0;
        ++stats_.degradations;
      } else if (i < list.synced) {
        --list.synced;
      }
      list.entries.erase(list.entries.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool PortalTable::entry_accepts(const Entry& e, ProcessId initiator,
                                PtlMatchBits match_bits) const {
  const MatchEntrySpec& s = e.spec;
  if ((s.source.nid != kAnyNid && s.source.nid != initiator.nid) ||
      (s.source.pid != kAnyPid && s.source.pid != initiator.pid)) {
    return false;
  }
  return ((s.match_bits ^ match_bits) & ~s.ignore_bits) == 0;
}

DeliverResult PortalTable::put(std::size_t pti, ProcessId initiator,
                               PtlMatchBits match_bits,
                               std::uint32_t bytes) {
  ++stats_.puts;
  return deliver(pti, initiator, match_bits, bytes, /*is_put=*/true);
}

DeliverResult PortalTable::get(std::size_t pti, ProcessId initiator,
                               PtlMatchBits match_bits,
                               std::uint32_t bytes) {
  ++stats_.gets;
  return deliver(pti, initiator, match_bits, bytes, /*is_put=*/false);
}

void PortalTable::unlink_at(List& list, std::size_t index) {
  const Entry& e = list.entries[index];
  eqs_[e.eq]->post(Event{EventKind::kUnlink, ProcessId{}, e.spec.match_bits,
                         0, 0, e.local_offset, e.handle});
  ++stats_.unlinks;
  if (index < list.synced) --list.synced;
  list.entries.erase(list.entries.begin() +
                     static_cast<std::ptrdiff_t>(index));
}

DeliverResult PortalTable::deliver(std::size_t pti, ProcessId initiator,
                                   PtlMatchBits match_bits,
                                   std::uint32_t bytes, bool is_put) {
  ALPU_ASSERT(pti < lists_.size(), "portal index out of range");
  List& list = lists_[pti];
  DeliverResult r;

  std::size_t start = 0;
  std::optional<std::size_t> hit_index;

  if (list.alpu != nullptr && !list.degraded && list.synced > 0) {
    const auto m =
        list.alpu->match_and_delete(hw::Probe{match_bits, 0, 0});
    if (m.hit) {
      // The cookie names the entry; eligibility guarantees acceptance.
      r.alpu_hit = true;
      ++stats_.alpu_hits;
      for (std::size_t i = 0; i < list.synced; ++i) {
        if ((list.entries[i].handle & 0xffff'ffff) == m.cookie) {
          hit_index = i;
          break;
        }
      }
      ALPU_ASSERT(hit_index.has_value(),
                  "ALPU cookie does not name a synced entry");
    } else {
      start = list.synced;  // overflow portion only
    }
  }

  if (!hit_index.has_value()) {
    for (std::size_t i = start; i < list.entries.size(); ++i) {
      ++r.entries_walked;
      ++stats_.entries_walked;
      const Entry& e = list.entries[i];
      if (!entry_accepts(e, initiator, match_bits)) continue;
      // Fit check: a matching but oversized operation against a
      // no-truncate descriptor is dropped (entry retained).
      const std::uint64_t space =
          e.spec.md.length - std::min<std::uint64_t>(e.local_offset,
                                                     e.spec.md.length);
      if (bytes > space && !e.spec.md.truncate) {
        eqs_[e.eq]->post(Event{EventKind::kDropped, initiator, match_bits,
                               bytes, 0, e.local_offset, e.handle});
        ++stats_.drops;
        return r;
      }
      hit_index = i;
      break;
    }
  }

  if (!hit_index.has_value()) {
    ++stats_.drops;
    return r;  // matched nothing: dropped at the portal
  }

  Entry& e = list.entries[*hit_index];
  const std::uint64_t space =
      e.spec.md.length -
      std::min<std::uint64_t>(e.local_offset, e.spec.md.length);
  const auto mlength =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(bytes, space));

  r.accepted = true;
  r.me = e.handle;
  r.mlength = mlength;
  r.offset = e.local_offset;

  eqs_[e.eq]->post(Event{is_put ? EventKind::kPutEnd : EventKind::kGetEnd,
                         initiator, match_bits, bytes, mlength,
                         e.local_offset, e.handle});
  if (is_put) e.local_offset += mlength;  // locally managed offset

  if (e.remaining != kInfiniteThreshold) {
    ALPU_ASSERT(e.remaining > 0, "consuming an exhausted match entry");
    --e.remaining;
    if (e.remaining == 0 && e.spec.unlink == UnlinkPolicy::kUnlink) {
      // On an ALPU hit the hardware already deleted its cell, and
      // unlink_at's synced decrement keeps the mirror aligned.
      unlink_at(list, *hit_index);
      // Top the hardware back up from the overflow portion.
      if (list.alpu != nullptr && !list.degraded) sync_alpu(list);
    }
  }
  return r;
}

std::size_t PortalTable::list_length(std::size_t pti) const {
  ALPU_ASSERT(pti < lists_.size(), "portal index out of range");
  return lists_[pti].entries.size();
}

bool PortalTable::accelerated(std::size_t pti) const {
  ALPU_ASSERT(pti < lists_.size(), "portal index out of range");
  return lists_[pti].alpu != nullptr && !lists_[pti].degraded;
}

}  // namespace alpu::portals
