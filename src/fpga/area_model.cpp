#include "fpga/area_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace alpu::fpga {

namespace {

unsigned log2u(std::size_t x) {
  ALPU_ASSERT(x > 0 && (x & (x - 1)) == 0, "log2 of a non-power-of-two");
  return static_cast<unsigned>(std::countr_zero(x));
}

}  // namespace

std::uint64_t cell_flip_flops(const PrototypeParams& p) {
  // Figure 2a/2b: match bits, stored mask (posted flavour only), tag,
  // valid bit.
  std::uint64_t ff = p.match_width + p.tag_width + 1;
  if (p.flavor == hw::AlpuFlavor::kPostedReceive && p.mask_per_bit) {
    ff += p.match_width;
  }
  return ff;
}

SynthesisEstimate estimate(const PrototypeParams& p) {
  ALPU_ASSERT(p.total_cells % p.block_size == 0,
              "total_cells must be a whole number of blocks");
  const std::size_t num_blocks = p.total_cells / p.block_size;
  const unsigned lb = log2u(p.block_size);
  const unsigned ln = log2u(p.total_cells);
  const double n = static_cast<double>(p.total_cells);
  const double nb = static_cast<double>(num_blocks);

  SynthesisEstimate est;

  // ---- flip-flops -------------------------------------------------------
  // Per block (Figure 2c): the registered copy of the incoming request —
  // match bits always; the input mask bits too in the unexpected flavour
  // (Figure 2b) — plus the registered priority-mux output (tag + hit +
  // match location) and ~13 bits of enable/flow control.
  std::uint64_t block_ff = p.match_width + p.tag_width + ln + 1 + 13;
  if (p.flavor == hw::AlpuFlavor::kUnexpected && p.mask_per_bit) {
    block_ff += p.match_width;
  }
  // Unit level: the valid/flow-control distribution network pipelines
  // ~2 FF per cell, plus the Figure-3 state machine and FIFO interface
  // registers (a small constant; the posted flavour carries extra mask
  // staging that the unexpected flavour's per-block mask registers
  // subsume — hence the flavour-dependent constant).
  const std::int64_t unit_const =
      p.flavor == hw::AlpuFlavor::kPostedReceive ? 36 : -50;
  est.flip_flops = static_cast<std::uint64_t>(
      n * static_cast<double>(cell_flip_flops(p)) + nb * static_cast<double>(block_ff) +
      2.0 * n + static_cast<double>(unit_const));

  // ---- LUTs --------------------------------------------------------------
  // Per cell: the masked comparator (XNOR/AND network and AND-reduce over
  // the match width; ~1.3 LUT per matched bit in 4-LUT technology) plus
  // the cell's amortized share of the shift/compaction datapath, and one
  // 2:1 priority-mux node per cell per tree level (tag + location wide,
  // packed 8 bits per LUT pair).
  const double comparator = 1.3 * static_cast<double>(p.match_width);
  const double mux_share =
      static_cast<double>(p.tag_width + ln) / 8.0 * static_cast<double>(lb);
  // Per block: flow control / "space available" compaction logic.
  const double block_luts = 35.0;
  est.luts = static_cast<std::uint64_t>(n * (comparator + mux_share) +
                                        nb * block_luts);

  // ---- slices ------------------------------------------------------------
  // Virtex-II slice = 2 LUT + 2 FF, rarely packable at full density
  // (paper, footnote 8).  The posted design is FF-dominated: observed
  // packing is slices = 0.546 * FF.  The unexpected design additionally
  // leaves a block-size-growing fraction of pure-combinational mux LUTs
  // unpaired with any FF.
  double slices = 0.546 * static_cast<double>(est.flip_flops);
  if (p.flavor == hw::AlpuFlavor::kUnexpected) {
    const double unpaired = 0.055 + 0.010 * (static_cast<double>(lb) - 3.0);
    slices += unpaired * static_cast<double>(est.luts);
  }
  est.slices = static_cast<std::uint64_t>(slices);

  // ---- clock -------------------------------------------------------------
  // Design constrained to 9 ns.  The register-to-register fanout path is
  // ~8.9 ns regardless of parameters; the intra-block priority/compaction
  // path grows with block size and becomes critical at 32 cells/block.
  const double fanout_path_ps = 8'900.0 + 15.0 * static_cast<double>(lb);
  const double intra_block_path_ps = 7'400.0 + 80.0 * static_cast<double>(p.block_size);
  const double period_ps = std::max(fanout_path_ps, intra_block_path_ps);
  est.clock_mhz = 1e6 / period_ps;
  est.asic_clock_mhz = est.clock_mhz * 5.0;  // Section VI-A, conservative

  // ---- pipeline latency --------------------------------------------------
  // Stages (Section V-D): fanout(1) + cell match(1) + intra-block
  // priority(1) + cross-block priority(1 or 2) + delete fanout(1) +
  // delete(1).  The cross-block reduction needs two cycles once the
  // block count reaches 16.
  const unsigned stage4 = num_blocks >= 16 ? 2 : 1;
  est.pipeline_latency = 5 + stage4;

  return est;
}

const std::vector<PublishedRow>& published_table4() {
  static const std::vector<PublishedRow> rows = {
      {256, 8, 17'372, 28'908, 15'766, 112.5, 7},
      {256, 16, 17'573, 27'656, 15'090, 111.4, 7},
      {256, 32, 18'054, 26'971, 14'742, 100.2, 6},
      {128, 8, 8'687, 14'562, 7'945, 111.5, 7},
      {128, 16, 8'786, 13'897, 7'606, 112.1, 6},
      {128, 32, 9'025, 13'605, 7'431, 100.6, 6},
  };
  return rows;
}

const std::vector<PublishedRow>& published_table5() {
  static const std::vector<PublishedRow> rows = {
      {256, 8, 17'339, 19'414, 11'562, 112.1, 7},
      {256, 16, 17'556, 17'490, 10'631, 111.9, 7},
      {256, 32, 18'045, 16'469, 10'350, 100.9, 6},
      {128, 8, 8'672, 9'773, 5'806, 111.2, 7},
      {128, 16, 8'777, 8'771, 5'356, 112.1, 6},
      {128, 32, 9'020, 8'311, 5'215, 100.6, 6},
  };
  return rows;
}

}  // namespace alpu::fpga
