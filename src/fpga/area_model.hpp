// Structural FPGA area/timing estimator for the ALPU (Tables IV and V).
//
// The paper reports synthesis results from the Xilinx tool chain for a
// JHDL prototype on a Virtex-II Pro 100 (-5).  That tool chain is not
// reproducible here, so this model estimates the same quantities from
// the netlist structure Section III describes, with packing/timing
// coefficients calibrated once against the twelve published
// configurations (see DESIGN.md, substitution table).
//
// Structural accounting (4-input LUT technology):
//
//  * Cell storage (flip-flops): a posted-receive cell stores match bits
//    (42) + mask bits (42) + tag (16) + valid (1) = 101 FF; an
//    unexpected-message cell omits the stored mask (Figure 2b): 59 FF.
//  * Per-block registers: each block registers its own copy of the
//    incoming request (match bits, and for the unexpected flavour the
//    input mask bits too), plus enable/control and the registered
//    priority-mux output — ~80 FF/block posted, ~122 FF/block unexpected.
//  * Cell logic (LUTs): the masked comparator (XNOR + mask AND + AND
//    reduce over 42 bits) plus the per-cell share of the shift/compaction
//    and priority muxing.  The mux share grows with log2(block size);
//    the flow-control "space available" logic adds ~35 LUT/block.
//  * Slices: the posted design is FF-dominated and packs at the
//    empirical Virtex-II ratio slices = 0.546 * FF; the unexpected
//    design is balanced, leaving a fraction of purely combinational
//    mux-tree LUTs unpaired — that fraction grows with block size.
//  * Clock: the design was constrained to 9 ns.  Blocks of 8/16 meet it
//    (~112 MHz); at block size 32 the intra-block priority/compaction
//    path exceeds the constraint (~100 MHz).
//  * Pipeline latency: stage 4 (cross-block priority reduction) takes
//    2 cycles when there are >= 16 blocks, 1 cycle otherwise
//    (Section V-D: "either one or two cycles, depending on the circuit
//    parameters"), giving the published 7- vs 6-cycle totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alpu/types.hpp"

namespace alpu::fpga {

/// Parameters of one prototype instantiation.
struct PrototypeParams {
  hw::AlpuFlavor flavor = hw::AlpuFlavor::kPostedReceive;
  std::size_t total_cells = 256;
  std::size_t block_size = 8;
  unsigned match_width = 42;  ///< bits compared per cell
  unsigned tag_width = 16;    ///< software tag (cookie) bits stored
  bool mask_per_bit = true;   ///< full Portals-style maskability
};

/// Estimated synthesis results (the Table IV/V columns).
struct SynthesisEstimate {
  std::uint64_t luts = 0;
  std::uint64_t flip_flops = 0;
  std::uint64_t slices = 0;
  double clock_mhz = 0.0;       ///< FPGA (Virtex-II Pro -5) clock
  unsigned pipeline_latency = 0;  ///< cycles per match, no overlap
  double asic_clock_mhz = 0.0;  ///< Section VI-A's conservative 5x scaling
};

/// Estimate synthesis results for one configuration.
SynthesisEstimate estimate(const PrototypeParams& params);

/// Flip-flops in one storage cell of the given flavour.
std::uint64_t cell_flip_flops(const PrototypeParams& params);

/// The published Table IV/V numbers, for validation and reporting.
struct PublishedRow {
  std::size_t total_cells;
  std::size_t block_size;
  std::uint64_t luts;
  std::uint64_t flip_flops;
  std::uint64_t slices;
  double clock_mhz;
  unsigned pipeline_latency;
};

/// Rows of Table IV (posted receives) in paper order.
const std::vector<PublishedRow>& published_table4();
/// Rows of Table V (unexpected messages) in paper order.
const std::vector<PublishedRow>& published_table5();

}  // namespace alpu::fpga
