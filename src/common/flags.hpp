// Minimal command-line flag parsing for the tools and benches.
//
// Supports `--name=value`, `--name value`, and boolean `--name`.
// Space-form is greedy: `--flag word` binds `word` as the flag's value,
// so put positional arguments BEFORE the flags (the tools' usage), or
// use `--flag=true` when a positional must follow a boolean.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace alpu::common {

class Flags {
 public:
  /// Parse argv.  On malformed input, prints to stderr and returns
  /// nullopt.
  static std::optional<Flags> parse(int argc, char** argv);

  bool has(const std::string& name) const {
    return values_.find(name) != values_.end();
  }

  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                         nullptr, 10);
  }

  double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool get_bool(const std::string& name, bool fallback = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flag names seen (for validation against an allowed set).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [k, v] : values_) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

inline std::optional<Flags> Flags::parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag;
    // otherwise a boolean `--name`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

}  // namespace alpu::common
