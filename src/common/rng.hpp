// Deterministic pseudo-random number generation for workloads and tests.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and identical
// output on every platform, which keeps experiments and property tests
// reproducible from a seed printed in the report.
#pragma once

#include <cstdint>

namespace alpu::common {

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via splitmix64 so that nearby seeds give unrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    // Unbiased enough for workload generation; bounds here are tiny
    // relative to 2^64 so modulo bias is negligible, but we use the
    // widening multiply anyway since it is also faster than %.
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace alpu::common
