// Simulation time base for ALPU-Sim.
//
// All simulated time is expressed in integer picoseconds.  Picoseconds are
// the coarsest unit that exactly represents every clock in the modelled
// system (host CPU 2 GHz -> 500 ps, NIC CPU / ASIC ALPU 500 MHz -> 2000 ps,
// FPGA ALPU ~112 MHz -> ~8929 ps) without accumulating rounding error over
// long runs.  A 64-bit count overflows after ~213 days of simulated time,
// far beyond any experiment here.
#pragma once

#include <cstdint>

namespace alpu::common {

/// Absolute simulation time or a duration, in picoseconds.
using TimePs = std::uint64_t;

/// Sentinel for "no time" / "never".
inline constexpr TimePs kTimeNever = ~TimePs{0};

inline constexpr TimePs operator""_ps(unsigned long long v) { return v; }
inline constexpr TimePs operator""_ns(unsigned long long v) { return v * 1'000; }
inline constexpr TimePs operator""_us(unsigned long long v) { return v * 1'000'000; }
inline constexpr TimePs operator""_ms(unsigned long long v) { return v * 1'000'000'000; }

/// Convert picoseconds to (double) nanoseconds for reporting.
inline constexpr double to_ns(TimePs t) { return static_cast<double>(t) / 1e3; }

/// Convert picoseconds to (double) microseconds for reporting.
inline constexpr double to_us(TimePs t) { return static_cast<double>(t) / 1e6; }

/// A clock frequency, stored as the exact period in picoseconds.
///
/// Construct from a period, or via `from_mhz` / `from_ghz` for the common
/// cases where the frequency divides 1 THz evenly.
class ClockPeriod {
 public:
  constexpr explicit ClockPeriod(TimePs period_ps) : period_ps_(period_ps) {}

  /// Period of an integral-MHz clock.  1 MHz == 1'000'000 ps period.
  static constexpr ClockPeriod from_mhz(std::uint64_t mhz) {
    return ClockPeriod{1'000'000 / mhz};
  }
  static constexpr ClockPeriod from_ghz(std::uint64_t ghz) {
    return ClockPeriod{1'000 / ghz};
  }

  constexpr TimePs period() const { return period_ps_; }

  /// Duration of `n` cycles of this clock.
  constexpr TimePs cycles(std::uint64_t n) const { return n * period_ps_; }

  /// Number of whole cycles that fit in `t` (floor).
  constexpr std::uint64_t cycles_in(TimePs t) const { return t / period_ps_; }

  /// Round `t` up to the next edge of this clock (edges at multiples of the
  /// period from time zero).  Returns `t` itself if already on an edge.
  constexpr TimePs next_edge(TimePs t) const {
    const TimePs rem = t % period_ps_;
    return rem == 0 ? t : t + (period_ps_ - rem);
  }

  constexpr double mhz() const { return 1e6 / static_cast<double>(period_ps_); }

 private:
  TimePs period_ps_;
};

}  // namespace alpu::common
