// Contract-assertion layer: structured runtime checks for the simulator.
//
// The simulator's correctness argument leans on internal protocol
// invariants — FIFO flow control, validity-bitmap/cookie-map
// consistency, event-heap ordering — that a plain `assert()` silently
// drops under `-DNDEBUG`.  These macros make the intent explicit and
// keep the load-bearing checks alive in every build:
//
//   ALPU_ASSERT(cond, msg)        Load-bearing contract.  Compiled into
//                                 ALL builds, including NDEBUG; a
//                                 failure is a protocol violation that
//                                 would silently corrupt simulation
//                                 results if allowed to continue.
//
//   ALPU_DEBUG_ASSERT(cond, msg)  Cheap sanity check on a hot path.
//                                 Active unless NDEBUG (this repo keeps
//                                 NDEBUG off by default) and always
//                                 active under ALPU_CHECKED.
//
//   ALPU_INVARIANT(cond, msg)     Expensive structural invariant (an
//                                 O(n) scan of a whole data structure).
//                                 Compiled ONLY in ALPU_CHECKED builds
//                                 (-DALPU_CHECKED=ON at configure time);
//                                 the condition is never evaluated
//                                 otherwise.
//
//   ALPU_CHECK_FAIL(msg)          Unconditional failure: a state the
//                                 control logic makes unreachable.
//
// Failures report file:line, the failed expression, the message and the
// severity, then abort.  Tests can intercept the report (to assert that
// a specific contract fires) with `set_check_failure_handler`; a
// handler that returns — or throws, as test handlers do — prevents the
// abort.
#pragma once

namespace alpu::common {

enum class CheckSeverity {
  kContract,   ///< ALPU_ASSERT / ALPU_CHECK_FAIL: on in every build
  kDebug,      ///< ALPU_DEBUG_ASSERT: on unless NDEBUG, or ALPU_CHECKED
  kInvariant,  ///< ALPU_INVARIANT: on only under ALPU_CHECKED
};

const char* to_string(CheckSeverity severity);

/// Called with the failure report before the process aborts.  Returning
/// normally suppresses the abort (the default handler never returns).
using CheckFailureHandler = void (*)(const char* file, int line,
                                     const char* expr, const char* msg,
                                     CheckSeverity severity);

/// Install a failure handler (tests); returns the previous one.
/// Passing nullptr restores the default print-and-abort handler.
CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler);

/// Report a failed check through the installed handler, then abort
/// unless the handler returned normally or threw.
void check_failed(const char* file, int line, const char* expr,
                  const char* msg, CheckSeverity severity);

}  // namespace alpu::common

#define ALPU_ASSERT(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::alpu::common::check_failed(__FILE__, __LINE__, #cond, msg,      \
                                   ::alpu::common::CheckSeverity::kContract); \
    }                                                                   \
  } while (0)

#define ALPU_CHECK_FAIL(msg)                                            \
  ::alpu::common::check_failed(__FILE__, __LINE__, "unreachable", msg,  \
                               ::alpu::common::CheckSeverity::kContract)

#if defined(ALPU_CHECKED) || !defined(NDEBUG)
#define ALPU_DEBUG_ASSERT(cond, msg)                                    \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::alpu::common::check_failed(__FILE__, __LINE__, #cond, msg,      \
                                   ::alpu::common::CheckSeverity::kDebug); \
    }                                                                   \
  } while (0)
#else
// Unevaluated: keeps the expression compiling (and its operands "used")
// at zero runtime cost.
#define ALPU_DEBUG_ASSERT(cond, msg) \
  (static_cast<void>(sizeof((cond) ? 1 : 0)))
#endif

#ifdef ALPU_CHECKED
#define ALPU_INVARIANT(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::alpu::common::check_failed(__FILE__, __LINE__, #cond, msg,      \
                                   ::alpu::common::CheckSeverity::kInvariant); \
    }                                                                   \
  } while (0)
#else
#define ALPU_INVARIANT(cond, msg) \
  (static_cast<void>(sizeof((cond) ? 1 : 0)))
#endif
