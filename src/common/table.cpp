#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace alpu::common {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != ',') {
      return false;
    }
  }
  return true;
}
}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  // Compute column widths over header and all rows.
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      const std::size_t pad = widths[i] - cell.size();
      if (looks_numeric(cell)) {
        out << "  " << std::string(pad, ' ') << cell;
      } else {
        out << "  " << cell << std::string(pad, ' ');
      }
    }
    out << "\n";
  };
  emit(header_);
  // Separator under the header.
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out << "  " << std::string(widths[i], '-');
  }
  out << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ",";
      out << row[i];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace alpu::common
