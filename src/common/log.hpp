// Minimal leveled logger for the simulator.
//
// Logging is off by default (benchmarks must not pay for it); tests and
// debugging sessions raise the level.  Messages carry the simulated
// timestamp supplied by the caller so traces read in simulation order.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace alpu::common {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

/// Process-global log level.  Stored atomically so parallel sweep workers
/// (each running its own single-threaded Engine) can read it without
/// racing a concurrent set_log_level(); the relaxed load costs nothing on
/// the hot path.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one log line: `[  123.456 ns] tag: message`.
void log_line(LogLevel level, TimePs now, std::string_view tag,
              std::string_view message);

namespace detail {

inline void format_rest(std::ostringstream& out, std::string_view fmt) {
  out << fmt;
}

template <typename Arg, typename... Rest>
void format_rest(std::ostringstream& out, std::string_view fmt, Arg&& arg,
                 Rest&&... rest) {
  const std::size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt;
    return;
  }
  out << fmt.substr(0, pos) << arg;
  format_rest(out, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}

}  // namespace detail

/// Brace-substitution formatter ({} placeholders, in order).
template <typename... Args>
std::string format_braces(std::string_view fmt, Args&&... args) {
  std::ostringstream out;
  detail::format_rest(out, fmt, std::forward<Args>(args)...);
  return out.str();
}

/// Convenience logger.  `logf(kDebug, now, "nic", "match took {} ns", t)`.
template <typename... Args>
void logf(LogLevel level, TimePs now, std::string_view tag,
          std::string_view fmt, Args&&... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  log_line(level, now, tag, format_braces(fmt, std::forward<Args>(args)...));
}

}  // namespace alpu::common

/// Call-site log gate.  `logf` already skips *formatting* when filtered,
/// but its arguments — often `to_string(...)` calls that build strings —
/// are still evaluated at the call site.  This macro checks the level
/// before touching the arguments, so per-packet trace lines cost one
/// predictable branch when logging is off (the benchmark default).
#define ALPU_LOGF(level, now, tag, ...)                              \
  do {                                                               \
    if (static_cast<int>(level) <=                                   \
        static_cast<int>(::alpu::common::log_level())) {             \
      ::alpu::common::logf((level), (now), (tag), __VA_ARGS__);      \
    }                                                                \
  } while (0)
