#include "common/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace alpu::common {

const char* to_string(CheckSeverity severity) {
  switch (severity) {
    case CheckSeverity::kContract:
      return "contract";
    case CheckSeverity::kDebug:
      return "debug";
    case CheckSeverity::kInvariant:
      return "invariant";
  }
  return "?";
}

namespace {
// Relaxed atomics: the handler is installed before (single-threaded)
// test bodies run; the atomic only guards against torn pointer reads if
// a sweep worker ever trips a check while another installs a handler.
std::atomic<CheckFailureHandler> g_handler{nullptr};
}  // namespace

CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void check_failed(const char* file, int line, const char* expr,
                  const char* msg, CheckSeverity severity) {
  CheckFailureHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(file, line, expr, msg, severity);
    return;  // a returning (or throwing) handler suppresses the abort
  }
  std::fprintf(stderr, "ALPU CHECK FAILED [%s] %s:%d: (%s) — %s\n",
               to_string(severity), file, line, expr, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace alpu::common
