// Lightweight statistics collectors used by benchmarks and the simulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace alpu::common {

/// Probe-level counters of the matching datapath, kept by every match
/// engine instance (the ALPU SoA array and the software match lists) and
/// aggregated per NIC.  Plain integers, no atomics: each simulated
/// machine — and therefore each counter instance — is owned by exactly
/// one sweep worker thread.
struct MatchCounters {
  std::uint64_t probes = 0;            ///< match/search operations issued
  std::uint64_t cells_scanned = 0;     ///< cells/entries examined by them
  std::uint64_t compaction_moves = 0;  ///< entries shifted by delete/erase
  std::uint64_t inserts_dropped = 0;   ///< entries a full unit refused
  MatchCounters& operator+=(const MatchCounters& o) {
    probes += o.probes;
    cells_scanned += o.cells_scanned;
    compaction_moves += o.compaction_moves;
    inserts_dropped += o.inserts_dropped;
    return *this;
  }
  friend bool operator==(const MatchCounters&, const MatchCounters&) = default;
};

/// Streaming summary: count / min / max / mean / stddev (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const { return n_ ? min_ : std::numeric_limits<double>::quiet_NaN(); }
  double max() const { return n_ ? max_ : std::numeric_limits<double>::quiet_NaN(); }
  double mean() const { return n_ ? mean_ : std::numeric_limits<double>::quiet_NaN(); }
  double variance() const;
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return sum_; }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

/// Collects every sample; supports exact percentiles.  Use for benchmark
/// latency distributions where sample counts are modest.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;

  /// Exact percentile by nearest-rank, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow bins,
/// used for queue-depth and latency distributions in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_low(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_high(std::size_t i) const { return bin_low(i) + width_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Multi-line ASCII rendering for reports.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace alpu::common
