#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace alpu::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
    default: return "?";
  }
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

// fprintf(stderr, ...) is locale-locked per call, so concurrent sweep
// workers interleave whole lines, never bytes.
void log_line(LogLevel level, TimePs now, std::string_view tag,
              std::string_view message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::fprintf(stderr, "%s [%12.3f ns] %.*s: %.*s\n", level_name(level),
               to_ns(now), static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace alpu::common
