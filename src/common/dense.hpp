// Cache-resident control-path containers.
//
// The NP queue-management literature (Papaefstathiou et al.) makes the
// same point for the control structures AROUND the queues that the
// paper makes for the queues themselves: per-message bookkeeping lives
// or dies on memory behaviour.  The simulator's message hot path keeps
// several small keyed tables per NIC — rendezvous tokens, cookie->
// request state, per-destination ordering tickets, reliability windows,
// per-link serialisation horizons.  Node- and pointer-chasing
// containers (std::map, std::unordered_map) spend the per-message
// budget on allocation and cache misses; these two containers spend it
// on nothing:
//
//   * DenseNodeTable<T> — a NodeId-indexed flat array.  Node ids are
//     small and dense (the Machine fixes the node count at
//     construction), so "map keyed by NodeId" is just an array lookup.
//     Growth happens only while the machine is being built or a link is
//     first used; steady state is a single indexed load.
//
//   * FlatMap<K, V> — an open-addressing hash map over integer keys
//     with two properties std::unordered_map lacks: iteration follows
//     INSERTION ORDER (a doubly-linked list threaded through the slot
//     pool), so no result can ever depend on hash-bucket order
//     (scripts/determinism_lint.py bans raw unordered containers from
//     the NIC/net control path for exactly that reason); and erased
//     slots go to a free list and are RECYCLED, so the protocol states
//     they hold (RdvzSendState, PostedInfo, ...) are pooled — at steady
//     state insert/erase churn never touches the allocator.
//
// Every backing-array growth is reported through an AllocSink, which
// the NIC wires to NicStats.control_allocs/control_bytes — the
// counters the steady-state-allocation soak tests pin to zero, the way
// ReliabilityStats.buffer_allocs already proves the retransmit ring
// clean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace alpu::common {

/// Borrowed pair of counters a pooled container bumps on each backing
/// allocation (growth or rehash).  Default-constructed it counts into
/// nothing; the owner points it at its stats block.
struct AllocSink {
  std::uint64_t* allocs = nullptr;
  std::uint64_t* bytes = nullptr;
  void count(std::size_t nbytes) const {
    if (allocs != nullptr) ++*allocs;
    if (bytes != nullptr) *bytes += nbytes;
  }
};

namespace detail {
/// splitmix64 finalizer: a deterministic, platform-independent integer
/// hash (std::hash<uint64_t> is identity on libstdc++ — clustered
/// tokens would degenerate linear probing).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace detail

/// Flat array keyed by a small dense id (NodeId).  operator[] grows the
/// backing store to cover the id (setup-time only in practice: callers
/// reserve() the machine's node count up front); find() never grows.
/// Iteration is index order — deterministic by construction.
template <typename T>
class DenseNodeTable {
 public:
  void set_alloc_sink(AllocSink sink) { sink_ = sink; }

  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  /// Pre-size for ids [0, n): no growth on the hot path afterwards.
  void reserve(std::size_t n) {
    if (n > slots_.size()) grow(n);
  }

  T& operator[](std::uint32_t id) {
    if (id >= slots_.size()) grow(static_cast<std::size_t>(id) + 1);
    return slots_[id];
  }

  /// Entry for `id`, or nullptr if the table has never covered it.
  const T* find(std::uint32_t id) const {
    return id < slots_.size() ? &slots_[id] : nullptr;
  }
  T* find(std::uint32_t id) {
    return id < slots_.size() ? &slots_[id] : nullptr;
  }

  typename std::vector<T>::iterator begin() { return slots_.begin(); }
  typename std::vector<T>::iterator end() { return slots_.end(); }
  typename std::vector<T>::const_iterator begin() const {
    return slots_.begin();
  }
  typename std::vector<T>::const_iterator end() const { return slots_.end(); }

 private:
  void grow(std::size_t n) {
    const std::size_t old_cap = slots_.capacity();
    slots_.resize(n);
    if (slots_.capacity() != old_cap) {
      sink_.count(slots_.capacity() * sizeof(T));
    }
  }

  std::vector<T> slots_;
  AllocSink sink_;
};

/// Open-addressing hash map over integer keys with insertion-order
/// iteration and a pooled slot free list (see the file comment).
///
/// Deletion uses backward-shift (no tombstones), so lookup cost never
/// degrades under churn.  Erased values are reset to V{} before going
/// on the free list — recycled protocol state always starts clean (the
/// pool-reset property the ALPU_CHECKED tests pin down).
template <typename K, typename V>
class FlatMap {
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    K key{};
    V value{};
    std::uint32_t prev = kNil;  ///< insertion-order list links
    std::uint32_t next = kNil;
    bool used = false;
  };

 public:
  void set_alloc_sink(AllocSink sink) { sink_ = sink; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-size index and pool for `n` live entries.
  void reserve(std::size_t n) {
    std::size_t buckets = kMinBuckets;
    while (buckets * 7 < n * 10) buckets *= 2;
    if (buckets > index_.size()) rehash(buckets);
    if (n > slots_.capacity()) {
      slots_.reserve(n);
      sink_.count(slots_.capacity() * sizeof(Slot));
    }
  }

  V* find(const K& key) {
    const std::uint32_t b = probe(key);
    return b == kNil ? nullptr : &slots_[index_[b]].value;
  }
  const V* find(const K& key) const {
    const std::uint32_t b = probe(key);
    return b == kNil ? nullptr : &slots_[index_[b]].value;
  }
  bool contains(const K& key) const { return probe(key) != kNil; }

  /// Lookup that asserts presence (the protocol guarantees the entry).
  V& at(const K& key) {
    V* v = find(key);
    ALPU_ASSERT(v != nullptr, "FlatMap::at: key not present");
    return *v;
  }
  const V& at(const K& key) const {
    const V* v = find(key);
    ALPU_ASSERT(v != nullptr, "FlatMap::at: key not present");
    return *v;
  }

  /// Find-or-insert-default (the std::map idiom the call sites use).
  V& operator[](const K& key) {
    if (index_.empty()) rehash(kMinBuckets);
    std::size_t mask = index_.size() - 1;
    std::size_t b = bucket_of(key, mask);
    while (index_[b] != kNil) {
      if (slots_[index_[b]].key == key) return slots_[index_[b]].value;
      b = (b + 1) & mask;
    }
    if ((size_ + 1) * 10 > index_.size() * 7) {
      rehash(index_.size() * 2);
      mask = index_.size() - 1;
      b = bucket_of(key, mask);
      while (index_[b] != kNil) b = (b + 1) & mask;
    }
    const std::uint32_t s = acquire_slot();
    Slot& slot = slots_[s];
    slot.key = key;
    slot.used = true;
    link_tail(s);
    index_[b] = s;
    ++size_;
    return slot.value;
  }

  /// Erase by key.  Returns false when absent.  The freed slot's value
  /// is reset and the slot recycled by the next insertion.
  bool erase(const K& key) {
    const std::uint32_t b = probe(key);
    if (b == kNil) return false;
    const std::uint32_t s = index_[b];
    unlink(s);
    slots_[s].used = false;
    slots_[s].value = V{};  // recycled state starts clean
    if (free_.size() == free_.capacity()) {
      free_.push_back(s);
      sink_.count(free_.capacity() * sizeof(std::uint32_t));
    } else {
      free_.push_back(s);
    }
    --size_;

    // Backward-shift deletion: walk the probe chain after the hole and
    // pull back every entry whose home bucket the hole now separates
    // from its resting place.  No tombstones, so probe chains stay as
    // short as the load factor allows.
    const std::size_t mask = index_.size() - 1;
    std::size_t hole = b;
    std::size_t i = (b + 1) & mask;
    while (index_[i] != kNil) {
      const std::size_t home = bucket_of(slots_[index_[i]].key, mask);
      if (((i - home) & mask) >= ((i - hole) & mask)) {
        index_[hole] = index_[i];
        hole = i;
      }
      i = (i + 1) & mask;
    }
    index_[hole] = kNil;
    ALPU_INVARIANT(check_invariants(), "FlatMap inconsistent after erase");
    return true;
  }

  /// Drop all entries, keeping every backing capacity (pool intact).
  void clear() {
    slots_.clear();
    free_.clear();
    index_.assign(index_.size(), kNil);
    head_ = tail_ = kNil;
    size_ = 0;
  }

  /// Insertion-order iteration: `for (auto [key, value] : map)`.
  template <bool kConst>
  class Iter {
    using MapPtr = std::conditional_t<kConst, const FlatMap*, FlatMap*>;
    using Ref = std::conditional_t<kConst, std::pair<const K&, const V&>,
                                   std::pair<const K&, V&>>;

   public:
    Iter(MapPtr map, std::uint32_t idx) : map_(map), idx_(idx) {}
    Ref operator*() const {
      auto& slot = map_->slots_[idx_];
      return Ref{slot.key, slot.value};
    }
    Iter& operator++() {
      idx_ = map_->slots_[idx_].next;
      return *this;
    }
    bool operator==(const Iter& o) const { return idx_ == o.idx_; }
    bool operator!=(const Iter& o) const { return idx_ != o.idx_; }

   private:
    MapPtr map_;
    std::uint32_t idx_;
  };

  Iter<false> begin() { return {this, head_}; }
  Iter<false> end() { return {this, kNil}; }
  Iter<true> begin() const { return {this, head_}; }
  Iter<true> end() const { return {this, kNil}; }

  /// O(n) structural consistency: index/list/pool agree.  Run under
  /// ALPU_INVARIANT (ALPU_CHECKED builds only).
  bool check_invariants() const {
    // Insertion-order list: length == size_, links consistent, every
    // node used and findable through the index.
    std::size_t walked = 0;
    std::uint32_t prev = kNil;
    for (std::uint32_t i = head_; i != kNil; i = slots_[i].next) {
      if (i >= slots_.size() || !slots_[i].used) return false;
      if (slots_[i].prev != prev) return false;
      if (probe(slots_[i].key) == kNil) return false;
      prev = i;
      if (++walked > size_) return false;
    }
    if (walked != size_ || tail_ != prev) return false;
    // Index: occupied buckets == size_, each pointing at a used slot.
    std::size_t occupied = 0;
    for (const std::uint32_t s : index_) {
      if (s == kNil) continue;
      if (s >= slots_.size() || !slots_[s].used) return false;
      ++occupied;
    }
    if (occupied != size_) return false;
    // Free list: only unused slots.
    for (const std::uint32_t s : free_) {
      if (s >= slots_.size() || slots_[s].used) return false;
    }
    return slots_.size() == size_ + free_.size();
  }

 private:
  static constexpr std::size_t kMinBuckets = 8;

  static std::size_t bucket_of(const K& key, std::size_t mask) {
    return static_cast<std::size_t>(
               detail::mix64(static_cast<std::uint64_t>(key))) &
           mask;
  }

  /// Bucket holding `key`, or kNil.
  std::uint32_t probe(const K& key) const {
    if (index_.empty()) return kNil;
    const std::size_t mask = index_.size() - 1;
    std::size_t b = bucket_of(key, mask);
    while (index_[b] != kNil) {
      if (slots_[index_[b]].key == key) {
        return static_cast<std::uint32_t>(b);
      }
      b = (b + 1) & mask;
    }
    return kNil;
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t s = free_.back();
      free_.pop_back();
      return s;
    }
    const std::size_t old_cap = slots_.capacity();
    slots_.emplace_back();
    if (slots_.capacity() != old_cap) {
      sink_.count(slots_.capacity() * sizeof(Slot));
    }
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void link_tail(std::uint32_t s) {
    slots_[s].prev = tail_;
    slots_[s].next = kNil;
    if (tail_ != kNil) {
      slots_[tail_].next = s;
    } else {
      head_ = s;
    }
    tail_ = s;
  }

  void unlink(std::uint32_t s) {
    Slot& slot = slots_[s];
    if (slot.prev != kNil) {
      slots_[slot.prev].next = slot.next;
    } else {
      head_ = slot.next;
    }
    if (slot.next != kNil) {
      slots_[slot.next].prev = slot.prev;
    } else {
      tail_ = slot.prev;
    }
    slot.prev = slot.next = kNil;
  }

  /// Rebuild the index at `buckets` capacity, reinserting live slots in
  /// insertion order (deterministic: the result depends only on the
  /// operation history, never on bucket layout).
  void rehash(std::size_t buckets) {
    index_.assign(buckets, kNil);
    sink_.count(buckets * sizeof(std::uint32_t));
    const std::size_t mask = buckets - 1;
    for (std::uint32_t i = head_; i != kNil; i = slots_[i].next) {
      std::size_t b = bucket_of(slots_[i].key, mask);
      while (index_[b] != kNil) b = (b + 1) & mask;
      index_[b] = i;
    }
    ALPU_INVARIANT(check_invariants(), "FlatMap inconsistent after rehash");
  }

  std::vector<Slot> slots_;           ///< pooled entry storage
  std::vector<std::uint32_t> free_;   ///< recycled slot indices (LIFO)
  std::vector<std::uint32_t> index_;  ///< open-addressing bucket array
  std::uint32_t head_ = kNil;         ///< insertion-order list
  std::uint32_t tail_ = kNil;
  std::size_t size_ = 0;
  AllocSink sink_;
};

}  // namespace alpu::common
