#include "common/stats.hpp"

#include <sstream>

#include "common/check.hpp"

namespace alpu::common {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  ALPU_ASSERT(!samples_.empty(), "statistic of an empty sample set");
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ensure_sorted();
  ALPU_ASSERT(!samples_.empty(), "statistic of an empty sample set");
  return samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  ALPU_ASSERT(!samples_.empty(), "statistic of an empty sample set");
  return samples_.back();
}

double SampleSet::percentile(double p) const {
  ensure_sorted();
  ALPU_ASSERT(!samples_.empty(), "statistic of an empty sample set");
  ALPU_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of [0, 100]");
  if (samples_.size() == 1) return samples_[0];
  // Nearest-rank with linear interpolation between adjacent order stats.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  ALPU_ASSERT(hi > lo && bins > 0, "degenerate histogram range");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * max_width / peak);
    out << "[" << bin_low(i) << ", " << bin_high(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ != 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

}  // namespace alpu::common
