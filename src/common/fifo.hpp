// Bounded FIFO modelling a hardware queue.
//
// The ALPU and the NIC decouple their producers and consumers with
// fixed-depth hardware FIFOs (header FIFO, command FIFO, result FIFO,
// network Rx/Tx FIFOs).  This container models exactly that: a fixed
// capacity chosen at construction, no reallocation, and explicit
// full/empty flow control that callers must respect the way hardware
// producers respect an `almost_full` signal.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace alpu::common {

/// Fixed-capacity single-producer/single-consumer FIFO (simulation-local,
/// not thread-safe: the DES kernel is single-threaded by design).
template <typename T>
class BoundedFifo {
 public:
  /// A FIFO with space for `capacity` elements.  Capacity must be nonzero.
  explicit BoundedFifo(std::size_t capacity)
      : slots_(capacity), capacity_(capacity) {
    ALPU_ASSERT(capacity > 0, "hardware FIFOs have nonzero depth");
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t free_slots() const { return capacity_ - size_; }

  /// Push one element.  Returns false (and drops nothing) when full;
  /// the caller models back-pressure.
  [[nodiscard]] bool try_push(T value) {
    if (full()) return false;
    slots_[tail_] = std::move(value);
    tail_ = advance(tail_);
    ++size_;
    return true;
  }

  /// Push that asserts on overflow.  Use where the protocol guarantees
  /// space (e.g. a response slot reserved by a command).
  void push(T value) {
    const bool ok = try_push(std::move(value));
    ALPU_ASSERT(ok, "FIFO overflow violates flow-control protocol");
    (void)ok;
  }

  /// Peek at the head without consuming it.
  const T& front() const {
    ALPU_ASSERT(!empty(), "front() on an empty FIFO");
    return slots_[head_];
  }

  T& front() {
    ALPU_ASSERT(!empty(), "front() on an empty FIFO");
    return slots_[head_];
  }

  /// Pop the head.  Precondition: not empty.
  T pop() {
    ALPU_ASSERT(!empty(), "pop() on an empty FIFO");
    T out = std::move(slots_[head_]);
    head_ = advance(head_);
    --size_;
    return out;
  }

  /// Pop the head if present.
  std::optional<T> try_pop() {
    if (empty()) return std::nullopt;
    return pop();
  }

  /// Drop all contents (models a hardware reset).
  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::size_t advance(std::size_t i) const {
    return (i + 1 == capacity_) ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace alpu::common
