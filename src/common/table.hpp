// ASCII table renderer used by the benchmark harnesses to print
// paper-style tables (Tables IV/V rows, Figure 5/6 series).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace alpu::common {

/// Column-aligned text table.  Add a header once, then rows; `render()`
/// right-aligns numeric-looking cells and left-aligns the rest.
class TextTable {
 public:
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  std::string render() const;

  /// Render as comma-separated values (for plotting scripts).
  std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant decimals, trimming zeros.
std::string fmt_double(double v, int digits = 2);

}  // namespace alpu::common
